package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// testBaseline mirrors the BENCH_sched.json shape with round numbers.
var testBaseline = Baseline{
	NsToleranceFactor: 3,
	Benchmarks: map[string]Metrics{
		"BenchmarkScheduleRound/Small": {NsPerOp: 10_000_000, BytesPerOp: 1000, AllocsPerOp: 5},
		"BenchmarkScheduleRound/Large": {NsPerOp: 250_000_000, BytesPerOp: 7000, AllocsPerOp: 5},
	},
}

const healthyOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkScheduleRound/Small-4         	      20	  11000000 ns/op	     999 B/op	       5 allocs/op
BenchmarkScheduleRound/Large-4         	      20	 260000000 ns/op	    7000 B/op	       5 allocs/op
PASS
ok  	repro	30.1s
`

func parse(t *testing.T, out string) map[string]Metrics {
	t.Helper()
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBenchOutput(t *testing.T) {
	got := parse(t, healthyOutput)
	small, ok := got["BenchmarkScheduleRound/Small"]
	if !ok {
		t.Fatalf("Small missing (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if small.NsPerOp != 11_000_000 || small.BytesPerOp != 999 || small.AllocsPerOp != 5 {
		t.Fatalf("Small = %+v", small)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
}

func TestParseBenchKeepsWorstOfRepeats(t *testing.T) {
	got := parse(t, `
BenchmarkX-4 	10	100 ns/op	50 B/op	2 allocs/op
BenchmarkX-4 	10	300 ns/op	40 B/op	7 allocs/op
BenchmarkX-4 	10	200 ns/op	60 B/op	3 allocs/op
`)
	x := got["BenchmarkX"]
	if x.NsPerOp != 300 || x.BytesPerOp != 60 || x.AllocsPerOp != 7 {
		t.Fatalf("repeats should keep worst per metric, got %+v", x)
	}
}

func TestGatePassesHealthyRun(t *testing.T) {
	if v := gate(testBaseline, parse(t, healthyOutput)); len(v) != 0 {
		t.Fatalf("healthy run flagged: %v", v)
	}
}

// TestGateFailsOnAllocRegression is the contract the CI job relies on:
// one extra allocation per op in a gated hot path must fail the build.
func TestGateFailsOnAllocRegression(t *testing.T) {
	regressed := strings.Replace(healthyOutput,
		"     999 B/op	       5 allocs/op",
		"     999 B/op	       6 allocs/op", 1)
	v := gate(testBaseline, parse(t, regressed))
	if len(v) != 1 {
		t.Fatalf("alloc regression not caught: %v", v)
	}
	if !strings.Contains(v[0], "Small") || !strings.Contains(v[0], "allocs/op regressed") {
		t.Fatalf("wrong violation: %q", v[0])
	}
}

func TestGateToleratesNsNoiseButNotBlowup(t *testing.T) {
	// 2.9x the baseline: inside the 3x tolerance.
	noisy := strings.Replace(healthyOutput, "  11000000 ns/op", "  29000000 ns/op", 1)
	if v := gate(testBaseline, parse(t, noisy)); len(v) != 0 {
		t.Fatalf("2.9x ns flagged despite 3x tolerance: %v", v)
	}
	// 4x the baseline: a real regression.
	slow := strings.Replace(healthyOutput, "  11000000 ns/op", "  40000000 ns/op", 1)
	v := gate(testBaseline, parse(t, slow))
	if len(v) != 1 || !strings.Contains(v[0], "ns/op regressed") {
		t.Fatalf("4x ns not caught: %v", v)
	}
}

func TestGateFailsOnBytesBlowup(t *testing.T) {
	// 999 -> 1400 B/op: inside the 1.5x tolerance (baseline 1000).
	wobble := strings.Replace(healthyOutput, "     999 B/op", "    1400 B/op", 1)
	if v := gate(testBaseline, parse(t, wobble)); len(v) != 0 {
		t.Fatalf("B/op wobble flagged despite 1.5x tolerance: %v", v)
	}
	// Same alloc count but 60x the bytes: a real memory regression.
	fat := strings.Replace(healthyOutput, "     999 B/op", "   60000 B/op", 1)
	v := gate(testBaseline, parse(t, fat))
	if len(v) != 1 || !strings.Contains(v[0], "B/op regressed") {
		t.Fatalf("B/op blow-up not caught: %v", v)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	onlySmall := strings.Join(strings.Split(healthyOutput, "\n")[:5], "\n")
	v := gate(testBaseline, parse(t, onlySmall))
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing benchmark not caught: %v", v)
	}
}

// TestRunFailsOnEmptyBenchOutput is the broken-bench-step contract: output
// with no benchmark lines at all (crashed run, -bench pattern matching
// nothing) must exit non-zero with a clear message, never pass vacuously.
func TestRunFailsOnEmptyBenchOutput(t *testing.T) {
	baselinePath := filepath.Join("..", "..", "BENCH_sched.json")
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\nok  \trepro\t0.1s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run(baselinePath, empty, false, &out, &errOut); code != 2 {
		t.Fatalf("empty bench output exited %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no benchmarks found") {
		t.Fatalf("missing clear message: %q", errOut.String())
	}
}

// TestRunWarnsOnUnbaselinedBenchmark: a measured benchmark the baseline
// does not know cannot regress the gate, so the run must call it out.
func TestRunWarnsOnUnbaselinedBenchmark(t *testing.T) {
	extra := healthyOutput +
		"BenchmarkScheduleRound/XXL-4 \t20\t900000000 ns/op\t50000 B/op\t9 allocs/op\n"
	got := parse(t, extra)
	if names := unbaselined(testBaseline, got); len(names) != 1 || names[0] != "BenchmarkScheduleRound/XXL" {
		t.Fatalf("unbaselined = %v", names)
	}
	file := filepath.Join(t.TempDir(), "extra.txt")
	if err := os.WriteFile(file, []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "base.json")
	raw, err := json.Marshal(testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run(base, file, false, &out, &errOut); code != 0 {
		t.Fatalf("unbaselined benchmark must warn, not fail: exit %d (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "warn") || !strings.Contains(errOut.String(), "XXL") {
		t.Fatalf("missing warning: %q", errOut.String())
	}
}

func TestGateDefaultTolerance(t *testing.T) {
	base := testBaseline
	base.NsToleranceFactor = 0 // default 3 kicks in
	slow := strings.Replace(healthyOutput, "  11000000 ns/op", "  40000000 ns/op", 1)
	if v := gate(base, parse(t, slow)); len(v) != 1 {
		t.Fatalf("default tolerance not applied: %v", v)
	}
}

// TestRunAgainstCommittedBaseline runs the whole tool (load, parse, gate,
// exit code) against the real committed BENCH_sched.json: a fabricated
// allocs/op regression must produce exit code 1, and numbers matching the
// committed baseline must pass — so a broken baseline file fails here, in
// CI, not silently in the workflow.
func TestRunAgainstCommittedBaseline(t *testing.T) {
	baselinePath := filepath.Join("..", "..", "BENCH_sched.json")
	base, err := loadBaseline(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	var ok, bad strings.Builder
	for name, m := range base.Benchmarks {
		ok.WriteString(name + "-4 \t20\t" +
			formatLine(m.NsPerOp, m.BytesPerOp, m.AllocsPerOp) + "\n")
		bad.WriteString(name + "-4 \t20\t" +
			formatLine(m.NsPerOp, m.BytesPerOp, m.AllocsPerOp+1) + "\n")
	}
	okFile := filepath.Join(t.TempDir(), "ok.txt")
	if err := os.WriteFile(okFile, []byte(ok.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	badFile := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(badFile, []byte(bad.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run(baselinePath, okFile, false, &out, &errOut); code != 0 {
		t.Fatalf("baseline-equal run failed with code %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run(baselinePath, badFile, false, &out, &errOut); code != 1 {
		t.Fatalf("allocs regression exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "allocs/op regressed") {
		t.Fatalf("missing violation message: %s", errOut.String())
	}
}

// TestUpdateRewritesBenchmarksBlock is the -update contract: measured
// benchmarks replace their baseline entries, new ones join the gate,
// unmeasured entries survive untouched, and everything else in the file
// (description, machine, tolerances, history, notes) round-trips
// verbatim through a loadBaseline of the rewritten file.
func TestUpdateRewritesBenchmarksBlock(t *testing.T) {
	base := Baseline{
		Description:          "perf contract",
		Machine:              "test rig",
		NsToleranceFactor:    3,
		BytesToleranceFactor: 1.5,
		Benchmarks: map[string]Metrics{
			"BenchmarkScheduleRound/Small": {NsPerOp: 10_000_000, BytesPerOp: 1000, AllocsPerOp: 5},
			"BenchmarkChurn/Step":          {NsPerOp: 30_000, BytesPerOp: 0, AllocsPerOp: 0},
		},
		History: map[string]map[string]Metrics{
			"pr2": {"BenchmarkScheduleRound/Small": {NsPerOp: 24_000_000, BytesPerOp: 424144, AllocsPerOp: 12173}},
		},
		Notes: "hot-path profile notes",
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, renderBaseline(base), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := "BenchmarkScheduleRound/Small-4 \t20\t9000000 ns/op\t900 B/op\t4 allocs/op\n" +
		"BenchmarkSLAQuery/Batch-4 \t20\t2500000 ns/op\t0 B/op\t0 allocs/op\n"
	benchFile := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(benchFile, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run(path, benchFile, true, &out, &errOut); code != 0 {
		t.Fatalf("-update exited %d (stderr: %s)", code, errOut.String())
	}
	got, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if m := got.Benchmarks["BenchmarkScheduleRound/Small"]; m.NsPerOp != 9_000_000 || m.BytesPerOp != 900 || m.AllocsPerOp != 4 {
		t.Fatalf("measured entry not replaced: %+v", m)
	}
	if m, ok := got.Benchmarks["BenchmarkSLAQuery/Batch"]; !ok || m.NsPerOp != 2_500_000 {
		t.Fatalf("new benchmark not added: %+v (ok=%v)", m, ok)
	}
	if m := got.Benchmarks["BenchmarkChurn/Step"]; m.NsPerOp != 30_000 {
		t.Fatalf("unmeasured entry not preserved: %+v", m)
	}
	if got.Description != base.Description || got.Machine != base.Machine ||
		got.NsToleranceFactor != 3 || got.BytesToleranceFactor != 1.5 || got.Notes != base.Notes {
		t.Fatalf("metadata not preserved: %+v", got)
	}
	if h := got.History["pr2"]["BenchmarkScheduleRound/Small"]; h.AllocsPerOp != 12173 {
		t.Fatalf("history not preserved: %+v", got.History)
	}
	if !strings.Contains(out.String(), "updated BenchmarkScheduleRound/Small") ||
		!strings.Contains(out.String(), "added BenchmarkSLAQuery/Batch") {
		t.Fatalf("missing update report: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "BenchmarkChurn/Step not measured") {
		t.Fatalf("missing kept-entry warning: %q", errOut.String())
	}
	// The rewritten file must still satisfy the gate against its own numbers.
	out.Reset()
	errOut.Reset()
	if code := run(path, benchFile, false, &out, &errOut); code != 1 {
		// Gate fails only because BenchmarkChurn/Step is absent from the
		// bench output — the two measured entries must pass exactly.
		t.Fatalf("post-update gate exited %d (stderr: %s)", code, errOut.String())
	}
	if strings.Contains(errOut.String(), "regressed") {
		t.Fatalf("freshly updated baseline flags a regression: %s", errOut.String())
	}
}

// TestRenderBaselineRoundTrips pins the writer against the reader: a
// render → load cycle must reproduce the exact Baseline, including
// fractional metric values.
func TestRenderBaselineRoundTrips(t *testing.T) {
	base := Baseline{
		Description:       "d",
		NsToleranceFactor: 2.5,
		Benchmarks: map[string]Metrics{
			"BenchmarkX": {NsPerOp: 123456.75, BytesPerOp: 12, AllocsPerOp: 3},
		},
	}
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, renderBaseline(base), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBaseline(path)
	if err != nil {
		t.Fatalf("rendered baseline does not parse: %v", err)
	}
	if got.Benchmarks["BenchmarkX"] != base.Benchmarks["BenchmarkX"] ||
		got.NsToleranceFactor != 2.5 || got.Description != "d" {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func formatLine(ns, bytes, allocs float64) string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	return f(ns) + " ns/op\t" + f(bytes) + " B/op\t" + f(allocs) + " allocs/op"
}
