// Command benchgate turns `go test -bench -benchmem` output into a CI
// gate: it compares every measured benchmark against the committed
// baseline (BENCH_sched.json) and exits non-zero when allocations regress
// at all, or bytes/time regress beyond their noise tolerances.
//
// Allocations per op are deterministic for a fixed code path, so the gate
// is exact: one extra alloc/op fails. B/op is near-deterministic (map
// bucket growth wobbles a little) and fails beyond baseline ×
// bytes_tolerance_factor (default 1.5). Wall time varies across runners,
// so ns/op only fails beyond baseline × ns_tolerance_factor (default 3).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkScheduleRound -benchmem -benchtime 20x . | \
//	    go run ./cmd/benchgate -baseline BENCH_sched.json
//
// With -update the tool rewrites the baseline instead of gating: every
// measured benchmark replaces (or joins) its entry in the benchmarks
// block, while description, machine, tolerances, history and notes are
// preserved verbatim. Baseline entries the bench output did not measure
// are kept (a partial bench run must never silently drop a gate) and
// reported. Update notes/machine by hand when the profile shifts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured or baseline numbers.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed perf contract (BENCH_sched.json).
type Baseline struct {
	Description string `json:"description"`
	Machine     string `json:"machine"`
	// NsToleranceFactor scales every baseline ns/op into the failure
	// threshold (0 = default 3, absorbing runner noise and slower CI
	// hardware while still catching order-of-magnitude regressions).
	NsToleranceFactor float64 `json:"ns_tolerance_factor"`
	// BytesToleranceFactor does the same for B/op (0 = default 1.5:
	// near-deterministic, but map bucket growth wobbles a few percent).
	BytesToleranceFactor float64            `json:"bytes_tolerance_factor"`
	Benchmarks           map[string]Metrics `json:"benchmarks"`
	// History and Notes are documentation; the gate ignores them.
	History map[string]map[string]Metrics `json:"history,omitempty"`
	Notes   string                        `json:"notes,omitempty"`
}

const (
	defaultNsTolerance    = 3
	defaultBytesTolerance = 1.5
)

// parseBench extracts per-benchmark metrics from `go test -bench` output.
// The trailing -N GOMAXPROCS suffix is stripped from names; when a name
// repeats (e.g. -count > 1) the worst (largest) value of each metric is
// kept, so the gate judges the least flattering run.
func parseBench(r io.Reader) (map[string]Metrics, error) {
	got := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcs(fields[0])
		m := got[name]
		seen := false
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = max(m.NsPerOp, v)
				seen = true
			case "B/op":
				m.BytesPerOp = max(m.BytesPerOp, v)
				seen = true
			case "allocs/op":
				m.AllocsPerOp = max(m.AllocsPerOp, v)
				seen = true
			}
		}
		if seen {
			got[name] = m
		}
	}
	return got, sc.Err()
}

// trimProcs removes the -N GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gate compares measured metrics against the baseline and returns one
// violation message per failure, in stable (sorted) order. Every baseline
// benchmark must be present in the measured set: a gate that silently
// skips a missing benchmark would pass vacuously.
func gate(base Baseline, got map[string]Metrics) []string {
	factor := base.NsToleranceFactor
	if factor <= 0 {
		factor = defaultNsTolerance
	}
	bytesFactor := base.BytesToleranceFactor
	if bytesFactor <= 0 {
		bytesFactor = defaultBytesTolerance
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		want := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: baseline benchmark missing from bench output", name))
			continue
		}
		if g.AllocsPerOp > want.AllocsPerOp {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op regressed: %.0f > baseline %.0f (exact gate)",
					name, g.AllocsPerOp, want.AllocsPerOp))
		}
		if limit := want.BytesPerOp * bytesFactor; g.BytesPerOp > limit {
			violations = append(violations,
				fmt.Sprintf("%s: B/op regressed: %.0f > %.0f (baseline %.0f × tolerance %g)",
					name, g.BytesPerOp, limit, want.BytesPerOp, bytesFactor))
		}
		if limit := want.NsPerOp * factor; g.NsPerOp > limit {
			violations = append(violations,
				fmt.Sprintf("%s: ns/op regressed: %.0f > %.0f (baseline %.0f × tolerance %g)",
					name, g.NsPerOp, limit, want.NsPerOp, factor))
		}
	}
	return violations
}

// fmtNum renders a metric value without exponent notation, matching the
// hand-written baseline style.
func fmtNum(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// renderBaseline serialises a Baseline in the committed BENCH_sched.json
// style: two-space indent, one line per benchmark entry, fields in
// declaration order, benchmark names sorted for stable diffs.
func renderBaseline(base Baseline) []byte {
	var b strings.Builder
	enc := func(v any) string {
		j, _ := json.Marshal(v)
		return string(j)
	}
	metricsLine := func(m Metrics) string {
		return fmt.Sprintf(`{"ns_per_op": %s, "bytes_per_op": %s, "allocs_per_op": %s}`,
			fmtNum(m.NsPerOp), fmtNum(m.BytesPerOp), fmtNum(m.AllocsPerOp))
	}
	block := func(indent string, set map[string]Metrics) {
		names := make([]string, 0, len(set))
		for name := range set {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			comma := ","
			if i == len(names)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "%s%s: %s%s\n", indent, enc(name), metricsLine(set[name]), comma)
		}
	}
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  \"description\": %s,\n", enc(base.Description))
	fmt.Fprintf(&b, "  \"machine\": %s,\n", enc(base.Machine))
	fmt.Fprintf(&b, "  \"ns_tolerance_factor\": %s,\n", fmtNum(base.NsToleranceFactor))
	fmt.Fprintf(&b, "  \"bytes_tolerance_factor\": %s,\n", fmtNum(base.BytesToleranceFactor))
	b.WriteString("  \"benchmarks\": {\n")
	block("    ", base.Benchmarks)
	b.WriteString("  }")
	if len(base.History) > 0 {
		b.WriteString(",\n  \"history\": {\n")
		eras := make([]string, 0, len(base.History))
		for era := range base.History {
			eras = append(eras, era)
		}
		sort.Strings(eras)
		for i, era := range eras {
			fmt.Fprintf(&b, "    %s: {\n", enc(era))
			block("      ", base.History[era])
			b.WriteString("    }")
			if i < len(eras)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString("  }")
	}
	if base.Notes != "" {
		fmt.Fprintf(&b, ",\n  \"notes\": %s", enc(base.Notes))
	}
	b.WriteString("\n}\n")
	return []byte(b.String())
}

// update merges measured metrics into the baseline's benchmarks block and
// returns the names it replaced, the names it added, and the baseline
// entries the bench output did not cover (kept as-is).
func update(base *Baseline, got map[string]Metrics) (updated, added, kept []string) {
	for name, m := range got {
		if _, ok := base.Benchmarks[name]; ok {
			updated = append(updated, name)
		} else {
			added = append(added, name)
		}
		base.Benchmarks[name] = m
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok {
			kept = append(kept, name)
		}
	}
	sort.Strings(updated)
	sort.Strings(added)
	sort.Strings(kept)
	return updated, added, kept
}

func loadBaseline(path string) (Baseline, error) {
	var base Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return base, fmt.Errorf("benchgate: %s has no benchmarks to gate on", path)
	}
	return base, nil
}

func run(baselinePath, inputPath string, doUpdate bool, out, errOut io.Writer) int {
	base, err := loadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	in := io.Reader(os.Stdin)
	if inputPath != "" && inputPath != "-" {
		f, err := os.Open(inputPath)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	if len(got) == 0 {
		// Zero parsed benchmarks means the bench step itself broke (crash,
		// build failure, a -bench pattern matching nothing) — distinct
		// from a specific baseline benchmark being renamed away, which
		// gate reports per name. Either way nothing passes silently.
		fmt.Fprintln(errOut, "benchgate: no benchmarks found in bench output — did the bench run fail or match nothing?")
		return 2
	}
	if doUpdate {
		updated, added, kept := update(&base, got)
		if err := os.WriteFile(baselinePath, renderBaseline(base), 0o644); err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
		for _, name := range updated {
			fmt.Fprintf(out, "benchgate: updated %s\n", name)
		}
		for _, name := range added {
			fmt.Fprintf(out, "benchgate: added %s (new gate)\n", name)
		}
		for _, name := range kept {
			fmt.Fprintf(errOut, "benchgate: warn %s not measured — baseline entry kept unchanged\n", name)
		}
		return 0
	}
	violations := gate(base, got)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(errOut, "benchgate: FAIL %s\n", v)
		}
		return 1
	}
	for _, name := range unbaselined(base, got) {
		fmt.Fprintf(errOut, "benchgate: warn %s measured but absent from the baseline — add it to keep it gated\n", name)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := got[name]
		want := base.Benchmarks[name]
		fmt.Fprintf(out, "benchgate: ok %s: %.0f allocs/op (baseline %.0f), %.0f ns/op (baseline %.0f)\n",
			name, g.AllocsPerOp, want.AllocsPerOp, g.NsPerOp, want.NsPerOp)
	}
	return 0
}

// unbaselined returns the measured benchmark names that have no baseline
// entry, sorted. They cannot regress the gate, which is exactly the
// problem: a new sub-benchmark stays ungated until the baseline learns
// it, so the run flags each one loudly.
func unbaselined(base Baseline, got map[string]Metrics) []string {
	var names []string
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func main() {
	baseline := flag.String("baseline", "BENCH_sched.json", "committed baseline file")
	input := flag.String("input", "-", "bench output file (- = stdin)")
	doUpdate := flag.Bool("update", false, "rewrite the baseline's benchmarks block from the bench output instead of gating")
	flag.Parse()
	os.Exit(run(*baseline, *input, *doUpdate, os.Stdout, os.Stderr))
}
