// Command mdctrain harvests monitored training data from the simulated
// multi-DC fleet, trains the paper's seven predictors and prints the
// Table I validation report. With -csv it also dumps the harvested
// datasets for external analysis.
//
// Usage:
//
//	mdctrain -seed 42
//	mdctrain -seed 42 -days 4 -csv /tmp/harvest
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/predict"
)

func main() {
	seed := flag.Uint64("seed", 42, "root seed")
	days := flag.Int("days", 2, "harvest length in simulated days")
	csvDir := flag.String("csv", "", "directory to dump harvested datasets as CSV (optional)")
	save := flag.String("save", "", "write the trained bundle to this JSON file")
	flag.Parse()

	opts := predict.DefaultHarvestOpts(*seed)
	opts.Ticks = *days * model.TicksPerDay

	start := time.Now()
	h, err := predict.Collect(opts)
	if err != nil {
		fail(err)
	}
	collectDur := time.Since(start)

	start = time.Now()
	bundle, err := predict.Train(h, predict.DefaultTrainConfig(*seed))
	if err != nil {
		fail(err)
	}
	trainDur := time.Since(start)

	fmt.Printf("harvested %d simulated days in %s, trained 7 models in %s\n\n",
		*days, collectDur.Round(time.Millisecond), trainDur.Round(time.Millisecond))
	for _, rep := range bundle.Reports {
		fmt.Println(rep.String())
	}

	if *save != "" {
		if err := bundle.Save(*save); err != nil {
			fail(err)
		}
		fmt.Printf("\ntrained bundle written to %s\n", *save)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		dump := map[string]*ml.Dataset{
			"vm_cpu.csv": h.VMCPU, "vm_mem.csv": h.VMMem,
			"vm_in.csv": h.VMIn, "vm_out.csv": h.VMOut,
			"pm_cpu.csv": h.PMCPU, "vm_rt.csv": h.VMRT, "vm_sla.csv": h.VMSLA,
		}
		for name, d := range dump {
			if err := writeCSV(filepath.Join(*csvDir, name), d); err != nil {
				fail(err)
			}
		}
		fmt.Printf("\ndatasets written to %s\n", *csvDir)
	}
}

func writeCSV(path string, d *ml.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i, n := range d.Names {
		if i > 0 {
			fmt.Fprint(f, ",")
		}
		fmt.Fprint(f, n)
	}
	fmt.Fprintln(f, ",target")
	for i, row := range d.X {
		for j, v := range row {
			if j > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%g", v)
		}
		fmt.Fprintf(f, ",%g\n", d.Y[i])
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mdctrain:", err)
	os.Exit(1)
}
