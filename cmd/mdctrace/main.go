// Command mdctrace exports synthetic Li-BCN-like workloads to CSV and
// inspects replay files — the bridge between the built-in generator and
// user-supplied real traces.
//
// Usage:
//
//	mdctrace -export trace.csv -days 1 -vms 5 -scale 1.5
//	mdctrace -inspect trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/trace"
)

func main() {
	export := flag.String("export", "", "write a synthetic trace to this CSV file")
	inspect := flag.String("inspect", "", "summarise an existing trace CSV")
	seed := flag.Uint64("seed", 42, "generator seed")
	days := flag.Int("days", 1, "trace length in days")
	vms := flag.Int("vms", 5, "number of VMs")
	scale := flag.Float64("scale", 1.0, "load scale")
	flag.Parse()

	switch {
	case *export != "":
		doExport(*export, *seed, *days, *vms, *scale)
	case *inspect != "":
		doInspect(*inspect)
	default:
		fmt.Fprintln(os.Stderr, "usage: mdctrace -export FILE [-days N -vms N -scale F] | -inspect FILE")
		os.Exit(2)
	}
}

func doExport(path string, seed uint64, days, vms int, scale float64) {
	specs := make([]model.VMSpec, vms)
	scaleMap := make(map[model.VMID][]float64, vms)
	for i := range specs {
		specs[i] = model.VMSpec{
			ID: model.VMID(i), Name: fmt.Sprintf("web%d", i),
			ImageSizeGB: 4, BaseMemMB: 256, MaxMemMB: 1024,
			Terms: model.DefaultSLATerms, PriceEURh: 0.17,
			HomeDC: model.DCID(i % 4),
		}
		scaleMap[specs[i].ID] = []float64{scale, scale, scale, scale}
	}
	gen, err := trace.NewGenerator(trace.Config{
		Seed:      seed,
		Sources:   4,
		VMs:       specs,
		TZOffsetH: trace.PaperTZOffsets(),
		Scale:     scaleMap,
		NoiseSD:   0.15,
	})
	if err != nil {
		fail(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	ticks := days * model.TicksPerDay
	if err := trace.ExportCSV(f, gen, ticks); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d ticks x %d VMs to %s\n", ticks, vms, path)
}

func doInspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	rep, err := trace.NewReplay(f, 4)
	if err != nil {
		fail(err)
	}
	fmt.Printf("trace: %d ticks (%.1f h)\n", rep.Ticks(), float64(rep.Ticks())/60)
	// Per-VM request-rate summary at a few probe points.
	probes := []int{0, rep.Ticks() / 4, rep.Ticks() / 2, 3 * rep.Ticks() / 4}
	for _, tick := range probes {
		loads := rep.Loads(tick)
		total := 0.0
		for _, lv := range loads {
			total += lv.Total().RPS
		}
		fmt.Printf("  tick %5d: %d VMs, %.1f rps total\n", tick, len(loads), total)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mdctrace:", err)
	os.Exit(1)
}
