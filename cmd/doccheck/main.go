// Command doccheck guards the prose against code drift: every
// backtick-quoted Go symbol in the given markdown files must name an
// identifier that is actually declared somewhere in this repository.
// A rename that strands README.md or DESIGN.md fails CI instead of
// silently rotting the documentation.
//
// Usage:
//
//	go run ./cmd/doccheck README.md DESIGN.md
//
// What counts as a symbol: inside a `backtick span`, dot-separated
// components that look like exported Go identifiers (leading capital
// followed by at least one lowercase letter, e.g. `BestFit`,
// `Round.Assign`, `sched.RoundStats.CandidatesScored`, test and
// benchmark names). Lowercase components (package qualifiers, variable
// receivers), all-caps acronyms (`CPU`, `SLA`), spans with spaces or
// punctuation (`go test ./...`, `O(n)`) and file names (`BENCH_sched.json`)
// are ignored — the check is deliberately one-sided so it can never
// block honest prose, only dangling references.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	docs := os.Args[1:]
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	declared, err := declaredIdents(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	bad := 0
	for _, doc := range docs {
		missing, err := checkDoc(doc, declared)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Printf("%s: `%s` names no declared identifier (component %q)\n", m.pos, m.span, m.ident)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("doccheck: %d dangling reference(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("doccheck: ok (%d files, %d declared identifiers)\n", len(docs), len(declared))
}

// declaredIdents parses every .go file under root and returns the set of
// declared names: functions, methods, types, consts, vars, struct fields
// and interface methods. Unexported names are included too — the docs may
// legitimately describe internals like `pruneIndex`.
func declaredIdents(root string) (map[string]bool, error) {
	set := make(map[string]bool, 4096)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		set[f.Name.Name] = true
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				set[n.Name.Name] = true
			case *ast.TypeSpec:
				set[n.Name.Name] = true
			case *ast.ValueSpec:
				for _, id := range n.Names {
					set[id.Name] = true
				}
			case *ast.Field:
				for _, id := range n.Names {
					set[id.Name] = true
				}
			}
			return true
		})
		return nil
	})
	return set, err
}

type missingRef struct {
	pos   string // file:line
	span  string // full backtick span
	ident string // the component that failed to resolve
}

var (
	backtickRe = regexp.MustCompile("`([^`\n]+)`")
	// symbolRe admits dot-separated identifier chains only — anything with
	// spaces, slashes, dashes, parens or other punctuation is prose or a
	// command line, not a symbol reference.
	symbolRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$`)
	// checkable components: exported-looking CamelCase. Requires a
	// lowercase letter so acronyms (CPU, SLA, M5P) pass unchecked.
	checkableRe = regexp.MustCompile(`^[A-Z][A-Za-z0-9]*[a-z][A-Za-z0-9]*$`)
)

// fileExts are spans that are file names, not symbols (`doc.go` would
// otherwise parse as package doc, selector go).
var fileExts = map[string]bool{
	"go": true, "md": true, "json": true, "yml": true, "yaml": true,
	"txt": true, "csv": true, "prof": true, "mod": true, "sum": true,
}

func checkDoc(path string, declared map[string]bool) ([]missingRef, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var missing []missingRef
	line := 0
	inFence := false
	for _, text := range strings.Split(string(data), "\n") {
		line++
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			// Fenced blocks are code excerpts or shell transcripts; the
			// inline-backtick convention does not apply there.
			continue
		}
		for _, m := range backtickRe.FindAllStringSubmatch(text, -1) {
			span := m[1]
			if !symbolRe.MatchString(span) {
				continue
			}
			parts := strings.Split(span, ".")
			if len(parts) > 1 && fileExts[parts[len(parts)-1]] {
				continue
			}
			// A lowercase qualifier that is not a package of this repo
			// marks an external reference (`testing.AllocsPerRun`,
			// `runtime.GOMAXPROCS`) — out of scope for the drift check.
			if first := parts[0]; len(parts) > 1 &&
				first[0] >= 'a' && first[0] <= 'z' && !declared[first] {
				continue
			}
			for _, p := range parts {
				if !checkableRe.MatchString(p) {
					continue
				}
				if !declared[p] {
					missing = append(missing, missingRef{
						pos:   fmt.Sprintf("%s:%d", path, line),
						span:  span,
						ident: p,
					})
					break
				}
			}
		}
	}
	sort.SliceStable(missing, func(i, j int) bool { return missing[i].pos < missing[j].pos })
	return missing, nil
}
