package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// runServe drives the serve subcommand: the manager as a long-lived
// HTTP placement service (wall-clock mode), a deterministic replay of a
// request script (-replay), or a one-shot health/calibration report
// against a running instance (-report).
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: mdcsim serve [flags]")
		fmt.Fprintln(fs.Output(), "       mdcsim serve -replay script.json [flags]")
		fmt.Fprintln(fs.Output(), "       mdcsim serve -report -addr host:port")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (or, with -report, the server to query)")
	scenarioName := fs.String("scenario", scenario.ServeBase, "scenario preset to serve on")
	seed := fs.Uint64("seed", 42, "root seed for all stochastic components")
	queueDepth := fs.Int("queue-depth", 64, "intake queue bound; a full queue answers 429")
	roundTicks := fs.Int("round-ticks", 10, "scheduling round period in ticks")
	rate := fs.Float64("rate", 0, "token-bucket admission rate per tick (0 = unlimited)")
	burst := fs.Float64("burst", 0, "token-bucket burst size (0 = rate)")
	tickEvery := fs.Duration("tick-every", time.Second, "wall-clock tick period (serve mode)")
	dir := fs.String("dir", "", "state directory for journal + checkpoints (empty = no persistence)")
	restore := fs.Bool("restore", false, "replay the journal in -dir before serving")
	checkpointEvery := fs.Int("checkpoint-every", 0, "write a checkpoint every N ticks (0 = on demand + at shutdown)")
	train := fs.Bool("train", false, "train the SLA predictors at startup (enables the ML gate and calibration)")
	minSLA := fs.Float64("min-sla", 0, "predicted-SLA admission floor (with -train)")
	retrainEvery := fs.Int("retrain-every", 0, "online refit period in ticks (with -train; 0 = frozen models)")
	replayPath := fs.String("replay", "", "drive this replay script instead of serving, print the placement log")
	workers := fs.Int("workers", 4, "concurrent replay senders (with -replay)")
	report := fs.Bool("report", false, "query a running server's /healthz and /metrics and print the report")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file at shutdown (enables tracing)")
	traceSample := fs.Int("trace-sample", 0, "trace one tick in every N (0 = off unless -trace, which implies 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *report {
		return serveReport(*addr)
	}
	if (*minSLA > 0 || *retrainEvery > 0) && !*train {
		return fmt.Errorf("-min-sla and -retrain-every require -train")
	}

	cfg := serve.Config{
		Scenario:        *scenarioName,
		Seed:            *seed,
		QueueDepth:      *queueDepth,
		RoundTicks:      *roundTicks,
		RatePerTick:     *rate,
		Burst:           *burst,
		TickEvery:       *tickEvery,
		Dir:             *dir,
		Restore:         *restore,
		CheckpointEvery: *checkpointEvery,
		MinPredictedSLA: *minSLA,
		EnablePprof:     *pprofOn,
		TracePath:       *tracePath,
		TraceSample:     *traceSample,
		Logf:            log.Printf,
	}
	if cfg.TracePath != "" && cfg.TraceSample <= 0 {
		cfg.TraceSample = 1
	}
	if *train {
		fmt.Fprintln(os.Stderr, "training SLA predictors...")
		b, err := sweep.TrainedBundle(*seed)
		if err != nil {
			return err
		}
		cfg.Bundle = b
		cfg.OnlineRetrainEvery = *retrainEvery
	}
	if *replayPath != "" {
		cfg.TickEvery = 0 // replay is virtual time by definition
		return serveReplay(cfg, *replayPath, *addr, *workers)
	}
	return serveForever(cfg, *addr)
}

// serveForever is the long-lived mode: listen, tick on the wall clock,
// and on SIGINT/SIGTERM drain in-flight offers, checkpoint and exit 0.
func serveForever(cfg serve.Config, addr string) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("serving %s on http://%s (tick every %s)", cfg.Scenario, ln.Addr(), cfg.TickEvery)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return err
	}
	snap := s.Snapshot()
	log.Printf("drained clean at tick %d: %d VMs active, log digest %s",
		snap.Tick, snap.ActiveVMs, snap.LogDigest)
	return nil
}

// serveReplay starts the service in virtual time, drives the script
// through real HTTP, prints the placement log and its digest, and
// drains. The same script and seed print the same bytes, every run.
func serveReplay(cfg serve.Config, path, addr string, workers int) error {
	rs, err := serve.LoadReplayScript(path)
	if err != nil {
		return err
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln) //nolint:errcheck // torn down via Close below
	defer hs.Close()

	c := &serve.Client{Base: "http://" + ln.Addr().String()}
	lines, err := c.Replay(rs, workers)
	if err != nil {
		return err
	}
	for _, line := range lines {
		fmt.Println(line)
	}
	if err := c.Shutdown(); err != nil {
		return err
	}
	snap := s.Snapshot()
	fmt.Printf("log digest %s over %d lines\n", snap.LogDigest, snap.LogLines)
	return nil
}

// serveReport fetches /healthz from a running server and prints the
// operational summary: service state, backlog, churn, and — when the ML
// loop is live — the online learner's freshness and the calibration
// window's MAPE / Pearson r.
func serveReport(addr string) error {
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s: %s", resp.Status, body)
	}
	var h struct {
		Status   string `json:"status"`
		QueueLen int    `json:"queue_len"`
		QueueCap int    `json:"queue_cap"`
		serve.Snapshot
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return err
	}
	fmt.Printf("status %s | tick %d | rounds %d | queue %d/%d\n",
		h.Status, h.Tick, h.Rounds, h.QueueLen, h.QueueCap)
	fmt.Printf("fleet: %d active VMs, %d unplaced | pending: %d admits %d rehomes %d deferred | degraded %t\n",
		h.ActiveVMs, h.UnplacedVMs, h.PendingAdmits, h.PendingRehomes, h.PendingDeferred, h.Degraded)
	fmt.Printf("churn: offered %d admitted %d rejected %d deferred %d departed %d | dropped telemetry %d, duplicate offers %d\n",
		h.Churn.Offered, h.Churn.Admitted, h.Churn.Rejected, h.Churn.Deferrals, h.Churn.Departed,
		h.DroppedTelemetry, h.DuplicateOffers)
	fmt.Printf("economics: sla %.4f | revenue %.3f€ energy %.3f€ penalties %.3f€ profit %.3f€\n",
		h.AvgSLA, h.RevenueEUR, h.EnergyEUR, h.PenaltyEUR, h.ProfitEUR)
	if h.Online != nil {
		fmt.Printf("online: %d retrains, last at tick %d (%s)\n",
			h.Online.Retrains, h.Online.LastRetrainTick, h.Online.LastRetrainWall.Round(time.Millisecond))
	}
	if h.Retrain != nil {
		fmt.Printf("retrainer: %d cycles, %d attempts, %d successes, %d give-ups\n",
			h.Retrain.Cycles, h.Retrain.Attempts, h.Retrain.Successes, h.Retrain.GiveUps)
	}
	if h.Calibration != nil {
		fmt.Printf("calibration: %d pairs (lifetime %d) | MAPE %.4f | Pearson r %.4f\n",
			h.Calibration.Pairs, h.Calibration.Total, h.Calibration.MAPE, h.Calibration.PearsonR)
	} else {
		fmt.Println("calibration: no prediction bundle configured (-train enables it)")
	}
	if h.JournalEntries > 0 || h.LastCheckpoint >= 0 {
		fmt.Printf("journal: %d entries, %d bytes | last checkpoint at tick %d\n",
			h.JournalEntries, h.JournalBytes, h.LastCheckpoint)
	}
	if err := metricsSummary(addr); err != nil {
		fmt.Printf("metrics: unavailable (%v)\n", err)
	}
	if h.Err != "" {
		return errors.New("engine error: " + h.Err)
	}
	fmt.Printf("log: %d lines, digest %s\n", h.LogLines, h.LogDigest)
	return nil
}

// metricsSummary scrapes /metrics and prints the operational core of the
// registry: intake and engine throughput, scheduler memo efficiency, and
// the wall-clock latency histograms' means.
func metricsSummary(addr string) error {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: %s", resp.Status)
	}
	fams, err := obs.ParseText(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return err
	}
	byName := make(map[string]*obs.Family, len(fams))
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}
	val := func(name string) float64 {
		if f, ok := byName[name]; ok {
			if v, ok := f.Value(); ok {
				return v
			}
		}
		return 0
	}
	mean := func(name string) float64 {
		if f, ok := byName[name]; ok {
			if count, sum, ok := f.Histogram(); ok && count > 0 {
				return sum / float64(count)
			}
		}
		return 0
	}
	fmt.Printf("metrics: %d families | intake: %.0f accepted, %.0f applied, %.0f over-capacity 429s\n",
		len(fams),
		val("mdcsim_serve_events_accepted_total"),
		val("mdcsim_serve_events_applied_total"),
		val("mdcsim_serve_rejected_429_total"))
	fmt.Printf("metrics: engine %.0f ticks (mean %.3fms) | wal fsync mean %.3fms | sched %.0f rounds, memo %.0f reused / %.0f recomputed\n",
		val("mdcsim_engine_ticks_total"), mean("mdcsim_serve_tick_seconds")*1e3,
		mean("mdcsim_serve_wal_fsync_seconds")*1e3,
		val("mdcsim_sched_rounds_total"),
		val("mdcsim_sched_memo_rows_reused_total"),
		val("mdcsim_sched_memo_rows_recomputed_total"))
	fmt.Printf("metrics: retrain %.0f kicked, %.0f adopted, %.0f failed | runtime %.0f goroutines, %.1f MiB heap\n",
		val("mdcsim_serve_retrain_kicked_total"),
		val("mdcsim_serve_retrain_adopted_total"),
		val("mdcsim_serve_retrain_failed_total"),
		val("mdcsim_runtime_goroutines"),
		val("mdcsim_runtime_heap_alloc_bytes")/(1<<20))
	return nil
}
