// Command mdcsim runs the reproduction's experiments — one per table or
// figure of the paper — and prints their tables and terminal charts. It
// can also drive any named scenario preset under a managed scheduler,
// sweep the whole scenario × policy × seed matrix in parallel with
// machine-readable output, or run the manager as a long-lived HTTP
// placement service with crash-safe journaling and deterministic replay.
//
// Usage:
//
//	mdcsim -list
//	mdcsim -seed 42 table1 fig4 fig7
//	mdcsim all
//	mdcsim -scenarios
//	mdcsim -scenario hetero-fleet -ticks 720
//	mdcsim sweep -scenarios all -policies bf,bf-ob,bf-ml -seeds 1,2,3 -ticks 240 -out sweep-out
//	mdcsim serve -addr :8080 -dir state/ -tick-every 1s
//	mdcsim serve -replay script.json
//	mdcsim serve -report -addr :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lifecycle"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		if err := runSweep(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "mdcsim sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "mdcsim serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	seed := flag.Uint64("seed", 42, "root seed for all stochastic components")
	list := flag.Bool("list", false, "list available experiments and exit")
	listScenarios := flag.Bool("scenarios", false, "list scenario presets and exit")
	scenarioName := flag.String("scenario", "", "run a scenario preset under a managed Best-Fit instead of an experiment")
	ticks := flag.Int("ticks", 24*60, "managed run length in ticks (with -scenario)")
	admitAll := flag.Bool("admit-all", false, "disable the admission controller on churn scenarios (with -scenario)")
	flag.Parse()

	switch {
	case *list:
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	case *listScenarios:
		for _, name := range scenario.Names() {
			fmt.Println(name)
		}
		for _, name := range scenario.HeavyNames() {
			fmt.Printf("%s (heavy: excluded from \"all\")\n", name)
		}
		return
	case *scenarioName != "":
		if err := runScenario(*scenarioName, *seed, *ticks, *admitAll); err != nil {
			fmt.Fprintf(os.Stderr, "mdcsim: %s: %v\n", *scenarioName, err)
			os.Exit(1)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mdcsim [-seed N] <experiment>... | all | sweep [flags] | serve [flags] | -list | -scenarios | -scenario NAME")
		os.Exit(2)
	}
	if len(names) == 1 && names[0] == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// runSweep drives the sweep subcommand: parse the matrix flags, run every
// (scenario, policy, seed) cell in parallel, print the aggregate table and
// optionally write the machine-readable JSON + CSV.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: mdcsim sweep [flags]")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "scenarios: %s\n", strings.Join(scenario.Names(), ", "))
		fmt.Fprintf(fs.Output(), "heavy (by explicit name only): %s\n", strings.Join(scenario.HeavyNames(), ", "))
		fmt.Fprintf(fs.Output(), "policies:  %s\n", strings.Join(sweep.PolicyNames(), ", "))
	}
	scenarios := fs.String("scenarios", "all", "comma-separated scenario presets, or \"all\"")
	policiesF := fs.String("policies", "bf,bf-ob,bf-ml", "comma-separated policy names")
	seedsF := fs.String("seeds", "1,2,3", "comma-separated root seeds, one cell replica per seed")
	ticks := fs.Int("ticks", 240, "simulated length of every cell in ticks (1 tick = 1 min)")
	workers := fs.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS)")
	out := fs.String("out", "", "directory for sweep.json + cells.csv (empty = print only)")
	cellsToo := fs.Bool("cells", false, "also print the per-cell table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	seeds, err := parseSeeds(*seedsF)
	if err != nil {
		return err
	}
	scenarioList := splitList(*scenarios)
	policyList := splitList(*policiesF)
	// Validate every name up front, reporting all unknowns at once with
	// the full known-name lists — not one bad name at a time, and never
	// after cells have already burned CPU.
	if err := validateNames(scenarioList, policyList); err != nil {
		return err
	}
	m := sweep.Matrix{
		Scenarios: scenarioList,
		Policies:  policyList,
		Seeds:     seeds,
		Ticks:     *ticks,
		Workers:   *workers,
	}
	start := time.Now()
	res, err := sweep.Run(m)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *cellsToo {
		t := res.CellsTable()
		fmt.Println(t.Render())
	}
	fmt.Print(res.Render())
	fmt.Printf("(%d cells in %s)\n", len(res.Cells), elapsed.Round(time.Millisecond))
	if *out != "" {
		jsonPath, csvPath, err := res.WriteFiles(*out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", jsonPath, csvPath)
	}
	return nil
}

// validateNames checks every -scenarios and -policies entry against the
// registries and reports all unknown names in one error, with the full
// known-name lists (mirroring the scenario.Preset / sweep.PolicyByName
// errors, but before any cell runs).
func validateNames(scenarios, policies []string) error {
	var unknownS, unknownP []string
	for _, name := range scenarios {
		if name == "all" && len(scenarios) == 1 {
			continue // sweep.Run expands "all" only as the sole entry
		}
		if _, err := scenario.Preset(name, 0); err != nil {
			unknownS = append(unknownS, name)
		}
	}
	for _, name := range policies {
		if _, err := sweep.PolicyByName(name); err != nil {
			unknownP = append(unknownP, name)
		}
	}
	if len(unknownS) == 0 && len(unknownP) == 0 {
		return nil
	}
	var b strings.Builder
	if len(unknownS) > 0 {
		fmt.Fprintf(&b, "unknown scenarios %v (have %v, heavy %v)",
			unknownS, scenario.Names(), scenario.HeavyNames())
	}
	if len(unknownP) > 0 {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "unknown policies %v (have %v)", unknownP, sweep.PolicyNames())
	}
	return fmt.Errorf("%s", b.String())
}

// splitList parses a comma-separated flag into trimmed non-empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// parseSeeds parses the -seeds flag.
func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, item := range splitList(s) {
		v, err := strconv.ParseUint(item, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", item, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runScenario drives one preset under the overbooked Best-Fit manager and
// prints an hourly summary plus the closing ledger. Churn presets run
// with the lifecycle event queue and the default admission controller
// (-admit-all disables the gate) and report the churn outcome.
func runScenario(name string, seed uint64, ticks int, admitAll bool) error {
	if ticks <= 0 {
		return fmt.Errorf("-ticks must be positive, got %d", ticks)
	}
	spec, err := scenario.Preset(name, seed)
	if err != nil {
		return err
	}
	sc, err := scenario.Build(spec)
	if err != nil {
		return err
	}
	cost := sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
	bf := sched.NewBestFit(cost, sched.NewOverbooked())
	// Fleet-scale presets (hyperscale: 20000 VMs x 5100 PMs) cannot run
	// the exhaustive scoring matrix interactively; bound the round with
	// the truncated candidate shortlist. Truncation is disclosed, and
	// smaller fleets keep the exact exhaustive scan.
	if pairs := len(sc.Inventory.PMs()) * len(sc.Inventory.VMs()); pairs > 1<<22 {
		bf.Prune, bf.PruneK = true, 32
		fmt.Printf("fleet-scale run (%d VM x PM pairs): candidate pruning on, PruneK 32\n", pairs)
	}
	mgrCfg := core.ManagerConfig{
		World:      sc.World,
		Scheduler:  bf,
		RoundTicks: 10,
		Admission:  core.AdmissionPolicy{Disabled: admitAll},
	}
	var runner *lifecycle.Runner
	if sc.Script != nil {
		runner = lifecycle.NewRunner(sc.Script)
		mgrCfg.Lifecycle = runner
	}
	var faults *lifecycle.FaultRunner
	if sc.Faults != nil {
		faults = lifecycle.NewFaultRunner(sc.Faults)
		mgrCfg.Faults = faults
	}
	mgr, err := core.NewManager(mgrCfg)
	if err != nil {
		return err
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d DCs, %d PMs, %d VMs, %d ticks\n",
		name, sc.Inventory.NumDCs(), sc.Inventory.NumPMs(), len(sc.VMs), ticks)
	if runner != nil {
		fmt.Printf("churn: %d scripted arrivals, admission %s\n",
			len(sc.Script.Arrivals), map[bool]string{true: "disabled", false: "capacity gate"}[admitAll])
	}
	if faults != nil {
		fmt.Printf("faults: %d scripted events\n", len(sc.Faults.Events))
	}
	fmt.Println("tick  SLA    min    watts    PMs  VMs  migs  profit€")
	var sumSLA, sumW float64
	err = mgr.Run(ticks, func(st sim.TickStats) {
		sumSLA += st.AvgSLA
		sumW += st.FacilityWatts
		if st.Tick%60 == 0 {
			fmt.Printf("%4d  %.3f  %.3f  %7.1f  %3d  %3d  %4d  %7.3f\n",
				st.Tick, st.AvgSLA, st.MinSLA, st.FacilityWatts, st.ActivePMs,
				sc.World.NumActiveVMs(), sc.World.TotalMigrations(), st.ProfitEUR)
		}
	})
	if err != nil {
		return err
	}
	l := sc.World.Ledger()
	fmt.Printf("\nsummary: avg SLA %.4f | avg %.1f W | revenue %.3f€ energy %.3f€ penalties %.3f€ profit %.3f€ | %d migrations\n",
		sumSLA/float64(ticks), sumW/float64(ticks),
		l.Revenue(), l.EnergyCost(), l.Penalties(), l.Profit(), sc.World.TotalMigrations())
	if runner != nil {
		st := runner.Stats()
		fmt.Printf("churn: offered %d admitted %d rejected %d deferred %d departed %d | admit rate %.2f | mean time-to-place %.1f ticks\n",
			st.Offered, st.Admitted, st.Rejected, st.Deferrals, st.Departed,
			st.AdmissionRate(), st.MeanPlacementTicks())
	}
	if faults != nil {
		st := faults.Stats()
		fmt.Printf("faults: %d crashes %d takedowns %d drains %d outages | %d interruptions (%d forced) | rehomed %d (mean %.1f max %d ticks) shed %d | availability %.4f | degraded %d ticks\n",
			st.Crashes, st.Takedowns, st.DrainsStarted, st.OutageStarts,
			st.Interruptions, st.ForcedEvictions,
			st.Rehomed, st.MeanRehomeTicks(), st.MaxRehomeTicks, st.Shed,
			st.Availability(), st.DegradedTicks)
	}
	return nil
}
