// Command mdcsim runs the reproduction's experiments — one per table or
// figure of the paper — and prints their tables and terminal charts.
//
// Usage:
//
//	mdcsim -list
//	mdcsim -seed 42 table1 fig4 fig7
//	mdcsim all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "root seed for all stochastic components")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mdcsim [-seed N] <experiment>... | all | -list")
		os.Exit(2)
	}
	if len(names) == 1 && names[0] == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
