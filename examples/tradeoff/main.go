// QoS/energy trade-off explorer (the Figure 8 scenario): for a chosen
// service profile, print how much host energy each SLA target costs at
// several load levels — the chart an operator would use to pick an energy
// budget for a desired QoS, or vice versa.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/queueing"
)

func main() {
	terms := model.DefaultSLATerms
	const cpuTimeReq = 0.012 // CPU-seconds per request
	loads := []float64{10, 30, 60, 90, 120}
	targets := []float64{0.80, 0.90, 0.95, 0.99}

	fmt.Println("service: 12 ms/request, SLA contract RT0=0.1s alpha=10")
	fmt.Println("cells: minimum facility watts (Atom host incl. cooling) to reach the target")
	fmt.Printf("%-10s", "SLA target")
	for _, l := range loads {
		fmt.Printf("  %7.0f rps", l)
	}
	fmt.Println()
	for _, tgt := range targets {
		fmt.Printf("%-10.2f", tgt)
		for _, l := range loads {
			watts := minWatts(terms, l, cpuTimeReq, tgt)
			if watts < 0 {
				fmt.Printf("  %11s", "unreachable")
			} else {
				fmt.Printf("  %9.1f W", watts)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nconversely, the SLA an energy budget buys at 60 rps:")
	for _, watts := range []float64{42.5, 43.0, 43.5, 44.0, 45.0, 47.7} {
		grant := grantForWatts(watts)
		rt := queueing.ResponseTime(
			queueing.Demand{RPS: 60, CPUTimeReq: cpuTimeReq},
			queueing.Grant{CPUPct: grant},
		)
		fmt.Printf("  %.1f W -> grant %3.0f%% CPU -> RT %.3fs -> SLA %.3f\n",
			watts, grant, rt, terms.Fulfilment(rt))
	}
}

// minWatts sweeps CPU grants to find the cheapest that meets the target.
func minWatts(terms model.SLATerms, rps, cpuTime, target float64) float64 {
	for grant := 5.0; grant <= 400; grant += 1 {
		rt := queueing.ResponseTime(
			queueing.Demand{RPS: rps, CPUTimeReq: cpuTime},
			queueing.Grant{CPUPct: grant},
		)
		if terms.Fulfilment(rt) >= target {
			return power.FacilityWatts(power.Atom{}, grant)
		}
	}
	return -1
}

// grantForWatts inverts the Atom facility-power curve by scan.
func grantForWatts(watts float64) float64 {
	best := 0.0
	for grant := 0.0; grant <= 400; grant += 1 {
		if power.FacilityWatts(power.Atom{}, grant) <= watts {
			best = grant
		}
	}
	return best
}
