// Follow-the-sun (the Figure 5 scenario): a single web-service with a
// globally rotating client base, managed by a latency-only Best-Fit. The
// VM should circle the planet once per day, always hosted near whichever
// region is awake.
//
//	go run ./examples/followsun
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	const seed = 5
	// The follow-load preset: one VM, four single-host DCs, a client base
	// rotating with the daylight.
	sc, err := scenario.Build(scenario.MustPreset(scenario.FollowLoad, seed))
	if err != nil {
		log.Fatal(err)
	}
	world := sc.World

	cost := sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
	cost.LatencyOnly = true // pure follow-the-load, as in Figure 5
	bf := sched.NewBestFit(cost, sched.NewObserved())
	bf.MinGainEUR = 0.0003
	mgr, err := core.NewManager(core.ManagerConfig{World: world, Scheduler: bf})
	if err != nil {
		log.Fatal(err)
	}
	if err := world.PlaceInitial(model.Placement{0: 0}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("48 hours, one line per 2 simulated hours:")
	fmt.Println("UTC-h  hosting DC  dominant clients  colocated")
	err = mgr.Run(2*model.TicksPerDay, func(st sim.TickStats) {
		if st.Tick%(2*model.TicksPerHour) != 0 {
			return
		}
		dc := world.State().DCOfVM(0)
		truth, _ := world.VMTruthAt(0)
		dom, share := truth.Load.DominantSource()
		mark := ""
		if model.DCID(dom) == dc {
			mark = "yes"
		}
		fmt.Printf("%5d  %-10s  %-10s %2.0f%%    %s\n",
			st.Tick/model.TicksPerHour, sc.Topology.Name(dc),
			sc.Topology.Name(model.DCID(dom)), share*100, mark)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Repeat("-", 46))
	fmt.Printf("total inter-DC moves: %d\n", world.TotalMigrations())
}
