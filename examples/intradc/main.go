// Intra-DC consolidation (the Figure 4 scenario): one datacenter with four
// Atom hosts and five web-services, comparing the plain monitored Best-Fit
// against the ML-enhanced one over a day. Watch the plain policy freeze on
// one host while the ML policy expands and contracts with the load.
//
//	go run ./examples/intradc
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	const seed = 21
	fmt.Println("training predictors...")
	opts := predict.DefaultHarvestOpts(seed)
	opts.Ticks = model.TicksPerDay
	harvest, err := predict.Collect(opts)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := predict.Train(harvest, predict.DefaultTrainConfig(seed))
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, est sched.Estimator) {
		sc, err := scenario.Build(scenario.MustPreset(scenario.IntraDC, seed))
		if err != nil {
			log.Fatal(err)
		}
		if err := sc.World.PlaceInitial(sc.PileOn(0)); err != nil {
			log.Fatal(err)
		}
		cost := sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
		mgr, err := core.NewManager(core.ManagerConfig{
			World:     sc.World,
			Scheduler: sched.NewBestFit(cost, est),
		})
		if err != nil {
			log.Fatal(err)
		}
		var sumSLA, sumW, sumPMs float64
		n := model.TicksPerDay
		if err := mgr.Run(n, func(st sim.TickStats) {
			sumSLA += st.AvgSLA
			sumW += st.FacilityWatts
			sumPMs += float64(st.ActivePMs)
		}); err != nil {
			log.Fatal(err)
		}
		l := sc.World.Ledger()
		fmt.Printf("%-10s avg SLA %.4f | avg %.1f W | avg %.2f PMs | profit %.3f€/day | %d migrations\n",
			name, sumSLA/float64(n), sumW/float64(n), sumPMs/float64(n),
			l.Profit(), sc.World.TotalMigrations())
	}

	fmt.Println("\n24 h on 4 Atom hosts, 5 web-services, round every 10 min:")
	run("BF", sched.NewObserved())
	run("BF-OB", sched.NewOverbooked())
	run("BF+ML", sched.NewML(bundle))
	fmt.Println("\nplain BF trusts the capped 10-minute window and stays piled up;")
	fmt.Println("the ML policy anticipates requirements from load and deconsolidates in time.")
}
