// Quickstart: build the paper's four-datacenter world, train the
// predictors on monitored data, and let the ML-enhanced Best-Fit manage
// five web-services for six simulated hours.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	const seed = 7

	// 1. A multi-DC world: Brisbane, Bangaluru, Barcelona, Boston (Table II
	//    prices and latencies), one Atom host per DC, five web-services —
	//    the multi-dc preset, slightly hotter.
	spec := scenario.MustPreset(scenario.MultiDC, seed)
	spec.LoadScale = 1.2
	sc, err := scenario.Build(spec)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the seven predictors of Table I on monitored harvest runs.
	fmt.Println("training predictors (one simulated day of monitoring)...")
	opts := predict.DefaultHarvestOpts(seed)
	opts.Ticks = model.TicksPerDay
	harvest, err := predict.Collect(opts)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := predict.Train(harvest, predict.DefaultTrainConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range bundle.Reports {
		fmt.Printf("  %-7s corr=%.3f\n", rep.Name, rep.Correlation)
	}

	// 3. Wire the management loop: ML-enhanced Best-Fit deciding every
	//    10 minutes over the Figure 3 profit objective.
	cost := sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
	manager, err := core.NewManager(core.ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(cost, sched.NewML(bundle)),
		RoundTicks: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		log.Fatal(err)
	}

	// 4. Run eighteen hours and watch the fleet consolidate and spread.
	fmt.Println("\ntick  SLA    watts  PMs  placement of vm0")
	err = manager.Run(18*model.TicksPerHour, func(st sim.TickStats) {
		if st.Tick%60 != 0 {
			return
		}
		dc := sc.World.State().DCOfVM(0)
		fmt.Printf("%4d  %.3f  %5.1f  %d    %s\n",
			st.Tick, st.AvgSLA, st.FacilityWatts, st.ActivePMs, sc.Topology.Name(dc))
	})
	if err != nil {
		log.Fatal(err)
	}

	ledger := sc.World.Ledger()
	fmt.Printf("\n18h summary: revenue %.3f€, energy %.3f€, penalties %.3f€, profit %.3f€ (%d migrations)\n",
		ledger.Revenue(), ledger.EnergyCost(), ledger.Penalties(), ledger.Profit(),
		sc.World.TotalMigrations())
}
