// Package network models the multi-DC interconnect: client-to-DC and
// DC-to-DC latencies, inter-DC bandwidth, and the duration of VM
// migrations (freeze + image transfer + restore).
//
// Latencies and locations reproduce Table II of the paper, which the
// authors derived from the published Verizon intercontinental round-trip
// figures, with a fixed 10 Gbps inter-DC line.
package network

import (
	"fmt"

	"repro/internal/model"
)

// Topology describes the geography of the multi-DC system.
type Topology struct {
	names     []string
	prices    []float64   // EUR per kWh at each DC (static base)
	latDCDC   [][]float64 // seconds, symmetric, zero diagonal
	bandwidth float64     // inter-DC line, megabits per second
	schedule  PriceSchedule
}

// Option mutates a Topology under construction.
type Option func(*Topology)

// WithBandwidth overrides the inter-DC line capacity in Mbps.
func WithBandwidth(mbps float64) Option {
	return func(t *Topology) { t.bandwidth = mbps }
}

// New builds a topology from DC names, electricity prices (EUR/kWh) and a
// symmetric DC-to-DC latency matrix in seconds.
func New(names []string, pricesEURkWh []float64, latSeconds [][]float64, opts ...Option) (*Topology, error) {
	n := len(names)
	if n == 0 {
		return nil, fmt.Errorf("network: need at least one DC")
	}
	if len(pricesEURkWh) != n || len(latSeconds) != n {
		return nil, fmt.Errorf("network: names/prices/latencies sizes differ (%d/%d/%d)",
			n, len(pricesEURkWh), len(latSeconds))
	}
	for i, row := range latSeconds {
		if len(row) != n {
			return nil, fmt.Errorf("network: latency row %d has %d entries, want %d", i, len(row), n)
		}
		if row[i] != 0 {
			return nil, fmt.Errorf("network: latency diagonal must be zero at %d", i)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("network: negative latency [%d][%d]", i, j)
			}
			if latSeconds[j][i] != v {
				return nil, fmt.Errorf("network: latency matrix not symmetric at [%d][%d]", i, j)
			}
		}
	}
	t := &Topology{
		names:     append([]string(nil), names...),
		prices:    append([]float64(nil), pricesEURkWh...),
		bandwidth: 10_000, // 10 Gbps in Mbps, the paper's assumption
	}
	t.latDCDC = make([][]float64, n)
	for i := range latSeconds {
		t.latDCDC[i] = append([]float64(nil), latSeconds[i]...)
	}
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// PaperTopology returns the exact four-DC system of Table II:
// Brisbane, Bangaluru, Barcelona, Boston with the printed electricity
// prices (EUR/kWh) and inter-DC latencies (milliseconds).
func PaperTopology() *Topology {
	ms := func(v float64) float64 { return v / 1000 }
	t, err := New(
		[]string{"Brisbane", "Bangaluru", "Barcelona", "Boston"},
		[]float64{0.1314, 0.1218, 0.1513, 0.1120},
		[][]float64{
			{0, ms(265), ms(390), ms(255)},
			{ms(265), 0, ms(250), ms(380)},
			{ms(390), ms(250), 0, ms(90)},
			{ms(255), ms(380), ms(90), 0},
		},
	)
	if err != nil {
		panic("network: paper topology invalid: " + err.Error())
	}
	return t
}

// GlobalTopology returns the production-scale six-DC system: the four
// Table II sites plus Frankfurt and Singapore, with electricity prices in
// the same EUR/kWh band and one-way latencies (milliseconds) consistent
// with published intercontinental round-trip figures. The first four DCs
// are bit-identical to PaperTopology, so sub-fleets drawn from the prefix
// behave exactly like the paper's system.
func GlobalTopology() *Topology {
	ms := func(v float64) float64 { return v / 1000 }
	t, err := New(
		[]string{"Brisbane", "Bangaluru", "Barcelona", "Boston", "Frankfurt", "Singapore"},
		[]float64{0.1314, 0.1218, 0.1513, 0.1120, 0.1482, 0.1169},
		[][]float64{
			{0, ms(265), ms(390), ms(255), ms(300), ms(95)},
			{ms(265), 0, ms(250), ms(380), ms(220), ms(70)},
			{ms(390), ms(250), 0, ms(90), ms(30), ms(230)},
			{ms(255), ms(380), ms(90), 0, ms(100), ms(250)},
			{ms(300), ms(220), ms(30), ms(100), 0, ms(200)},
			{ms(95), ms(70), ms(230), ms(250), ms(200), 0},
		},
	)
	if err != nil {
		panic("network: global topology invalid: " + err.Error())
	}
	return t
}

// NumDCs returns the number of datacenters.
func (t *Topology) NumDCs() int { return len(t.names) }

// Name returns the human name of a DC.
func (t *Topology) Name(dc model.DCID) string { return t.names[dc] }

// EnergyPrice returns the electricity price at a DC in EUR/kWh.
func (t *Topology) EnergyPrice(dc model.DCID) float64 { return t.prices[dc] }

// CheapestDC returns the DC with the lowest electricity price.
func (t *Topology) CheapestDC() model.DCID {
	best := 0
	for i := 1; i < len(t.prices); i++ {
		if t.prices[i] < t.prices[best] {
			best = i
		}
	}
	return model.DCID(best)
}

// LatencyDCDC returns the one-way latency between two DCs in seconds.
func (t *Topology) LatencyDCDC(a, b model.DCID) float64 { return t.latDCDC[a][b] }

// LatencyClientDC returns the transport latency experienced by clients of
// location loc when their VM is hosted at DC dc. Client requests enter the
// system through their local DC's ISP (the paper's gateway model), so the
// added latency is exactly the inter-DC hop; local hosting adds none.
func (t *Topology) LatencyClientDC(loc model.LocationID, dc model.DCID) float64 {
	return t.latDCDC[loc][dc]
}

// BandwidthMbps returns the inter-DC line capacity.
func (t *Topology) BandwidthMbps() float64 { return t.bandwidth }

// FreezeRestoreOverhead is the fixed VM freeze+restore time in seconds added
// to every migration on top of the image transfer.
const FreezeRestoreOverhead = 5.0

// MigrationDuration returns the wall-clock seconds needed to move a VM
// image of the given size between two DCs (or within one DC, where only
// the local fabric and freeze/restore cost apply).
func (t *Topology) MigrationDuration(imageGB float64, from, to model.DCID) float64 {
	if imageGB < 0 {
		imageGB = 0
	}
	bits := imageGB * 8 * 1000 // gigabits -> megabits
	transfer := bits / t.bandwidth
	rtt := 2 * t.latDCDC[from][to]
	return FreezeRestoreOverhead + transfer + rtt
}

// NearestDC returns the DC with the smallest latency to the given source
// location, excluding none. Ties resolve to the lowest index.
func (t *Topology) NearestDC(loc model.LocationID) model.DCID {
	best := 0
	for i := 1; i < len(t.names); i++ {
		if t.latDCDC[loc][i] < t.latDCDC[loc][best] {
			best = i
		}
	}
	return model.DCID(best)
}

// MeanLatencyFrom returns the request-weighted mean transport latency a VM
// would see if hosted at dc under the given load vector: the quantity
// RTtransport of constraint (6.2) aggregated over sources.
func (t *Topology) MeanLatencyFrom(dc model.DCID, loads model.LoadVector) float64 {
	var weighted, total float64
	for loc, l := range loads {
		if l.RPS <= 0 {
			continue
		}
		weighted += l.RPS * t.LatencyClientDC(model.LocationID(loc), dc)
		total += l.RPS
	}
	if total <= 0 {
		return 0
	}
	return weighted / total
}
