package network

import (
	"math"

	"repro/internal/model"
)

// PriceSchedule returns the electricity price (EUR/kWh) ruling at a DC
// during a simulation tick. It implements the paper's future-work item of
// folding green-energy availability into the energy cost: "a 'follow the
// sun/wind' policy could also be introduced easily into the energy cost
// computation".
type PriceSchedule func(dc model.DCID, tick int) float64

// WithPriceSchedule installs a time-varying price model; EnergyPriceAt
// consults it, while EnergyPrice keeps returning the static base price.
func WithPriceSchedule(ps PriceSchedule) Option {
	return func(t *Topology) { t.schedule = ps }
}

// SetPriceSchedule installs or replaces the price schedule after
// construction.
func (t *Topology) SetPriceSchedule(ps PriceSchedule) { t.schedule = ps }

// EnergyPriceAt returns the electricity price at a DC during a tick,
// falling back to the static Table II price when no schedule is set.
func (t *Topology) EnergyPriceAt(dc model.DCID, tick int) float64 {
	if t.schedule != nil {
		return t.schedule(dc, tick)
	}
	return t.prices[dc]
}

// EnergyPricesAt appends the per-DC electricity prices ruling at a tick to
// dst[:0] and returns it — the batch cache hook for decision makers that
// price many candidate assignments against the same tick (one schedule
// call per DC per round instead of one per candidate).
func (t *Topology) EnergyPricesAt(tick int, dst []float64) []float64 {
	dst = dst[:0]
	for dc := range t.prices {
		dst = append(dst, t.EnergyPriceAt(model.DCID(dc), tick))
	}
	return dst
}

// CheapestDCAt returns the DC with the lowest price at the given tick.
func (t *Topology) CheapestDCAt(tick int) model.DCID {
	best := model.DCID(0)
	bestP := t.EnergyPriceAt(0, tick)
	for i := 1; i < len(t.prices); i++ {
		if p := t.EnergyPriceAt(model.DCID(i), tick); p < bestP {
			bestP = p
			best = model.DCID(i)
		}
	}
	return best
}

// SolarPricing builds a price schedule where each DC's price dips while
// its local sun shines — on-site photovoltaics displacing grid power. The
// dip is strongest at local solar noon and zero at night:
//
//	price(dc, t) = base(dc) * (1 - dip * solar(localHour))
//
// tzOffsetH are the DC timezone offsets in hours; dip in [0, 1] is the
// maximal price reduction (1 = free at solar noon).
func SolarPricing(base []float64, tzOffsetH []float64, dip float64) PriceSchedule {
	if dip < 0 {
		dip = 0
	}
	if dip > 1 {
		dip = 1
	}
	return func(dc model.DCID, tick int) float64 {
		if int(dc) >= len(base) {
			return 0
		}
		tz := 0.0
		if int(dc) < len(tzOffsetH) {
			tz = tzOffsetH[dc]
		}
		hourUTC := float64(tick%model.TicksPerDay) / float64(model.TicksPerHour)
		local := math.Mod(hourUTC+tz+240, 24)
		return base[dc] * (1 - dip*solarIrradiance(local))
	}
}

// solarIrradiance approximates the normalised solar curve: zero before
// 06:00 and after 18:00 local, a sine bump peaking at noon.
func solarIrradiance(localHour float64) float64 {
	if localHour < 6 || localHour > 18 {
		return 0
	}
	return math.Sin((localHour - 6) / 12 * math.Pi)
}

// WindPricing builds a schedule with pseudo-random per-DC wind fronts:
// multi-hour windows during which a DC's price drops by dip. The windows
// are deterministic in (dc, day) so experiments stay reproducible.
func WindPricing(base []float64, dip float64) PriceSchedule {
	if dip < 0 {
		dip = 0
	}
	if dip > 1 {
		dip = 1
	}
	return func(dc model.DCID, tick int) float64 {
		if int(dc) >= len(base) {
			return 0
		}
		// A simple deterministic hash spreads fronts across DCs and days.
		day := tick / model.TicksPerDay
		hour := (tick % model.TicksPerDay) / model.TicksPerHour
		h := uint64(dc)*2654435761 + uint64(day)*40503 + 977
		start := int(h % 24)
		length := 4 + int((h>>8)%8) // 4..11 hour fronts
		inFront := false
		for k := 0; k < length; k++ {
			if (start+k)%24 == hour {
				inFront = true
				break
			}
		}
		if inFront {
			return base[dc] * (1 - dip)
		}
		return base[dc]
	}
}
