package network

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestEnergyPriceAtDefaultsToStatic(t *testing.T) {
	top := PaperTopology()
	for dc := 0; dc < 4; dc++ {
		if top.EnergyPriceAt(model.DCID(dc), 123) != top.EnergyPrice(model.DCID(dc)) {
			t.Fatalf("unscheduled price differs at DC %d", dc)
		}
	}
}

func TestSolarPricingShape(t *testing.T) {
	base := []float64{0.10, 0.20}
	tz := []float64{0, 12} // DC 1 lives 12 hours ahead
	ps := SolarPricing(base, tz, 0.5)

	noonUTC := 12 * model.TicksPerHour
	midnightUTC := 0
	// DC 0 at its local noon: maximum dip = base * (1-0.5).
	if got := ps(0, noonUTC); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("noon price = %v, want 0.05", got)
	}
	// DC 0 at local midnight: full price.
	if got := ps(0, midnightUTC); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("midnight price = %v, want 0.10", got)
	}
	// DC 1 is phase-shifted: its local noon is UTC midnight.
	if got := ps(1, midnightUTC); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("DC1 at its noon = %v, want 0.10 (dipped from 0.20)", got)
	}
	if got := ps(1, noonUTC); math.Abs(got-0.20) > 1e-9 {
		t.Fatalf("DC1 at its midnight = %v, want full 0.20", got)
	}
	// Out-of-range DC yields zero rather than panicking.
	if ps(9, 0) != 0 {
		t.Fatal("out-of-range DC should price at 0")
	}
}

func TestSolarPricingClampsDip(t *testing.T) {
	ps := SolarPricing([]float64{0.1}, []float64{0}, 5) // dip clamps to 1
	if got := ps(0, 12*model.TicksPerHour); got < 0 {
		t.Fatalf("price went negative: %v", got)
	}
	ps = SolarPricing([]float64{0.1}, []float64{0}, -1) // clamps to 0
	if got := ps(0, 12*model.TicksPerHour); got != 0.1 {
		t.Fatalf("negative dip should be ignored: %v", got)
	}
}

func TestSolarIrradianceEnvelope(t *testing.T) {
	if solarIrradiance(3) != 0 || solarIrradiance(20) != 0 {
		t.Fatal("sun shining at night")
	}
	if math.Abs(solarIrradiance(12)-1) > 1e-9 {
		t.Fatalf("noon irradiance = %v", solarIrradiance(12))
	}
	if solarIrradiance(9) <= 0 || solarIrradiance(9) >= 1 {
		t.Fatalf("morning irradiance out of range: %v", solarIrradiance(9))
	}
}

func TestWindPricingDeterministicAndBounded(t *testing.T) {
	base := []float64{0.10, 0.15}
	ps := WindPricing(base, 0.8)
	sawDiscount, sawFull := false, false
	for tick := 0; tick < 3*model.TicksPerDay; tick += 30 {
		for dc := 0; dc < 2; dc++ {
			p := ps(model.DCID(dc), tick)
			if p != ps(model.DCID(dc), tick) {
				t.Fatal("wind pricing not deterministic")
			}
			full := base[dc]
			disc := base[dc] * 0.2
			switch {
			case math.Abs(p-full) < 1e-12:
				sawFull = true
			case math.Abs(p-disc) < 1e-12:
				sawDiscount = true
			default:
				t.Fatalf("price %v is neither full %v nor discounted %v", p, full, disc)
			}
		}
	}
	if !sawDiscount || !sawFull {
		t.Fatal("wind fronts should alternate discounted and full prices")
	}
	if WindPricing(base, 0.5)(9, 0) != 0 {
		t.Fatal("out-of-range DC should price at 0")
	}
}

func TestCheapestDCAtFollowsSchedule(t *testing.T) {
	top := PaperTopology()
	// Static: Boston (3) is cheapest.
	if top.CheapestDCAt(0) != 3 {
		t.Fatal("static cheapest wrong")
	}
	// Make Barcelona free at tick 100.
	top.SetPriceSchedule(func(dc model.DCID, tick int) float64 {
		if dc == 2 && tick == 100 {
			return 0.001
		}
		return top.EnergyPrice(dc)
	})
	if top.CheapestDCAt(100) != 2 {
		t.Fatal("schedule ignored")
	}
	if top.CheapestDCAt(99) != 3 {
		t.Fatal("schedule leaked to other ticks")
	}
}
