package network

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestPaperTopologyTableII(t *testing.T) {
	top := PaperTopology()
	if top.NumDCs() != 4 {
		t.Fatalf("NumDCs = %d", top.NumDCs())
	}
	wantNames := []string{"Brisbane", "Bangaluru", "Barcelona", "Boston"}
	wantPrices := []float64{0.1314, 0.1218, 0.1513, 0.1120}
	for i := range wantNames {
		if got := top.Name(model.DCID(i)); got != wantNames[i] {
			t.Errorf("Name(%d) = %q", i, got)
		}
		if got := top.EnergyPrice(model.DCID(i)); got != wantPrices[i] {
			t.Errorf("EnergyPrice(%d) = %v", i, got)
		}
	}
	// Spot-check Table II latencies (ms -> s).
	checks := []struct {
		a, b model.DCID
		ms   float64
	}{
		{0, 1, 265}, {0, 2, 390}, {0, 3, 255},
		{1, 2, 250}, {1, 3, 380}, {2, 3, 90},
	}
	for _, c := range checks {
		if got := top.LatencyDCDC(c.a, c.b); math.Abs(got-c.ms/1000) > 1e-12 {
			t.Errorf("LatencyDCDC(%v,%v) = %v, want %v", c.a, c.b, got, c.ms/1000)
		}
		if top.LatencyDCDC(c.b, c.a) != top.LatencyDCDC(c.a, c.b) {
			t.Errorf("latency not symmetric for %v-%v", c.a, c.b)
		}
	}
	for i := 0; i < 4; i++ {
		if top.LatencyDCDC(model.DCID(i), model.DCID(i)) != 0 {
			t.Errorf("self latency not zero for %d", i)
		}
	}
	if top.BandwidthMbps() != 10_000 {
		t.Fatalf("bandwidth = %v, want 10 Gbps", top.BandwidthMbps())
	}
}

func TestCheapestDC(t *testing.T) {
	top := PaperTopology()
	// Boston (0.1120) is the cheapest in Table II.
	if got := top.CheapestDC(); got != 3 {
		t.Fatalf("CheapestDC = %v, want Boston(3)", got)
	}
}

func TestNewValidation(t *testing.T) {
	_, err := New(nil, nil, nil)
	if err == nil {
		t.Fatal("accepted empty topology")
	}
	_, err = New([]string{"a"}, []float64{0.1, 0.2}, [][]float64{{0}})
	if err == nil {
		t.Fatal("accepted mismatched prices")
	}
	_, err = New([]string{"a", "b"}, []float64{0.1, 0.2}, [][]float64{{0, 1}, {2, 0}})
	if err == nil {
		t.Fatal("accepted asymmetric matrix")
	}
	_, err = New([]string{"a", "b"}, []float64{0.1, 0.2}, [][]float64{{1, 1}, {1, 0}})
	if err == nil {
		t.Fatal("accepted non-zero diagonal")
	}
	_, err = New([]string{"a", "b"}, []float64{0.1, 0.2}, [][]float64{{0, -1}, {-1, 0}})
	if err == nil {
		t.Fatal("accepted negative latency")
	}
}

func TestMigrationDuration(t *testing.T) {
	top := PaperTopology()
	// 4 GB image Barcelona -> Boston over 10 Gbps:
	// transfer = 4*8*1000/10000 = 3.2 s, + 5 s freeze/restore + 2*0.09 rtt.
	got := top.MigrationDuration(4, 2, 3)
	want := 5.0 + 3.2 + 0.18
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MigrationDuration = %v, want %v", got, want)
	}
	// Intra-DC migration costs only freeze/restore + transfer.
	gotLocal := top.MigrationDuration(4, 2, 2)
	if math.Abs(gotLocal-(5.0+3.2)) > 1e-9 {
		t.Fatalf("local MigrationDuration = %v", gotLocal)
	}
	// Negative size treated as zero.
	if got := top.MigrationDuration(-1, 0, 1); got < 5 {
		t.Fatalf("negative image duration = %v", got)
	}
}

func TestMigrationDurationGrowsWithImage(t *testing.T) {
	top := PaperTopology()
	small := top.MigrationDuration(1, 0, 1)
	big := top.MigrationDuration(16, 0, 1)
	if big <= small {
		t.Fatal("bigger image should migrate slower")
	}
}

func TestNearestDC(t *testing.T) {
	top := PaperTopology()
	// Each location's nearest DC is itself (0 latency).
	for i := 0; i < 4; i++ {
		if got := top.NearestDC(model.LocationID(i)); got != model.DCID(i) {
			t.Errorf("NearestDC(%d) = %v", i, got)
		}
	}
}

func TestMeanLatencyFrom(t *testing.T) {
	top := PaperTopology()
	loads := model.LoadVector{
		{RPS: 10}, // Brisbane clients
		{},        // none
		{RPS: 30}, // Barcelona clients
		{},
	}
	// Hosted in Barcelona (2): 10 req at 390ms + 30 req at 0.
	got := top.MeanLatencyFrom(2, loads)
	want := (10*0.390 + 30*0) / 40
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanLatencyFrom = %v, want %v", got, want)
	}
	if top.MeanLatencyFrom(0, model.LoadVector{{}, {}, {}, {}}) != 0 {
		t.Fatal("no-load latency should be 0")
	}
}

func TestWithBandwidth(t *testing.T) {
	top, err := New([]string{"a", "b"}, []float64{0.1, 0.2},
		[][]float64{{0, 0.1}, {0.1, 0}}, WithBandwidth(1000))
	if err != nil {
		t.Fatal(err)
	}
	if top.BandwidthMbps() != 1000 {
		t.Fatalf("bandwidth = %v", top.BandwidthMbps())
	}
	// Slower line -> longer migration.
	fast := PaperTopology().MigrationDuration(4, 0, 1)
	slow := top.MigrationDuration(4, 0, 1)
	if slow <= fast {
		t.Fatal("lower bandwidth should slow migration")
	}
}

func TestLatencyClientDCEqualsDCDC(t *testing.T) {
	top := PaperTopology()
	for l := 0; l < 4; l++ {
		for d := 0; d < 4; d++ {
			if top.LatencyClientDC(model.LocationID(l), model.DCID(d)) != top.LatencyDCDC(model.DCID(l), model.DCID(d)) {
				t.Fatalf("client latency mismatch at %d,%d", l, d)
			}
		}
	}
}
