package core

import (
	"testing"

	"repro/internal/lifecycle"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// churnManager wires a churn preset under a managed Best-Fit with the
// given admission policy, returning the scenario, runner and manager.
func churnManager(t *testing.T, preset string, seed uint64, adm AdmissionPolicy) (*scenario.Scenario, *lifecycle.Runner, *Manager) {
	t.Helper()
	sc, err := scenario.Build(scenario.MustPreset(preset, seed))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Script == nil {
		t.Fatalf("preset %q generated no churn script", preset)
	}
	runner := lifecycle.NewRunner(sc.Script)
	mgr, err := NewManager(ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(costFor(sc), sched.NewOverbooked()),
		RoundTicks: 10,
		Lifecycle:  runner,
		Admission:  adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	return sc, runner, mgr
}

// TestManagedChurnRun drives a storm scenario end to end and checks the
// lifecycle bookkeeping stays consistent with the engine's population.
func TestManagedChurnRun(t *testing.T) {
	sc, runner, mgr := churnManager(t, scenario.ChurnStorm, 11, AdmissionPolicy{})
	staticN := len(sc.VMs)
	if err := mgr.Run(300, nil); err != nil {
		t.Fatal(err)
	}
	st := runner.Stats()
	if st.Offered == 0 || st.Admitted == 0 {
		t.Fatalf("no churn happened: %+v", st)
	}
	if st.Offered != st.Admitted+st.Rejected+runner.PendingDeferred() {
		t.Fatalf("offer accounting leaks: %+v with %d deferred", st, runner.PendingDeferred())
	}
	wantLive := staticN + st.Admitted - st.Departed
	if got := sc.World.NumActiveVMs(); got != wantLive {
		t.Fatalf("live VMs %d, want static %d + admitted %d - departed %d = %d",
			got, staticN, st.Admitted, st.Departed, wantLive)
	}
	if st.Placed == 0 {
		t.Fatal("no admitted VM ever reached a host")
	}
	// Departed VMs must be fully gone: placement state carries no trace.
	if n := len(sc.World.State().Placement()); n != wantLive {
		t.Fatalf("placement holds %d VMs, want %d", n, wantLive)
	}
}

// TestManagedChurnDeterminism runs the identical churn setup twice and
// demands bit-identical money and churn outcomes — the seeded event queue
// makes dynamic workloads replayable.
func TestManagedChurnDeterminism(t *testing.T) {
	run := func() (interface{}, lifecycle.Stats) {
		sc, runner, mgr := churnManager(t, scenario.ChurnPoisson, 23, AdmissionPolicy{})
		if err := mgr.Run(240, nil); err != nil {
			t.Fatal(err)
		}
		return sc.World.Ledger(), runner.Stats()
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 {
		t.Fatalf("ledgers diverged across identical runs:\n%+v\n%+v", l1, l2)
	}
	if s1 != s2 {
		t.Fatalf("churn stats diverged across identical runs:\n%+v\n%+v", s1, s2)
	}
}

// TestAdmissionCapacityGate pins the defer-then-reject arm: a ceiling no
// arrival can fit under defers every offer until the deadline passes,
// then rejects it, and the fleet population never grows.
func TestAdmissionCapacityGate(t *testing.T) {
	sc, runner, mgr := churnManager(t, scenario.ChurnStorm, 11, AdmissionPolicy{
		TargetUtil:    0.0001,
		MaxDeferTicks: 5,
	})
	staticN := len(sc.VMs)
	if err := mgr.Run(300, nil); err != nil {
		t.Fatal(err)
	}
	st := runner.Stats()
	if st.Admitted != 0 {
		t.Fatalf("impossible ceiling admitted %d VMs", st.Admitted)
	}
	if st.Rejected == 0 || st.Deferrals == 0 {
		t.Fatalf("gate never deferred/rejected: %+v", st)
	}
	if got := sc.World.NumActiveVMs(); got != staticN {
		t.Fatalf("population grew to %d under a closed gate", got)
	}
}

// TestAdmissionDisabled admits everything regardless of pressure.
func TestAdmissionDisabled(t *testing.T) {
	_, runner, mgr := churnManager(t, scenario.ChurnStorm, 11, AdmissionPolicy{Disabled: true})
	if err := mgr.Run(300, nil); err != nil {
		t.Fatal(err)
	}
	st := runner.Stats()
	if st.Offered == 0 || st.Admitted != st.Offered {
		t.Fatalf("admit-all gated something: %+v", st)
	}
}
