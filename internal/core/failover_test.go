package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// TestManagerSurvivesHostFailure injects a PM crash mid-run and checks the
// MAPE loop reschedules the victims onto surviving hosts within one round.
func TestManagerSurvivesHostFailure(t *testing.T) {
	sc := testScenario(t, scenario.Spec{VMs: 3, PMsPerDC: 1, DCs: 3, Seed: 13})
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(costFor(sc), sched.NewOverbooked()),
		RoundTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(15, nil); err != nil {
		t.Fatal(err)
	}
	victim := sc.World.State().HostOf(0)
	if victim == model.NoPM {
		t.Fatal("vm0 unplaced before failure")
	}
	if err := sc.World.FailPM(victim); err != nil {
		t.Fatal(err)
	}
	if sc.World.State().HostOf(0) != model.NoPM {
		t.Fatal("vm0 not evicted by failure")
	}
	// The next scheduling round (within 10 ticks) must re-home the VM on a
	// surviving host.
	if err := m.Run(12, nil); err != nil {
		t.Fatal(err)
	}
	newHost := sc.World.State().HostOf(0)
	if newHost == model.NoPM {
		t.Fatal("vm0 still homeless after a full round")
	}
	if newHost == victim {
		t.Fatal("vm0 returned to the failed host")
	}
	// The problem builder must keep excluding the corpse.
	p := m.BuildProblem()
	for _, h := range p.Hosts {
		if h.Spec.ID == victim {
			t.Fatal("failed host still offered as candidate")
		}
	}
	// Recovery restores it.
	sc.World.RecoverPM(victim)
	p = m.BuildProblem()
	found := false
	for _, h := range p.Hosts {
		if h.Spec.ID == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered host missing from candidates")
	}
}
