// Package core glues the reproduction together: the Monitor-Analyze-Plan-
// Execute management loop that drives a simulated multi-DC fleet with a
// scheduler, and the paper's primary contribution — the hierarchical
// two-layer scheduler where each datacenter solves its own placement
// problem and exports only a narrow interface (movable VMs and candidate
// hosts) to the global inter-DC round.
package core

import (
	"fmt"

	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ManagerConfig assembles a management loop.
type ManagerConfig struct {
	World     *sim.World
	Scheduler sched.Scheduler
	// RoundTicks is the scheduling period in ticks (paper: every 10 min).
	RoundTicks int
	// Movable filters which VMs participate in rounds (nil = all).
	Movable func(model.VMID) bool
	// Lifecycle drives dynamic VM arrivals and departures through the
	// admission controller (nil = the classic fixed population).
	Lifecycle *lifecycle.Runner
	// Admission gates Lifecycle arrivals. The zero value is the default
	// capacity gate; set Disabled to admit everything.
	Admission AdmissionPolicy
}

// Manager runs the MAPE loop: observe the world, build the scheduling
// problem, plan with the scheduler, execute the placement, repeat.
type Manager struct {
	cfg    ManagerConfig
	rounds int
	// problem, loadBufs and placement are reused across rounds so the
	// steady-state MAPE loop stops allocating a fresh scheduler view (and
	// result map) every 10 minutes.
	problem   sched.Problem
	loadBufs  []model.LoadVector
	placement model.Placement
	// hostedFn is the reusable placement probe handed to the lifecycle
	// runner after each round (built once, no per-round closure).
	hostedFn func(model.VMID) bool
	// pendingCommits ledgers the estimated requirements of admitted VMs
	// that have not reached a host yet: their needs are invisible to the
	// fleet's committed-requirement sum (an unplaced VM requires nothing
	// in truth), but the admission gate must count them or a storm of
	// simultaneous offers would all pass on the same fleet reading. The
	// slice is append-ordered so the sum is bit-deterministic.
	pendingCommits []pendingCommit
}

// pendingCommit is one admitted-but-unplaced VM's reserved requirement.
type pendingCommit struct {
	id  model.VMID
	req model.Resources
}

// intoScheduler is the optional allocation-free scheduling contract: the
// manager recycles one placement map across rounds for schedulers that
// support it (the world applies placements without retaining the map).
type intoScheduler interface {
	ScheduleInto(p *sched.Problem, placement model.Placement) error
}

// NewManager validates and builds a manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("core: World is required")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("core: Scheduler is required")
	}
	if cfg.RoundTicks <= 0 {
		cfg.RoundTicks = 10
	}
	return &Manager{cfg: cfg}, nil
}

// Rounds returns how many scheduling rounds have executed.
func (m *Manager) Rounds() int { return m.rounds }

// BuildProblem assembles the scheduler's view of the world from monitored
// data: gateway load characteristics (with per-source split), queue
// backlogs, window-averaged usage and the current placement. It walks the
// engine's dense index space directly — no per-VM map lookups — and reuses
// the manager's problem storage, so steady-state rounds allocate nothing.
// The returned problem (including every VMInfo.Load) is valid until the
// next BuildProblem call.
func (m *Manager) BuildProblem() *sched.Problem {
	w := m.cfg.World
	obs := w.Observer()
	nDC := w.Topology().NumDCs()
	p := &m.problem
	p.Tick = w.Tick()
	p.VMs = p.VMs[:0]
	p.Hosts = p.Hosts[:0]
	nVM, nPM := w.NumVMs(), w.NumPMs()
	for i := 0; i < nVM; i++ {
		if !w.ActiveVM(i) {
			continue // retired slot under workload churn
		}
		spec := w.VMSpecAt(i)
		if m.cfg.Movable != nil && !m.cfg.Movable(spec.ID) {
			continue
		}
		info := sched.VMInfo{
			Spec:      spec,
			Current:   model.NoPM,
			CurrentDC: -1,
		}
		if j := w.HostIndexOf(i); j >= 0 {
			host := w.PMSpecAt(j)
			info.Current = host.ID
			info.CurrentDC = host.DC
		}
		// One reusable per-slot load vector: the truth row aliases engine
		// buffers, so it is copied (not referenced) before scaling.
		if len(p.VMs) == len(m.loadBufs) {
			m.loadBufs = append(m.loadBufs, make(model.LoadVector, nDC))
		}
		buf := m.loadBufs[len(p.VMs)]
		if cap(buf) < nDC {
			buf = make(model.LoadVector, nDC)
			m.loadBufs[len(p.VMs)] = buf
		}
		buf = buf[:nDC]
		if truth, ok := w.VMTruthByIndex(i); ok {
			copy(buf, truth.Load)
			info.Load = buf
			info.Total = info.Load.Total()
		} else {
			for s := range buf {
				buf[s] = model.Load{}
			}
			info.Load = buf
		}
		if avg, ok := obs.WindowAvgLoad(spec.ID); ok && avg.RPS > 0 {
			// Size against the round-averaged gateway statistics, not one
			// noisy tick; keep the per-source shares of the current vector.
			if info.Total.RPS > 0 {
				k := avg.RPS / info.Total.RPS
				for s := range info.Load {
					info.Load[s] = info.Load[s].Scale(k)
				}
			}
			info.Total = avg
		}
		if s, ok := obs.LastVM(spec.ID); ok {
			info.QueueLen = s.QueueLen
		}
		if avg, ok := obs.WindowAvgVM(spec.ID); ok {
			info.Observed = avg
			info.HasObserved = true
		}
		p.VMs = append(p.VMs, info)
	}
	for j := 0; j < nPM; j++ {
		if w.IsFailedIndex(j) {
			continue // failed hosts are not candidates
		}
		p.Hosts = append(p.Hosts, sched.HostInfo{Spec: w.PMSpecAt(j)})
	}
	return p
}

// Step advances the world one tick: lifecycle events (departures, then
// admission-gated arrivals) land first, then a scheduling round runs
// whenever the tick index is a round boundary (and at least one tick of
// observations exists), then the world ticks.
func (m *Manager) Step() (sim.TickStats, error) {
	w := m.cfg.World
	t := w.Tick()
	if m.cfg.Lifecycle != nil {
		if err := m.stepLifecycle(t); err != nil {
			return sim.TickStats{}, err
		}
	}
	if t > 0 && t%m.cfg.RoundTicks == 0 {
		problem := m.BuildProblem()
		var placement model.Placement
		if is, ok := m.cfg.Scheduler.(intoScheduler); ok {
			if m.placement == nil {
				m.placement = make(model.Placement, len(problem.VMs))
			} else {
				clear(m.placement)
			}
			if err := is.ScheduleInto(problem, m.placement); err != nil {
				return sim.TickStats{}, fmt.Errorf("core: scheduling round at tick %d: %w", t, err)
			}
			placement = m.placement
		} else {
			var err error
			placement, err = m.cfg.Scheduler.Schedule(problem)
			if err != nil {
				return sim.TickStats{}, fmt.Errorf("core: scheduling round at tick %d: %w", t, err)
			}
		}
		if err := w.ApplySchedule(placement); err != nil {
			return sim.TickStats{}, fmt.Errorf("core: applying schedule: %w", err)
		}
		m.rounds++
		if m.cfg.Lifecycle != nil {
			if m.hostedFn == nil {
				m.hostedFn = func(id model.VMID) bool {
					return m.cfg.World.State().HostOf(id) != model.NoPM
				}
			}
			m.cfg.Lifecycle.ObservePlacements(t, m.hostedFn)
		}
	}
	return w.Step(), nil
}

// stepLifecycle executes the tick's dynamic-workload events: VMs at end
// of lifetime retire, then the admission controller rules on every due
// offer (new arrivals plus the deferral queue). Both queues pop in
// deterministic order, so churn is bit-identical across runs.
func (m *Manager) stepLifecycle(tick int) error {
	lc := m.cfg.Lifecycle
	w := m.cfg.World
	for _, d := range lc.DeparturesDue(tick) {
		if err := w.RetireVM(d.Handle); err != nil {
			return fmt.Errorf("core: retiring %v at tick %d: %w", d.ID, tick, err)
		}
	}
	offers := lc.Due(tick)
	if len(offers) == 0 {
		return nil
	}
	pending := m.prunePendingCommits()
	var fleet fleetCommitment
	if !m.cfg.Admission.Disabled {
		fleet = fleetCommitmentOf(w) // once per tick: truth is frozen between Steps
	}
	for _, o := range offers {
		dec, req := m.cfg.Admission.decide(w, tick, o, fleet, pending)
		var h sim.VMHandle
		if dec == lifecycle.Admit {
			var err error
			if h, err = w.AdmitVM(o.Arrival.Spec); err != nil {
				// Slot pressure the padded bound did not absorb: treat it
				// as a capacity shortage (defer, reject past deadline).
				dec = m.cfg.Admission.deferOrReject(tick, o)
			} else {
				m.pendingCommits = append(m.pendingCommits, pendingCommit{id: o.Arrival.Spec.ID, req: req})
				pending = pending.Add(req)
			}
		}
		lc.Resolve(tick, o, dec, h)
	}
	return nil
}

// prunePendingCommits drops ledger entries whose VM has reached a host
// (its requirement now shows up in the fleet's committed sum) or has
// already departed, and returns the remaining reserved total.
func (m *Manager) prunePendingCommits() model.Resources {
	w := m.cfg.World
	st := w.State()
	kept := m.pendingCommits[:0]
	var sum model.Resources
	for _, pc := range m.pendingCommits {
		if _, live := w.LookupVM(pc.id); !live {
			continue
		}
		if st.HostOf(pc.id) != model.NoPM {
			continue
		}
		kept = append(kept, pc)
		sum = sum.Add(pc.req)
	}
	m.pendingCommits = kept
	return sum
}

// Run advances n ticks, invoking cb after each.
func (m *Manager) Run(n int, cb func(sim.TickStats)) error {
	for i := 0; i < n; i++ {
		st, err := m.Step()
		if err != nil {
			return err
		}
		if cb != nil {
			cb(st)
		}
	}
	return nil
}
