// Package core glues the reproduction together: the Monitor-Analyze-Plan-
// Execute management loop that drives a simulated multi-DC fleet with a
// scheduler, and the paper's primary contribution — the hierarchical
// two-layer scheduler where each datacenter solves its own placement
// problem and exports only a narrow interface (movable VMs and candidate
// hosts) to the global inter-DC round.
package core

import (
	"fmt"

	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ManagerConfig assembles a management loop.
type ManagerConfig struct {
	World     *sim.World
	Scheduler sched.Scheduler
	// RoundTicks is the scheduling period in ticks (paper: every 10 min).
	RoundTicks int
	// Movable filters which VMs participate in rounds (nil = all).
	Movable func(model.VMID) bool
	// Lifecycle drives dynamic VM arrivals and departures through the
	// admission controller (nil = the classic fixed population).
	Lifecycle *lifecycle.Runner
	// Admission gates Lifecycle arrivals. The zero value is the default
	// capacity gate; set Disabled to admit everything.
	Admission AdmissionPolicy
	// Faults replays a fault script: host crashes/repairs, drains and
	// takedowns, DC outages (nil = an immortal fleet).
	Faults *lifecycle.FaultRunner
	// Degraded tunes the capacity-loss response (zero value = defaults).
	Degraded DegradedPolicy
}

// DegradedPolicy is the graceful-degradation contract: when the fleet's
// committed requirements (live VMs + admitted-but-unplaced + evicted VMs
// awaiting re-home) no longer fit in the surviving non-failed, non-
// draining capacity, the manager enters degraded mode — new arrivals are
// deferred without admission (re-homes keep priority for the remaining
// headroom) and, optionally, long-homeless dynamic VMs are shed instead
// of thrashing the deferral queue forever.
type DegradedPolicy struct {
	// Util is the capacity fraction above which committed requirements
	// mean "degraded" (0 = 1.0, i.e. nominal surviving capacity).
	Util float64
	// ShedAfterTicks retires a dynamic VM that has been homeless that long
	// while the fleet is degraded (0 = never shed; keep deferring).
	ShedAfterTicks int
}

// Manager runs the MAPE loop: observe the world, build the scheduling
// problem, plan with the scheduler, execute the placement, repeat.
type Manager struct {
	cfg    ManagerConfig
	rounds int
	// problem, loadBufs and placement are reused across rounds so the
	// steady-state MAPE loop stops allocating a fresh scheduler view (and
	// result map) every 10 minutes.
	problem   sched.Problem
	loadBufs  []model.LoadVector
	placement model.Placement
	// hostedFn is the reusable placement probe handed to the lifecycle
	// runner after each round (built once, no per-round closure).
	hostedFn func(model.VMID) bool
	// pendingCommits ledgers the estimated requirements of admitted VMs
	// that have not reached a host yet: their needs are invisible to the
	// fleet's committed-requirement sum (an unplaced VM requires nothing
	// in truth), but the admission gate must count them or a storm of
	// simultaneous offers would all pass on the same fleet reading. The
	// slice is append-ordered so the sum is bit-deterministic.
	pendingCommits []pendingCommit
	// rehomes ledgers fault-evicted VMs awaiting re-placement: like
	// pendingCommits, their requirements vanish from the fleet's committed
	// sum while unplaced (truth zeroes an unhosted VM), but they were
	// already accepted — admission must reserve their capacity so churn
	// arrivals cannot take it (re-home priority), and they bypass the SLA
	// gate entirely by never re-entering the admission path.
	rehomes []rehomeCommit
	// degraded mirrors the last stepFaults verdict: committed requirements
	// exceed surviving capacity.
	degraded bool
}

// pendingCommit is one admitted-but-unplaced VM's reserved requirement.
type pendingCommit struct {
	id  model.VMID
	req model.Resources
}

// rehomeCommit is one fault-evicted VM's reserved requirement (captured
// from its last pre-eviction truth) and its eviction tick.
type rehomeCommit struct {
	id        model.VMID
	req       model.Resources
	evictTick int
}

// intoScheduler is the optional allocation-free scheduling contract: the
// manager recycles one placement map across rounds for schedulers that
// support it (the world applies placements without retaining the map).
type intoScheduler interface {
	ScheduleInto(p *sched.Problem, placement model.Placement) error
}

// NewManager validates and builds a manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("core: World is required")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("core: Scheduler is required")
	}
	if cfg.RoundTicks <= 0 {
		cfg.RoundTicks = 10
	}
	return &Manager{cfg: cfg}, nil
}

// Rounds returns how many scheduling rounds have executed.
func (m *Manager) Rounds() int { return m.rounds }

// Degraded reports the last fault-step verdict: committed requirements
// exceed the surviving capacity (always false without a fault runner).
func (m *Manager) Degraded() bool { return m.degraded }

// PendingAdmits is the number of admitted-but-unplaced VMs whose
// requirements the admission ledger currently reserves.
func (m *Manager) PendingAdmits() int { return len(m.pendingCommits) }

// PendingRehomes is the number of fault-evicted VMs awaiting re-placement
// whose requirements the re-home ledger currently reserves.
func (m *Manager) PendingRehomes() int { return len(m.rehomes) }

// BuildProblem assembles the scheduler's view of the world from monitored
// data: gateway load characteristics (with per-source split), queue
// backlogs, window-averaged usage and the current placement. It walks the
// engine's dense index space directly — no per-VM map lookups — and reuses
// the manager's problem storage, so steady-state rounds allocate nothing.
// The returned problem (including every VMInfo.Load) is valid until the
// next BuildProblem call.
func (m *Manager) BuildProblem() *sched.Problem {
	w := m.cfg.World
	obs := w.Observer()
	nDC := w.Topology().NumDCs()
	p := &m.problem
	p.Tick = w.Tick()
	p.VMs = p.VMs[:0]
	p.Hosts = p.Hosts[:0]
	nVM, nPM := w.NumVMs(), w.NumPMs()
	for i := 0; i < nVM; i++ {
		if !w.ActiveVM(i) {
			continue // retired slot under workload churn
		}
		spec := w.VMSpecAt(i)
		if m.cfg.Movable != nil && !m.cfg.Movable(spec.ID) {
			continue
		}
		info := sched.VMInfo{
			Spec:      spec,
			Current:   model.NoPM,
			CurrentDC: -1,
		}
		if j := w.HostIndexOf(i); j >= 0 {
			host := w.PMSpecAt(j)
			info.Current = host.ID
			info.CurrentDC = host.DC
		}
		// One reusable per-slot load vector: the truth row aliases engine
		// buffers, so it is copied (not referenced) before scaling.
		if len(p.VMs) == len(m.loadBufs) {
			m.loadBufs = append(m.loadBufs, make(model.LoadVector, nDC))
		}
		buf := m.loadBufs[len(p.VMs)]
		if cap(buf) < nDC {
			buf = make(model.LoadVector, nDC)
			m.loadBufs[len(p.VMs)] = buf
		}
		buf = buf[:nDC]
		if truth, ok := w.VMTruthByIndex(i); ok {
			copy(buf, truth.Load)
			info.Load = buf
			info.Total = info.Load.Total()
		} else {
			for s := range buf {
				buf[s] = model.Load{}
			}
			info.Load = buf
		}
		if avg, ok := obs.WindowAvgLoad(spec.ID); ok && avg.RPS > 0 {
			// Size against the round-averaged gateway statistics, not one
			// noisy tick; keep the per-source shares of the current vector.
			if info.Total.RPS > 0 {
				k := avg.RPS / info.Total.RPS
				for s := range info.Load {
					info.Load[s] = info.Load[s].Scale(k)
				}
			}
			info.Total = avg
		}
		if s, ok := obs.LastVM(spec.ID); ok {
			info.QueueLen = s.QueueLen
		}
		if avg, ok := obs.WindowAvgVM(spec.ID); ok {
			info.Observed = avg
			info.HasObserved = true
		}
		p.VMs = append(p.VMs, info)
	}
	for j := 0; j < nPM; j++ {
		if w.IsFailedIndex(j) || w.IsDrainingIndex(j) {
			continue // failed and draining hosts are not candidates
		}
		p.Hosts = append(p.Hosts, sched.HostInfo{Spec: w.PMSpecAt(j)})
	}
	return p
}

// Step advances the world one tick. Event order within the tick: fault
// events land first (crashes and drains must be visible to this tick's
// admission and round), then lifecycle events (departures, then
// admission-gated arrivals), then degraded-mode shedding, then a
// scheduling round whenever the tick index is a round boundary, then the
// fault runner observes re-home outcomes, then the world ticks.
func (m *Manager) Step() (sim.TickStats, error) {
	w := m.cfg.World
	t := w.Tick()
	if m.cfg.Faults != nil {
		if err := m.stepFaults(t); err != nil {
			return sim.TickStats{}, err
		}
	}
	if m.cfg.Lifecycle != nil {
		if err := m.stepLifecycle(t); err != nil {
			return sim.TickStats{}, err
		}
	}
	if m.cfg.Faults != nil && m.degraded && m.cfg.Degraded.ShedAfterTicks > 0 {
		if err := m.stepShedding(t); err != nil {
			return sim.TickStats{}, err
		}
	}
	// A round with zero candidates (total capacity loss) is skipped, not an
	// error: the fleet keeps ticking — and shedding — until a repair
	// restores candidates.
	if t > 0 && t%m.cfg.RoundTicks == 0 && m.numCandidates() > 0 {
		problem := m.BuildProblem()
		var placement model.Placement
		if is, ok := m.cfg.Scheduler.(intoScheduler); ok {
			if m.placement == nil {
				m.placement = make(model.Placement, len(problem.VMs))
			} else {
				clear(m.placement)
			}
			if err := is.ScheduleInto(problem, m.placement); err != nil {
				return sim.TickStats{}, fmt.Errorf("core: scheduling round at tick %d: %w", t, err)
			}
			placement = m.placement
		} else {
			var err error
			placement, err = m.cfg.Scheduler.Schedule(problem)
			if err != nil {
				return sim.TickStats{}, fmt.Errorf("core: scheduling round at tick %d: %w", t, err)
			}
		}
		if w.NumFailedPMs() > 0 || w.NumDrainingPMs() > 0 {
			// Schedulers that ignore the candidate set (Fixed, replayed
			// placements) may still target unavailable hosts; scrub those
			// assignments rather than abort the run.
			m.sanitizePlacement(placement)
		}
		if err := w.ApplySchedule(placement); err != nil {
			return sim.TickStats{}, fmt.Errorf("core: applying schedule: %w", err)
		}
		m.rounds++
		if m.cfg.Lifecycle != nil {
			m.cfg.Lifecycle.ObservePlacements(t, m.hosted())
		}
	}
	if m.cfg.Faults != nil {
		m.cfg.Faults.ObserveTick(t, w.NumActiveVMs(), m.degraded, m.hosted())
	}
	return w.Step(), nil
}

// numCandidates counts hosts the scheduler may target. Failed and
// draining are disjoint states (a crash clears the drain flag), so the
// two counters subtract cleanly.
func (m *Manager) numCandidates() int {
	w := m.cfg.World
	return w.Inventory().NumPMs() - w.NumFailedPMs() - w.NumDrainingPMs()
}

// hosted returns the reusable placement probe (built once).
func (m *Manager) hosted() func(model.VMID) bool {
	if m.hostedFn == nil {
		m.hostedFn = func(id model.VMID) bool {
			return m.cfg.World.State().HostOf(id) != model.NoPM
		}
	}
	return m.hostedFn
}

// sanitizePlacement rewrites placement entries that target failed hosts
// (or move a VM onto a draining host) to the VM's current host when that
// host is still usable, and to NoPM otherwise. Values are rewritten
// per-key with no cross-entry dependence, so map order does not matter.
func (m *Manager) sanitizePlacement(p model.Placement) {
	w := m.cfg.World
	st := w.State()
	for vm, pm := range p {
		if pm == model.NoPM {
			continue
		}
		cur := st.HostOf(vm)
		if w.IsFailed(pm) || (w.IsDraining(pm) && cur != pm) {
			if cur != model.NoPM && !w.IsFailed(cur) {
				p[vm] = cur // staying put on a draining host is legal
			} else {
				p[vm] = model.NoPM
			}
		}
	}
}

// stepFaults executes the tick's due fault events and refreshes the
// degraded verdict. Crashes and takedowns evict guests into the re-home
// ledger; outages expand to every host of the DC in inventory order.
func (m *Manager) stepFaults(tick int) error {
	fr := m.cfg.Faults
	w := m.cfg.World
	for _, ev := range fr.Due(tick) {
		var err error
		switch ev.Kind {
		case lifecycle.FaultCrash:
			err = m.failHost(tick, ev.PM, false)
		case lifecycle.FaultTakedown:
			err = m.failHost(tick, ev.PM, true)
		case lifecycle.FaultRepair:
			err = w.RecoverPM(ev.PM)
		case lifecycle.FaultDrainStart:
			err = w.DrainPM(ev.PM)
		case lifecycle.FaultOutageStart:
			for _, pm := range w.Inventory().PMsOfDC(ev.DC) {
				if err = m.failHost(tick, pm, false); err != nil {
					break
				}
			}
		case lifecycle.FaultOutageEnd:
			for _, pm := range w.Inventory().PMsOfDC(ev.DC) {
				if err = w.RecoverPM(pm); err != nil {
					break
				}
			}
		}
		if err != nil {
			return fmt.Errorf("core: fault %v at tick %d: %w", ev.Kind, tick, err)
		}
	}

	// Degraded verdict: live requirements plus both unplaced ledgers
	// against the surviving capacity. At the eviction tick itself the
	// victims' last truth still counts them in the committed sum, so the
	// ledger double-counts them for one tick — deliberately conservative;
	// the next world tick zeroes an unhosted VM's requirement.
	fleet := fleetCommitmentOf(w)
	need := fleet.committed.Add(m.prunePendingCommits()).Add(m.pruneRehomes())
	util := m.cfg.Degraded.Util
	if util <= 0 {
		util = 1.0
	}
	m.degraded = !need.FitsIn(fleet.total.Scale(util))
	return nil
}

// failHost captures a host's guests into the re-home ledger (with their
// last-truth requirements) and fails it. forced marks drain-deadline
// takedowns.
func (m *Manager) failHost(tick int, pm model.PMID, forced bool) error {
	w := m.cfg.World
	guests := w.State().GuestsOf(pm)
	for _, id := range guests {
		var req model.Resources
		if truth, ok := w.VMTruthAt(id); ok {
			req = truth.Required
		}
		m.rehomes = append(m.rehomes, rehomeCommit{id: id, req: req, evictTick: tick})
		// The victim moves from the admission ledger (if it was still
		// there) to the re-home ledger; never count it twice.
		m.dropPendingCommit(id)
	}
	if err := w.FailPM(pm); err != nil {
		return err
	}
	if len(guests) > 0 {
		m.cfg.Faults.RecordEvictions(tick, guests, forced)
	}
	return nil
}

// dropPendingCommit removes one VM's admission-ledger entry, if any.
func (m *Manager) dropPendingCommit(id model.VMID) {
	for i := range m.pendingCommits {
		if m.pendingCommits[i].id == id {
			m.pendingCommits = append(m.pendingCommits[:i], m.pendingCommits[i+1:]...)
			return
		}
	}
}

// pruneRehomes drops re-home ledger entries whose VM has a host again or
// has left the world, and returns the remaining reserved total.
func (m *Manager) pruneRehomes() model.Resources {
	w := m.cfg.World
	st := w.State()
	kept := m.rehomes[:0]
	var sum model.Resources
	for _, rc := range m.rehomes {
		if _, live := w.LookupVM(rc.id); !live {
			continue
		}
		if st.HostOf(rc.id) != model.NoPM {
			continue
		}
		kept = append(kept, rc)
		sum = sum.Add(rc.req)
	}
	m.rehomes = kept
	return sum
}

// stepShedding retires dynamic VMs that have been homeless past the
// shedding deadline while the fleet is degraded: capacity is not coming
// back soon, and holding them in the re-home queue forever just thrashes
// every future round. Static inventory VMs are never shed.
func (m *Manager) stepShedding(tick int) error {
	w := m.cfg.World
	st := w.State()
	deadline := m.cfg.Degraded.ShedAfterTicks
	kept := m.rehomes[:0]
	for _, rc := range m.rehomes {
		h, live := w.LookupVM(rc.id)
		if !live {
			continue
		}
		_, dynamic := st.DynamicVM(rc.id)
		if !dynamic || st.HostOf(rc.id) != model.NoPM || tick-rc.evictTick < deadline {
			kept = append(kept, rc)
			continue
		}
		if err := w.RetireVM(h); err != nil {
			return fmt.Errorf("core: shedding %v at tick %d: %w", rc.id, tick, err)
		}
		if m.cfg.Lifecycle != nil {
			// The shed VM must not depart a second time at its scheduled
			// lifetime end.
			m.cfg.Lifecycle.CancelDeparture(rc.id)
		}
		m.cfg.Faults.Drop(rc.id)
		m.cfg.Faults.RecordShed()
	}
	m.rehomes = kept
	return nil
}

// stepLifecycle executes the tick's dynamic-workload events: VMs at end
// of lifetime retire, then the admission controller rules on every due
// offer (new arrivals plus the deferral queue). Both queues pop in
// deterministic order, so churn is bit-identical across runs.
func (m *Manager) stepLifecycle(tick int) error {
	lc := m.cfg.Lifecycle
	w := m.cfg.World
	for _, d := range lc.DeparturesDue(tick) {
		if err := w.RetireVM(d.Handle); err != nil {
			return fmt.Errorf("core: retiring %v at tick %d: %w", d.ID, tick, err)
		}
		if m.cfg.Faults != nil {
			// A homeless VM departing at end of lifetime stops accruing
			// downtime; it is not a re-home.
			m.cfg.Faults.Drop(d.ID)
		}
	}
	if m.cfg.Admission.Rate != nil {
		// Refill the token bucket once per tick, before any decision —
		// including ticks with no offers, so idle periods accumulate burst.
		m.cfg.Admission.Rate.Advance(tick)
	}
	offers := lc.Due(tick)
	if len(offers) == 0 {
		return nil
	}
	// Re-home reservations ride in the pending sum: evicted VMs were
	// already accepted, so arrivals compete only for the headroom the
	// re-home queue does not need.
	pending := m.prunePendingCommits().Add(m.pruneRehomes())
	var fleet fleetCommitment
	if !m.cfg.Admission.Disabled {
		fleet = fleetCommitmentOf(w) // once per tick: truth is frozen between Steps
	}
	for _, o := range offers {
		var dec lifecycle.Decision
		var req model.Resources
		if m.degraded && !m.cfg.Admission.Disabled {
			// Degraded mode: committed load already exceeds surviving
			// capacity, so no arrival can be admitted — defer (reject past
			// deadline) without burning a fleet reading.
			dec = m.cfg.Admission.deferOrReject(tick, o)
		} else {
			dec, req = m.cfg.Admission.decide(w, tick, o, fleet, pending)
		}
		var h sim.VMHandle
		if dec == lifecycle.Admit {
			var err error
			if h, err = w.AdmitVM(o.Arrival.Spec); err != nil {
				// Slot pressure the padded bound did not absorb: treat it
				// as a capacity shortage (defer, reject past deadline).
				dec = m.cfg.Admission.deferOrReject(tick, o)
			} else {
				m.pendingCommits = append(m.pendingCommits, pendingCommit{id: o.Arrival.Spec.ID, req: req})
				pending = pending.Add(req)
			}
		}
		lc.Resolve(tick, o, dec, h)
	}
	return nil
}

// prunePendingCommits drops ledger entries whose VM has reached a host
// (its requirement now shows up in the fleet's committed sum) or has
// already departed, and returns the remaining reserved total.
func (m *Manager) prunePendingCommits() model.Resources {
	w := m.cfg.World
	st := w.State()
	kept := m.pendingCommits[:0]
	var sum model.Resources
	for _, pc := range m.pendingCommits {
		if _, live := w.LookupVM(pc.id); !live {
			continue
		}
		if st.HostOf(pc.id) != model.NoPM {
			continue
		}
		kept = append(kept, pc)
		sum = sum.Add(pc.req)
	}
	m.pendingCommits = kept
	return sum
}

// Run advances n ticks, invoking cb after each.
func (m *Manager) Run(n int, cb func(sim.TickStats)) error {
	for i := 0; i < n; i++ {
		st, err := m.Step()
		if err != nil {
			return err
		}
		if cb != nil {
			cb(st)
		}
	}
	return nil
}
