// Package core glues the reproduction together: the Monitor-Analyze-Plan-
// Execute management loop that drives a simulated multi-DC fleet with a
// scheduler, and the paper's primary contribution — the hierarchical
// two-layer scheduler where each datacenter solves its own placement
// problem and exports only a narrow interface (movable VMs and candidate
// hosts) to the global inter-DC round.
package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ManagerConfig assembles a management loop.
type ManagerConfig struct {
	World     *sim.World
	Scheduler sched.Scheduler
	// RoundTicks is the scheduling period in ticks (paper: every 10 min).
	RoundTicks int
	// Movable filters which VMs participate in rounds (nil = all).
	Movable func(model.VMID) bool
}

// Manager runs the MAPE loop: observe the world, build the scheduling
// problem, plan with the scheduler, execute the placement, repeat.
type Manager struct {
	cfg    ManagerConfig
	rounds int
	// problem, loadBufs and placement are reused across rounds so the
	// steady-state MAPE loop stops allocating a fresh scheduler view (and
	// result map) every 10 minutes.
	problem   sched.Problem
	loadBufs  []model.LoadVector
	placement model.Placement
}

// intoScheduler is the optional allocation-free scheduling contract: the
// manager recycles one placement map across rounds for schedulers that
// support it (the world applies placements without retaining the map).
type intoScheduler interface {
	ScheduleInto(p *sched.Problem, placement model.Placement) error
}

// NewManager validates and builds a manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("core: World is required")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("core: Scheduler is required")
	}
	if cfg.RoundTicks <= 0 {
		cfg.RoundTicks = 10
	}
	return &Manager{cfg: cfg}, nil
}

// Rounds returns how many scheduling rounds have executed.
func (m *Manager) Rounds() int { return m.rounds }

// BuildProblem assembles the scheduler's view of the world from monitored
// data: gateway load characteristics (with per-source split), queue
// backlogs, window-averaged usage and the current placement. It walks the
// engine's dense index space directly — no per-VM map lookups — and reuses
// the manager's problem storage, so steady-state rounds allocate nothing.
// The returned problem (including every VMInfo.Load) is valid until the
// next BuildProblem call.
func (m *Manager) BuildProblem() *sched.Problem {
	w := m.cfg.World
	obs := w.Observer()
	nDC := w.Topology().NumDCs()
	p := &m.problem
	p.Tick = w.Tick()
	p.VMs = p.VMs[:0]
	p.Hosts = p.Hosts[:0]
	nVM, nPM := w.NumVMs(), w.NumPMs()
	for i := 0; i < nVM; i++ {
		spec := w.VMSpecAt(i)
		if m.cfg.Movable != nil && !m.cfg.Movable(spec.ID) {
			continue
		}
		info := sched.VMInfo{
			Spec:      spec,
			Current:   model.NoPM,
			CurrentDC: -1,
		}
		if j := w.HostIndexOf(i); j >= 0 {
			host := w.PMSpecAt(j)
			info.Current = host.ID
			info.CurrentDC = host.DC
		}
		// One reusable per-slot load vector: the truth row aliases engine
		// buffers, so it is copied (not referenced) before scaling.
		if len(p.VMs) == len(m.loadBufs) {
			m.loadBufs = append(m.loadBufs, make(model.LoadVector, nDC))
		}
		buf := m.loadBufs[len(p.VMs)]
		if cap(buf) < nDC {
			buf = make(model.LoadVector, nDC)
			m.loadBufs[len(p.VMs)] = buf
		}
		buf = buf[:nDC]
		if truth, ok := w.VMTruthByIndex(i); ok {
			copy(buf, truth.Load)
			info.Load = buf
			info.Total = info.Load.Total()
		} else {
			for s := range buf {
				buf[s] = model.Load{}
			}
			info.Load = buf
		}
		if avg, ok := obs.WindowAvgLoad(spec.ID); ok && avg.RPS > 0 {
			// Size against the round-averaged gateway statistics, not one
			// noisy tick; keep the per-source shares of the current vector.
			if info.Total.RPS > 0 {
				k := avg.RPS / info.Total.RPS
				for s := range info.Load {
					info.Load[s] = info.Load[s].Scale(k)
				}
			}
			info.Total = avg
		}
		if s, ok := obs.LastVM(spec.ID); ok {
			info.QueueLen = s.QueueLen
		}
		if avg, ok := obs.WindowAvgVM(spec.ID); ok {
			info.Observed = avg
			info.HasObserved = true
		}
		p.VMs = append(p.VMs, info)
	}
	for j := 0; j < nPM; j++ {
		if w.IsFailedIndex(j) {
			continue // failed hosts are not candidates
		}
		p.Hosts = append(p.Hosts, sched.HostInfo{Spec: w.PMSpecAt(j)})
	}
	return p
}

// Step advances the world one tick, running a scheduling round first
// whenever the tick index is a round boundary (and at least one tick of
// observations exists).
func (m *Manager) Step() (sim.TickStats, error) {
	w := m.cfg.World
	if t := w.Tick(); t > 0 && t%m.cfg.RoundTicks == 0 {
		problem := m.BuildProblem()
		var placement model.Placement
		if is, ok := m.cfg.Scheduler.(intoScheduler); ok {
			if m.placement == nil {
				m.placement = make(model.Placement, len(problem.VMs))
			} else {
				clear(m.placement)
			}
			if err := is.ScheduleInto(problem, m.placement); err != nil {
				return sim.TickStats{}, fmt.Errorf("core: scheduling round at tick %d: %w", t, err)
			}
			placement = m.placement
		} else {
			var err error
			placement, err = m.cfg.Scheduler.Schedule(problem)
			if err != nil {
				return sim.TickStats{}, fmt.Errorf("core: scheduling round at tick %d: %w", t, err)
			}
		}
		if err := w.ApplySchedule(placement); err != nil {
			return sim.TickStats{}, fmt.Errorf("core: applying schedule: %w", err)
		}
		m.rounds++
	}
	return w.Step(), nil
}

// Run advances n ticks, invoking cb after each.
func (m *Manager) Run(n int, cb func(sim.TickStats)) error {
	for i := 0; i < n; i++ {
		st, err := m.Step()
		if err != nil {
			return err
		}
		if cb != nil {
			cb(st)
		}
	}
	return nil
}
