package core

import (
	"testing"

	"repro/internal/lifecycle"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// TestRateLimitBucket pins the token-bucket arithmetic: a primed bucket
// holds Burst tokens, refills at RatePerTick up to Burst, and Take fails
// only when the level falls below one token.
func TestRateLimitBucket(t *testing.T) {
	rl := &RateLimit{RatePerTick: 2, Burst: 4}
	rl.Advance(10)
	for i := 0; i < 4; i++ {
		if !rl.Take() {
			t.Fatalf("take %d of the primed burst failed", i)
		}
	}
	if rl.Take() {
		t.Fatal("5th take from a burst-4 bucket succeeded")
	}
	rl.Advance(11) // +2 tokens
	if !rl.Take() || !rl.Take() {
		t.Fatal("one tick's refill should grant RatePerTick takes")
	}
	if rl.Take() {
		t.Fatal("take beyond the refill succeeded")
	}
	rl.Advance(100) // long idle: clamped at Burst, not 2*89
	n := 0
	for rl.Take() {
		n++
	}
	if n != 4 {
		t.Fatalf("idle refill granted %d takes, want Burst=4", n)
	}
	// Defaulted burst: max(RatePerTick, 1).
	rl2 := &RateLimit{RatePerTick: 0.5}
	rl2.Advance(0)
	if !rl2.Take() || rl2.Take() {
		t.Fatal("defaulted burst should hold exactly one token")
	}
}

// TestRateLimitBurstStormDefersNotDrops drives a 12-VM arrival wave into
// a fleet with plenty of capacity through a RatePerTick-2 / Burst-4
// bucket: the wave must be admitted at the bucket's pace — never more
// than 4 in one tick, all eventually admitted, zero rejections — the
// deferred-not-dropped contract.
func TestRateLimitBurstStormDefersNotDrops(t *testing.T) {
	spec := scenario.Spec{
		Name: "rate-storm", Seed: 7, DCs: 1, PMsPerDC: 10, VMs: 2,
		Churn: &lifecycle.ProcessSpec{
			Kind: lifecycle.Waves, WaveEvery: 40, WaveSize: 12,
			HorizonTicks: 50, // exactly one wave, at tick 40
		},
	}
	sc, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	runner := lifecycle.NewRunner(sc.Script)
	rl := &RateLimit{RatePerTick: 2, Burst: 4}
	mgr, err := NewManager(ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6), sched.NewOverbooked()),
		RoundTicks: 10,
		Lifecycle:  runner,
		Admission: AdmissionPolicy{
			TargetUtil:    4,   // capacity never binds: the bucket is the only gate
			MaxDeferTicks: 200, // far beyond the smear window: nothing may time out
			Rate:          rl,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	prev := 0
	perTick := make(map[int]int)
	for tick := 0; tick < 120; tick++ {
		if _, err := mgr.Step(); err != nil {
			t.Fatal(err)
		}
		st := runner.Stats()
		if d := st.Admitted - prev; d > 0 {
			perTick[tick] = d
		}
		prev = st.Admitted
	}
	st := runner.Stats()
	if st.Offered != 12 {
		t.Fatalf("offered %d, want the 12-VM wave", st.Offered)
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected %d under the bucket, want 0 (deferred-not-dropped)", st.Rejected)
	}
	if st.Admitted != 12 {
		t.Fatalf("admitted %d of 12 after the smear window", st.Admitted)
	}
	if st.Deferrals == 0 {
		t.Fatal("a 12-VM burst through a burst-4 bucket must defer someone")
	}
	if got := perTick[40]; got != 4 {
		t.Fatalf("wave tick admitted %d, want the full burst of 4", got)
	}
	for tick, n := range perTick {
		if n > 4 {
			t.Fatalf("tick %d admitted %d > burst 4", tick, n)
		}
		if tick != 40 && n > 2 {
			t.Fatalf("tick %d admitted %d > RatePerTick 2 after the burst", tick, n)
		}
	}
}
