package core

// RateLimit is a deterministic token-bucket admission stage: the bucket
// refills by RatePerTick tokens per simulation tick up to Burst, and
// every arrival reaching the admission controller consumes one token.
// An arrival finding the bucket empty is DEFERRED, not dropped — it goes
// back into the lifecycle deferral queue and retries next tick, so a
// burst storm is smeared over the refill rate instead of rejected (only
// the deferral deadline, MaxDeferTicks, can turn starvation into a
// rejection). Refill is driven by virtual ticks, never the wall clock,
// so rate-limited runs stay bit-identical across reruns.
//
// The zero value is unusable; set RatePerTick > 0. A RateLimit is owned
// by the single goroutine that drives the manager, like every other
// piece of admission state.
type RateLimit struct {
	// RatePerTick is the sustained admission rate in arrivals per tick.
	RatePerTick float64
	// Burst is the bucket capacity — the largest arrival burst admitted
	// at once after an idle period (0 = max(RatePerTick, 1)).
	Burst float64

	tokens   float64
	lastTick int
	primed   bool
}

// burst returns the effective bucket capacity.
func (r *RateLimit) burst() float64 {
	if r.Burst > 0 {
		return r.Burst
	}
	if r.RatePerTick > 1 {
		return r.RatePerTick
	}
	return 1
}

// Advance refills the bucket for the ticks elapsed since the last call.
// The first call primes a full bucket. Call it once per tick, before the
// tick's admission decisions.
func (r *RateLimit) Advance(tick int) {
	if !r.primed {
		r.tokens = r.burst()
		r.lastTick = tick
		r.primed = true
		return
	}
	if dt := tick - r.lastTick; dt > 0 {
		r.tokens += r.RatePerTick * float64(dt)
		if b := r.burst(); r.tokens > b {
			r.tokens = b
		}
	}
	r.lastTick = tick
}

// Take consumes one token if available and reports whether it did.
func (r *RateLimit) Take() bool {
	if !r.primed {
		r.tokens = r.burst()
		r.primed = true
	}
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}

// Tokens returns the current bucket level.
func (r *RateLimit) Tokens() float64 { return r.tokens }
