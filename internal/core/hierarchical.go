package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/sched"
)

// Hierarchical is the paper's two-layer decomposition (Section III-B):
// every datacenter first solves its own intra-DC placement with Best-Fit,
// then exports a narrow interface to the global layer — the VMs that may
// benefit from moving (poor local SLA) and a few candidate hosts — and a
// global Best-Fit round decides the inter-DC moves. The interface keeps
// the global problem small: "each DC only provides to the global scheduler
// a set of available physical machines and a set of VM's that may benefit
// if scheduled somewhere else".
type Hierarchical struct {
	Inv  *cluster.Inventory
	Cost sched.CostModel
	Est  sched.Estimator
	// ExportSLA is the local-fulfilment threshold below which a VM is
	// offered to the global round.
	ExportSLA float64
	// MaxExportsPerDC bounds how many struggling VMs each DC offers to the
	// global round, keeping the paper's interface actually narrow: under
	// fleet-wide strain the threshold alone would export nearly everything
	// and the global round would grow back to the flat problem. The worst
	// locally-fulfilled VMs are exported first; the rest retry next round.
	MaxExportsPerDC int
	// HostsPerDC is how many candidate hosts each DC exports.
	HostsPerDC int
	// Workers bounds the per-DC parallelism of the local rounds.
	Workers int
	// Delta and DeltaEpsilon propagate incremental rounds to the local and
	// global Best-Fit layers (see sched.BestFit.Delta). Each layer keeps
	// its own per-VM memo, so a VM's local-round row and global-round row
	// never mix.
	Delta        bool
	DeltaEpsilon float64
	// Prune and PruneK propagate candidate pruning to the local and global
	// Best-Fit layers (see sched.BestFit.Prune): each layer's Round keeps
	// its own host-state shortlist index over its own candidate set.
	Prune  bool
	PruneK int

	// Reused per-DC local schedulers plus the global-round scheduler: each
	// owns a Round whose storage (and memoized estimates) survive across
	// management rounds. localBF[dc] is touched only by the worker running
	// dc's local round.
	localBF  []*sched.BestFit
	globalBF *sched.BestFit
}

// NewHierarchical builds the two-layer scheduler with paper-ish defaults.
func NewHierarchical(inv *cluster.Inventory, cost sched.CostModel, est sched.Estimator) *Hierarchical {
	return &Hierarchical{
		Inv: inv, Cost: cost, Est: est,
		ExportSLA:       0.98,
		MaxExportsPerDC: 4,
		HostsPerDC:      1,
	}
}

// Name implements sched.Scheduler.
func (h *Hierarchical) Name() string { return "hierarchical-" + h.Est.Name() }

// Schedule implements sched.Scheduler.
func (h *Hierarchical) Schedule(p *sched.Problem) (model.Placement, error) {
	if h.Inv == nil {
		return nil, fmt.Errorf("core: Hierarchical.Inv is nil")
	}
	nDC := h.Inv.NumDCs()
	// Dense per-DC buckets: DC IDs are already a compact index space.
	// Hosts outside the inventory's DC range are skipped, matching the
	// old map behaviour where such buckets were never read.
	hostsByDC := make([][]sched.HostInfo, nDC)
	for _, host := range p.Hosts {
		if dc := host.Spec.DC; dc >= 0 && int(dc) < nDC {
			hostsByDC[dc] = append(hostsByDC[dc], host)
		}
	}
	vmsByDC := make([][]sched.VMInfo, nDC)
	var homeless []sched.VMInfo // entering VMs go straight to the global round
	for _, vm := range p.VMs {
		if vm.CurrentDC < 0 || int(vm.CurrentDC) >= nDC {
			homeless = append(homeless, vm)
			continue
		}
		vmsByDC[vm.CurrentDC] = append(vmsByDC[vm.CurrentDC], vm)
	}

	// Phase 1: intra-DC rounds, one per datacenter, in parallel. Each DC's
	// problem touches only its own VMs and hosts, so no state is shared.
	type localResult struct {
		placement model.Placement
		exports   []sched.VMInfo
		offers    []sched.HostInfo
		err       error
	}
	dcs := make([]model.DCID, 0, nDC)
	for dc := 0; dc < nDC; dc++ {
		dcs = append(dcs, model.DCID(dc))
	}
	if len(h.localBF) < nDC {
		h.localBF = append(h.localBF, make([]*sched.BestFit, nDC-len(h.localBF))...)
	}
	results := par.Map(dcs, h.Workers, func(dc model.DCID) localResult {
		local := &sched.Problem{VMs: vmsByDC[dc], Hosts: hostsByDC[dc], Tick: p.Tick}
		if len(local.Hosts) == 0 {
			return localResult{placement: model.Placement{}}
		}
		if h.localBF[dc] == nil {
			h.localBF[dc] = sched.NewBestFit(h.Cost, h.Est)
		}
		bf := h.localBF[dc]
		bf.Delta, bf.DeltaEpsilon = h.Delta, h.DeltaEpsilon
		bf.Prune, bf.PruneK = h.Prune, h.PruneK
		placement, err := bf.Schedule(local)
		if err != nil {
			return localResult{err: err}
		}
		slas, err := h.estimateSLAs(local, placement, bf.Session())
		if err != nil {
			return localResult{err: err}
		}
		var candidates []int
		for k := range local.VMs {
			if slas[k] < h.ExportSLA {
				candidates = append(candidates, k)
			}
		}
		// Narrow interface: only the worst-off candidates go global.
		if cap := h.MaxExportsPerDC; cap > 0 && len(candidates) > cap {
			sort.SliceStable(candidates, func(a, b int) bool {
				return slas[candidates[a]] < slas[candidates[b]]
			})
			candidates = candidates[:cap]
			sort.Ints(candidates) // restore VM order for determinism
		}
		var exports []sched.VMInfo
		for _, k := range candidates {
			vm := local.VMs[k]
			// The export carries its local assignment as Current so the
			// global round's hysteresis can keep it home: without a
			// "stay" option, a strained DC's exports would all cram onto
			// the few offered hosts.
			if pm, ok := placement[vm.Spec.ID]; ok && pm != model.NoPM {
				vm.Current = pm
				vm.CurrentDC = dc
			}
			exports = append(exports, vm)
		}
		offers := h.offerHosts(local, placement, exports, bf.Session())
		return localResult{placement: placement, exports: exports, offers: offers}
	})

	merged := make(model.Placement, len(p.VMs))
	var globalVMs []sched.VMInfo
	var globalHosts []sched.HostInfo
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for vm, pm := range r.placement {
			merged[vm] = pm
		}
		globalVMs = append(globalVMs, r.exports...)
		globalHosts = append(globalHosts, r.offers...)
	}
	globalVMs = append(globalVMs, homeless...)

	// Phase 2: the global inter-DC round over the narrow interface.
	if len(globalVMs) > 0 && len(globalHosts) > 0 {
		if h.globalBF == nil {
			h.globalBF = sched.NewBestFit(h.Cost, h.Est)
		}
		h.globalBF.Delta, h.globalBF.DeltaEpsilon = h.Delta, h.DeltaEpsilon
		h.globalBF.Prune, h.globalBF.PruneK = h.Prune, h.PruneK
		gPlacement, err := h.globalBF.Schedule(&sched.Problem{VMs: globalVMs, Hosts: globalHosts, Tick: p.Tick})
		if err != nil {
			return nil, err
		}
		for vm, pm := range gPlacement {
			merged[vm] = pm
		}
	} else if len(globalVMs) > 0 {
		// No offers anywhere (degenerate fleet): keep them where they are.
		for _, vm := range globalVMs {
			if vm.Current != model.NoPM {
				merged[vm.Spec.ID] = vm.Current
			}
		}
	}
	return merged, nil
}

// estimateSLAs scores every VM's fulfilment under a local placement using
// proportional occupation, the same arithmetic the simulator applies. The
// result is indexed by the VM's position in p.VMs; unplaced VMs (and VMs
// on hosts outside p.Hosts) score zero. round is the Best-Fit session that
// produced the placement: its memoized latencies always apply, and on
// uncontended hosts — where the proportional share is exactly the full
// requirement — its full-grant SLA estimates are reused instead of
// re-running the estimator.
func (h *Hierarchical) estimateSLAs(p *sched.Problem, placement model.Placement, round *sched.Round) ([]float64, error) {
	var scratch sched.Scratch
	req := make([]model.Resources, len(p.VMs))
	hostPos := make(map[model.PMID]int, len(p.Hosts))
	for j := range p.Hosts {
		hostPos[p.Hosts[j].Spec.ID] = j
	}
	members := make([][]int, len(p.Hosts)) // host position -> VM positions
	for k := range p.VMs {
		vm := &p.VMs[k]
		req[k] = h.Est.Required(vm, &scratch)
		pm, ok := placement[vm.Spec.ID]
		if !ok || pm == model.NoPM {
			continue
		}
		if j, ok := hostPos[pm]; ok {
			members[j] = append(members[j], k)
		}
	}
	out := make([]float64, len(p.VMs))
	for j := range p.Hosts {
		ms := members[j]
		if len(ms) == 0 {
			continue
		}
		host := &p.Hosts[j]
		capacity := host.Spec.Capacity.Sub(host.Resident).Max(model.Resources{})
		var sum model.Resources
		for _, k := range ms {
			sum = sum.Add(req[k])
		}
		shCPU, shMem, shBW := cluster.ShareFactors(capacity, sum)
		fullShare := shCPU == 1 && shMem == 1 && shBW == 1
		for _, k := range ms {
			vm := &p.VMs[k]
			r := req[k]
			lat := round.Latency(k, host.Spec.DC)
			// Full share of an uncapped requirement == the full grant the
			// round already scored (same estimator, same query).
			if fullShare && !h.Cost.LatencyOnly && r == round.Required(k) {
				out[k] = round.FullGrantSLA(k, host.Spec.DC)
				continue
			}
			grant := model.Resources{
				CPUPct: r.CPUPct * shCPU,
				MemMB:  r.MemMB * shMem,
				BWMbps: r.BWMbps * shBW,
			}
			memDef := 0.0
			if r.MemMB > 0 && grant.MemMB < r.MemMB {
				memDef = (r.MemMB - grant.MemMB) / r.MemMB
			}
			if v, ok := h.Est.SLA(vm, grant.CPUPct, memDef, lat, &scratch); ok {
				out[k] = v
			} else {
				out[k] = sched.HeuristicSLA(vm, r, grant, lat)
			}
		}
	}
	return out, nil
}

// offerHosts exposes the DC's least-loaded hosts to the global round plus
// every host currently holding an exported VM (so "leave it where the
// local round put it" stays on the table). Resident aggregates describe
// the guests that stay. round supplies memoized per-VM CPU estimates when
// its (capped) requirement matches the raw one.
func (h *Hierarchical) offerHosts(p *sched.Problem, placement model.Placement, exports []sched.VMInfo, round *sched.Round) []sched.HostInfo {
	var scratch sched.Scratch
	exported := make(map[model.VMID]bool, len(exports))
	holdsExport := make(map[model.PMID]bool, len(exports))
	for _, vm := range exports {
		exported[vm.Spec.ID] = true
		if pm, ok := placement[vm.Spec.ID]; ok && pm != model.NoPM {
			holdsExport[pm] = true
		}
	}
	type loaded struct {
		host sched.HostInfo
		cpu  float64
	}
	var hosts []loaded
	for _, host := range p.Hosts {
		resident := host.Resident
		guests := host.ResidentGuests
		rps := host.ResidentRPS
		cpuUse := host.ResidentCPUUsage
		for i := range p.VMs {
			vm := &p.VMs[i]
			if placement[vm.Spec.ID] != host.Spec.ID || exported[vm.Spec.ID] {
				continue
			}
			r := h.Est.Required(vm, &scratch)
			resident = resident.Add(r)
			guests++
			rps += vm.Total.RPS
			if r == round.Required(i) {
				cpuUse += round.FullGrantVMCPU(i)
			} else {
				cpuUse += h.Est.VMCPUUsage(vm, r.CPUPct, &scratch)
			}
		}
		offered := host
		offered.Resident = resident.Min(host.Spec.Capacity)
		offered.ResidentGuests = guests
		offered.ResidentRPS = rps
		offered.ResidentCPUUsage = cpuUse
		hosts = append(hosts, loaded{offered, resident.CPUPct})
	}
	sort.SliceStable(hosts, func(a, b int) bool { return hosts[a].cpu < hosts[b].cpu })
	n := h.HostsPerDC
	if n <= 0 {
		n = 1
	}
	out := make([]sched.HostInfo, 0, n)
	seen := make(map[model.PMID]bool)
	for i, l := range hosts {
		if i < n || holdsExport[l.host.Spec.ID] {
			if !seen[l.host.Spec.ID] {
				seen[l.host.Spec.ID] = true
				out = append(out, l.host)
			}
		}
	}
	return out
}

var _ sched.Scheduler = (*Hierarchical)(nil)
