package core

import (
	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/sim"
)

// DefaultAdmissionUtil is the fleet-capacity commitment ceiling of the
// capacity gate: new VMs are admitted while the fleet's committed
// requirements plus their expected requirement stay under this fraction
// of the non-failed capacity.
const DefaultAdmissionUtil = 0.85

// AdmissionPolicy is the admission controller gating workload-lifecycle
// arrivals: a capacity gate (defer while the fleet is too full, reject
// once the deferral deadline passes) plus an optional predicted-SLA gate
// (reject arrivals whose contract the fleet could not honour even at a
// full resource grant). The zero value is the plain capacity gate with
// defaults.
type AdmissionPolicy struct {
	// Disabled admits every arrival unconditionally.
	Disabled bool
	// TargetUtil overrides the capacity ceiling (0 = DefaultAdmissionUtil).
	TargetUtil float64
	// MinPredictedSLA enables the SLA gate: arrivals whose predicted
	// fulfilment at full grant in their home DC falls below it are
	// rejected outright. Requires Bundle; 0 disables the gate.
	MinPredictedSLA float64
	// Bundle supplies the learned predictors. When set, the capacity gate
	// sizes arrivals with the ML resource models instead of the operator
	// sizing formula, and the SLA gate becomes available.
	Bundle *predict.Bundle
	// MaxDeferTicks bounds how long an arrival may wait in the deferral
	// queue before it is finally rejected (0 =
	// lifecycle.DefaultMaxDeferTicks).
	MaxDeferTicks int
	// Rate is the optional token-bucket stage in front of every other
	// gate (including Disabled's bypass): arrivals beyond the bucket are
	// deferred — never dropped — until tokens refill or the deferral
	// deadline passes. nil disables rate limiting.
	Rate *RateLimit
}

// targetUtil returns the effective capacity ceiling.
func (p *AdmissionPolicy) targetUtil() float64 {
	if p.TargetUtil > 0 {
		return p.TargetUtil
	}
	return DefaultAdmissionUtil
}

// deferOrReject is the deferral-deadline arm: capacity shortages defer
// until the arrival has waited MaxDeferTicks since its arrival tick, then
// reject.
func (p *AdmissionPolicy) deferOrReject(tick int, o *lifecycle.Offer) lifecycle.Decision {
	deadline := p.MaxDeferTicks
	if deadline <= 0 {
		deadline = lifecycle.DefaultMaxDeferTicks
	}
	if tick-o.Arrival.ArriveTick >= deadline {
		return lifecycle.Reject
	}
	return lifecycle.Defer
}

// requirement estimates the resources an arrival will need at its offered
// load before any observation of it exists: the learned resource models
// when a bundle is present, the world's operator sizing formula (the same
// queueing arithmetic capacity planning uses) otherwise.
func (p *AdmissionPolicy) requirement(w *sim.World, a *lifecycle.Arrival) model.Resources {
	if p.Bundle != nil {
		return p.Bundle.PredictVMResources(a.Offered, 0)
	}
	return w.RequiredResources(a.Spec, a.Offered)
}

// fleetCommitment is the capacity gate's per-tick fleet snapshot: the
// surviving (non-failed, non-draining) capacity and the committed
// *requirements* of every live VM
// — not observed usage, because an oversubscribed fleet clamps every
// grant at capacity and looks deceptively idle exactly when it is
// drowning. Truth is frozen between Steps, so the manager computes this
// once per tick and shares it across that tick's offers; intra-tick
// admissions flow through the separate pending parameter.
type fleetCommitment struct {
	total     model.Resources
	committed model.Resources
}

// fleetCommitmentOf snapshots the fleet for one tick of admission
// decisions.
func fleetCommitmentOf(w *sim.World) fleetCommitment {
	var f fleetCommitment
	for j := 0; j < w.NumPMs(); j++ {
		if w.IsFailedIndex(j) || w.IsDrainingIndex(j) {
			// A draining host's capacity is already on its way out; VMs on
			// it still count in committed, so admission plans for the world
			// after the drain completes.
			continue
		}
		f.total = f.total.Add(w.PMSpecAt(j).Capacity)
	}
	for i := 0; i < w.NumVMs(); i++ {
		if !w.ActiveVM(i) {
			continue
		}
		if truth, ok := w.VMTruthByIndex(i); ok {
			f.committed = f.committed.Add(truth.Required)
		}
	}
	return f
}

// decide is the controller: SLA gate first (a permanent property of the
// arrival — deferring would not change it), then the capacity gate over
// the tick's fleet snapshot. pending carries requirements committed
// earlier this tick (or in previous ticks) to VMs that have not reached
// a host yet, so a storm of simultaneous offers cannot all slip through
// on one fleet reading. It returns the decision and the arrival's
// estimated requirement (for the caller's pending-commitment ledger).
func (p *AdmissionPolicy) decide(w *sim.World, tick int, o *lifecycle.Offer, fleet fleetCommitment, pending model.Resources) (lifecycle.Decision, model.Resources) {
	// Token bucket first — it shapes the intake rate regardless of what
	// the gates behind it would say, so a storm cannot even burn fleet
	// readings. Out of tokens means defer (retry when the bucket refills),
	// not drop.
	if p.Rate != nil && !p.Rate.Take() {
		return p.deferOrReject(tick, o), model.Resources{}
	}
	if p.Disabled {
		return lifecycle.Admit, model.Resources{}
	}
	a := o.Arrival
	req := p.requirement(w, a)

	if p.MinPredictedSLA > 0 && p.Bundle != nil {
		home := a.Spec.HomeDC
		lat := w.Topology().LatencyClientDC(model.LocationID(home), home)
		sla := p.Bundle.PredictSLA(a.Spec.Terms, a.Offered, req.CPUPct, 0, 0, lat)
		if sla < p.MinPredictedSLA {
			return lifecycle.Reject, req
		}
	}

	// What every live VM currently needs plus the still-unplaced
	// commitments plus the newcomer must fit under the ceiling on every
	// resource dimension.
	committed := fleet.committed.Add(pending)
	if committed.Add(req).FitsIn(fleet.total.Scale(p.targetUtil())) {
		return lifecycle.Admit, req
	}
	return p.deferOrReject(tick, o), req
}
