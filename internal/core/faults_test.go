package core

import (
	"testing"

	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// faultedManager wires a static scenario under a managed Best-Fit with a
// hand-written fault script, returning the scenario, fault runner and
// manager (RoundTicks 10).
func faultedManager(t *testing.T, spec scenario.Spec, script *lifecycle.FaultScript, cfgFn func(*ManagerConfig)) (*scenario.Scenario, *lifecycle.FaultRunner, *Manager) {
	t.Helper()
	sc := testScenario(t, spec)
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	fr := lifecycle.NewFaultRunner(script)
	cfg := ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(costFor(sc), sched.NewOverbooked()),
		RoundTicks: 10,
		Faults:     fr,
	}
	if cfgFn != nil {
		cfgFn(&cfg)
	}
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc, fr, mgr
}

// TestFaultScriptRehomesWithinRound pins the acceptance bar: a VM evicted
// by a scripted crash is back on a surviving host by the next scheduling
// round, with the wait recorded in the availability stats.
func TestFaultScriptRehomesWithinRound(t *testing.T) {
	spec := scenario.Spec{VMs: 3, PMsPerDC: 1, DCs: 3, Seed: 13}
	sc := testScenario(t, spec)
	victim := sc.HomePlacement()[0]
	script := &lifecycle.FaultScript{Events: []lifecycle.FaultEvent{
		{Tick: 12, Kind: lifecycle.FaultCrash, PM: victim},
	}}
	sc2, fr, mgr := faultedManager(t, spec, script, nil)
	if err := mgr.Run(25, nil); err != nil {
		t.Fatal(err)
	}
	newHost := sc2.World.State().HostOf(0)
	if newHost == model.NoPM {
		t.Fatal("vm0 still homeless after a full round")
	}
	if newHost == victim {
		t.Fatal("vm0 back on the crashed host")
	}
	st := fr.Stats()
	if st.Crashes != 1 || st.Rehomed == 0 {
		t.Fatalf("fault stats %+v", st)
	}
	if st.MaxRehomeTicks > 10 {
		t.Fatalf("re-home took %d ticks, more than one round", st.MaxRehomeTicks)
	}
	if st.DowntimeTicks == 0 || st.Availability() >= 1 {
		t.Fatalf("eviction left no downtime trace: %+v", st)
	}
	if len(mgr.rehomes) != 0 {
		t.Fatalf("re-home ledger not drained: %+v", mgr.rehomes)
	}
}

// TestDrainCompletesWithoutForcedEvictions pins the maintenance contract:
// a drain whose deadline spans full scheduling rounds migrates every
// guest off before the takedown, so nothing is ever evicted.
func TestDrainCompletesWithoutForcedEvictions(t *testing.T) {
	spec := scenario.Spec{VMs: 3, PMsPerDC: 1, DCs: 3, Seed: 13}
	sc := testScenario(t, spec)
	victim := sc.HomePlacement()[0]
	script := &lifecycle.FaultScript{Events: []lifecycle.FaultEvent{
		{Tick: 15, Kind: lifecycle.FaultDrainStart, PM: victim},
		{Tick: 45, Kind: lifecycle.FaultTakedown, PM: victim}, // 3 rounds later
		{Tick: 55, Kind: lifecycle.FaultRepair, PM: victim},
	}}
	sc2, fr, mgr := faultedManager(t, spec, script, nil)
	// Stop mid-drain: the draining host must be out of the candidate set
	// while its guests keep serving.
	if err := mgr.Run(18, nil); err != nil {
		t.Fatal(err)
	}
	if !sc2.World.IsDraining(victim) {
		t.Fatal("victim not draining at tick 18")
	}
	for _, h := range mgr.BuildProblem().Hosts {
		if h.Spec.ID == victim {
			t.Fatal("draining host still offered as candidate")
		}
	}
	if err := mgr.Run(42, nil); err != nil { // through takedown and repair
		t.Fatal(err)
	}
	st := fr.Stats()
	if st.DrainsStarted != 1 || st.Takedowns != 1 {
		t.Fatalf("fault stats %+v", st)
	}
	if st.ForcedEvictions != 0 || st.Interruptions != 0 {
		t.Fatalf("drain with a 3-round deadline forced evictions: %+v", st)
	}
	for _, vm := range sc2.VMs {
		if sc2.World.State().HostOf(vm.ID) == model.NoPM {
			t.Fatalf("VM %v homeless after drain cycle", vm.ID)
		}
	}
}

// TestDegradedDefersArrivalsAndSheds drives a total-capacity loss: every
// arrival after the crash is deferred (never admitted), and a dynamic VM
// homeless past the shedding deadline is retired with its scheduled
// departure cancelled.
func TestDegradedDefersArrivalsAndSheds(t *testing.T) {
	dynSpec := scenario.DefaultVMSpecs(1, 2)[0]
	dynSpec.ID = 100
	churn := &lifecycle.Script{Arrivals: []lifecycle.Arrival{
		{Spec: dynSpec, ArriveTick: 1, LifetimeTicks: 30}, // departs tick 31 if alive
	}}
	late := scenario.DefaultVMSpecs(1, 2)[0]
	late.ID = 101
	churn.Arrivals = append(churn.Arrivals,
		lifecycle.Arrival{Spec: late, ArriveTick: 30, LifetimeTicks: 100})

	script := &lifecycle.FaultScript{Events: []lifecycle.FaultEvent{
		{Tick: 12, Kind: lifecycle.FaultCrash, PM: 0},
		{Tick: 12, Kind: lifecycle.FaultCrash, PM: 1},
		{Tick: 12, Kind: lifecycle.FaultCrash, PM: 2},
		{Tick: 12, Kind: lifecycle.FaultCrash, PM: 3},
	}}
	var runner *lifecycle.Runner
	sc, fr, mgr := faultedManager(t, scenario.Spec{VMs: 2, PMsPerDC: 2, DCs: 2, Seed: 7, ExtraVMSlots: 2}, script,
		func(cfg *ManagerConfig) {
			runner = lifecycle.NewRunner(churn)
			cfg.Lifecycle = runner
			cfg.Degraded = DegradedPolicy{ShedAfterTicks: 15}
		})
	if err := mgr.Run(45, nil); err != nil {
		t.Fatal(err)
	}
	if !mgr.degraded {
		t.Fatal("fleet with zero surviving capacity not marked degraded")
	}
	cst := runner.Stats()
	if cst.Admitted != 1 {
		t.Fatalf("admitted %d, want only the pre-crash arrival", cst.Admitted)
	}
	if cst.Deferrals == 0 {
		t.Fatal("degraded mode never deferred the post-crash arrival")
	}
	fst := fr.Stats()
	if fst.Shed != 1 {
		t.Fatalf("shed %d dynamic VMs, want 1: %+v", fst.Shed, fst)
	}
	// The shed VM is gone for good: no live handle, and its scheduled
	// tick-31 departure must not have fired after the early retirement.
	if _, live := sc.World.LookupVM(100); live {
		t.Fatal("shed VM still live")
	}
	if cst.Departed != 0 {
		t.Fatalf("shed VM departed a second time: %+v", cst)
	}
	// Static inventory is never shed — both VMs survive homeless.
	if got := sc.World.NumActiveVMs(); got != 2 {
		t.Fatalf("live VMs %d, want the 2 static survivors", got)
	}
	if fst.DegradedTicks == 0 {
		t.Fatal("degraded window left no tick trace")
	}
}

// TestRehomeReservationGatesArrivals checks the priority inversion the
// issue forbids: while evicted VMs wait for the next round, their
// reserved requirements ride the pending sum, so a fresh arrival that
// would eat their headroom is deferred even though the fleet is not
// degraded.
func TestRehomeReservationGatesArrivals(t *testing.T) {
	arr := scenario.DefaultVMSpecs(1, 2)[0]
	arr.ID = 100
	churn := &lifecycle.Script{Arrivals: []lifecycle.Arrival{
		{Spec: arr, ArriveTick: 14, LifetimeTicks: 0,
			// Monster offer: admissible only if the re-home reservations
			// are left out of the pending sum.
			Offered: model.Load{RPS: 1e6, CPUTimeReq: 0.01}},
	}}
	spec := scenario.Spec{VMs: 3, PMsPerDC: 1, DCs: 3, Seed: 13, ExtraVMSlots: 1}
	sc := testScenario(t, spec)
	victim := sc.HomePlacement()[0]
	script := &lifecycle.FaultScript{Events: []lifecycle.FaultEvent{
		{Tick: 12, Kind: lifecycle.FaultCrash, PM: victim},
	}}
	var runner *lifecycle.Runner
	_, fr, mgr := faultedManager(t, spec, script, func(cfg *ManagerConfig) {
		runner = lifecycle.NewRunner(churn)
		cfg.Lifecycle = runner
	})
	if err := mgr.Run(25, nil); err != nil {
		t.Fatal(err)
	}
	if runner.Stats().Admitted != 0 {
		t.Fatalf("monster arrival admitted while evicted VMs waited: %+v", runner.Stats())
	}
	if fr.Stats().Rehomed == 0 {
		t.Fatal("evicted VMs never re-homed")
	}
}
