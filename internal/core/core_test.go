package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

func testScenario(t *testing.T, spec scenario.Spec) *scenario.Scenario {
	t.Helper()
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	if spec.Name == "" {
		spec.Name = "core-test"
	}
	sc, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func costFor(sc *scenario.Scenario) sched.CostModel {
	return sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(ManagerConfig{}); err == nil {
		t.Fatal("accepted empty config")
	}
	sc := testScenario(t, scenario.Spec{VMs: 1, PMsPerDC: 1, DCs: 1})
	if _, err := NewManager(ManagerConfig{World: sc.World}); err == nil {
		t.Fatal("accepted nil scheduler")
	}
}

func TestManagerRunsRounds(t *testing.T) {
	sc := testScenario(t, scenario.Spec{VMs: 3, PMsPerDC: 2, DCs: 2})
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(costFor(sc), sched.NewObserved()),
		RoundTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	if err := m.Run(35, func(sim.TickStats) { ticks++ }); err != nil {
		t.Fatal(err)
	}
	if ticks != 35 {
		t.Fatalf("callback ran %d times", ticks)
	}
	// Rounds at ticks 10, 20, 30.
	if m.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", m.Rounds())
	}
	// Every VM must remain placed.
	for _, vm := range sc.VMs {
		if sc.World.State().HostOf(vm.ID) == model.NoPM {
			t.Fatalf("VM %v unplaced after management", vm.ID)
		}
	}
}

func TestManagerMovableFilter(t *testing.T) {
	sc := testScenario(t, scenario.Spec{VMs: 3, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(costFor(sc), sched.NewObserved()),
		RoundTicks: 5,
		Movable:    func(id model.VMID) bool { return id != 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	p := m.BuildProblem()
	if len(p.VMs) != 2 {
		t.Fatalf("movable filter ignored: %d VMs", len(p.VMs))
	}
	for _, vm := range p.VMs {
		if vm.Spec.ID == 0 {
			t.Fatal("filtered VM still present")
		}
	}
}

func TestBuildProblemCarriesMonitoredState(t *testing.T) {
	sc := testScenario(t, scenario.Spec{VMs: 2, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	sc.World.Run(12, nil)
	m, _ := NewManager(ManagerConfig{
		World:     sc.World,
		Scheduler: sched.NewBestFit(costFor(sc), sched.NewObserved()),
	})
	p := m.BuildProblem()
	if len(p.VMs) != 2 || len(p.Hosts) != 2 {
		t.Fatalf("problem = %d VMs, %d hosts", len(p.VMs), len(p.Hosts))
	}
	for _, vm := range p.VMs {
		if !vm.HasObserved {
			t.Fatalf("VM %v has no observations after 12 ticks", vm.Spec.ID)
		}
		if vm.Current == model.NoPM || vm.CurrentDC < 0 {
			t.Fatalf("VM %v current host missing", vm.Spec.ID)
		}
		if len(vm.Load) != 4 {
			t.Fatalf("VM %v load vector = %d sources", vm.Spec.ID, len(vm.Load))
		}
	}
}

func TestHierarchicalProducesValidPlacement(t *testing.T) {
	sc := testScenario(t, scenario.Spec{VMs: 5, PMsPerDC: 2, DCs: 4})
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	sc.World.Run(12, nil)
	h := NewHierarchical(sc.Inventory, costFor(sc), sched.NewObserved())
	m, _ := NewManager(ManagerConfig{World: sc.World, Scheduler: h})
	p := m.BuildProblem()
	placement, err := h.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != 5 {
		t.Fatalf("placement covers %d VMs", len(placement))
	}
	for vm, pm := range placement {
		if pm == model.NoPM {
			t.Fatalf("VM %v left unplaced", vm)
		}
		if _, ok := sc.Inventory.PM(pm); !ok {
			t.Fatalf("VM %v on ghost host %v", vm, pm)
		}
	}
}

func TestHierarchicalPruneParity(t *testing.T) {
	sc := testScenario(t, scenario.Spec{VMs: 8, PMsPerDC: 3, DCs: 4})
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	sc.World.Run(12, nil)
	mk := func(prune bool) *Hierarchical {
		h := NewHierarchical(sc.Inventory, costFor(sc), sched.NewObserved())
		h.Prune = prune
		return h
	}
	m, _ := NewManager(ManagerConfig{World: sc.World, Scheduler: mk(false)})
	p := m.BuildProblem()
	want, err := mk(false).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	pruned := mk(true)
	// Two rounds: the second runs against the incrementally re-keyed
	// shortlists of the per-DC local rounds.
	for pass := 0; pass < 2; pass++ {
		got, err := pruned.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("pass %d: pruned hierarchical placement diverged", pass)
		}
	}
}

func TestHierarchicalHandlesHomelessVMs(t *testing.T) {
	sc := testScenario(t, scenario.Spec{VMs: 3, PMsPerDC: 1, DCs: 2})
	// No initial placement: every VM is homeless and must enter via the
	// global round.
	sc.World.Run(3, nil)
	h := NewHierarchical(sc.Inventory, costFor(sc), sched.NewObserved())
	m, _ := NewManager(ManagerConfig{World: sc.World, Scheduler: h})
	placement, err := h.Schedule(m.BuildProblem())
	if err != nil {
		t.Fatal(err)
	}
	for vm, pm := range placement {
		if pm == model.NoPM {
			t.Fatalf("homeless VM %v still unplaced", vm)
		}
	}
}

func TestHierarchicalRequiresInventory(t *testing.T) {
	h := &Hierarchical{Cost: sched.CostModel{}, Est: sched.NewObserved()}
	if _, err := h.Schedule(&sched.Problem{}); err == nil {
		t.Fatal("accepted nil inventory")
	}
}

func TestManagedRunBeatsUnmanagedOverload(t *testing.T) {
	// All VMs dumped on one host vs a managed fleet that can spread them:
	// management must deliver better SLA.
	build := func() (*scenario.Scenario, model.Placement) {
		sc := testScenario(t, scenario.Spec{VMs: 5, PMsPerDC: 2, DCs: 2, LoadScale: 2, Seed: 7})
		pile := model.Placement{}
		for _, vm := range sc.VMs {
			pile[vm.ID] = 0
		}
		return sc, pile
	}
	// Unmanaged.
	scU, pileU := build()
	if err := scU.World.PlaceInitial(pileU); err != nil {
		t.Fatal(err)
	}
	sumU, n := 0.0, 6*60
	scU.World.Run(n, func(st sim.TickStats) { sumU += st.AvgSLA })
	// Managed.
	scM, pileM := build()
	if err := scM.World.PlaceInitial(pileM); err != nil {
		t.Fatal(err)
	}
	// Plain observed Best-Fit cannot escape the pile (capped observations
	// say everything fits — the paper's vicious circle), so the managed run
	// uses the overbooked estimator, which sees through the cap.
	m, _ := NewManager(ManagerConfig{
		World:     scM.World,
		Scheduler: sched.NewBestFit(costFor(scM), sched.NewOverbooked()),
	})
	sumM := 0.0
	if err := m.Run(n, func(st sim.TickStats) { sumM += st.AvgSLA }); err != nil {
		t.Fatal(err)
	}
	if sumM <= sumU {
		t.Fatalf("management did not help: managed %v vs unmanaged %v", sumM/float64(n), sumU/float64(n))
	}
}
