package sla

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestWeightedFulfilment(t *testing.T) {
	terms := model.SLATerms{RT0: 0.1, Alpha: 10}
	loads := model.LoadVector{{RPS: 10}, {RPS: 30}}
	// Source 0 at full SLA, source 1 at zero.
	got := WeightedFulfilment(terms, []float64{0.05, 5.0}, loads)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("WeightedFulfilment = %v, want 0.25", got)
	}
}

func TestWeightedFulfilmentNoLoad(t *testing.T) {
	terms := model.DefaultSLATerms
	if got := WeightedFulfilment(terms, nil, model.LoadVector{{}, {}}); got != 1 {
		t.Fatalf("idle VM fulfilment = %v, want 1", got)
	}
}

func TestWeightedFulfilmentShortRTSlice(t *testing.T) {
	terms := model.DefaultSLATerms
	loads := model.LoadVector{{RPS: 10}, {RPS: 30}}
	// Only one RT supplied: the second source is ignored, weight falls on
	// the first.
	got := WeightedFulfilment(terms, []float64{0.05}, loads)
	if got != 1 {
		t.Fatalf("fulfilment = %v", got)
	}
}

func TestRevenueClamping(t *testing.T) {
	if got := Revenue(0.17, 1.5, 1); math.Abs(got-0.17) > 1e-12 {
		t.Fatalf("Revenue over-fulfilment = %v", got)
	}
	if got := Revenue(0.17, -0.5, 1); got != 0 {
		t.Fatalf("Revenue negative fulfilment = %v", got)
	}
	if got := Revenue(0.17, 0.5, 2); math.Abs(got-0.17) > 1e-12 {
		t.Fatalf("Revenue = %v", got)
	}
}

func TestMigrationPenalty(t *testing.T) {
	if got := MigrationPenalty(0.17, 0.5); math.Abs(got-0.085) > 1e-12 {
		t.Fatalf("MigrationPenalty = %v", got)
	}
	if got := MigrationPenalty(0.17, -1); got != 0 {
		t.Fatalf("negative downtime penalty = %v", got)
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.AddRevenue(1.0)
	l.AddPenalty(0.2)
	l.AddEnergy(0.3)
	l.Tick()
	l.AddRevenue(0.5)
	l.Tick()
	if p := l.Profit(); math.Abs(p-1.0) > 1e-12 {
		t.Fatalf("Profit = %v", p)
	}
	if l.Ticks() != 2 {
		t.Fatalf("Ticks = %d", l.Ticks())
	}
	// 2 ticks at 1/60h each; profit 1.0 over 1/30 h = 30/h.
	if got := l.AvgProfitPerHour(1.0 / 60); math.Abs(got-30) > 1e-9 {
		t.Fatalf("AvgProfitPerHour = %v", got)
	}
}

func TestLedgerMerge(t *testing.T) {
	var a, b Ledger
	a.AddRevenue(1)
	a.Tick()
	b.AddEnergy(0.5)
	b.AddPenalty(0.1)
	b.Tick()
	a.Merge(b)
	if a.Ticks() != 2 {
		t.Fatalf("merged ticks = %d", a.Ticks())
	}
	if math.Abs(a.Profit()-0.4) > 1e-12 {
		t.Fatalf("merged profit = %v", a.Profit())
	}
}

func TestLedgerZeroTicks(t *testing.T) {
	var l Ledger
	if l.AvgProfitPerHour(1.0/60) != 0 {
		t.Fatal("empty ledger avg should be 0")
	}
}

func TestInverseFulfilmentRoundTrip(t *testing.T) {
	terms := model.SLATerms{RT0: 0.1, Alpha: 10}
	f := func(raw float64) bool {
		lvl := math.Mod(math.Abs(raw), 1.0)
		rt := InverseFulfilment(terms, lvl)
		back := terms.Fulfilment(rt)
		return math.Abs(back-lvl) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverseFulfilmentEdges(t *testing.T) {
	terms := model.SLATerms{RT0: 0.1, Alpha: 10}
	if got := InverseFulfilment(terms, 1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("InverseFulfilment(1) = %v", got)
	}
	if got := InverseFulfilment(terms, 0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("InverseFulfilment(0) = %v", got)
	}
	if got := InverseFulfilment(terms, 2); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("InverseFulfilment clamps above 1: %v", got)
	}
}

func TestFulfilmentForwarding(t *testing.T) {
	terms := model.DefaultSLATerms
	if Fulfilment(terms, 0.05) != terms.Fulfilment(0.05) {
		t.Fatal("Fulfilment does not forward")
	}
}
