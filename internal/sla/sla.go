// Package sla implements the business side of the paper's model: the
// SLA(RT) fulfilment function (Section III-C), revenue, migration penalty
// and the provider's pricing constants.
package sla

import (
	"math"

	"repro/internal/model"
)

// DefaultPriceEURh is the customer price of one VM-hour, taken from the
// paper's Amazon-EC2-like pricing: 0.17 EUR per VM-hour.
const DefaultPriceEURh = 0.17

// Fulfilment evaluates SLA(RT) for the given terms; it simply forwards to
// model.SLATerms so all packages share one definition.
func Fulfilment(t model.SLATerms, rt float64) float64 { return t.Fulfilment(rt) }

// WeightedFulfilment computes the SLA level of a VM whose clients sit at
// several locations: the per-source fulfilments weighted by each source's
// share of the requests, as prescribed by constraint (7) of Figure 3
// ("weighting the different load sources").
func WeightedFulfilment(t model.SLATerms, rtBySource []float64, loads model.LoadVector) float64 {
	var weighted, total float64
	for i, l := range loads {
		if l.RPS <= 0 || i >= len(rtBySource) {
			continue
		}
		weighted += l.RPS * t.Fulfilment(rtBySource[i])
		total += l.RPS
	}
	if total <= 0 {
		// A VM with no load violates nothing.
		return 1
	}
	return weighted / total
}

// Revenue is frevenue(SLA) for one tick: the customer pays the hourly price
// scaled by the fulfilment level, pro-rated to the tick duration.
func Revenue(priceEURh, fulfilment, hours float64) float64 {
	if fulfilment < 0 {
		fulfilment = 0
	}
	if fulfilment > 1 {
		fulfilment = 1
	}
	return priceEURh * fulfilment * hours
}

// MigrationPenalty is fpenalty(Migr, Migl, ISize): the paper takes the
// pessimistic view that a migrating VM answers nothing, so the penalty is
// the full revenue lost over the expected downtime plus the latency the
// image transfer adds.
func MigrationPenalty(priceEURh, downtimeHours float64) float64 {
	if downtimeHours < 0 {
		downtimeHours = 0
	}
	return priceEURh * downtimeHours
}

// Ledger accumulates the provider's profit components over a run: the
// objective function of Figure 3 integrated over time.
// The zero value is ready to use.
type Ledger struct {
	revenue   float64
	penalties float64
	energy    float64
	ticks     int
}

// AddRevenue folds in SLA revenue earned this tick.
func (l *Ledger) AddRevenue(eur float64) { l.revenue += eur }

// AddPenalty folds in migration penalties incurred this tick.
func (l *Ledger) AddPenalty(eur float64) { l.penalties += eur }

// AddEnergy folds in energy cost paid this tick.
func (l *Ledger) AddEnergy(eur float64) { l.energy += eur }

// Tick marks the end of a simulation tick.
func (l *Ledger) Tick() { l.ticks++ }

// Revenue returns total revenue so far.
func (l *Ledger) Revenue() float64 { return l.revenue }

// Penalties returns total migration penalties so far.
func (l *Ledger) Penalties() float64 { return l.penalties }

// EnergyCost returns total energy cost so far.
func (l *Ledger) EnergyCost() float64 { return l.energy }

// Profit returns revenue - penalties - energy, the paper's objective.
func (l *Ledger) Profit() float64 { return l.revenue - l.penalties - l.energy }

// AvgProfitPerHour returns profit divided by elapsed hours.
func (l *Ledger) AvgProfitPerHour(tickHours float64) float64 {
	if l.ticks == 0 {
		return 0
	}
	return l.Profit() / (float64(l.ticks) * tickHours)
}

// Ticks returns how many ticks have been accounted.
func (l *Ledger) Ticks() int { return l.ticks }

// Merge folds another ledger into l.
func (l *Ledger) Merge(o Ledger) {
	l.revenue += o.revenue
	l.penalties += o.penalties
	l.energy += o.energy
	l.ticks += o.ticks
}

// InverseFulfilment returns the largest response time that still yields the
// given fulfilment level under terms t. It is the planning dual of
// Fulfilment: schedulers use it to translate an SLA target into an RT
// budget. lvl is clamped to [0, 1].
func InverseFulfilment(t model.SLATerms, lvl float64) float64 {
	lvl = math.Max(0, math.Min(1, lvl))
	if lvl >= 1 {
		return t.RT0
	}
	// SLA = 1 - (rt-RT0)/((alpha-1)*RT0)  =>  rt = RT0 + (1-SLA)(alpha-1)RT0
	return t.RT0 + (1-lvl)*(t.Alpha-1)*t.RT0
}
