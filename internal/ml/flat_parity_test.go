package ml

// Flat-layout parity: the kd-tree became an implicit leaf-bucketed index
// over one contiguous coordinate array, M5P inference became an iterative
// walk over dense node columns, and Bagged grew a devirtualized member
// view. None of that may change a single prediction. This file keeps the
// pre-refactor implementations — the one-point-per-node pointer kd-tree
// and the recursive pointer-walk M5P inference — as oracles and proves
// the flat layouts reproduce them bit for bit on randomized datasets.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// --- oracle: the pre-refactor pointer kd-tree, verbatim ---

type oracleKDTree struct {
	points [][]float64
	nodes  []oracleKDNode
	root   int
}

type oracleKDNode struct {
	point       int
	axis        int
	left, right int
}

func buildOracleKDTree(points [][]float64, n int) *oracleKDTree {
	t := &oracleKDTree{points: points, nodes: make([]oracleKDNode, 0, n)}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx)
	return t
}

func (t *oracleKDTree) build(idx []int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := t.widestAxis(idx)
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	for mid > 0 && t.points[idx[mid-1]][axis] == t.points[idx[mid]][axis] {
		mid--
	}
	node := oracleKDNode{point: idx[mid], axis: axis, left: -1, right: -1}
	t.nodes = append(t.nodes, node)
	id := len(t.nodes) - 1
	left := append([]int(nil), idx[:mid]...)
	right := append([]int(nil), idx[mid+1:]...)
	l := t.build(left)
	r := t.build(right)
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

func (t *oracleKDTree) widestAxis(idx []int) int {
	if len(idx) == 0 || len(t.points[idx[0]]) == 0 {
		return 0
	}
	dims := len(t.points[idx[0]])
	best, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := t.points[idx[0]][d], t.points[idx[0]][d]
		for _, i := range idx[1:] {
			v := t.points[i][d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread = spread
			best = d
		}
	}
	return best
}

func (t *oracleKDTree) search(q []float64, k int, h *neighborHeap) {
	t.searchNode(t.root, q, k, h)
}

func (t *oracleKDTree) searchNode(id int, q []float64, k int, h *neighborHeap) {
	if id < 0 {
		return
	}
	node := t.nodes[id]
	p := t.points[node.point]
	if h.Len() < k {
		h.push(neighbor{node.point, sqDist(q, p)})
	} else if d2, within := sqDistWithin(q, p, (*h)[0].d2); within {
		(*h)[0] = neighbor{node.point, d2}
		h.fixRoot()
	}
	diff := q[node.axis] - p[node.axis]
	near, far := node.left, node.right
	if diff > 0 {
		near, far = node.right, node.left
	}
	t.searchNode(near, q, k, h)
	if h.Len() < k || diff*diff < (*h)[0].d2 {
		t.searchNode(far, q, k, h)
	}
}

// --- oracle: the pre-refactor recursive M5P inference, verbatim ---

// oracleM5PPredict routes the row down the pointer tree exactly as the
// old M5P.Predict did: recursive descent, along-path smoothing on the way
// back up, clamp to the training target range.
func oracleM5PPredict(root *m5pNode, cfg M5PConfig, yLo, yHi float64, x []float64) float64 {
	var v float64
	if !cfg.Smoothing {
		node := root
		for !node.isLeaf() {
			if x[node.feature] <= node.thresh {
				node = node.left
			} else {
				node = node.right
			}
		}
		v = node.lm.Predict(x)
	} else {
		v = oracleM5PSmoothed(root, cfg.SmoothK, x)
	}
	if cfg.ClampToRange {
		if v < yLo {
			v = yLo
		}
		if v > yHi {
			v = yHi
		}
	}
	return v
}

func oracleM5PSmoothed(node *m5pNode, smoothK float64, x []float64) float64 {
	if node.isLeaf() {
		return node.lm.Predict(x)
	}
	child := node.left
	if x[node.feature] > node.thresh {
		child = node.right
	}
	p := oracleM5PSmoothed(child, smoothK, x)
	q := node.lm.Predict(x)
	return (float64(node.n)*p + smoothK*q) / (float64(node.n) + smoothK)
}

// --- randomized parity datasets ---

// sparseParityData mimics the SLA feature shape that used to degenerate
// the old tree: continuous columns mixed with mostly-constant sparse
// columns (zero-heavy queue/deficit analogues). One column is always
// continuous so no two rows are identical and exact distance ties cannot
// make neighbour selection ambiguous.
func sparseParityData(rows int, seed uint64) *Dataset {
	s := rng.New(seed, 0)
	d := NewDataset([]string{"rps", "cpuMs", "grant", "deficit", "queue"})
	for i := 0; i < rows; i++ {
		deficit := 0.0
		if s.Uniform(0, 1) < 0.1 {
			deficit = s.Uniform(0, 1)
		}
		queue := 0.0
		if s.Uniform(0, 1) < 0.2 {
			queue = s.Uniform(0, 400)
		}
		row := []float64{
			s.Uniform(0.01, 300), // continuous: rows never collide exactly
			s.Uniform(2, 30),
			s.Uniform(5, 400),
			deficit,
			queue,
		}
		y := row[0]*0.002 + row[1]*0.01 - deficit*0.4 - queue*0.001 + s.Norm(0, 0.05)
		d.Add(row, y)
	}
	return d
}

// duplicateHeavyData draws every column from a tiny discrete value set, so
// exact duplicate rows — and therefore exact distance ties during
// neighbour selection — are the norm rather than the exception. This is
// the shape that would expose any batching scheme that reorders leaf
// visits between queries: under ties, selection depends on scan order.
func duplicateHeavyData(rows int, seed uint64) *Dataset {
	s := rng.New(seed, 7)
	vals := []float64{0, 1, 2, 5, 10}
	d := NewDataset([]string{"a", "b", "c", "d", "e"})
	for i := 0; i < rows; i++ {
		row := make([]float64, 5)
		for j := range row {
			k := int(s.Uniform(0, float64(len(vals))))
			if k >= len(vals) {
				k = len(vals) - 1
			}
			row[j] = vals[k]
		}
		d.Add(row, row[0]+row[1]*0.5-row[4]*0.1+s.Norm(0, 0.01))
	}
	return d
}

// TestBatchedKNNMatchesSequential is the batch-path property test: for
// dense, sparse and duplicate-heavy datasets, with the kd-tree and the
// brute-force index, for several K, PredictBatchBuf over every batch size
// 1..N must reproduce the sequential PredictBuf answers bit for bit —
// including on duplicate-heavy data where exact distance ties make any
// visit-order deviation visible. PredictBatch (the allocating convenience
// form) is held to the same standard.
func TestBatchedKNNMatchesSequential(t *testing.T) {
	const nQueries = 24
	for _, tc := range []struct {
		name string
		data *Dataset
	}{
		{"dense-2d", knnData(600, 51)},
		{"sparse-5d", sparseParityData(800, 52)},
		{"duplicate-heavy", duplicateHeavyData(700, 53)},
	} {
		for _, useTree := range []bool{true, false} {
			for _, k := range []int{1, 4} {
				knn, err := TrainKNN(tc.data, KNNConfig{K: k, UseKDTree: useTree, DistanceWeight: true})
				if err != nil {
					t.Fatal(err)
				}
				dims := tc.data.Width()
				s := rng.New(54, uint64(k))
				rows := make([][]float64, nQueries)
				flat := make([]float64, 0, nQueries*dims)
				for i := range rows {
					row := make([]float64, dims)
					for j := range row {
						row[j] = s.Uniform(-1, 12)
					}
					rows[i] = row
					flat = append(flat, row...)
				}
				var seqBuf Buf
				want := make([]float64, nQueries)
				for i, row := range rows {
					want[i] = knn.PredictBuf(row, &seqBuf)
				}
				got := make([]float64, nQueries)
				var batchBuf Buf
				for size := 1; size <= nQueries; size++ {
					for i := range got {
						got[i] = math.NaN()
					}
					for lo := 0; lo < nQueries; lo += size {
						hi := lo + size
						if hi > nQueries {
							hi = nQueries
						}
						knn.PredictBatchBuf(flat[lo*dims:hi*dims], hi-lo, got[lo:hi], &batchBuf)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s tree=%v K=%d batch=%d query %d: batch %v != sequential %v",
								tc.name, useTree, k, size, i, got[i], want[i])
						}
					}
				}
				for i, v := range knn.PredictBatch(rows) {
					if v != want[i] {
						t.Fatalf("%s tree=%v K=%d PredictBatch query %d: %v != %v",
							tc.name, useTree, k, i, v, want[i])
					}
				}
			}
		}
	}
}

// TestFlatKDTreeMatchesPointerOracle proves the leaf-bucketed flat tree
// selects the same neighbours and yields bit-identical predictions as the
// old one-point-per-node pointer tree, across dataset shapes, sizes and K.
func TestFlatKDTreeMatchesPointerOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		data *Dataset
	}{
		{"dense-2d", knnData(700, 11)},
		{"sparse-5d", sparseParityData(900, 12)},
		{"tiny", knnData(7, 13)}, // smaller than one leaf bucket
	} {
		for _, k := range []int{1, 4, 9} {
			knn, err := TrainKNN(tc.data, KNNConfig{K: k, UseKDTree: true, DistanceWeight: true})
			if err != nil {
				t.Fatal(err)
			}
			oracle := buildOracleKDTree(knn.x, len(knn.x))
			s := rng.New(14, uint64(k))
			var buf Buf
			for i := 0; i < 300; i++ {
				raw := make([]float64, tc.data.Width())
				for j := range raw {
					raw[j] = s.Uniform(-2, 310)
				}
				got := knn.PredictBuf(raw, &buf)

				// Oracle prediction through the old tree and the same blend.
				q := knn.std.Apply(raw)
				var h neighborHeap
				oracle.search(q, knn.cfg.K, &h)
				want := knn.blend(h.sortedInto(nil))

				if got != want {
					t.Fatalf("%s K=%d query %d: flat %v != oracle %v", tc.name, k, i, got, want)
				}
			}
		}
	}
}

// TestFlatM5PMatchesPointerOracle proves the dense-column iterative
// inference is bit-identical to the recursive pointer walk on the same
// grown-and-pruned tree, across smoothing/pruning/clamping configs.
func TestFlatM5PMatchesPointerOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		data *Dataset
	}{
		{"piecewise", piecewiseData(900, 21, 0.4)},
		{"sparse", sparseParityData(700, 22)},
	} {
		for _, cfg := range []M5PConfig{
			DefaultM5PConfig(4),
			{MinLeaf: 2, Smoothing: true, SmoothK: 15, Pruning: false, ClampToRange: false, Ridge: 1e-6, SDRThreshold: 0.01},
			{MinLeaf: 8, Smoothing: false, Pruning: true, PruneFactor: 1, ClampToRange: true, Ridge: 1e-6, SDRThreshold: 0.05},
		} {
			m, err := TrainM5P(tc.data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Re-grow the pointer tree with the identical deterministic
			// recipe; the compile step is exactly what is under test.
			norm := m.cfg // TrainM5P normalises zero-valued knobs
			oracleTree := &M5P{cfg: norm}
			idx := make([]int, tc.data.Len())
			for i := range idx {
				idx[i] = i
			}
			root := oracleTree.grow(tc.data, idx, stddevAt(tc.data, idx))
			if norm.Pruning {
				oracleTree.prune(tc.data, root, idx)
			}

			s := rng.New(23, 1)
			for i := 0; i < 400; i++ {
				x := make([]float64, tc.data.Width())
				for j := range x {
					x[j] = s.Uniform(-5, 320)
				}
				got := m.Predict(x)
				want := oracleM5PPredict(root, norm, m.yLo, m.yHi, x)
				if norm.Smoothing {
					// The compiled tree folds the along-path blend into one
					// effective model per leaf — the same affine function the
					// recursive blend computes, associated differently — so
					// the oracle pins it to a tight relative tolerance rather
					// than bit equality.
					scale := math.Abs(want)
					if scale < 1 {
						scale = 1
					}
					if math.Abs(got-want) > 1e-9*scale {
						t.Fatalf("%s cfg %+v query %d: flat %v != smoothed oracle %v", tc.name, norm, i, got, want)
					}
				} else if got != want {
					t.Fatalf("%s cfg %+v query %d: flat %v != oracle %v", tc.name, norm, i, got, want)
				}
			}
		}
	}
}

// TestBaggedDevirtualizedPathMatchesGeneric proves the typed fast path of
// a homogeneous model-tree ensemble returns exactly the generic
// interface-dispatch average, and that heterogeneous ensembles keep using
// the generic path with identical results.
func TestBaggedDevirtualizedPathMatchesGeneric(t *testing.T) {
	d := sparseParityData(500, 31)
	bag, err := TrainBagged(d, BaggingConfig{Members: 7, Seed: 5}, func(sub *Dataset) (Regressor, error) {
		return TrainM5P(sub, DefaultM5PConfig(4))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bag.m5ps) != len(bag.Members) {
		t.Fatal("homogeneous M5P ensemble not devirtualized")
	}
	mixed, err := TrainBagged(d, BaggingConfig{Members: 4, Seed: 6}, func(sub *Dataset) (Regressor, error) {
		if sub.Len()%2 == 0 {
			return TrainLinear(sub, 0)
		}
		return TrainM5P(sub, DefaultM5PConfig(4))
	})
	if err != nil {
		t.Fatal(err)
	}

	s := rng.New(32, 0)
	var buf Buf
	for i := 0; i < 200; i++ {
		x := make([]float64, d.Width())
		for j := range x {
			x[j] = s.Uniform(-2, 310)
		}
		for _, b := range []*Bagged{bag, mixed} {
			// The generic reference: interface dispatch in member order.
			sum := 0.0
			for _, m := range b.Members {
				sum += PredictBuffered(m, x, &buf)
			}
			want := sum / float64(len(b.Members))
			if got := b.PredictBuf(x, &buf); got != want {
				t.Fatalf("query %d: PredictBuf %v != member-loop %v", i, got, want)
			}
			if got := b.Predict(x); got != want {
				t.Fatalf("query %d: Predict %v != member-loop %v", i, got, want)
			}
		}
	}
}

// TestFlatLayoutsZeroAllocOnSparseShapes extends the allocation gate to
// the dataset shape that exercises the new layouts hardest: sparse
// mostly-constant columns (deep, unbalanced trees; long parent walks;
// leaf-bucket scans past duplicate-valued axes).
func TestFlatLayoutsZeroAllocOnSparseShapes(t *testing.T) {
	d := sparseParityData(1200, 41)
	knn, err := TrainKNN(d, DefaultKNNConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	m5p, err := TrainM5P(d, M5PConfig{MinLeaf: 2, Smoothing: true, SmoothK: 15, SDRThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	bag, err := TrainBagged(d, BaggingConfig{Members: 5, Seed: 9}, func(sub *Dataset) (Regressor, error) {
		return TrainM5P(sub, DefaultM5PConfig(4))
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]float64{
		{10, 5, 50, 0, 0}, {250, 25, 380, 0.8, 350}, {100, 10, 5, 0, 120},
	}
	var buf Buf
	for _, q := range queries { // warm the scratch
		if math.IsNaN(knn.PredictBuf(q, &buf) + m5p.Predict(q) + bag.PredictBuf(q, &buf)) {
			t.Fatal("NaN prediction")
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, q := range queries {
			knn.PredictBuf(q, &buf)
			m5p.Predict(q)
			bag.PredictBuf(q, &buf)
		}
	})
	if allocs != 0 {
		t.Fatalf("flat-layout inference allocates %.1f objects per round, want 0", allocs)
	}
}
