package ml

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDatasetAddValidate(t *testing.T) {
	d := NewDataset([]string{"a", "b"})
	d.Add([]float64{1, 2}, 3)
	if d.Len() != 1 || d.Width() != 2 {
		t.Fatalf("Len/Width = %d/%d", d.Len(), d.Width())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row width did not panic")
		}
	}()
	d.Add([]float64{1}, 0)
}

func TestDatasetAddCopiesRow(t *testing.T) {
	d := NewDataset([]string{"a"})
	row := []float64{1}
	d.Add(row, 5)
	row[0] = 99
	if d.X[0][0] != 1 {
		t.Fatal("Add aliased caller slice")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := &Dataset{X: [][]float64{{1, 2}}, Y: []float64{1, 2}}
	if err := d.Validate(); err == nil {
		t.Fatal("accepted X/Y length mismatch")
	}
	d2 := &Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}}
	if err := d2.Validate(); err == nil {
		t.Fatal("accepted ragged rows")
	}
}

func TestSplitFractions(t *testing.T) {
	d := NewDataset([]string{"x"})
	for i := 0; i < 100; i++ {
		d.Add([]float64{float64(i)}, float64(i))
	}
	train, test := d.Split(0.66, rng.New(1, 1))
	if train.Len() != 66 || test.Len() != 34 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
	// Union must cover all rows exactly once.
	seen := make(map[float64]bool)
	for _, y := range append(append([]float64{}, train.Y...), test.Y...) {
		if seen[y] {
			t.Fatalf("row duplicated across split: %v", y)
		}
		seen[y] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split lost rows: %d", len(seen))
	}
}

func TestSplitDeterministicWithoutStream(t *testing.T) {
	d := NewDataset([]string{"x"})
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, float64(i))
	}
	train, test := d.Split(0.5, nil)
	for i := 0; i < 5; i++ {
		if train.Y[i] != float64(i) || test.Y[i] != float64(i+5) {
			t.Fatal("nil-stream split should preserve order")
		}
	}
}

func TestSplitEdges(t *testing.T) {
	d := NewDataset([]string{"x"})
	for i := 0; i < 10; i++ {
		d.Add([]float64{1}, 1)
	}
	tr, te := d.Split(0, nil)
	if tr.Len() != 0 || te.Len() != 10 {
		t.Fatal("frac 0 wrong")
	}
	tr, te = d.Split(2, nil)
	if tr.Len() != 10 || te.Len() != 0 {
		t.Fatal("frac > 1 wrong")
	}
}

func TestYRange(t *testing.T) {
	d := NewDataset([]string{"x"})
	if lo, hi := d.YRange(); lo != 0 || hi != 0 {
		t.Fatal("empty YRange not zero")
	}
	d.Add([]float64{0}, 5)
	d.Add([]float64{0}, -3)
	d.Add([]float64{0}, 9)
	lo, hi := d.YRange()
	if lo != -3 || hi != 9 {
		t.Fatalf("YRange = %v, %v", lo, hi)
	}
}

func TestStandardizer(t *testing.T) {
	d := NewDataset([]string{"a", "b"})
	d.Add([]float64{1, 10}, 0)
	d.Add([]float64{3, 10}, 0)
	s := FitStandardizer(d)
	if math.Abs(s.Mean[0]-2) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std[0]-1) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	// Constant column gets std 1 (maps to 0).
	if s.Std[1] != 1 {
		t.Fatalf("constant column std = %v", s.Std[1])
	}
	z := s.Apply([]float64{3, 10})
	if math.Abs(z[0]-1) > 1e-12 || z[1] != 0 {
		t.Fatalf("Apply = %v", z)
	}
	ds := s.ApplyDataset(d)
	if math.Abs(ds.X[0][0]+1) > 1e-12 {
		t.Fatalf("ApplyDataset = %v", ds.X)
	}
}

func TestStandardizerEmpty(t *testing.T) {
	s := FitStandardizer(NewDataset([]string{"a"}))
	if s.Std[0] != 1 {
		t.Fatal("empty standardizer std should be 1")
	}
}

func TestSubset(t *testing.T) {
	d := NewDataset([]string{"x"})
	for i := 0; i < 5; i++ {
		d.Add([]float64{float64(i)}, float64(i*10))
	}
	sub := d.Subset([]int{4, 0})
	if sub.Len() != 2 || sub.Y[0] != 40 || sub.Y[1] != 0 {
		t.Fatalf("Subset = %+v", sub)
	}
}

func TestEvaluateReport(t *testing.T) {
	d := NewDataset([]string{"x"})
	for i := 0; i < 20; i++ {
		d.Add([]float64{float64(i)}, 2*float64(i))
	}
	lm, _ := TrainLinear(d, 0)
	rep := Evaluate(lm, d)
	if rep.Correlation < 0.999 {
		t.Fatalf("correlation = %v", rep.Correlation)
	}
	if rep.MAE > 1e-6 {
		t.Fatalf("MAE = %v", rep.MAE)
	}
	if rep.NTest != 20 {
		t.Fatalf("NTest = %d", rep.NTest)
	}
	if rep.RangeLo != 0 || rep.RangeHi != 38 {
		t.Fatalf("range = %v..%v", rep.RangeLo, rep.RangeHi)
	}
	if len(rep.String()) == 0 {
		t.Fatal("empty report string")
	}
}

func TestCrossValidate(t *testing.T) {
	d := piecewiseData(300, 20, 0.2)
	corr, mae, err := CrossValidate(d, 5, func(train *Dataset) (Regressor, error) {
		return TrainM5P(train, DefaultM5PConfig(4))
	})
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.95 {
		t.Fatalf("cv correlation = %v", corr)
	}
	if mae > 2 {
		t.Fatalf("cv MAE = %v", mae)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := piecewiseData(10, 21, 0)
	if _, _, err := CrossValidate(d, 1, nil); err == nil {
		t.Fatal("accepted 1 fold")
	}
	small := NewDataset([]string{"x"})
	small.Add([]float64{1}, 1)
	if _, _, err := CrossValidate(small, 5, nil); err == nil {
		t.Fatal("accepted folds > rows")
	}
}
