package ml

import (
	"math"
	"testing"
)

func TestBaggedStabilisesUnprunedTrees(t *testing.T) {
	// The classic bagging setting: high-variance base learners. Unpruned,
	// unsmoothed model trees overfit heavy noise; averaging bootstrap
	// replicas must recover most of the loss.
	train := piecewiseData(600, 51, 3.0)
	test := piecewiseData(300, 52, 0)
	raw := M5PConfig{MinLeaf: 4, Pruning: false, Smoothing: false, ClampToRange: true}
	single, err := TrainM5P(train, raw)
	if err != nil {
		t.Fatal(err)
	}
	bag, err := TrainBagged(train, BaggingConfig{Members: 15, Seed: 1}, func(d *Dataset) (Regressor, error) {
		return TrainM5P(d, raw)
	})
	if err != nil {
		t.Fatal(err)
	}
	singleMAE := Evaluate(single, test).MAE
	bagMAE := Evaluate(bag, test).MAE
	if bagMAE >= singleMAE {
		t.Fatalf("bagging did not stabilise unpruned trees: %.4f vs single %.4f", bagMAE, singleMAE)
	}
}

func TestBaggedDeterministicInSeed(t *testing.T) {
	d := piecewiseData(200, 53, 0.5)
	mk := func() *Bagged {
		b, err := TrainBagged(d, BaggingConfig{Members: 5, Seed: 9}, func(s *Dataset) (Regressor, error) {
			return TrainM5P(s, DefaultM5PConfig(4))
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	for x0 := 0.5; x0 < 10; x0 += 1 {
		x := []float64{x0, 5}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed ensembles diverge")
		}
	}
}

// TestBaggedDeterministicAcrossWorkers pins the parallel-training
// contract: members draw their bootstraps from per-member named RNG
// streams, so the trained ensemble is bit-identical whether it trained
// serially or across any worker fan-out.
func TestBaggedDeterministicAcrossWorkers(t *testing.T) {
	d := piecewiseData(300, 56, 0.5)
	mk := func(workers int) *Bagged {
		b, err := TrainBagged(d, BaggingConfig{Members: 8, Seed: 4, Workers: workers}, func(s *Dataset) (Regressor, error) {
			return TrainM5P(s, DefaultM5PConfig(4))
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := mk(1)
	for _, workers := range []int{2, 5, 16} {
		par := mk(workers)
		for x0 := 0.25; x0 < 10; x0 += 0.25 {
			x := []float64{x0, 5}
			if got, want := par.Predict(x), serial.Predict(x); got != want {
				t.Fatalf("workers=%d diverges from serial at %v: %v != %v", workers, x, got, want)
			}
		}
	}
}

func TestBaggedSpread(t *testing.T) {
	d := piecewiseData(400, 54, 1.0)
	bag, err := TrainBagged(d, BaggingConfig{Members: 10, Seed: 2}, func(s *Dataset) (Regressor, error) {
		return TrainM5P(s, DefaultM5PConfig(4))
	})
	if err != nil {
		t.Fatal(err)
	}
	// On-manifold: members agree fairly well.
	_, onSpread := bag.PredictWithSpread([]float64{5, 5})
	// Far off-manifold: members extrapolate differently (clamping bounds
	// them, but the spread should not shrink).
	_, offSpread := bag.PredictWithSpread([]float64{500, -300})
	if math.IsNaN(onSpread) || math.IsNaN(offSpread) {
		t.Fatal("NaN spread")
	}
	if onSpread < 0 || offSpread < 0 {
		t.Fatal("negative spread")
	}
	mean, spread := bag.PredictWithSpread([]float64{5, 5})
	if spread > math.Abs(mean) {
		t.Fatalf("on-manifold spread %v implausibly large vs mean %v", spread, mean)
	}
}

func TestBaggedValidation(t *testing.T) {
	if _, err := TrainBagged(NewDataset(nil), BaggingConfig{}, nil); err == nil {
		t.Fatal("accepted empty dataset")
	}
	d := piecewiseData(50, 55, 0)
	if _, err := TrainBagged(d, BaggingConfig{}, nil); err == nil {
		t.Fatal("accepted nil trainer")
	}
	// Defaults: 10 members.
	bag, err := TrainBagged(d, BaggingConfig{}, func(s *Dataset) (Regressor, error) {
		return TrainLinear(s, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bag.Members) != 10 {
		t.Fatalf("default members = %d", len(bag.Members))
	}
	var empty Bagged
	if empty.Predict([]float64{1}) != 0 {
		t.Fatal("empty ensemble should predict 0")
	}
	if m, s := empty.PredictWithSpread([]float64{1}); m != 0 || s != 0 {
		t.Fatal("empty ensemble spread should be 0")
	}
}
