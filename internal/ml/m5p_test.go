package ml

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// piecewiseData builds the canonical M5P-friendly target: two different
// linear regimes split on x0.
func piecewiseData(n int, seed uint64, noise float64) *Dataset {
	s := rng.New(seed, 0)
	d := NewDataset([]string{"x0", "x1"})
	for i := 0; i < n; i++ {
		x0 := s.Uniform(0, 10)
		x1 := s.Uniform(0, 10)
		var y float64
		if x0 <= 5 {
			y = 1 + 2*x0 + 0.5*x1
		} else {
			y = 40 - 3*x0 + 0.1*x1
		}
		if noise > 0 {
			y += s.Norm(0, noise)
		}
		d.Add([]float64{x0, x1}, y)
	}
	return d
}

func TestM5PLearnsPiecewiseLinear(t *testing.T) {
	d := piecewiseData(800, 1, 0.1)
	m, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	test := piecewiseData(200, 2, 0)
	rep := Evaluate(m, test)
	if rep.Correlation < 0.99 {
		t.Fatalf("correlation = %v, want > 0.99", rep.Correlation)
	}
	if rep.MAE > 0.5 {
		t.Fatalf("MAE = %v", rep.MAE)
	}
	if m.NumLeaves() < 2 {
		t.Fatalf("tree did not split: %d leaves", m.NumLeaves())
	}
}

func TestM5PBeatsPlainLinearOnPiecewiseData(t *testing.T) {
	d := piecewiseData(800, 3, 0.2)
	test := piecewiseData(200, 4, 0)
	m5, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	lin, err := TrainLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	m5MAE := Evaluate(m5, test).MAE
	linMAE := Evaluate(lin, test).MAE
	if m5MAE >= linMAE {
		t.Fatalf("M5P (%v) should beat linear (%v) on piecewise data", m5MAE, linMAE)
	}
}

func TestM5PPureLinearCollapses(t *testing.T) {
	// On truly linear data pruning should collapse to few leaves and the
	// predictions should match the plane.
	s := rng.New(5, 5)
	d := NewDataset([]string{"x"})
	for i := 0; i < 400; i++ {
		x := s.Uniform(0, 100)
		d.Add([]float64{x}, 3*x+7)
	}
	m, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLeaves() > 3 {
		t.Fatalf("pruning left %d leaves on linear data", m.NumLeaves())
	}
	if got := m.Predict([]float64{50}); math.Abs(got-157) > 1.5 {
		t.Fatalf("Predict(50) = %v, want ~157", got)
	}
}

func TestM5PMinLeafRespected(t *testing.T) {
	d := piecewiseData(100, 6, 0.1)
	m, err := TrainM5P(d, M5PConfig{MinLeaf: 50, Pruning: false})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf=50 of 100 rows, at most one split is possible.
	if m.NumLeaves() > 2 {
		t.Fatalf("MinLeaf violated: %d leaves", m.NumLeaves())
	}
}

func TestM5PSmoothingChangesPredictions(t *testing.T) {
	d := piecewiseData(400, 7, 0.5)
	smooth, err := TrainM5P(d, M5PConfig{MinLeaf: 4, Smoothing: true, SmoothK: 15, Pruning: false})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := TrainM5P(d, M5PConfig{MinLeaf: 4, Smoothing: false, Pruning: false})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for x0 := 0.5; x0 < 10; x0 += 0.5 {
		diff += math.Abs(smooth.Predict([]float64{x0, 5}) - raw.Predict([]float64{x0, 5}))
	}
	if diff == 0 {
		t.Fatal("smoothing had no effect anywhere")
	}
}

func TestM5PPruningReducesLeaves(t *testing.T) {
	d := piecewiseData(400, 8, 2.0) // noisy: unpruned tree overfits
	unpruned, err := TrainM5P(d, M5PConfig{MinLeaf: 4, Pruning: false})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := TrainM5P(d, M5PConfig{MinLeaf: 4, Pruning: true, PruneFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumLeaves() > unpruned.NumLeaves() {
		t.Fatalf("pruning grew the tree: %d > %d", pruned.NumLeaves(), unpruned.NumLeaves())
	}
}

func TestM5PEmptyAndDegenerate(t *testing.T) {
	if _, err := TrainM5P(NewDataset(nil), DefaultM5PConfig(4)); err == nil {
		t.Fatal("accepted empty dataset")
	}
	// Single row: must produce a working (constant) model.
	d := NewDataset([]string{"x"})
	d.Add([]float64{1}, 42)
	m, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1}); math.Abs(got-42) > 1e-6 {
		t.Fatalf("single-row Predict = %v", got)
	}
}

func TestM5PConstantTarget(t *testing.T) {
	d := NewDataset([]string{"x"})
	s := rng.New(9, 9)
	for i := 0; i < 100; i++ {
		d.Add([]float64{s.Uniform(0, 1)}, 5)
	}
	m, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLeaves() != 1 {
		t.Fatalf("constant target grew %d leaves", m.NumLeaves())
	}
	if got := m.Predict([]float64{0.5}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestM5PDuplicateFeatureValues(t *testing.T) {
	// All x identical: no split possible, must not loop or panic.
	d := NewDataset([]string{"x"})
	for i := 0; i < 50; i++ {
		d.Add([]float64{1}, float64(i))
	}
	m, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLeaves() != 1 {
		t.Fatalf("split on constant feature: %d leaves", m.NumLeaves())
	}
}

func TestM5PDepthAndString(t *testing.T) {
	d := piecewiseData(400, 10, 0.1)
	m, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth() < 1 {
		t.Fatal("depth < 1")
	}
	if s := m.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestM5PConfigDefaults(t *testing.T) {
	// Invalid values fall back to sane defaults rather than failing.
	d := piecewiseData(100, 11, 0.1)
	m, err := TrainM5P(d, M5PConfig{MinLeaf: 0, SmoothK: -1, PruneFactor: -2, Pruning: true, Smoothing: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{5, 5}) == 0 {
		t.Fatal("degenerate config produced dead model")
	}
}

func TestAdjustedError(t *testing.T) {
	if adjustedError(1, 10, 2, 1) <= 1 {
		t.Fatal("penalty should inflate error")
	}
	if adjustedError(1, 2, 5, 1) != 10 {
		t.Fatalf("n<=v case = %v", adjustedError(1, 2, 5, 1))
	}
}

func TestSDFromMoments(t *testing.T) {
	// values {1,2,3}: sum 6, sq 14, n 3 => sd = sqrt(14/3 - 4) = sqrt(2/3)
	got := sdFromMoments(6, 14, 3)
	if math.Abs(got-math.Sqrt(2.0/3.0)) > 1e-12 {
		t.Fatalf("sdFromMoments = %v", got)
	}
	if sdFromMoments(0, 0, 0) != 0 {
		t.Fatal("empty moments sd != 0")
	}
	// Catastrophic cancellation must clamp, not NaN.
	if v := sdFromMoments(1e8, 1e8*1e8/4-1e-6, 4); math.IsNaN(v) {
		t.Fatal("sd NaN on cancellation")
	}
}
