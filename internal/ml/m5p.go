package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// M5PConfig exposes the hyper-parameters of the M5P model-tree learner.
type M5PConfig struct {
	// MinLeaf is WEKA's -M: the minimum number of instances per leaf.
	// The paper uses M=4 for the CPU/RT models and M=2 for network I/O.
	MinLeaf int
	// Smoothing enables Quinlan's along-path prediction smoothing.
	Smoothing bool
	// SmoothK is the smoothing constant (classic value 15).
	SmoothK float64
	// Pruning enables bottom-up subtree replacement by leaf linear models.
	Pruning bool
	// PruneFactor multiplies the pruned-error comparison: values > 1 prune
	// more aggressively. WEKA's pruning factor corresponds to 1.0.
	PruneFactor float64
	// Ridge is the regularisation used for leaf/node linear models; a small
	// positive value keeps near-collinear leaf fits stable.
	Ridge float64
	// SDRThreshold stops splitting when a node's target deviation falls
	// below this fraction of the root deviation (M5 uses 5%).
	SDRThreshold float64
	// ClampToRange bounds predictions to the training target range,
	// guarding the leaf linear models against wild extrapolation on
	// off-manifold queries.
	ClampToRange bool
}

// DefaultM5PConfig mirrors WEKA M5P defaults with M as given.
func DefaultM5PConfig(minLeaf int) M5PConfig {
	return M5PConfig{
		MinLeaf:      minLeaf,
		Smoothing:    true,
		SmoothK:      15,
		Pruning:      true,
		PruneFactor:  1.0,
		Ridge:        1e-6,
		SDRThreshold: 0.05,
		ClampToRange: true,
	}
}

// M5P is a fitted model tree. Inference runs over a flat structure of
// arrays: per-node columns (split feature/threshold, child and parent
// links, instance counts) plus all linear-model coefficients packed into
// one contiguous backing slice. Predict descends iteratively and evaluates
// exactly one linear model — with smoothing on, the per-leaf effective
// model that compile folded the whole ancestor blend into — no recursion,
// no per-node heap objects, no pointer chasing.
//
// Training still grows a conventional pointer-linked tree (grow/prune
// need mutable structure); TrainM5P compiles it into the flat layout and
// drops the pointers.
type M5P struct {
	cfg      M5PConfig
	yLo, yHi float64 // training target range, for ClampToRange

	// Per-node columns. Children of an interior node are adjacent records
	// (left = left[id], right = left[id]+1). feature < 0 marks a leaf.
	feature []int32
	thresh  []float64
	left    []int32
	parent  []int32   // -1 at the root
	n       []float64 // training instances that reached the node

	// Node linear models: yhat = intercept[id] + coefs[coefOff[id]+j]*x[j].
	intercept []float64
	coefOff   []int32
	coefLen   []int32
	coefs     []float64 // all nodes' coefficients, one backing array

	// Precompiled smoothed leaf models. Quinlan's along-path blend
	// p := (n*p + k*q)/(n + k) is, for a fixed leaf, a fixed affine
	// combination of the leaf's and its ancestors' linear models — so
	// compile folds the whole path into one effective model per leaf and
	// Predict pays a single dot product instead of an LM evaluation per
	// ancestor. Entries are empty for interior nodes and when smoothing is
	// off.
	smIntercept []float64
	smCoefOff   []int32
	smCoefLen   []int32
	smCoefs     []float64
}

// m5pNode is the mutable training-time representation.
type m5pNode struct {
	// Split (interior nodes only).
	feature int
	thresh  float64
	left    *m5pNode
	right   *m5pNode
	// Linear model: present at every node (used for smoothing and pruning),
	// authoritative at leaves.
	lm *Linear
	n  int // training instances that reached the node
}

func (n *m5pNode) isLeaf() bool { return n.left == nil }

// TrainM5P grows, prunes and (optionally) smooths an M5P model tree, then
// compiles it into the flat inference layout.
func TrainM5P(d *Dataset, cfg M5PConfig) (*M5P, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: cannot fit M5P on empty dataset")
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 4
	}
	if cfg.SmoothK <= 0 {
		cfg.SmoothK = 15
	}
	if cfg.PruneFactor <= 0 {
		cfg.PruneFactor = 1
	}
	if cfg.SDRThreshold <= 0 {
		cfg.SDRThreshold = 0.05
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	rootSD := stddevAt(d, idx)
	t := &M5P{cfg: cfg}
	t.yLo, t.yHi = d.YRange()
	root := t.grow(d, idx, rootSD)
	if cfg.Pruning {
		t.prune(d, root, idx)
	}
	t.compile(root)
	return t, nil
}

// compile flattens the pointer tree into the dense inference columns.
func (m *M5P) compile(root *m5pNode) {
	m.feature = m.feature[:0]
	m.thresh = m.thresh[:0]
	m.left = m.left[:0]
	m.parent = m.parent[:0]
	m.n = m.n[:0]
	m.intercept = m.intercept[:0]
	m.coefOff = m.coefOff[:0]
	m.coefLen = m.coefLen[:0]
	m.coefs = m.coefs[:0]
	if root == nil {
		return
	}
	m.allocNodes(1, -1)
	m.fillNode(0, root)
	if m.cfg.Smoothing {
		m.compileSmoothed()
	}
}

// compileSmoothed folds the along-path smoothing blend into one effective
// linear model per leaf. Walking the blend p := (n_a*p + k*q_a)/(n_a + k)
// from the leaf to the root multiplies every already-accumulated model's
// weight by n_a/(n_a+k) and adds ancestor a with weight k/(n_a+k); the
// resulting per-model weights depend only on the path, so the weighted sum
// of intercepts and (zero-padded) coefficient vectors is the smoothed
// prediction as a single affine model.
func (m *M5P) compileSmoothed() {
	nn := len(m.feature)
	m.smIntercept = append(m.smIntercept[:0], make([]float64, nn)...)
	m.smCoefOff = append(m.smCoefOff[:0], make([]int32, nn)...)
	m.smCoefLen = append(m.smCoefLen[:0], make([]int32, nn)...)
	m.smCoefs = m.smCoefs[:0]
	k := m.cfg.SmoothK
	var coef []float64
	for id := 0; id < nn; id++ {
		if m.feature[id] >= 0 {
			continue // interior
		}
		// Path width: the widest model the blend touches.
		width := int(m.coefLen[id])
		for a := m.parent[id]; a >= 0; a = m.parent[a] {
			if w := int(m.coefLen[a]); w > width {
				width = w
			}
		}
		if cap(coef) < width {
			coef = make([]float64, width)
		}
		coef = coef[:width]
		for j := range coef {
			coef[j] = 0
		}
		// Leaf model starts with weight 1; each ancestor rescales the
		// accumulated sum and joins with its own blend share.
		inter := m.intercept[id]
		off := int(m.coefOff[id])
		for j := 0; j < int(m.coefLen[id]); j++ {
			coef[j] = m.coefs[off+j]
		}
		for a := m.parent[id]; a >= 0; a = m.parent[a] {
			keep := m.n[a] / (m.n[a] + k)
			add := k / (m.n[a] + k)
			inter *= keep
			for j := range coef {
				coef[j] *= keep
			}
			inter += add * m.intercept[a]
			off := int(m.coefOff[a])
			for j := 0; j < int(m.coefLen[a]); j++ {
				coef[j] += add * m.coefs[off+j]
			}
		}
		m.smIntercept[id] = inter
		m.smCoefOff[id] = int32(len(m.smCoefs))
		m.smCoefLen[id] = int32(width)
		m.smCoefs = append(m.smCoefs, coef...)
	}
}

// smPredict evaluates leaf id's precompiled smoothed model, truncating at
// the row width exactly as lmPredict zero-pads short rows.
func (m *M5P) smPredict(id int32, x []float64) float64 {
	y := m.smIntercept[id]
	off := int(m.smCoefOff[id])
	n := int(m.smCoefLen[id])
	if n > len(x) {
		n = len(x)
	}
	for j, c := range m.smCoefs[off : off+n] {
		y += c * x[j]
	}
	return y
}

// allocNodes appends count zeroed node records with the given parent and
// returns the id of the first.
func (m *M5P) allocNodes(count int, parent int32) int32 {
	id := int32(len(m.feature))
	for i := 0; i < count; i++ {
		m.feature = append(m.feature, -1)
		m.thresh = append(m.thresh, 0)
		m.left = append(m.left, -1)
		m.parent = append(m.parent, parent)
		m.n = append(m.n, 0)
		m.intercept = append(m.intercept, 0)
		m.coefOff = append(m.coefOff, 0)
		m.coefLen = append(m.coefLen, 0)
	}
	return id
}

func (m *M5P) fillNode(id int32, node *m5pNode) {
	m.n[id] = float64(node.n)
	m.intercept[id] = node.lm.Intercept
	m.coefOff[id] = int32(len(m.coefs))
	m.coefLen[id] = int32(len(node.lm.Coef))
	m.coefs = append(m.coefs, node.lm.Coef...)
	if node.isLeaf() {
		m.feature[id] = -1
		return
	}
	m.feature[id] = int32(node.feature)
	m.thresh[id] = node.thresh
	left := m.allocNodes(2, id) // children adjacent: right is left+1
	m.left[id] = left
	m.fillNode(left, node.left)
	m.fillNode(left+1, node.right)
}

// lmPredict evaluates node id's linear model on x with the exact loop
// shape of Linear.Predict (zero-padding rows shorter than the model).
func (m *M5P) lmPredict(id int32, x []float64) float64 {
	y := m.intercept[id]
	off := int(m.coefOff[id])
	for j := 0; j < int(m.coefLen[id]); j++ {
		if j < len(x) {
			y += m.coefs[off+j] * x[j]
		}
	}
	return y
}

// grow recursively builds the unpruned tree and fits a linear model at
// every node.
func (t *M5P) grow(d *Dataset, idx []int, rootSD float64) *m5pNode {
	node := &m5pNode{n: len(idx), feature: -1}
	node.lm = t.fitNodeModel(d, idx)
	sd := stddevAt(d, idx)
	if len(idx) < 2*t.cfg.MinLeaf || sd <= t.cfg.SDRThreshold*rootSD {
		return node
	}
	feat, thresh, ok := t.bestSplit(d, idx, sd)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return node
	}
	node.feature = feat
	node.thresh = thresh
	node.left = t.grow(d, left, rootSD)
	node.right = t.grow(d, right, rootSD)
	return node
}

// bestSplit maximises the standard deviation reduction
// SDR = sd(S) - sum_i |S_i|/|S| * sd(S_i) over all (feature, threshold)
// candidates, scanning each feature in sorted order with running moments so
// every threshold costs O(1).
func (t *M5P) bestSplit(d *Dataset, idx []int, parentSD float64) (feat int, thresh float64, ok bool) {
	bestSDR := 0.0
	n := len(idx)
	order := make([]int, n)
	for f := 0; f < d.Width(); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		// Running sums from the left.
		var sumL, sqL float64
		var sumR, sqR float64
		for _, i := range order {
			sumR += d.Y[i]
			sqR += d.Y[i] * d.Y[i]
		}
		for k := 0; k < n-1; k++ {
			y := d.Y[order[k]]
			sumL += y
			sqL += y * y
			sumR -= y
			sqR -= y * y
			// Candidate threshold between distinct attribute values only.
			xv, xn := d.X[order[k]][f], d.X[order[k+1]][f]
			if xv == xn {
				continue
			}
			nl, nr := k+1, n-k-1
			if nl < t.cfg.MinLeaf || nr < t.cfg.MinLeaf {
				continue
			}
			sdl := sdFromMoments(sumL, sqL, nl)
			sdr := sdFromMoments(sumR, sqR, nr)
			red := parentSD - (float64(nl)*sdl+float64(nr)*sdr)/float64(n)
			if red > bestSDR {
				bestSDR = red
				feat = f
				thresh = (xv + xn) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

// fitNodeModel fits the node's linear model, falling back to the target
// mean when the solve fails (e.g. fully degenerate features).
func (t *M5P) fitNodeModel(d *Dataset, idx []int) *Linear {
	sub := d.Subset(idx)
	lm, err := TrainLinear(sub, t.cfg.Ridge)
	if err != nil {
		return meanModel(sub.Y)
	}
	return lm
}

// prune walks bottom-up replacing subtrees whose (complexity-adjusted)
// linear-model error is no worse than the subtree's.
func (t *M5P) prune(d *Dataset, node *m5pNode, idx []int) float64 {
	if node.isLeaf() {
		return adjustedError(t.leafErr(d, node, idx), len(idx), node.lm.NumParams(), t.cfg.PruneFactor)
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][node.feature] <= node.thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	errL := t.prune(d, node.left, left)
	errR := t.prune(d, node.right, right)
	subtreeErr := (errL*float64(len(left)) + errR*float64(len(right))) / float64(len(idx))
	nodeErr := adjustedError(t.leafErr(d, node, idx), len(idx), node.lm.NumParams(), t.cfg.PruneFactor)
	if nodeErr <= subtreeErr {
		node.left, node.right = nil, nil
		node.feature = -1
		return nodeErr
	}
	return subtreeErr
}

// leafErr is the mean absolute error of the node's linear model on the
// instances that reach it.
func (t *M5P) leafErr(d *Dataset, node *m5pNode, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += math.Abs(node.lm.Predict(d.X[i]) - d.Y[i])
	}
	return s / float64(len(idx))
}

// adjustedError applies M5's complexity penalty (n+v)/(n-v) to an error
// estimate so small leaves with many parameters look worse.
func adjustedError(err float64, n, v int, factor float64) float64 {
	if n <= v {
		return err * 10 * factor // hopeless leaf: strongly discourage
	}
	return err * (float64(n) + float64(v)*factor) / (float64(n) - float64(v))
}

// Predict routes the row down the tree; with smoothing the raw leaf value
// is blended with ancestor models on the way back up.
func (m *M5P) Predict(x []float64) float64 {
	v := m.predictRaw(x)
	if m.cfg.ClampToRange {
		if v < m.yLo {
			v = m.yLo
		}
		if v > m.yHi {
			v = m.yHi
		}
	}
	return v
}

// predictRaw descends the flat node columns to the leaf and evaluates the
// leaf's model — the precompiled smoothed one when smoothing is on (see
// compileSmoothed), the plain leaf model otherwise.
func (m *M5P) predictRaw(x []float64) float64 {
	id := int32(0)
	for m.feature[id] >= 0 {
		if x[m.feature[id]] <= m.thresh[id] {
			id = m.left[id]
		} else {
			id = m.left[id] + 1
		}
	}
	if m.cfg.Smoothing {
		return m.smPredict(id, x)
	}
	return m.lmPredict(id, x)
}

// NumNodes returns the total node count of the flat layout.
func (m *M5P) NumNodes() int { return len(m.feature) }

// NumLeaves returns the number of leaf linear models.
func (m *M5P) NumLeaves() int {
	leaves := 0
	for _, f := range m.feature {
		if f < 0 {
			leaves++
		}
	}
	return leaves
}

// Depth returns the maximum depth of the tree (a single leaf has depth 1).
func (m *M5P) Depth() int {
	if len(m.feature) == 0 {
		return 0
	}
	// depth[id] is one more than its parent's; records are appended so a
	// parent always precedes its children and one forward pass suffices.
	best := 0
	depth := make([]int, len(m.feature))
	for id := range m.feature {
		if p := m.parent[id]; p >= 0 {
			depth[id] = depth[p] + 1
		}
		if depth[id] > best {
			best = depth[id]
		}
	}
	return best + 1
}

// String renders the tree structure for debugging.
func (m *M5P) String() string {
	var b strings.Builder
	var walk func(id int32, depth int)
	walk = func(id int32, depth int) {
		pad := strings.Repeat("  ", depth)
		if m.feature[id] < 0 {
			fmt.Fprintf(&b, "%sLM (n=%d)\n", pad, int(m.n[id]))
			return
		}
		fmt.Fprintf(&b, "%sx[%d] <= %.4g (n=%d)\n", pad, m.feature[id], m.thresh[id], int(m.n[id]))
		walk(m.left[id], depth+1)
		walk(m.left[id]+1, depth+1)
	}
	if len(m.feature) > 0 {
		walk(0, 0)
	}
	return b.String()
}

func stddevAt(d *Dataset, idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	var sum, sq float64
	for _, i := range idx {
		sum += d.Y[i]
		sq += d.Y[i] * d.Y[i]
	}
	return sdFromMoments(sum, sq, len(idx))
}

func sdFromMoments(sum, sq float64, n int) float64 {
	if n < 1 {
		return 0
	}
	mean := sum / float64(n)
	v := sq/float64(n) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

var _ Regressor = (*M5P)(nil)
