package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// M5PConfig exposes the hyper-parameters of the M5P model-tree learner.
type M5PConfig struct {
	// MinLeaf is WEKA's -M: the minimum number of instances per leaf.
	// The paper uses M=4 for the CPU/RT models and M=2 for network I/O.
	MinLeaf int
	// Smoothing enables Quinlan's along-path prediction smoothing.
	Smoothing bool
	// SmoothK is the smoothing constant (classic value 15).
	SmoothK float64
	// Pruning enables bottom-up subtree replacement by leaf linear models.
	Pruning bool
	// PruneFactor multiplies the pruned-error comparison: values > 1 prune
	// more aggressively. WEKA's pruning factor corresponds to 1.0.
	PruneFactor float64
	// Ridge is the regularisation used for leaf/node linear models; a small
	// positive value keeps near-collinear leaf fits stable.
	Ridge float64
	// SDRThreshold stops splitting when a node's target deviation falls
	// below this fraction of the root deviation (M5 uses 5%).
	SDRThreshold float64
	// ClampToRange bounds predictions to the training target range,
	// guarding the leaf linear models against wild extrapolation on
	// off-manifold queries.
	ClampToRange bool
}

// DefaultM5PConfig mirrors WEKA M5P defaults with M as given.
func DefaultM5PConfig(minLeaf int) M5PConfig {
	return M5PConfig{
		MinLeaf:      minLeaf,
		Smoothing:    true,
		SmoothK:      15,
		Pruning:      true,
		PruneFactor:  1.0,
		Ridge:        1e-6,
		SDRThreshold: 0.05,
		ClampToRange: true,
	}
}

// M5P is a fitted model tree.
type M5P struct {
	root     *m5pNode
	cfg      M5PConfig
	yLo, yHi float64 // training target range, for ClampToRange
}

type m5pNode struct {
	// Split (interior nodes only).
	feature int
	thresh  float64
	left    *m5pNode
	right   *m5pNode
	// Linear model: present at every node (used for smoothing and pruning),
	// authoritative at leaves.
	lm *Linear
	n  int // training instances that reached the node
}

func (n *m5pNode) isLeaf() bool { return n.left == nil }

// TrainM5P grows, prunes and (optionally) smooths an M5P model tree.
func TrainM5P(d *Dataset, cfg M5PConfig) (*M5P, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: cannot fit M5P on empty dataset")
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 4
	}
	if cfg.SmoothK <= 0 {
		cfg.SmoothK = 15
	}
	if cfg.PruneFactor <= 0 {
		cfg.PruneFactor = 1
	}
	if cfg.SDRThreshold <= 0 {
		cfg.SDRThreshold = 0.05
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	rootSD := stddevAt(d, idx)
	t := &M5P{cfg: cfg}
	t.yLo, t.yHi = d.YRange()
	t.root = t.grow(d, idx, rootSD)
	if cfg.Pruning {
		t.prune(d, t.root, idx)
	}
	return t, nil
}

// grow recursively builds the unpruned tree and fits a linear model at
// every node.
func (t *M5P) grow(d *Dataset, idx []int, rootSD float64) *m5pNode {
	node := &m5pNode{n: len(idx), feature: -1}
	node.lm = t.fitNodeModel(d, idx)
	sd := stddevAt(d, idx)
	if len(idx) < 2*t.cfg.MinLeaf || sd <= t.cfg.SDRThreshold*rootSD {
		return node
	}
	feat, thresh, ok := t.bestSplit(d, idx, sd)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return node
	}
	node.feature = feat
	node.thresh = thresh
	node.left = t.grow(d, left, rootSD)
	node.right = t.grow(d, right, rootSD)
	return node
}

// bestSplit maximises the standard deviation reduction
// SDR = sd(S) - sum_i |S_i|/|S| * sd(S_i) over all (feature, threshold)
// candidates, scanning each feature in sorted order with running moments so
// every threshold costs O(1).
func (t *M5P) bestSplit(d *Dataset, idx []int, parentSD float64) (feat int, thresh float64, ok bool) {
	bestSDR := 0.0
	n := len(idx)
	order := make([]int, n)
	for f := 0; f < d.Width(); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		// Running sums from the left.
		var sumL, sqL float64
		var sumR, sqR float64
		for _, i := range order {
			sumR += d.Y[i]
			sqR += d.Y[i] * d.Y[i]
		}
		for k := 0; k < n-1; k++ {
			y := d.Y[order[k]]
			sumL += y
			sqL += y * y
			sumR -= y
			sqR -= y * y
			// Candidate threshold between distinct attribute values only.
			xv, xn := d.X[order[k]][f], d.X[order[k+1]][f]
			if xv == xn {
				continue
			}
			nl, nr := k+1, n-k-1
			if nl < t.cfg.MinLeaf || nr < t.cfg.MinLeaf {
				continue
			}
			sdl := sdFromMoments(sumL, sqL, nl)
			sdr := sdFromMoments(sumR, sqR, nr)
			red := parentSD - (float64(nl)*sdl+float64(nr)*sdr)/float64(n)
			if red > bestSDR {
				bestSDR = red
				feat = f
				thresh = (xv + xn) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

// fitNodeModel fits the node's linear model, falling back to the target
// mean when the solve fails (e.g. fully degenerate features).
func (t *M5P) fitNodeModel(d *Dataset, idx []int) *Linear {
	sub := d.Subset(idx)
	lm, err := TrainLinear(sub, t.cfg.Ridge)
	if err != nil {
		return meanModel(sub.Y)
	}
	return lm
}

// prune walks bottom-up replacing subtrees whose (complexity-adjusted)
// linear-model error is no worse than the subtree's.
func (t *M5P) prune(d *Dataset, node *m5pNode, idx []int) float64 {
	if node.isLeaf() {
		return adjustedError(t.leafErr(d, node, idx), len(idx), node.lm.NumParams(), t.cfg.PruneFactor)
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][node.feature] <= node.thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	errL := t.prune(d, node.left, left)
	errR := t.prune(d, node.right, right)
	subtreeErr := (errL*float64(len(left)) + errR*float64(len(right))) / float64(len(idx))
	nodeErr := adjustedError(t.leafErr(d, node, idx), len(idx), node.lm.NumParams(), t.cfg.PruneFactor)
	if nodeErr <= subtreeErr {
		node.left, node.right = nil, nil
		node.feature = -1
		return nodeErr
	}
	return subtreeErr
}

// leafErr is the mean absolute error of the node's linear model on the
// instances that reach it.
func (t *M5P) leafErr(d *Dataset, node *m5pNode, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += math.Abs(node.lm.Predict(d.X[i]) - d.Y[i])
	}
	return s / float64(len(idx))
}

// adjustedError applies M5's complexity penalty (n+v)/(n-v) to an error
// estimate so small leaves with many parameters look worse.
func adjustedError(err float64, n, v int, factor float64) float64 {
	if n <= v {
		return err * 10 * factor // hopeless leaf: strongly discourage
	}
	return err * (float64(n) + float64(v)*factor) / (float64(n) - float64(v))
}

// Predict routes the row down the tree; with smoothing the raw leaf value
// is blended with ancestor models on the way back up.
func (m *M5P) Predict(x []float64) float64 {
	v := m.predictRaw(x)
	if m.cfg.ClampToRange {
		if v < m.yLo {
			v = m.yLo
		}
		if v > m.yHi {
			v = m.yHi
		}
	}
	return v
}

func (m *M5P) predictRaw(x []float64) float64 {
	if !m.cfg.Smoothing {
		node := m.root
		for !node.isLeaf() {
			if x[node.feature] <= node.thresh {
				node = node.left
			} else {
				node = node.right
			}
		}
		return node.lm.Predict(x)
	}
	return m.predictSmoothed(m.root, x)
}

// predictSmoothed routes x to its leaf and blends the prediction with every
// ancestor model on the way back up — p := (n*p + k*q) / (n + k) — using the
// call stack as the path, so inference never allocates. The blend order is
// exactly the old explicit-path loop's (deepest ancestor first).
func (m *M5P) predictSmoothed(node *m5pNode, x []float64) float64 {
	if node.isLeaf() {
		return node.lm.Predict(x)
	}
	child := node.left
	if x[node.feature] > node.thresh {
		child = node.right
	}
	p := m.predictSmoothed(child, x)
	q := node.lm.Predict(x)
	return (float64(node.n)*p + m.cfg.SmoothK*q) / (float64(node.n) + m.cfg.SmoothK)
}

// NumLeaves returns the number of leaf linear models.
func (m *M5P) NumLeaves() int { return countLeaves(m.root) }

// Depth returns the maximum depth of the tree (a single leaf has depth 1).
func (m *M5P) Depth() int { return depth(m.root) }

func countLeaves(n *m5pNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

func depth(n *m5pNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders the tree structure for debugging.
func (m *M5P) String() string {
	var b strings.Builder
	var walk func(n *m5pNode, depth int)
	walk = func(n *m5pNode, depth int) {
		pad := strings.Repeat("  ", depth)
		if n.isLeaf() {
			fmt.Fprintf(&b, "%sLM (n=%d)\n", pad, n.n)
			return
		}
		fmt.Fprintf(&b, "%sx[%d] <= %.4g (n=%d)\n", pad, n.feature, n.thresh, n.n)
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(m.root, 0)
	return b.String()
}

func stddevAt(d *Dataset, idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	var sum, sq float64
	for _, i := range idx {
		sum += d.Y[i]
		sq += d.Y[i] * d.Y[i]
	}
	return sdFromMoments(sum, sq, len(idx))
}

func sdFromMoments(sum, sq float64, n int) float64 {
	if n < 1 {
		return 0
	}
	mean := sum / float64(n)
	v := sq/float64(n) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

var _ Regressor = (*M5P)(nil)
