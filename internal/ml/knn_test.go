package ml

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func knnData(n int, seed uint64) *Dataset {
	s := rng.New(seed, 0)
	d := NewDataset([]string{"x0", "x1"})
	for i := 0; i < n; i++ {
		x0, x1 := s.Uniform(0, 10), s.Uniform(0, 10)
		d.Add([]float64{x0, x1}, math.Sin(x0)+0.5*x1)
	}
	return d
}

func TestKNNExactNeighborRecall(t *testing.T) {
	d := NewDataset([]string{"x"})
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, float64(i)*10)
	}
	k, err := TrainKNN(d, KNNConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Query at 5.1: neighbours 5, 6, 4 -> mean(50, 60, 40) = 50.
	if got := k.Predict([]float64{5.1}); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Predict = %v, want 50", got)
	}
}

func TestKNNBruteEqualsKDTree(t *testing.T) {
	d := knnData(500, 1)
	brute, err := TrainKNN(d, KNNConfig{K: 4, UseKDTree: false})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TrainKNN(d, KNNConfig{K: 4, UseKDTree: true})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(2, 2)
	for i := 0; i < 200; i++ {
		q := []float64{s.Uniform(-1, 11), s.Uniform(-1, 11)}
		pb := brute.Predict(q)
		pt := tree.Predict(q)
		if math.Abs(pb-pt) > 1e-9 {
			// Allow differences only from exact distance ties.
			nb := brute.Neighbors(q)
			nt := tree.Neighbors(q)
			db := nb[len(nb)-1].Dist2
			dt := nt[len(nt)-1].Dist2
			if math.Abs(db-dt) > 1e-9 {
				t.Fatalf("brute %v != kdtree %v at %v", pb, pt, q)
			}
		}
	}
}

func TestKNNNeighborsSortedAscending(t *testing.T) {
	d := knnData(300, 3)
	k, err := TrainKNN(d, DefaultKNNConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	nb := k.Neighbors([]float64{5, 5})
	if len(nb) != 6 {
		t.Fatalf("got %d neighbours", len(nb))
	}
	if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i].Dist2 < nb[j].Dist2 }) {
		t.Fatalf("neighbours not ascending: %+v", nb)
	}
}

func TestKNNDistanceWeighting(t *testing.T) {
	d := NewDataset([]string{"x"})
	d.Add([]float64{0}, 0)
	d.Add([]float64{10}, 100)
	uni, _ := TrainKNN(d, KNNConfig{K: 2})
	wgt, _ := TrainKNN(d, KNNConfig{K: 2, DistanceWeight: true})
	// Query near 0: uniform gives 50, weighted pulls toward 0.
	pu := uni.Predict([]float64{1})
	pw := wgt.Predict([]float64{1})
	if math.Abs(pu-50) > 1e-9 {
		t.Fatalf("uniform = %v", pu)
	}
	if pw >= pu {
		t.Fatalf("weighted (%v) should be below uniform (%v)", pw, pu)
	}
}

func TestKNNKClamping(t *testing.T) {
	d := NewDataset([]string{"x"})
	d.Add([]float64{0}, 1)
	d.Add([]float64{1}, 3)
	k, err := TrainKNN(d, KNNConfig{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if k.K() != 2 {
		t.Fatalf("K = %d, want clamp to 2", k.K())
	}
	if got := k.Predict([]float64{0.5}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Predict = %v", got)
	}
	// K <= 0 falls back to 4 (paper default).
	k2, err := TrainKNN(knnData(50, 4), KNNConfig{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	if k2.K() != 4 {
		t.Fatalf("default K = %d", k2.K())
	}
}

func TestKNNEmpty(t *testing.T) {
	if _, err := TrainKNN(NewDataset(nil), DefaultKNNConfig(4)); err == nil {
		t.Fatal("accepted empty dataset")
	}
}

func TestKNNStandardizationMatters(t *testing.T) {
	// One feature spans [0, 1000], the other [0, 1] but carries the signal.
	// Standardization lets the small-scale feature contribute.
	s := rng.New(5, 5)
	d := NewDataset([]string{"big", "small"})
	for i := 0; i < 400; i++ {
		big := s.Uniform(0, 1000)
		small := s.Uniform(0, 1)
		d.Add([]float64{big, small}, 100*small)
	}
	k, err := TrainKNN(d, DefaultKNNConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	for i := 0; i < 100; i++ {
		big := s.Uniform(0, 1000)
		small := s.Uniform(0, 1)
		pred = append(pred, k.Predict([]float64{big, small}))
		truth = append(truth, 100*small)
	}
	mae := 0.0
	for i := range pred {
		mae += math.Abs(pred[i] - truth[i])
	}
	mae /= float64(len(pred))
	if mae > 12 {
		t.Fatalf("MAE = %v; standardization not effective", mae)
	}
}

func TestKDTreePropertyMatchesBrute(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		d := knnData(120, seed)
		brute, err := TrainKNN(d, KNNConfig{K: k, UseKDTree: false})
		if err != nil {
			return false
		}
		tree, err := TrainKNN(d, KNNConfig{K: k, UseKDTree: true})
		if err != nil {
			return false
		}
		s := rng.New(seed, 77)
		for i := 0; i < 20; i++ {
			q := []float64{s.Uniform(0, 10), s.Uniform(0, 10)}
			nb := brute.Neighbors(q)
			nt := tree.Neighbors(q)
			if len(nb) != len(nt) {
				return false
			}
			// Distances must agree (indices may differ on exact ties).
			for j := range nb {
				if math.Abs(nb[j].Dist2-nt[j].Dist2) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKDTreeSingletonAndDuplicates(t *testing.T) {
	d := NewDataset([]string{"x"})
	for i := 0; i < 20; i++ {
		d.Add([]float64{1}, 2) // all identical points
	}
	k, err := TrainKNN(d, DefaultKNNConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{1}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("duplicate-point Predict = %v", got)
	}
}
