// Package ml is the from-scratch learning library behind the paper's
// predictors: M5P model trees (regression trees with linear models at the
// leaves), ordinary/ridge linear regression solved by QR decomposition, and
// k-nearest-neighbours regression with an optional kd-tree index.
//
// The paper trains its models in WEKA (M5P with M=4 or M=2, LinearRegression,
// IBk with K=4); this package reimplements those algorithms on the standard
// library only, with the same hyper-parameters exposed.
package ml

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Dataset is a dense supervised-regression dataset: one row of features per
// observation and one numeric target.
type Dataset struct {
	// Names labels the feature columns (optional but keeps models debuggable).
	Names []string
	// X holds the feature rows; every row must have the same width.
	X [][]float64
	// Y holds the regression targets, len(Y) == len(X).
	Y []float64
}

// NewDataset builds an empty dataset with the given feature names.
func NewDataset(names []string) *Dataset {
	return &Dataset{Names: append([]string(nil), names...)}
}

// Add appends one observation. It panics if the row width differs from the
// feature-name count when names are present; datasets are built by code,
// not user input, so a width mismatch is a programming error.
func (d *Dataset) Add(x []float64, y float64) {
	if len(d.Names) > 0 && len(x) != len(d.Names) {
		panic(fmt.Sprintf("ml: row width %d != %d features", len(x), len(d.Names)))
	}
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
}

// Len returns the number of observations.
func (d *Dataset) Len() int { return len(d.X) }

// Width returns the number of features (0 for an empty dataset).
func (d *Dataset) Width() int {
	if len(d.X) > 0 {
		return len(d.X[0])
	}
	return len(d.Names)
}

// Validate checks rectangularity and matching target length.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d targets", len(d.X), len(d.Y))
	}
	w := d.Width()
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has width %d, want %d", i, len(row), w)
		}
	}
	return nil
}

// Subset returns a view-copy of the selected row indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Names: d.Names, X: make([][]float64, 0, len(idx)), Y: make([]float64, 0, len(idx))}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// Split partitions the dataset into train and test parts. frac is the
// training share (the paper uses 66%/34%); rows are shuffled with the given
// stream, or kept in order when stream is nil.
func (d *Dataset) Split(frac float64, stream *rng.Stream) (train, test *Dataset) {
	n := d.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if stream != nil {
		stream.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	cut := int(frac * float64(n))
	if cut < 0 {
		cut = 0
	}
	if cut > n {
		cut = n
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// YRange returns the min and max target values, the "Data Range" column of
// Table I.
func (d *Dataset) YRange() (lo, hi float64) {
	if len(d.Y) == 0 {
		return 0, 0
	}
	lo, hi = d.Y[0], d.Y[0]
	for _, y := range d.Y[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}

// Standardizer z-scores features using statistics frozen at fit time, so
// train and test data share one transformation.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-column means and standard deviations.
// Constant columns get Std 1 so they map to zero rather than exploding.
func FitStandardizer(d *Dataset) *Standardizer {
	w := d.Width()
	s := &Standardizer{Mean: make([]float64, w), Std: make([]float64, w)}
	n := float64(d.Len())
	if n == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for _, row := range d.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply transforms one row into z-scores (allocates a new slice).
func (s *Standardizer) Apply(x []float64) []float64 {
	return s.ApplyInto(nil, x)
}

// ApplyInto transforms one row into z-scores, reusing dst's capacity; it
// returns the (possibly grown) destination. dst may be nil.
func (s *Standardizer) ApplyInto(dst, x []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return dst
}

// ApplyDataset transforms a whole dataset.
func (s *Standardizer) ApplyDataset(d *Dataset) *Dataset {
	out := &Dataset{Names: d.Names, X: make([][]float64, d.Len()), Y: append([]float64(nil), d.Y...)}
	for i, row := range d.X {
		out.X[i] = s.Apply(row)
	}
	return out
}

// Regressor is anything that maps a feature row to a numeric prediction.
type Regressor interface {
	Predict(x []float64) float64
}
