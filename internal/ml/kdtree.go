package ml

import (
	"sort"
)

// kdTree is a static k-d tree over standardized feature rows, used to
// accelerate k-NN queries. Points are referenced by index into the owning
// KNN's row storage so the tree adds only O(n) memory.
type kdTree struct {
	points [][]float64
	nodes  []kdNode
	root   int
}

type kdNode struct {
	point       int // index into points
	axis        int
	left, right int // node indices, -1 for none
}

// buildKDTree constructs the tree by recursive median split on the axis of
// greatest spread.
func buildKDTree(points [][]float64, n int) *kdTree {
	t := &kdTree{points: points, nodes: make([]kdNode, 0, n)}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx)
	return t
}

func (t *kdTree) build(idx []int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := t.widestAxis(idx)
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	// Move mid left past duplicates so the invariant "left subtree <= node"
	// holds strictly for the chosen pivot value.
	for mid > 0 && t.points[idx[mid-1]][axis] == t.points[idx[mid]][axis] {
		mid--
	}
	node := kdNode{point: idx[mid], axis: axis, left: -1, right: -1}
	t.nodes = append(t.nodes, node)
	id := len(t.nodes) - 1
	left := append([]int(nil), idx[:mid]...)
	right := append([]int(nil), idx[mid+1:]...)
	l := t.build(left)
	r := t.build(right)
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

func (t *kdTree) widestAxis(idx []int) int {
	if len(idx) == 0 || len(t.points[idx[0]]) == 0 {
		return 0
	}
	dims := len(t.points[idx[0]])
	best, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := t.points[idx[0]][d], t.points[idx[0]][d]
		for _, i := range idx[1:] {
			v := t.points[i][d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread = spread
			best = d
		}
	}
	return best
}

// search collects the k nearest stored points to q into the caller's heap
// (callers drain it with sortedInto for ascending-distance order).
func (t *kdTree) search(q []float64, k int, h *neighborHeap) {
	t.searchNode(t.root, q, k, h)
}

// sqDistWithin is sqDist with an early exit once the partial sum reaches
// bound. Partial sums only grow, so a rejected point is exactly a point
// whose full distance would fail the d2 < bound test, and an accepted
// point's distance is the same sum in the same order — selection and
// values are bit-identical to the full computation.
func sqDistWithin(a, b []float64, bound float64) (float64, bool) {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
		if s >= bound {
			return 0, false
		}
	}
	return s, true
}

func (t *kdTree) searchNode(id int, q []float64, k int, h *neighborHeap) {
	if id < 0 {
		return
	}
	node := t.nodes[id]
	p := t.points[node.point]
	if h.Len() < k {
		h.push(neighbor{node.point, sqDist(q, p)})
	} else if d2, within := sqDistWithin(q, p, (*h)[0].d2); within {
		(*h)[0] = neighbor{node.point, d2}
		h.fixRoot()
	}
	diff := q[node.axis] - p[node.axis]
	near, far := node.left, node.right
	if diff > 0 {
		near, far = node.right, node.left
	}
	t.searchNode(near, q, k, h)
	// Visit the far side only if the splitting plane could hide a closer
	// point than the current k-th best.
	if h.Len() < k || diff*diff < (*h)[0].d2 {
		t.searchNode(far, q, k, h)
	}
}
