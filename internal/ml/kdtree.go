package ml

import (
	"sort"
)

// kdTree is a static k-d index over standardized feature rows, used to
// accelerate k-NN queries. The layout is flat and leaf-bucketed: node
// metadata lives in dense parallel slices (no per-node heap objects), the
// two children of an interior node are adjacent records (left = first,
// right = first+1), and the points themselves are copied into one
// contiguous backing array in tree order, so a leaf scan is a tight loop
// over adjacent memory. Interior nodes hold no points — they only split —
// which is what lets the scan stay branch-light.
//
// The k-nearest set it returns is identical to the classic
// one-point-per-node tree's (and to brute force) up to exact distance
// ties: pruning uses the strict d2 < bound test matching the heap's
// strict acceptance, so a skipped subtree can only hold points that would
// have been rejected anyway.
type kdTree struct {
	// Per-node columns, index-parallel. count[id] > 0 marks a leaf.
	axis   []int32   // interior: split axis
	thresh []float64 // interior: split value (left side strictly below)
	first  []int32   // interior: left child id; leaf: first point slot
	count  []int32   // leaf: points in the bucket; 0 for interior

	// Point storage in tree order.
	coords []float64 // slot-major rows: coords[slot*dims : (slot+1)*dims]
	ptIdx  []int32   // slot -> index into the owner's row storage
	dims   int
}

// kdLeafSize is the bucket capacity: big enough that the contiguous scan
// amortises the descent, small enough that pruning still skips most data.
const kdLeafSize = 16

// buildKDTree constructs the tree by recursive median split on the axis
// of greatest spread, bucketing points into leaves of up to kdLeafSize.
func buildKDTree(points [][]float64, n int) *kdTree {
	t := &kdTree{}
	if n == 0 {
		return t
	}
	t.dims = len(points[0])
	t.coords = make([]float64, 0, n*t.dims)
	t.ptIdx = make([]int32, 0, n)
	b := kdBuilder{t: t, points: points}
	b.sorter.points = points
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	b.alloc(1)
	b.fill(0, idx)
	return t
}

// kdBuilder carries the construction state; the sorter is reused across
// splits so sorting never allocates a fresh closure per node.
type kdBuilder struct {
	t      *kdTree
	points [][]float64
	sorter kdAxisSorter
}

// alloc appends n zeroed node records and returns the id of the first.
func (b *kdBuilder) alloc(n int) int32 {
	t := b.t
	id := int32(len(t.first))
	for i := 0; i < n; i++ {
		t.axis = append(t.axis, 0)
		t.thresh = append(t.thresh, 0)
		t.first = append(t.first, 0)
		t.count = append(t.count, 0)
	}
	return id
}

// fill turns the already-allocated record id into a leaf or a split over
// the given points.
func (b *kdBuilder) fill(id int32, idx []int) {
	if len(idx) <= kdLeafSize {
		b.leaf(id, idx)
		return
	}
	axis := b.widestAxis(idx)
	b.sorter.idx, b.sorter.axis = idx, axis
	sort.Stable(&b.sorter)
	mid := len(idx) / 2
	// Move mid left past duplicates so the split value strictly bounds the
	// left side: every left point is < thresh, every right point >= thresh,
	// which is what the pruning bound relies on.
	for mid > 0 && b.points[idx[mid-1]][axis] == b.points[idx[mid]][axis] {
		mid--
	}
	if mid == 0 {
		// The whole lower half repeats one value (common for sparse
		// features like a mostly-zero queue column): split above the run
		// instead, at the first strictly larger value.
		mid = len(idx) / 2
		for mid < len(idx) && b.points[idx[mid]][axis] == b.points[idx[mid-1]][axis] {
			mid++
		}
		if mid == len(idx) {
			// Constant on the widest axis — all axes constant, so the
			// points are identical. Bucket the lot.
			b.leaf(id, idx)
			return
		}
	}
	left := b.alloc(2) // children adjacent: right child is left+1
	t := b.t
	t.axis[id] = int32(axis)
	t.thresh[id] = b.points[idx[mid]][axis]
	t.first[id] = left
	t.count[id] = 0
	b.fill(left, idx[:mid])
	b.fill(left+1, idx[mid:])
}

// leaf copies the bucket's points into the contiguous backing array.
func (b *kdBuilder) leaf(id int32, idx []int) {
	t := b.t
	t.first[id] = int32(len(t.ptIdx))
	t.count[id] = int32(len(idx))
	for _, p := range idx {
		t.ptIdx = append(t.ptIdx, int32(p))
		t.coords = append(t.coords, b.points[p]...)
	}
}

func (b *kdBuilder) widestAxis(idx []int) int {
	if len(idx) == 0 || len(b.points[idx[0]]) == 0 {
		return 0
	}
	dims := len(b.points[idx[0]])
	best, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := b.points[idx[0]][d], b.points[idx[0]][d]
		for _, i := range idx[1:] {
			v := b.points[i][d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread = spread
			best = d
		}
	}
	return best
}

// kdAxisSorter stable-sorts point indices by one coordinate without the
// per-split closure allocation of sort.Slice.
type kdAxisSorter struct {
	idx    []int
	points [][]float64
	axis   int
}

func (s *kdAxisSorter) Len() int { return len(s.idx) }
func (s *kdAxisSorter) Less(a, b int) bool {
	return s.points[s.idx[a]][s.axis] < s.points[s.idx[b]][s.axis]
}
func (s *kdAxisSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// search collects the k nearest stored points to q into the caller's heap
// (callers drain it with sortedInto for ascending-distance order).
func (t *kdTree) search(q []float64, k int, h *neighborHeap) {
	if len(t.first) == 0 {
		return
	}
	t.searchNode(0, q, k, h)
}

// sqDistWithin is sqDist with an early exit once the partial sum reaches
// bound. Partial sums only grow, so a rejected point is exactly a point
// whose full distance would fail the d2 < bound test, and an accepted
// point's distance is the same sum in the same order — selection and
// values are bit-identical to the full computation.
func sqDistWithin(a, b []float64, bound float64) (float64, bool) {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
		if s >= bound {
			return 0, false
		}
	}
	return s, true
}

func (t *kdTree) searchNode(id int32, q []float64, k int, h *neighborHeap) {
	if c := t.count[id]; c > 0 {
		// Leaf: scan the contiguous bucket.
		slot := t.first[id]
		off := int(slot) * t.dims
		for s := int32(0); s < c; s++ {
			p := t.coords[off : off+t.dims]
			off += t.dims
			if h.Len() < k {
				h.push(neighbor{int(t.ptIdx[slot+s]), sqDist(q, p)})
			} else if d2, within := sqDistWithin(q, p, (*h)[0].d2); within {
				(*h)[0] = neighbor{int(t.ptIdx[slot+s]), d2}
				h.fixRoot()
			}
		}
		return
	}
	diff := q[t.axis[id]] - t.thresh[id]
	near := t.first[id]
	far := near + 1
	if diff > 0 {
		near, far = far, near
	}
	t.searchNode(near, q, k, h)
	// Visit the far side only if the splitting plane could hide a closer
	// point than the current k-th best.
	if h.Len() < k || diff*diff < (*h)[0].d2 {
		t.searchNode(far, q, k, h)
	}
}
