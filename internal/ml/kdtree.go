package ml

import (
	"sort"
)

// kdTree is a static k-d index over standardized feature rows, used to
// accelerate k-NN queries. The layout is flat and leaf-bucketed: node
// metadata lives in dense parallel slices (no per-node heap objects), the
// two children of an interior node are adjacent records (left = first,
// right = first+1), and the points themselves are copied into one
// contiguous backing array in tree order, so a leaf scan is a tight loop
// over adjacent memory. Interior nodes hold no points — they only split —
// which is what lets the scan stay branch-light.
//
// The k-nearest set it returns is identical to the classic
// one-point-per-node tree's (and to brute force) up to exact distance
// ties: pruning uses the strict d2 < bound test matching the heap's
// strict acceptance, so a skipped subtree can only hold points that would
// have been rejected anyway.
type kdTree struct {
	// Per-node columns, index-parallel. count[id] > 0 marks a leaf.
	axis   []int32   // interior: split axis
	thresh []float64 // interior: split value (left side strictly below)
	first  []int32   // interior: left child id; leaf: first point slot
	count  []int32   // leaf: points in the bucket; 0 for interior

	// Point storage in tree order.
	coords []float64 // slot-major rows: coords[slot*dims : (slot+1)*dims]
	ptIdx  []int32   // slot -> index into the owner's row storage
	dims   int
}

// kdLeafSize is the bucket capacity: big enough that the contiguous scan
// amortises the descent, small enough that pruning still skips most data.
const kdLeafSize = 16

// buildKDTree constructs the tree by recursive median split on the axis
// of greatest spread, bucketing points into leaves of up to kdLeafSize.
func buildKDTree(points [][]float64, n int) *kdTree {
	t := &kdTree{}
	if n == 0 {
		return t
	}
	t.dims = len(points[0])
	t.coords = make([]float64, 0, n*t.dims)
	t.ptIdx = make([]int32, 0, n)
	b := kdBuilder{t: t, points: points}
	b.sorter.points = points
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	b.alloc(1)
	b.fill(0, idx)
	return t
}

// kdBuilder carries the construction state; the sorter is reused across
// splits so sorting never allocates a fresh closure per node.
type kdBuilder struct {
	t      *kdTree
	points [][]float64
	sorter kdAxisSorter
}

// alloc appends n zeroed node records and returns the id of the first.
func (b *kdBuilder) alloc(n int) int32 {
	t := b.t
	id := int32(len(t.first))
	for i := 0; i < n; i++ {
		t.axis = append(t.axis, 0)
		t.thresh = append(t.thresh, 0)
		t.first = append(t.first, 0)
		t.count = append(t.count, 0)
	}
	return id
}

// fill turns the already-allocated record id into a leaf or a split over
// the given points.
func (b *kdBuilder) fill(id int32, idx []int) {
	if len(idx) <= kdLeafSize {
		b.leaf(id, idx)
		return
	}
	axis := b.widestAxis(idx)
	b.sorter.idx, b.sorter.axis = idx, axis
	sort.Stable(&b.sorter)
	mid := len(idx) / 2
	// Move mid left past duplicates so the split value strictly bounds the
	// left side: every left point is < thresh, every right point >= thresh,
	// which is what the pruning bound relies on.
	for mid > 0 && b.points[idx[mid-1]][axis] == b.points[idx[mid]][axis] {
		mid--
	}
	if mid == 0 {
		// The whole lower half repeats one value (common for sparse
		// features like a mostly-zero queue column): split above the run
		// instead, at the first strictly larger value.
		mid = len(idx) / 2
		for mid < len(idx) && b.points[idx[mid]][axis] == b.points[idx[mid-1]][axis] {
			mid++
		}
		if mid == len(idx) {
			// Constant on the widest axis — all axes constant, so the
			// points are identical. Bucket the lot.
			b.leaf(id, idx)
			return
		}
	}
	left := b.alloc(2) // children adjacent: right child is left+1
	t := b.t
	t.axis[id] = int32(axis)
	t.thresh[id] = b.points[idx[mid]][axis]
	t.first[id] = left
	t.count[id] = 0
	b.fill(left, idx[:mid])
	b.fill(left+1, idx[mid:])
}

// leaf copies the bucket's points into the contiguous backing array.
func (b *kdBuilder) leaf(id int32, idx []int) {
	t := b.t
	t.first[id] = int32(len(t.ptIdx))
	t.count[id] = int32(len(idx))
	for _, p := range idx {
		t.ptIdx = append(t.ptIdx, int32(p))
		t.coords = append(t.coords, b.points[p]...)
	}
}

func (b *kdBuilder) widestAxis(idx []int) int {
	if len(idx) == 0 || len(b.points[idx[0]]) == 0 {
		return 0
	}
	dims := len(b.points[idx[0]])
	best, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := b.points[idx[0]][d], b.points[idx[0]][d]
		for _, i := range idx[1:] {
			v := b.points[i][d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread = spread
			best = d
		}
	}
	return best
}

// kdAxisSorter stable-sorts point indices by one coordinate without the
// per-split closure allocation of sort.Slice.
type kdAxisSorter struct {
	idx    []int
	points [][]float64
	axis   int
}

func (s *kdAxisSorter) Len() int { return len(s.idx) }
func (s *kdAxisSorter) Less(a, b int) bool {
	return s.points[s.idx[a]][s.axis] < s.points[s.idx[b]][s.axis]
}
func (s *kdAxisSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// kdTask is one deferred far-subtree visit on the iterative search stack:
// the node to descend into and the squared distance from the query to the
// splitting plane guarding it.
type kdTask struct {
	id    int32
	diff2 float64
}

// search collects the k nearest stored points to q into the caller's heap
// (callers drain it with sortedInto for ascending-distance order). stack
// is reusable traversal scratch: it grows once to the tree depth and is
// then shared by every query of a batch, so repeated searches allocate
// nothing.
//
// The traversal is the classic near-first recursion made iterative:
// descend to the nearest leaf, pushing every far sibling with its plane
// distance, scan the leaf, then pop. The stack is LIFO, so a far entry is
// popped exactly when its near sibling's subtree has completed — the heap
// bound at pop time equals the bound the recursion would have tested after
// returning from the near call. Visit order, pruning decisions and
// therefore results are bit-identical to the recursive form.
func (t *kdTree) search(q []float64, k int, h *neighborHeap, stack *[]kdTask) {
	if len(t.first) == 0 {
		return
	}
	st := (*stack)[:0]
	id := int32(0)
	for {
		for t.count[id] == 0 {
			diff := q[t.axis[id]] - t.thresh[id]
			near := t.first[id]
			far := near + 1
			if diff > 0 {
				near, far = far, near
			}
			st = append(st, kdTask{far, diff * diff})
			id = near
		}
		t.scanLeaf(id, q, k, h)
		// Pop the next surviving far subtree. The prune test is the same
		// h.Len() < k || diff² < worst-of-k test the recursion applies.
		for {
			if len(st) == 0 {
				*stack = st
				return
			}
			e := st[len(st)-1]
			st = st[:len(st)-1]
			if h.Len() < k || e.diff2 < (*h)[0].d2 {
				id = e.id
				break
			}
		}
	}
}

// scanLeaf runs one leaf bucket through the neighbour heap. The warm-up
// phase (heap not yet holding k candidates) pays the full distance and
// pushes unconditionally; the steady phase runs the branch-minimal kernel
// against the current worst-of-k distance and replaces the heap root on
// acceptance — exactly the two cases of the recursive leaf scan, with the
// heap-fullness branch hoisted out of the per-point loop.
func (t *kdTree) scanLeaf(id int32, q []float64, k int, h *neighborHeap) {
	slot := t.first[id]
	c := t.count[id]
	off := int(slot) * t.dims
	s := int32(0)
	for ; s < c && h.Len() < k; s++ {
		h.push(neighbor{int(t.ptIdx[slot+s]), sqDist(q, t.coords[off:off+t.dims])})
		off += t.dims
	}
	for ; s < c; s++ {
		p := t.coords[off : off+t.dims]
		off += t.dims
		if d2, within := leafDistWithin(q, p, (*h)[0].d2); within {
			(*h)[0] = neighbor{int(t.ptIdx[slot+s]), d2}
			h.fixRoot()
		}
	}
}

// leafDistWithin is the leaf-scan distance kernel: squared Euclidean
// distance with the partial-distance exit hoisted from once per dimension
// to once per unrolled 4-wide block. Rejection is unchanged — partial sums
// are monotone, so "some prefix ≥ bound" and "the full sum ≥ bound" are
// the same predicate no matter how often it is tested — and accepted sums
// accumulate through a single accumulator in the same dimension order as
// sqDist, so accepted values are bit-identical too. (A multi-accumulator
// reassociation would vectorize better but change float results; the
// frozen parity oracles forbid that.)
func leafDistWithin(q, p []float64, bound float64) (float64, bool) {
	p = p[:len(q)] // bounds-check hint for the unrolled loads below
	var s float64
	i := 0
	for ; i+4 <= len(q); i += 4 {
		d0 := q[i] - p[i]
		s += d0 * d0
		d1 := q[i+1] - p[i+1]
		s += d1 * d1
		d2 := q[i+2] - p[i+2]
		s += d2 * d2
		d3 := q[i+3] - p[i+3]
		s += d3 * d3
		if s >= bound {
			return 0, false
		}
	}
	for ; i < len(q); i++ {
		d := q[i] - p[i]
		s += d * d
	}
	if s >= bound {
		return 0, false
	}
	return s, true
}

// sqDistWithin is sqDist with an early exit once the partial sum reaches
// bound. Partial sums only grow, so a rejected point is exactly a point
// whose full distance would fail the d2 < bound test, and an accepted
// point's distance is the same sum in the same order — selection and
// values are bit-identical to the full computation. leafDistWithin is the
// block-unrolled form of the same predicate; this scalar form is kept as
// the reference (the parity oracle scans with it).
func sqDistWithin(a, b []float64, bound float64) (float64, bool) {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
		if s >= bound {
			return 0, false
		}
	}
	return s, true
}
