package ml

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// allocDataset synthesises a noisy piecewise-linear regression problem big
// enough that the kd-tree and model tree take non-trivial shapes.
func allocDataset(rows int) *Dataset {
	stream := rng.New(99, 1)
	d := NewDataset([]string{"a", "b", "c"})
	for i := 0; i < rows; i++ {
		a := stream.Uniform(0, 100)
		b := stream.Uniform(-5, 5)
		c := stream.Uniform(0, 1)
		y := 3*a + 10*b*c + stream.Norm(0, 2)
		if a > 50 {
			y += 40 - 0.5*a
		}
		d.Add([]float64{a, b, c}, y)
	}
	return d
}

// TestInferenceZeroAlloc proves the buffered prediction paths of every
// model allocate nothing once the scratch is warm, and that they return
// exactly what the allocating API returns.
func TestInferenceZeroAlloc(t *testing.T) {
	d := allocDataset(400)
	queries := [][]float64{
		{10, 0, 0.5}, {55, -3, 0.9}, {80, 4, 0.1}, {99, 0, 0}, {33, 2, 0.7},
	}

	m5p, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	knnBrute, err := TrainKNN(d, KNNConfig{K: 4, DistanceWeight: true})
	if err != nil {
		t.Fatal(err)
	}
	knnTree, err := TrainKNN(d, KNNConfig{K: 4, DistanceWeight: true, UseKDTree: true})
	if err != nil {
		t.Fatal(err)
	}
	bagged, err := TrainBagged(d, BaggingConfig{Members: 5, Seed: 3}, func(sub *Dataset) (Regressor, error) {
		return TrainM5P(sub, DefaultM5PConfig(4))
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		predict func(x []float64, b *Buf) float64
		plain   func(x []float64) float64
	}{
		{"m5p", func(x []float64, _ *Buf) float64 { return m5p.Predict(x) }, m5p.Predict},
		{"knn-brute", knnBrute.PredictBuf, knnBrute.Predict},
		{"knn-kdtree", knnTree.PredictBuf, knnTree.Predict},
		{"bagged-m5p", bagged.PredictBuf, bagged.Predict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf Buf
			for _, q := range queries { // warm the scratch
				got := tc.predict(q, &buf)
				want := tc.plain(q)
				if got != want {
					t.Fatalf("buffered prediction %v != allocating %v for %v", got, want, q)
				}
				if math.IsNaN(got) {
					t.Fatalf("NaN prediction for %v", q)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				for _, q := range queries {
					tc.predict(q, &buf)
				}
			})
			if allocs != 0 {
				t.Fatalf("buffered inference allocates %.1f objects per round, want 0", allocs)
			}
		})
	}
}

// TestBatchPredictZeroAlloc extends the allocation gate to the batch
// query path: once the shared Buf is warm (row, heap, traversal stack),
// a whole batch through PredictBatchBuf allocates nothing.
func TestBatchPredictZeroAlloc(t *testing.T) {
	d := allocDataset(1000)
	knn, err := TrainKNN(d, DefaultKNNConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	stream := rng.New(7, 3)
	flat := make([]float64, 0, n*d.Width())
	for i := 0; i < n; i++ {
		flat = append(flat, stream.Uniform(0, 100), stream.Uniform(-5, 5), stream.Uniform(0, 1))
	}
	out := make([]float64, n)
	var buf Buf
	knn.PredictBatchBuf(flat, n, out, &buf) // warm the scratch
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN prediction")
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		knn.PredictBatchBuf(flat, n, out, &buf)
	})
	if allocs != 0 {
		t.Fatalf("batch inference allocates %.1f objects per batch, want 0", allocs)
	}
}

// TestKNNTreeMatchesBruteBuffered re-checks the kd-tree/brute equivalence
// through the buffered path specifically.
func TestKNNTreeMatchesBruteBuffered(t *testing.T) {
	d := allocDataset(300)
	brute, err := TrainKNN(d, KNNConfig{K: 4, DistanceWeight: true})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TrainKNN(d, KNNConfig{K: 4, DistanceWeight: true, UseKDTree: true})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 Buf
	stream := rng.New(5, 2)
	for i := 0; i < 200; i++ {
		q := []float64{stream.Uniform(0, 100), stream.Uniform(-5, 5), stream.Uniform(0, 1)}
		pb := brute.PredictBuf(q, &b1)
		pt := tree.PredictBuf(q, &b2)
		if math.Abs(pb-pt) > 1e-9 {
			t.Fatalf("tree %v != brute %v at %v", pt, pb, q)
		}
	}
}
