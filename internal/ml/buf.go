package ml

// Buf is reusable inference scratch: the standardized-query row, the
// neighbour buffers and the kd-traversal stack a k-NN query needs. Passing
// one Buf through repeated predictions makes inference allocation-free
// after the first call. The zero value is ready to use. A Buf must not be
// shared between goroutines.
type Buf struct {
	row    []float64
	heap   neighborHeap
	sorted []neighbor
	stack  []kdTask
}

// BufferedRegressor is a Regressor with an allocation-free prediction path
// over caller-provided scratch. PredictBuf must return exactly the value
// Predict returns for the same row.
type BufferedRegressor interface {
	Regressor
	PredictBuf(x []float64, b *Buf) float64
}

// BatchRegressor is a BufferedRegressor that answers many queries in one
// call over shared scratch. xs holds n feature rows row-major
// (len(xs) == n*dims); out receives one prediction per row. The batch
// path must be bit-identical to calling PredictBuf row by row — batching
// amortizes scratch setup and keeps the index hot, it never reorders the
// per-query arithmetic.
type BatchRegressor interface {
	BufferedRegressor
	PredictBatchBuf(xs []float64, n int, out []float64, b *Buf)
}

// PredictBuffered routes through the zero-alloc path when the regressor has
// one and falls back to the plain (possibly allocating) Predict otherwise.
func PredictBuffered(r Regressor, x []float64, b *Buf) float64 {
	if br, ok := r.(BufferedRegressor); ok {
		return br.PredictBuf(x, b)
	}
	return r.Predict(x)
}

// PredictBatchBuffered routes a row-major batch through the regressor's
// batch path when it has one and otherwise falls back to row-by-row
// buffered predictions — the results are identical either way.
func PredictBatchBuffered(r Regressor, xs []float64, n int, out []float64, b *Buf) {
	if n <= 0 {
		return
	}
	if br, ok := r.(BatchRegressor); ok {
		br.PredictBatchBuf(xs, n, out, b)
		return
	}
	d := len(xs) / n
	for i := 0; i < n; i++ {
		out[i] = PredictBuffered(r, xs[i*d:(i+1)*d], b)
	}
}
