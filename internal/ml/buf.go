package ml

// Buf is reusable inference scratch: the standardized-query row and the
// neighbour buffers a k-NN query needs. Passing one Buf through repeated
// predictions makes inference allocation-free after the first call. The
// zero value is ready to use. A Buf must not be shared between goroutines.
type Buf struct {
	row    []float64
	heap   neighborHeap
	sorted []neighbor
}

// BufferedRegressor is a Regressor with an allocation-free prediction path
// over caller-provided scratch. PredictBuf must return exactly the value
// Predict returns for the same row.
type BufferedRegressor interface {
	Regressor
	PredictBuf(x []float64, b *Buf) float64
}

// PredictBuffered routes through the zero-alloc path when the regressor has
// one and falls back to the plain (possibly allocating) Predict otherwise.
func PredictBuffered(r Regressor, x []float64, b *Buf) float64 {
	if br, ok := r.(BufferedRegressor); ok {
		return br.PredictBuf(x, b)
	}
	return r.Predict(x)
}
