package ml

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/rng"
)

// Bagged is a bootstrap-aggregated ensemble of regressors: each member is
// trained on a bootstrap resample of the data and predictions average the
// members. Bagging stabilises the high-variance M5P trees on noisy
// monitored data — the robustness extension a production deployment of the
// paper's predictors would reach for first.
type Bagged struct {
	Members []Regressor
	// m5ps is the devirtualized view TrainBagged fills when every member
	// is a flat model tree: PredictBuf then calls the concrete M5P
	// directly instead of dispatching through two interfaces per member.
	// Identical element order, so predictions are bit-identical.
	m5ps []*M5P
}

// seal caches the typed member view when the ensemble is homogeneous.
func (b *Bagged) seal() {
	b.m5ps = nil
	typed := make([]*M5P, len(b.Members))
	for i, m := range b.Members {
		t, ok := m.(*M5P)
		if !ok {
			return
		}
		typed[i] = t
	}
	b.m5ps = typed
}

// BaggingConfig controls ensemble construction.
type BaggingConfig struct {
	// Members is the ensemble size (default 10).
	Members int
	// SampleFrac is the bootstrap size relative to the dataset (default 1.0,
	// drawn with replacement).
	SampleFrac float64
	// Workers bounds training parallelism.
	Workers int
	// Seed drives the bootstrap resampling.
	Seed uint64
}

// TrainBagged fits an ensemble using the provided base trainer.
func TrainBagged(d *Dataset, cfg BaggingConfig, train func(*Dataset) (Regressor, error)) (*Bagged, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: cannot bag an empty dataset")
	}
	if train == nil {
		return nil, fmt.Errorf("ml: bagging needs a base trainer")
	}
	if cfg.Members <= 0 {
		cfg.Members = 10
	}
	if cfg.SampleFrac <= 0 || cfg.SampleFrac > 1 {
		cfg.SampleFrac = 1
	}
	n := d.Len()
	sampleN := int(cfg.SampleFrac * float64(n))
	if sampleN < 1 {
		sampleN = 1
	}
	type result struct {
		reg Regressor
		err error
	}
	// Members train in parallel; each draws its bootstrap from its own
	// named RNG stream seeded by (Seed, member index), so the resample —
	// and therefore the trained ensemble — is bit-identical at any worker
	// count (gated by TestBaggedDeterministicAcrossWorkers).
	results := par.MapIdx(make([]struct{}, cfg.Members), cfg.Workers, func(m int, _ struct{}) result {
		stream := rng.NewNamed(cfg.Seed, fmt.Sprintf("ml/bag/%d", m))
		idx := make([]int, sampleN)
		for i := range idx {
			idx[i] = stream.IntN(n)
		}
		reg, err := train(d.Subset(idx))
		if err != nil {
			return result{err: fmt.Errorf("ml: bagging member %d: %w", m, err)}
		}
		return result{reg: reg}
	})
	out := &Bagged{Members: make([]Regressor, 0, cfg.Members)}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out.Members = append(out.Members, r.reg)
	}
	out.seal()
	return out, nil
}

// Predict averages the members' predictions.
func (b *Bagged) Predict(x []float64) float64 {
	if len(b.Members) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range b.Members {
		s += m.Predict(x)
	}
	return s / float64(len(b.Members))
}

// PredictBuf is Predict over caller-provided scratch: each member that
// supports buffered inference reuses buf, so ensemble inference is
// allocation-free when the members' paths are. Summation order matches
// Predict, so the two are bit-identical. A homogeneous model-tree
// ensemble takes the devirtualized path over the typed member view.
func (b *Bagged) PredictBuf(x []float64, buf *Buf) float64 {
	if len(b.Members) == 0 {
		return 0
	}
	s := 0.0
	if len(b.m5ps) == len(b.Members) {
		for _, m := range b.m5ps {
			s += m.Predict(x)
		}
		return s / float64(len(b.m5ps))
	}
	for _, m := range b.Members {
		s += PredictBuffered(m, x, buf)
	}
	return s / float64(len(b.Members))
}

// PredictWithSpread returns the ensemble mean and the member standard
// deviation — a cheap epistemic-uncertainty signal a decision maker can
// use to distrust off-manifold queries.
func (b *Bagged) PredictWithSpread(x []float64) (mean, spread float64) {
	if len(b.Members) == 0 {
		return 0, 0
	}
	var sum, sq float64
	for _, m := range b.Members {
		v := m.Predict(x)
		sum += v
		sq += v * v
	}
	n := float64(len(b.Members))
	mean = sum / n
	v := sq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}

var (
	_ Regressor         = (*Bagged)(nil)
	_ BufferedRegressor = (*Bagged)(nil)
)
