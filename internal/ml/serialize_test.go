package ml

import (
	"encoding/json"
	"testing"

	"repro/internal/rng"
)

func TestLinearRoundTrip(t *testing.T) {
	lm := &Linear{Intercept: 3.5, Coef: []float64{1, -2, 0.25}}
	data, err := json.Marshal(lm)
	if err != nil {
		t.Fatal(err)
	}
	var back Linear
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	if lm.Predict(x) != back.Predict(x) {
		t.Fatal("linear round-trip changed predictions")
	}
}

func TestM5PRoundTrip(t *testing.T) {
	d := piecewiseData(400, 31, 0.2)
	m, err := TrainM5P(d, DefaultM5PConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back M5P
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumLeaves() != m.NumLeaves() || back.Depth() != m.Depth() {
		t.Fatalf("tree shape changed: %d/%d leaves, %d/%d depth",
			m.NumLeaves(), back.NumLeaves(), m.Depth(), back.Depth())
	}
	s := rng.New(1, 1)
	for i := 0; i < 200; i++ {
		x := []float64{s.Uniform(-2, 12), s.Uniform(-2, 12)}
		if m.Predict(x) != back.Predict(x) {
			t.Fatalf("M5P round-trip changed prediction at %v", x)
		}
	}
}

func TestKNNRoundTrip(t *testing.T) {
	d := knnData(300, 32)
	for _, useTree := range []bool{true, false} {
		k, err := TrainKNN(d, KNNConfig{K: 4, UseKDTree: useTree, DistanceWeight: true})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back KNN
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		s := rng.New(2, 2)
		for i := 0; i < 100; i++ {
			x := []float64{s.Uniform(0, 10), s.Uniform(0, 10)}
			if k.Predict(x) != back.Predict(x) {
				t.Fatalf("k-NN round-trip changed prediction (tree=%v)", useTree)
			}
		}
	}
}

func TestKNNUnmarshalRejectsCorrupt(t *testing.T) {
	var k KNN
	if err := json.Unmarshal([]byte(`{"x":[[1]],"y":[]}`), &k); err == nil {
		t.Fatal("accepted rows/targets mismatch")
	}
	if err := json.Unmarshal([]byte(`{"x":[],"y":[]}`), &k); err == nil {
		t.Fatal("accepted empty memory")
	}
}

func TestM5PUnmarshalRejectsCorrupt(t *testing.T) {
	var m M5P
	if err := json.Unmarshal([]byte(`{"nodes":[]}`), &m); err == nil {
		t.Fatal("accepted empty tree")
	}
	bad := `{"nodes":[{"feature":0,"thresh":1,"left":5,"right":6,"lm":{"intercept":0},"n":1}]}`
	if err := json.Unmarshal([]byte(bad), &m); err == nil {
		t.Fatal("accepted dangling child indices")
	}
	noLM := `{"nodes":[{"feature":-1,"thresh":0,"left":-1,"right":-1,"n":1}]}`
	if err := json.Unmarshal([]byte(noLM), &m); err == nil {
		t.Fatal("accepted node without linear model")
	}
}

func TestRegressorEnvelope(t *testing.T) {
	d := piecewiseData(200, 33, 0.2)
	models := []Regressor{}
	lm, _ := TrainLinear(d, 0)
	models = append(models, lm)
	m5, _ := TrainM5P(d, DefaultM5PConfig(4))
	models = append(models, m5)
	knn, _ := TrainKNN(d, DefaultKNNConfig(4))
	models = append(models, knn)
	for _, m := range models {
		raw, err := MarshalRegressor(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalRegressor(raw)
		if err != nil {
			t.Fatal(err)
		}
		x := d.X[7]
		if m.Predict(x) != back.Predict(x) {
			t.Fatalf("%T envelope round-trip changed prediction", m)
		}
	}
	if _, err := UnmarshalRegressor([]byte(`{"kind":"svm","payload":{}}`)); err == nil {
		t.Fatal("accepted unknown model kind")
	}
	if _, err := MarshalRegressor(nil); err == nil {
		t.Fatal("accepted nil regressor")
	}
}
