package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestTrainLinearExactFit(t *testing.T) {
	// y = 3 + 2*x0 - 5*x1, noiseless.
	d := NewDataset([]string{"x0", "x1"})
	s := rng.New(1, 1)
	for i := 0; i < 50; i++ {
		x0, x1 := s.Uniform(-10, 10), s.Uniform(-10, 10)
		d.Add([]float64{x0, x1}, 3+2*x0-5*x1)
	}
	lm, err := TrainLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lm.Intercept-3) > 1e-8 {
		t.Fatalf("intercept = %v", lm.Intercept)
	}
	if math.Abs(lm.Coef[0]-2) > 1e-8 || math.Abs(lm.Coef[1]+5) > 1e-8 {
		t.Fatalf("coefs = %v", lm.Coef)
	}
	if got := lm.Predict([]float64{1, 1}); math.Abs(got-0) > 1e-8 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestTrainLinearNoisyRecovery(t *testing.T) {
	d := NewDataset([]string{"x"})
	s := rng.New(2, 2)
	for i := 0; i < 500; i++ {
		x := s.Uniform(0, 100)
		d.Add([]float64{x}, 10+0.5*x+s.Norm(0, 1))
	}
	lm, err := TrainLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lm.Coef[0]-0.5) > 0.02 {
		t.Fatalf("slope = %v", lm.Coef[0])
	}
	if math.Abs(lm.Intercept-10) > 1.0 {
		t.Fatalf("intercept = %v", lm.Intercept)
	}
}

func TestTrainLinearErrors(t *testing.T) {
	if _, err := TrainLinear(NewDataset(nil), 0); err == nil {
		t.Fatal("accepted empty dataset")
	}
	d := NewDataset([]string{"x"})
	d.Add([]float64{1}, 1)
	if _, err := TrainLinear(d, -1); err == nil {
		t.Fatal("accepted negative lambda")
	}
	bad := &Dataset{X: [][]float64{{1}, {1, 2}}, Y: []float64{1, 2}}
	if _, err := TrainLinear(bad, 0); err == nil {
		t.Fatal("accepted ragged rows")
	}
}

func TestTrainLinearUnderdetermined(t *testing.T) {
	// 2 rows, 3 features: auto-ridge must still give a finite solution.
	d := NewDataset([]string{"a", "b", "c"})
	d.Add([]float64{1, 2, 3}, 1)
	d.Add([]float64{4, 5, 6}, 2)
	lm, err := TrainLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range lm.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("non-finite coef: %v", lm.Coef)
		}
	}
}

func TestTrainLinearCollinearColumns(t *testing.T) {
	// x1 = 2*x0 exactly; ridge keeps the solve stable.
	d := NewDataset([]string{"x0", "x1"})
	s := rng.New(3, 3)
	for i := 0; i < 60; i++ {
		x := s.Uniform(0, 10)
		d.Add([]float64{x, 2 * x}, 7*x+1)
	}
	lm, err := TrainLinear(d, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Individual coefficients are not identified, but predictions must be.
	for i := 0; i < 10; i++ {
		x := s.Uniform(0, 10)
		if got := lm.Predict([]float64{x, 2 * x}); math.Abs(got-(7*x+1)) > 1e-3 {
			t.Fatalf("prediction off on collinear data: %v vs %v", got, 7*x+1)
		}
	}
}

func TestTrainLinearConstantColumn(t *testing.T) {
	d := NewDataset([]string{"x", "const"})
	s := rng.New(4, 4)
	for i := 0; i < 40; i++ {
		x := s.Uniform(-5, 5)
		d.Add([]float64{x, 3}, 2*x)
	}
	lm, err := TrainLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := lm.Predict([]float64{1, 3}); math.Abs(got-2) > 1e-6 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	d := NewDataset([]string{"x"})
	s := rng.New(5, 5)
	for i := 0; i < 100; i++ {
		x := s.Uniform(-1, 1)
		d.Add([]float64{x}, 4*x)
	}
	ols, _ := TrainLinear(d, 0)
	ridge, _ := TrainLinear(d, 100)
	if math.Abs(ridge.Coef[0]) >= math.Abs(ols.Coef[0]) {
		t.Fatalf("ridge did not shrink: %v vs %v", ridge.Coef[0], ols.Coef[0])
	}
}

func TestLinearPredictShortRow(t *testing.T) {
	lm := &Linear{Intercept: 1, Coef: []float64{2, 3}}
	if got := lm.Predict([]float64{10}); got != 21 {
		t.Fatalf("short-row Predict = %v", got)
	}
}

func TestMeanModel(t *testing.T) {
	m := meanModel([]float64{2, 4, 6})
	if m.Intercept != 4 || len(m.Coef) != 0 {
		t.Fatalf("meanModel = %+v", m)
	}
	if meanModel(nil).Intercept != 0 {
		t.Fatal("empty meanModel should predict 0")
	}
}

func TestLinearRecoversRandomPlanesProperty(t *testing.T) {
	f := func(seed uint64, rawA, rawB, rawC float64) bool {
		a := math.Mod(rawA, 50)
		b := math.Mod(rawB, 50)
		c := math.Mod(rawC, 50)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		s := rng.New(seed, 99)
		d := NewDataset([]string{"x0", "x1"})
		for i := 0; i < 30; i++ {
			x0, x1 := s.Uniform(-3, 3), s.Uniform(-3, 3)
			d.Add([]float64{x0, x1}, c+a*x0+b*x1)
		}
		lm, err := TrainLinear(d, 0)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			x0, x1 := s.Uniform(-3, 3), s.Uniform(-3, 3)
			want := c + a*x0 + b*x1
			if math.Abs(lm.Predict([]float64{x0, x1})-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNumParams(t *testing.T) {
	lm := &Linear{Intercept: 0, Coef: make([]float64, 3)}
	if lm.NumParams() != 4 {
		t.Fatalf("NumParams = %d", lm.NumParams())
	}
}
