package ml

import (
	"container/heap"
	"fmt"
	"math"
)

// KNNConfig exposes the hyper-parameters of the k-NN regressor.
type KNNConfig struct {
	// K is the neighbour count; the paper's SLA predictor uses K=4.
	K int
	// DistanceWeight blends neighbours by 1/(d+eps) instead of uniformly.
	DistanceWeight bool
	// UseKDTree selects the kd-tree index instead of the brute-force scan.
	// Both return identical predictions; the tree is faster past a few
	// thousand training rows.
	UseKDTree bool
}

// DefaultKNNConfig mirrors the paper's WEKA IBk setup with the given K,
// with inverse-distance weighting (IBk's -I option): "comparing the
// current situation with those seen before and choosing the most similar
// one(s)" — similarity-weighted, so near-identical precedents dominate.
func DefaultKNNConfig(k int) KNNConfig {
	return KNNConfig{K: k, UseKDTree: true, DistanceWeight: true}
}

// KNN is a fitted k-nearest-neighbours regressor over z-scored features.
type KNN struct {
	cfg  KNNConfig
	std  *Standardizer
	x    [][]float64 // standardized training rows
	y    []float64
	tree *kdTree
}

// TrainKNN memorises the (standardized) training data.
func TrainKNN(d *Dataset, cfg KNNConfig) (*KNN, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: cannot fit k-NN on empty dataset")
	}
	if cfg.K < 1 {
		cfg.K = 4
	}
	if cfg.K > d.Len() {
		cfg.K = d.Len()
	}
	std := FitStandardizer(d)
	k := &KNN{cfg: cfg, std: std, y: append([]float64(nil), d.Y...)}
	k.x = make([][]float64, d.Len())
	for i, row := range d.X {
		k.x[i] = std.Apply(row)
	}
	if cfg.UseKDTree {
		k.tree = buildKDTree(k.x, d.Len())
	}
	return k, nil
}

// K returns the effective neighbour count.
func (k *KNN) K() int { return k.cfg.K }

// Predict averages the targets of the K nearest training rows.
func (k *KNN) Predict(x []float64) float64 {
	q := k.std.Apply(x)
	var nb []neighbor
	if k.tree != nil {
		nb = k.tree.search(q, k.cfg.K)
	} else {
		nb = k.bruteSearch(q)
	}
	return k.blend(nb)
}

// Neighbors exposes the raw nearest neighbours (index, squared distance)
// for diagnostics and tests.
func (k *KNN) Neighbors(x []float64) []neighborInfo {
	q := k.std.Apply(x)
	var nb []neighbor
	if k.tree != nil {
		nb = k.tree.search(q, k.cfg.K)
	} else {
		nb = k.bruteSearch(q)
	}
	out := make([]neighborInfo, len(nb))
	for i, n := range nb {
		out[i] = neighborInfo{Index: n.idx, Dist2: n.d2, Y: k.y[n.idx]}
	}
	return out
}

type neighborInfo struct {
	Index int
	Dist2 float64
	Y     float64
}

type neighbor struct {
	idx int
	d2  float64
}

func (k *KNN) bruteSearch(q []float64) []neighbor {
	h := &neighborHeap{}
	for i, row := range k.x {
		d2 := sqDist(q, row)
		if h.Len() < k.cfg.K {
			heap.Push(h, neighbor{i, d2})
		} else if d2 < (*h)[0].d2 {
			(*h)[0] = neighbor{i, d2}
			heap.Fix(h, 0)
		}
	}
	return h.sorted()
}

func (k *KNN) blend(nb []neighbor) float64 {
	if len(nb) == 0 {
		return 0
	}
	if !k.cfg.DistanceWeight {
		s := 0.0
		for _, n := range nb {
			s += k.y[n.idx]
		}
		return s / float64(len(nb))
	}
	const eps = 1e-9
	var num, den float64
	for _, n := range nb {
		w := 1 / (math.Sqrt(n.d2) + eps)
		num += w * k.y[n.idx]
		den += w
	}
	return num / den
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// neighborHeap is a max-heap on distance so the worst of the current K
// candidates sits at the root for O(1) comparisons.
type neighborHeap []neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].d2 > h[j].d2 }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(v interface{}) { *h = append(*h, v.(neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// sorted drains the heap into ascending-distance order.
func (h *neighborHeap) sorted() []neighbor {
	out := make([]neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(neighbor)
	}
	return out
}

var _ Regressor = (*KNN)(nil)
