package ml

import (
	"fmt"
	"math"
)

// KNNConfig exposes the hyper-parameters of the k-NN regressor.
type KNNConfig struct {
	// K is the neighbour count; the paper's SLA predictor uses K=4.
	K int
	// DistanceWeight blends neighbours by 1/(d+eps) instead of uniformly.
	DistanceWeight bool
	// UseKDTree selects the kd-tree index instead of the brute-force scan.
	// Both return identical predictions; the tree is faster past a few
	// thousand training rows.
	UseKDTree bool
}

// DefaultKNNConfig mirrors the paper's WEKA IBk setup with the given K,
// with inverse-distance weighting (IBk's -I option): "comparing the
// current situation with those seen before and choosing the most similar
// one(s)" — similarity-weighted, so near-identical precedents dominate.
func DefaultKNNConfig(k int) KNNConfig {
	return KNNConfig{K: k, UseKDTree: true, DistanceWeight: true}
}

// KNN is a fitted k-nearest-neighbours regressor over z-scored features.
type KNN struct {
	cfg  KNNConfig
	std  *Standardizer
	x    [][]float64 // standardized training rows
	y    []float64
	tree *kdTree
}

// TrainKNN memorises the (standardized) training data.
func TrainKNN(d *Dataset, cfg KNNConfig) (*KNN, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: cannot fit k-NN on empty dataset")
	}
	if cfg.K < 1 {
		cfg.K = 4
	}
	if cfg.K > d.Len() {
		cfg.K = d.Len()
	}
	std := FitStandardizer(d)
	k := &KNN{cfg: cfg, std: std, y: append([]float64(nil), d.Y...)}
	k.x = make([][]float64, d.Len())
	for i, row := range d.X {
		k.x[i] = std.Apply(row)
	}
	if cfg.UseKDTree {
		k.tree = buildKDTree(k.x, d.Len())
	}
	return k, nil
}

// K returns the effective neighbour count.
func (k *KNN) K() int { return k.cfg.K }

// Predict averages the targets of the K nearest training rows.
func (k *KNN) Predict(x []float64) float64 {
	var b Buf
	return k.PredictBuf(x, &b)
}

// PredictBuf is Predict over caller-provided scratch: allocation-free once
// the Buf has warmed up, bit-identical to Predict.
func (k *KNN) PredictBuf(x []float64, b *Buf) float64 {
	b.row = k.std.ApplyInto(b.row, x)
	b.heap = b.heap[:0]
	if k.tree != nil {
		k.tree.search(b.row, k.cfg.K, &b.heap, &b.stack)
	} else {
		k.bruteSearch(b.row, &b.heap)
	}
	b.sorted = b.heap.sortedInto(b.sorted[:0])
	return k.blend(b.sorted)
}

// PredictBatch predicts every row of xs. Results are bit-identical to
// calling Predict per row; see PredictBatchBuf for the allocation-free
// form the schedulers use.
func (k *KNN) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	var b Buf
	for i, x := range xs {
		out[i] = k.PredictBuf(x, &b)
	}
	return out
}

// PredictBatchBuf predicts n feature rows stored row-major in xs
// (len(xs) == n * feature-dims) into out[:n]. Every per-row result is
// bit-identical to PredictBuf on that row: the batch shares one
// standardized-row buffer, one neighbour heap and one traversal stack
// across all queries — a table fill pays the scratch setup once instead
// of per query — but each query's descent, leaf scans and blend run in
// exactly the per-query order. (A fused multi-query descent would reorder
// leaf visits between queries and break bit-identity under exact distance
// ties, which duplicate-heavy feature columns make common.)
func (k *KNN) PredictBatchBuf(xs []float64, n int, out []float64, b *Buf) {
	if n <= 0 {
		return
	}
	d := len(xs) / n
	for i := 0; i < n; i++ {
		out[i] = k.PredictBuf(xs[i*d:(i+1)*d], b)
	}
}

// Neighbors exposes the raw nearest neighbours (index, squared distance)
// for diagnostics and tests.
func (k *KNN) Neighbors(x []float64) []neighborInfo {
	q := k.std.Apply(x)
	var h neighborHeap
	var stack []kdTask
	if k.tree != nil {
		k.tree.search(q, k.cfg.K, &h, &stack)
	} else {
		k.bruteSearch(q, &h)
	}
	nb := h.sortedInto(nil)
	out := make([]neighborInfo, len(nb))
	for i, n := range nb {
		out[i] = neighborInfo{Index: n.idx, Dist2: n.d2, Y: k.y[n.idx]}
	}
	return out
}

type neighborInfo struct {
	Index int
	Dist2 float64
	Y     float64
}

type neighbor struct {
	idx int
	d2  float64
}

func (k *KNN) bruteSearch(q []float64, h *neighborHeap) {
	for i, row := range k.x {
		d2 := sqDist(q, row)
		if h.Len() < k.cfg.K {
			h.push(neighbor{i, d2})
		} else if d2 < (*h)[0].d2 {
			(*h)[0] = neighbor{i, d2}
			h.fixRoot()
		}
	}
}

// blend combines neighbours in ascending-distance order; keeping the
// summation order fixed keeps predictions bit-identical across the
// allocating and buffered query paths.
func (k *KNN) blend(nb []neighbor) float64 {
	if len(nb) == 0 {
		return 0
	}
	if !k.cfg.DistanceWeight {
		s := 0.0
		for _, n := range nb {
			s += k.y[n.idx]
		}
		return s / float64(len(nb))
	}
	const eps = 1e-9
	var num, den float64
	for _, n := range nb {
		w := 1 / (math.Sqrt(n.d2) + eps)
		num += w * k.y[n.idx]
		den += w
	}
	return num / den
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// neighborHeap is a max-heap on distance so the worst of the current K
// candidates sits at the root for O(1) comparisons. The sift primitives
// replicate container/heap's algorithm exactly (same swap sequences, hence
// the same arrangement under distance ties) without the interface boxing
// that made every Push/Pop allocate.
type neighborHeap []neighbor

func (h neighborHeap) Len() int           { return len(h) }
func (h neighborHeap) less(i, j int) bool { return h[i].d2 > h[j].d2 }

// push appends v and restores the heap property (container/heap.Push).
func (h *neighborHeap) push(v neighbor) {
	*h = append(*h, v)
	h.up(len(*h) - 1)
}

// fixRoot re-establishes the heap property after the root was replaced
// (container/heap.Fix(h, 0): down only, since up(0) is a no-op).
func (h *neighborHeap) fixRoot() { h.down(0, len(*h)) }

// popMax removes and returns the root (container/heap.Pop).
func (h *neighborHeap) popMax() neighbor {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	v := old[n]
	*h = old[:n]
	return v
}

func (h neighborHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h neighborHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// sortedInto drains the heap into dst in ascending-distance order.
func (h *neighborHeap) sortedInto(dst []neighbor) []neighbor {
	n := h.Len()
	if cap(dst) < n {
		dst = make([]neighbor, n)
	}
	dst = dst[:n]
	for i := n - 1; i >= 0; i-- {
		dst[i] = h.popMax()
	}
	return dst
}

var (
	_ Regressor         = (*KNN)(nil)
	_ BufferedRegressor = (*KNN)(nil)
	_ BatchRegressor    = (*KNN)(nil)
)
