package ml

import (
	"encoding/json"
	"fmt"
)

// Serialization: trained models round-trip through JSON so a production
// deployment can train offline (cmd/mdctrain) and load the models into the
// decision maker without retraining. Every codec preserves predictions
// bit-for-bit.

// linearDTO is the wire form of a Linear model.
type linearDTO struct {
	Intercept float64   `json:"intercept"`
	Coef      []float64 `json:"coef"`
}

// MarshalJSON implements json.Marshaler.
func (l *Linear) MarshalJSON() ([]byte, error) {
	return json.Marshal(linearDTO{Intercept: l.Intercept, Coef: l.Coef})
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *Linear) UnmarshalJSON(b []byte) error {
	var dto linearDTO
	if err := json.Unmarshal(b, &dto); err != nil {
		return err
	}
	l.Intercept = dto.Intercept
	l.Coef = dto.Coef
	return nil
}

// m5pNodeDTO flattens the tree with indices instead of pointers.
type m5pNodeDTO struct {
	Feature int        `json:"feature"`
	Thresh  float64    `json:"thresh"`
	Left    int        `json:"left"`  // -1 for leaf
	Right   int        `json:"right"` // -1 for leaf
	LM      *linearDTO `json:"lm"`
	N       int        `json:"n"`
}

type m5pDTO struct {
	Config M5PConfig    `json:"config"`
	YLo    float64      `json:"yLo"`
	YHi    float64      `json:"yHi"`
	Nodes  []m5pNodeDTO `json:"nodes"` // pre-order, root first
}

// MarshalJSON implements json.Marshaler for model trees. The wire form is
// preorder with explicit child indices, unchanged from the pointer-tree
// era, so serialized models round-trip across layouts.
func (m *M5P) MarshalJSON() ([]byte, error) {
	dto := m5pDTO{Config: m.cfg, YLo: m.yLo, YHi: m.yHi}
	var flatten func(id int32) int
	flatten = func(id int32) int {
		idx := len(dto.Nodes)
		var coef []float64
		if m.coefLen[id] > 0 {
			coef = append(coef, m.coefs[m.coefOff[id]:m.coefOff[id]+m.coefLen[id]]...)
		}
		dto.Nodes = append(dto.Nodes, m5pNodeDTO{
			Feature: int(m.feature[id]), Thresh: m.thresh[id], Left: -1, Right: -1,
			LM: &linearDTO{Intercept: m.intercept[id], Coef: coef},
			N:  int(m.n[id]),
		})
		if m.feature[id] >= 0 {
			l := flatten(m.left[id])
			r := flatten(m.left[id] + 1)
			dto.Nodes[idx].Left = l
			dto.Nodes[idx].Right = r
		}
		return idx
	}
	if len(m.feature) > 0 {
		flatten(0)
	}
	return json.Marshal(dto)
}

// UnmarshalJSON implements json.Unmarshaler for model trees: it rebuilds
// the pointer tree from the wire form, then compiles it into the flat
// inference layout exactly as TrainM5P does.
func (m *M5P) UnmarshalJSON(b []byte) error {
	var dto m5pDTO
	if err := json.Unmarshal(b, &dto); err != nil {
		return err
	}
	if len(dto.Nodes) == 0 {
		return fmt.Errorf("ml: M5P payload has no nodes")
	}
	nodes := make([]*m5pNode, len(dto.Nodes))
	for i, nd := range dto.Nodes {
		if nd.LM == nil {
			return fmt.Errorf("ml: M5P node %d missing linear model", i)
		}
		nodes[i] = &m5pNode{
			feature: nd.Feature, thresh: nd.Thresh, n: nd.N,
			lm: &Linear{Intercept: nd.LM.Intercept, Coef: nd.LM.Coef},
		}
	}
	for i, nd := range dto.Nodes {
		if nd.Left >= 0 {
			if nd.Left >= len(nodes) || nd.Right < 0 || nd.Right >= len(nodes) {
				return fmt.Errorf("ml: M5P node %d has invalid children", i)
			}
			nodes[i].left = nodes[nd.Left]
			nodes[i].right = nodes[nd.Right]
		} else {
			nodes[i].feature = -1
		}
	}
	m.cfg = dto.Config
	m.yLo, m.yHi = dto.YLo, dto.YHi
	m.compile(nodes[0])
	return nil
}

// knnDTO carries the full training memory of a k-NN model.
type knnDTO struct {
	Config KNNConfig   `json:"config"`
	Mean   []float64   `json:"mean"`
	Std    []float64   `json:"std"`
	X      [][]float64 `json:"x"`
	Y      []float64   `json:"y"`
}

// MarshalJSON implements json.Marshaler for k-NN models.
func (k *KNN) MarshalJSON() ([]byte, error) {
	return json.Marshal(knnDTO{
		Config: k.cfg,
		Mean:   k.std.Mean,
		Std:    k.std.Std,
		X:      k.x,
		Y:      k.y,
	})
}

// UnmarshalJSON implements json.Unmarshaler for k-NN models.
func (k *KNN) UnmarshalJSON(b []byte) error {
	var dto knnDTO
	if err := json.Unmarshal(b, &dto); err != nil {
		return err
	}
	if len(dto.X) != len(dto.Y) {
		return fmt.Errorf("ml: k-NN payload rows/targets mismatch (%d/%d)", len(dto.X), len(dto.Y))
	}
	if len(dto.X) == 0 {
		return fmt.Errorf("ml: k-NN payload is empty")
	}
	k.cfg = dto.Config
	k.std = &Standardizer{Mean: dto.Mean, Std: dto.Std}
	k.x = dto.X
	k.y = dto.Y
	if k.cfg.UseKDTree {
		k.tree = buildKDTree(k.x, len(k.x))
	} else {
		k.tree = nil
	}
	return nil
}

// modelEnvelope tags a serialized regressor with its concrete type so a
// heterogeneous bundle can round-trip through one codec.
type modelEnvelope struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// MarshalRegressor wraps any supported regressor into a typed envelope.
func MarshalRegressor(r Regressor) ([]byte, error) {
	var kind string
	switch r.(type) {
	case *Linear:
		kind = "linear"
	case *M5P:
		kind = "m5p"
	case *KNN:
		kind = "knn"
	default:
		return nil, fmt.Errorf("ml: cannot serialize %T", r)
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return json.Marshal(modelEnvelope{Kind: kind, Payload: payload})
}

// UnmarshalRegressor restores a regressor from a typed envelope.
func UnmarshalRegressor(b []byte) (Regressor, error) {
	var env modelEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, err
	}
	switch env.Kind {
	case "linear":
		var m Linear
		if err := json.Unmarshal(env.Payload, &m); err != nil {
			return nil, err
		}
		return &m, nil
	case "m5p":
		var m M5P
		if err := json.Unmarshal(env.Payload, &m); err != nil {
			return nil, err
		}
		return &m, nil
	case "knn":
		var m KNN
		if err := json.Unmarshal(env.Payload, &m); err != nil {
			return nil, err
		}
		return &m, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}
