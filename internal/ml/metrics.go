package ml

import (
	"fmt"

	"repro/internal/stats"
)

// Report summarises a model's validation quality — one row of the paper's
// Table I.
type Report struct {
	Name        string  // predicted element, e.g. "VM CPU"
	Method      string  // learning method description, e.g. "M5P (M=4)"
	Correlation float64 // Pearson correlation predicted vs true
	MAE         float64 // mean absolute error
	ErrStdDev   float64 // standard deviation of signed errors
	NTrain      int
	NTest       int
	RangeLo     float64
	RangeHi     float64
	Unit        string
}

// Evaluate scores a fitted model against a held-out dataset.
func Evaluate(m Regressor, test *Dataset) Report {
	pred := make([]float64, test.Len())
	for i, row := range test.X {
		pred[i] = m.Predict(row)
	}
	lo, hi := test.YRange()
	return Report{
		Correlation: stats.Correlation(pred, test.Y),
		MAE:         stats.MAE(pred, test.Y),
		ErrStdDev:   stats.ErrStdDev(pred, test.Y),
		NTest:       test.Len(),
		RangeLo:     lo,
		RangeHi:     hi,
	}
}

// String renders the report in Table I's column order.
func (r Report) String() string {
	return fmt.Sprintf("%-14s %-14s corr=%.3f mae=%.4g%s errsd=%.4g%s train/val=%d/%d range=[%.4g,%.4g]",
		r.Name, r.Method, r.Correlation, r.MAE, r.Unit, r.ErrStdDev, r.Unit,
		r.NTrain, r.NTest, r.RangeLo, r.RangeHi)
}

// CrossValidate runs f-fold cross validation with the trainer function and
// returns the mean correlation and MAE across folds. Rows are assigned to
// folds round-robin; callers wanting shuffled folds should shuffle first.
func CrossValidate(d *Dataset, folds int, train func(*Dataset) (Regressor, error)) (corr, mae float64, err error) {
	if folds < 2 {
		return 0, 0, fmt.Errorf("ml: need >= 2 folds, got %d", folds)
	}
	if d.Len() < folds {
		return 0, 0, fmt.Errorf("ml: %d rows cannot fill %d folds", d.Len(), folds)
	}
	var sumCorr, sumMAE float64
	for f := 0; f < folds; f++ {
		var trIdx, teIdx []int
		for i := 0; i < d.Len(); i++ {
			if i%folds == f {
				teIdx = append(teIdx, i)
			} else {
				trIdx = append(trIdx, i)
			}
		}
		m, terr := train(d.Subset(trIdx))
		if terr != nil {
			return 0, 0, terr
		}
		rep := Evaluate(m, d.Subset(teIdx))
		sumCorr += rep.Correlation
		sumMAE += rep.MAE
	}
	return sumCorr / float64(folds), sumMAE / float64(folds), nil
}
