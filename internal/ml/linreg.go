package ml

import (
	"fmt"
	"math"
)

// Linear is a fitted linear model: yhat = Intercept + sum_j Coef[j]*x[j].
type Linear struct {
	Intercept float64
	Coef      []float64
}

// Predict evaluates the model on one row. Rows shorter than the
// coefficient vector are treated as zero-padded.
func (l *Linear) Predict(x []float64) float64 {
	y := l.Intercept
	for j, c := range l.Coef {
		if j < len(x) {
			y += c * x[j]
		}
	}
	return y
}

// NumParams returns the number of fitted parameters (for pruning criteria).
func (l *Linear) NumParams() int { return 1 + len(l.Coef) }

func (l *Linear) String() string {
	return fmt.Sprintf("linear(%d coefs, intercept %.4g)", len(l.Coef), l.Intercept)
}

// TrainLinear fits ordinary least squares with optional ridge penalty
// lambda (0 = OLS) by Householder QR on the design matrix augmented with an
// intercept column. The intercept is never penalised.
//
// When the system is under-determined (fewer rows than columns) a small
// ridge is applied automatically so a unique solution exists.
func TrainLinear(d *Dataset, lambda float64) (*Linear, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n, p := d.Len(), d.Width()
	if n == 0 {
		return nil, fmt.Errorf("ml: cannot fit linear model on empty dataset")
	}
	if lambda < 0 {
		return nil, fmt.Errorf("ml: negative ridge lambda %v", lambda)
	}
	cols := p + 1 // + intercept
	if n < cols && lambda == 0 {
		lambda = 1e-6
	}
	rows := n
	if lambda > 0 {
		rows += p // ridge rows for the p slope coefficients only
	}
	// Build the augmented system [X 1; sqrt(l) I 0] beta = [y; 0].
	a := make([][]float64, rows)
	b := make([]float64, rows)
	for i := 0; i < n; i++ {
		row := make([]float64, cols)
		copy(row, d.X[i])
		row[p] = 1 // intercept column last
		a[i] = row
		b[i] = d.Y[i]
	}
	if lambda > 0 {
		s := math.Sqrt(lambda)
		for j := 0; j < p; j++ {
			row := make([]float64, cols)
			row[j] = s
			a[n+j] = row
		}
	}
	beta, err := solveQR(a, b, cols)
	if err != nil {
		return nil, err
	}
	return &Linear{Intercept: beta[p], Coef: beta[:p]}, nil
}

// solveQR performs in-place Householder QR factorisation of a (rows x cols,
// rows >= cols) and solves min ||a beta - b|| in the least-squares sense.
// After the loop, the strictly upper triangle of a holds R above its
// diagonal, rdiag holds R's diagonal, and the columns below the diagonal
// hold the Householder vectors (the LINPACK storage scheme).
func solveQR(a [][]float64, b []float64, cols int) ([]float64, error) {
	rows := len(a)
	if rows < cols {
		return nil, fmt.Errorf("ml: QR needs rows >= cols (%d < %d)", rows, cols)
	}
	rdiag := make([]float64, cols)
	for k := 0; k < cols; k++ {
		var nrm float64
		for i := k; i < rows; i++ {
			nrm = math.Hypot(nrm, a[i][k])
		}
		if nrm != 0 {
			if a[k][k] < 0 {
				nrm = -nrm
			}
			for i := k; i < rows; i++ {
				a[i][k] /= nrm
			}
			a[k][k] += 1
			for j := k + 1; j < cols; j++ {
				var s float64
				for i := k; i < rows; i++ {
					s += a[i][k] * a[i][j]
				}
				s = -s / a[k][k]
				for i := k; i < rows; i++ {
					a[i][j] += s * a[i][k]
				}
			}
		}
		rdiag[k] = -nrm
	}
	// Apply the reflections to b, i.e. compute Q^T b.
	for k := 0; k < cols; k++ {
		if rdiag[k] == 0 {
			continue // dependent column: no reflection was stored
		}
		var s float64
		for i := k; i < rows; i++ {
			s += a[i][k] * b[i]
		}
		s = -s / a[k][k]
		for i := k; i < rows; i++ {
			b[i] += s * a[i][k]
		}
	}
	// Back substitution on R beta = (Q^T b)[:cols].
	beta := make([]float64, cols)
	for k := cols - 1; k >= 0; k-- {
		if math.Abs(rdiag[k]) < 1e-12 {
			beta[k] = 0 // dependent column: pin to zero
			continue
		}
		s := b[k]
		for j := k + 1; j < cols; j++ {
			s -= a[k][j] * beta[j]
		}
		beta[k] = s / rdiag[k]
	}
	for _, v := range beta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ml: QR solution not finite")
		}
	}
	return beta, nil
}

// meanModel returns the constant model predicting the target mean, the
// fallback when no features carry signal.
func meanModel(y []float64) *Linear {
	m := 0.0
	for _, v := range y {
		m += v
	}
	if len(y) > 0 {
		m /= float64(len(y))
	}
	return &Linear{Intercept: m}
}
