package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResponseTimeNoLoad(t *testing.T) {
	d := Demand{RPS: 0, CPUTimeReq: 0.01}
	g := Grant{CPUPct: 100}
	if got := ResponseTime(d, g); got != 0.01 {
		t.Fatalf("no-load RT = %v, want service floor", got)
	}
}

func TestResponseTimeLightLoad(t *testing.T) {
	// mu = (100/100)/0.01 = 100 rps; lambda = 10 -> rho = 0.1.
	d := Demand{RPS: 10, CPUTimeReq: 0.01}
	g := Grant{CPUPct: 100}
	want := 0.01 / (1 - 0.1)
	if got := ResponseTime(d, g); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RT = %v, want %v", got, want)
	}
}

func TestResponseTimeMonotoneInLoad(t *testing.T) {
	g := Grant{CPUPct: 200}
	prev := -1.0
	for rps := 1.0; rps <= 400; rps += 7 {
		rt := ResponseTime(Demand{RPS: rps, CPUTimeReq: 0.01}, g)
		if rt < prev-1e-12 {
			t.Fatalf("RT decreased at rps=%v: %v < %v", rps, rt, prev)
		}
		prev = rt
	}
}

func TestResponseTimeMonotoneInCPUProperty(t *testing.T) {
	f := func(a, b float64) bool {
		ca := 20 + math.Mod(math.Abs(a), 380)
		cb := 20 + math.Mod(math.Abs(b), 380)
		if ca > cb {
			ca, cb = cb, ca
		}
		d := Demand{RPS: 50, CPUTimeReq: 0.01}
		rtLow := ResponseTime(d, Grant{CPUPct: ca})
		rtHigh := ResponseTime(d, Grant{CPUPct: cb})
		return rtHigh <= rtLow+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseTimeOverloadGrows(t *testing.T) {
	g := Grant{CPUPct: 100} // mu = 100 rps
	rt150 := ResponseTime(Demand{RPS: 150, CPUTimeReq: 0.01}, g)
	rt300 := ResponseTime(Demand{RPS: 300, CPUTimeReq: 0.01}, g)
	if rt150 <= ResponseTime(Demand{RPS: 50, CPUTimeReq: 0.01}, g) {
		t.Fatal("overload RT not above underload RT")
	}
	if rt300 <= rt150 && rt300 < MaxRT {
		t.Fatalf("deeper overload should hurt more: %v vs %v", rt300, rt150)
	}
}

func TestResponseTimeCapped(t *testing.T) {
	g := Grant{CPUPct: 1}
	rt := ResponseTime(Demand{RPS: 10000, CPUTimeReq: 0.1}, g)
	if rt > MaxRT {
		t.Fatalf("RT above cap: %v", rt)
	}
	if rt != MaxRT {
		t.Fatalf("extreme overload should hit the cap, got %v", rt)
	}
}

func TestMemoryPressure(t *testing.T) {
	d := Demand{RPS: 10, CPUTimeReq: 0.01}
	healthy := ResponseTime(d, Grant{CPUPct: 100, MemMB: 512, MemReqMB: 512})
	starved := ResponseTime(d, Grant{CPUPct: 100, MemMB: 256, MemReqMB: 512})
	if starved <= healthy {
		t.Fatal("memory starvation should inflate RT")
	}
	// Half the memory: factor 1 + 32*0.25 = 9.
	if math.Abs(starved/healthy-9) > 1e-9 {
		t.Fatalf("memory factor = %v, want 9", starved/healthy)
	}
	zero := ResponseTime(d, Grant{CPUPct: 100, MemMB: 0, MemReqMB: 512})
	if zero <= starved {
		t.Fatal("zero memory should be worst")
	}
}

func TestBandwidthPressure(t *testing.T) {
	d := Demand{RPS: 10, CPUTimeReq: 0.01}
	healthy := ResponseTime(d, Grant{CPUPct: 100, BWMbps: 10, BWReqMbp: 10})
	starved := ResponseTime(d, Grant{CPUPct: 100, BWMbps: 5, BWReqMbp: 10})
	if starved <= healthy {
		t.Fatal("bandwidth starvation should inflate RT")
	}
	// Half bandwidth: factor 1 + 7*0.5 = 4.5.
	if math.Abs(starved/healthy-4.5) > 1e-9 {
		t.Fatalf("bw factor = %v, want 4.5", starved/healthy)
	}
}

func TestServiceCapacity(t *testing.T) {
	if got := ServiceCapacityRPS(200, 0.01); math.Abs(got-200) > 1e-12 {
		t.Fatalf("ServiceCapacityRPS = %v", got)
	}
	if !math.IsInf(ServiceCapacityRPS(100, 0), 1) {
		t.Fatal("zero service time should give infinite capacity")
	}
	if !math.IsInf(ServiceCapacityRPS(0, 0.01), 1) {
		t.Fatal("zero CPU with zero arrivals handled by caller; capacity inf")
	}
}

func TestUtilisation(t *testing.T) {
	d := Demand{RPS: 50, CPUTimeReq: 0.01}
	g := Grant{CPUPct: 100} // mu = 100
	if got := Utilisation(d, g); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Utilisation = %v", got)
	}
}

func TestCPURequiredPct(t *testing.T) {
	d := Demand{RPS: 70, CPUTimeReq: 0.01}
	// 70 rps * 0.01 s = 0.7 cores at rho=1; at rho 0.7 -> 1 core = 100%.
	if got := CPURequiredPct(d, 0.7); math.Abs(got-100) > 1e-9 {
		t.Fatalf("CPURequiredPct = %v", got)
	}
	// Invalid target falls back to 0.7.
	if got := CPURequiredPct(d, 0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("CPURequiredPct default = %v", got)
	}
}

func TestBandwidthNeed(t *testing.T) {
	// 100 rps * (1000+9000) bytes * 8 bits = 8e6 bits/s = 8 Mbps.
	if got := BandwidthNeedMbps(100, 1000, 9000); math.Abs(got-8) > 1e-12 {
		t.Fatalf("BandwidthNeedMbps = %v", got)
	}
}

func TestResponseTimeNonNegativeProperty(t *testing.T) {
	f := func(rps, cpu, mem, memReq float64) bool {
		d := Demand{RPS: math.Mod(math.Abs(rps), 1000), CPUTimeReq: 0.01}
		g := Grant{
			CPUPct:   math.Mod(math.Abs(cpu), 400),
			MemMB:    math.Mod(math.Abs(mem), 2048),
			MemReqMB: math.Mod(math.Abs(memReq), 2048),
		}
		rt := ResponseTime(d, g)
		return rt >= 0 && rt <= MaxRT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
