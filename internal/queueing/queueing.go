// Package queueing provides the response-time model that turns load and
// granted resources into a processing response time — the fRT function of
// constraint (6.1) in the paper's Figure 3.
//
// Web servers under processor sharing are well approximated by an M/G/1-PS
// queue, whose mean sojourn time is service-time/(1-rho). The model adds
// the two degradations the paper's experiments exhibit: memory exhaustion
// (swapping) and network-bandwidth competition, each inflating the response
// time smoothly as the granted resource falls below the requirement.
package queueing

import "math"

// MaxRT caps the modelled response time, matching the observed range of the
// paper's Table I ([0, 19.35] seconds for the learned RT).
const MaxRT = 20.0

// Demand describes one VM's offered work during a tick.
type Demand struct {
	RPS        float64 // arrival rate, requests per second
	CPUTimeReq float64 // no-stress CPU seconds per request
	BytesOutRq float64 // reply size, bytes (drives bandwidth need)
	BytesInReq float64 // request size, bytes
}

// Grant describes the resources the placement actually gives the VM.
type Grant struct {
	CPUPct   float64 // granted CPU, percent of one core
	MemMB    float64 // granted memory
	MemReqMB float64 // memory the VM needs at this load
	BWMbps   float64 // granted bandwidth
	BWReqMbp float64 // bandwidth the VM needs at this load
}

// ServiceCapacityRPS returns how many requests per second the granted CPU
// can serve: grantedCores / cpuTimePerRequest.
func ServiceCapacityRPS(cpuPct, cpuTimeReq float64) float64 {
	if cpuTimeReq <= 0 || cpuPct <= 0 {
		return math.Inf(1)
	}
	return (cpuPct / 100) / cpuTimeReq
}

// ResponseTime returns the expected processing response time in seconds for
// the demand under the grant.
//
// Regimes:
//   - rho < saturation: M/G/1-PS sojourn, serviceTime/(1-rho).
//   - rho >= saturation: overload; the queue grows over the tick, modelled
//     as a response time rising linearly with the excess arrival rate so
//     the decision maker sees increasing (not flat) pain.
//
// Memory or bandwidth deficits multiply the result: a VM at half its
// required memory thrashes, one at half its bandwidth stalls on writes.
func ResponseTime(d Demand, g Grant) float64 {
	if d.RPS <= 0 {
		// No requests: response time is the no-stress floor.
		return d.CPUTimeReq
	}
	service := d.CPUTimeReq
	if service <= 0 {
		service = 1e-4
	}
	mu := ServiceCapacityRPS(g.CPUPct, service)
	var rt float64
	const saturation = 0.97
	switch {
	case math.IsInf(mu, 1):
		rt = service
	case d.RPS < saturation*mu:
		rho := d.RPS / mu
		rt = service / (1 - rho)
	default:
		// Overload: base sojourn at the saturation knee plus a term
		// proportional to the backlog growth rate.
		knee := service / (1 - saturation)
		excess := d.RPS/mu - saturation
		rt = knee + excess*service*200
	}
	rt *= memoryPressureFactor(g.MemMB, g.MemReqMB)
	rt *= bandwidthPressureFactor(g.BWMbps, g.BWReqMbp)
	if rt > MaxRT {
		rt = MaxRT
	}
	if rt < 0 {
		rt = 0
	}
	return rt
}

// memoryPressureFactor inflates RT when granted memory is below required:
// factor 1 at or above requirement, growing quadratically to ~9x at half
// the requirement (swapping cliff).
func memoryPressureFactor(granted, required float64) float64 {
	if required <= 0 || granted >= required {
		return 1
	}
	if granted <= 0 {
		return 16
	}
	deficit := (required - granted) / required // (0, 1]
	return 1 + 32*deficit*deficit
}

// bandwidthPressureFactor inflates RT when the VM's share of the NIC is
// below what its reply traffic needs; linear, gentler than memory.
func bandwidthPressureFactor(granted, required float64) float64 {
	if required <= 0 || granted >= required {
		return 1
	}
	if granted <= 0 {
		return 8
	}
	deficit := (required - granted) / required
	return 1 + 7*deficit
}

// BandwidthNeedMbps converts a request stream into the NIC bandwidth it
// needs, in megabits per second.
func BandwidthNeedMbps(rps, bytesIn, bytesOut float64) float64 {
	return rps * (bytesIn + bytesOut) * 8 / 1e6
}

// Utilisation returns rho = lambda/mu for the demand under the grant,
// clamped to [0, +inf). Values above 1 indicate overload.
func Utilisation(d Demand, g Grant) float64 {
	mu := ServiceCapacityRPS(g.CPUPct, d.CPUTimeReq)
	if math.IsInf(mu, 1) || mu <= 0 {
		return 0
	}
	return d.RPS / mu
}

// CPURequiredPct returns the CPU (percent of one core) needed to serve the
// demand at the target utilisation (e.g. 0.7 keeps RT ~3.3x service time).
func CPURequiredPct(d Demand, targetRho float64) float64 {
	if targetRho <= 0 || targetRho > 1 {
		targetRho = 0.7
	}
	return d.RPS * d.CPUTimeReq * 100 / targetRho
}
