// Package power models the electrical behaviour of the physical machines.
//
// The paper's testbed uses Intel Atom 4-core hosts whose consumption grows
// non-linearly with the number of active cores: 29.1 W with one active core
// and only 30.4, 31.3 and 31.8 W with two, three and four. That shape is the
// entire economic argument for consolidation — two machines at one core each
// burn far more than one machine at two cores — so the curve is reproduced
// here verbatim, together with the paper's cooling rule (one extra watt of
// cooling per two watts of IT load).
package power

import "fmt"

// Model converts a machine's CPU activity into watts.
type Model interface {
	// Watts returns instantaneous IT power (without cooling) for a machine
	// running the given total CPU load, in percent of one core (0..Cores*100).
	// A powered-off machine is handled by the caller; Watts(0) is the
	// idle-but-on floor.
	Watts(cpuPct float64) float64
	// Cores returns the number of physical cores the curve describes.
	Cores() int
}

// CoolingFactor scales IT watts to facility watts: "for each 2 watts
// consumed by the machine, an extra watt is required for cooling".
const CoolingFactor = 1.5

// AtomCurve is the measured consumption of the paper's Intel Atom 4-core
// hosts, indexed by number of active cores (0 = idle-on).
//
// The idle figure is not printed in the paper; 28.2 W is chosen so that the
// static scenario of Table III (four nearly idle hosts) lands on the
// reported ~175.9 facility watts: 4 x 29.3 x 1.5.
var AtomCurve = [5]float64{28.2, 29.1, 30.4, 31.3, 31.8}

// Atom is the paper's host power model.
type Atom struct{}

// Cores returns 4.
func (Atom) Cores() int { return 4 }

// Watts interpolates the measured per-core-count points piecewise linearly
// so that fractional core activity (e.g. 150% CPU = 1.5 active cores) has a
// defined, monotone consumption.
func (Atom) Watts(cpuPct float64) float64 {
	return interpolateCurve(AtomCurve[:], cpuPct)
}

// Custom is a power model built from an arbitrary per-active-core-count
// curve; index 0 is idle-on power. It supports modelling heterogeneous
// hardware generations in the same multi-DC system.
type Custom struct {
	Curve []float64 // watts at 0, 1, 2, ... active cores
}

// NewCustom validates and builds a Custom model. The curve must have at
// least two points (idle and one core) and be non-decreasing.
func NewCustom(curve []float64) (Custom, error) {
	if len(curve) < 2 {
		return Custom{}, fmt.Errorf("power: curve needs >= 2 points, got %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			return Custom{}, fmt.Errorf("power: curve must be non-decreasing at index %d", i)
		}
	}
	c := Custom{Curve: append([]float64(nil), curve...)}
	return c, nil
}

// Cores returns the number of cores the curve describes.
func (c Custom) Cores() int { return len(c.Curve) - 1 }

// Watts interpolates the curve at the given CPU activity.
func (c Custom) Watts(cpuPct float64) float64 {
	return interpolateCurve(c.Curve, cpuPct)
}

// CurveModel is the devirtualisation cache hook for hot loops: models that
// are pure piecewise-linear curves expose their points once, and callers
// evaluate with Interpolate instead of paying an interface dispatch per
// candidate assignment.
type CurveModel interface {
	Model
	// CurvePoints returns the watts-at-k-active-cores points (index 0 =
	// idle-on). Callers must not mutate the returned slice.
	CurvePoints() []float64
}

// CurvePoints implements CurveModel.
func (Atom) CurvePoints() []float64 { return AtomCurve[:] }

// CurvePoints implements CurveModel.
func (c Custom) CurvePoints() []float64 { return c.Curve }

// Interpolate evaluates a per-active-core-count curve at the given CPU
// activity — exactly the arithmetic behind Atom.Watts and Custom.Watts.
func Interpolate(curve []float64, cpuPct float64) float64 {
	return interpolateCurve(curve, cpuPct)
}

func interpolateCurve(curve []float64, cpuPct float64) float64 {
	maxCores := float64(len(curve) - 1)
	cores := cpuPct / 100
	if cores <= 0 {
		return curve[0]
	}
	if cores >= maxCores {
		return curve[len(curve)-1]
	}
	lo := int(cores)
	frac := cores - float64(lo)
	return curve[lo]*(1-frac) + curve[lo+1]*frac
}

// FacilityWatts returns the machine's total draw including cooling overhead
// for a powered-on machine under the given CPU activity. Off machines draw
// nothing; that case belongs to the caller because "off" is a scheduling
// state, not a load level.
func FacilityWatts(m Model, cpuPct float64) float64 {
	return m.Watts(cpuPct) * CoolingFactor
}

// EnergyEUR returns the cost of running one machine at the given facility
// watts for the given number of hours at a location's electricity price.
func EnergyEUR(facilityWatts, hours, eurPerKWh float64) float64 {
	return facilityWatts / 1000 * hours * eurPerKWh
}

// Accountant integrates a fleet's energy use tick by tick.
// The zero value is ready to use.
type Accountant struct {
	wattHours float64 // facility watt-hours accumulated
	costEUR   float64
	ticks     int
}

// Observe folds in one tick of operation: the facility watts drawn during
// the tick and the electricity price ruling at that machine's location.
func (a *Accountant) Observe(facilityWatts, eurPerKWh float64, d float64) {
	// d is the tick length in hours.
	a.wattHours += facilityWatts * d
	a.costEUR += EnergyEUR(facilityWatts, d, eurPerKWh)
}

// Tick marks the end of a simulation tick (used for averaging).
func (a *Accountant) Tick() { a.ticks++ }

// WattHours returns accumulated facility watt-hours.
func (a *Accountant) WattHours() float64 { return a.wattHours }

// CostEUR returns accumulated energy cost in euros.
func (a *Accountant) CostEUR() float64 { return a.costEUR }

// AvgWatts returns the mean facility draw per tick observed so far.
func (a *Accountant) AvgWatts(tickHours float64) float64 {
	if a.ticks == 0 {
		return 0
	}
	return a.wattHours / (float64(a.ticks) * tickHours)
}

// ActiveCores returns how many cores ceil-wise a CPU load keeps busy,
// clamped to the core count; useful for reporting.
func ActiveCores(m Model, cpuPct float64) int {
	if cpuPct <= 0 {
		return 0
	}
	cores := int((cpuPct + 99.999) / 100)
	if cores > m.Cores() {
		cores = m.Cores()
	}
	return cores
}

var _ CurveModel = Atom{}
var _ CurveModel = Custom{}
