package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAtomMeasuredPoints(t *testing.T) {
	a := Atom{}
	tests := []struct {
		cpu, want float64
	}{
		{0, 28.2},
		{100, 29.1},
		{200, 30.4},
		{300, 31.3},
		{400, 31.8},
		{500, 31.8}, // beyond capacity clamps
		{-10, 28.2}, // negative clamps to idle
	}
	for _, tc := range tests {
		if got := a.Watts(tc.cpu); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Watts(%v) = %v, want %v", tc.cpu, got, tc.want)
		}
	}
}

func TestAtomInterpolationMidpoints(t *testing.T) {
	a := Atom{}
	if got := a.Watts(150); math.Abs(got-(29.1+30.4)/2) > 1e-9 {
		t.Fatalf("Watts(150) = %v", got)
	}
	if got := a.Watts(50); math.Abs(got-(28.2+29.1)/2) > 1e-9 {
		t.Fatalf("Watts(50) = %v", got)
	}
}

func TestAtomMonotoneProperty(t *testing.T) {
	a := Atom{}
	f := func(x, y float64) bool {
		cx := math.Mod(math.Abs(x), 450)
		cy := math.Mod(math.Abs(y), 450)
		if cx > cy {
			cx, cy = cy, cx
		}
		return a.Watts(cx) <= a.Watts(cy)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsolidationIsCheaper(t *testing.T) {
	// The core economic fact: two machines at one core each burn much more
	// than one machine at two cores.
	a := Atom{}
	two := 2 * a.Watts(100)
	one := a.Watts(200)
	if one >= two {
		t.Fatalf("consolidation not cheaper: 1x200%%=%vW vs 2x100%%=%vW", one, two)
	}
	if two-one < 25 {
		t.Fatalf("saving too small to drive consolidation: %vW", two-one)
	}
}

func TestCustomValidation(t *testing.T) {
	if _, err := NewCustom([]float64{10}); err == nil {
		t.Fatal("accepted single-point curve")
	}
	if _, err := NewCustom([]float64{10, 9}); err == nil {
		t.Fatal("accepted decreasing curve")
	}
	c, err := NewCustom([]float64{50, 80, 100})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cores() != 2 {
		t.Fatalf("Cores = %d", c.Cores())
	}
	if got := c.Watts(50); math.Abs(got-65) > 1e-9 {
		t.Fatalf("Watts(50) = %v", got)
	}
}

func TestCustomCopiesCurve(t *testing.T) {
	in := []float64{10, 20}
	c, _ := NewCustom(in)
	in[0] = 999
	if c.Watts(0) != 10 {
		t.Fatal("NewCustom aliased caller slice")
	}
}

func TestFacilityWatts(t *testing.T) {
	a := Atom{}
	got := FacilityWatts(a, 400)
	if math.Abs(got-31.8*1.5) > 1e-9 {
		t.Fatalf("FacilityWatts = %v", got)
	}
}

func TestEnergyEUR(t *testing.T) {
	// 1000 facility watts for 2 hours at 0.15 EUR/kWh = 0.3 EUR.
	if got := EnergyEUR(1000, 2, 0.15); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("EnergyEUR = %v", got)
	}
}

func TestAccountant(t *testing.T) {
	var acc Accountant
	tickHours := 1.0 / 60
	// Two ticks at 60 facility watts, price 0.10.
	for i := 0; i < 2; i++ {
		acc.Observe(60, 0.10, tickHours)
		acc.Tick()
	}
	if wh := acc.WattHours(); math.Abs(wh-2) > 1e-9 {
		t.Fatalf("WattHours = %v", wh)
	}
	if avg := acc.AvgWatts(tickHours); math.Abs(avg-60) > 1e-9 {
		t.Fatalf("AvgWatts = %v", avg)
	}
	wantCost := 60.0 / 1000 * (2.0 / 60) * 0.10
	if c := acc.CostEUR(); math.Abs(c-wantCost) > 1e-12 {
		t.Fatalf("CostEUR = %v, want %v", c, wantCost)
	}
}

func TestAccountantZero(t *testing.T) {
	var acc Accountant
	if acc.AvgWatts(1.0/60) != 0 {
		t.Fatal("AvgWatts of empty accountant should be 0")
	}
}

func TestActiveCores(t *testing.T) {
	a := Atom{}
	tests := []struct {
		cpu  float64
		want int
	}{
		{0, 0},
		{1, 1},
		{100, 1},
		{101, 2},
		{400, 4},
		{900, 4},
	}
	for _, tc := range tests {
		if got := ActiveCores(a, tc.cpu); got != tc.want {
			t.Errorf("ActiveCores(%v) = %d, want %d", tc.cpu, got, tc.want)
		}
	}
}

func TestTableIIIStaticPowerBallpark(t *testing.T) {
	// Four nearly idle machines with cooling should land near the paper's
	// 175.9 W static figure.
	a := Atom{}
	watts := 4 * FacilityWatts(a, 30) // ~30% of one core each
	if watts < 165 || watts < 0 || watts > 185 {
		t.Fatalf("static fleet facility watts = %v, want ~175", watts)
	}
}
