package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&seen[i], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachWorkerCoversAllIndicesWithValidWorkerIDs(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		seen := make([]int32, n)
		var badWorker atomic.Int32
		ForEachWorker(n, workers, func(w, i int) {
			if w < 0 || (workers > 0 && w >= workers) || w >= n {
				badWorker.Store(1)
			}
			atomic.AddInt32(&seen[i], 1)
		})
		if badWorker.Load() != 0 {
			t.Fatalf("workers=%d: worker id out of range", workers)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestForEachWorkerScratchDisjoint proves the contract callers rely on for
// per-worker scratch: no two concurrent invocations share a worker id, so
// indexing a scratch slice by w is race-free.
func TestForEachWorkerScratchDisjoint(t *testing.T) {
	const workers = 8
	var busy [workers]atomic.Int32
	var clash atomic.Int32
	ForEachWorker(10000, workers, func(w, i int) {
		if !busy[w].CompareAndSwap(0, 1) {
			clash.Store(1)
		}
		busy[w].Store(0)
	})
	if clash.Load() != 0 {
		t.Fatal("two invocations shared a worker id concurrently")
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachChunkedCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 1000
		seen := make([]int32, n)
		ForEachChunked(n, workers, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestMapOrderPreserved(t *testing.T) {
	in := make([]int, 257)
	for i := range in {
		in[i] = i
	}
	out := Map(in, 8, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out := Map(nil, 4, func(x int) int { return x })
	if len(out) != 0 {
		t.Fatal("non-empty output for empty input")
	}
}

func TestMapIdx(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out := MapIdx(in, 2, func(i int, s string) int { return i + len(s) })
	want := []int{1, 3, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestReduceSum(t *testing.T) {
	n := 10000
	sum := Reduce(n, 8, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	}, func(a, b int64) int64 { return a + b })
	want := int64(n) * int64(n-1) / 2
	if sum != want {
		t.Fatalf("Reduce = %d, want %d", sum, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 4, func(lo, hi int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("Reduce(0) = %d", got)
	}
}

func TestReduceMatchesSerialProperty(t *testing.T) {
	f := func(xs []int8, workers uint8) bool {
		w := int(workers%8) + 1
		par := Reduce(len(xs), w, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(xs[i])
			}
			return s
		}, func(a, b int64) int64 { return a + b })
		var serial int64
		for _, x := range xs {
			serial += int64(x)
		}
		return par == serial
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
