// Package par provides the small set of parallel building blocks the
// reproduction uses: bounded fan-out over index ranges and parallel map.
//
// The helpers keep all coordination inside the call (share memory by
// communicating): workers receive disjoint index ranges, write only to
// their own output slots, and the call returns after every worker is done,
// so callers never observe partially-written state.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// the machine's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// dispatchChunk sizes the self-scheduling grain: small enough that a slow
// index cannot strand the tail on one worker, large enough that the atomic
// cursor is not contended on every index.
func dispatchChunk(n, workers int) int {
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// ForEach invokes fn(i) for every i in [0, n) using up to workers
// goroutines. It returns once all invocations have completed. fn must be
// safe to call concurrently for distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker's identity exposed: fn(w, i)
// runs with w in [0, workers), and no two invocations share a w
// concurrently — callers thread per-worker scratch by indexing with w.
// Indices are handed out as contiguous chunks off a shared atomic cursor
// (self-scheduling), so the dispatch cost is O(n/chunk) atomics instead of
// the former O(n) buffered-channel sends per call.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunk := dispatchChunk(n, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(w, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForEachChunkWorker is ForEachWorker handing out whole chunks: fn(w, lo,
// hi) processes the contiguous index block [lo, hi) on worker w, with no
// two invocations sharing a w concurrently. It suits batched stages —
// callers that amortize per-call setup over a block (e.g. a batched
// inference fill) receive the block boundaries instead of single indices,
// while keeping the self-scheduling dispatch and the per-worker scratch
// identity of ForEachWorker.
func ForEachChunkWorker(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	chunk := dispatchChunk(n, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachChunked invokes fn(lo, hi) over contiguous, disjoint chunks
// covering [0, n). It suits loops whose per-index cost is tiny, where
// handing out single indices would be all scheduling overhead.
func ForEachChunked(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map applies fn to every element of in using up to workers goroutines and
// returns the outputs in input order.
func Map[T, U any](in []T, workers int, fn func(T) U) []U {
	out := make([]U, len(in))
	ForEach(len(in), workers, func(i int) {
		out[i] = fn(in[i])
	})
	return out
}

// MapIdx is Map with the element index available to the function.
func MapIdx[T, U any](in []T, workers int, fn func(int, T) U) []U {
	out := make([]U, len(in))
	ForEach(len(in), workers, func(i int) {
		out[i] = fn(i, in[i])
	})
	return out
}

// Reduce folds the per-worker partial results of fn into a single value.
// fn computes a partial result over its index range; merge combines two
// partials and must be associative.
func Reduce[A any](n, workers int, fn func(lo, hi int) A, merge func(A, A) A) A {
	var zero A
	if n <= 0 {
		return zero
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	partials := make([]A, nchunks)
	var wg sync.WaitGroup
	for c := 0; c < nchunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			partials[c] = fn(lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = merge(acc, p)
	}
	return acc
}
