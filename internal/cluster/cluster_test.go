package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func testInventory(t *testing.T) *Inventory {
	t.Helper()
	pms := []model.PMSpec{
		{ID: 0, DC: 0, Capacity: model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}, Cores: 4},
		{ID: 1, DC: 0, Capacity: model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}, Cores: 4},
		{ID: 2, DC: 1, Capacity: model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}, Cores: 4},
	}
	vms := []model.VMSpec{
		{ID: 0, Name: "a", HomeDC: 0},
		{ID: 1, Name: "b", HomeDC: 0},
		{ID: 2, Name: "c", HomeDC: 1},
	}
	inv, err := NewInventory(pms, vms)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func TestInventoryValidation(t *testing.T) {
	if _, err := NewInventory(nil, nil); err == nil {
		t.Fatal("accepted empty fleet")
	}
	dup := []model.PMSpec{
		{ID: 0, Capacity: model.Resources{CPUPct: 400}},
		{ID: 0, Capacity: model.Resources{CPUPct: 400}},
	}
	if _, err := NewInventory(dup, nil); err == nil {
		t.Fatal("accepted duplicate PM ids")
	}
	zero := []model.PMSpec{{ID: 0}}
	if _, err := NewInventory(zero, nil); err == nil {
		t.Fatal("accepted zero-capacity PM")
	}
	dupVM := []model.PMSpec{{ID: 0, Capacity: model.Resources{CPUPct: 400}}}
	vms := []model.VMSpec{{ID: 1}, {ID: 1}}
	if _, err := NewInventory(dupVM, vms); err == nil {
		t.Fatal("accepted duplicate VM ids")
	}
}

func TestInventoryLookups(t *testing.T) {
	inv := testInventory(t)
	if inv.NumDCs() != 2 {
		t.Fatalf("NumDCs = %d", inv.NumDCs())
	}
	pm, ok := inv.PM(2)
	if !ok || pm.DC != 1 {
		t.Fatalf("PM(2) = %+v, %v", pm, ok)
	}
	if _, ok := inv.PM(99); ok {
		t.Fatal("found ghost PM")
	}
	vm, ok := inv.VM(1)
	if !ok || vm.Name != "b" {
		t.Fatalf("VM(1) = %+v", vm)
	}
	if _, ok := inv.VM(99); ok {
		t.Fatal("found ghost VM")
	}
	if got := inv.PMsOfDC(0); len(got) != 2 {
		t.Fatalf("PMsOfDC(0) = %v", got)
	}
	if inv.DCOf(2) != 1 {
		t.Fatalf("DCOf(2) = %v", inv.DCOf(2))
	}
	if inv.DCOf(model.NoPM) != -1 {
		t.Fatal("DCOf(NoPM) should be -1")
	}
}

func TestStatePlaceAndEvict(t *testing.T) {
	inv := testInventory(t)
	s := NewState(inv)
	if s.HostOf(0) != model.NoPM {
		t.Fatal("fresh VM should be unplaced")
	}
	if err := s.Place(0, 1); err != nil {
		t.Fatal(err)
	}
	if s.HostOf(0) != 1 {
		t.Fatalf("HostOf = %v", s.HostOf(0))
	}
	if s.DCOfVM(0) != 0 {
		t.Fatalf("DCOfVM = %v", s.DCOfVM(0))
	}
	// Move to another PM.
	if err := s.Place(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.GuestsOf(1); len(got) != 0 {
		t.Fatalf("old host still lists guest: %v", got)
	}
	if got := s.GuestsOf(2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("new host guests: %v", got)
	}
	// Evict.
	if err := s.Place(0, model.NoPM); err != nil {
		t.Fatal(err)
	}
	if s.HostOf(0) != model.NoPM {
		t.Fatal("eviction failed")
	}
	if s.DCOfVM(0) != -1 {
		t.Fatal("evicted VM should report DC -1")
	}
}

func TestStatePlaceErrors(t *testing.T) {
	inv := testInventory(t)
	s := NewState(inv)
	if err := s.Place(99, 0); err == nil {
		t.Fatal("accepted unknown VM")
	}
	if err := s.Place(0, 99); err == nil {
		t.Fatal("accepted unknown PM")
	}
}

func TestStateApplyReportsMoves(t *testing.T) {
	inv := testInventory(t)
	s := NewState(inv)
	p := model.Placement{0: 0, 1: 0, 2: 2}
	moved, err := s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 3 {
		t.Fatalf("initial apply moved %v", moved)
	}
	// Idempotent re-apply moves nothing.
	moved, err = s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Fatalf("re-apply moved %v", moved)
	}
	p2 := p.Clone()
	p2[1] = 2
	moved, _ = s.Apply(p2)
	if len(moved) != 1 || moved[0] != 1 {
		t.Fatalf("moved = %v", moved)
	}
}

func TestActivePMs(t *testing.T) {
	inv := testInventory(t)
	s := NewState(inv)
	if got := s.ActivePMs(); len(got) != 0 {
		t.Fatalf("fresh state active PMs: %v", got)
	}
	s.Place(0, 0)
	s.Place(1, 0)
	s.Place(2, 2)
	got := s.ActivePMs()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("ActivePMs = %v", got)
	}
}

func TestOccupationUnderSubscribed(t *testing.T) {
	cap := model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}
	req := map[model.VMID]model.Resources{
		0: {CPUPct: 100, MemMB: 512, BWMbps: 10},
		1: {CPUPct: 200, MemMB: 1024, BWMbps: 20},
	}
	grants := Occupation(cap, req)
	for vm, r := range req {
		if grants[vm] != r {
			t.Fatalf("under-subscription should grant requirement: %v got %v", r, grants[vm])
		}
	}
}

func TestOccupationOverSubscribedProportional(t *testing.T) {
	cap := model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}
	req := map[model.VMID]model.Resources{
		0: {CPUPct: 300, MemMB: 1000, BWMbps: 10},
		1: {CPUPct: 500, MemMB: 1000, BWMbps: 10},
	}
	grants := Occupation(cap, req)
	// CPU oversubscribed 800 > 400: each gets half its ask.
	if math.Abs(grants[0].CPUPct-150) > 1e-9 || math.Abs(grants[1].CPUPct-250) > 1e-9 {
		t.Fatalf("CPU grants = %v / %v", grants[0].CPUPct, grants[1].CPUPct)
	}
	// Memory and BW fit: granted in full.
	if grants[0].MemMB != 1000 || grants[1].BWMbps != 10 {
		t.Fatalf("non-contended grants wrong: %+v", grants)
	}
}

func TestOccupationPropertyNeverExceedsCapacity(t *testing.T) {
	f := func(a, b, c uint16) bool {
		cap := model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}
		req := map[model.VMID]model.Resources{
			0: {CPUPct: float64(a % 900), MemMB: float64(b % 8000), BWMbps: float64(c % 300)},
			1: {CPUPct: float64(b % 900), MemMB: float64(c % 8000), BWMbps: float64(a % 300)},
			2: {CPUPct: float64(c % 900), MemMB: float64(a % 8000), BWMbps: float64(b % 300)},
		}
		grants := Occupation(cap, req)
		var sum model.Resources
		for _, g := range grants {
			sum = sum.Add(g)
		}
		const eps = 1e-6
		return sum.CPUPct <= cap.CPUPct+eps && sum.MemMB <= cap.MemMB+eps && sum.BWMbps <= cap.BWMbps+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOccupationPropertyGrantNeverExceedsAsk(t *testing.T) {
	f := func(a, b uint16) bool {
		cap := model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}
		req := map[model.VMID]model.Resources{
			0: {CPUPct: float64(a % 1200), MemMB: float64(b % 9000), BWMbps: float64(a % 500)},
			1: {CPUPct: float64(b % 1200), MemMB: float64(a % 9000), BWMbps: float64(b % 500)},
		}
		grants := Occupation(cap, req)
		for vm, g := range grants {
			r := req[vm]
			if g.CPUPct > r.CPUPct+1e-9 || g.MemMB > r.MemMB+1e-9 || g.BWMbps > r.BWMbps+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreeCapacity(t *testing.T) {
	cap := model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}
	req := map[model.VMID]model.Resources{
		0: {CPUPct: 300, MemMB: 5000, BWMbps: 40},
	}
	free := FreeCapacity(cap, req)
	if free.CPUPct != 100 || free.MemMB != 0 || free.BWMbps != 60 {
		t.Fatalf("FreeCapacity = %v", free)
	}
}

func TestGuestsOfSorted(t *testing.T) {
	inv := testInventory(t)
	s := NewState(inv)
	s.Place(2, 0)
	s.Place(0, 0)
	s.Place(1, 0)
	got := s.GuestsOf(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("GuestsOf not sorted: %v", got)
	}
}

// TestDynamicVMs covers the workload-lifecycle extension of State:
// dynamically added VMs place like inventory VMs and vanish without
// trace on removal; inventory VMs are permanent.
func TestDynamicVMs(t *testing.T) {
	inv := testInventory(t)
	s := NewState(inv)
	dyn := model.VMSpec{ID: 900, Name: "dyn"}
	if err := s.AddVM(dyn); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVM(dyn); err == nil {
		t.Fatal("duplicate dynamic VM accepted")
	}
	if err := s.AddVM(inv.VMs()[0]); err == nil {
		t.Fatal("inventory VM re-added dynamically")
	}
	if got := s.HostOf(900); got != model.NoPM {
		t.Fatalf("dynamic VM born placed on %v", got)
	}
	pm := inv.PMs()[0].ID
	if err := s.Place(900, pm); err != nil {
		t.Fatal(err)
	}
	if spec, ok := s.DynamicVM(900); !ok || spec.Name != "dyn" {
		t.Fatalf("DynamicVM lookup failed: %+v %v", spec, ok)
	}
	found := false
	for _, g := range s.GuestsOf(pm) {
		if g == 900 {
			found = true
		}
	}
	if !found {
		t.Fatal("dynamic VM missing from guest list")
	}
	if err := s.RemoveVM(900); err != nil {
		t.Fatal(err)
	}
	for _, g := range s.GuestsOf(pm) {
		if g == 900 {
			t.Fatal("removed VM still a guest")
		}
	}
	if _, ok := s.Placement()[900]; ok {
		t.Fatal("removed VM still in the placement map")
	}
	if err := s.Place(900, pm); err == nil {
		t.Fatal("removed VM still placeable")
	}
	if err := s.RemoveVM(inv.VMs()[0].ID); err == nil {
		t.Fatal("inventory VM removed")
	}
}
