// Package cluster maintains the physical inventory of the multi-DC system
// and the current placement: which PM hosts which VM, what everyone's
// capacities are, and how a host's resources are split among its guests
// (the fOccupation function of Figure 3, constraint 5.2).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Inventory is the static description of the fleet: every PM, every VM and
// which DC each PM belongs to. It is immutable after construction.
type Inventory struct {
	pms     []model.PMSpec
	vms     []model.VMSpec
	pmByID  map[model.PMID]int
	vmByID  map[model.VMID]int
	pmsOfDC map[model.DCID][]model.PMID
	numDCs  int
}

// NewInventory builds and validates an inventory.
func NewInventory(pms []model.PMSpec, vms []model.VMSpec) (*Inventory, error) {
	if len(pms) == 0 {
		return nil, fmt.Errorf("cluster: need at least one PM")
	}
	inv := &Inventory{
		pms:     append([]model.PMSpec(nil), pms...),
		vms:     append([]model.VMSpec(nil), vms...),
		pmByID:  make(map[model.PMID]int, len(pms)),
		vmByID:  make(map[model.VMID]int, len(vms)),
		pmsOfDC: make(map[model.DCID][]model.PMID),
	}
	for i, pm := range inv.pms {
		if _, dup := inv.pmByID[pm.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate PM id %v", pm.ID)
		}
		if !pm.Capacity.NonNegative() || pm.Capacity.CPUPct == 0 {
			return nil, fmt.Errorf("cluster: PM %v has invalid capacity %v", pm.ID, pm.Capacity)
		}
		inv.pmByID[pm.ID] = i
		inv.pmsOfDC[pm.DC] = append(inv.pmsOfDC[pm.DC], pm.ID)
		if int(pm.DC) >= inv.numDCs {
			inv.numDCs = int(pm.DC) + 1
		}
	}
	for i, vm := range inv.vms {
		if _, dup := inv.vmByID[vm.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate VM id %v", vm.ID)
		}
		inv.vmByID[vm.ID] = i
	}
	return inv, nil
}

// PMs returns all physical machines.
func (inv *Inventory) PMs() []model.PMSpec { return inv.pms }

// VMs returns all virtual machines.
func (inv *Inventory) VMs() []model.VMSpec { return inv.vms }

// PM returns one PM's spec.
func (inv *Inventory) PM(id model.PMID) (model.PMSpec, bool) {
	i, ok := inv.pmByID[id]
	if !ok {
		return model.PMSpec{}, false
	}
	return inv.pms[i], true
}

// VM returns one VM's spec.
func (inv *Inventory) VM(id model.VMID) (model.VMSpec, bool) {
	i, ok := inv.vmByID[id]
	if !ok {
		return model.VMSpec{}, false
	}
	return inv.vms[i], true
}

// NumDCs returns the number of distinct datacenters (max DC index + 1).
func (inv *Inventory) NumDCs() int { return inv.numDCs }

// NumPMs returns the number of physical machines.
func (inv *Inventory) NumPMs() int { return len(inv.pms) }

// NumVMs returns the number of virtual machines.
func (inv *Inventory) NumVMs() int { return len(inv.vms) }

// PMIndex returns the dense index of a PM (its position in PMs()).
func (inv *Inventory) PMIndex(id model.PMID) (int, bool) {
	i, ok := inv.pmByID[id]
	return i, ok
}

// VMIndex returns the dense index of a VM (its position in VMs()).
func (inv *Inventory) VMIndex(id model.VMID) (int, bool) {
	i, ok := inv.vmByID[id]
	return i, ok
}

// PMAt returns the PM spec at a dense index.
func (inv *Inventory) PMAt(i int) model.PMSpec { return inv.pms[i] }

// VMAt returns the VM spec at a dense index.
func (inv *Inventory) VMAt(i int) model.VMSpec { return inv.vms[i] }

// PMsOfDC returns the PMs of one datacenter, in stable order.
func (inv *Inventory) PMsOfDC(dc model.DCID) []model.PMID {
	return inv.pmsOfDC[dc]
}

// DCOf returns the datacenter of a PM, or -1 for NoPM / unknown hosts.
func (inv *Inventory) DCOf(pm model.PMID) model.DCID {
	if i, ok := inv.pmByID[pm]; ok {
		return inv.pms[i].DC
	}
	return -1
}

// State is the mutable placement state of the fleet. It tracks which VMs
// sit on which PMs and offers the occupancy arithmetic every scheduler
// needs. Besides the immutable Inventory population, a State accepts
// dynamically admitted VMs (AddVM/RemoveVM) — the workload-lifecycle
// subsystem churns the VM set while the PM fleet stays fixed. State is
// not safe for concurrent mutation.
type State struct {
	inv       *Inventory
	placement model.Placement
	guests    map[model.PMID][]model.VMID
	// extra holds dynamically admitted VMs (never part of the Inventory).
	extra map[model.VMID]model.VMSpec
}

// NewState builds a state with every VM unplaced.
func NewState(inv *Inventory) *State {
	s := &State{
		inv:       inv,
		placement: make(model.Placement, len(inv.vms)),
		guests:    make(map[model.PMID][]model.VMID, len(inv.pms)),
	}
	for _, vm := range inv.vms {
		s.placement[vm.ID] = model.NoPM
	}
	return s
}

// Inventory returns the static fleet description.
func (s *State) Inventory() *Inventory { return s.inv }

// Placement returns a copy of the current VM -> PM map.
func (s *State) Placement() model.Placement { return s.placement.Clone() }

// HostOf returns the PM hosting a VM (NoPM if unplaced).
func (s *State) HostOf(vm model.VMID) model.PMID {
	pm, ok := s.placement[vm]
	if !ok {
		return model.NoPM
	}
	return pm
}

// DCOfVM returns the datacenter currently hosting the VM, or -1.
func (s *State) DCOfVM(vm model.VMID) model.DCID {
	return s.inv.DCOf(s.HostOf(vm))
}

// GuestsOf returns the VMs on one PM in stable (sorted) order.
func (s *State) GuestsOf(pm model.PMID) []model.VMID {
	gs := s.guests[pm]
	out := append([]model.VMID(nil), gs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddVM registers a dynamically admitted VM (one that is not part of the
// immutable Inventory) so placement operations accept it. The VM starts
// unplaced. IDs must be unique across the inventory and every VM ever
// added but not yet removed.
func (s *State) AddVM(spec model.VMSpec) error {
	if _, ok := s.inv.vmByID[spec.ID]; ok {
		return fmt.Errorf("cluster: VM %v already in inventory", spec.ID)
	}
	if _, ok := s.extra[spec.ID]; ok {
		return fmt.Errorf("cluster: VM %v already admitted", spec.ID)
	}
	if s.extra == nil {
		s.extra = make(map[model.VMID]model.VMSpec)
	}
	s.extra[spec.ID] = spec
	s.placement[spec.ID] = model.NoPM
	return nil
}

// RemoveVM evicts and forgets a dynamically added VM. Inventory VMs are
// permanent and cannot be removed.
func (s *State) RemoveVM(id model.VMID) error {
	if _, ok := s.extra[id]; !ok {
		return fmt.Errorf("cluster: VM %v is not a dynamic VM", id)
	}
	if pm := s.placement[id]; pm != model.NoPM {
		s.guests[pm] = removeVM(s.guests[pm], id)
	}
	delete(s.placement, id)
	delete(s.extra, id)
	return nil
}

// DynamicVM returns the spec of a dynamically added VM.
func (s *State) DynamicVM(id model.VMID) (model.VMSpec, bool) {
	spec, ok := s.extra[id]
	return spec, ok
}

// knownVM reports whether a VM is in the inventory or dynamically added.
func (s *State) knownVM(vm model.VMID) bool {
	if _, ok := s.inv.vmByID[vm]; ok {
		return true
	}
	_, ok := s.extra[vm]
	return ok
}

// Place moves a VM onto a PM (or NoPM to evict it). It returns an error
// for unknown VMs or hosts; capacity is not enforced here because
// oversubscription is a legal (if painful) state the occupation function
// resolves.
func (s *State) Place(vm model.VMID, pm model.PMID) error {
	if !s.knownVM(vm) {
		return fmt.Errorf("cluster: unknown VM %v", vm)
	}
	if pm != model.NoPM {
		if _, ok := s.inv.pmByID[pm]; !ok {
			return fmt.Errorf("cluster: unknown PM %v", pm)
		}
	}
	old := s.placement[vm]
	if old == pm {
		return nil
	}
	if old != model.NoPM {
		s.guests[old] = removeVM(s.guests[old], vm)
	}
	s.placement[vm] = pm
	if pm != model.NoPM {
		s.guests[pm] = append(s.guests[pm], vm)
	}
	return nil
}

// Apply replaces the whole placement, returning the VMs that moved.
func (s *State) Apply(p model.Placement) ([]model.VMID, error) {
	moved := s.placement.Diff(p)
	for vm, pm := range p {
		if err := s.Place(vm, pm); err != nil {
			return nil, err
		}
	}
	return moved, nil
}

// ActivePMs returns the hosts with at least one guest, in stable order.
func (s *State) ActivePMs() []model.PMID {
	var out []model.PMID
	for _, pm := range s.inv.pms {
		if len(s.guests[pm.ID]) > 0 {
			out = append(out, pm.ID)
		}
	}
	return out
}

// removeVM deletes one VM from a guest list preserving order.
func removeVM(gs []model.VMID, vm model.VMID) []model.VMID {
	for i, g := range gs {
		if g == vm {
			return append(gs[:i], gs[i+1:]...)
		}
	}
	return gs
}

// Occupation resolves how one PM's capacity splits among its guests given
// each guest's required resources — fOccupation of Figure 3. When the sum
// of requirements exceeds capacity, every guest receives a proportional
// share per resource dimension (processor-sharing semantics); otherwise
// each guest receives exactly what it requires.
func Occupation(capacity model.Resources, required map[model.VMID]model.Resources) map[model.VMID]model.Resources {
	grants := make(map[model.VMID]model.Resources, len(required))
	var sum model.Resources
	for _, r := range required {
		sum = sum.Add(r)
	}
	shareCPU := shareFactor(sum.CPUPct, capacity.CPUPct)
	shareMem := shareFactor(sum.MemMB, capacity.MemMB)
	shareBW := shareFactor(sum.BWMbps, capacity.BWMbps)
	for vm, r := range required {
		grants[vm] = model.Resources{
			CPUPct: r.CPUPct * shareCPU,
			MemMB:  r.MemMB * shareMem,
			BWMbps: r.BWMbps * shareBW,
		}
	}
	return grants
}

func shareFactor(demand, capacity float64) float64 {
	if demand <= capacity || demand <= 0 {
		return 1
	}
	return capacity / demand
}

// ShareFactors returns the per-dimension proportional-sharing factors of
// fOccupation for a total demand against a capacity: 1 while the demand
// fits, capacity/demand once it oversubscribes. It is the allocation-free
// core of Occupation for callers that keep requirements in dense slices.
func ShareFactors(capacity, demand model.Resources) (cpu, mem, bw float64) {
	return shareFactor(demand.CPUPct, capacity.CPUPct),
		shareFactor(demand.MemMB, capacity.MemMB),
		shareFactor(demand.BWMbps, capacity.BWMbps)
}

// FreeCapacity returns how much of a PM's capacity remains after granting
// the given requirements (clamped at zero when oversubscribed).
func FreeCapacity(capacity model.Resources, required map[model.VMID]model.Resources) model.Resources {
	var sum model.Resources
	for _, r := range required {
		sum = sum.Add(r)
	}
	free := capacity.Sub(sum)
	return free.Max(model.Resources{})
}
