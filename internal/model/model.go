// Package model defines the shared domain vocabulary of the multi-datacenter
// management system: identifiers, resource vectors, load descriptions and the
// service-level agreement terms that every other package speaks.
//
// The package has no dependencies so that substrates (power, network,
// queueing, ...) and decision makers (sched, core) can share types without
// import cycles.
package model

import (
	"fmt"
	"time"
)

// Tick is the simulation time quantum. The simulator advances in whole
// ticks; the paper's experiments use one-minute ticks with a scheduling
// round every ten minutes over a 24-hour horizon.
const Tick = time.Minute

// TicksPerHour is the number of simulation ticks in one hour.
const TicksPerHour = int(time.Hour / Tick)

// TicksPerDay is the number of simulation ticks in 24 hours.
const TicksPerDay = 24 * TicksPerHour

// VMID identifies a virtual machine (a hosted web-service).
type VMID int

// PMID identifies a physical machine across the whole multi-DC system.
type PMID int

// DCID identifies a datacenter.
type DCID int

// LocationID identifies a geographic client-load source. In the paper each
// datacenter doubles as the ISP access point for the clients of its region,
// so LocationIDs and DCIDs are parallel index spaces.
type LocationID int

// NoPM marks a VM that is not placed on any physical machine.
const NoPM PMID = -1

func (id VMID) String() string { return fmt.Sprintf("vm%d", int(id)) }
func (id PMID) String() string { return fmt.Sprintf("pm%d", int(id)) }
func (id DCID) String() string { return fmt.Sprintf("dc%d", int(id)) }

// Resources is a vector of the three resources the paper's model tracks per
// physical machine: CPU, memory and network bandwidth.
//
// CPU is expressed in percent of one core, so a 4-core Atom offers 400.
// Memory is in megabytes. Bandwidth is in megabits per second.
type Resources struct {
	CPUPct float64 // percent of one core (one core = 100)
	MemMB  float64 // megabytes
	BWMbps float64 // megabits per second
}

// Add returns the element-wise sum r + s.
func (r Resources) Add(s Resources) Resources {
	return Resources{r.CPUPct + s.CPUPct, r.MemMB + s.MemMB, r.BWMbps + s.BWMbps}
}

// Sub returns the element-wise difference r - s.
func (r Resources) Sub(s Resources) Resources {
	return Resources{r.CPUPct - s.CPUPct, r.MemMB - s.MemMB, r.BWMbps - s.BWMbps}
}

// Scale returns r with every component multiplied by k.
func (r Resources) Scale(k float64) Resources {
	return Resources{r.CPUPct * k, r.MemMB * k, r.BWMbps * k}
}

// Max returns the element-wise maximum of r and s.
func (r Resources) Max(s Resources) Resources {
	return Resources{maxF(r.CPUPct, s.CPUPct), maxF(r.MemMB, s.MemMB), maxF(r.BWMbps, s.BWMbps)}
}

// Min returns the element-wise minimum of r and s.
func (r Resources) Min(s Resources) Resources {
	return Resources{minF(r.CPUPct, s.CPUPct), minF(r.MemMB, s.MemMB), minF(r.BWMbps, s.BWMbps)}
}

// Clamp returns r with every component clamped to [0, limit component].
func (r Resources) Clamp(limit Resources) Resources {
	return r.Max(Resources{}).Min(limit)
}

// FitsIn reports whether r fits within capacity c component-wise.
func (r Resources) FitsIn(c Resources) bool {
	return r.CPUPct <= c.CPUPct && r.MemMB <= c.MemMB && r.BWMbps <= c.BWMbps
}

// NonNegative reports whether every component of r is >= 0.
func (r Resources) NonNegative() bool {
	return r.CPUPct >= 0 && r.MemMB >= 0 && r.BWMbps >= 0
}

// Dominant returns the largest utilisation fraction of r against capacity c,
// the quantity Ordered Best-Fit sorts VMs by ("order_by_demand").
func (r Resources) Dominant(c Resources) float64 {
	d := 0.0
	if c.CPUPct > 0 {
		d = maxF(d, r.CPUPct/c.CPUPct)
	}
	if c.MemMB > 0 {
		d = maxF(d, r.MemMB/c.MemMB)
	}
	if c.BWMbps > 0 {
		d = maxF(d, r.BWMbps/c.BWMbps)
	}
	return d
}

func (r Resources) String() string {
	return fmt.Sprintf("{cpu %.1f%% mem %.0fMB bw %.1fMbps}", r.CPUPct, r.MemMB, r.BWMbps)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Load describes the request stream arriving at one VM from one client
// location during one tick: the per-source triple the paper monitors
// (requests per second, average bytes per request, average no-stress
// computing time per request).
type Load struct {
	RPS        float64 // requests per second
	BytesInReq float64 // average request payload, bytes
	BytesOutRq float64 // average reply payload, bytes
	CPUTimeReq float64 // average no-stress CPU seconds per request
}

// IsZero reports whether the load carries no requests.
func (l Load) IsZero() bool { return l.RPS <= 0 }

// Scale returns l with the request rate multiplied by k; per-request
// characteristics are intensive quantities and do not change.
func (l Load) Scale(k float64) Load {
	l.RPS *= k
	return l
}

// LoadVector is the per-source load seen by one VM in one tick, indexed by
// LocationID.
type LoadVector []Load

// Total aggregates a load vector into a single stream: request rates add,
// per-request characteristics combine as request-weighted means.
func (lv LoadVector) Total() Load {
	var t Load
	for _, l := range lv {
		if l.RPS <= 0 {
			continue
		}
		t.BytesInReq += l.RPS * l.BytesInReq
		t.BytesOutRq += l.RPS * l.BytesOutRq
		t.CPUTimeReq += l.RPS * l.CPUTimeReq
		t.RPS += l.RPS
	}
	if t.RPS > 0 {
		t.BytesInReq /= t.RPS
		t.BytesOutRq /= t.RPS
		t.CPUTimeReq /= t.RPS
	}
	return t
}

// Clone returns a deep copy of the vector.
func (lv LoadVector) Clone() LoadVector {
	out := make(LoadVector, len(lv))
	copy(out, lv)
	return out
}

// DominantSource returns the location contributing the most requests and its
// share of the total request rate. It returns (-1, 0) for an empty vector.
func (lv LoadVector) DominantSource() (LocationID, float64) {
	best, bestRPS, total := LocationID(-1), 0.0, 0.0
	for loc, l := range lv {
		total += l.RPS
		if l.RPS > bestRPS {
			bestRPS = l.RPS
			best = LocationID(loc)
		}
	}
	if total <= 0 {
		return -1, 0
	}
	return best, bestRPS / total
}

// SLATerms captures the contract of Section III-C: full fulfilment up to
// RT0, zero beyond Alpha*RT0, linear in between.
type SLATerms struct {
	RT0   float64 // baseline response time, seconds
	Alpha float64 // tolerance margin (paper: 10)
}

// DefaultSLATerms are the values used throughout the paper's evaluation:
// RT0 = 0.1 s, alpha = 10.
var DefaultSLATerms = SLATerms{RT0: 0.1, Alpha: 10}

// Fulfilment evaluates the piecewise SLA(RT) function of Section III-C.
func (t SLATerms) Fulfilment(rt float64) float64 {
	switch {
	case rt <= t.RT0:
		return 1
	case rt >= t.Alpha*t.RT0:
		return 0
	default:
		return 1 - (rt-t.RT0)/((t.Alpha-1)*t.RT0)
	}
}

// VMSpec is the static description of a virtual machine: its image (for
// migration cost), its memory floor, and its contract.
type VMSpec struct {
	ID          VMID
	Name        string
	ImageSizeGB float64  // VM image size, used for migration duration
	BaseMemMB   float64  // resident memory with zero load
	MaxMemMB    float64  // memory ceiling of the VM container
	Terms       SLATerms // response-time contract
	PriceEURh   float64  // customer price per VM-hour at full SLA
	HomeDC      DCID     // the customer-selected (initial) datacenter
}

// PMSpec is the static description of a physical machine.
type PMSpec struct {
	ID       PMID
	DC       DCID
	Capacity Resources
	Cores    int // number of physical cores (Atom: 4)
}

// Placement maps every VM to the PM hosting it (or NoPM). It is the
// "Schedule[PM,VM]" binary matrix of Figure 3 in sparse form.
type Placement map[VMID]PMID

// Clone returns a copy of the placement.
func (p Placement) Clone() Placement {
	out := make(Placement, len(p))
	for vm, pm := range p {
		out[vm] = pm
	}
	return out
}

// Equal reports whether two placements map the exact same VMs to the exact
// same hosts.
func (p Placement) Equal(q Placement) bool {
	if len(p) != len(q) {
		return false
	}
	for vm, pm := range p {
		if q2, ok := q[vm]; !ok || q2 != pm {
			return false
		}
	}
	return true
}

// Diff returns the set of VMs whose host differs between p (old) and q
// (new), i.e. the migrations q implies. VMs present in only one of the two
// maps count as moved.
func (p Placement) Diff(q Placement) []VMID {
	var moved []VMID
	for vm, newPM := range q {
		if oldPM, ok := p[vm]; !ok || oldPM != newPM {
			moved = append(moved, vm)
		}
	}
	for vm := range p {
		if _, ok := q[vm]; !ok {
			moved = append(moved, vm)
		}
	}
	return moved
}
