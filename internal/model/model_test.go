package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResourcesAddSub(t *testing.T) {
	a := Resources{CPUPct: 100, MemMB: 512, BWMbps: 10}
	b := Resources{CPUPct: 50, MemMB: 256, BWMbps: 5}
	sum := a.Add(b)
	if sum != (Resources{150, 768, 15}) {
		t.Fatalf("Add = %v", sum)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Sub = %v, want %v", got, a)
	}
}

func TestResourcesScale(t *testing.T) {
	a := Resources{CPUPct: 100, MemMB: 512, BWMbps: 10}
	if got := a.Scale(0.5); got != (Resources{50, 256, 5}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Scale(0); got != (Resources{}) {
		t.Fatalf("Scale(0) = %v", got)
	}
}

func TestResourcesFitsIn(t *testing.T) {
	cap := Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}
	tests := []struct {
		r    Resources
		want bool
	}{
		{Resources{400, 4096, 100}, true},
		{Resources{0, 0, 0}, true},
		{Resources{401, 0, 0}, false},
		{Resources{0, 4097, 0}, false},
		{Resources{0, 0, 100.5}, false},
	}
	for _, tc := range tests {
		if got := tc.r.FitsIn(cap); got != tc.want {
			t.Errorf("FitsIn(%v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestResourcesDominant(t *testing.T) {
	cap := Resources{CPUPct: 400, MemMB: 4096, BWMbps: 100}
	r := Resources{CPUPct: 200, MemMB: 1024, BWMbps: 90}
	// bw share 0.9 dominates cpu 0.5 and mem 0.25.
	if got := r.Dominant(cap); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("Dominant = %v, want 0.9", got)
	}
	if got := (Resources{}).Dominant(cap); got != 0 {
		t.Fatalf("Dominant(zero) = %v", got)
	}
	// Zero capacity components are ignored rather than dividing by zero.
	if got := r.Dominant(Resources{CPUPct: 400}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Dominant with partial capacity = %v", got)
	}
}

func TestResourcesClamp(t *testing.T) {
	lim := Resources{CPUPct: 400, MemMB: 1024, BWMbps: 10}
	r := Resources{CPUPct: -5, MemMB: 2048, BWMbps: 5}
	got := r.Clamp(lim)
	want := Resources{CPUPct: 0, MemMB: 1024, BWMbps: 5}
	if got != want {
		t.Fatalf("Clamp = %v, want %v", got, want)
	}
}

func TestResourcesAddCommutativeProperty(t *testing.T) {
	f := func(a, b Resources) bool {
		x, y := a.Add(b), b.Add(a)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesMinMaxProperty(t *testing.T) {
	f := func(a, b Resources) bool {
		mn, mx := a.Min(b), a.Max(b)
		return mn.CPUPct <= mx.CPUPct && mn.MemMB <= mx.MemMB && mn.BWMbps <= mx.BWMbps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSLAFulfilmentShape(t *testing.T) {
	terms := SLATerms{RT0: 0.1, Alpha: 10}
	tests := []struct {
		rt   float64
		want float64
	}{
		{0, 1},
		{0.05, 1},
		{0.1, 1},               // exactly RT0: full
		{1.0, 0},               // alpha*RT0: zero
		{2.0, 0},               // beyond: zero
		{0.55, 0.5},            // midpoint of [0.1, 1.0]
		{0.1 + 0.9*0.25, 0.75}, // quarter of the way down
	}
	for _, tc := range tests {
		if got := terms.Fulfilment(tc.rt); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Fulfilment(%v) = %v, want %v", tc.rt, got, tc.want)
		}
	}
}

func TestSLAFulfilmentMonotoneProperty(t *testing.T) {
	terms := DefaultSLATerms
	f := func(a, b float64) bool {
		ra := math.Abs(a)
		rb := math.Abs(b)
		if ra > rb {
			ra, rb = rb, ra
		}
		fa, fb := terms.Fulfilment(ra), terms.Fulfilment(rb)
		return fa >= fb && fa <= 1 && fb >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadVectorTotal(t *testing.T) {
	lv := LoadVector{
		{RPS: 10, BytesInReq: 100, BytesOutRq: 1000, CPUTimeReq: 0.01},
		{RPS: 30, BytesInReq: 200, BytesOutRq: 2000, CPUTimeReq: 0.02},
		{}, // silent source
	}
	tot := lv.Total()
	if tot.RPS != 40 {
		t.Fatalf("RPS = %v", tot.RPS)
	}
	// Request-weighted means: (10*100+30*200)/40 = 175.
	if math.Abs(tot.BytesInReq-175) > 1e-9 {
		t.Fatalf("BytesInReq = %v", tot.BytesInReq)
	}
	if math.Abs(tot.CPUTimeReq-0.0175) > 1e-9 {
		t.Fatalf("CPUTimeReq = %v", tot.CPUTimeReq)
	}
}

func TestLoadVectorTotalEmpty(t *testing.T) {
	if tot := (LoadVector{}).Total(); !tot.IsZero() {
		t.Fatalf("empty vector total = %+v", tot)
	}
}

func TestLoadVectorDominantSource(t *testing.T) {
	lv := LoadVector{{RPS: 5}, {RPS: 20}, {RPS: 15}}
	loc, share := lv.DominantSource()
	if loc != 1 {
		t.Fatalf("dominant = %v", loc)
	}
	if math.Abs(share-0.5) > 1e-9 {
		t.Fatalf("share = %v", share)
	}
	loc, share = (LoadVector{{}, {}}).DominantSource()
	if loc != -1 || share != 0 {
		t.Fatalf("empty dominant = %v %v", loc, share)
	}
}

func TestPlacementCloneEqualDiff(t *testing.T) {
	p := Placement{0: 1, 1: 2, 2: NoPM}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[1] = 3
	if p.Equal(q) {
		t.Fatal("mutated clone still equal")
	}
	moved := p.Diff(q)
	if len(moved) != 1 || moved[0] != 1 {
		t.Fatalf("Diff = %v", moved)
	}
}

func TestPlacementDiffDisjointKeys(t *testing.T) {
	p := Placement{0: 1}
	q := Placement{1: 2}
	moved := p.Diff(q)
	if len(moved) != 2 {
		t.Fatalf("Diff across disjoint keys = %v", moved)
	}
}

func TestLoadScale(t *testing.T) {
	l := Load{RPS: 10, BytesInReq: 100, BytesOutRq: 200, CPUTimeReq: 0.01}
	s := l.Scale(2)
	if s.RPS != 20 || s.BytesInReq != 100 || s.BytesOutRq != 200 || s.CPUTimeReq != 0.01 {
		t.Fatalf("Scale = %+v", s)
	}
}
