package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// formatFloat renders a metric value in Prometheus text format with
// round-trip precision.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes every registered metric in Prometheus text
// exposition format, families sorted by name, histogram buckets
// cumulative. The output for a fixed set of recorded values is
// byte-stable, which is what the golden tests pin.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, m := range r.sorted() {
		typ := "gauge"
		switch m.kind {
		case counterKind:
			typ = "counter"
		case histogramKind:
			typ = "histogram"
		}
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typ)
		switch m.kind {
		case counterKind:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.counter.Value())
		case gaugeKind:
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		case gaugeFuncKind:
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.fn()))
		case histogramKind:
			h := m.hist
			var cum uint64
			for i, le := range h.les {
				cum += h.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, le, cum)
			}
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, formatFloat(h.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, h.Count())
		}
	}
	return bw.Flush()
}

// Handler returns the GET /metrics endpoint over the registry.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client hangup is its problem
	})
}

// Sample is one parsed exposition line: a metric name (including any
// _bucket/_sum/_count suffix), the raw label block ("" when absent) and
// the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Family groups the parsed samples of one metric family with its
// declared TYPE (empty when the exposition carried none).
type Family struct {
	Name    string
	Type    string
	Samples []Sample
}

// ParseText parses Prometheus text exposition — the subset this package
// emits plus enough slack for other emitters (labels are kept opaque).
// It exists so `mdcsim serve -report` can summarise a live /metrics
// without a scraper. Families come back sorted by name.
func ParseText(r io.Reader) ([]Family, error) {
	types := make(map[string]string)
	samples := make(map[string][]Sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		// name[{labels}] value
		name := line
		labels := ""
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("obs: malformed sample line %q", line)
			}
			name, labels, rest = line[:i], line[i+1:j], line[j+1:]
		} else if i := strings.IndexAny(line, " \t"); i >= 0 {
			name, rest = line[:i], line[i:]
		} else {
			return nil, fmt.Errorf("obs: malformed sample line %q", line)
		}
		val := strings.Fields(rest)
		if len(val) == 0 {
			return nil, fmt.Errorf("obs: sample %q has no value", name)
		}
		v, err := strconv.ParseFloat(val[0], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: sample %q: %w", name, err)
		}
		fam := familyOf(name)
		samples[fam] = append(samples[fam], Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Family, 0, len(names))
	for _, n := range names {
		out = append(out, Family{Name: n, Type: types[n], Samples: samples[n]})
	}
	return out, nil
}

// familyOf strips the histogram sample suffixes off a sample name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

// Histogram reconstructs (count, sum) from a parsed histogram family's
// _count/_sum samples; ok is false when the family is not a histogram.
func (f *Family) Histogram() (count uint64, sum float64, ok bool) {
	var haveCount, haveSum bool
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_count":
			count, haveCount = uint64(s.Value), true
		case f.Name + "_sum":
			sum, haveSum = s.Value, true
		}
	}
	return count, sum, haveCount && haveSum
}

// Value returns the single-sample value of a counter/gauge family; ok is
// false for histograms or multi-sample families.
func (f *Family) Value() (float64, bool) {
	if len(f.Samples) != 1 || f.Samples[0].Name != f.Name {
		return 0, false
	}
	return f.Samples[0].Value, true
}
