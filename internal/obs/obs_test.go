package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeHistogramSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("hist sum = %g, want %g", got, want)
	}
	if got, want := h.Mean(), (0.005+0.05+0.05+0.5+5)/5; got != want {
		t.Fatalf("hist mean = %g, want %g", got, want)
	}
}

func TestNilHandlesNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if tr.SampleTick(0) || tr.SampleNext() || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be fully off")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second")
	if a != b {
		t.Fatal("re-registering a name must return the existing handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	r.Gauge("dup_total", "clash")
}

// TestPrometheusExpositionGolden pins the exposition byte-for-byte: a
// fixed sequence of records must always render the same text.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	// Registered out of name order on purpose: exposition sorts.
	h := r.Histogram("zz_lat_seconds", "latency", []float64{0.25, 0.5})
	c := r.Counter("aa_events_total", "events seen", WallClock())
	g := r.Gauge("mm_depth", "queue depth")
	r.GaugeFunc("nn_live", "liveness", func() float64 { return 3 })
	c.Add(7)
	g.Set(1.5)
	h.Observe(0.1)
	h.Observe(0.3)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_events_total events seen
# TYPE aa_events_total counter
aa_events_total 7
# HELP mm_depth queue depth
# TYPE mm_depth gauge
mm_depth 1.5
# HELP nn_live liveness
# TYPE nn_live gauge
nn_live 3
# HELP zz_lat_seconds latency
# TYPE zz_lat_seconds histogram
zz_lat_seconds_bucket{le="0.25"} 1
zz_lat_seconds_bucket{le="0.5"} 2
zz_lat_seconds_bucket{le="+Inf"} 3
zz_lat_seconds_sum 9.4
zz_lat_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParseTextRoundTrip feeds the emitted exposition back through
// ParseText and checks families, values and histogram reconstruction.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks_total", "ticks")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	c.Add(41)
	g.Set(2)
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["ticks_total"]; !ok || f.Type != "counter" {
		t.Fatalf("ticks_total family missing or mistyped: %+v", f)
	} else if v, ok := f.Value(); !ok || v != 41 {
		t.Fatalf("ticks_total = %g ok=%t, want 41", v, ok)
	}
	if f, ok := byName["depth"]; !ok || f.Type != "gauge" {
		t.Fatalf("depth family missing or mistyped: %+v", f)
	}
	f, ok := byName["lat_seconds"]
	if !ok || f.Type != "histogram" {
		t.Fatalf("lat_seconds family missing or mistyped: %+v", f)
	}
	count, sum, ok := f.Histogram()
	if !ok || count != 2 || sum != 0.55 {
		t.Fatalf("lat_seconds histogram = (%d, %g, %t), want (2, 0.55, true)", count, sum, ok)
	}
	if _, ok := f.Value(); ok {
		t.Fatal("histogram family must not report a scalar Value")
	}
}

func TestDeterministicSnapshotExcludesWallClock(t *testing.T) {
	r := NewRegistry()
	r.Counter("det_total", "deterministic").Add(3)
	r.Gauge("det_gauge", "deterministic").Set(7)
	r.Counter("wall_total", "wall-clock", WallClock()).Add(9)
	r.Histogram("lat_seconds", "latency", nil, WallClock()).Observe(0.1)
	r.GaugeFunc("fn_gauge", "scrape-time", func() float64 { return 1 })

	snap := r.DeterministicSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v, want exactly det_total and det_gauge", snap)
	}
	if snap["det_total"] != 3 || snap["det_gauge"] != 7 {
		t.Fatalf("snapshot values wrong: %v", snap)
	}
}

// TestRecordZeroAlloc pins the hot-path contract: counter, gauge and
// histogram records allocate nothing.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.25)
		g.Add(0.5)
		h.Observe(0.003)
	})
	if allocs != 0 {
		t.Fatalf("metric records allocate %.1f objects, want 0", allocs)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if n := len(DefBuckets()); n != 10 {
		t.Fatalf("DefBuckets length = %d, want 10", n)
	}
}
