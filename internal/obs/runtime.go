package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime registers the Go runtime's health gauges: goroutine
// count, heap occupancy, GC cycle count and the last GC pause. All are
// GaugeFuncs evaluated at scrape time — ReadMemStats runs only when
// someone actually looks, never on the engine's hot path — and one
// MemStats read is shared across the gauges of a scrape burst via a
// short-lived mutex-guarded cache.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	var mu sync.Mutex
	var ms runtime.MemStats
	var at time.Time
	read := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if time.Since(at) > 100*time.Millisecond {
				runtime.ReadMemStats(&ms)
				at = time.Now()
			}
			return f(&ms)
		}
	}
	r.GaugeFunc("mdcsim_runtime_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("mdcsim_runtime_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("mdcsim_runtime_heap_sys_bytes",
		"Heap memory obtained from the OS.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.GaugeFunc("mdcsim_runtime_gc_cycles_total",
		"Completed GC cycles.",
		read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.GaugeFunc("mdcsim_runtime_gc_last_pause_seconds",
		"Most recent GC stop-the-world pause.",
		read(func(m *runtime.MemStats) float64 {
			if m.NumGC == 0 {
				return 0
			}
			return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
		}))
}
