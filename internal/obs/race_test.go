package obs

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrentRecordAndScrape hammers the registry from
// parallel writers (counters, gauges, histograms), parallel registrars
// (idempotent re-registration) and parallel scrapers, under -race in CI.
func TestRegistryConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	g := r.Gauge("level", "level")
	h := r.Histogram("lat_seconds", "latency", nil)

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%13) * 0.001)
				if i%100 == 0 {
					// Re-registration races against scrapes and records.
					if got := r.Counter("hits_total", "hits"); got != c {
						t.Error("re-registration returned a different handle")
						return
					}
				}
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				_ = r.DeterministicSnapshot()
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Fatalf("gauge = %g, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestTracerConcurrent drives SampleNext/Record from many goroutines
// while another exports, exercising the tracer's locking under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128, 2)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if tr.SampleNext() {
					tr.Record("req", "serve", 1, tr.epoch, 0, true)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := tr.WriteChromeTrace(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if len(tr.Spans()) != 128 {
		t.Fatalf("ring should be full at 128 spans, have %d", len(tr.Spans()))
	}
}
