package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed traced phase: a name, a category, a logical
// thread row (tid), a unique ID and wall-clock start/duration relative
// to the tracer's epoch.
type Span struct {
	Name    string
	Cat     string
	TID     int
	ID      uint64
	StartNS int64
	DurNS   int64
}

// Tracer records span-style phase traces into a fixed-size ring buffer,
// exportable as Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// Tracing is off by default — a nil Tracer no-ops on every method — and
// sampled when on: SampleTick(tick) admits one tick in every Sample, and
// spans recorded between two SampleTick calls belong to the admitted
// tick (or are dropped when it was not). Request-side callers use
// SampleNext, an independent every-Nth admission. Sampling decisions are
// functions of tick numbers and arrival counts, never of the clock, and
// no traced quantity feeds back into placement — which is why tracing
// cannot perturb determinism contracts.
type Tracer struct {
	sample int
	epoch  time.Time

	reqN atomic.Uint64 // SampleNext arrival counter

	mu      sync.Mutex
	spans   []Span // ring buffer, capacity fixed at construction
	next    int
	wrapped bool
	nextID  uint64
	active  bool // current tick admitted by SampleTick
	dropped uint64
}

// NewTracer builds a tracer holding up to capacity spans (older spans
// are overwritten), admitting one tick in every sample (minimum 1).
func NewTracer(capacity, sample int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	if sample <= 0 {
		sample = 1
	}
	return &Tracer{sample: sample, epoch: time.Now(), spans: make([]Span, 0, capacity)}
}

// SampleTick decides whether the given tick is traced and reports the
// decision; Record calls until the next SampleTick follow it.
func (t *Tracer) SampleTick(tick int) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	t.active = tick%t.sample == 0
	t.mu.Unlock()
	return t.active
}

// SampleNext is the request-side admission: true for one arrival in
// every sample, decided by an atomic counter so concurrent HTTP
// handlers can call it without coordination.
func (t *Tracer) SampleNext() bool {
	if t == nil {
		return false
	}
	return t.reqN.Add(1)%uint64(t.sample) == 1 || t.sample == 1
}

// Record stores one completed span on the current tick's timeline. When
// the current tick was not admitted by SampleTick the span is counted as
// dropped instead. forced bypasses the tick gate — the request path uses
// it after winning SampleNext.
func (t *Tracer) Record(name, cat string, tid int, start time.Time, dur time.Duration, forced bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.active && !forced {
		t.dropped++
		return
	}
	t.nextID++
	sp := Span{
		Name: name, Cat: cat, TID: tid, ID: t.nextID,
		StartNS: start.Sub(t.epoch).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
	}
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, sp)
		return
	}
	t.spans[t.next] = sp
	t.next = (t.next + 1) % cap(t.spans)
	t.wrapped = true
}

// Spans returns the recorded spans in start order (a copy).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, 0, len(t.spans))
	if t.wrapped {
		out = append(out, t.spans[t.next:]...)
		out = append(out, t.spans[:t.next]...)
	} else {
		out = append(out, t.spans...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// Dropped returns how many spans fell outside sampled ticks.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteChromeTrace writes the recorded spans as a Chrome trace-event
// JSON array (complete "X" events, microsecond timestamps) — loadable in
// chrome://tracing or Perfetto for flamegraph-style inspection.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	for i, sp := range t.Spans() {
		if i > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"X","pid":1,"tid":%d,"id":%d,"ts":%.3f,"dur":%.3f}`,
			sp.Name, sp.Cat, sp.TID, sp.ID,
			float64(sp.StartNS)/1e3, float64(sp.DurNS)/1e3)
	}
	bw.WriteString("]\n")
	return bw.Flush()
}
