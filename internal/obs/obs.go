// Package obs is the reproduction's stdlib-only observability layer: a
// preallocated metrics registry whose hot-path record calls are
// allocation-free, Prometheus text-format exposition, and a sampled
// span tracer exportable as Chrome trace-event JSON.
//
// The registry contract has three rules:
//
//  1. Register once, record forever: Counter/Gauge/Histogram return
//     preallocated handles whose Inc/Add/Set/Observe methods perform
//     only atomic operations — no allocation, no lock, no map lookup —
//     so the engine-tick and schedule-round zero-alloc contracts
//     survive instrumentation. Registration of an already-registered
//     name returns the existing handle, making wiring idempotent.
//
//  2. Nil is off: every record method no-ops on a nil receiver, so a
//     subsystem instruments unconditionally and the caller decides
//     whether a registry exists at all.
//
//  3. Deterministic vs wall-clock: metrics that measure wall time are
//     registered with the WallClock option and excluded from
//     DeterministicSnapshot, which is the only view allowed into
//     reproducible sweep output. Counters and gauges that are pure
//     functions of the event stream are deterministic and publishable.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil Counter records nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits.
// The zero value is ready; a nil Gauge records nothing.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (a CAS loop; still allocation-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: cumulative-on-read bucket
// counts, a total count and a sum. Buckets are fixed at registration so
// Observe is a short linear scan plus atomic adds — allocation-free.
// A nil Histogram records nothing.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	les    []string        // preformatted le labels, len(bounds)+1 ("+Inf" last)
	counts []atomic.Uint64 // per-bucket (non-cumulative) counts
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// ExpBuckets returns n upper bounds starting at start, each factor times
// the previous — the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefBuckets is the default latency bucket ladder (seconds): 10µs to
// ~2.6s in powers of four.
func DefBuckets() []float64 { return ExpBuckets(1e-5, 4, 10) }

// metricKind discriminates the registry's entries.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

// metric is one registered family (all families here are unlabelled
// single series, except histograms which expand into bucket series).
type metric struct {
	name      string
	help      string
	kind      metricKind
	wallClock bool

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Option tunes a registration.
type Option func(*metric)

// WallClock marks a metric as measuring wall time (or any other
// run-to-run nondeterministic quantity): it is exposed on /metrics but
// excluded from DeterministicSnapshot, so it can never leak into
// reproducible sweep output.
func WallClock() Option { return func(m *metric) { m.wallClock = true } }

// Registry holds registered metrics. Registration takes a lock;
// recording through the returned handles never does. A nil Registry
// returns nil handles from every constructor, which record nothing —
// "no registry" and "metrics off" are the same spelling.
type Registry struct {
	mu     sync.RWMutex
	order  []*metric
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds m under its name, returning the existing entry when the
// name is already taken with the same kind. A kind clash panics: two
// subsystems disagreeing about a metric's type is a programming error.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.name]; ok {
		if old.kind != m.kind {
			panic("obs: metric " + m.name + " re-registered with a different type")
		}
		return old
	}
	r.byName[m.name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, opts ...Option) *Counter {
	if r == nil {
		return nil
	}
	m := &metric{name: name, help: help, kind: counterKind, counter: &Counter{}}
	for _, o := range opts {
		o(m)
	}
	return r.register(m).counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, opts ...Option) *Gauge {
	if r == nil {
		return nil
	}
	m := &metric{name: name, help: help, kind: gaugeKind, gauge: &Gauge{}}
	for _, o := range opts {
		o(m)
	}
	return r.register(m).gauge
}

// GaugeFunc registers a gauge evaluated at scrape time — for values that
// already live somewhere race-safe (channel lengths, runtime stats,
// atomic snapshots). GaugeFuncs are never part of DeterministicSnapshot:
// scrape timing is wall-clock by nature.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: gaugeFuncKind, wallClock: true, fn: fn})
}

// Histogram registers (or finds) a fixed-bucket histogram. bounds must
// be ascending; nil bounds get DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, opts ...Option) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		les:    make([]string, len(bounds)+1),
	}
	for i, b := range bounds {
		h.les[i] = formatFloat(b)
	}
	h.les[len(bounds)] = "+Inf"
	m := &metric{name: name, help: help, kind: histogramKind, hist: h}
	for _, o := range opts {
		o(m)
	}
	return r.register(m).hist
}

// sorted returns the registered metrics in name order (a fresh slice;
// exposition and snapshots are off the hot path).
func (r *Registry) sorted() []*metric {
	r.mu.RLock()
	out := append([]*metric(nil), r.order...)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// DeterministicSnapshot returns the current value of every metric whose
// value is a pure function of the event stream: counters and gauges not
// marked WallClock. Histograms and GaugeFuncs are excluded — the former
// because every histogram here measures latency, the latter because
// scrape-time values depend on when you look. This is the only registry
// view sweep cells may publish into their reproducible JSON/CSV output.
func (r *Registry) DeterministicSnapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, m := range r.sorted() {
		if m.wallClock {
			continue
		}
		switch m.kind {
		case counterKind:
			out[m.name] = float64(m.counter.Value())
		case gaugeKind:
			out[m.name] = m.gauge.Value()
		}
	}
	return out
}
