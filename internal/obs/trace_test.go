package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTracerTickSampling checks the deterministic tick gate: only spans
// recorded under an admitted tick land in the buffer; the rest are
// counted as dropped.
func TestTracerTickSampling(t *testing.T) {
	tr := NewTracer(64, 3)
	for tick := 0; tick < 9; tick++ {
		admitted := tr.SampleTick(tick)
		if want := tick%3 == 0; admitted != want {
			t.Fatalf("tick %d admitted=%t, want %t", tick, admitted, want)
		}
		tr.Record("tick", "engine", 0, tr.epoch.Add(time.Duration(tick)*time.Millisecond), time.Millisecond, false)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3 (ticks 0, 3, 6)", len(spans))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNS < spans[i-1].StartNS {
			t.Fatal("spans must come back in start order")
		}
		if spans[i].ID == spans[i-1].ID {
			t.Fatal("span IDs must be unique")
		}
	}
}

// TestTracerRingOverwrite: the buffer keeps the newest spans.
func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4, 1)
	tr.SampleTick(0)
	for i := 0; i < 10; i++ {
		tr.Record("s", "c", 0, tr.epoch.Add(time.Duration(i)*time.Second), time.Second, false)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if spans[0].StartNS != (6 * time.Second).Nanoseconds() {
		t.Fatalf("oldest surviving span starts at %dns, want 6s", spans[0].StartNS)
	}
}

// TestWriteChromeTrace validates the export is well-formed trace-event
// JSON with the fields chrome://tracing requires.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16, 1)
	tr.SampleTick(0)
	tr.Record("tick", "engine", 0, tr.epoch, 2*time.Millisecond, false)
	tr.Record("wal.fsync", "serve", 0, tr.epoch.Add(time.Millisecond), 500*time.Microsecond, false)

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("exported %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("event phase %v, want complete (X)", ev["ph"])
		}
		for _, k := range []string{"name", "cat", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
	}
	if events[1]["name"] != "wal.fsync" || events[1]["dur"].(float64) != 500 {
		t.Fatalf("second event wrong: %v", events[1])
	}
}
