package sweep

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/scenario"
)

// BenchmarkSweep measures matrix throughput (cells/sec) at 1, N/2 and N
// workers, where N is GOMAXPROCS — the scaling curve of the harness
// itself. The matrix avoids ML policies so the benchmark measures the
// fan-out, not one-time bundle training.
func BenchmarkSweep(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	workerCounts := []int{1}
	if half := n / 2; half > 1 {
		workerCounts = append(workerCounts, half)
	}
	if n > 1 {
		workerCounts = append(workerCounts, n)
	}
	m := Matrix{
		Scenarios: []string{scenario.IntraDC, scenario.MultiDC, scenario.FlashCrowd, scenario.HeteroFleet},
		Policies:  []string{"bf", "bf-ob"},
		Seeds:     []uint64{1, 2},
		Ticks:     60,
	}
	cellCount := len(m.Scenarios) * len(m.Policies) * len(m.Seeds)
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			m.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(m); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cellCount*b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}
