package sweep

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// bundleCache memoises trained predictor bundles per seed: cells of the
// same seed (and several experiments) share the same models, and training
// is the expensive step.
var bundleCache sync.Map // uint64 -> *predict.Bundle

// TrainedBundle returns the predictor bundle for a seed, training it on
// first use. The bundle is read-only after training and safe to share
// across concurrently running cells.
func TrainedBundle(seed uint64) (*predict.Bundle, error) {
	if v, ok := bundleCache.Load(seed); ok {
		return v.(*predict.Bundle), nil
	}
	h, err := predict.Collect(predict.DefaultHarvestOpts(seed))
	if err != nil {
		return nil, err
	}
	b, err := predict.Train(h, predict.DefaultTrainConfig(seed))
	if err != nil {
		return nil, err
	}
	actual, _ := bundleCache.LoadOrStore(seed, b)
	return actual.(*predict.Bundle), nil
}

// PolicyRun summarises one (scenario, policy, seed) execution — a sweep
// cell, or one run of a paper experiment.
type PolicyRun struct {
	Policy     string
	Scenario   string
	Seed       uint64
	Ticks      int
	AvgSLA     float64
	MinSLA     float64
	AvgWatts   float64
	AvgEuroH   float64 // profit per hour
	RevenueEUR float64
	EnergyEUR  float64
	PenaltyEUR float64
	Migrations int
	AvgActive  float64
	// Rounds counts executed scheduling rounds; RoundMS is their mean
	// wall-clock latency in milliseconds (not deterministic — excluded
	// from machine-readable sweep output).
	Rounds  int
	RoundMS float64
	// Phase breakdown of the rounds, probed from schedulers implementing
	// sched.RoundStatsReporter (zero otherwise). FillMS/ScoreMS/ReduceMS
	// are mean per-round wall milliseconds (non-deterministic, reporting
	// only); RowsReused/RowsRecomputed are total (VM, DC)-table rows the
	// delta memo served from cache vs re-estimated — pure counters, and
	// deterministic like every placement decision.
	FillMS         float64
	ScoreMS        float64
	ReduceMS       float64
	RowsReused     int
	RowsRecomputed int
	// Candidate-shortlist counters (see sched.RoundStats): profit
	// evaluations performed, prune-index rebuilds, and truncated host-state
	// classes, summed over the cell's rounds. Deterministic counters, like
	// the row counters above.
	CandidatesScored   int
	ShortlistRebuilds  int
	ShortlistTruncated int

	SLASeries   []float64
	WattsSeries []float64
	ActiveSer   []float64
	DCSeries    []float64 // hosting DC of VM 0 (for placement plots)

	// Workload-lifecycle outcomes (zero/one for fixed-population
	// scenarios, where nothing is ever offered).
	OfferedVMs  int
	AdmittedVMs int
	RejectedVMs int
	Deferrals   int
	DepartedVMs int
	// AdmissionRate is admitted/offered (vacuously 1 with no churn).
	AdmissionRate float64
	// MeanPlaceTicks is the mean admission-to-first-host wait of placed
	// arrivals.
	MeanPlaceTicks float64

	// Obs is the cell's deterministic metric snapshot: every counter and
	// gauge of the per-cell obs.Registry that is a pure function of the
	// event stream (wall-clock histograms and scrape-time gauges are
	// excluded by construction — see obs.Registry.DeterministicSnapshot).
	Obs map[string]float64
	// EngineTicks is the engine tick counter from that registry; TickMS is
	// the mean engine-tick wall latency in milliseconds (reporting only,
	// never published to machine-readable output).
	EngineTicks int
	TickMS      float64

	// Fault-layer outcomes (zero, with Availability 1, for immortal
	// fleets).
	Crashes         int
	ForcedEvictions int
	Interruptions   int
	RehomedVMs      int
	ShedVMs         int
	DegradedTicks   int
	// MeanRehomeTicks is the mean eviction-to-replacement latency of
	// re-homed VMs; MaxRehomeTicks the worst case.
	MeanRehomeTicks float64
	MaxRehomeTicks  int
	// Availability is served VM-time over total VM-time.
	Availability float64
}

// RunOpts tunes one cell execution beyond the (spec, policy, ticks) key.
type RunOpts struct {
	// RoundTicks overrides the scheduling period (0 = DefaultRoundTicks).
	RoundTicks int
	// DefaultInitial places HomePlacement when the policy has no Initial
	// of its own (matrix sweeps set it; the experiment wrapper does not,
	// so figures keep their hand-picked starting states).
	DefaultInitial bool
	// OnTick, when non-nil, observes every tick after the standard
	// metrics are folded in — the hook experiment-specific series
	// (e.g. the green-energy sunlit counter) ride on.
	OnTick func(sc *scenario.Scenario, st sim.TickStats)
	// Admission overrides the admission controller of churn scenarios
	// (nil = the default capacity gate). The default never consults the
	// predictor bundle, so a cell's decisions cannot depend on whether
	// some other policy in the matrix happened to train one; ML-gated
	// admission is an explicit opt-in.
	Admission *core.AdmissionPolicy
	// Degraded overrides the graceful-degradation policy of fault
	// scenarios (nil = core defaults: nominal surviving capacity, never
	// shed).
	Degraded *core.DegradedPolicy
}

// timedScheduler wraps a scheduler and accumulates the wall-clock time
// spent inside scheduling rounds. It forwards the allocation-free
// ScheduleInto contract when the inner scheduler supports it and falls
// back to Schedule (copying into the recycled map) when it does not, so
// wrapping never changes decisions. When the inner scheduler implements
// sched.RoundStatsReporter it also folds in each round's phase breakdown
// (fill/score/reduce nanoseconds, delta-memo row counters).
type timedScheduler struct {
	inner  sched.Scheduler
	nanos  int64
	rounds int

	fillNS, scoreNS, reduceNS int64
	rowsReused                int
	rowsRecomputed            int
	candidatesScored          int
	shortlistRebuilds         int
	shortlistTruncated        int
}

// fold accumulates the phase breakdown of the round that just ran.
func (t *timedScheduler) fold() {
	rep, ok := t.inner.(sched.RoundStatsReporter)
	if !ok {
		return
	}
	st := rep.LastRoundStats()
	t.fillNS += st.FillNS
	t.scoreNS += st.ScoreNS
	t.reduceNS += st.ReduceNS
	t.rowsReused += st.RowsReused
	t.rowsRecomputed += st.RowsRecomputed
	t.candidatesScored += st.CandidatesScored
	t.shortlistRebuilds += st.ShortlistRebuilds
	t.shortlistTruncated += st.ShortlistTruncated
}

// intoScheduler mirrors core's optional allocation-free contract.
type intoScheduler interface {
	ScheduleInto(p *sched.Problem, placement model.Placement) error
}

func (t *timedScheduler) Name() string { return t.inner.Name() }

func (t *timedScheduler) Schedule(p *sched.Problem) (model.Placement, error) {
	start := time.Now()
	placement, err := t.inner.Schedule(p)
	t.nanos += time.Since(start).Nanoseconds()
	t.rounds++
	t.fold()
	return placement, err
}

func (t *timedScheduler) ScheduleInto(p *sched.Problem, placement model.Placement) error {
	start := time.Now()
	defer func() {
		t.nanos += time.Since(start).Nanoseconds()
		t.rounds++
		t.fold()
	}()
	if is, ok := t.inner.(intoScheduler); ok {
		return is.ScheduleInto(p, placement)
	}
	out, err := t.inner.Schedule(p)
	if err != nil {
		return err
	}
	for vm, pm := range out {
		placement[vm] = pm
	}
	return nil
}

// RunSpec executes one cell: build the scenario, make the scheduler, run
// the managed loop, collect metrics. See RunSpecOpts for the knobs.
func RunSpec(spec scenario.Spec, pol Policy, bundle *predict.Bundle, ticks int) (*PolicyRun, error) {
	return RunSpecOpts(spec, pol, bundle, ticks, RunOpts{DefaultInitial: true})
}

// RunSpecOpts is the sweep cell-runner every experiment and matrix cell
// goes through: one scenario.Build and one core.Manager per call, nothing
// shared with other cells except the read-only bundle. When the policy
// needs a bundle and none is supplied, the per-seed cache provides one.
func RunSpecOpts(spec scenario.Spec, pol Policy, bundle *predict.Bundle, ticks int, opts RunOpts) (*PolicyRun, error) {
	if ticks <= 0 {
		return nil, fmt.Errorf("sweep: ticks must be positive, got %d", ticks)
	}
	if pol.Make == nil {
		return nil, fmt.Errorf("sweep: policy %q has no Make", pol.Name)
	}
	if pol.NeedsBundle && bundle == nil {
		var err error
		if bundle, err = TrainedBundle(spec.Seed); err != nil {
			return nil, err
		}
	}
	sc, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	s, err := pol.Make(sc, bundle)
	if err != nil {
		return nil, err
	}
	initial := pol.Initial
	if initial == nil && opts.DefaultInitial {
		initial = (*scenario.Scenario).HomePlacement
	}
	if initial != nil {
		if err := sc.World.PlaceInitial(initial(sc)); err != nil {
			return nil, err
		}
	}
	roundTicks := opts.RoundTicks
	if roundTicks <= 0 {
		roundTicks = DefaultRoundTicks
	}
	// Every cell carries its own registry, so cells stay share-nothing and
	// the deterministic snapshot is per-(scenario, policy, seed).
	reg := obs.NewRegistry()
	engMet := sim.NewEngineMetrics(reg)
	sc.World.SetMetrics(engMet)
	if ms, ok := s.(interface{ SetMetrics(*sched.Metrics) }); ok {
		ms.SetMetrics(sched.NewSchedMetrics(reg))
	}
	lifeMet := lifecycle.NewMetrics(reg)
	timed := &timedScheduler{inner: s}
	mgrCfg := core.ManagerConfig{
		World: sc.World, Scheduler: timed, RoundTicks: roundTicks,
	}
	var runner *lifecycle.Runner
	if sc.Script != nil {
		runner = lifecycle.NewRunner(sc.Script)
		mgrCfg.Lifecycle = runner
		if opts.Admission != nil {
			mgrCfg.Admission = *opts.Admission
		}
	}
	var faults *lifecycle.FaultRunner
	if sc.Faults != nil {
		faults = lifecycle.NewFaultRunner(sc.Faults)
		mgrCfg.Faults = faults
		if opts.Degraded != nil {
			mgrCfg.Degraded = *opts.Degraded
		}
	}
	mgr, err := core.NewManager(mgrCfg)
	if err != nil {
		return nil, err
	}
	run := &PolicyRun{
		Policy: pol.Name, Scenario: spec.Name, Seed: spec.Seed,
		Ticks: ticks, MinSLA: 1, AdmissionRate: 1, Availability: 1,
	}
	if run.Policy == "" {
		run.Policy = s.Name()
	}
	var sumSLA, sumWatts, sumActive float64
	err = mgr.Run(ticks, func(st sim.TickStats) {
		sumSLA += st.AvgSLA
		sumWatts += st.FacilityWatts
		sumActive += float64(st.ActivePMs)
		if st.AvgSLA < run.MinSLA {
			run.MinSLA = st.AvgSLA
		}
		run.Migrations += st.Migrations
		run.SLASeries = append(run.SLASeries, st.AvgSLA)
		run.WattsSeries = append(run.WattsSeries, st.FacilityWatts)
		run.ActiveSer = append(run.ActiveSer, float64(st.ActivePMs))
		run.DCSeries = append(run.DCSeries, float64(sc.World.State().DCOfVM(0)))
		if opts.OnTick != nil {
			opts.OnTick(sc, st)
		}
	})
	if err != nil {
		return nil, err
	}
	n := float64(ticks)
	run.AvgSLA = sumSLA / n
	run.AvgWatts = sumWatts / n
	run.AvgActive = sumActive / n
	ledger := sc.World.Ledger()
	run.AvgEuroH = ledger.AvgProfitPerHour(sim.TickHours)
	run.RevenueEUR = ledger.Revenue()
	run.EnergyEUR = ledger.EnergyCost()
	run.PenaltyEUR = ledger.Penalties()
	run.Rounds = timed.rounds
	if timed.rounds > 0 {
		perRoundMS := func(ns int64) float64 { return float64(ns) / float64(timed.rounds) / 1e6 }
		run.RoundMS = perRoundMS(timed.nanos)
		run.FillMS = perRoundMS(timed.fillNS)
		run.ScoreMS = perRoundMS(timed.scoreNS)
		run.ReduceMS = perRoundMS(timed.reduceNS)
	}
	run.RowsReused = timed.rowsReused
	run.RowsRecomputed = timed.rowsRecomputed
	run.CandidatesScored = timed.candidatesScored
	run.ShortlistRebuilds = timed.shortlistRebuilds
	run.ShortlistTruncated = timed.shortlistTruncated
	if runner != nil {
		st := runner.Stats()
		run.OfferedVMs = st.Offered
		run.AdmittedVMs = st.Admitted
		run.RejectedVMs = st.Rejected
		run.Deferrals = st.Deferrals
		run.DepartedVMs = st.Departed
		run.AdmissionRate = st.AdmissionRate()
		run.MeanPlaceTicks = st.MeanPlacementTicks()
	}
	var lifeStats lifecycle.Stats
	var faultStats lifecycle.FaultStats
	if runner != nil {
		lifeStats = runner.Stats()
	}
	if faults != nil {
		faultStats = faults.Stats()
	}
	lifeMet.Observe(lifeStats, faultStats)
	run.Obs = reg.DeterministicSnapshot()
	run.EngineTicks = int(engMet.Ticks.Value())
	run.TickMS = engMet.TickSeconds.Mean() * 1e3
	if faults != nil {
		st := faults.Stats()
		run.Crashes = st.Crashes
		run.ForcedEvictions = st.ForcedEvictions
		run.Interruptions = st.Interruptions
		run.RehomedVMs = st.Rehomed
		run.ShedVMs = st.Shed
		run.DegradedTicks = st.DegradedTicks
		run.MeanRehomeTicks = st.MeanRehomeTicks()
		run.MaxRehomeTicks = st.MaxRehomeTicks
		run.Availability = st.Availability()
	}
	return run, nil
}
