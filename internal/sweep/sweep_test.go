package sweep

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// fastMatrix is a cheap all-deterministic matrix: no ML training, two
// presets, two policies, two seeds, one simulated hour per cell.
func fastMatrix(workers int) Matrix {
	return Matrix{
		Scenarios: []string{scenario.IntraDC, scenario.MultiDC},
		Policies:  []string{"bf", "bf-ob"},
		Seeds:     []uint64{1, 2},
		Ticks:     60,
		Workers:   workers,
	}
}

// TestSweepDeterminism is the harness's core contract: the same matrix
// yields byte-identical JSON and CSV across repeated runs and across
// worker counts — parallelism is a throughput knob, never an output
// change.
func TestSweepDeterminism(t *testing.T) {
	type output struct {
		json []byte
		csv  string
	}
	get := func(workers int) output {
		res, err := Run(fastMatrix(workers))
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return output{json: j, csv: res.CSV()}
	}
	base := get(1)
	for name, o := range map[string]output{
		"rerun workers=1": get(1),
		"workers=4":       get(4),
		"workers=4 again": get(4),
	} {
		if !bytes.Equal(base.json, o.json) {
			t.Errorf("%s: JSON differs from workers=1 run", name)
		}
		if base.csv != o.csv {
			t.Errorf("%s: CSV differs from workers=1 run", name)
		}
	}
}

// TestSweepChurnDeterminism extends the determinism contract to dynamic
// workloads: churn cells (seeded event queue, admission controller,
// shrinking/growing problems) stay byte-identical across runs and worker
// counts, and actually churn.
func TestSweepChurnDeterminism(t *testing.T) {
	matrix := func(workers int) Matrix {
		return Matrix{
			Scenarios: []string{scenario.ChurnStorm, scenario.ChurnPoisson},
			Policies:  []string{"bf", "bf-ob"},
			Seeds:     []uint64{1, 2},
			Ticks:     180,
			Workers:   workers,
		}
	}
	get := func(workers int) (*Result, []byte) {
		res, err := Run(matrix(workers))
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, j
	}
	base, baseJSON := get(1)
	churned := false
	for _, c := range base.Cells {
		if c.OfferedVMs > 0 && c.AdmittedVMs > 0 {
			churned = true
		}
	}
	if !churned {
		t.Fatal("churn cells reported no lifecycle activity")
	}
	for _, workers := range []int{1, 4} {
		if _, j := get(workers); !bytes.Equal(baseJSON, j) {
			t.Errorf("churn sweep JSON differs at workers=%d", workers)
		}
	}
}

// TestSweepFaultDeterminism extends the determinism contract to the
// fault-injection presets: cells replaying host crashes, a DC outage and
// a rolling maintenance wave stay byte-identical across runs and worker
// counts, and actually record fault activity.
func TestSweepFaultDeterminism(t *testing.T) {
	matrix := func(workers int) Matrix {
		return Matrix{
			Scenarios: []string{scenario.FailSparse, scenario.FailAZOutage, scenario.MaintRolling},
			Policies:  []string{"bf-ob"},
			Seeds:     []uint64{1, 2},
			Ticks:     180,
			Workers:   workers,
		}
	}
	get := func(workers int) (*Result, []byte) {
		res, err := Run(matrix(workers))
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, j
	}
	base, baseJSON := get(1)
	faulted := false
	for _, c := range base.Cells {
		if c.Availability <= 0 || c.Availability > 1 {
			t.Fatalf("cell %s/%s/%d availability %v out of (0,1]",
				c.Scenario, c.Policy, c.Seed, c.Availability)
		}
		if c.Crashes > 0 || c.Interruptions > 0 {
			faulted = true
		}
	}
	if !faulted {
		t.Fatal("fault cells reported no fault activity")
	}
	for _, workers := range []int{1, 4} {
		if _, j := get(workers); !bytes.Equal(baseJSON, j) {
			t.Errorf("fault sweep JSON differs at workers=%d", workers)
		}
	}
}

func TestSweepShape(t *testing.T) {
	res, err := Run(fastMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*2*2 {
		t.Fatalf("cells = %d, want 8", len(res.Cells))
	}
	if len(res.Aggregates) != 2*2 {
		t.Fatalf("aggregates = %d, want 4", len(res.Aggregates))
	}
	// Cell order is scenario-major, then policy, then seed.
	want := []struct {
		scn, pol string
		seed     uint64
	}{
		{"intra-dc", "bf", 1}, {"intra-dc", "bf", 2},
		{"intra-dc", "bf-ob", 1}, {"intra-dc", "bf-ob", 2},
		{"multi-dc", "bf", 1}, {"multi-dc", "bf", 2},
		{"multi-dc", "bf-ob", 1}, {"multi-dc", "bf-ob", 2},
	}
	for i, w := range want {
		c := res.Cells[i]
		if c.Scenario != w.scn || c.Policy != w.pol || c.Seed != w.seed {
			t.Fatalf("cell %d = (%s,%s,%d), want (%s,%s,%d)",
				i, c.Scenario, c.Policy, c.Seed, w.scn, w.pol, w.seed)
		}
		if c.Ticks != 60 || c.Rounds != 5 {
			t.Fatalf("cell %d ran %d ticks / %d rounds", i, c.Ticks, c.Rounds)
		}
		if c.AvgSLA <= 0 || c.AvgSLA > 1 || c.AvgWatts <= 0 {
			t.Fatalf("cell %d has implausible metrics: %+v", i, c)
		}
	}
	// Aggregates must be the exact across-seeds statistics of their cells.
	agg := res.Aggregates[0]
	c1, c2 := res.Cells[0], res.Cells[1]
	mean := (c1.AvgSLA + c2.AvgSLA) / 2
	if math.Abs(agg.AvgSLA.Mean-mean) > 1e-12 {
		t.Fatalf("aggregate mean %v != cell mean %v", agg.AvgSLA.Mean, mean)
	}
	if agg.AvgSLA.Min != math.Min(c1.AvgSLA, c2.AvgSLA) ||
		agg.AvgSLA.Max != math.Max(c1.AvgSLA, c2.AvgSLA) {
		t.Fatalf("aggregate min/max wrong: %+v vs cells %v %v", agg.AvgSLA, c1.AvgSLA, c2.AvgSLA)
	}
	sd := math.Abs(c1.AvgSLA-c2.AvgSLA) / 2 // population stddev of two points
	if math.Abs(agg.AvgSLA.StdDev-sd) > 1e-12 {
		t.Fatalf("aggregate stddev %v != %v", agg.AvgSLA.StdDev, sd)
	}
	if agg.Seeds != 2 {
		t.Fatalf("aggregate seeds = %d", agg.Seeds)
	}
}

func TestSweepValidation(t *testing.T) {
	base := fastMatrix(1)
	for name, mutate := range map[string]func(*Matrix){
		"unknown scenario": func(m *Matrix) { m.Scenarios = []string{"no-such-preset"} },
		"unknown policy":   func(m *Matrix) { m.Policies = []string{"no-such-policy"} },
		"no policies":      func(m *Matrix) { m.Policies = nil },
		"no seeds":         func(m *Matrix) { m.Seeds = nil },
		"no ticks":         func(m *Matrix) { m.Ticks = 0 },
	} {
		m := base
		mutate(&m)
		if _, err := Run(m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSweepAllScenariosExpansion(t *testing.T) {
	m := fastMatrix(4)
	m.Scenarios = []string{"all"}
	m.Seeds = []uint64{7}
	m.Ticks = 30
	res, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(scenario.Names()) * 2; len(res.Cells) != want {
		t.Fatalf("all-presets sweep has %d cells, want %d", len(res.Cells), want)
	}
	if len(res.Scenarios) != len(scenario.Names()) {
		t.Fatalf("result echoes %d scenarios, want all %d", len(res.Scenarios), len(scenario.Names()))
	}
}

// TestSweepJSONExcludesWallClock guards the determinism contract at the
// encoding level: no wall-clock field may leak into JSON or CSV.
func TestSweepJSONExcludesWallClock(t *testing.T) {
	res, err := Run(Matrix{
		Scenarios: []string{scenario.IntraDC}, Policies: []string{"bf"},
		Seeds: []uint64{1}, Ticks: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"RoundMS", "round_ms", "ms_per_round",
		"FillMS", "fill_ms", "ScoreMS", "score_ms", "ReduceMS", "reduce_ms"} {
		if bytes.Contains(j, []byte(banned)) {
			t.Fatalf("JSON leaks wall-clock field %q", banned)
		}
	}
	header := strings.SplitN(res.CSV(), "\n", 2)[0]
	for _, col := range strings.Split(header, ",") {
		if strings.Contains(col, "_ms") || strings.Contains(col, "ms_per_round") {
			t.Fatalf("CSV header leaks wall-clock column %q", col)
		}
	}
	// The row counters, in contrast, are deterministic and must be real
	// machine-readable columns.
	if !bytes.Contains(j, []byte("rows_reused")) || !strings.Contains(header, "rows_recomputed") {
		t.Fatal("deterministic delta row counters missing from JSON/CSV")
	}
	// The rendered (human) table does include it.
	if !strings.Contains(res.Render(), "ms/round") {
		t.Fatal("rendered table should report round latency")
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) < 8 {
		t.Fatalf("policy registry too small: %v", names)
	}
	for _, name := range names {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name || p.Make == nil {
			t.Fatalf("policy %q malformed: %+v", name, p)
		}
	}
	if _, err := PolicyByName("definitely-not-a-policy"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestSweepMLPolicies drives the bundle-sharing path (train once per
// seed, share across cells) over ML and hierarchical policies.
func TestSweepMLPolicies(t *testing.T) {
	m := Matrix{
		Scenarios: []string{scenario.IntraDC, scenario.Hierarchy},
		Policies:  []string{"bf-ml", "hier-ml", "firstfit"},
		Seeds:     []uint64{42},
		Ticks:     60,
		Workers:   4,
	}
	res, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.AvgSLA <= 0 || c.Rounds == 0 {
			t.Fatalf("ML cell did not run: %+v", c)
		}
	}
}

// TestSweepDeltaReuse drives the bf-ml-delta policy through a live sweep
// cell on a steady (fixed-population) fleet and checks the delta-round
// columns: the memo must actually serve rows (reused > 0 after the first
// round), the plain policy must report zero reuse, and the counters —
// being pure decisions, not wall clock — must be byte-stable across
// worker counts.
func TestSweepDeltaReuse(t *testing.T) {
	m := Matrix{
		Scenarios: []string{scenario.IntraDC},
		Policies:  []string{"bf-ml", "bf-ml-delta"},
		Seeds:     []uint64{42},
		Ticks:     120,
		Workers:   1,
	}
	res, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	plain, delta := res.Cells[0], res.Cells[1]
	if plain.Policy != "bf-ml" || delta.Policy != "bf-ml-delta" {
		t.Fatalf("unexpected cell order: %q, %q", plain.Policy, delta.Policy)
	}
	if plain.RowsReused != 0 || plain.RowsRecomputed == 0 {
		t.Fatalf("plain bf-ml rows: reused %d, recomputed %d", plain.RowsReused, plain.RowsRecomputed)
	}
	if delta.RowsReused == 0 {
		t.Fatalf("delta policy reused no rows on a steady fleet: %+v", delta)
	}
	if delta.RowsRecomputed == 0 {
		t.Fatal("delta policy recomputed nothing — first round alone must fill every row")
	}
	// Both policies walk the same VM set every round, so the per-round row
	// totals must agree.
	if got, want := delta.RowsReused+delta.RowsRecomputed, plain.RowsRecomputed; got != want {
		t.Fatalf("delta rows reused+recomputed = %d, want %d", got, want)
	}
	// The counters are decisions, not measurements: a re-run at a
	// different worker count must reproduce them exactly.
	m.Workers = 4
	res2, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	d2 := res2.Cells[1]
	if d2.RowsReused != delta.RowsReused || d2.RowsRecomputed != delta.RowsRecomputed {
		t.Fatalf("delta counters drift across worker counts: (%d,%d) vs (%d,%d)",
			delta.RowsReused, delta.RowsRecomputed, d2.RowsReused, d2.RowsRecomputed)
	}
	agg := res.Aggregates[1]
	if agg.Policy != "bf-ml-delta" || agg.RowsReused.Mean != float64(delta.RowsReused) {
		t.Fatalf("aggregate rows_reused = %+v, cell = %d", agg.RowsReused, delta.RowsReused)
	}
}

// TestObservedOnlySweepSkipsTraining pins the training gate: a matrix
// whose policies never consume predictors must not train (or cache) a
// bundle for any of its seeds — training is the sweep's most expensive
// prologue and observed-only studies should never pay it.
func TestObservedOnlySweepSkipsTraining(t *testing.T) {
	const seed = uint64(987654321001) // unique to this test: never trained elsewhere
	m := Matrix{
		Scenarios: []string{scenario.IntraDC},
		Policies:  []string{"bf", "bf-ob", "static", "roundrobin", "hier-ob"},
		Seeds:     []uint64{seed},
		Ticks:     30,
		Workers:   2,
	}
	if _, err := Run(m); err != nil {
		t.Fatal(err)
	}
	if _, trained := bundleCache.Load(seed); trained {
		t.Fatal("observed-only sweep trained a predictor bundle")
	}
}

// TestSweepPruneCounters drives bf-ml-prune through a live sweep cell
// next to plain bf-ml: identical decisions and economics (safe-bound
// pruning is placement-identical), fewer profit evaluations, and one
// shortlist rebuild per round — all visible through the deterministic
// candidate columns.
func TestSweepPruneCounters(t *testing.T) {
	m := Matrix{
		Scenarios: []string{scenario.IntraDC},
		Policies:  []string{"bf-ml", "bf-ml-prune"},
		Seeds:     []uint64{42},
		Ticks:     120,
		Workers:   1,
	}
	res, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	plain, pruned := res.Cells[0], res.Cells[1]
	if plain.Policy != "bf-ml" || pruned.Policy != "bf-ml-prune" {
		t.Fatalf("unexpected cell order: %q, %q", plain.Policy, pruned.Policy)
	}
	if plain.AvgSLA != pruned.AvgSLA || plain.ProfitEURh != pruned.ProfitEURh ||
		plain.Migrations != pruned.Migrations || plain.AvgWatts != pruned.AvgWatts {
		t.Fatalf("safe-bound pruning changed outcomes: %+v vs %+v", plain, pruned)
	}
	if plain.ShortlistRebuilds != 0 || plain.ShortlistTruncated != 0 {
		t.Fatalf("plain bf-ml reported shortlist activity: %+v", plain)
	}
	if pruned.ShortlistRebuilds != pruned.Rounds {
		t.Fatalf("prune rebuilds %d, rounds %d", pruned.ShortlistRebuilds, pruned.Rounds)
	}
	if pruned.ShortlistTruncated != 0 {
		t.Fatalf("safe bound truncated %d classes", pruned.ShortlistTruncated)
	}
	if plain.CandidatesScored == 0 || pruned.CandidatesScored == 0 {
		t.Fatalf("candidate counters missing: plain %d, pruned %d",
			plain.CandidatesScored, pruned.CandidatesScored)
	}
	if pruned.CandidatesScored > plain.CandidatesScored {
		t.Fatalf("pruning scored more candidates (%d) than exhaustive (%d)",
			pruned.CandidatesScored, plain.CandidatesScored)
	}
}

// TestRunSpecAutoTrainsBundle covers the single-cell convenience path:
// an ML policy with a nil bundle pulls from the per-seed cache.
func TestRunSpecAutoTrainsBundle(t *testing.T) {
	pol, err := PolicyByName("bf-ml")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunSpec(scenario.MustPreset(scenario.IntraDC, 42), pol, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	if run.Policy != "bf-ml" || run.Rounds == 0 {
		t.Fatalf("auto-bundle run wrong: %+v", run)
	}
}

// TestHyperscaleSweepDeterminism is the hyperscale acceptance smoke: the
// 20000-VM / 5100-PM preset completes scheduling rounds through the
// sweep cell-runner, and the cell is bit-deterministic across reruns and
// engine tick-worker counts (sharded vs serial ticks). The policy is a
// truncated-shortlist Best-Fit (PruneK 32, like the benchmark) over the
// Observed estimator — no bundle training, and the exhaustive scoring
// matrix (~10^8 profit calls) never materializes.
func TestHyperscaleSweepDeterminism(t *testing.T) {
	pol := Policy{
		Name: "bf-prune32",
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			bf := sched.NewBestFit(CostModel(sc), sched.NewObserved())
			bf.Prune = true
			bf.PruneK = 32
			return bf, nil
		},
	}
	cell := func(tickWorkers int) PolicyRun {
		spec := scenario.MustPreset(scenario.HyperscaleFleet, 7)
		spec.TickWorkers = tickWorkers
		pr, err := RunSpecOpts(spec, pol, nil, 12, RunOpts{DefaultInitial: true})
		if err != nil {
			t.Fatal(err)
		}
		got := *pr
		// Wall-clock fields are the only legitimately non-deterministic
		// outputs; everything else must match bit-for-bit.
		got.RoundMS, got.FillMS, got.ScoreMS, got.ReduceMS, got.TickMS = 0, 0, 0, 0, 0
		return got
	}
	base := cell(4)
	if base.Rounds == 0 || base.CandidatesScored == 0 {
		t.Fatalf("hyperscale cell ran no rounds: rounds %d, scored %d",
			base.Rounds, base.CandidatesScored)
	}
	if base.ShortlistRebuilds != base.Rounds {
		t.Fatalf("rebuilds %d, rounds %d", base.ShortlistRebuilds, base.Rounds)
	}
	for name, got := range map[string]PolicyRun{
		"rerun sharded": cell(4),
		"serial ticks":  cell(1),
	} {
		if !reflect.DeepEqual(base, got) {
			t.Errorf("%s: hyperscale cell diverged from the sharded baseline", name)
		}
	}
}

// TestSweepCellObsSnapshot pins the per-cell metric snapshot: every cell
// carries its registry's deterministic counters (engine ticks matching
// the cell length, lifecycle churn matching the lifecycle columns), and
// no wall-clock series ever reaches the map or the JSON/CSV output.
func TestSweepCellObsSnapshot(t *testing.T) {
	pol, err := PolicyByName("bf-ob")
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 40
	run, err := RunSpecOpts(scenario.MustPreset(scenario.ChurnPoisson, 5), pol, nil, ticks,
		RunOpts{DefaultInitial: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.EngineTicks != ticks {
		t.Fatalf("engine ticks = %d, want %d", run.EngineTicks, ticks)
	}
	if run.Obs["mdcsim_engine_ticks_total"] != ticks {
		t.Fatalf("obs engine ticks = %v, want %d", run.Obs["mdcsim_engine_ticks_total"], ticks)
	}
	if got := run.Obs["mdcsim_lifecycle_offered_total"]; got != float64(run.OfferedVMs) {
		t.Fatalf("obs offered = %v, lifecycle column says %d", got, run.OfferedVMs)
	}
	if got := run.Obs["mdcsim_sched_rounds_total"]; got != float64(run.Rounds) {
		t.Fatalf("obs rounds = %v, timed scheduler says %d", got, run.Rounds)
	}
	for name := range run.Obs {
		if strings.Contains(name, "_seconds") || strings.Contains(name, "runtime") {
			t.Fatalf("wall-clock or scrape-time series %q leaked into the deterministic snapshot", name)
		}
	}
	if run.TickMS <= 0 {
		t.Fatal("mean tick latency not measured")
	}
}
