// Package sweep is the evaluation harness: it runs the full scenario ×
// scheduling-policy × seed matrix concurrently on replicated engines and
// emits deterministic machine-readable results (JSON + CSV) next to the
// rendered tables. One sweep cell is one (preset, policy, seed) triple:
// it builds its own scenario (world, topology, workload stream) and its
// own manager, so cells share nothing mutable — only the read-only
// predictor bundle of their seed — and the matrix parallelises trivially
// via par.ForEach. Every future scaling study (sharding, multi-backend,
// online retraining) reports through this package.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/par"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Matrix declares one sweep: which presets, which policies, which seeds,
// and how long each cell runs.
type Matrix struct {
	// Scenarios are preset names (empty or ["all"] = every preset).
	Scenarios []string
	// Policies are registry names (see PolicyNames); at least one.
	Policies []string
	// Seeds are the per-cell root seeds; at least one. Aggregates are
	// computed across seeds per (scenario, policy).
	Seeds []uint64
	// Ticks is the simulated length of every cell.
	Ticks int
	// RoundTicks overrides the scheduling period (0 = DefaultRoundTicks).
	RoundTicks int
	// Workers bounds cell-level parallelism (<= 0 = GOMAXPROCS).
	Workers int
}

// Cell is the machine-readable result of one (scenario, policy, seed)
// run. Wall-clock fields carry a json:"-" tag: sweep JSON and CSV must be
// byte-identical across runs and worker counts, and time measurements are
// the one non-deterministic output.
type Cell struct {
	Scenario     string  `json:"scenario"`
	Policy       string  `json:"policy"`
	Seed         uint64  `json:"seed"`
	Ticks        int     `json:"ticks"`
	Rounds       int     `json:"rounds"`
	AvgSLA       float64 `json:"avg_sla"`
	MinSLA       float64 `json:"min_sla"`
	AvgWatts     float64 `json:"avg_watts"`
	ProfitEURh   float64 `json:"profit_eur_h"`
	RevenueEUR   float64 `json:"revenue_eur"`
	EnergyEUR    float64 `json:"energy_eur"`
	PenaltyEUR   float64 `json:"penalty_eur"`
	Migrations   int     `json:"migrations"`
	AvgActivePMs float64 `json:"avg_active_pms"`
	// Workload-lifecycle columns (zero/one for fixed populations).
	OfferedVMs     int     `json:"offered_vms"`
	AdmittedVMs    int     `json:"admitted_vms"`
	RejectedVMs    int     `json:"rejected_vms"`
	DepartedVMs    int     `json:"departed_vms"`
	AdmissionRate  float64 `json:"admission_rate"`
	MeanPlaceTicks float64 `json:"mean_place_ticks"`
	// Fault-layer columns (zero, availability 1, for immortal fleets).
	Crashes         int     `json:"crashes"`
	ForcedEvictions int     `json:"forced_evictions"`
	Interruptions   int     `json:"interruptions"`
	RehomedVMs      int     `json:"rehomed_vms"`
	ShedVMs         int     `json:"shed_vms"`
	DegradedTicks   int     `json:"degraded_ticks"`
	MeanRehomeTicks float64 `json:"mean_rehome_ticks"`
	MaxRehomeTicks  int     `json:"max_rehome_ticks"`
	Availability    float64 `json:"availability"`
	// Delta-round row counters: (VM, DC)-table rows served from the memo
	// vs re-estimated, summed over the cell's rounds. Pure counters —
	// deterministic, so they are real JSON/CSV columns (zero for
	// schedulers that do not report round stats).
	RowsReused     int `json:"rows_reused"`
	RowsRecomputed int `json:"rows_recomputed"`
	// Candidate-shortlist counters, summed over rounds: profit evaluations
	// performed, prune-index rebuilds and truncated host-state classes.
	// Deterministic like the row counters — truncation discloses exactly
	// how far a PruneK policy may diverge from the exhaustive scan.
	CandidatesScored   int `json:"candidates_scored"`
	ShortlistRebuilds  int `json:"shortlist_rebuilds"`
	ShortlistTruncated int `json:"shortlist_truncated"`
	// EngineTicks is the engine tick counter from the cell's own metric
	// registry; Obs is that registry's full deterministic snapshot (every
	// counter and gauge that is a pure function of the event stream —
	// wall-clock series are excluded by construction, and Go marshals map
	// keys sorted, so the JSON stays byte-identical across runs).
	EngineTicks int                `json:"engine_ticks"`
	Obs         map[string]float64 `json:"obs"`
	// TickMS is the mean engine-tick wall latency — reporting only.
	TickMS  float64 `json:"-"`
	RoundMS float64 `json:"-"` // mean scheduling-round wall latency
	// Phase breakdown of RoundMS (table fill, candidate scoring,
	// everything else); wall-clock like RoundMS, so excluded from the
	// machine-readable output.
	FillMS   float64 `json:"-"`
	ScoreMS  float64 `json:"-"`
	ReduceMS float64 `json:"-"`
}

// Stat summarises one metric across the seeds of a (scenario, policy).
type Stat struct {
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
}

func statOf(xs []float64) Stat {
	var w stats.Welford
	for _, x := range xs {
		w.Add(x)
	}
	return Stat{Mean: w.Mean(), Min: w.Min(), Max: w.Max(), StdDev: w.StdDev()}
}

// Aggregate is the across-seeds summary of one (scenario, policy).
type Aggregate struct {
	Scenario       string  `json:"scenario"`
	Policy         string  `json:"policy"`
	Seeds          int     `json:"seeds"`
	AvgSLA         Stat    `json:"avg_sla"`
	MinSLA         Stat    `json:"min_sla"`
	AvgWatts       Stat    `json:"avg_watts"`
	ProfitEURh     Stat    `json:"profit_eur_h"`
	Migrations     Stat    `json:"migrations"`
	AvgActivePMs   Stat    `json:"avg_active_pms"`
	AdmissionRate  Stat    `json:"admission_rate"`
	RejectedVMs    Stat    `json:"rejected_vms"`
	MeanPlaceTicks Stat    `json:"mean_place_ticks"`
	Availability   Stat    `json:"availability"`
	Interruptions  Stat    `json:"interruptions"`
	ForcedEvict    Stat    `json:"forced_evictions"`
	RowsReused     Stat    `json:"rows_reused"`
	RowsRecomputed Stat    `json:"rows_recomputed"`
	CandScored     Stat    `json:"candidates_scored"`
	ShortRebuilds  Stat    `json:"shortlist_rebuilds"`
	RoundMS        float64 `json:"-"` // mean wall latency, reporting only
	FillMS         float64 `json:"-"` // mean table-fill latency, reporting only
	ScoreMS        float64 `json:"-"` // mean scoring latency, reporting only
}

// Result is one executed sweep: the matrix echo, every cell in
// deterministic (scenario-major, then policy, then seed) order, and the
// per-(scenario, policy) aggregates.
type Result struct {
	Scenarios  []string    `json:"scenarios"`
	Policies   []string    `json:"policies"`
	Seeds      []uint64    `json:"seeds"`
	Ticks      int         `json:"ticks"`
	RoundTicks int         `json:"round_ticks"`
	Cells      []Cell      `json:"cells"`
	Aggregates []Aggregate `json:"aggregates"`
}

// Run executes the matrix. Bundles are trained once per seed up front
// (cells of a seed share them read-only); the cells then fan out over the
// worker pool, each writing only its own slot, so the assembled Result is
// independent of scheduling order and worker count.
func Run(m Matrix) (*Result, error) {
	scns := m.Scenarios
	if len(scns) == 0 || (len(scns) == 1 && scns[0] == "all") {
		scns = scenario.Names()
	}
	for _, name := range scns {
		if _, err := scenario.Preset(name, 0); err != nil {
			return nil, err
		}
	}
	if len(m.Policies) == 0 {
		return nil, fmt.Errorf("sweep: no policies given (have %v)", PolicyNames())
	}
	pols := make([]Policy, len(m.Policies))
	needBundle := false
	for i, name := range m.Policies {
		p, err := PolicyByName(name)
		if err != nil {
			return nil, err
		}
		pols[i] = p
		needBundle = needBundle || p.NeedsBundle
	}
	if len(m.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: no seeds given")
	}
	if m.Ticks <= 0 {
		return nil, fmt.Errorf("sweep: ticks must be positive, got %d", m.Ticks)
	}

	// Bundles are trained only when some selected policy actually consumes
	// predictors — an observed-only matrix never pays for training. Distinct
	// seeds train concurrently (training is per-seed pure and the cache is
	// concurrency-safe), so a wide-seed matrix is not serialized on its
	// most expensive prologue.
	bundles := make(map[uint64]*predict.Bundle, len(m.Seeds))
	if needBundle {
		seeds := make([]uint64, 0, len(m.Seeds))
		for _, seed := range m.Seeds {
			if _, ok := bundles[seed]; ok {
				continue
			}
			bundles[seed] = nil
			seeds = append(seeds, seed)
		}
		trained := make([]*predict.Bundle, len(seeds))
		terrs := make([]error, len(seeds))
		par.ForEach(len(seeds), m.Workers, func(i int) {
			trained[i], terrs[i] = TrainedBundle(seeds[i])
		})
		for i, err := range terrs {
			if err != nil {
				return nil, fmt.Errorf("sweep: training bundle for seed %d: %w", seeds[i], err)
			}
			bundles[seeds[i]] = trained[i]
		}
	}

	nS, nP, nK := len(scns), len(pols), len(m.Seeds)
	cells := make([]Cell, nS*nP*nK)
	errs := make([]error, len(cells))
	par.ForEach(len(cells), m.Workers, func(i int) {
		si := i / (nP * nK)
		pi := (i / nK) % nP
		ki := i % nK
		seed := m.Seeds[ki]
		spec, err := scenario.Preset(scns[si], seed)
		if err != nil {
			errs[i] = err
			return
		}
		run, err := RunSpecOpts(spec, pols[pi], bundles[seed], m.Ticks,
			RunOpts{RoundTicks: m.RoundTicks, DefaultInitial: true})
		if err != nil {
			errs[i] = fmt.Errorf("sweep: cell %s/%s seed %d: %w", scns[si], pols[pi].Name, seed, err)
			return
		}
		cells[i] = Cell{
			Scenario: scns[si], Policy: pols[pi].Name, Seed: seed,
			Ticks: run.Ticks, Rounds: run.Rounds,
			AvgSLA: run.AvgSLA, MinSLA: run.MinSLA, AvgWatts: run.AvgWatts,
			ProfitEURh: run.AvgEuroH, RevenueEUR: run.RevenueEUR,
			EnergyEUR: run.EnergyEUR, PenaltyEUR: run.PenaltyEUR,
			Migrations: run.Migrations, AvgActivePMs: run.AvgActive,
			OfferedVMs: run.OfferedVMs, AdmittedVMs: run.AdmittedVMs,
			RejectedVMs: run.RejectedVMs, DepartedVMs: run.DepartedVMs,
			AdmissionRate: run.AdmissionRate, MeanPlaceTicks: run.MeanPlaceTicks,
			Crashes: run.Crashes, ForcedEvictions: run.ForcedEvictions,
			Interruptions: run.Interruptions, RehomedVMs: run.RehomedVMs,
			ShedVMs: run.ShedVMs, DegradedTicks: run.DegradedTicks,
			MeanRehomeTicks: run.MeanRehomeTicks, MaxRehomeTicks: run.MaxRehomeTicks,
			Availability: run.Availability,
			RowsReused:   run.RowsReused, RowsRecomputed: run.RowsRecomputed,
			CandidatesScored:  run.CandidatesScored,
			ShortlistRebuilds: run.ShortlistRebuilds, ShortlistTruncated: run.ShortlistTruncated,
			EngineTicks: run.EngineTicks, Obs: run.Obs,
			TickMS:  run.TickMS,
			RoundMS: run.RoundMS,
			FillMS:  run.FillMS, ScoreMS: run.ScoreMS, ReduceMS: run.ReduceMS,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Scenarios: scns, Policies: m.Policies, Seeds: m.Seeds,
		Ticks: m.Ticks, RoundTicks: m.RoundTicks, Cells: cells,
	}
	if res.RoundTicks <= 0 {
		res.RoundTicks = DefaultRoundTicks
	}
	buf := make([]float64, 0, nK)
	metric := func(si, pi int, get func(*Cell) float64) Stat {
		buf = buf[:0]
		for ki := 0; ki < nK; ki++ {
			buf = append(buf, get(&cells[(si*nP+pi)*nK+ki]))
		}
		return statOf(buf)
	}
	for si := 0; si < nS; si++ {
		for pi := 0; pi < nP; pi++ {
			agg := Aggregate{
				Scenario: scns[si], Policy: pols[pi].Name, Seeds: nK,
				AvgSLA:         metric(si, pi, func(c *Cell) float64 { return c.AvgSLA }),
				MinSLA:         metric(si, pi, func(c *Cell) float64 { return c.MinSLA }),
				AvgWatts:       metric(si, pi, func(c *Cell) float64 { return c.AvgWatts }),
				ProfitEURh:     metric(si, pi, func(c *Cell) float64 { return c.ProfitEURh }),
				Migrations:     metric(si, pi, func(c *Cell) float64 { return float64(c.Migrations) }),
				AvgActivePMs:   metric(si, pi, func(c *Cell) float64 { return c.AvgActivePMs }),
				AdmissionRate:  metric(si, pi, func(c *Cell) float64 { return c.AdmissionRate }),
				RejectedVMs:    metric(si, pi, func(c *Cell) float64 { return float64(c.RejectedVMs) }),
				MeanPlaceTicks: metric(si, pi, func(c *Cell) float64 { return c.MeanPlaceTicks }),
				Availability:   metric(si, pi, func(c *Cell) float64 { return c.Availability }),
				Interruptions:  metric(si, pi, func(c *Cell) float64 { return float64(c.Interruptions) }),
				ForcedEvict:    metric(si, pi, func(c *Cell) float64 { return float64(c.ForcedEvictions) }),
				RowsReused:     metric(si, pi, func(c *Cell) float64 { return float64(c.RowsReused) }),
				RowsRecomputed: metric(si, pi, func(c *Cell) float64 { return float64(c.RowsRecomputed) }),
				CandScored:     metric(si, pi, func(c *Cell) float64 { return float64(c.CandidatesScored) }),
				ShortRebuilds:  metric(si, pi, func(c *Cell) float64 { return float64(c.ShortlistRebuilds) }),
			}
			agg.RoundMS = metric(si, pi, func(c *Cell) float64 { return c.RoundMS }).Mean
			agg.FillMS = metric(si, pi, func(c *Cell) float64 { return c.FillMS }).Mean
			agg.ScoreMS = metric(si, pi, func(c *Cell) float64 { return c.ScoreMS }).Mean
			res.Aggregates = append(res.Aggregates, agg)
		}
	}
	return res, nil
}

// JSON returns the sweep as indented JSON. The encoding is deterministic:
// structs marshal in field order, slices preserve cell order, and no
// wall-clock measurement is included.
func (r *Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// fmtF renders a float with full round-trip precision for CSV.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CellsTable renders every cell as one table row (the CSV backbone).
func (r *Result) CellsTable() report.Table {
	t := report.Table{
		Caption: "sweep cells",
		Headers: []string{"scenario", "policy", "seed", "ticks", "rounds",
			"avg_sla", "min_sla", "avg_watts", "profit_eur_h", "revenue_eur",
			"energy_eur", "penalty_eur", "migrations", "avg_active_pms",
			"offered_vms", "admitted_vms", "rejected_vms", "departed_vms",
			"admission_rate", "mean_place_ticks",
			"crashes", "forced_evictions", "interruptions", "rehomed_vms",
			"shed_vms", "degraded_ticks", "mean_rehome_ticks",
			"max_rehome_ticks", "availability",
			"rows_reused", "rows_recomputed",
			"candidates_scored", "shortlist_rebuilds", "shortlist_truncated",
			"engine_ticks"},
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		t.AddRow(c.Scenario, c.Policy,
			strconv.FormatUint(c.Seed, 10), strconv.Itoa(c.Ticks), strconv.Itoa(c.Rounds),
			fmtF(c.AvgSLA), fmtF(c.MinSLA), fmtF(c.AvgWatts), fmtF(c.ProfitEURh),
			fmtF(c.RevenueEUR), fmtF(c.EnergyEUR), fmtF(c.PenaltyEUR),
			strconv.Itoa(c.Migrations), fmtF(c.AvgActivePMs),
			strconv.Itoa(c.OfferedVMs), strconv.Itoa(c.AdmittedVMs),
			strconv.Itoa(c.RejectedVMs), strconv.Itoa(c.DepartedVMs),
			fmtF(c.AdmissionRate), fmtF(c.MeanPlaceTicks),
			strconv.Itoa(c.Crashes), strconv.Itoa(c.ForcedEvictions),
			strconv.Itoa(c.Interruptions), strconv.Itoa(c.RehomedVMs),
			strconv.Itoa(c.ShedVMs), strconv.Itoa(c.DegradedTicks),
			fmtF(c.MeanRehomeTicks), strconv.Itoa(c.MaxRehomeTicks),
			fmtF(c.Availability),
			strconv.Itoa(c.RowsReused), strconv.Itoa(c.RowsRecomputed),
			strconv.Itoa(c.CandidatesScored), strconv.Itoa(c.ShortlistRebuilds),
			strconv.Itoa(c.ShortlistTruncated), strconv.Itoa(c.EngineTicks))
	}
	return t
}

// CSV returns the per-cell results as CSV (deterministic, like JSON).
func (r *Result) CSV() string {
	t := r.CellsTable()
	t.Caption = ""
	return t.CSV()
}

// AggregateTable renders the across-seeds summary, mean±stddev per
// metric plus the (wall-clock) mean round latency.
func (r *Result) AggregateTable() report.Table {
	t := report.Table{
		Caption: fmt.Sprintf("sweep — %d scenarios × %d policies × %d seeds, %d ticks",
			len(r.Scenarios), len(r.Policies), len(r.Seeds), r.Ticks),
		Headers: []string{"scenario", "policy", "avg SLA", "min SLA", "avg W",
			"profit €/h", "migrations", "PMs on", "admit", "t→place", "avail",
			"reused", "ms/round", "fill/score ms"},
	}
	ms := func(s Stat) string { return fmt.Sprintf("%.4f ±%.4f", s.Mean, s.StdDev) }
	for _, a := range r.Aggregates {
		t.AddRow(a.Scenario, a.Policy,
			ms(a.AvgSLA), ms(a.MinSLA),
			fmt.Sprintf("%.1f ±%.1f", a.AvgWatts.Mean, a.AvgWatts.StdDev),
			ms(a.ProfitEURh),
			fmt.Sprintf("%.1f ±%.1f", a.Migrations.Mean, a.Migrations.StdDev),
			fmt.Sprintf("%.2f ±%.2f", a.AvgActivePMs.Mean, a.AvgActivePMs.StdDev),
			fmt.Sprintf("%.2f", a.AdmissionRate.Mean),
			fmt.Sprintf("%.1f", a.MeanPlaceTicks.Mean),
			fmt.Sprintf("%.4f", a.Availability.Mean),
			fmt.Sprintf("%.0f", a.RowsReused.Mean),
			fmt.Sprintf("%.2f", a.RoundMS),
			fmt.Sprintf("%.2f/%.2f", a.FillMS, a.ScoreMS))
	}
	return t
}

// Render returns the aggregate table as printable text.
func (r *Result) Render() string {
	t := r.AggregateTable()
	return t.Render()
}

// WriteFiles writes sweep.json and cells.csv under dir (created if
// missing) and returns their paths.
func (r *Result) WriteFiles(dir string) (jsonPath, csvPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	data, err := r.JSON()
	if err != nil {
		return "", "", err
	}
	jsonPath = filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return "", "", err
	}
	csvPath = filepath.Join(dir, "cells.csv")
	if err := os.WriteFile(csvPath, []byte(r.CSV()), 0o644); err != nil {
		return "", "", err
	}
	return jsonPath, csvPath, nil
}
