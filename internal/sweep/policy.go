package sweep

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// DefaultRoundTicks is the scheduling period used across sweeps and
// experiments (the paper's 10-minute round).
const DefaultRoundTicks = 10

// HorizonHours is the profit horizon of one scheduling round.
const HorizonHours = float64(DefaultRoundTicks) / 60

// DeltaSweepEpsilon is the relative feature-drift tolerance of the
// bf-ml-delta policy. Workload traces carry ~5% per-tick multiplicative
// noise per source plus diurnal drift, and a row is reused only when
// every one of its signature features stayed inside the tolerance, so a
// strict epsilon never reuses a row in a live run. 0.5 reuses roughly
// the quieter half of a steady fleet's rows between 10-minute rounds
// while still re-estimating every VM that genuinely ramped or burst.
const DeltaSweepEpsilon = 0.5

// CostModel builds the standard Figure 3 objective for a scenario.
func CostModel(sc *scenario.Scenario) sched.CostModel {
	return sched.NewCostModel(sc.Topology, power.Atom{}, HorizonHours)
}

// ParallelBestFit builds the ML Best-Fit with concurrent candidate
// evaluation — the configuration large-fleet runs use so the decision
// round rides all cores. Placements are bit-identical to the serial
// scheduler (asserted by TestParallelMatchesSerialHeteroFleet and the
// sched parity suite).
func ParallelBestFit(cost sched.CostModel, est sched.Estimator) *sched.BestFit {
	bf := sched.NewBestFit(cost, est)
	bf.Parallel = true
	bf.Workers = par.DefaultWorkers()
	return bf
}

// Policy is a named scheduler factory — one axis of the sweep matrix.
// Make is called once per cell on that cell's freshly built scenario, so
// a policy may read the fleet (topology, inventory) but shares nothing
// between cells except the read-only predictor bundle.
type Policy struct {
	// Name labels the policy in cells, aggregates and reports.
	Name string
	// NeedsBundle marks policies whose scheduler consumes trained
	// predictors; the sweep trains one bundle per seed and shares it
	// across that seed's cells.
	NeedsBundle bool
	// Make builds the scheduler for one cell. bundle is the seed's
	// trained bundle — guaranteed non-nil when NeedsBundle is set, but
	// possibly non-nil even without it (matrices train once for all
	// policies of a seed), so gate ML behaviour on NeedsBundle, never on
	// bundle != nil.
	Make func(sc *scenario.Scenario, bundle *predict.Bundle) (sched.Scheduler, error)
	// Initial computes the starting placement for a cell. nil means the
	// caller's default (matrix sweeps start from HomePlacement; the
	// experiment wrapper starts unplaced, preserving each figure's setup).
	Initial func(sc *scenario.Scenario) model.Placement
}

// policies is the built-in registry, keyed by CLI-friendly names.
var policies = map[string]Policy{
	"bf": {
		Name: "bf",
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewObserved()), nil
		},
	},
	"bf-ob": {
		Name: "bf-ob",
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewOverbooked()), nil
		},
	},
	"bf-ml": {
		Name: "bf-ml", NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
		},
	},
	// bf-ml-delta keeps the per-VM estimate memo alive between rounds and
	// re-estimates only VMs whose monitored features drifted beyond
	// DeltaSweepEpsilon since they were last scored — the delta-round
	// configuration for large steady fleets, where most rows survive a
	// 10-minute round within tolerance. Placements can differ from bf-ml
	// by at most the staleness the epsilon admits (epsilon 0 would be
	// bit-identical, but also reuse nothing under noisy monitors).
	"bf-ml-delta": {
		Name: "bf-ml-delta", NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			bf := sched.NewBestFit(CostModel(sc), sched.NewML(b))
			bf.Delta = true
			bf.DeltaEpsilon = DeltaSweepEpsilon
			return bf, nil
		},
	},
	// bf-ml-prune scores only one candidate host per distinct tentative
	// host state (plus each VM's current host) instead of the whole fleet.
	// At the safe bound (PruneK 0, used here) placements are bit-identical
	// to bf-ml — asserted by TestPruneParityAllPresets — while the
	// candidates_scored sweep column shows the scoring-matrix cut. Fleet-
	// scale runs (hyperscale) set PruneK > 0 on top for bounded rounds,
	// trading disclosed truncation (shortlist_truncated) for work.
	"bf-ml-prune": {
		Name: "bf-ml-prune", NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			bf := sched.NewBestFit(CostModel(sc), sched.NewML(b))
			bf.Prune = true
			return bf, nil
		},
	},
	// bf-ml-par spins up GOMAXPROCS candidate-evaluation workers inside
	// every cell, so it is meant for single-cell or -workers 1 studies of
	// large fleets; combined with a wide matrix fan-out it oversubscribes
	// the cores and usually loses to plain bf-ml.
	"bf-ml-par": {
		Name: "bf-ml-par", NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return ParallelBestFit(CostModel(sc), sched.NewML(b)), nil
		},
	},
	"firstfit": {
		Name: "firstfit", NeedsBundle: true,
		Make: func(_ *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return &sched.FirstFit{Est: sched.NewML(b)}, nil
		},
	},
	"worstfit": {
		Name: "worstfit", NeedsBundle: true,
		Make: func(_ *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return &sched.WorstFit{Est: sched.NewML(b)}, nil
		},
	},
	"roundrobin": {
		Name: "roundrobin",
		Make: func(*scenario.Scenario, *predict.Bundle) (sched.Scheduler, error) {
			return sched.RoundRobin{}, nil
		},
	},
	"static": {
		Name: "static",
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			// Churn arrivals are unknowable to a static placement; under
			// churn they stay wherever they are (i.e. unplaced) — the
			// baseline's weakness, not a configuration error.
			return &sched.Fixed{P: sc.HomePlacement(), AllowUnknown: sc.Script != nil}, nil
		},
	},
	"hier-ob": {
		Name: "hier-ob",
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			return core.NewHierarchical(sc.Inventory, CostModel(sc), sched.NewOverbooked()), nil
		},
	},
	"hier-ml": {
		Name: "hier-ml", NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return core.NewHierarchical(sc.Inventory, CostModel(sc), sched.NewML(b)), nil
		},
	},
}

// PolicyNames lists the registered policy names in stable order.
func PolicyNames() []string {
	out := make([]string, 0, len(policies))
	for name := range policies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PolicyByName resolves one registered policy.
func PolicyByName(name string) (Policy, error) {
	p, ok := policies[name]
	if !ok {
		return Policy{}, fmt.Errorf("sweep: unknown policy %q (have %v)", name, PolicyNames())
	}
	return p, nil
}
