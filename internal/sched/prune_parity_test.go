package sched_test

// Candidate-pruning parity: with Prune on and PruneK at the safe bound
// (0), BestFit scores only one representative host per distinct tentative
// host state plus the VM's current host — and the resulting placement
// must be bit-identical to the exhaustive scan on every preset, fresh and
// reused, serial and parallel, across churned fleets and through a host
// fault cycle. PruneK > 0 gives up the guarantee for bounded work; there
// the contract is determinism plus disclosed truncation.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// TestPruneParityAllPresets proves the safe-bound shortlist is
// placement-identical to exhaustive Best-Fit on every preset, for both
// the monitored and the ML estimator: fresh state, steady-state reuse
// (where the incremental re-keying from the previous round's Assigns has
// run), churned fleets, and parallel candidate scoring.
func TestPruneParityAllPresets(t *testing.T) {
	bundle, err := experiments.TrainedBundle(paritySeed)
	if err != nil {
		t.Fatal(err)
	}
	ests := []sched.Estimator{sched.NewObserved(), sched.NewML(bundle)}
	for _, name := range scenario.Names() {
		p1 := presetProblem(t, name, paritySeed)
		p2 := churnedProblem(p1)
		cost := parityCost(t, name, paritySeed)
		for _, est := range ests {
			want1, err := sched.NewBestFit(cost, est).Schedule(p1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			want2, err := sched.NewBestFit(cost, est).Schedule(p2)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}

			pruned := sched.NewBestFit(cost, est)
			pruned.Prune = true
			for pass, tc := range []struct {
				p    *sched.Problem
				want model.Placement
			}{{p1, want1}, {p1, want1}, {p2, want2}} {
				got, err := pruned.Schedule(tc.p)
				if err != nil {
					t.Fatalf("%s/%s pass %d: %v", name, est.Name(), pass, err)
				}
				if !got.Equal(tc.want) {
					t.Fatalf("%s/%s pass %d: pruned placement diverged from exhaustive",
						name, est.Name(), pass)
				}
				st := pruned.LastRoundStats()
				if st.ShortlistRebuilds != 1 {
					t.Fatalf("%s/%s pass %d: %d shortlist rebuilds, want 1",
						name, est.Name(), pass, st.ShortlistRebuilds)
				}
				if st.ShortlistTruncated != 0 {
					t.Fatalf("%s/%s pass %d: safe bound truncated %d classes",
						name, est.Name(), pass, st.ShortlistTruncated)
				}
				exhaustive := len(tc.p.VMs) * len(tc.p.Hosts)
				if st.CandidatesScored <= 0 || st.CandidatesScored > exhaustive {
					t.Fatalf("%s/%s pass %d: scored %d candidates, exhaustive is %d",
						name, est.Name(), pass, st.CandidatesScored, exhaustive)
				}
			}

			// Parallel pruned scoring: same placements at a fixed worker count.
			pp := sched.NewBestFit(cost, est)
			pp.Prune = true
			pp.Parallel = true
			pp.Workers = 3
			for pass, tc := range []struct {
				p    *sched.Problem
				want model.Placement
			}{{p1, want1}, {p2, want2}} {
				got, err := pp.Schedule(tc.p)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, est.Name(), err)
				}
				if !got.Equal(tc.want) {
					t.Fatalf("%s/%s pass %d: parallel pruned placement diverged",
						name, est.Name(), pass)
				}
			}
		}
	}
}

// TestPruneDeltaComposition proves the two round accelerators compose:
// delta rounds reuse fill rows, pruning cuts the scoring matrix, and the
// placements still match the plain exhaustive schedule everywhere.
func TestPruneDeltaComposition(t *testing.T) {
	bundle, err := experiments.TrainedBundle(paritySeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.Names() {
		p1 := presetProblem(t, name, paritySeed)
		p2 := churnedProblem(p1)
		cost := parityCost(t, name, paritySeed)
		est := sched.NewML(bundle)
		want1, err := sched.NewBestFit(cost, est).Schedule(p1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want2, err := sched.NewBestFit(cost, est).Schedule(p2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		both := sched.NewBestFit(cost, est)
		both.Prune = true
		both.Delta = true
		for pass, tc := range []struct {
			p    *sched.Problem
			want model.Placement
		}{{p1, want1}, {p1, want1}, {p2, want2}} {
			got, err := both.Schedule(tc.p)
			if err != nil {
				t.Fatalf("%s pass %d: %v", name, pass, err)
			}
			if !got.Equal(tc.want) {
				t.Fatalf("%s pass %d: delta+prune placement diverged", name, pass)
			}
		}
		// Two more passes over p1: the first re-primes the memo after the
		// churned round, the second is a steady round that must show both
		// accelerators engaged at once.
		for pass := 0; pass < 2; pass++ {
			got, err := both.Schedule(p1)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !got.Equal(want1) {
				t.Fatalf("%s: delta+prune re-primed round diverged", name)
			}
		}
		st := both.LastRoundStats()
		if st.RowsReused != len(p1.VMs) {
			t.Fatalf("%s: delta reuse off under prune: %+v", name, st)
		}
		if st.CandidatesScored >= len(p1.VMs)*len(p1.Hosts) && len(p1.Hosts) > 4 {
			t.Fatalf("%s: pruning scored the full matrix: %+v", name, st)
		}
	}
}

// TestPruneParityThroughFaultCycle carries one pruned scheduler through a
// crash → re-home → recover cycle: the shortlist index is rebuilt against
// each round's candidate set, so a disappearing (and returning) host must
// never desynchronize it from the exhaustive answer.
func TestPruneParityThroughFaultCycle(t *testing.T) {
	for _, name := range scenario.Names() {
		p := presetProblem(t, name, paritySeed)
		if p.VMs[0].Current == model.NoPM || len(p.Hosts) < 2 {
			t.Fatalf("%s: warm-up problem has no failable host", name)
		}
		pFail, pRehome, pRecover := failCycleProblems(p)
		cost := parityCost(t, name, paritySeed)
		est := sched.NewObserved()
		pruned := sched.NewBestFit(cost, est)
		pruned.Prune = true
		for stage, sp := range []*sched.Problem{p, pFail, pRehome, pRecover} {
			want, err := sched.NewBestFit(cost, est).Schedule(sp)
			if err != nil {
				t.Fatalf("%s stage %d: %v", name, stage, err)
			}
			got, err := pruned.Schedule(sp)
			if err != nil {
				t.Fatalf("%s stage %d: %v", name, stage, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s stage %d: pruned placement diverged through fault cycle",
					name, stage)
			}
		}
	}
}

// TestPruneIndexRoundTrip exercises the incremental re-keying directly:
// an Assign/Unassign sequence unwound in reverse order must restore the
// exact candidate shortlist of the untouched round — the branch-and-bound
// usage pattern, and the strongest check that removeHost/addHost keep the
// class lists and member orders canonical.
func TestPruneIndexRoundTrip(t *testing.T) {
	p := presetProblem(t, scenario.Names()[1], paritySeed)
	cost := parityCost(t, scenario.Names()[1], paritySeed)
	r, err := sched.NewRound(p, cost, sched.NewObserved())
	if err != nil {
		t.Fatal(err)
	}
	r.SetPrune(true)
	if err := r.Reset(p, cost, sched.NewObserved()); err != nil {
		t.Fatal(err)
	}
	snapshot := func() [][]int32 {
		out := make([][]int32, r.NumVMs())
		for i := range out {
			cands, _, _ := r.AppendCandidates(i, 0, nil)
			out[i] = cands
		}
		return out
	}
	before := snapshot()

	type mv struct{ i, j int }
	var moves []mv
	for i := 0; i < r.NumVMs(); i++ {
		j := (i * 7) % r.NumHosts()
		r.Assign(i, j)
		moves = append(moves, mv{i, j})
	}
	mid := snapshot()
	changed := false
	for i := range before {
		if len(before[i]) != len(mid[i]) {
			changed = true
			break
		}
		for k := range before[i] {
			if before[i][k] != mid[i][k] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("assignments never changed any shortlist")
	}
	for k := len(moves) - 1; k >= 0; k-- {
		r.Unassign(moves[k].i, moves[k].j)
	}
	after := snapshot()
	for i := range before {
		if len(before[i]) != len(after[i]) {
			t.Fatalf("VM %d: shortlist size %d after round trip, want %d",
				i, len(after[i]), len(before[i]))
		}
		for k := range before[i] {
			if before[i][k] != after[i][k] {
				t.Fatalf("VM %d: shortlist diverged after unwind at slot %d: %d != %d",
					i, k, after[i][k], before[i][k])
			}
		}
	}
}

// TestPruneTruncation pins the PruneK > 0 contract on the xlarge fleet —
// the smallest preset whose per-DC class counts actually exceed small K
// values: deterministic output (identical placements on identical
// inputs), disclosed truncation once K is below the class count, and
// exact parity again once K is large enough to stop truncating.
func TestPruneTruncation(t *testing.T) {
	name := scenario.XLargeFleet
	p := presetProblem(t, name, paritySeed)
	cost := parityCost(t, name, paritySeed)
	est := sched.NewObserved()
	want, err := sched.NewBestFit(cost, est).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}

	tight := sched.NewBestFit(cost, est)
	tight.Prune = true
	tight.PruneK = 8
	got1, err := tight.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	st := tight.LastRoundStats()
	got2, err := tight.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got1.Equal(got2) {
		t.Fatal("truncated pruning is nondeterministic across identical rounds")
	}
	if st.ShortlistTruncated == 0 {
		t.Fatalf("PruneK=8 on %d hosts never truncated: %+v", len(p.Hosts), st)
	}
	if full := len(p.VMs) * len(p.Hosts); st.CandidatesScored*4 >= full {
		t.Fatalf("PruneK=8 scored %d of %d — not a useful cut", st.CandidatesScored, full)
	}

	safe := sched.NewBestFit(cost, est)
	safe.Prune = true
	got, err := safe.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("safe-bound pruning diverged from exhaustive on xlarge")
	}
	stSafe := safe.LastRoundStats()
	if stSafe.ShortlistTruncated != 0 {
		t.Fatalf("safe bound truncated %d classes", stSafe.ShortlistTruncated)
	}
	if stSafe.CandidatesScored <= st.CandidatesScored {
		t.Fatalf("safe bound scored %d, tight K scored %d — truncation saved nothing",
			stSafe.CandidatesScored, st.CandidatesScored)
	}

	wide := sched.NewBestFit(cost, est)
	wide.Prune = true
	wide.PruneK = len(p.Hosts) // K >= every class count: nothing to drop
	got, err = wide.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("PruneK >= class count diverged from exhaustive")
	}
	if st := wide.LastRoundStats(); st.ShortlistTruncated != 0 {
		t.Fatalf("PruneK >= class count still truncated %d classes", st.ShortlistTruncated)
	}
}
