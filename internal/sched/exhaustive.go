package sched

import (
	"fmt"
	"math"
	"time"

	"repro/internal/model"
)

// Exhaustive is an exact solver that explores every feasible assignment.
// It stands in for the paper's MILP comparison: exact but infeasible
// beyond small instances — the paper reports GUROBI needing minutes for
// 10 jobs on 40 hosts, which is exactly the blow-up
// BenchmarkSchedulerScaling demonstrates.
//
// With Prune enabled it runs as branch-and-bound: an optimistic suffix
// bound cuts branches that cannot beat the incumbent. Without pruning it
// enumerates all hosts^VMs assignments, the raw cost an exact method pays
// when its relaxation bounds are weak.
type Exhaustive struct {
	Cost CostModel
	Est  Estimator
	// Prune enables the branch-and-bound optimistic bound.
	Prune bool
	// Budget bounds the search wall-clock; on expiry the incumbent (always
	// at least as good as Best-Fit's solution) is returned. Zero means no
	// limit.
	Budget time.Duration
	// nodes counts explored search nodes (exposed for the scaling bench).
	nodes int64
}

// Name implements Scheduler.
func (e *Exhaustive) Name() string { return "exhaustive" }

// Nodes returns the number of search nodes explored by the last call.
func (e *Exhaustive) Nodes() int64 { return e.nodes }

// Schedule implements Scheduler.
func (e *Exhaustive) Schedule(p *Problem) (model.Placement, error) {
	if len(p.Hosts) == 0 {
		return nil, fmt.Errorf("sched: no candidate hosts")
	}
	r, err := NewRound(p, e.Cost, e.Est)
	if err != nil {
		return nil, err
	}
	e.nodes = 0
	n := len(p.VMs)
	m := len(p.Hosts)

	// Keep a Best-Fit fallback so a budget expiry still returns a sane
	// plan; the search itself starts from scratch.
	bf := &BestFit{Cost: e.Cost, Est: e.Est}
	incumbentPlacement, err := bf.Schedule(p)
	if err != nil {
		return nil, err
	}
	bfScore := e.scorePlacement(p, incumbentPlacement)
	incumbent := math.Inf(-1)

	// Optimistic per-VM bound: the best profit any host could give the VM
	// on an empty round (capacity untouched). Profits computed against
	// fresh state can only be >= profits under load, so the bound is valid.
	fresh, err := NewRound(p, e.Cost, e.Est)
	if err != nil {
		return nil, err
	}
	optimistic := make([]float64, n)
	for i := 0; i < n; i++ {
		best := math.Inf(-1)
		for j := 0; j < m; j++ {
			if v := fresh.Profit(i, j); v > best {
				best = v
			}
		}
		optimistic[i] = best
	}
	// Suffix sums of the optimistic bounds.
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + optimistic[i]
	}

	assign := make([]int, n)
	bestAssign := make([]int, n)
	haveBest := false
	deadline := time.Time{}
	if e.Budget > 0 {
		deadline = time.Now().Add(e.Budget)
	}
	var dfs func(i int, acc float64) bool // returns false on budget expiry
	dfs = func(i int, acc float64) bool {
		e.nodes++
		if !deadline.IsZero() && e.nodes%1024 == 0 && time.Now().After(deadline) {
			return false
		}
		if i == n {
			if acc > incumbent {
				incumbent = acc
				copy(bestAssign, assign)
				haveBest = true
			}
			return true
		}
		if e.Prune && acc+suffix[i] <= incumbent {
			return true // bound: cannot beat the incumbent
		}
		for j := 0; j < m; j++ {
			v := r.Profit(i, j)
			r.Assign(i, j)
			assign[i] = j
			ok := dfs(i+1, acc+v)
			r.Unassign(i, j)
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(0, 0)

	if !haveBest || incumbent < bfScore {
		return incumbentPlacement, nil
	}
	out := make(model.Placement, n)
	for i := 0; i < n; i++ {
		out[p.VMs[i].Spec.ID] = r.HostID(bestAssign[i])
	}
	return out, nil
}

// scorePlacement evaluates a complete placement by replaying it through a
// fresh round in VM order.
func (e *Exhaustive) scorePlacement(p *Problem, placement model.Placement) float64 {
	r, err := NewRound(p, e.Cost, e.Est)
	if err != nil {
		return math.Inf(-1)
	}
	total := 0.0
	for i := range p.VMs {
		j, ok := r.HostIndex(placement[p.VMs[i].Spec.ID])
		if !ok {
			return math.Inf(-1)
		}
		total += r.Profit(i, j)
		r.Assign(i, j)
	}
	return total
}

var _ Scheduler = (*Exhaustive)(nil)
