package sched

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
)

// TestProfitAlwaysFiniteProperty fuzzes loads and requirements: the profit
// of any tentative assignment must be a finite number — NaNs or infinities
// here would silently corrupt every scheduling decision.
func TestProfitAlwaysFiniteProperty(t *testing.T) {
	f := func(rps, cpuTime, reqCPU, reqMem uint16, srcRaw uint8) bool {
		src := int(srcRaw) % 4
		vm := mkVM(0, 0, float64(rps%500), src)
		vm.Load[src].CPUTimeReq = float64(cpuTime%100) / 1000
		vm.Total = vm.Load.Total()
		est := &fakeEstimator{req: map[model.VMID]model.Resources{
			0: {
				CPUPct: float64(reqCPU % 2000),
				MemMB:  float64(reqMem % 10000),
				BWMbps: float64(reqCPU % 500),
			},
		}}
		p := &Problem{VMs: []VMInfo{vm}, Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 2)}}
		r, err := NewRound(p, paperCost(), est)
		if err != nil {
			return false
		}
		for j := 0; j < 2; j++ {
			v := r.Profit(0, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Logf("non-finite profit %v for rps=%d req=%d", v, rps, reqCPU)
				return false
			}
			// One round's profit is bounded by one round's revenue.
			if v > vm.Spec.PriceEURh*r.cost.HorizonHours+1e-9 {
				t.Logf("profit %v above revenue ceiling", v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBestFitAlwaysPlacesEveryVMProperty: regardless of demands, Best-Fit
// returns a complete placement onto real hosts.
func TestBestFitAlwaysPlacesEveryVMProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 || len(seeds) > 12 {
			return true
		}
		var vms []VMInfo
		est := &fakeEstimator{req: map[model.VMID]model.Resources{}}
		for i, s := range seeds {
			vm := mkVM(i, int(s)%4, float64(s%300), int(s)%4)
			vms = append(vms, vm)
			est.req[vm.Spec.ID] = model.Resources{
				CPUPct: float64(s % 900),
				MemMB:  float64(s%4000) + 64,
				BWMbps: float64(s % 200),
			}
		}
		hosts := []HostInfo{mkHost(0, 0), mkHost(1, 1), mkHost(2, 2)}
		bf := NewBestFit(paperCost(), est)
		placement, err := bf.Schedule(&Problem{VMs: vms, Hosts: hosts})
		if err != nil {
			return false
		}
		if len(placement) != len(vms) {
			return false
		}
		valid := map[model.PMID]bool{0: true, 1: true, 2: true}
		for _, pm := range placement {
			if !valid[pm] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestExhaustiveBudgetExpiryFallsBack: with an absurd instance and a tiny
// budget, the solver must return the Best-Fit fallback promptly instead of
// hanging.
func TestExhaustiveBudgetExpiryFallsBack(t *testing.T) {
	var vms []VMInfo
	est := &fakeEstimator{req: map[model.VMID]model.Resources{}}
	for i := 0; i < 12; i++ {
		vm := mkVM(i, i%4, 20, i%4)
		vms = append(vms, vm)
		est.req[vm.Spec.ID] = model.Resources{CPUPct: 60, MemMB: 300, BWMbps: 5}
	}
	var hosts []HostInfo
	for j := 0; j < 8; j++ {
		hosts = append(hosts, mkHost(j, j%4))
	}
	ex := &Exhaustive{Cost: paperCost(), Est: est, Budget: 5 * time.Millisecond}
	start := time.Now()
	placement, err := ex.Schedule(&Problem{VMs: vms, Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("budget ignored: took %v", time.Since(start))
	}
	if len(placement) != len(vms) {
		t.Fatalf("fallback placement incomplete: %d/%d", len(placement), len(vms))
	}
}

// TestExhaustivePruningPreservesOptimum: with and without the bound the
// solver must find equally good solutions.
func TestExhaustivePruningPreservesOptimum(t *testing.T) {
	est := &fakeEstimator{req: map[model.VMID]model.Resources{
		0: {CPUPct: 250, MemMB: 600, BWMbps: 10},
		1: {CPUPct: 200, MemMB: 500, BWMbps: 8},
		2: {CPUPct: 150, MemMB: 400, BWMbps: 6},
		3: {CPUPct: 100, MemMB: 300, BWMbps: 4},
	}}
	mk := func() *Problem {
		return &Problem{
			VMs:   []VMInfo{mkVM(0, 0, 40, 0), mkVM(1, 1, 30, 1), mkVM(2, 2, 20, 2), mkVM(3, 3, 10, 3)},
			Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 1), mkHost(2, 2)},
		}
	}
	raw := &Exhaustive{Cost: paperCost(), Est: est}
	pruned := &Exhaustive{Cost: paperCost(), Est: est, Prune: true}
	rawP, err := raw.Schedule(mk())
	if err != nil {
		t.Fatal(err)
	}
	prunedP, err := pruned.Schedule(mk())
	if err != nil {
		t.Fatal(err)
	}
	rawScore := raw.scorePlacement(mk(), rawP)
	prunedScore := pruned.scorePlacement(mk(), prunedP)
	if math.Abs(rawScore-prunedScore) > 1e-9 {
		t.Fatalf("pruning changed the optimum: %v vs %v", prunedScore, rawScore)
	}
	if pruned.Nodes() >= raw.Nodes() {
		t.Fatalf("pruning explored as much as enumeration: %d vs %d", pruned.Nodes(), raw.Nodes())
	}
}
