// Package sched contains the decision makers that solve the paper's
// mathematical program (Figure 3): the profit evaluator that scores a
// tentative (VM, host) assignment on revenue, energy and migration cost,
// and the schedulers built on it — Ordered Best-Fit (Algorithm 1), its
// overbooking variant, the ML-enhanced version fed by learned predictors,
// a static baseline and an exhaustive branch-and-bound solver standing in
// for the MILP comparison.
package sched

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/power"
)

// VMInfo is everything the decision maker knows about one schedulable VM.
type VMInfo struct {
	Spec model.VMSpec
	// Load is the expected per-source load for the next round (the gateway
	// observes the current round; the paper's proactive variant feeds the
	// same numbers into predictors).
	Load model.LoadVector
	// Total is Load.Total(), precomputed.
	Total model.Load
	// QueueLen is the gateway's pending-request backlog for this VM.
	QueueLen float64
	// Observed is the window-averaged monitored usage ("resources used in
	// the last 10 minutes"), the non-ML sizing basis.
	Observed    model.Resources
	HasObserved bool
	// Current is the VM's present host (NoPM if entering the system).
	Current model.PMID
	// CurrentDC is the DC of Current (-1 if none).
	CurrentDC model.DCID
}

// HostInfo is everything the decision maker knows about one candidate host.
type HostInfo struct {
	Spec model.PMSpec
	// Resident is the resource requirement of guests that stay on this host
	// and are not part of this scheduling round.
	Resident model.Resources
	// ResidentGuests counts those staying guests.
	ResidentGuests int
	// ResidentRPS is their total request rate.
	ResidentRPS float64
	// ResidentCPUUsage is their observed/predicted CPU usage.
	ResidentCPUUsage float64
}

// Problem is one scheduling round.
type Problem struct {
	VMs   []VMInfo
	Hosts []HostInfo
	// Tick anchors the round in simulation time so time-varying energy
	// prices (the green-energy extension) are priced correctly.
	Tick int
}

// Scheduler computes a placement for the VMs of a problem.
type Scheduler interface {
	// Schedule returns the chosen host per VM. VMs may be left out of the
	// map only if no host exists at all.
	Schedule(p *Problem) (model.Placement, error)
	// Name identifies the scheduler in reports.
	Name() string
}

// CostModel carries the economics of Figure 3's objective function.
type CostModel struct {
	Top   *network.Topology
	Power power.Model
	// HorizonHours is the revenue/energy horizon of one decision — the
	// scheduling round length (paper: 10 minutes).
	HorizonHours float64
	// EnergyAware includes the energy term (switching it off reproduces the
	// pure "follow the load" sanity check of Figure 5).
	EnergyAware bool
	// MigrationAware includes migration penalties.
	MigrationAware bool
	// LatencyOnly scores SLA purely from client latency, ignoring resource
	// competition (Figure 5's driving function).
	LatencyOnly bool
}

// NewCostModel returns the full objective of the paper's evaluation.
func NewCostModel(top *network.Topology, pm power.Model, horizonHours float64) CostModel {
	return CostModel{
		Top: top, Power: pm, HorizonHours: horizonHours,
		EnergyAware: true, MigrationAware: true,
	}
}

// Validate reports configuration errors.
func (c *CostModel) Validate() error {
	if c.Top == nil {
		return fmt.Errorf("sched: CostModel.Top is nil")
	}
	if c.Power == nil {
		return fmt.Errorf("sched: CostModel.Power is nil")
	}
	if c.HorizonHours <= 0 {
		return fmt.Errorf("sched: non-positive horizon %v", c.HorizonHours)
	}
	return nil
}

// hostState tracks one host's tentative occupancy during a round.
type hostState struct {
	info     HostInfo
	avail    model.Resources
	guests   int
	sumCPU   float64 // predicted/observed CPU usage of tentative guests
	sumRPS   float64
	assigned int // guests assigned during this round
}

func newHostState(h HostInfo) *hostState {
	return &hostState{
		info:   h,
		avail:  h.Spec.Capacity.Sub(h.Resident).Max(model.Resources{}),
		guests: h.ResidentGuests,
		sumCPU: h.ResidentCPUUsage,
		sumRPS: h.ResidentRPS,
	}
}

// on reports whether the host would be powered in the tentative plan.
func (s *hostState) on() bool { return s.guests > 0 }

// Round is a profit-evaluation session over one problem: requirements are
// estimated once per VM, and host states are updated as VMs are assigned.
type Round struct {
	cost  CostModel
	est   Estimator
	vms   []VMInfo
	req   []model.Resources
	hosts []*hostState
	tick  int
}

// NewRound precomputes per-VM requirements with the estimator.
func NewRound(p *Problem, cost CostModel, est Estimator) (*Round, error) {
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if est == nil {
		return nil, fmt.Errorf("sched: estimator is nil")
	}
	r := &Round{cost: cost, est: est, vms: p.VMs, tick: p.Tick}
	// A VM's requirement is capped at the largest host: constraint (2) of
	// Figure 3 makes asking for more than a whole machine meaningless, and
	// the cap defuses estimator extrapolation on unseen load levels.
	var maxCap model.Resources
	for _, h := range p.Hosts {
		maxCap = maxCap.Max(h.Spec.Capacity)
	}
	r.req = make([]model.Resources, len(p.VMs))
	for i := range p.VMs {
		req := est.Required(&p.VMs[i]).Max(model.Resources{})
		if len(p.Hosts) > 0 {
			req = req.Min(maxCap)
		}
		r.req[i] = req
	}
	r.hosts = make([]*hostState, len(p.Hosts))
	for i, h := range p.Hosts {
		r.hosts[i] = newHostState(h)
	}
	return r, nil
}

// Required exposes the estimated requirement of VM i.
func (r *Round) Required(i int) model.Resources { return r.req[i] }

// NumHosts returns the candidate host count.
func (r *Round) NumHosts() int { return len(r.hosts) }

// NumVMs returns the schedulable VM count.
func (r *Round) NumVMs() int { return len(r.vms) }

// HostID returns the PMID of host j.
func (r *Round) HostID(j int) model.PMID { return r.hosts[j].info.Spec.ID }

// Profit scores placing VM i on host j given the current tentative state —
// the per-assignment form of Figure 3's objective:
//
//	frevenue(SLA) - fpenalty(migration) - fenergycost(marginal power).
func (r *Round) Profit(i, j int) float64 {
	vm := &r.vms[i]
	host := r.hosts[j]
	req := r.req[i]
	hostDC := host.info.Spec.DC

	grant := req.Min(host.avail)
	grantCPU := grant.CPUPct
	memDeficit := memDeficitFrac(grant.MemMB, req.MemMB)
	latency := r.cost.Top.MeanLatencyFrom(hostDC, vm.Load)

	var slaEst float64
	if r.cost.LatencyOnly {
		slaEst = vm.Spec.Terms.Fulfilment(vm.Spec.Terms.RT0/2 + latency)
	} else if v, ok := r.est.SLA(vm, grantCPU, memDeficit, latency); ok {
		slaEst = v
	} else {
		slaEst = HeuristicSLA(vm, req, grant, latency)
	}
	profit := vm.Spec.PriceEURh * slaEst * r.cost.HorizonHours

	if r.cost.EnergyAware && !r.cost.LatencyOnly {
		vmCPU := r.est.VMCPUUsage(vm, grantCPU)
		newPM := r.est.PMCPU(host.guests+1, host.sumCPU+vmCPU, host.sumRPS+vm.Total.RPS)
		newPM = clampF(newPM, 0, host.info.Spec.Capacity.CPUPct)
		var wattsBefore float64
		if host.on() {
			prevPM := r.est.PMCPU(host.guests, host.sumCPU, host.sumRPS)
			prevPM = clampF(prevPM, 0, host.info.Spec.Capacity.CPUPct)
			wattsBefore = power.FacilityWatts(r.cost.Power, prevPM)
		}
		wattsAfter := power.FacilityWatts(r.cost.Power, newPM)
		marginal := wattsAfter - wattsBefore
		profit -= power.EnergyEUR(marginal, r.cost.HorizonHours, r.cost.Top.EnergyPriceAt(hostDC, r.tick))
	}

	if r.cost.MigrationAware && vm.Current != model.NoPM && vm.Current != host.info.Spec.ID {
		down := r.cost.Top.MigrationDuration(vm.Spec.ImageSizeGB, vm.CurrentDC, hostDC)
		// Explicit penalty fee plus the revenue lost while blacked out.
		profit -= 2 * vm.Spec.PriceEURh * down / 3600
	}
	return profit
}

// Assign commits VM i to host j, updating the tentative host state.
func (r *Round) Assign(i, j int) {
	host := r.hosts[j]
	req := r.req[i]
	host.avail = host.avail.Sub(req).Max(model.Resources{})
	vmCPU := r.est.VMCPUUsage(&r.vms[i], req.CPUPct)
	host.sumCPU += vmCPU
	host.sumRPS += r.vms[i].Total.RPS
	host.guests++
	host.assigned++
}

// Unassign reverses Assign (used by the branch-and-bound solver). The
// caller must unwind in reverse assignment order for exact restoration.
func (r *Round) Unassign(i, j int) {
	host := r.hosts[j]
	req := r.req[i]
	host.avail = host.avail.Add(req).Min(host.info.Spec.Capacity.Sub(host.info.Resident).Max(model.Resources{}))
	vmCPU := r.est.VMCPUUsage(&r.vms[i], req.CPUPct)
	host.sumCPU -= vmCPU
	host.sumRPS -= r.vms[i].Total.RPS
	host.guests--
	host.assigned--
}

// HeuristicSLA is the model-free QoS guess the plain Best-Fit works with:
// full marks when the requirement fits, degraded by the granted fraction
// when it does not, always discounted by client latency.
func HeuristicSLA(vm *VMInfo, req, grant model.Resources, latency float64) float64 {
	base := vm.Spec.Terms.Fulfilment(vm.Spec.Terms.RT0*0.8 + latency)
	if req.CPUPct <= 0 {
		return base
	}
	frac := grant.CPUPct / req.CPUPct
	if frac >= 1 {
		return base
	}
	return base * frac * frac // quadratic: CPU starvation is super-linear pain
}

func memDeficitFrac(granted, required float64) float64 {
	if required <= 0 || granted >= required {
		return 0
	}
	if granted <= 0 {
		return 1
	}
	return (required - granted) / required
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
