// Package sched contains the decision makers that solve the paper's
// mathematical program (Figure 3): the profit evaluator that scores a
// tentative (VM, host) assignment on revenue, energy and migration cost,
// and the schedulers built on it — Ordered Best-Fit (Algorithm 1), its
// overbooking variant, the ML-enhanced version fed by learned predictors,
// a static baseline and an exhaustive branch-and-bound solver standing in
// for the MILP comparison.
package sched

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/par"
	"repro/internal/power"
)

// VMInfo is everything the decision maker knows about one schedulable VM.
type VMInfo struct {
	Spec model.VMSpec
	// Load is the expected per-source load for the next round (the gateway
	// observes the current round; the paper's proactive variant feeds the
	// same numbers into predictors).
	Load model.LoadVector
	// Total is Load.Total(), precomputed.
	Total model.Load
	// QueueLen is the gateway's pending-request backlog for this VM.
	QueueLen float64
	// Observed is the window-averaged monitored usage ("resources used in
	// the last 10 minutes"), the non-ML sizing basis.
	Observed    model.Resources
	HasObserved bool
	// Current is the VM's present host (NoPM if entering the system).
	Current model.PMID
	// CurrentDC is the DC of Current (-1 if none).
	CurrentDC model.DCID
}

// HostInfo is everything the decision maker knows about one candidate host.
type HostInfo struct {
	Spec model.PMSpec
	// Resident is the resource requirement of guests that stay on this host
	// and are not part of this scheduling round.
	Resident model.Resources
	// ResidentGuests counts those staying guests.
	ResidentGuests int
	// ResidentRPS is their total request rate.
	ResidentRPS float64
	// ResidentCPUUsage is their observed/predicted CPU usage.
	ResidentCPUUsage float64
}

// Problem is one scheduling round.
type Problem struct {
	VMs   []VMInfo
	Hosts []HostInfo
	// Tick anchors the round in simulation time so time-varying energy
	// prices (the green-energy extension) are priced correctly.
	Tick int
}

// Scheduler computes a placement for the VMs of a problem.
type Scheduler interface {
	// Schedule returns the chosen host per VM. VMs may be left out of the
	// map only if no host exists at all.
	Schedule(p *Problem) (model.Placement, error)
	// Name identifies the scheduler in reports.
	Name() string
}

// CostModel carries the economics of Figure 3's objective function.
type CostModel struct {
	Top   *network.Topology
	Power power.Model
	// HorizonHours is the revenue/energy horizon of one decision — the
	// scheduling round length (paper: 10 minutes).
	HorizonHours float64
	// EnergyAware includes the energy term (switching it off reproduces the
	// pure "follow the load" sanity check of Figure 5).
	EnergyAware bool
	// MigrationAware includes migration penalties.
	MigrationAware bool
	// LatencyOnly scores SLA purely from client latency, ignoring resource
	// competition (Figure 5's driving function).
	LatencyOnly bool
}

// NewCostModel returns the full objective of the paper's evaluation.
func NewCostModel(top *network.Topology, pm power.Model, horizonHours float64) CostModel {
	return CostModel{
		Top: top, Power: pm, HorizonHours: horizonHours,
		EnergyAware: true, MigrationAware: true,
	}
}

// Validate reports configuration errors.
func (c *CostModel) Validate() error {
	if c.Top == nil {
		return fmt.Errorf("sched: CostModel.Top is nil")
	}
	if c.Power == nil {
		return fmt.Errorf("sched: CostModel.Power is nil")
	}
	if c.HorizonHours <= 0 {
		return fmt.Errorf("sched: non-positive horizon %v", c.HorizonHours)
	}
	return nil
}

// Round is a reusable profit-evaluation session over one problem. Host
// state lives in dense structure-of-arrays slices, and everything the old
// per-candidate evaluation recomputed from scratch is memoized once per
// round (see DESIGN.md, "Scheduling round hot path"):
//
//   - per-VM requirements and full-grant VM CPU usage,
//   - per-(VM, DC) request-weighted mean latencies, full-grant SLA
//     estimates and migration penalties,
//   - per-DC energy prices at the round's tick,
//   - per-host powered-on baseline watts, invalidated only by
//     Assign/Unassign (the only mutations of tentative host state).
//
// Profit therefore mutates nothing: concurrent ProfitScratch calls with
// distinct scratches are safe between mutations, which is what makes
// BestFit's parallel candidate evaluation race-free.
type Round struct {
	cost CostModel
	est  Estimator
	vms  []VMInfo
	tick int

	// per-VM state.
	req       []model.Resources
	vmCPUFull []float64         // est.VMCPUUsage at the full-requirement grant
	prevAvail []model.Resources // snapshot for exact Unassign restoration

	// per-host SoA state (index parallel to Problem.Hosts).
	hID          []model.PMID
	hDC          []model.DCID
	hCapCPU      []float64
	hAvail       []model.Resources
	hGuests      []int
	hSumCPU      []float64
	hSumRPS      []float64
	hAssigned    []int
	hWattsBefore []float64 // facility watts of the tentative population

	// memoized tables. Only rows of DCs present among the candidate hosts
	// are filled; absent-DC entries are stale and must not be read.
	nDC       int
	dcs       []int     // distinct DCs hosting candidates
	dcPresent []bool    // [dc] membership of dcs
	priceDC   []float64 // EUR/kWh per DC at tick
	latVMDC   []float64 // [i*nDC+dc] mean client latency
	slaFull   []float64 // [i*nDC+dc] SLA estimate at grant == req
	migPen    []float64 // [i*nDC+dc] migration penalty EUR

	idx       map[model.PMID]int
	maxCap    model.Resources // largest host capacity, caps requirements
	curve     []float64       // power fast path (nil: interface dispatch)
	needWatts bool
	gen       uint64 // Reset counter, invalidates scratch-level memos
	scratch   Scratch

	// Proc-split views of est (nil when the estimator does not factor).
	estProc  SLAProcEstimator
	estBatch BatchSLAEstimator

	// fillList is the set of VM rows (re)computed by the current Reset —
	// all rows normally, only the moved rows in delta mode. fillSlot is
	// the parallel delta-memo slot per refilled row (delta mode only).
	fillList []int32
	fillSlot []int32

	// Delta-round memo (enabled via SetDelta): the per-VM fill outputs of
	// previous Resets, keyed by VM identity so rows survive index shifts
	// under churn. A row is reused when its context (estimator, topology,
	// cost switches, DC set, capacity cap) is unchanged and its feature
	// signature moved by at most deltaEps (0 = bit-exact reuse). Slots of
	// departed VMs are swept once the map outgrows the fleet.
	deltaOn  bool
	deltaEps float64
	dCtx     deltaCtx
	dSlot    map[model.VMID]int32
	dFree    []int32
	dUsed    int32
	dGen     []uint64  // [slot] last r.gen the slot was touched
	dSig     []float64 // [slot*sigW] feature signature
	dReq     []model.Resources
	dCPU     []float64
	dLat     []float64 // [slot*nDC+dc]
	dSLA     []float64
	dMig     []float64
	sigW     int
	maxSrc   int // load-vector width the signature layout covers
	sigTmp   []float64

	// Instrumentation of the last Reset.
	fillNS                     int64
	rowsReused, rowsRecomputed int

	// Candidate-pruning shortlist index (enabled via SetPrune): the
	// equivalence classes of tentative host state, rebuilt by Reset and
	// re-keyed by Assign/Unassign. See prune.go.
	pruneOn  bool
	pruneIdx pruneIndex
}

// deltaCtx is the table-fill context outside the per-VM inputs: any change
// here invalidates the whole delta memo (the memoized outputs were computed
// under different rules).
type deltaCtx struct {
	est            Estimator
	top            *network.Topology
	latencyOnly    bool
	migrationAware bool
	hasHosts       bool
	nDC            int
	maxCap         model.Resources
	dcs            []int // copy of the present-DC list, order-sensitive
	valid          bool
}

// fillIdx computes the per-VM table rows of every VM in list, in three
// stages: (1) capped requirements and full-grant CPU usage, which also
// yields the grant vector; (2) the latency-independent SLA processing
// stage — one query per VM, batched through the estimator when it supports
// BatchSLAEstimator, so the k-NN descent is amortized over the whole
// chunk; (3) the per-candidate-DC latency, composed SLA and migration
// penalty. It reads only immutable round inputs plus the given scratch, so
// disjoint lists may fill concurrently with distinct scratches.
//
// Estimators without the proc split fall back to the per-(VM, DC) SLA
// query of the original fill; both paths are bit-identical to it (the
// split contract requires compose(proc) == SLA exactly).
func (r *Round) fillIdx(list []int32, s *Scratch) {
	n := len(list)
	// Stage 1: requirements and grants. A VM's requirement is capped at
	// the largest host: constraint (2) of Figure 3 makes asking for more
	// than a whole machine meaningless, and the cap defuses estimator
	// extrapolation on unseen load levels.
	s.grants = grown(s.grants, n)
	capReq := len(r.hID) > 0
	for p, i := range list {
		vm := &r.vms[i]
		req := r.est.Required(vm, s).Max(model.Resources{})
		if capReq {
			req = req.Min(r.maxCap)
		}
		r.req[i] = req
		r.vmCPUFull[i] = r.est.VMCPUUsage(vm, req.CPUPct, s)
		s.grants[p] = req.CPUPct
	}
	// Stage 2: the latency-free processing stage (skipped when the cost
	// model scores latency only, or the estimator does not factor).
	useProc := r.estProc != nil && !r.cost.LatencyOnly
	if useProc {
		s.slaProc = grown(s.slaProc, n)
		s.rtProc = grown(s.rtProc, n)
		if r.estBatch != nil {
			r.estBatch.SLAProcBatch(r.vms, list, s.grants, s.slaProc, s.rtProc, s)
		} else {
			for p, i := range list {
				s.slaProc[p], s.rtProc[p] = r.estProc.SLAProc(&r.vms[i], s.grants[p], 0, s)
			}
		}
	}
	// Stage 3: per-DC columns.
	for p, i := range list {
		vm := &r.vms[int(i)]
		base := int(i) * r.nDC
		for _, dc := range r.dcs {
			lat := r.cost.Top.MeanLatencyFrom(model.DCID(dc), vm.Load)
			r.latVMDC[base+dc] = lat
			var sla float64
			switch {
			case r.cost.LatencyOnly:
				sla = vm.Spec.Terms.Fulfilment(vm.Spec.Terms.RT0/2 + lat)
			case useProc:
				sla = r.estProc.ComposeSLA(vm, s.slaProc[p], s.rtProc[p], lat)
			default:
				if v, ok := r.est.SLA(vm, s.grants[p], 0, lat, s); ok {
					sla = v
				} else {
					sla = HeuristicSLA(vm, r.req[i], r.req[i], lat)
				}
			}
			r.slaFull[base+dc] = sla
			pen := 0.0
			if r.cost.MigrationAware && vm.Current != model.NoPM {
				down := r.cost.Top.MigrationDuration(vm.Spec.ImageSizeGB, vm.CurrentDC, model.DCID(dc))
				// Explicit penalty fee plus the revenue lost while blacked out.
				pen = 2 * vm.Spec.PriceEURh * down / 3600
			}
			r.migPen[base+dc] = pen
		}
	}
}

// NewRound builds a Round and primes it for the problem; Reset reuses it.
func NewRound(p *Problem, cost CostModel, est Estimator) (*Round, error) {
	r := &Round{}
	if err := r.Reset(p, cost, est); err != nil {
		return nil, err
	}
	return r, nil
}

// Reset re-primes the round for a (possibly new) problem, reusing all
// internal storage — the steady-state path allocates nothing. The round
// aliases p.VMs until the next Reset.
func (r *Round) Reset(p *Problem, cost CostModel, est Estimator) error {
	return r.ResetParallel(p, cost, est, 1, nil)
}

// ResetParallel is Reset with the per-VM table fill (requirements,
// full-grant CPU, latencies, SLA estimates, migration penalties — the
// read-only scoring precomputation) fanned out over up to workers
// goroutines, worker w using scratches[w]. Rows are independent and every
// estimator is required to be a pure function of its arguments, so the
// tables are bit-identical to the serial fill at any worker count.
// workers <= 1 (or a short scratch slice) runs serially on the round's
// own scratch.
func (r *Round) ResetParallel(p *Problem, cost CostModel, est Estimator, workers int, scratches []Scratch) error {
	fillStart := time.Now()
	if err := cost.Validate(); err != nil {
		return err
	}
	if est == nil {
		return fmt.Errorf("sched: estimator is nil")
	}
	r.cost, r.est, r.vms, r.tick = cost, est, p.VMs, p.Tick
	r.estProc, _ = est.(SLAProcEstimator)
	r.estBatch, _ = est.(BatchSLAEstimator)
	r.gen++
	nV, nH := len(p.VMs), len(p.Hosts)
	r.nDC = cost.Top.NumDCs()

	// Hosts: dense columns plus the id index.
	r.hID = grown(r.hID, nH)
	r.hDC = grown(r.hDC, nH)
	r.hCapCPU = grown(r.hCapCPU, nH)
	r.hAvail = grown(r.hAvail, nH)
	r.hGuests = grown(r.hGuests, nH)
	r.hSumCPU = grown(r.hSumCPU, nH)
	r.hSumRPS = grown(r.hSumRPS, nH)
	r.hAssigned = grown(r.hAssigned, nH)
	r.hWattsBefore = grown(r.hWattsBefore, nH)
	if r.idx == nil {
		r.idx = make(map[model.PMID]int, nH)
	} else {
		clear(r.idx)
	}
	var maxCap model.Resources
	for j := range p.Hosts {
		h := &p.Hosts[j]
		if h.Spec.DC < 0 || int(h.Spec.DC) >= r.nDC {
			return fmt.Errorf("sched: host %v in DC %v outside topology (%d DCs)",
				h.Spec.ID, h.Spec.DC, r.nDC)
		}
		r.hID[j] = h.Spec.ID
		r.hDC[j] = h.Spec.DC
		r.hCapCPU[j] = h.Spec.Capacity.CPUPct
		r.hAvail[j] = h.Spec.Capacity.Sub(h.Resident).Max(model.Resources{})
		r.hGuests[j] = h.ResidentGuests
		r.hSumCPU[j] = h.ResidentCPUUsage
		r.hSumRPS[j] = h.ResidentRPS
		r.hAssigned[j] = 0
		r.idx[h.Spec.ID] = j
		maxCap = maxCap.Max(h.Spec.Capacity)
	}
	// Distinct DCs among the candidates: the per-(VM, DC) tables below are
	// filled only for these, so a single-DC sub-problem (the hierarchical
	// scheduler's local rounds) pays one column, not the whole topology.
	r.dcPresent = grown(r.dcPresent, r.nDC)
	for dc := range r.dcPresent {
		r.dcPresent[dc] = false
	}
	r.dcs = r.dcs[:0]
	for j := 0; j < nH; j++ {
		if dc := int(r.hDC[j]); !r.dcPresent[dc] {
			r.dcPresent[dc] = true
			r.dcs = append(r.dcs, dc)
		}
	}

	r.maxCap = maxCap

	// Per-DC energy prices at this round's tick.
	r.priceDC = cost.Top.EnergyPricesAt(p.Tick, r.priceDC)

	// Per-VM tables: requirement, full-grant CPU usage, and the per-DC
	// latency / full-grant SLA / migration-penalty columns. Rows are
	// independent, so the fill fans out when the caller provides worker
	// scratches; each worker writes only its own rows.
	r.req = grown(r.req, nV)
	r.vmCPUFull = grown(r.vmCPUFull, nV)
	r.prevAvail = grown(r.prevAvail, nV)
	r.latVMDC = grown(r.latVMDC, nV*r.nDC)
	r.slaFull = grown(r.slaFull, nV*r.nDC)
	r.migPen = grown(r.migPen, nV*r.nDC)

	// Decide which rows to (re)fill. Without delta mode (or after any
	// context change) that is every row; in delta mode, rows whose memoized
	// signature still matches are restored from the memo instead.
	list := r.decideFill()
	r.rowsRecomputed = len(list)
	r.rowsReused = nV - len(list)

	// Fill the chosen rows, fanned out as contiguous blocks so the batched
	// processing stage amortizes over whole chunks rather than single VMs.
	if workers > len(scratches) {
		workers = len(scratches)
	}
	if workers > 1 && len(list) > 1 {
		par.ForEachChunkWorker(len(list), workers, func(w, lo, hi int) {
			r.fillIdx(list[lo:hi], &scratches[w])
		})
	} else {
		r.fillIdx(list, &r.scratch)
	}
	if r.deltaOn {
		r.storeDelta(list)
	}

	// Power: grab the raw curve when the model exposes one, then prime the
	// per-host baseline watts.
	r.curve = nil
	if cm, ok := cost.Power.(power.CurveModel); ok {
		r.curve = cm.CurvePoints()
	}
	r.needWatts = cost.EnergyAware && !cost.LatencyOnly
	if r.needWatts {
		for j := 0; j < nH; j++ {
			r.recomputeWattsBefore(j)
		}
	}
	if r.pruneOn {
		r.pruneIdx.rebuildPrune(r)
	}
	r.fillNS = time.Since(fillStart).Nanoseconds()
	return nil
}

// SetDelta switches delta rounds on or off for subsequent Resets. With
// delta on, the fill outputs of each Reset are memoized per VM identity
// and reused next Reset for VMs whose feature signature moved by at most
// eps (relative movement; eps = 0 demands bit-exact equality, making delta
// rounds placement-identical to full rounds). Changing the mode or the
// epsilon drops the memo.
func (r *Round) SetDelta(on bool, eps float64) {
	if on == r.deltaOn && eps == r.deltaEps {
		return
	}
	r.deltaOn, r.deltaEps = on, eps
	r.dCtx.valid = false
	r.dropDelta()
}

// FillStats reports the instrumentation of the last Reset: the wall-clock
// nanoseconds of the table fill and the delta-round row counters (with
// delta off, reused is 0 and recomputed is the fleet size).
func (r *Round) FillStats() (fillNS int64, rowsReused, rowsRecomputed int) {
	return r.fillNS, r.rowsReused, r.rowsRecomputed
}

// sigExactW is the width of the signature's exact-match prefix: identity,
// placement and contract fields where any change whatsoever invalidates
// the row (the epsilon tolerance applies only to the monitored features
// after it).
const sigExactW = 10

// decideFill returns the list of VM rows the current Reset must compute.
// In delta mode with an unchanged fill context it restores matching rows
// from the memo and returns only the moved (or new) rows, recording the
// memo slot of each so storeDelta can write the fresh outputs back.
func (r *Round) decideFill() []int32 {
	nV := len(r.vms)
	r.fillList = r.fillList[:0]
	if !r.deltaOn {
		for i := 0; i < nV; i++ {
			r.fillList = append(r.fillList, int32(i))
		}
		return r.fillList
	}
	// A wider load vector than the signature layout covers forces a new
	// layout, which orphans every stored signature.
	needSrc := r.maxSrc
	for i := range r.vms {
		if n := len(r.vms[i].Load); n > needSrc {
			needSrc = n
		}
	}
	if needSrc > r.maxSrc || r.sigW == 0 {
		r.maxSrc = needSrc
		r.sigW = sigExactW + 4 + 4*r.maxSrc
		r.dropDelta()
	}
	if !r.ctxMatches() {
		r.ctxStore()
		r.dropDelta()
	}
	r.fillSlot = r.fillSlot[:0]
	for i := 0; i < nV; i++ {
		sig := r.buildSig(&r.vms[i], r.sigTmp)
		r.sigTmp = sig
		slot, known := r.dSlot[r.vms[i].Spec.ID]
		if known && sigMatches(r.dSig[int(slot)*r.sigW:int(slot+1)*r.sigW], sig, r.deltaEps) {
			r.restoreDelta(i, slot)
			r.dGen[slot] = r.gen
			continue
		}
		if !known {
			slot = r.allocSlot()
			r.dSlot[r.vms[i].Spec.ID] = slot
		}
		copy(r.dSig[int(slot)*r.sigW:int(slot+1)*r.sigW], sig)
		r.dGen[slot] = r.gen
		r.fillList = append(r.fillList, int32(i))
		r.fillSlot = append(r.fillSlot, slot)
	}
	// Sweep slots of departed VMs once the memo clearly outgrows the
	// fleet, so a churning workload cannot grow it without bound.
	if int(r.dUsed) > 2*nV+64 {
		for id, slot := range r.dSlot {
			if r.dGen[slot] != r.gen {
				delete(r.dSlot, id)
				r.dFree = append(r.dFree, slot)
			}
		}
	}
	return r.fillList
}

// ctxMatches reports whether the fill context of the previous Reset still
// holds. The DC list is compared order-sensitively: host order is
// deterministic for an unchanged problem, and a false negative merely
// costs one full fill.
func (r *Round) ctxMatches() bool {
	c := &r.dCtx
	if !c.valid || c.est != r.est || c.top != r.cost.Top ||
		c.latencyOnly != r.cost.LatencyOnly || c.migrationAware != r.cost.MigrationAware ||
		c.hasHosts != (len(r.hID) > 0) || c.nDC != r.nDC || c.maxCap != r.maxCap ||
		len(c.dcs) != len(r.dcs) {
		return false
	}
	for k, dc := range r.dcs {
		if c.dcs[k] != dc {
			return false
		}
	}
	return true
}

func (r *Round) ctxStore() {
	r.dCtx = deltaCtx{
		est: r.est, top: r.cost.Top,
		latencyOnly: r.cost.LatencyOnly, migrationAware: r.cost.MigrationAware,
		hasHosts: len(r.hID) > 0, nDC: r.nDC, maxCap: r.maxCap,
		dcs: append(r.dCtx.dcs[:0], r.dcs...), valid: true,
	}
}

// dropDelta forgets every memoized row (slot storage is kept for reuse).
func (r *Round) dropDelta() {
	if r.dSlot == nil {
		r.dSlot = make(map[model.VMID]int32)
	} else {
		clear(r.dSlot)
	}
	r.dFree = r.dFree[:0]
	r.dUsed = 0
}

// buildSig writes the delta signature of vm into dst: the exact-match
// prefix (placement, spec and SLA-contract fields), then the
// epsilon-tolerant monitored features (backlog, observed usage, per-source
// load), padded to the fixed layout width.
func (r *Round) buildSig(vm *VMInfo, dst []float64) []float64 {
	cur := 0.0
	if vm.HasObserved {
		cur = 1
	}
	dst = append(dst[:0],
		float64(vm.Current), float64(vm.CurrentDC), cur,
		vm.Spec.PriceEURh, vm.Spec.ImageSizeGB, vm.Spec.BaseMemMB, vm.Spec.MaxMemMB,
		vm.Spec.Terms.RT0, vm.Spec.Terms.Alpha, float64(len(vm.Load)),
		vm.QueueLen, vm.Observed.CPUPct, vm.Observed.MemMB, vm.Observed.BWMbps,
	)
	for _, l := range vm.Load {
		dst = append(dst, l.RPS, l.BytesInReq, l.BytesOutRq, l.CPUTimeReq)
	}
	for len(dst) < r.sigW {
		dst = append(dst, 0)
	}
	return dst
}

// sigMatches reports whether a stored signature still covers the current
// one: the exact prefix must be identical, and each later feature may move
// at most eps relative to the larger magnitude (eps <= 0: bit-exact).
func sigMatches(old, cur []float64, eps float64) bool {
	for i := 0; i < sigExactW; i++ {
		if old[i] != cur[i] {
			return false
		}
	}
	if eps <= 0 {
		for i := sigExactW; i < len(old); i++ {
			if old[i] != cur[i] {
				return false
			}
		}
		return true
	}
	for i := sigExactW; i < len(old); i++ {
		d := old[i] - cur[i]
		if d < 0 {
			d = -d
		}
		m := old[i]
		if m < 0 {
			m = -m
		}
		if c := cur[i]; c > m {
			m = c
		} else if -c > m {
			m = -c
		}
		if d > eps*m {
			return false
		}
	}
	return true
}

// allocSlot hands out a memo slot, growing the backing columns while
// preserving the rows already stored.
func (r *Round) allocSlot() int32 {
	if n := len(r.dFree); n > 0 {
		s := r.dFree[n-1]
		r.dFree = r.dFree[:n-1]
		return s
	}
	s := r.dUsed
	r.dUsed++
	n := int(r.dUsed)
	r.dGen = growKeep(r.dGen, n)
	r.dSig = growKeep(r.dSig, n*r.sigW)
	r.dReq = growKeep(r.dReq, n)
	r.dCPU = growKeep(r.dCPU, n)
	r.dLat = growKeep(r.dLat, n*r.nDC)
	r.dSLA = growKeep(r.dSLA, n*r.nDC)
	r.dMig = growKeep(r.dMig, n*r.nDC)
	return s
}

// restoreDelta copies a memoized row into the round tables. Absent-DC
// entries ride along; they are stale in the memo exactly as they would be
// in a fresh fill, and the tables' contract already forbids reading them.
func (r *Round) restoreDelta(i int, slot int32) {
	r.req[i] = r.dReq[slot]
	r.vmCPUFull[i] = r.dCPU[slot]
	base, mbase := i*r.nDC, int(slot)*r.nDC
	copy(r.latVMDC[base:base+r.nDC], r.dLat[mbase:mbase+r.nDC])
	copy(r.slaFull[base:base+r.nDC], r.dSLA[mbase:mbase+r.nDC])
	copy(r.migPen[base:base+r.nDC], r.dMig[mbase:mbase+r.nDC])
}

// storeDelta writes the freshly filled rows back into the memo (their
// signatures were stored by decideFill).
func (r *Round) storeDelta(list []int32) {
	for p, i := range list {
		slot := r.fillSlot[p]
		r.dReq[slot] = r.req[i]
		r.dCPU[slot] = r.vmCPUFull[i]
		base, mbase := int(i)*r.nDC, int(slot)*r.nDC
		copy(r.dLat[mbase:mbase+r.nDC], r.latVMDC[base:base+r.nDC])
		copy(r.dSLA[mbase:mbase+r.nDC], r.slaFull[base:base+r.nDC])
		copy(r.dMig[mbase:mbase+r.nDC], r.migPen[base:base+r.nDC])
	}
}

// Required exposes the estimated requirement of VM i.
func (r *Round) Required(i int) model.Resources { return r.req[i] }

// NumHosts returns the candidate host count.
func (r *Round) NumHosts() int { return len(r.hID) }

// NumVMs returns the schedulable VM count.
func (r *Round) NumVMs() int { return len(r.vms) }

// HostID returns the PMID of host j.
func (r *Round) HostID(j int) model.PMID { return r.hID[j] }

// HostIndex returns the dense index of the host with the given id.
func (r *Round) HostIndex(id model.PMID) (int, bool) {
	j, ok := r.idx[id]
	return j, ok
}

// FullGrantSLA exposes the memoized SLA estimate of VM i when a host in dc
// grants its full requirement — the quantity a composite scheduler (e.g.
// the hierarchical decomposition) would otherwise re-predict. dc must be a
// DC with candidate hosts in this round.
func (r *Round) FullGrantSLA(i int, dc model.DCID) float64 {
	return r.slaFull[i*r.nDC+int(dc)]
}

// FullGrantVMCPU exposes the memoized CPU usage estimate of VM i under its
// full requirement grant.
func (r *Round) FullGrantVMCPU(i int) float64 { return r.vmCPUFull[i] }

// Latency exposes the memoized mean client latency of VM i hosted in dc.
// dc must be a DC with candidate hosts in this round.
func (r *Round) Latency(i int, dc model.DCID) float64 {
	return r.latVMDC[i*r.nDC+int(dc)]
}

// facilityWatts is power.FacilityWatts through the cached curve when the
// model exposes one (identical arithmetic, no interface dispatch).
func (r *Round) facilityWatts(cpuPct float64) float64 {
	if r.curve != nil {
		return power.Interpolate(r.curve, cpuPct) * power.CoolingFactor
	}
	return power.FacilityWatts(r.cost.Power, cpuPct)
}

// recomputeWattsBefore refreshes host j's powered-on baseline draw; called
// whenever the tentative population of j changes.
func (r *Round) recomputeWattsBefore(j int) {
	if r.hGuests[j] <= 0 {
		r.hWattsBefore[j] = 0
		return
	}
	prevPM := r.est.PMCPU(r.hGuests[j], r.hSumCPU[j], r.hSumRPS[j], &r.scratch)
	prevPM = clampF(prevPM, 0, r.hCapCPU[j])
	r.hWattsBefore[j] = r.facilityWatts(prevPM)
}

// Profit scores placing VM i on host j given the current tentative state —
// the per-assignment form of Figure 3's objective:
//
//	frevenue(SLA) - fpenalty(migration) - fenergycost(marginal power).
func (r *Round) Profit(i, j int) float64 { return r.ProfitScratch(i, j, &r.scratch) }

// ProfitScratch is Profit with an explicit estimator scratch, the form the
// parallel candidate evaluation uses with one scratch per worker. It reads
// but never writes round state.
func (r *Round) ProfitScratch(i, j int, s *Scratch) float64 {
	vm := &r.vms[i]
	req := r.req[i]
	avail := r.hAvail[j]
	dc := int(r.hDC[j])
	base := i*r.nDC + dc
	lat := r.latVMDC[base]

	// The common uncongested case — the host can grant the full
	// requirement — reuses the memoized full-grant estimates; the congested
	// case pays the estimator for the clamped grant, deduplicated through
	// the scratch memo (hosts with equal availability in the same DC pose
	// the exact same query).
	fits := req.FitsIn(avail)

	var slaEst float64
	var entry *profitCacheEntry
	if fits || r.cost.LatencyOnly {
		slaEst = r.slaFull[base]
	} else if r.estProc != nil {
		// Proc-split estimator: memoize the latency-free processing pair
		// under dc == -1 so one entry serves every DC, and compose the
		// host's latency per call (closed-form, cheap).
		grant := req.Min(avail)
		entry = s.profitEntry(r, i, grant.CPUPct, memDeficitFrac(grant.MemMB, req.MemMB), -1)
		if !entry.hasSLA {
			entry.sla, entry.rt = r.estProc.SLAProc(vm, entry.grantCPU, entry.memDef, s)
			entry.hasSLA = true
		}
		slaEst = r.estProc.ComposeSLA(vm, entry.sla, entry.rt, lat)
	} else {
		grant := req.Min(avail)
		entry = s.profitEntry(r, i, grant.CPUPct, memDeficitFrac(grant.MemMB, req.MemMB), dc)
		if !entry.hasSLA {
			if v, ok := r.est.SLA(vm, entry.grantCPU, entry.memDef, lat, s); ok {
				entry.sla = v
			} else {
				entry.sla = HeuristicSLA(vm, req, grant, lat)
			}
			entry.hasSLA = true
		}
		slaEst = entry.sla
	}
	profit := vm.Spec.PriceEURh * slaEst * r.cost.HorizonHours

	if r.needWatts {
		var vmCPU float64
		if fits {
			vmCPU = r.vmCPUFull[i]
		} else {
			// needWatts implies !LatencyOnly, so entry is set above.
			if !entry.hasCPU {
				entry.vmCPU = r.est.VMCPUUsage(vm, entry.grantCPU, s)
				entry.hasCPU = true
			}
			vmCPU = entry.vmCPU
		}
		marginal := s.marginalWatts(r, i, j, vmCPU)
		profit -= power.EnergyEUR(marginal, r.cost.HorizonHours, r.priceDC[dc])
	}

	if r.cost.MigrationAware && vm.Current != model.NoPM && vm.Current != r.hID[j] {
		profit -= r.migPen[base]
	}
	return profit
}

// Assign commits VM i to host j, updating the tentative host state and
// invalidating the cached baseline watts of j.
func (r *Round) Assign(i, j int) {
	r.prevAvail[i] = r.hAvail[j]
	r.hAvail[j] = r.hAvail[j].Sub(r.req[i]).Max(model.Resources{})
	r.hSumCPU[j] += r.vmCPUFull[i]
	r.hSumRPS[j] += r.vms[i].Total.RPS
	r.hGuests[j]++
	r.hAssigned[j]++
	if r.needWatts {
		r.recomputeWattsBefore(j)
	}
	if r.pruneOn && r.pruneIdx.valid {
		r.pruneIdx.rekeyHost(r, j)
	}
}

// Unassign reverses Assign (used by the branch-and-bound solver). The
// caller must unwind in reverse assignment order; restoration is exact
// because Assign snapshots the availability it clobbered — adding the
// requirement back would over-restore whenever the requirement exceeded
// what was actually available (the clamp in Assign).
func (r *Round) Unassign(i, j int) {
	r.hAvail[j] = r.prevAvail[i]
	r.hSumCPU[j] -= r.vmCPUFull[i]
	r.hSumRPS[j] -= r.vms[i].Total.RPS
	r.hGuests[j]--
	r.hAssigned[j]--
	if r.needWatts {
		r.recomputeWattsBefore(j)
	}
	if r.pruneOn && r.pruneIdx.valid {
		r.pruneIdx.rekeyHost(r, j)
	}
}

// HeuristicSLA is the model-free QoS guess the plain Best-Fit works with:
// full marks when the requirement fits, degraded by the granted fraction
// when it does not, always discounted by client latency.
func HeuristicSLA(vm *VMInfo, req, grant model.Resources, latency float64) float64 {
	base := vm.Spec.Terms.Fulfilment(vm.Spec.Terms.RT0*0.8 + latency)
	if req.CPUPct <= 0 {
		return base
	}
	frac := grant.CPUPct / req.CPUPct
	if frac >= 1 {
		return base
	}
	return base * frac * frac // quadratic: CPU starvation is super-linear pain
}

func memDeficitFrac(granted, required float64) float64 {
	if required <= 0 || granted >= required {
		return 0
	}
	if granted <= 0 {
		return 1
	}
	return (required - granted) / required
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// grown returns s resized to n, reusing capacity; contents are undefined
// (callers overwrite every element).
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growKeep returns s resized to n, preserving existing contents (the
// delta-memo columns must survive growth).
func growKeep[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]T, n, n+n/2+8)
	copy(ns, s)
	return ns
}
