package sched

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/power"
)

// fakeEstimator gives tests full control over requirements and SLA.
type fakeEstimator struct {
	req    map[model.VMID]model.Resources
	sla    func(vm *VMInfo, grantCPU, memDef, lat float64) (float64, bool)
	pmBase float64
}

func (f *fakeEstimator) Name() string { return "fake" }

func (f *fakeEstimator) Required(vm *VMInfo, _ *Scratch) model.Resources {
	if r, ok := f.req[vm.Spec.ID]; ok {
		return r
	}
	return model.Resources{CPUPct: 50, MemMB: 256, BWMbps: 5}
}

func (f *fakeEstimator) SLA(vm *VMInfo, grantCPU, memDef, lat float64, _ *Scratch) (float64, bool) {
	if f.sla == nil {
		return 0, false
	}
	return f.sla(vm, grantCPU, memDef, lat)
}

func (f *fakeEstimator) VMCPUUsage(vm *VMInfo, grantCPU float64, s *Scratch) float64 {
	r := f.Required(vm, s)
	if r.CPUPct > grantCPU {
		return grantCPU
	}
	return r.CPUPct
}

func (f *fakeEstimator) PMCPU(nGuests int, sumCPU, sumRPS float64, _ *Scratch) float64 {
	if nGuests == 0 {
		return 0
	}
	return sumCPU + f.pmBase
}

func paperCost() CostModel {
	return NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
}

func mkVM(id int, homeDC int, rps float64, srcDC int) VMInfo {
	lv := make(model.LoadVector, 4)
	lv[srcDC] = model.Load{RPS: rps, BytesInReq: 500, BytesOutRq: 10_000, CPUTimeReq: 0.01}
	return VMInfo{
		Spec: model.VMSpec{
			ID: model.VMID(id), Name: "vm", ImageSizeGB: 4,
			BaseMemMB: 256, MaxMemMB: 1024,
			Terms: model.DefaultSLATerms, PriceEURh: 0.17,
			HomeDC: model.DCID(homeDC),
		},
		Load:      lv,
		Total:     lv.Total(),
		Current:   model.NoPM,
		CurrentDC: -1,
	}
}

func mkHost(id, dc int) HostInfo {
	return HostInfo{Spec: model.PMSpec{
		ID: model.PMID(id), DC: model.DCID(dc),
		Capacity: model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 1000},
		Cores:    4,
	}}
}

func TestBestFitPlacesNearLoad(t *testing.T) {
	// One VM with all clients in Barcelona (DC 2), hosts in all 4 DCs with
	// equal emptiness: latency should pull it to Barcelona.
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 30, 2)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 1), mkHost(2, 2), mkHost(3, 3)},
	}
	bf := NewBestFit(paperCost(), NewObserved())
	// No observations yet: estimator falls back to defaults, latency still
	// drives the choice.
	placement, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != 2 {
		t.Fatalf("VM placed at %v, want Barcelona host 2", placement[0])
	}
}

func TestBestFitConsolidatesLightLoad(t *testing.T) {
	// Two light VMs, two hosts in the same DC: powering a second host
	// costs more than it buys, so both should land together.
	est := &fakeEstimator{req: map[model.VMID]model.Resources{
		0: {CPUPct: 60, MemMB: 300, BWMbps: 5},
		1: {CPUPct: 60, MemMB: 300, BWMbps: 5},
	}}
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 10, 0), mkVM(1, 0, 10, 0)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)},
	}
	bf := NewBestFit(paperCost(), est)
	placement, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != placement[1] {
		t.Fatalf("light VMs not consolidated: %v", placement)
	}
}

func TestBestFitDeconsolidatesWhenSLASuffers(t *testing.T) {
	// Two VMs whose combined requirement exceeds one host; the SLA model
	// reports pain under starvation, so they must split across hosts.
	est := &fakeEstimator{
		req: map[model.VMID]model.Resources{
			0: {CPUPct: 300, MemMB: 800, BWMbps: 10},
			1: {CPUPct: 300, MemMB: 800, BWMbps: 10},
		},
		sla: func(vm *VMInfo, grantCPU, memDef, lat float64) (float64, bool) {
			need := 300.0
			frac := grantCPU / need
			if frac > 1 {
				frac = 1
			}
			return frac * vm.Spec.Terms.Fulfilment(0.05+lat), true
		},
	}
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 40, 0), mkVM(1, 0, 40, 0)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)},
	}
	bf := NewBestFit(paperCost(), est)
	placement, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] == placement[1] {
		t.Fatalf("heavy VMs not deconsolidated: %v", placement)
	}
}

func TestMigrationPenaltyKeepsVMHome(t *testing.T) {
	// A VM already on host 0; host 1 is in a DC with equal latency and
	// energy. Without a clear gain the migration penalty must keep it put.
	vm := mkVM(0, 0, 10, 0)
	vm.Current = 0
	vm.CurrentDC = 0
	est := &fakeEstimator{req: map[model.VMID]model.Resources{0: {CPUPct: 50, MemMB: 256, BWMbps: 5}}}
	p := &Problem{VMs: []VMInfo{vm}, Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)}}
	bf := NewBestFit(paperCost(), est)
	placement, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != 0 {
		t.Fatalf("VM migrated without benefit: %v", placement)
	}
}

func TestLatencyOnlyCostIgnoresEnergy(t *testing.T) {
	// Follow-the-load: host near the clients wins even if its electricity
	// is the most expensive (Barcelona, 0.1513).
	cost := paperCost()
	cost.LatencyOnly = true
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 30, 2)},
		Hosts: []HostInfo{mkHost(0, 3), mkHost(1, 2)}, // Boston (cheap) vs Barcelona (near)
	}
	bf := NewBestFit(cost, NewObserved())
	placement, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != 1 {
		t.Fatalf("latency-only did not follow the load: %v", placement)
	}
}

func TestEnergyPricePullsIdleLoadToCheapDC(t *testing.T) {
	// A VM with clients spread evenly: latency is a wash, so the cheaper
	// DC (Boston 0.1120 vs Barcelona 0.1513) should win.
	lv := make(model.LoadVector, 4)
	for i := range lv {
		lv[i] = model.Load{RPS: 2, BytesInReq: 500, BytesOutRq: 5000, CPUTimeReq: 0.005}
	}
	vm := VMInfo{
		Spec: model.VMSpec{
			ID: 0, ImageSizeGB: 4, BaseMemMB: 256, MaxMemMB: 1024,
			Terms:     model.SLATerms{RT0: 0.5, Alpha: 10}, // latency-insensitive contract
			PriceEURh: 0.17,
		},
		Load: lv, Total: lv.Total(), Current: model.NoPM, CurrentDC: -1,
	}
	est := &fakeEstimator{
		req: map[model.VMID]model.Resources{0: {CPUPct: 40, MemMB: 256, BWMbps: 2}},
		sla: func(v *VMInfo, g, m, lat float64) (float64, bool) { return 1, true },
	}
	p := &Problem{VMs: []VMInfo{vm}, Hosts: []HostInfo{mkHost(0, 2), mkHost(1, 3)}}
	bf := NewBestFit(paperCost(), est)
	placement, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != 1 {
		t.Fatalf("energy price did not pull to Boston: %v", placement)
	}
}

func TestBestFitParallelMatchesSerial(t *testing.T) {
	vms := []VMInfo{
		mkVM(0, 0, 30, 0), mkVM(1, 1, 20, 1), mkVM(2, 2, 25, 2),
		mkVM(3, 3, 15, 3), mkVM(4, 0, 35, 1),
	}
	hosts := []HostInfo{mkHost(0, 0), mkHost(1, 1), mkHost(2, 2), mkHost(3, 3)}
	serial := NewBestFit(paperCost(), NewObserved())
	parallel := NewBestFit(paperCost(), NewObserved())
	parallel.Parallel = true
	ps, err := serial.Schedule(&Problem{VMs: vms, Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := parallel.Schedule(&Problem{VMs: vms, Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Equal(pp) {
		t.Fatalf("parallel differs: %v vs %v", ps, pp)
	}
}

func TestBestFitNoHosts(t *testing.T) {
	bf := NewBestFit(paperCost(), NewObserved())
	if _, err := bf.Schedule(&Problem{VMs: []VMInfo{mkVM(0, 0, 1, 0)}}); err == nil {
		t.Fatal("accepted empty host list")
	}
}

func TestFixedScheduler(t *testing.T) {
	f := &Fixed{P: model.Placement{0: 3}}
	got, err := f.Schedule(&Problem{VMs: []VMInfo{mkVM(0, 0, 1, 0)}, Hosts: []HostInfo{mkHost(3, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatalf("Fixed = %v", got)
	}
	if _, err := f.Schedule(&Problem{VMs: []VMInfo{mkVM(9, 0, 1, 0)}}); err == nil {
		t.Fatal("Fixed accepted unknown VM")
	}
}

func TestExhaustiveAtLeastAsGoodAsBestFit(t *testing.T) {
	est := &fakeEstimator{
		req: map[model.VMID]model.Resources{
			0: {CPUPct: 250, MemMB: 700, BWMbps: 10},
			1: {CPUPct: 250, MemMB: 700, BWMbps: 10},
			2: {CPUPct: 120, MemMB: 400, BWMbps: 5},
		},
		sla: func(vm *VMInfo, grantCPU, memDef, lat float64) (float64, bool) {
			need := 120.0
			if vm.Spec.ID < 2 {
				need = 250
			}
			frac := grantCPU / need
			if frac > 1 {
				frac = 1
			}
			return frac * vm.Spec.Terms.Fulfilment(0.05+lat), true
		},
	}
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 40, 0), mkVM(1, 0, 40, 0), mkVM(2, 0, 20, 0)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0), mkHost(2, 0)},
	}
	ex := &Exhaustive{Cost: paperCost(), Est: est}
	exP, err := ex.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBestFit(paperCost(), est)
	bfP, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	exScore := ex.scorePlacement(p, exP)
	bfScore := ex.scorePlacement(p, bfP)
	if exScore < bfScore-1e-9 {
		t.Fatalf("exhaustive (%v) worse than best-fit (%v)", exScore, bfScore)
	}
	if ex.Nodes() == 0 {
		t.Fatal("exhaustive explored no nodes")
	}
}

func TestExhaustiveNoHosts(t *testing.T) {
	ex := &Exhaustive{Cost: paperCost(), Est: NewObserved()}
	if _, err := ex.Schedule(&Problem{VMs: []VMInfo{mkVM(0, 0, 1, 0)}}); err == nil {
		t.Fatal("accepted empty host list")
	}
}

func TestRoundAssignUnassignRestoresState(t *testing.T) {
	est := &fakeEstimator{req: map[model.VMID]model.Resources{
		0: {CPUPct: 100, MemMB: 500, BWMbps: 10},
	}}
	p := &Problem{VMs: []VMInfo{mkVM(0, 0, 10, 0)}, Hosts: []HostInfo{mkHost(0, 0)}}
	r, err := NewRound(p, paperCost(), est)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Profit(0, 0)
	r.Assign(0, 0)
	r.Unassign(0, 0)
	after := r.Profit(0, 0)
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("assign/unassign not reversible: %v vs %v", before, after)
	}
}

func TestUnassignRestoresClampedAvailability(t *testing.T) {
	// Regression: Assign clamps availability at zero, so when a
	// requirement exceeds what is left, the amount actually subtracted is
	// smaller than the requirement. The old Unassign added the full
	// requirement back, handing the branch-and-bound solver phantom
	// headroom. With the snapshot-based restore, a third VM must see
	// exactly the pre-assign state.
	est := &fakeEstimator{req: map[model.VMID]model.Resources{
		0: {CPUPct: 300, MemMB: 3000, BWMbps: 10},
		1: {CPUPct: 300, MemMB: 3000, BWMbps: 10}, // exceeds what VM0 leaves
		2: {CPUPct: 200, MemMB: 1000, BWMbps: 10},
	}}
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 10, 0), mkVM(1, 0, 10, 0), mkVM(2, 0, 10, 0)},
		Hosts: []HostInfo{mkHost(0, 0)},
	}
	r, err := NewRound(p, paperCost(), est)
	if err != nil {
		t.Fatal(err)
	}
	r.Assign(0, 0) // leaves 100 CPU / 1096 MB
	before := r.Profit(2, 0)
	r.Assign(1, 0) // clamped: only the remainder is actually subtracted
	r.Unassign(1, 0)
	after := r.Profit(2, 0)
	if before != after {
		t.Fatalf("clamped assign/unassign not restored: profit %v -> %v", before, after)
	}
	// The phantom-headroom symptom of the old code: after the cycle, VM2
	// must still be scored against a partially-full host, not an empty one.
	fresh, err := NewRound(p, paperCost(), est)
	if err != nil {
		t.Fatal(err)
	}
	if emptyProfit := fresh.Profit(2, 0); emptyProfit == after {
		t.Fatalf("post-cycle profit equals empty-host profit %v: availability over-restored", emptyProfit)
	}
}

func TestObservedEstimatorSizing(t *testing.T) {
	o := NewObserved()
	vm := mkVM(0, 0, 10, 0)
	// No observations: falls back to defaults with the memory floor.
	r := o.Required(&vm, nil)
	if r.MemMB < vm.Spec.BaseMemMB {
		t.Fatalf("unobserved sizing below base mem: %v", r)
	}
	vm.Observed = model.Resources{CPUPct: 80, MemMB: 400, BWMbps: 8}
	vm.HasObserved = true
	r = o.Required(&vm, nil)
	if r != vm.Observed {
		t.Fatalf("observed sizing = %v", r)
	}
	ob := NewOverbooked()
	r2 := ob.Required(&vm, nil)
	if math.Abs(r2.CPUPct-160) > 1e-9 {
		t.Fatalf("overbooked CPU = %v, want 160", r2.CPUPct)
	}
	if _, ok := o.SLA(&vm, 100, 0, 0, nil); ok {
		t.Fatal("observed estimator should have no SLA model")
	}
}

func TestHeuristicSLA(t *testing.T) {
	vm := mkVM(0, 0, 10, 0)
	req := model.Resources{CPUPct: 100, MemMB: 256, BWMbps: 5}
	full := HeuristicSLA(&vm, req, req, 0)
	if full != 1 {
		t.Fatalf("fitting grant SLA = %v", full)
	}
	half := HeuristicSLA(&vm, req, model.Resources{CPUPct: 50, MemMB: 256, BWMbps: 5}, 0)
	if half >= full || math.Abs(half-0.25) > 1e-9 {
		t.Fatalf("half grant SLA = %v, want 0.25", half)
	}
	far := HeuristicSLA(&vm, req, req, 0.39)
	if far >= full {
		t.Fatalf("latency did not degrade SLA: %v", far)
	}
}

func TestCostModelValidate(t *testing.T) {
	c := CostModel{}
	if err := c.Validate(); err == nil {
		t.Fatal("accepted empty cost model")
	}
	c = NewCostModel(network.PaperTopology(), power.Atom{}, 0)
	if err := c.Validate(); err == nil {
		t.Fatal("accepted zero horizon")
	}
	if _, err := NewRound(&Problem{}, paperCost(), nil); err == nil {
		t.Fatal("accepted nil estimator")
	}
}
