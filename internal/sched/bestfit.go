package sched

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/par"
)

// BestFit is the paper's Descending Best-Fit (Algorithm 1): VMs are
// ordered by decreasing demand and each is assigned to the host with the
// highest tentative profit, updating availability as it goes.
type BestFit struct {
	Cost CostModel
	Est  Estimator
	// Parallel evaluates candidate hosts concurrently; the outcome is
	// identical because each VM's candidate scores are independent.
	Parallel bool
	// Workers bounds candidate-evaluation parallelism.
	Workers int
	// MinGainEUR is the hysteresis threshold: a placed VM moves only when
	// the best alternative beats staying by at least this much profit per
	// round. Without it, borderline decisions oscillate every round and
	// the migration blackouts eat the SLA the moves were meant to save.
	MinGainEUR float64
	// label overrides the reported name (e.g. "bestfit-ml").
	label string
}

// DefaultMinGainEUR is roughly 10% of one VM's per-round revenue at the
// paper's €0.17/VMh pricing and 10-minute rounds.
const DefaultMinGainEUR = 0.003

// NewBestFit assembles the classic monitored-data Best-Fit.
func NewBestFit(cost CostModel, est Estimator) *BestFit {
	return &BestFit{Cost: cost, Est: est, MinGainEUR: DefaultMinGainEUR, label: "bestfit-" + est.Name()}
}

// Name implements Scheduler.
func (b *BestFit) Name() string {
	if b.label != "" {
		return b.label
	}
	return "bestfit"
}

// Schedule implements Scheduler.
func (b *BestFit) Schedule(p *Problem) (model.Placement, error) {
	if len(p.Hosts) == 0 {
		return nil, fmt.Errorf("sched: no candidate hosts")
	}
	r, err := NewRound(p, b.Cost, b.Est)
	if err != nil {
		return nil, err
	}
	// order_by_demand(vms, desc): dominant share of the requirement against
	// the first host's capacity as the common yardstick.
	ref := p.Hosts[0].Spec.Capacity
	order := make([]int, len(p.VMs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return r.Required(order[a]).Dominant(ref) > r.Required(order[b]).Dominant(ref)
	})

	placement := make(model.Placement, len(p.VMs))
	scores := make([]float64, len(p.Hosts))
	hostIdx := make(map[model.PMID]int, len(p.Hosts))
	for j := range p.Hosts {
		hostIdx[p.Hosts[j].Spec.ID] = j
	}
	for _, i := range order {
		if b.Parallel && len(p.Hosts) > 1 {
			par.ForEach(len(p.Hosts), b.Workers, func(j int) {
				scores[j] = r.Profit(i, j)
			})
		} else {
			for j := range p.Hosts {
				scores[j] = r.Profit(i, j)
			}
		}
		best := 0
		for j := 1; j < len(scores); j++ {
			if scores[j] > scores[best] {
				best = j
			}
		}
		// Hysteresis: prefer the current host unless the winner clearly
		// beats it.
		if cur, ok := hostIdx[p.VMs[i].Current]; ok && best != cur &&
			scores[best] < scores[cur]+b.MinGainEUR {
			best = cur
		}
		r.Assign(i, best)
		placement[p.VMs[i].Spec.ID] = r.HostID(best)
	}
	return placement, nil
}

// Fixed always returns the same placement — the "static global multi-DC
// network" baseline of Figure 7, where every VM stays in its customer-
// selected DC and only traffic is redirected.
type Fixed struct {
	P model.Placement
}

// Name implements Scheduler.
func (f *Fixed) Name() string { return "static" }

// Schedule implements Scheduler.
func (f *Fixed) Schedule(p *Problem) (model.Placement, error) {
	out := make(model.Placement, len(p.VMs))
	for i := range p.VMs {
		id := p.VMs[i].Spec.ID
		pm, ok := f.P[id]
		if !ok {
			return nil, fmt.Errorf("sched: static placement missing VM %v", id)
		}
		out[id] = pm
	}
	return out, nil
}

var (
	_ Scheduler = (*BestFit)(nil)
	_ Scheduler = (*Fixed)(nil)
)
