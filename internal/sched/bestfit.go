package sched

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/par"
)

// BestFit is the paper's Descending Best-Fit (Algorithm 1): VMs are
// ordered by decreasing demand and each is assigned to the host with the
// highest tentative profit, updating availability as it goes.
//
// A BestFit instance owns a reusable Round and scratch buffers, so
// steady-state Schedule calls allocate nothing beyond the returned
// placement (ScheduleInto allocates nothing at all). One instance must not
// run concurrent Schedule calls; use one instance per goroutine.
type BestFit struct {
	Cost CostModel
	Est  Estimator
	// Parallel evaluates candidate hosts concurrently; the outcome is
	// identical because each VM's candidate scores are independent.
	Parallel bool
	// Workers bounds candidate-evaluation parallelism.
	Workers int
	// MinGainEUR is the hysteresis threshold: a placed VM moves only when
	// the best alternative beats staying by at least this much profit per
	// round. Without it, borderline decisions oscillate every round and
	// the migration blackouts eat the SLA the moves were meant to save.
	MinGainEUR float64
	// Delta enables incremental rounds: the Round memoizes its per-VM fill
	// outputs across Schedule calls and re-estimates only the VMs whose
	// monitored features moved beyond DeltaEpsilon (see Round.SetDelta).
	Delta bool
	// DeltaEpsilon is the relative feature-movement tolerance for reuse;
	// 0 demands bit-exact equality, making delta rounds placement-identical
	// to full rounds.
	DeltaEpsilon float64
	// Prune scores only the Round's candidate shortlist per VM instead of
	// every host: one representative per distinct tentative host state,
	// plus the VM's current host (see prune.go). With PruneK <= 0 the
	// resulting placement is bit-identical to the exhaustive scan.
	Prune bool
	// PruneK truncates each DC's shortlist to the K tightest feasible host
	// states (plus the emptiest and the first infeasible one). 0 is the
	// safe bound — every distinct state, provably placement-identical;
	// K > 0 trades disclosed divergence (RoundStats.ShortlistTruncated)
	// for bounded per-VM scoring work at fleet scale.
	PruneK int
	// label overrides the reported name (e.g. "bestfit-ml").
	label string

	// Reused session state.
	round      Round
	order      []int
	demand     []float64
	scores     []float64
	scratches  []Scratch
	sorter     demandSorter
	curVM      int
	evalFn     func(worker, j int)
	cands      []int32
	candScores []float64
	evalCandFn func(worker, p int)
	stats      RoundStats
	met        *Metrics // optional sinks, fed from stats after each round
}

// RoundStats is the phase instrumentation of one scheduling round: where
// the wall-clock went (table fill, candidate scoring, reduction — argmax,
// hysteresis and commit), how much work the delta memo saved, and what the
// candidate shortlist did. The candidate counters are deterministic
// functions of the problem — unlike the wall-clock fields they are safe to
// publish in reproducible sweep output.
type RoundStats struct {
	FillNS         int64
	ScoreNS        int64
	ReduceNS       int64
	RowsReused     int
	RowsRecomputed int
	// CandidatesScored is the number of profit evaluations performed
	// (VMs × hosts without pruning; the summed shortlist sizes with it).
	CandidatesScored int
	// ShortlistRebuilds counts full prune-index rebuilds (one per Reset
	// with pruning on; 0 with pruning off).
	ShortlistRebuilds int
	// ShortlistTruncated counts live host-state classes dropped by PruneK
	// truncation — the disclosed divergence from the exhaustive scan.
	// Always 0 when PruneK <= 0.
	ShortlistTruncated int
}

// RoundStatsReporter is implemented by schedulers exposing per-round phase
// instrumentation; harnesses probe for it to add timing columns.
type RoundStatsReporter interface {
	LastRoundStats() RoundStats
}

// LastRoundStats implements RoundStatsReporter for the last Schedule call.
func (b *BestFit) LastRoundStats() RoundStats { return b.stats }

// DefaultMinGainEUR is roughly 10% of one VM's per-round revenue at the
// paper's €0.17/VMh pricing and 10-minute rounds.
const DefaultMinGainEUR = 0.003

// NewBestFit assembles the classic monitored-data Best-Fit.
func NewBestFit(cost CostModel, est Estimator) *BestFit {
	return &BestFit{Cost: cost, Est: est, MinGainEUR: DefaultMinGainEUR, label: "bestfit-" + est.Name()}
}

// Name implements Scheduler.
func (b *BestFit) Name() string {
	if b.label != "" {
		return b.label
	}
	return "bestfit"
}

// Schedule implements Scheduler.
func (b *BestFit) Schedule(p *Problem) (model.Placement, error) {
	placement := make(model.Placement, len(p.VMs))
	if err := b.ScheduleInto(p, placement); err != nil {
		return nil, err
	}
	return placement, nil
}

// Session exposes the round state of the last Schedule call — valid until
// the next call — so composite schedulers can reuse its memoized
// requirement and SLA estimates instead of re-running the estimator.
func (b *BestFit) Session() *Round { return &b.round }

// ScheduleInto is Schedule writing into a caller-provided placement (which
// should arrive empty) — the allocation-free form for callers that recycle
// the map across rounds.
func (b *BestFit) ScheduleInto(p *Problem, placement model.Placement) error {
	if len(p.Hosts) == 0 {
		return fmt.Errorf("sched: no candidate hosts")
	}
	// Parallelism is decided up front so the read-only scoring phase —
	// both the Reset-time per-VM tables and the per-candidate profits —
	// fans out over the same per-worker scratches.
	workers := 0
	if b.Parallel && (len(p.Hosts) > 1 || len(p.VMs) > 1) {
		workers = b.Workers
		if workers <= 0 {
			workers = par.DefaultWorkers()
		}
		if cap(b.scratches) < workers {
			b.scratches = make([]Scratch, workers)
		}
		b.scratches = b.scratches[:workers]
		if b.evalFn == nil {
			// One closure for the lifetime of the scheduler: the current VM
			// travels through b.curVM so the hot loop creates nothing.
			b.evalFn = func(worker, j int) {
				b.scores[j] = b.round.ProfitScratch(b.curVM, j, &b.scratches[worker])
			}
		}
		if b.evalCandFn == nil {
			b.evalCandFn = func(worker, p int) {
				b.candScores[p] = b.round.ProfitScratch(b.curVM, int(b.cands[p]), &b.scratches[worker])
			}
		}
	}
	r := &b.round
	r.SetDelta(b.Delta, b.DeltaEpsilon)
	r.SetPrune(b.Prune)
	rebuilds0 := r.PruneRebuilds()
	start := time.Now()
	if err := r.ResetParallel(p, b.Cost, b.Est, workers, b.scratches); err != nil {
		return err
	}
	// order_by_demand(vms, desc): dominant share of the requirement against
	// the first host's capacity as the common yardstick.
	ref := p.Hosts[0].Spec.Capacity
	n := len(p.VMs)
	b.order = grown(b.order, n)
	b.demand = grown(b.demand, n)
	for i := 0; i < n; i++ {
		b.order[i] = i
		b.demand[i] = r.Required(i).Dominant(ref)
	}
	b.sorter.order, b.sorter.demand = b.order, b.demand
	sort.Stable(&b.sorter)

	nh := len(p.Hosts)
	b.scores = grown(b.scores, nh)
	if workers > nh {
		workers = nh
	}
	var scoreNS int64
	var scored, truncated int
	for _, i := range b.order {
		t0 := time.Now()
		var best int
		if b.Prune {
			var curPos, trunc int
			b.cands, curPos, trunc = r.AppendCandidates(i, b.PruneK, b.cands[:0])
			truncated += trunc
			nc := len(b.cands)
			scored += nc
			b.candScores = grown(b.candScores, nc)
			if w := workers; w > 1 {
				if w > nc {
					w = nc
				}
				b.curVM = i
				if w > 1 {
					par.ForEachWorker(nc, w, b.evalCandFn)
				} else {
					for q := 0; q < nc; q++ {
						b.candScores[q] = r.Profit(i, int(b.cands[q]))
					}
				}
			} else {
				for q := 0; q < nc; q++ {
					b.candScores[q] = r.Profit(i, int(b.cands[q]))
				}
			}
			scoreNS += time.Since(t0).Nanoseconds()
			// Argmax with the explicit lower-host-index tie-break — the
			// order-independent equivalent of the exhaustive left-to-right
			// strict-greater scan.
			bp := 0
			for q := 1; q < nc; q++ {
				if b.candScores[q] > b.candScores[bp] ||
					(b.candScores[q] == b.candScores[bp] && b.cands[q] < b.cands[bp]) {
					bp = q
				}
			}
			best = int(b.cands[bp])
			if curPos >= 0 && bp != curPos &&
				b.candScores[bp] < b.candScores[curPos]+b.MinGainEUR {
				best = int(b.cands[curPos])
			}
		} else {
			if workers > 1 {
				b.curVM = i
				par.ForEachWorker(nh, workers, b.evalFn)
			} else {
				for j := 0; j < nh; j++ {
					b.scores[j] = r.Profit(i, j)
				}
			}
			scored += nh
			scoreNS += time.Since(t0).Nanoseconds()
			best = 0
			for j := 1; j < nh; j++ {
				if b.scores[j] > b.scores[best] {
					best = j
				}
			}
			// Hysteresis: prefer the current host unless the winner clearly
			// beats it.
			if cur, ok := r.HostIndex(p.VMs[i].Current); ok && best != cur &&
				b.scores[best] < b.scores[cur]+b.MinGainEUR {
				best = cur
			}
		}
		r.Assign(i, best)
		placement[p.VMs[i].Spec.ID] = r.HostID(best)
	}
	fillNS, reused, recomputed := r.FillStats()
	total := time.Since(start).Nanoseconds()
	reduceNS := total - fillNS - scoreNS
	if reduceNS < 0 {
		reduceNS = 0
	}
	b.stats = RoundStats{
		FillNS: fillNS, ScoreNS: scoreNS, ReduceNS: reduceNS,
		RowsReused: reused, RowsRecomputed: recomputed,
		CandidatesScored:   scored,
		ShortlistRebuilds:  r.PruneRebuilds() - rebuilds0,
		ShortlistTruncated: truncated,
	}
	if b.met != nil {
		b.met.record(&b.stats)
	}
	return nil
}

// demandSorter stable-sorts the order permutation by descending demand
// without the closure allocation of sort.SliceStable (same algorithm, so
// the resulting permutation is identical).
type demandSorter struct {
	order  []int
	demand []float64
}

func (s *demandSorter) Len() int { return len(s.order) }
func (s *demandSorter) Less(a, b int) bool {
	return s.demand[s.order[a]] > s.demand[s.order[b]]
}
func (s *demandSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// Fixed always returns the same placement — the "static global multi-DC
// network" baseline of Figure 7, where every VM stays in its customer-
// selected DC and only traffic is redirected.
type Fixed struct {
	P model.Placement
	// AllowUnknown tolerates VMs absent from P — workload-churn arrivals
	// a static placement cannot know about. Unknown VMs keep their
	// current host (never move; unplaced ones stay unplaced), which is
	// exactly the static baseline's weakness the churn experiment
	// measures. Without it an unknown VM is a configuration error.
	AllowUnknown bool
}

// Name implements Scheduler.
func (f *Fixed) Name() string { return "static" }

// Schedule implements Scheduler.
func (f *Fixed) Schedule(p *Problem) (model.Placement, error) {
	out := make(model.Placement, len(p.VMs))
	for i := range p.VMs {
		id := p.VMs[i].Spec.ID
		pm, ok := f.P[id]
		if !ok {
			if f.AllowUnknown {
				if cur := p.VMs[i].Current; cur != model.NoPM {
					out[id] = cur
				}
				continue
			}
			return nil, fmt.Errorf("sched: static placement missing VM %v", id)
		}
		out[id] = pm
	}
	return out, nil
}

var (
	_ Scheduler = (*BestFit)(nil)
	_ Scheduler = (*Fixed)(nil)
)
