package sched

import (
	"repro/internal/model"
)

// Candidate pruning: the O(VMs × hosts) scoring matrix is the round's
// scalability wall, and most of those profit calls are redundant —
// Profit(i, j) depends on host j only through its tentative state
// (DC, capacity, availability, guest count, CPU/RPS sums; the baseline
// watts derive from those), plus the identity test against the VM's
// current host. Hosts in identical state are therefore interchangeable:
// scoring one representative per *state equivalence class* — always the
// lowest-indexed member — plus the VM's current host reproduces the
// exhaustive argmax bit-for-bit (see the proof sketch on
// AppendCandidates). The index maintains those classes incrementally:
// rebuilt once per Reset, re-keyed per Assign/Unassign, so churn and
// fault-driven candidate-set changes never stale it.
//
// PruneK > 0 additionally truncates each DC's shortlist to a bounded
// window around the VM's feasibility boundary — no longer provably
// identical (the safe bound is "every class"), so truncation is
// disclosed per round via RoundStats.ShortlistTruncated.

// hostClassKey is the exact tentative host state Profit depends on.
// Two hosts with equal keys in the same DC produce bit-identical
// profits for every VM whose current host is neither of them.
type hostClassKey struct {
	dc     model.DCID
	capCPU float64
	avail  model.Resources
	guests int
	sumCPU float64
	sumRPS float64
}

// classKeyLess orders a DC's classes: emptiest first (available CPU
// descending — the axis requirements are checked against), with a full
// deterministic tie-break so shortlist windows are stable across runs.
func classKeyLess(a, b *hostClassKey) bool {
	if a.avail.CPUPct != b.avail.CPUPct {
		return a.avail.CPUPct > b.avail.CPUPct
	}
	if a.avail.MemMB != b.avail.MemMB {
		return a.avail.MemMB > b.avail.MemMB
	}
	if a.avail.BWMbps != b.avail.BWMbps {
		return a.avail.BWMbps > b.avail.BWMbps
	}
	if a.capCPU != b.capCPU {
		return a.capCPU < b.capCPU
	}
	if a.guests != b.guests {
		return a.guests < b.guests
	}
	if a.sumCPU != b.sumCPU {
		return a.sumCPU < b.sumCPU
	}
	return a.sumRPS < b.sumRPS
}

// hostClass is one equivalence class: its key and its member hosts in
// ascending index order (members[0] is the representative).
type hostClass struct {
	key     hostClassKey
	members []int32
}

// pruneIndex is the incremental class index of a Round. Class records
// live in an arena so Reset-time rebuilds reuse member storage; perDC
// holds each DC's live class ids sorted by classKeyLess.
type pruneIndex struct {
	valid    bool
	classes  []hostClass
	nArena   int // arena high-water mark
	free     []int32
	byKey    map[hostClassKey]int32
	classOf  []int32
	perDC    [][]int32
	rebuilds int // lifetime rebuild count
}

// keyOf reads host j's current tentative state out of the round columns.
func (r *Round) keyOf(j int) hostClassKey {
	return hostClassKey{
		dc:     r.hDC[j],
		capCPU: r.hCapCPU[j],
		avail:  r.hAvail[j],
		guests: r.hGuests[j],
		sumCPU: r.hSumCPU[j],
		sumRPS: r.hSumRPS[j],
	}
}

// SetPrune switches shortlist maintenance on or off for subsequent
// Resets. The index itself is (re)built by Reset, never here.
func (r *Round) SetPrune(on bool) {
	r.pruneOn = on
	if !on {
		r.pruneIdx.valid = false
	}
}

// PruneRebuilds returns the lifetime shortlist rebuild count (one per
// Reset with pruning enabled).
func (r *Round) PruneRebuilds() int { return r.pruneIdx.rebuilds }

// rebuildPrune reconstructs the class index from the current host
// columns: O(hosts) hashing plus sorted per-DC class insertion. Hosts
// arrive in index order, so member lists are born sorted.
func (px *pruneIndex) rebuildPrune(r *Round) {
	nH := len(r.hID)
	px.classOf = grown(px.classOf, nH)
	if px.byKey == nil {
		px.byKey = make(map[hostClassKey]int32, nH)
	} else {
		clear(px.byKey)
	}
	px.free = px.free[:0]
	px.nArena = 0
	px.perDC = growKeep(px.perDC, r.nDC)
	for dc := range px.perDC {
		px.perDC[dc] = px.perDC[dc][:0]
	}
	for j := 0; j < nH; j++ {
		px.classOf[j] = px.addHost(r, j)
	}
	px.rebuilds++
	px.valid = true
}

// allocClass hands out a class record, reusing freed ids and arena
// capacity before growing.
func (px *pruneIndex) allocClass() int32 {
	if n := len(px.free); n > 0 {
		id := px.free[n-1]
		px.free = px.free[:n-1]
		return id
	}
	id := int32(px.nArena)
	px.nArena++
	if px.nArena > len(px.classes) {
		px.classes = growKeep(px.classes, px.nArena)
	}
	return id
}

// addHost files host j under its current key, creating the class (and
// its sorted per-DC slot) when the state is new. Returns the class id.
func (px *pruneIndex) addHost(r *Round, j int) int32 {
	key := r.keyOf(j)
	if id, ok := px.byKey[key]; ok {
		c := &px.classes[id]
		c.members = memberInsert(c.members, int32(j))
		return id
	}
	id := px.allocClass()
	c := &px.classes[id]
	c.key = key
	c.members = append(c.members[:0], int32(j))
	px.byKey[key] = id
	list := px.perDC[key.dc]
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if classKeyLess(&px.classes[list[mid]].key, &key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	list = append(list, 0)
	copy(list[lo+1:], list[lo:])
	list[lo] = id
	px.perDC[key.dc] = list
	return id
}

// removeHost unfiles host j from its class, retiring the class (and its
// per-DC slot) when j was the last member.
func (px *pruneIndex) removeHost(j int) {
	id := px.classOf[j]
	c := &px.classes[id]
	c.members = memberRemove(c.members, int32(j))
	if len(c.members) > 0 {
		return
	}
	delete(px.byKey, c.key)
	list := px.perDC[c.key.dc]
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if classKeyLess(&px.classes[list[mid]].key, &c.key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first slot not-less than the key; the class is live in
	// the list, so list[lo] == id.
	copy(list[lo:], list[lo+1:])
	px.perDC[c.key.dc] = list[:len(list)-1]
	px.free = append(px.free, id)
}

// rekeyHost moves host j between classes after its tentative state
// changed (the Assign/Unassign hook).
func (px *pruneIndex) rekeyHost(r *Round, j int) {
	px.removeHost(j)
	px.classOf[j] = px.addHost(r, j)
}

// memberInsert inserts v into an ascending member list.
func memberInsert(s []int32, v int32) []int32 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// memberRemove removes v from an ascending member list.
func memberRemove(s []int32, v int32) []int32 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(s[lo:], s[lo+1:])
	return s[:len(s)-1]
}

// AppendCandidates appends VM i's candidate shortlist to dst and returns
// the extended slice, the position of the VM's current host within it
// (-1 when the VM is unplaced or its host is not a candidate), and the
// number of live classes truncated away.
//
// k <= 0 is the safe bound: one representative per class plus the
// current host. The pruned argmax then equals the exhaustive scan
// bit-for-bit, by three observations: (1) equal-state hosts score
// equally for every host that is not the VM's current one, so the
// minimum-index host among the exhaustive maximum scorers is always its
// class representative (a lower-indexed classmate would score the same
// and win the scan first); (2) the current host — whose profit skips
// the migration penalty and may exceed its classmates' — is explicitly
// a candidate; (3) the reduction over candidates breaks score ties
// toward the lower host index, exactly like the exhaustive left-to-right
// strict-greater scan. The hysteresis comparison runs on the same two
// scores it would see exhaustively.
//
// k > 0 truncates each DC's sorted class list to a window of the k
// tightest CPU-feasible states plus the emptiest state and the first
// infeasible one — the bounded-divergence mode for fleet-scale rounds.
func (r *Round) AppendCandidates(i, k int, dst []int32) ([]int32, int, int) {
	px := &r.pruneIdx
	truncated := 0
	reqCPU := r.req[i].CPUPct
	for _, dc := range r.dcs {
		list := px.perDC[dc]
		if k <= 0 || len(list) <= k+2 {
			for _, id := range list {
				dst = append(dst, px.classes[id].members[0])
			}
			continue
		}
		// Feasibility boundary: available CPU is non-increasing along the
		// sorted list, so the CPU-feasible states form the prefix [0, b).
		lo, hi := 0, len(list)
		for lo < hi {
			mid := (lo + hi) / 2
			if px.classes[list[mid]].key.avail.CPUPct >= reqCPU {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b := lo
		start := b - k
		if start < 0 {
			start = 0
		}
		if start > 0 {
			// The emptiest state: the fallback when the tight window fails
			// on memory or bandwidth.
			dst = append(dst, px.classes[list[0]].members[0])
		}
		for p := start; p < b; p++ {
			dst = append(dst, px.classes[list[p]].members[0])
		}
		if b < len(list) {
			// The least-congested infeasible state: what the exhaustive
			// scan would consider when nothing fits.
			dst = append(dst, px.classes[list[b]].members[0])
		}
		kept := b - start + 1 // window plus boundary class
		if start > 0 {
			kept++
		}
		truncated += len(list) - kept
	}
	curPos := -1
	if cur, ok := r.HostIndex(r.vms[i].Current); ok {
		cj := int32(cur)
		for p, j := range dst {
			if j == cj {
				curPos = p
				break
			}
		}
		if curPos < 0 {
			curPos = len(dst)
			dst = append(dst, cj)
		}
	}
	return dst, curPos, truncated
}
