package sched

import (
	"repro/internal/obs"
)

// Metrics is the scheduler's observability surface, fed once per round
// from the RoundStats ScheduleInto already computes — the counters
// (candidates scored, memo hit/miss rows, shortlist activity) are
// deterministic, the phase histograms (fill/score/reduce and the whole
// round) are wall-clock and registered as such. Recording is a handful
// of atomic operations, so an instrumented round keeps the steady-state
// zero-alloc contract.
type Metrics struct {
	Rounds             *obs.Counter
	CandidatesScored   *obs.Counter
	RowsReused         *obs.Counter
	RowsRecomputed     *obs.Counter
	ShortlistRebuilds  *obs.Counter
	ShortlistTruncated *obs.Counter
	RoundSeconds       *obs.Histogram
	FillSeconds        *obs.Histogram
	ScoreSeconds       *obs.Histogram
	ReduceSeconds      *obs.Histogram
}

// NewSchedMetrics registers the scheduling metric family on a registry.
func NewSchedMetrics(r *obs.Registry) *Metrics {
	buckets := obs.ExpBuckets(1e-4, 4, 10) // 100µs .. ~26s
	return &Metrics{
		Rounds: r.Counter("mdcsim_sched_rounds_total",
			"Scheduling rounds executed."),
		CandidatesScored: r.Counter("mdcsim_sched_candidates_scored_total",
			"Per-candidate profit evaluations performed."),
		RowsReused: r.Counter("mdcsim_sched_memo_rows_reused_total",
			"Delta-memo (VM, DC) rows served from cache."),
		RowsRecomputed: r.Counter("mdcsim_sched_memo_rows_recomputed_total",
			"Delta-memo (VM, DC) rows re-estimated."),
		ShortlistRebuilds: r.Counter("mdcsim_sched_shortlist_rebuilds_total",
			"Full prune-index rebuilds."),
		ShortlistTruncated: r.Counter("mdcsim_sched_shortlist_truncated_total",
			"Host-state classes dropped by PruneK truncation."),
		RoundSeconds: r.Histogram("mdcsim_sched_round_seconds",
			"Whole-round wall latency.", buckets, obs.WallClock()),
		FillSeconds: r.Histogram("mdcsim_sched_fill_seconds",
			"Table-fill phase wall latency.", buckets, obs.WallClock()),
		ScoreSeconds: r.Histogram("mdcsim_sched_score_seconds",
			"Candidate-scoring phase wall latency.", buckets, obs.WallClock()),
		ReduceSeconds: r.Histogram("mdcsim_sched_reduce_seconds",
			"Reduction (argmax/hysteresis/commit) phase wall latency.", buckets, obs.WallClock()),
	}
}

// SetMetrics attaches (or, with nil, detaches) the scheduler's metric
// sinks; every ScheduleInto records its RoundStats into them.
func (b *BestFit) SetMetrics(m *Metrics) { b.met = m }

// record folds one completed round's stats into the sinks.
func (m *Metrics) record(st *RoundStats) {
	m.Rounds.Inc()
	m.CandidatesScored.Add(uint64(st.CandidatesScored))
	m.RowsReused.Add(uint64(st.RowsReused))
	m.RowsRecomputed.Add(uint64(st.RowsRecomputed))
	m.ShortlistRebuilds.Add(uint64(st.ShortlistRebuilds))
	m.ShortlistTruncated.Add(uint64(st.ShortlistTruncated))
	m.RoundSeconds.Observe(float64(st.FillNS+st.ScoreNS+st.ReduceNS) / 1e9)
	m.FillSeconds.Observe(float64(st.FillNS) / 1e9)
	m.ScoreSeconds.Observe(float64(st.ScoreNS) / 1e9)
	m.ReduceSeconds.Observe(float64(st.ReduceNS) / 1e9)
}
