package sched

import (
	"math"

	"repro/internal/model"
	"repro/internal/predict"
)

// Scratch carries one goroutine's reusable inference buffers through
// estimator calls, making the ML prediction path allocation-free. The zero
// value is ready; a Scratch must not be shared between goroutines. Round
// owns one for its serial paths; parallel candidate evaluation threads one
// per worker.
type Scratch struct {
	// Predict is the bundle-level scratch the ML estimator forwards.
	Predict predict.Scratch

	// Congested-grant memo: when a VM is scored against many hosts whose
	// remaining capacity clamps its grant, the clamped (grantCPU, memDef,
	// DC) tuples repeat across hosts with equal availability, and
	// estimators are pure — so the answers are memoized here per VM. The
	// cache is scoped to one (Round generation, VM) and holds exact-match
	// float keys, so hits return bit-identical values. For proc-split
	// estimators the entry stores the latency-independent processing pair
	// under dc == -1 and the caller composes latency per host, so one
	// entry serves every DC.
	cacheRound *Round
	cacheGen   uint64
	cacheVM    int
	cacheN     int
	cache      [profitCacheSize]profitCacheEntry

	// Batched-fill scratch: the grant vector, the processing-stage outputs
	// and (inside the estimator) the feature matrix of one fill chunk.
	grants  []float64
	slaProc []float64
	rtProc  []float64
	rows    []float64

	// Marginal-energy memo: while one VM is scored against every host,
	// hosts in the same tentative state (all still-empty hosts, notably)
	// pose the identical PM-CPU query, so the marginal facility watts are
	// memoized per exact host-state key in a direct-mapped table. Slots
	// are validated by an epoch stamp (bumped when the scored VM changes)
	// instead of being cleared, and a last-key fast path serves the long
	// runs of identically-stated hosts without hashing. PMCPU is pure and
	// the keys are exact floats, so hits are bit-identical; collisions
	// merely recompute.
	eRound *Round
	eGen   uint64
	eVM    int
	eEpoch uint64
	eLast  energyKey
	eLastW float64
	eKeys  [energyCacheSize]energyKey
	eWatts [energyCacheSize]float64
}

// energyCacheSize is the direct-mapped marginal-energy table size (power
// of two; sized past the distinct tentative host states one VM's scan can
// meet on the largest preset).
const energyCacheSize = 512

type energyKey struct {
	sumCPU, sumRPS, cap, vmCPU float64
	guests                     int
	epoch                      uint64
}

// marginalWatts returns the marginal facility draw of adding VM i (using
// vmCPU of its tentative grant) to host j, memoized on the host's exact
// tentative state. The baseline draw is itself a pure function of that
// state, so the whole difference memoizes.
func (s *Scratch) marginalWatts(r *Round, i, j int, vmCPU float64) float64 {
	if s.eRound != r || s.eGen != r.gen || s.eVM != i {
		s.eRound, s.eGen, s.eVM = r, r.gen, i
		s.eEpoch++
	}
	guests, sumCPU, sumRPS, cap := r.hGuests[j], r.hSumCPU[j], r.hSumRPS[j], r.hCapCPU[j]
	if l := &s.eLast; l.epoch == s.eEpoch && l.guests == guests && l.sumCPU == sumCPU &&
		l.sumRPS == sumRPS && l.cap == cap && l.vmCPU == vmCPU {
		return s.eLastW
	}
	h := math.Float64bits(sumCPU)
	h ^= math.Float64bits(sumRPS) * 0x9E3779B97F4A7C15
	h ^= math.Float64bits(cap) + uint64(guests)
	h = (h ^ h>>29) * 0xBF58476D1CE4E5B9
	slot := (h ^ h>>32) & (energyCacheSize - 1)
	e := &s.eKeys[slot]
	if e.epoch == s.eEpoch && e.guests == guests && e.sumCPU == sumCPU &&
		e.sumRPS == sumRPS && e.cap == cap && e.vmCPU == vmCPU {
		s.eLast, s.eLastW = *e, s.eWatts[slot]
		return s.eWatts[slot]
	}
	newPM := r.est.PMCPU(guests+1, sumCPU+vmCPU, sumRPS+r.vms[i].Total.RPS, s)
	newPM = clampF(newPM, 0, cap)
	w := r.facilityWatts(newPM) - r.hWattsBefore[j]
	*e = energyKey{sumCPU: sumCPU, sumRPS: sumRPS, cap: cap, vmCPU: vmCPU, guests: guests, epoch: s.eEpoch}
	s.eLast, s.eLastW = *e, w
	s.eWatts[slot] = w
	return w
}

// profitCacheSize bounds the per-VM congested-grant memo; one VM rarely
// sees more distinct clamped grants than hosts-with-distinct-availability
// per DC.
const profitCacheSize = 16

type profitCacheEntry struct {
	grantCPU, memDef float64
	dc               int
	// sla holds the composed fulfilment for plain estimators (dc in the
	// key), or the latency-free processing fulfilment for proc-split
	// estimators (dc == -1, rt carries the processing RT).
	sla, rt, vmCPU float64
	hasSLA, hasCPU bool
}

// profitEntry returns the memo slot for the exact key, resetting the cache
// when the round generation or VM changed. A full cache recycles its last
// slot (correctness is unaffected; only reuse is lost).
func (s *Scratch) profitEntry(r *Round, i int, grantCPU, memDef float64, dc int) *profitCacheEntry {
	if s.cacheRound != r || s.cacheGen != r.gen || s.cacheVM != i {
		s.cacheRound, s.cacheGen, s.cacheVM = r, r.gen, i
		s.cacheN = 0
	}
	for k := 0; k < s.cacheN; k++ {
		e := &s.cache[k]
		if e.grantCPU == grantCPU && e.memDef == memDef && e.dc == dc {
			return e
		}
	}
	if s.cacheN < profitCacheSize {
		s.cacheN++
	}
	e := &s.cache[s.cacheN-1]
	*e = profitCacheEntry{grantCPU: grantCPU, memDef: memDef, dc: dc}
	return e
}

// Estimator supplies the uncertain quantities of the mathematical program:
// what a VM will need, what SLA a tentative grant will yield, and what a
// host's aggregate CPU will be. The paper's thesis is precisely that
// learned estimators beat monitored windows here.
//
// Every method takes the caller's scratch; implementations must be safe
// for concurrent calls with distinct scratches (shared state read-only),
// must tolerate a nil scratch by paying a local allocation, and must be
// pure functions of their arguments (the scratch carries buffers, never
// meaning) — purity is what lets the profit evaluator memoize answers.
type Estimator interface {
	// Required returns the resources the VM needs next round.
	Required(vm *VMInfo, s *Scratch) model.Resources
	// SLA predicts fulfilment under a tentative grant; ok=false means the
	// estimator has no QoS model and the caller should fall back to the
	// fit-based heuristic.
	SLA(vm *VMInfo, grantCPUPct, memDeficitFrac, latencySec float64, s *Scratch) (float64, bool)
	// VMCPUUsage estimates the CPU a VM will actually burn under the grant
	// (for host power aggregation).
	VMCPUUsage(vm *VMInfo, grantCPUPct float64, s *Scratch) float64
	// PMCPU estimates a host's aggregate CPU for a tentative population.
	PMCPU(nGuests int, sumVMCPUPct, sumRPS float64, s *Scratch) float64
	// Name identifies the estimator in reports.
	Name() string
}

// SLAProcEstimator is an Estimator whose SLA model factors into a
// latency-independent *processing* stage plus an analytic latency
// composition. The factoring is the central table-fill lever: the
// processing stage depends only on (VM, grant), not on the DC, so one
// query serves every DC row of the (VM, DC) tables and the per-DC work
// shrinks to the closed-form compose step.
//
// Contract: ComposeSLA(vm, SLAProc(vm, g, d), lat) must equal
// SLA(vm, g, d, lat) bit-for-bit for every latency (including zero), and
// SLA's ok must be constant-true — an estimator without a QoS model must
// not implement this interface.
type SLAProcEstimator interface {
	Estimator
	// SLAProc predicts the processing-stage fulfilment and response time
	// under a tentative grant, before any network latency is applied.
	SLAProc(vm *VMInfo, grantCPUPct, memDeficitFrac float64, s *Scratch) (slaProc, rtProc float64)
	// ComposeSLA applies a network latency to a processing-stage pair.
	ComposeSLA(vm *VMInfo, slaProc, rtProc, latencySec float64) float64
}

// BatchSLAEstimator is an SLAProcEstimator that answers many processing
// queries in one call, letting the backing model amortize per-query setup
// (tree descent, buffer churn) over a whole fill chunk. For each position
// p in idx, the query is (vms[idx[p]], grants[p], memDeficit 0) and the
// answers land in slaProc[p], rtProc[p] — results must be bit-identical
// to per-position SLAProc calls.
type BatchSLAEstimator interface {
	SLAProcEstimator
	SLAProcBatch(vms []VMInfo, idx []int32, grants, slaProc, rtProc []float64, s *Scratch)
}

// Observed sizes VMs by their monitored last-window usage — the plain
// Best-Fit of the paper's intra-DC comparison. It has no QoS model.
type Observed struct {
	// Overbook multiplies observed usage (1 = plain BF, 2 = BF-OB).
	Overbook float64
	// FloorCPU avoids sizing an idle-but-alive VM at zero.
	FloorCPU float64
	// VirtOverheadPct is the expert guess for per-host hypervisor overhead
	// (the non-ML world has to hardcode something).
	VirtOverheadPct float64
}

// NewObserved returns the plain monitored estimator.
func NewObserved() *Observed { return &Observed{Overbook: 1, FloorCPU: 5} }

// NewOverbooked returns the BF-OB estimator: double the observed usage to
// absorb unexpected peaks.
func NewOverbooked() *Observed { return &Observed{Overbook: 2, FloorCPU: 5} }

// Name implements Estimator.
func (o *Observed) Name() string {
	if o.Overbook > 1 {
		return "observed-overbooked"
	}
	return "observed"
}

// Required implements Estimator using the monitoring window.
func (o *Observed) Required(vm *VMInfo, _ *Scratch) model.Resources {
	ob := o.Overbook
	if ob <= 0 {
		ob = 1
	}
	r := vm.Observed.Scale(ob)
	if !vm.HasObserved {
		// Nothing measured yet (fresh VM): fall back to the memory floor
		// and a token CPU ask.
		r = model.Resources{CPUPct: 25, MemMB: vm.Spec.BaseMemMB}
	}
	if r.CPUPct < o.FloorCPU {
		r.CPUPct = o.FloorCPU
	}
	if r.MemMB < vm.Spec.BaseMemMB {
		r.MemMB = vm.Spec.BaseMemMB
	}
	return r
}

// SLA implements Estimator: the monitored world has no QoS model.
func (o *Observed) SLA(*VMInfo, float64, float64, float64, *Scratch) (float64, bool) {
	return 0, false
}

// VMCPUUsage implements Estimator: assume the VM keeps using what the
// window showed, bounded by the grant.
func (o *Observed) VMCPUUsage(vm *VMInfo, grantCPUPct float64, _ *Scratch) float64 {
	use := vm.Observed.CPUPct
	if !vm.HasObserved {
		use = 25
	}
	if use > grantCPUPct {
		use = grantCPUPct
	}
	return use
}

// PMCPU implements Estimator with a plain sum plus the hardcoded overhead.
func (o *Observed) PMCPU(nGuests int, sumVMCPUPct, sumRPS float64, _ *Scratch) float64 {
	if nGuests == 0 {
		return 0
	}
	return sumVMCPUPct + o.VirtOverheadPct
}

// ML sizes VMs with the trained predictor bundle — the paper's ML-enhanced
// Best-Fit. It anticipates requirements from the incoming load instead of
// trusting the stale window, and scores tentative placements with the
// learned SLA model.
type ML struct {
	Bundle *predict.Bundle
	// TargetRho converts predicted CPU *usage* into a CPU *requirement*:
	// requirement = usage / TargetRho, the headroom that keeps the
	// processor-sharing queue responsive between scheduling rounds.
	TargetRho float64
}

// NewML wraps a trained bundle with a 60% utilisation target, enough
// headroom to ride out intra-round load swings.
func NewML(b *predict.Bundle) *ML { return &ML{Bundle: b, TargetRho: 0.6} }

// Name implements Estimator.
func (m *ML) Name() string { return "ml" }

// RoundSeconds is the drain horizon for folding gateway backlog into the
// effective load (one scheduling round).
const RoundSeconds = 600

// ps unwraps the bundle scratch, tolerating callers that pass none.
func (m *ML) ps(s *Scratch) *predict.Scratch {
	if s == nil {
		return new(predict.Scratch)
	}
	return &s.Predict
}

// effectiveLoad folds the pending-request backlog into the request rate:
// the paper treats queue sizes as "additional immediate load". Sizing a
// tentative placement against current-rate-only would ignore the debt the
// VM must work off.
func (m *ML) effectiveLoad(vm *VMInfo) model.Load {
	l := vm.Total
	if vm.QueueLen > 0 {
		l.RPS += vm.QueueLen / RoundSeconds
	}
	return l
}

// Required implements Estimator via the learned resource models.
func (m *ML) Required(vm *VMInfo, s *Scratch) model.Resources {
	eff := m.effectiveLoad(vm)
	r := m.Bundle.PredictVMResourcesBuf(m.ps(s), eff, 0)
	rho := m.TargetRho
	if rho <= 0 || rho > 1 {
		rho = 0.7
	}
	r.CPUPct /= rho
	if r.MemMB < vm.Spec.BaseMemMB {
		r.MemMB = vm.Spec.BaseMemMB
	}
	if vm.Spec.MaxMemMB > 0 && r.MemMB > vm.Spec.MaxMemMB {
		r.MemMB = vm.Spec.MaxMemMB
	}
	return r
}

// SLA implements Estimator via the learned k-NN SLA model. The queue
// feature is evaluated counterfactually: what the backlog will look like
// after one round at the tentative grant. A starving grant grows the
// queue (the model's starved neighbourhoods answer), a generous grant
// drains it (healthy neighbourhoods answer) — this is what restores the
// profit gradient for a currently-backlogged VM.
func (m *ML) SLA(vm *VMInfo, grantCPUPct, memDeficitFrac, latencySec float64, s *Scratch) (float64, bool) {
	l, qAfter := slaQuery(vm, grantCPUPct)
	return m.Bundle.PredictSLABuf(m.ps(s), vm.Spec.Terms, l, grantCPUPct, memDeficitFrac, qAfter, latencySec), true
}

// slaQuery builds the SLA model's query point for a tentative grant: the
// total load plus the counterfactual backlog after one round at that grant.
func slaQuery(vm *VMInfo, grantCPUPct float64) (model.Load, float64) {
	l := vm.Total
	qAfter := vm.QueueLen
	if l.CPUTimeReq > 0 {
		mu := grantCPUPct / 100 / l.CPUTimeReq // service capacity, req/s
		qAfter += (l.RPS - mu) * RoundSeconds
		if qAfter < 0 {
			qAfter = 0
		}
	}
	return l, qAfter
}

// SLAProc implements SLAProcEstimator: the k-NN SLA query and the RT query
// share one feature row, so the pair costs one tree descent plus one model
// evaluation beyond the plain SLA call — and is latency-free, reusable
// across every DC.
func (m *ML) SLAProc(vm *VMInfo, grantCPUPct, memDeficitFrac float64, s *Scratch) (float64, float64) {
	l, qAfter := slaQuery(vm, grantCPUPct)
	return m.Bundle.PredictSLAProcBuf(m.ps(s), l, grantCPUPct, memDeficitFrac, qAfter)
}

// ComposeSLA implements SLAProcEstimator via the analytic transport shift.
func (m *ML) ComposeSLA(vm *VMInfo, slaProc, rtProc, latencySec float64) float64 {
	return predict.ComposeSLA(vm.Spec.Terms, slaProc, rtProc, latencySec)
}

// SLAProcBatch implements BatchSLAEstimator: it builds the feature matrix
// for the whole chunk (memory deficit 0 — the fill grants full memory) and
// hands it to the bundle's batched k-NN path in one call.
func (m *ML) SLAProcBatch(vms []VMInfo, idx []int32, grants, slaProc, rtProc []float64, s *Scratch) {
	if s == nil {
		s = new(Scratch)
	}
	rows := s.rows[:0]
	for p, i := range idx {
		l, qAfter := slaQuery(&vms[i], grants[p])
		rows = predict.VMSLAFeaturesAppend(rows, l, grants[p], 0, qAfter)
	}
	s.rows = rows
	m.Bundle.PredictSLAProcBatchBuf(m.ps(s), rows, len(idx), slaProc, rtProc)
}

// VMCPUUsage implements Estimator via the learned CPU model.
func (m *ML) VMCPUUsage(vm *VMInfo, grantCPUPct float64, s *Scratch) float64 {
	use := m.Bundle.PredictVMCPUBuf(m.ps(s), m.effectiveLoad(vm), 0)
	if use < 0 {
		use = 0
	}
	if use > grantCPUPct {
		use = grantCPUPct
	}
	return use
}

// PMCPU implements Estimator via the learned host model.
func (m *ML) PMCPU(nGuests int, sumVMCPUPct, sumRPS float64, s *Scratch) float64 {
	if nGuests == 0 {
		return 0
	}
	return m.Bundle.PredictPMCPUBuf(m.ps(s), nGuests, sumVMCPUPct, sumRPS)
}

var (
	_ Estimator         = (*Observed)(nil)
	_ Estimator         = (*ML)(nil)
	_ BatchSLAEstimator = (*ML)(nil)
)
