package sched_test

// Delta-round parity: with Delta enabled at epsilon 0, the Round reuses a
// memoized row only when the VM's entire fill signature is bit-identical,
// so every placement must equal the full-recompute schedule — on fresh
// state, on reused scheduler instances (where reuse actually kicks in), in
// parallel mode, and across churned fleets where VMs leave, arrive and
// shift identity-to-index mappings.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// churnedProblem derives a successor-round problem from p: some VMs gone,
// some brand-new, some with perturbed load and placement — the shape the
// dynamic workload produces, with every surviving VM's index shifted.
func churnedProblem(p *sched.Problem) *sched.Problem {
	out := &sched.Problem{Hosts: p.Hosts, Tick: p.Tick + 1}
	var maxID model.VMID
	for i := range p.VMs {
		if p.VMs[i].Spec.ID > maxID {
			maxID = p.VMs[i].Spec.ID
		}
	}
	// Drop the first few VMs (departures shift all later indices).
	drop := 3
	if drop > len(p.VMs)/2 {
		drop = len(p.VMs) / 2
	}
	for i := drop; i < len(p.VMs); i++ {
		vm := p.VMs[i] // copy
		if i%3 == 0 {
			// Perturbed load: deep-copy the vector so the original problem
			// stays untouched, then rescale and recompute the total.
			lv := make(model.LoadVector, len(vm.Load))
			copy(lv, vm.Load)
			for k := range lv {
				lv[k].RPS *= 1.17
			}
			vm.Load = lv
			vm.Total = lv.Total()
			vm.QueueLen += 5
		}
		if i%5 == 0 {
			// Moved elsewhere since last round.
			vm.Current = p.Hosts[i%len(p.Hosts)].Spec.ID
			vm.CurrentDC = p.Hosts[i%len(p.Hosts)].Spec.DC
		}
		out.VMs = append(out.VMs, vm)
	}
	// Arrivals: new identities, never seen by any memo.
	for n := 0; n < 4 && n < len(p.VMs); n++ {
		vm := p.VMs[n]
		vm.Spec.ID = maxID + 1 + model.VMID(n)
		vm.Current = model.NoPM
		vm.CurrentDC = -1
		vm.HasObserved = false
		out.VMs = append(out.VMs, vm)
	}
	return out
}

// TestDeltaRoundPlacementParity proves Delta with epsilon 0 is
// placement-identical to full rounds on every preset: fresh, steady-state
// reused (bit-exact reuse of every row), parallel, and churned.
func TestDeltaRoundPlacementParity(t *testing.T) {
	bundle, err := experiments.TrainedBundle(paritySeed)
	if err != nil {
		t.Fatal(err)
	}
	ests := []sched.Estimator{sched.NewObserved(), sched.NewML(bundle)}
	for _, name := range scenario.Names() {
		p1 := presetProblem(t, name, paritySeed)
		p2 := churnedProblem(p1)
		cost := parityCost(t, name, paritySeed)
		for _, est := range ests {
			fresh := sched.NewBestFit(cost, est)
			want1, err := fresh.Schedule(p1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			want2, err := sched.NewBestFit(cost, est).Schedule(p2)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}

			delta := sched.NewBestFit(cost, est)
			delta.Delta = true
			got, err := delta.Schedule(p1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			if !got.Equal(want1) {
				t.Fatalf("%s/%s: delta fresh round diverged", name, est.Name())
			}
			if st := delta.LastRoundStats(); st.RowsRecomputed != len(p1.VMs) || st.RowsReused != 0 {
				t.Fatalf("%s/%s: fresh delta stats = %+v", name, est.Name(), st)
			}

			// Steady fleet: the identical problem must reuse every row and
			// still emit the identical placement.
			got, err = delta.Schedule(p1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			if !got.Equal(want1) {
				t.Fatalf("%s/%s: delta steady round diverged", name, est.Name())
			}
			if st := delta.LastRoundStats(); st.RowsReused != len(p1.VMs) || st.RowsRecomputed != 0 {
				t.Fatalf("%s/%s: steady delta stats = %+v", name, est.Name(), st)
			}

			// Churned fleet: departures, arrivals and moved/perturbed VMs.
			// Only the changed rows may recompute, and the placement must
			// match a from-scratch schedule of the same problem.
			got, err = delta.Schedule(p2)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			if !got.Equal(want2) {
				t.Fatalf("%s/%s: delta churned round diverged", name, est.Name())
			}
			// On tiny presets the churn touches every VM; only fleets with
			// enough untouched survivors must show partial reuse.
			if st := delta.LastRoundStats(); len(p1.VMs) >= 8 &&
				(st.RowsReused == 0 || st.RowsRecomputed == 0 || st.RowsRecomputed == len(p2.VMs)) {
				t.Fatalf("%s/%s: churned delta counters implausible: %+v", name, est.Name(), st)
			}

			// Parallel delta: same answers at any worker count.
			pd := sched.NewBestFit(cost, est)
			pd.Delta = true
			pd.Parallel = true
			pd.Workers = 3
			for pass, tc := range []struct {
				p    *sched.Problem
				want model.Placement
			}{{p1, want1}, {p1, want1}, {p2, want2}} {
				got, err := pd.Schedule(tc.p)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, est.Name(), err)
				}
				if !got.Equal(tc.want) {
					t.Fatalf("%s/%s pass %d: parallel delta diverged", name, est.Name(), pass)
				}
			}
		}
	}
}

// failCycleProblems derives the three successor problems a host fault
// cycle produces from a mid-run problem: the crash round (victim host
// gone, its guests homeless), the re-home round (victims current on a
// survivor), and the recovery round (victim host back as a candidate,
// same order as the original). The memoized rows are per-DC quantities
// and the per-host profit assembly happens outside the memo, so shrinking
// a multi-host DC may legally keep rows — but the victims' signatures
// change (Current flips) and the placements must match a full recompute
// at every stage regardless.
func failCycleProblems(p *sched.Problem) (failed, rehomed, recovered *sched.Problem) {
	victim := p.VMs[0].Current
	var hosts []sched.HostInfo
	for _, h := range p.Hosts {
		if h.Spec.ID != victim {
			hosts = append(hosts, h)
		}
	}
	survivor := hosts[0].Spec
	stage := func(tick int, hs []sched.HostInfo, cur model.PMID, curDC model.DCID) *sched.Problem {
		out := &sched.Problem{Hosts: hs, Tick: tick}
		for _, vm := range p.VMs {
			if vm.Current == victim {
				vm.Current = cur
				vm.CurrentDC = curDC
			}
			out.VMs = append(out.VMs, vm)
		}
		return out
	}
	failed = stage(p.Tick+1, hosts, model.NoPM, -1)
	rehomed = stage(p.Tick+2, hosts, survivor.ID, survivor.DC)
	recovered = stage(p.Tick+3, p.Hosts, survivor.ID, survivor.DC)
	return failed, rehomed, recovered
}

// TestDeltaParityThroughFaultCycle proves Delta at epsilon 0 stays
// placement-identical to full recomputation through a crash → re-home →
// recover cycle on every preset, with one scheduler instance carrying its
// memo across the shrinking and re-growing candidate set.
func TestDeltaParityThroughFaultCycle(t *testing.T) {
	bundle, err := experiments.TrainedBundle(paritySeed)
	if err != nil {
		t.Fatal(err)
	}
	ests := []sched.Estimator{sched.NewObserved(), sched.NewML(bundle)}
	for _, name := range scenario.Names() {
		p := presetProblem(t, name, paritySeed)
		if p.VMs[0].Current == model.NoPM || len(p.Hosts) < 2 {
			t.Fatalf("%s: warm-up problem has no failable host", name)
		}
		pFail, pRehome, pRecover := failCycleProblems(p)
		cost := parityCost(t, name, paritySeed)
		for _, est := range ests {
			delta := sched.NewBestFit(cost, est)
			delta.Delta = true
			for stage, sp := range []*sched.Problem{p, pFail, pRehome, pRecover} {
				want, err := sched.NewBestFit(cost, est).Schedule(sp)
				if err != nil {
					t.Fatalf("%s/%s stage %d: %v", name, est.Name(), stage, err)
				}
				got, err := delta.Schedule(sp)
				if err != nil {
					t.Fatalf("%s/%s stage %d: %v", name, est.Name(), stage, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s/%s stage %d: delta diverged from full recompute", name, est.Name(), stage)
				}
				st := delta.LastRoundStats()
				switch stage {
				case 0: // cold memo: everything computes
					if st.RowsReused != 0 {
						t.Fatalf("%s/%s cold round reused %d rows", name, est.Name(), st.RowsReused)
					}
				case 1, 2: // evicted then re-homed: every victim's signature
					// (its Current host) changed, so those rows must recompute.
					if st.RowsRecomputed == 0 {
						t.Fatalf("%s/%s stage %d: moved VMs never recomputed: %+v",
							name, est.Name(), stage, st)
					}
				}
			}
			// A repeat of the recovered problem is a steady fleet again:
			// reuse must come back in full.
			got, err := delta.Schedule(pRecover)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			want, err := sched.NewBestFit(cost, est).Schedule(pRecover)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s/%s: steady post-recovery round diverged", name, est.Name())
			}
			if st := delta.LastRoundStats(); st.RowsReused != len(pRecover.VMs) {
				t.Fatalf("%s/%s: post-recovery reuse %d of %d rows",
					name, est.Name(), st.RowsReused, len(pRecover.VMs))
			}
		}
	}
}

// TestDeltaEpsilonToleratesDrift checks the epsilon knob: with a loose
// tolerance, a slightly drifted fleet reuses rows (that is the point of
// the knob), while epsilon 0 recomputes the drifted ones.
func TestDeltaEpsilonToleratesDrift(t *testing.T) {
	p1 := presetProblem(t, scenario.Names()[0], paritySeed)
	drift := &sched.Problem{Hosts: p1.Hosts, Tick: p1.Tick + 1}
	for i := range p1.VMs {
		vm := p1.VMs[i]
		lv := make(model.LoadVector, len(vm.Load))
		copy(lv, vm.Load)
		for k := range lv {
			lv[k].RPS *= 1.001 // 0.1% drift, inside a 1% epsilon
		}
		vm.Load = lv
		vm.Total = lv.Total()
		drift.VMs = append(drift.VMs, vm)
	}
	cost := parityCost(t, scenario.Names()[0], paritySeed)
	est := sched.NewObserved()

	loose := sched.NewBestFit(cost, est)
	loose.Delta = true
	loose.DeltaEpsilon = 0.01
	for _, p := range []*sched.Problem{p1, drift} {
		if _, err := loose.Schedule(p); err != nil {
			t.Fatal(err)
		}
	}
	if st := loose.LastRoundStats(); st.RowsReused != len(p1.VMs) {
		t.Fatalf("loose epsilon reused %d of %d rows", st.RowsReused, len(p1.VMs))
	}

	strict := sched.NewBestFit(cost, est)
	strict.Delta = true
	for _, p := range []*sched.Problem{p1, drift} {
		if _, err := strict.Schedule(p); err != nil {
			t.Fatal(err)
		}
	}
	if st := strict.LastRoundStats(); st.RowsRecomputed != len(p1.VMs) {
		t.Fatalf("strict epsilon recomputed %d of %d rows", st.RowsRecomputed, len(p1.VMs))
	}
}

// TestDeltaModeSwitchDropsMemo pins SetDelta's invalidation rule: toggling
// the mode or changing the epsilon must forget every memoized row.
func TestDeltaModeSwitchDropsMemo(t *testing.T) {
	p := presetProblem(t, scenario.Names()[0], paritySeed)
	cost := parityCost(t, scenario.Names()[0], paritySeed)
	bf := sched.NewBestFit(cost, sched.NewObserved())
	bf.Delta = true
	for pass := 0; pass < 2; pass++ {
		if _, err := bf.Schedule(p); err != nil {
			t.Fatal(err)
		}
	}
	if st := bf.LastRoundStats(); st.RowsReused != len(p.VMs) {
		t.Fatalf("warm memo reused %d rows", st.RowsReused)
	}
	bf.DeltaEpsilon = 0.5 // knob change: memo must drop
	if _, err := bf.Schedule(p); err != nil {
		t.Fatal(err)
	}
	if st := bf.LastRoundStats(); st.RowsRecomputed != len(p.VMs) {
		t.Fatalf("epsilon change kept %d reused rows", st.RowsReused)
	}
}
