package sched_test

// Placement parity: the structure-of-arrays Round memoizes latencies, SLA
// estimates, energy prices and baseline watts, and the schedulers reuse
// rounds and scratch across calls. None of that may change a single
// decision. This file keeps a reference implementation with the
// pre-refactor shape — per-(VM,host) state behind pointers, every quantity
// recomputed from the estimator on every Profit call — and proves that
// profits are bit-identical pair by pair and that every scheduler
// (best-fit, overbooked best-fit, ML best-fit, exhaustive) emits exactly
// the same placement on problems derived from all scenario presets.
//
// The reference's Unassign tracks the actually-subtracted amount (the
// fixed semantics): the old Add(req) restoration was a bug with its own
// regression test in sched_test.go.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/sched"
)

const paritySeed = 7

// --- reference implementation (pre-refactor shape) ---

type refHost struct {
	info   sched.HostInfo
	avail  model.Resources
	guests int
	sumCPU float64
	sumRPS float64
}

type refRound struct {
	cost      sched.CostModel
	est       sched.Estimator
	vms       []sched.VMInfo
	req       []model.Resources
	prevAvail []model.Resources
	hosts     []*refHost
	tick      int
}

func newRefRound(p *sched.Problem, cost sched.CostModel, est sched.Estimator) *refRound {
	r := &refRound{cost: cost, est: est, vms: p.VMs, tick: p.Tick}
	var maxCap model.Resources
	for _, h := range p.Hosts {
		maxCap = maxCap.Max(h.Spec.Capacity)
	}
	r.req = make([]model.Resources, len(p.VMs))
	r.prevAvail = make([]model.Resources, len(p.VMs))
	for i := range p.VMs {
		req := est.Required(&p.VMs[i], nil).Max(model.Resources{})
		if len(p.Hosts) > 0 {
			req = req.Min(maxCap)
		}
		r.req[i] = req
	}
	r.hosts = make([]*refHost, len(p.Hosts))
	for j, h := range p.Hosts {
		r.hosts[j] = &refHost{
			info:   h,
			avail:  h.Spec.Capacity.Sub(h.Resident).Max(model.Resources{}),
			guests: h.ResidentGuests,
			sumCPU: h.ResidentCPUUsage,
			sumRPS: h.ResidentRPS,
		}
	}
	return r
}

func refMemDeficit(granted, required float64) float64 {
	if required <= 0 || granted >= required {
		return 0
	}
	if granted <= 0 {
		return 1
	}
	return (required - granted) / required
}

func refClamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// profit is the pre-refactor evaluation, verbatim: every latency, price,
// baseline wattage and prediction recomputed per call.
func (r *refRound) profit(i, j int) float64 {
	vm := &r.vms[i]
	host := r.hosts[j]
	req := r.req[i]
	hostDC := host.info.Spec.DC

	grant := req.Min(host.avail)
	grantCPU := grant.CPUPct
	memDeficit := refMemDeficit(grant.MemMB, req.MemMB)
	latency := r.cost.Top.MeanLatencyFrom(hostDC, vm.Load)

	var slaEst float64
	if r.cost.LatencyOnly {
		slaEst = vm.Spec.Terms.Fulfilment(vm.Spec.Terms.RT0/2 + latency)
	} else if v, ok := r.est.SLA(vm, grantCPU, memDeficit, latency, nil); ok {
		slaEst = v
	} else {
		slaEst = sched.HeuristicSLA(vm, req, grant, latency)
	}
	profit := vm.Spec.PriceEURh * slaEst * r.cost.HorizonHours

	if r.cost.EnergyAware && !r.cost.LatencyOnly {
		vmCPU := r.est.VMCPUUsage(vm, grantCPU, nil)
		newPM := r.est.PMCPU(host.guests+1, host.sumCPU+vmCPU, host.sumRPS+vm.Total.RPS, nil)
		newPM = refClamp(newPM, 0, host.info.Spec.Capacity.CPUPct)
		var wattsBefore float64
		if host.guests > 0 {
			prevPM := r.est.PMCPU(host.guests, host.sumCPU, host.sumRPS, nil)
			prevPM = refClamp(prevPM, 0, host.info.Spec.Capacity.CPUPct)
			wattsBefore = power.FacilityWatts(r.cost.Power, prevPM)
		}
		wattsAfter := power.FacilityWatts(r.cost.Power, newPM)
		marginal := wattsAfter - wattsBefore
		profit -= power.EnergyEUR(marginal, r.cost.HorizonHours, r.cost.Top.EnergyPriceAt(hostDC, r.tick))
	}

	if r.cost.MigrationAware && vm.Current != model.NoPM && vm.Current != host.info.Spec.ID {
		down := r.cost.Top.MigrationDuration(vm.Spec.ImageSizeGB, vm.CurrentDC, hostDC)
		profit -= 2 * vm.Spec.PriceEURh * down / 3600
	}
	return profit
}

func (r *refRound) assign(i, j int) {
	host := r.hosts[j]
	r.prevAvail[i] = host.avail
	host.avail = host.avail.Sub(r.req[i]).Max(model.Resources{})
	host.sumCPU += r.est.VMCPUUsage(&r.vms[i], r.req[i].CPUPct, nil)
	host.sumRPS += r.vms[i].Total.RPS
	host.guests++
}

func (r *refRound) unassign(i, j int) {
	host := r.hosts[j]
	host.avail = r.prevAvail[i]
	host.sumCPU -= r.est.VMCPUUsage(&r.vms[i], r.req[i].CPUPct, nil)
	host.sumRPS -= r.vms[i].Total.RPS
	host.guests--
}

// refBestFit is the pre-refactor Algorithm 1 loop over the reference round.
func refBestFit(p *sched.Problem, cost sched.CostModel, est sched.Estimator, minGain float64) model.Placement {
	r := newRefRound(p, cost, est)
	ref := p.Hosts[0].Spec.Capacity
	order := make([]int, len(p.VMs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return r.req[order[a]].Dominant(ref) > r.req[order[b]].Dominant(ref)
	})
	placement := make(model.Placement, len(p.VMs))
	scores := make([]float64, len(p.Hosts))
	hostIdx := make(map[model.PMID]int, len(p.Hosts))
	for j := range p.Hosts {
		hostIdx[p.Hosts[j].Spec.ID] = j
	}
	for _, i := range order {
		for j := range p.Hosts {
			scores[j] = r.profit(i, j)
		}
		best := 0
		for j := 1; j < len(scores); j++ {
			if scores[j] > scores[best] {
				best = j
			}
		}
		if cur, ok := hostIdx[p.VMs[i].Current]; ok && best != cur &&
			scores[best] < scores[cur]+minGain {
			best = cur
		}
		r.assign(i, best)
		placement[p.VMs[i].Spec.ID] = r.hosts[best].info.Spec.ID
	}
	return placement
}

// refExhaustive is the pre-refactor branch-and-bound over the reference
// round (no budget), including the Best-Fit incumbent fallback.
func refExhaustive(p *sched.Problem, cost sched.CostModel, est sched.Estimator) model.Placement {
	r := newRefRound(p, cost, est)
	n, m := len(p.VMs), len(p.Hosts)

	// The solver's incumbent Best-Fit is built bare (no hysteresis).
	bfPlacement := refBestFit(p, cost, est, 0)
	bfScore := refScore(p, cost, est, bfPlacement)
	incumbent := math.Inf(-1)

	fresh := newRefRound(p, cost, est)
	optimistic := make([]float64, n)
	for i := 0; i < n; i++ {
		best := math.Inf(-1)
		for j := 0; j < m; j++ {
			if v := fresh.profit(i, j); v > best {
				best = v
			}
		}
		optimistic[i] = best
	}
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + optimistic[i]
	}

	assign := make([]int, n)
	bestAssign := make([]int, n)
	haveBest := false
	var dfs func(i int, acc float64)
	dfs = func(i int, acc float64) {
		if i == n {
			if acc > incumbent {
				incumbent = acc
				copy(bestAssign, assign)
				haveBest = true
			}
			return
		}
		if acc+suffix[i] <= incumbent {
			return
		}
		for j := 0; j < m; j++ {
			v := r.profit(i, j)
			r.assign(i, j)
			assign[i] = j
			dfs(i+1, acc+v)
			r.unassign(i, j)
		}
	}
	dfs(0, 0)

	if !haveBest || incumbent < bfScore {
		return bfPlacement
	}
	out := make(model.Placement, n)
	for i := 0; i < n; i++ {
		out[p.VMs[i].Spec.ID] = r.hosts[bestAssign[i]].info.Spec.ID
	}
	return out
}

func refScore(p *sched.Problem, cost sched.CostModel, est sched.Estimator, placement model.Placement) float64 {
	r := newRefRound(p, cost, est)
	hostIdx := make(map[model.PMID]int, len(p.Hosts))
	for j := range p.Hosts {
		hostIdx[p.Hosts[j].Spec.ID] = j
	}
	total := 0.0
	for i := range p.VMs {
		j, ok := hostIdx[placement[p.VMs[i].Spec.ID]]
		if !ok {
			return math.Inf(-1)
		}
		total += r.profit(i, j)
		r.assign(i, j)
	}
	return total
}

// --- problem construction from presets ---

// presetProblem builds a realistic mid-run scheduling problem from a
// preset: initial placement, a dozen ticks of monitored history, then the
// manager's own problem assembly.
func presetProblem(t *testing.T, name string, seed uint64) *sched.Problem {
	t.Helper()
	sc, err := scenario.Build(scenario.MustPreset(name, seed))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	mgr, err := core.NewManager(core.ManagerConfig{
		World:     sc.World,
		Scheduler: &sched.Fixed{P: sc.HomePlacement()},
		// No scheduling rounds during warm-up: only monitoring history.
		RoundTicks: 1 << 30,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := mgr.Run(15, nil); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	p := mgr.BuildProblem()
	if len(p.VMs) == 0 || len(p.Hosts) == 0 {
		t.Fatalf("%s: empty problem", name)
	}
	return p
}

func parityCost(t *testing.T, name string, seed uint64) sched.CostModel {
	t.Helper()
	sc, err := scenario.Build(scenario.MustPreset(name, seed))
	if err != nil {
		t.Fatal(err)
	}
	return sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
}

// --- the parity suites ---

// TestProfitParityAllPresets proves the memoized Round reproduces the
// reference profit bit-for-bit for every (VM, host) pair on every preset,
// on fresh state and again after assignments.
func TestProfitParityAllPresets(t *testing.T) {
	bundle, err := experiments.TrainedBundle(paritySeed)
	if err != nil {
		t.Fatal(err)
	}
	ests := []sched.Estimator{sched.NewObserved(), sched.NewOverbooked(), sched.NewML(bundle)}
	for _, name := range scenario.Names() {
		p := presetProblem(t, name, paritySeed)
		cost := parityCost(t, name, paritySeed)
		for _, est := range ests {
			round, err := sched.NewRound(p, cost, est)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			ref := newRefRound(p, cost, est)
			check := func(stage string) {
				for i := 0; i < len(p.VMs); i++ {
					for j := 0; j < len(p.Hosts); j++ {
						got, want := round.Profit(i, j), ref.profit(i, j)
						if got != want {
							t.Fatalf("%s/%s %s: profit(%d,%d) = %v, reference %v",
								name, est.Name(), stage, i, j, got, want)
						}
					}
				}
			}
			check("fresh")
			// Exercise the tentative-state updates, including clamped
			// assignments, then re-check every pair.
			for i := 0; i < len(p.VMs); i++ {
				j := i % len(p.Hosts)
				round.Assign(i, j)
				ref.assign(i, j)
			}
			check("loaded")
			// And unwound state (reverse order, as the solver does).
			for i := len(p.VMs) - 1; i >= 0; i-- {
				j := i % len(p.Hosts)
				round.Unassign(i, j)
				ref.unassign(i, j)
			}
			check("unwound")
		}
	}
}

// TestPlacementParityAllPresets proves every scheduler's placements are
// bit-identical to the reference implementation across all presets, that
// reused scheduler instances keep emitting the same answer, and that
// parallel candidate evaluation matches serial.
func TestPlacementParityAllPresets(t *testing.T) {
	bundle, err := experiments.TrainedBundle(paritySeed)
	if err != nil {
		t.Fatal(err)
	}
	ests := []sched.Estimator{sched.NewObserved(), sched.NewOverbooked(), sched.NewML(bundle)}
	for _, name := range scenario.Names() {
		p := presetProblem(t, name, paritySeed)
		cost := parityCost(t, name, paritySeed)

		for _, est := range ests {
			want := refBestFit(p, cost, est, sched.DefaultMinGainEUR)
			bf := sched.NewBestFit(cost, est)
			for pass := 0; pass < 2; pass++ { // fresh and reused state
				got, err := bf.Schedule(p)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, est.Name(), err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s/%s pass %d: best-fit diverged from reference\n got %v\nwant %v",
						name, est.Name(), pass, got, want)
				}
			}
			par := sched.NewBestFit(cost, est)
			par.Parallel = true
			par.Workers = 3
			got, err := par.Schedule(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, est.Name(), err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s/%s: parallel best-fit diverged from reference", name, est.Name())
			}
		}

		// Exhaustive on a trimmed instance (hosts^VMs bounded) with the
		// monitored estimator, pruning on.
		trimmed := &sched.Problem{VMs: p.VMs, Hosts: p.Hosts, Tick: p.Tick}
		if len(trimmed.VMs) > 5 {
			trimmed.VMs = trimmed.VMs[:5]
		}
		if len(trimmed.Hosts) > 4 {
			trimmed.Hosts = trimmed.Hosts[:4]
		}
		est := sched.NewObserved()
		want := refExhaustive(trimmed, cost, est)
		ex := &sched.Exhaustive{Cost: cost, Est: est, Prune: true}
		got, err := ex.Schedule(trimmed)
		if err != nil {
			t.Fatalf("%s/exhaustive: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s/exhaustive diverged from reference\n got %v\nwant %v", name, got, want)
		}
	}
}
