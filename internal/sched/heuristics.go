package sched

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Classical bin-packing heuristics beyond Ordered Best-Fit. The paper's
// prior work found Best-Fit to "perform better among greedy classical
// ad-hoc and heuristics"; these baselines let the claim be re-measured
// (see the `heuristics` experiment).

// FirstFit places each VM on the first host with room for its estimated
// requirement, in host order — the classic one-pass packer. It never
// weighs profit, so energy prices and latency are invisible to it.
type FirstFit struct {
	Est Estimator
}

// Name implements Scheduler.
func (f *FirstFit) Name() string { return "firstfit" }

// Schedule implements Scheduler.
func (f *FirstFit) Schedule(p *Problem) (model.Placement, error) {
	if len(p.Hosts) == 0 {
		return nil, fmt.Errorf("sched: no candidate hosts")
	}
	if f.Est == nil {
		return nil, fmt.Errorf("sched: FirstFit needs an estimator")
	}
	avail := make([]model.Resources, len(p.Hosts))
	for j, h := range p.Hosts {
		avail[j] = h.Spec.Capacity.Sub(h.Resident).Max(model.Resources{})
	}
	// Descending demand, like the paper's ordered variants.
	var s Scratch
	reqs := make([]model.Resources, len(p.VMs))
	order := make([]int, len(p.VMs))
	ref := p.Hosts[0].Spec.Capacity
	for i := range p.VMs {
		reqs[i] = f.Est.Required(&p.VMs[i], &s).Max(model.Resources{}).Min(ref)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Dominant(ref) > reqs[order[b]].Dominant(ref)
	})
	placement := make(model.Placement, len(p.VMs))
	for _, i := range order {
		chosen := -1
		for j := range p.Hosts {
			if reqs[i].FitsIn(avail[j]) {
				chosen = j
				break
			}
		}
		if chosen < 0 {
			// Nothing fits: overflow onto the emptiest host.
			chosen = 0
			best := avail[0].CPUPct
			for j := 1; j < len(p.Hosts); j++ {
				if avail[j].CPUPct > best {
					best = avail[j].CPUPct
					chosen = j
				}
			}
		}
		avail[chosen] = avail[chosen].Sub(reqs[i]).Max(model.Resources{})
		placement[p.VMs[i].Spec.ID] = p.Hosts[chosen].Spec.ID
	}
	return placement, nil
}

// RoundRobin deals VMs across hosts in rotation — the load-balancing
// baseline that maximally spreads (and therefore maximally burns energy).
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "roundrobin" }

// Schedule implements Scheduler.
func (RoundRobin) Schedule(p *Problem) (model.Placement, error) {
	if len(p.Hosts) == 0 {
		return nil, fmt.Errorf("sched: no candidate hosts")
	}
	placement := make(model.Placement, len(p.VMs))
	for i := range p.VMs {
		placement[p.VMs[i].Spec.ID] = p.Hosts[i%len(p.Hosts)].Spec.ID
	}
	return placement, nil
}

// WorstFit places each VM on the host with the most free CPU after its
// requirement — the anti-consolidation packer, good SLA, terrible energy.
type WorstFit struct {
	Est Estimator
}

// Name implements Scheduler.
func (w *WorstFit) Name() string { return "worstfit" }

// Schedule implements Scheduler.
func (w *WorstFit) Schedule(p *Problem) (model.Placement, error) {
	if len(p.Hosts) == 0 {
		return nil, fmt.Errorf("sched: no candidate hosts")
	}
	if w.Est == nil {
		return nil, fmt.Errorf("sched: WorstFit needs an estimator")
	}
	avail := make([]model.Resources, len(p.Hosts))
	for j, h := range p.Hosts {
		avail[j] = h.Spec.Capacity.Sub(h.Resident).Max(model.Resources{})
	}
	var s Scratch
	ref := p.Hosts[0].Spec.Capacity
	reqs := make([]model.Resources, len(p.VMs))
	order := make([]int, len(p.VMs))
	for i := range p.VMs {
		reqs[i] = w.Est.Required(&p.VMs[i], &s).Max(model.Resources{}).Min(ref)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Dominant(ref) > reqs[order[b]].Dominant(ref)
	})
	placement := make(model.Placement, len(p.VMs))
	for _, i := range order {
		chosen := 0
		bestFree := -1.0
		for j := range p.Hosts {
			free := avail[j].Sub(reqs[i]).CPUPct
			if free > bestFree {
				bestFree = free
				chosen = j
			}
		}
		avail[chosen] = avail[chosen].Sub(reqs[i]).Max(model.Resources{})
		placement[p.VMs[i].Spec.ID] = p.Hosts[chosen].Spec.ID
	}
	return placement, nil
}

var (
	_ Scheduler = (*FirstFit)(nil)
	_ Scheduler = RoundRobin{}
	_ Scheduler = (*WorstFit)(nil)
)
