package sched

import (
	"testing"

	"repro/internal/model"
)

func TestFirstFitPacksInOrder(t *testing.T) {
	est := &fakeEstimator{req: map[model.VMID]model.Resources{
		0: {CPUPct: 300, MemMB: 500, BWMbps: 5},
		1: {CPUPct: 300, MemMB: 500, BWMbps: 5},
		2: {CPUPct: 50, MemMB: 200, BWMbps: 2},
	}}
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 40, 0), mkVM(1, 0, 40, 0), mkVM(2, 0, 5, 0)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)},
	}
	ff := &FirstFit{Est: est}
	placement, err := ff.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	// Two 300% VMs cannot share a 400% host; the 50% one fits beside one.
	if placement[0] == placement[1] {
		t.Fatalf("two 300%% VMs on one host: %v", placement)
	}
	if placement[2] != 0 {
		t.Fatalf("small VM should first-fit onto host 0: %v", placement)
	}
}

func TestFirstFitOverflowsToEmptiest(t *testing.T) {
	est := &fakeEstimator{req: map[model.VMID]model.Resources{
		0: {CPUPct: 400, MemMB: 4096, BWMbps: 1000},
		1: {CPUPct: 400, MemMB: 4096, BWMbps: 1000},
		2: {CPUPct: 400, MemMB: 4096, BWMbps: 1000},
	}}
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 90, 0), mkVM(1, 0, 90, 0), mkVM(2, 0, 90, 0)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)},
	}
	ff := &FirstFit{Est: est}
	placement, err := ff.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	// All three must be placed somewhere even though nothing fits.
	for vm, pm := range placement {
		if pm == model.NoPM {
			t.Fatalf("VM %v left unplaced", vm)
		}
	}
}

func TestRoundRobinDeals(t *testing.T) {
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 1, 0), mkVM(1, 0, 1, 0), mkVM(2, 0, 1, 0)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)},
	}
	placement, err := RoundRobin{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != 0 || placement[1] != 1 || placement[2] != 0 {
		t.Fatalf("RoundRobin = %v", placement)
	}
}

func TestWorstFitSpreads(t *testing.T) {
	est := &fakeEstimator{req: map[model.VMID]model.Resources{
		0: {CPUPct: 100, MemMB: 300, BWMbps: 5},
		1: {CPUPct: 100, MemMB: 300, BWMbps: 5},
	}}
	p := &Problem{
		VMs:   []VMInfo{mkVM(0, 0, 20, 0), mkVM(1, 0, 20, 0)},
		Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)},
	}
	wf := &WorstFit{Est: est}
	placement, err := wf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] == placement[1] {
		t.Fatalf("WorstFit consolidated: %v", placement)
	}
}

func TestHeuristicsRequireInputs(t *testing.T) {
	vms := []VMInfo{mkVM(0, 0, 1, 0)}
	if _, err := (&FirstFit{Est: NewObserved()}).Schedule(&Problem{VMs: vms}); err == nil {
		t.Fatal("FirstFit accepted zero hosts")
	}
	if _, err := (&FirstFit{}).Schedule(&Problem{VMs: vms, Hosts: []HostInfo{mkHost(0, 0)}}); err == nil {
		t.Fatal("FirstFit accepted nil estimator")
	}
	if _, err := (RoundRobin{}).Schedule(&Problem{VMs: vms}); err == nil {
		t.Fatal("RoundRobin accepted zero hosts")
	}
	if _, err := (&WorstFit{Est: NewObserved()}).Schedule(&Problem{VMs: vms}); err == nil {
		t.Fatal("WorstFit accepted zero hosts")
	}
	if _, err := (&WorstFit{}).Schedule(&Problem{VMs: vms, Hosts: []HostInfo{mkHost(0, 0)}}); err == nil {
		t.Fatal("WorstFit accepted nil estimator")
	}
}

func TestBestFitHysteresis(t *testing.T) {
	// Two identical hosts; the VM sits on host 1. A microscopic profit
	// difference must not trigger a move, a large one must.
	vm := mkVM(0, 0, 10, 0)
	vm.Current = 1
	vm.CurrentDC = 0
	est := &fakeEstimator{req: map[model.VMID]model.Resources{0: {CPUPct: 50, MemMB: 256, BWMbps: 5}}}
	p := &Problem{VMs: []VMInfo{vm}, Hosts: []HostInfo{mkHost(0, 0), mkHost(1, 0)}}
	bf := NewBestFit(paperCost(), est)
	bf.MinGainEUR = 0.01 // large threshold
	placement, err := bf.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != 1 {
		t.Fatalf("hysteresis failed to hold VM: %v", placement)
	}
}
