package predict

import (
	"math"
	"testing"

	"repro/internal/model"
)

// smallHarvest collects a reduced but still learnable dataset quickly.
func smallHarvest(t *testing.T) *Harvest {
	t.Helper()
	opts := DefaultHarvestOpts(11)
	opts.Ticks = 700
	h, err := Collect(opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

var cachedBundle *Bundle

func trainedBundle(t *testing.T) *Bundle {
	t.Helper()
	if cachedBundle != nil {
		return cachedBundle
	}
	h := smallHarvest(t)
	b, err := Train(h, DefaultTrainConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	cachedBundle = b
	return b
}

func TestFeatureWidthsMatchNames(t *testing.T) {
	l := model.Load{RPS: 10, BytesInReq: 500, BytesOutRq: 2000, CPUTimeReq: 0.01}
	if len(VMCPUFeatures(l, 0)) != len(VMCPUFeatureNames()) {
		t.Fatal("VMCPU feature width mismatch")
	}
	if len(VMMemFeatures(l)) != len(VMMemFeatureNames()) {
		t.Fatal("VMMem feature width mismatch")
	}
	if len(VMNetFeatures(1, 2)) != len(VMNetFeatureNames()) {
		t.Fatal("VMNet feature width mismatch")
	}
	if len(PMCPUFeatures(1, 2, 3)) != len(PMCPUFeatureNames()) {
		t.Fatal("PMCPU feature width mismatch")
	}
	if len(VMRTFeatures(l, 100, 0, 0)) != len(VMRTFeatureNames()) {
		t.Fatal("VMRT feature width mismatch")
	}
	if len(VMSLAFeatures(l, 100, 0, 0)) != len(VMSLAFeatureNames()) {
		t.Fatal("VMSLA feature width mismatch")
	}
}

// TestSLAAndRTFeatureLayoutsMatch pins the invariant the batched proc
// predictor relies on: the VMSLA and VMRT models consume the identical
// feature row, so one prepared row may be fed to both. If either layout
// ever diverges, PredictSLAProcBatchBuf must build separate rows.
func TestSLAAndRTFeatureLayoutsMatch(t *testing.T) {
	l := model.Load{RPS: 37.5, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.0125}
	sla := VMSLAFeatures(l, 123.4, 0.25, 77)
	rt := VMRTFeatures(l, 123.4, 0.25, 77)
	if len(sla) != len(rt) || len(sla) != SLAFeatureDims {
		t.Fatalf("layout widths diverged: sla %d, rt %d, const %d", len(sla), len(rt), SLAFeatureDims)
	}
	for i := range sla {
		if sla[i] != rt[i] {
			t.Fatalf("feature %d diverged: sla %v != rt %v", i, sla[i], rt[i])
		}
	}
	if got := VMSLAFeaturesAppend(nil, l, 123.4, 0.25, 77); len(got) != len(sla) {
		t.Fatalf("append form width %d != %d", len(got), len(sla))
	}
}

// TestSLAProcComposeMatchesPredictSLA proves the two-stage split is a
// bit-identical refactor: PredictSLAProcBuf + ComposeSLA must reproduce
// PredictSLABuf exactly for every latency (including zero), and the batch
// form must reproduce the single-query form row by row.
func TestSLAProcComposeMatchesPredictSLA(t *testing.T) {
	b := trainedBundle(t)
	terms := model.DefaultSLATerms
	loads := []model.Load{
		{RPS: 5, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01},
		{RPS: 60, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01},
		{RPS: 200, BytesInReq: 300, BytesOutRq: 5000, CPUTimeReq: 0.03},
	}
	grants := []float64{10, 50, 200, 390}
	queues := []float64{0, 40, 5000}
	lats := []float64{0, 0.012, 0.08, 0.5}

	var s1, s2, s3 Scratch
	var rows []float64
	var qLoads []model.Load
	var qGrants, qDefs, qQueues []float64
	for _, l := range loads {
		for _, g := range grants {
			for _, q := range queues {
				memDef := 0.0
				if g < 100 {
					memDef = 0.3
				}
				rows = VMSLAFeaturesAppend(rows, l, g, memDef, q)
				qLoads = append(qLoads, l)
				qGrants, qDefs, qQueues = append(qGrants, g), append(qDefs, memDef), append(qQueues, q)
			}
		}
	}
	n := len(qLoads)
	slaProc := make([]float64, n)
	rtProc := make([]float64, n)
	b.PredictSLAProcBatchBuf(&s3, rows, n, slaProc, rtProc)
	for i := 0; i < n; i++ {
		sp, rp := b.PredictSLAProcBuf(&s1, qLoads[i], qGrants[i], qDefs[i], qQueues[i])
		if sp != slaProc[i] || rp != rtProc[i] {
			t.Fatalf("row %d: batch proc (%v,%v) != single proc (%v,%v)", i, slaProc[i], rtProc[i], sp, rp)
		}
		for _, lat := range lats {
			want := b.PredictSLABuf(&s2, terms, qLoads[i], qGrants[i], qDefs[i], qQueues[i], lat)
			if got := ComposeSLA(terms, sp, rp, lat); got != want {
				t.Fatalf("row %d lat %v: compose %v != PredictSLA %v", i, lat, got, want)
			}
		}
	}
}

func TestMemDeficitFrac(t *testing.T) {
	if MemDeficitFrac(512, 512) != 0 {
		t.Fatal("no deficit expected")
	}
	if MemDeficitFrac(600, 512) != 0 {
		t.Fatal("surplus should be zero deficit")
	}
	if got := MemDeficitFrac(256, 512); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("deficit = %v", got)
	}
	if MemDeficitFrac(0, 512) != 1 {
		t.Fatal("zero grant should be full deficit")
	}
	if MemDeficitFrac(100, 0) != 0 {
		t.Fatal("zero requirement should be zero deficit")
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(HarvestOpts{}); err == nil {
		t.Fatal("accepted zero ticks")
	}
}

func TestHarvestProducesData(t *testing.T) {
	h := smallHarvest(t)
	sizes := h.Sizes()
	for name, n := range sizes {
		if n < 100 {
			t.Errorf("%s has only %d rows", name, n)
		}
	}
	// SLA targets must stay in [0, 1].
	for _, y := range h.VMSLA.Y {
		if y < 0 || y > 1 {
			t.Fatalf("SLA target out of range: %v", y)
		}
	}
	// RT targets bounded by the simulator cap.
	for _, y := range h.VMRT.Y {
		if y < 0 || y > 20.01 {
			t.Fatalf("RT target out of range: %v", y)
		}
	}
	if err := h.VMCPU.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainProducesTableIQuality(t *testing.T) {
	b := trainedBundle(t)
	if len(b.Reports) != 7 {
		t.Fatalf("reports = %d", len(b.Reports))
	}
	// The paper's correlations: CPU .854, MEM .994, IN .804, OUT .777,
	// PMCPU .909, RT .865, SLA .985. Require the same order of quality.
	mins := map[string]float64{
		"VM CPU": 0.75,
		"VM MEM": 0.95,
		"VM IN":  0.75,
		"VM OUT": 0.70,
		"PM CPU": 0.80,
		"VM RT":  0.60,
		"VM SLA": 0.78,
	}
	for _, rep := range b.Reports {
		min, ok := mins[rep.Name]
		if !ok {
			t.Fatalf("unexpected report %q", rep.Name)
		}
		if rep.Correlation < min {
			t.Errorf("%s correlation = %.3f, want >= %.2f", rep.Name, rep.Correlation, min)
		}
		if rep.NTrain == 0 || rep.NTest == 0 {
			t.Errorf("%s has empty split: %d/%d", rep.Name, rep.NTrain, rep.NTest)
		}
	}
}

func TestBundlePredictionsSane(t *testing.T) {
	b := trainedBundle(t)
	light := model.Load{RPS: 5, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01}
	heavy := model.Load{RPS: 60, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01}
	rl := b.PredictVMResources(light, 0)
	rh := b.PredictVMResources(heavy, 0)
	if !rl.NonNegative() || !rh.NonNegative() {
		t.Fatalf("negative predictions: %v %v", rl, rh)
	}
	if rh.CPUPct <= rl.CPUPct {
		t.Fatalf("CPU not increasing in load: %v vs %v", rl.CPUPct, rh.CPUPct)
	}
	if rh.MemMB <= rl.MemMB {
		t.Fatalf("memory not increasing in load: %v vs %v", rl.MemMB, rh.MemMB)
	}
	// SLA must clamp to [0,1] and degrade with starvation.
	well := b.PredictSLA(model.DefaultSLATerms, heavy, 200, 0, 0, 0)
	starved := b.PredictSLA(model.DefaultSLATerms, heavy, 10, 0.5, 5000, 0.39)
	if well < 0 || well > 1 || starved < 0 || starved > 1 {
		t.Fatalf("SLA out of range: %v %v", well, starved)
	}
	if starved >= well {
		t.Fatalf("starved SLA (%v) should be below well-fed (%v)", starved, well)
	}
	// PM CPU grows with guests.
	one := b.PredictPMCPU(1, 50, 20)
	three := b.PredictPMCPU(3, 150, 60)
	if three <= one {
		t.Fatalf("PM CPU not increasing: %v vs %v", one, three)
	}
}

func TestPredictRTIncreasesWithStarvation(t *testing.T) {
	b := trainedBundle(t)
	l := model.Load{RPS: 40, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.015}
	healthy := b.PredictRT(l, 200, 0, 0)
	starved := b.PredictRT(l, 15, 0.5, 3000)
	if healthy < 0 || starved < 0 {
		t.Fatal("negative RT prediction")
	}
	if starved <= healthy {
		t.Fatalf("starved RT (%v) should exceed healthy (%v)", starved, healthy)
	}
}

func TestTrainRejectsTinyDatasets(t *testing.T) {
	h := NewHarvest()
	// Only 5 rows each: must refuse.
	l := model.Load{RPS: 1}
	for i := 0; i < 5; i++ {
		h.VMCPU.Add(VMCPUFeatures(l, 0), 1)
		h.VMMem.Add(VMMemFeatures(l), 1)
		h.VMIn.Add(VMNetFeatures(1, 1), 1)
		h.VMOut.Add(VMNetFeatures(1, 1), 1)
		h.PMCPU.Add(PMCPUFeatures(1, 1, 1), 1)
		h.VMRT.Add(VMRTFeatures(l, 1, 0, 0), 1)
		h.VMSLA.Add(VMSLAFeatures(l, 1, 0, 0), 1)
	}
	if _, err := Train(h, DefaultTrainConfig(1)); err == nil {
		t.Fatal("accepted tiny datasets")
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	h := smallHarvest(t)
	// Invalid fractions fall back to 0.66 rather than failing.
	b, err := Train(h, TrainConfig{Seed: 5, TrainFrac: 2, KNNK: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range b.Reports {
		frac := float64(rep.NTrain) / float64(rep.NTrain+rep.NTest)
		if math.Abs(frac-0.66) > 0.02 {
			t.Fatalf("%s train frac = %v", rep.Name, frac)
		}
	}
}
