// Package predict implements the paper's seven learned models (Table I):
//
//	Predict VM CPU   — M5P (M=4)
//	Predict VM MEM   — Linear Regression
//	Predict VM IN    — M5P (M=2)
//	Predict VM OUT   — M5P (M=2)
//	Predict PM CPU   — M5P (M=4)
//	Predict VM RT    — M5P (M=4)
//	Predict VM SLA   — k-NN (K=4)
//
// It owns the feature definitions (so harvesting and inference can never
// drift apart), harvests training data from monitored simulator runs under
// randomised placements, trains the bundle in parallel, and exposes the
// prediction helpers the ML-enhanced scheduler consumes.
package predict

import "repro/internal/model"

// Feature vectors. All units are chosen to keep magnitudes within a few
// orders of magnitude of each other: KB for byte counts, ms for times.

// VMCPUFeatures maps the monitored load characteristics of one VM to the
// feature row of the "Predict VM CPU" model.
func VMCPUFeatures(l model.Load, queueLen float64) []float64 {
	return VMCPUFeaturesInto(nil, l, queueLen)
}

// VMCPUFeaturesInto is VMCPUFeatures into dst's reused capacity.
func VMCPUFeaturesInto(dst []float64, l model.Load, queueLen float64) []float64 {
	return append(dst[:0],
		l.RPS,
		l.BytesInReq/1024,
		l.BytesOutRq/1024,
		l.CPUTimeReq*1000,
		queueLen,
	)
}

// VMCPUFeatureNames labels VMCPUFeatures.
func VMCPUFeatureNames() []string {
	return []string{"rps", "bytesInKB", "bytesOutKB", "cpuTimeMs", "queue"}
}

// VMMemFeatures maps load to the memory model's features. The paper found
// memory to be essentially linear in load, hence the single regressor.
func VMMemFeatures(l model.Load) []float64 {
	return VMMemFeaturesInto(nil, l)
}

// VMMemFeaturesInto is VMMemFeatures into dst's reused capacity.
func VMMemFeaturesInto(dst []float64, l model.Load) []float64 {
	return append(dst[:0], l.RPS)
}

// VMMemFeatureNames labels VMMemFeatures.
func VMMemFeatureNames() []string { return []string{"rps"} }

// VMNetFeatures maps load to the network I/O models' features (shared by
// the IN and OUT models, with the relevant byte size).
func VMNetFeatures(rps, bytesPerReq float64) []float64 {
	return VMNetFeaturesInto(nil, rps, bytesPerReq)
}

// VMNetFeaturesInto is VMNetFeatures into dst's reused capacity.
func VMNetFeaturesInto(dst []float64, rps, bytesPerReq float64) []float64 {
	return append(dst[:0], rps, bytesPerReq/1024)
}

// VMNetFeatureNames labels VMNetFeatures.
func VMNetFeatureNames() []string { return []string{"rps", "bytesKB"} }

// PMCPUFeatures maps a host's guest population to the "Predict PM CPU"
// features: the paper learns PM CPU as a function of "the number of VM's
// and their metrics" because the total exceeds the plain sum.
func PMCPUFeatures(nGuests int, sumVMCPUPct, sumRPS float64) []float64 {
	return PMCPUFeaturesInto(nil, nGuests, sumVMCPUPct, sumRPS)
}

// PMCPUFeaturesInto is PMCPUFeatures into dst's reused capacity.
func PMCPUFeaturesInto(dst []float64, nGuests int, sumVMCPUPct, sumRPS float64) []float64 {
	return append(dst[:0], float64(nGuests), sumVMCPUPct, sumRPS)
}

// PMCPUFeatureNames labels PMCPUFeatures.
func PMCPUFeatureNames() []string { return []string{"guests", "sumVmCpu", "sumRps"} }

// VMRTFeatures maps (load, tentative grant) to the response-time model's
// features.
func VMRTFeatures(l model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) []float64 {
	return VMRTFeaturesInto(nil, l, grantedCPUPct, memDeficitFrac, queueLen)
}

// VMRTFeaturesInto is VMRTFeatures into dst's reused capacity.
func VMRTFeaturesInto(dst []float64, l model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) []float64 {
	return append(dst[:0],
		l.RPS,
		l.CPUTimeReq*1000,
		grantedCPUPct,
		memDeficitFrac,
		queueLen,
	)
}

// VMRTFeatureNames labels VMRTFeatures.
func VMRTFeatureNames() []string {
	return []string{"rps", "cpuTimeMs", "grantCpu", "memDeficit", "queue"}
}

// VMSLAFeatures maps (load, tentative grant) to the SLA model's features.
// Predicting SLA directly (rather than via RT) is the paper's preferred
// design: the bounded [0,1] target is robust to outliers. The model learns
// the *processing* SLA; the transport component is deterministic
// (constraints 6.2-6.3 of Figure 3) and applied analytically on top.
func VMSLAFeatures(l model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) []float64 {
	return VMSLAFeaturesInto(nil, l, grantedCPUPct, memDeficitFrac, queueLen)
}

// VMSLAFeaturesInto is VMSLAFeatures into dst's reused capacity.
func VMSLAFeaturesInto(dst []float64, l model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) []float64 {
	return VMSLAFeaturesAppend(dst[:0], l, grantedCPUPct, memDeficitFrac, queueLen)
}

// VMSLAFeaturesAppend appends the VMSLA feature row to dst without
// truncating it — the batch-matrix building form of VMSLAFeaturesInto.
// The row layout is identical to VMRTFeatures (asserted by
// TestSLAAndRTFeatureLayoutsMatch), which is what lets one prepared row
// serve both the SLA and the RT model in the batched proc predictor.
func VMSLAFeaturesAppend(dst []float64, l model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) []float64 {
	return append(dst,
		l.RPS,
		l.CPUTimeReq*1000,
		grantedCPUPct,
		memDeficitFrac,
		queueLen,
	)
}

// SLAFeatureDims is the width of one VMSLA/VMRT feature row.
const SLAFeatureDims = 5

// VMSLAFeatureNames labels VMSLAFeatures.
func VMSLAFeatureNames() []string {
	return []string{"rps", "cpuTimeMs", "grantCpu", "memDeficit", "queue"}
}

// MemDeficitFrac returns the relative memory shortfall of a tentative
// grant, a key driver of RT degradation (swapping).
func MemDeficitFrac(grantedMB, requiredMB float64) float64 {
	if requiredMB <= 0 || grantedMB >= requiredMB {
		return 0
	}
	if grantedMB <= 0 {
		return 1
	}
	return (requiredMB - grantedMB) / requiredMB
}
