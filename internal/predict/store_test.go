package predict

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func TestBundleSaveLoadRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Reports) != len(b.Reports) {
		t.Fatalf("reports lost: %d vs %d", len(back.Reports), len(b.Reports))
	}
	// Predictions must survive bit-for-bit across all seven models.
	loads := []model.Load{
		{RPS: 5, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01},
		{RPS: 55, BytesInReq: 800, BytesOutRq: 50000, CPUTimeReq: 0.02},
		{RPS: 110, BytesInReq: 400, BytesOutRq: 9000, CPUTimeReq: 0.005},
	}
	for _, l := range loads {
		if b.PredictVMResources(l, 0) != back.PredictVMResources(l, 0) {
			t.Fatalf("resource prediction changed for %+v", l)
		}
		if b.PredictRT(l, 120, 0.1, 50) != back.PredictRT(l, 120, 0.1, 50) {
			t.Fatalf("RT prediction changed for %+v", l)
		}
		a := b.PredictSLA(model.DefaultSLATerms, l, 120, 0.1, 50, 0.09)
		z := back.PredictSLA(model.DefaultSLATerms, l, 120, 0.1, 50, 0.09)
		if a != z {
			t.Fatalf("SLA prediction changed for %+v: %v vs %v", l, a, z)
		}
	}
	if b.PredictPMCPU(3, 150, 60) != back.PredictPMCPU(3, 150, 60) {
		t.Fatal("PM CPU prediction changed")
	}
}

func TestLoadBundleErrors(t *testing.T) {
	if _, err := LoadBundle(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loaded missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, `{"models":{}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bad); err == nil {
		t.Fatal("loaded bundle with missing models")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := writeFile(garbage, "not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(garbage); err == nil {
		t.Fatal("loaded garbage")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
