package predict

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ml"
)

// Bundle persistence: train once with cmd/mdctrain, ship the JSON artefact,
// load it into the decision maker — the offline/online split of a real
// deployment.

// bundleDTO is the wire form of a trained bundle.
type bundleDTO struct {
	Models  map[string]json.RawMessage `json:"models"`
	Reports []ml.Report                `json:"reports"`
}

// MarshalJSON implements json.Marshaler.
func (b *Bundle) MarshalJSON() ([]byte, error) {
	models := map[string]ml.Regressor{
		"vmCPU": b.VMCPU, "vmMem": b.VMMem, "vmIn": b.VMIn, "vmOut": b.VMOut,
		"pmCPU": b.PMCPU, "vmRT": b.VMRT, "vmSLA": b.VMSLA,
	}
	dto := bundleDTO{Models: make(map[string]json.RawMessage, len(models)), Reports: b.Reports}
	for name, m := range models {
		if m == nil {
			return nil, fmt.Errorf("predict: bundle is missing model %q", name)
		}
		raw, err := ml.MarshalRegressor(m)
		if err != nil {
			return nil, fmt.Errorf("predict: serializing %q: %w", name, err)
		}
		dto.Models[name] = raw
	}
	return json.Marshal(dto)
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bundle) UnmarshalJSON(data []byte) error {
	var dto bundleDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return err
	}
	get := func(name string) (ml.Regressor, error) {
		raw, ok := dto.Models[name]
		if !ok {
			return nil, fmt.Errorf("predict: bundle payload missing model %q", name)
		}
		return ml.UnmarshalRegressor(raw)
	}
	var err error
	if b.VMCPU, err = get("vmCPU"); err != nil {
		return err
	}
	if b.VMMem, err = get("vmMem"); err != nil {
		return err
	}
	if b.VMIn, err = get("vmIn"); err != nil {
		return err
	}
	if b.VMOut, err = get("vmOut"); err != nil {
		return err
	}
	if b.PMCPU, err = get("pmCPU"); err != nil {
		return err
	}
	if b.VMRT, err = get("vmRT"); err != nil {
		return err
	}
	if b.VMSLA, err = get("vmSLA"); err != nil {
		return err
	}
	b.Reports = dto.Reports
	return nil
}

// Save writes the bundle to a JSON file.
func (b *Bundle) Save(path string) error {
	data, err := json.Marshal(b)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadBundle reads a bundle saved with Save.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("predict: decoding %s: %w", path, err)
	}
	return &b, nil
}
