package predict

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Harvest holds the seven training datasets gathered from monitored runs.
type Harvest struct {
	VMCPU *ml.Dataset
	VMMem *ml.Dataset
	VMIn  *ml.Dataset
	VMOut *ml.Dataset
	PMCPU *ml.Dataset
	VMRT  *ml.Dataset
	VMSLA *ml.Dataset
}

// NewHarvest allocates empty datasets with the canonical feature names.
func NewHarvest() *Harvest {
	return &Harvest{
		VMCPU: ml.NewDataset(VMCPUFeatureNames()),
		VMMem: ml.NewDataset(VMMemFeatureNames()),
		VMIn:  ml.NewDataset(VMNetFeatureNames()),
		VMOut: ml.NewDataset(VMNetFeatureNames()),
		PMCPU: ml.NewDataset(PMCPUFeatureNames()),
		VMRT:  ml.NewDataset(VMRTFeatureNames()),
		VMSLA: ml.NewDataset(VMSLAFeatureNames()),
	}
}

// HarvestOpts controls data collection.
type HarvestOpts struct {
	Seed uint64
	// Ticks is how long to run the instrumented fleet.
	Ticks int
	// ShuffleEvery re-randomises the placement each period so the data
	// covers consolidated, spread, and overloaded configurations.
	ShuffleEvery int
	// Scenario sizing.
	VMs, PMsPerDC, DCs int
	LoadScale          float64
}

// DefaultHarvestOpts matches the data volumes of Table I (hundreds to a
// couple of thousand instances per model).
func DefaultHarvestOpts(seed uint64) HarvestOpts {
	return HarvestOpts{
		Seed:         seed,
		Ticks:        2 * model.TicksPerDay,
		ShuffleEvery: 5,
		VMs:          6,
		PMsPerDC:     2,
		DCs:          4,
		LoadScale:    2.5,
	}
}

// Collect runs an instrumented scenario under periodically randomised
// placements and records the monitored view into a Harvest. The data the
// models see is exactly what a production middleware could log: gateway
// load characteristics, quota grants, noisy usage samples, response times
// and SLA levels.
func Collect(opts HarvestOpts) (*Harvest, error) {
	if opts.Ticks <= 0 {
		return nil, fmt.Errorf("predict: Ticks must be positive")
	}
	if opts.ShuffleEvery <= 0 {
		opts.ShuffleEvery = 10
	}
	spec := scenario.MustPreset(scenario.Harvest, opts.Seed)
	spec.VMs = opts.VMs
	spec.PMsPerDC = opts.PMsPerDC
	spec.DCs = opts.DCs
	spec.LoadScale = opts.LoadScale
	// Spread each VM's load scale around the nominal value so the training
	// data covers light through pathological regimes — the deployed models
	// must not extrapolate when an experiment runs hotter than the harvest.
	spec.VMScale = make(map[model.VMID][]float64, opts.VMs)
	for i := 0; i < opts.VMs; i++ {
		f := opts.LoadScale * (0.4 + 0.45*float64(i))
		spec.VMScale[model.VMID(i)] = []float64{f, f, f, f}
	}
	sc, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	h := NewHarvest()
	stream := rng.NewNamed(opts.Seed, "predict/harvest")
	world := sc.World
	pms := sc.Inventory.PMs()

	randomPlacement := func() model.Placement {
		p := make(model.Placement, len(sc.VMs))
		// Bias toward fewer hosts so consolidation stress appears often:
		// draw a subset of hosts, then spread VMs across only those.
		k := 1 + stream.IntN(len(pms))
		perm := stream.Perm(len(pms))
		hosts := perm[:k]
		for _, vm := range sc.VMs {
			p[vm.ID] = pms[hosts[stream.IntN(len(hosts))]].ID
		}
		return p
	}
	if err := world.PlaceInitial(randomPlacement()); err != nil {
		return nil, err
	}

	for t := 0; t < opts.Ticks; t++ {
		if t > 0 && t%opts.ShuffleEvery == 0 {
			if err := world.ApplySchedule(randomPlacement()); err != nil {
				return nil, err
			}
		}
		world.Step()
		h.RecordTick(world)
	}
	return h, nil
}

// RecordTick folds the current monitored tick of a live world into the
// datasets — the same code path harvests offline training data and feeds
// the online-learning updater.
func (h *Harvest) RecordTick(world *sim.World) {
	obs := world.Observer()
	// Per-VM rows.
	type pmAgg struct {
		guests int
		sumCPU float64
		sumRPS float64
	}
	perPM := make(map[model.PMID]*pmAgg)
	for _, spec := range world.Inventory().VMs() {
		truth, ok := world.VMTruthAt(spec.ID)
		if !ok || truth.Host == model.NoPM {
			continue
		}
		sample, ok := obs.LastVM(spec.ID)
		if !ok || truth.Migrating {
			continue // migration ticks are blackout noise, skip as the paper does
		}
		load := sample.Load
		queue := sample.QueueLen
		// Requirement models (CPU, MEM) learn "what the VM uses to serve
		// this load"; rows where the quota was binding describe starvation,
		// not requirement, and the middleware can tell the two apart by
		// comparing usage against the grant it set. RT/SLA models keep all
		// rows — starvation is exactly their subject.
		if truth.Used.CPUPct < 0.95*truth.Granted.CPUPct {
			h.VMCPU.Add(VMCPUFeatures(load, queue), sample.Usage.CPUPct)
		}
		if truth.Used.MemMB < 0.98*truth.Granted.MemMB || truth.Required.MemMB <= truth.Granted.MemMB {
			h.VMMem.Add(VMMemFeatures(load), sample.Usage.MemMB)
		}
		// Network targets come from the monitored NIC counter, split by the
		// request/reply byte ratio — noisy and saturation-capped, like the
		// paper's measured traffic.
		inKB, outKB := splitTraffic(sample.Usage.BWMbps, load)
		h.VMIn.Add(VMNetFeatures(load.RPS, load.BytesInReq), inKB)
		h.VMOut.Add(VMNetFeatures(load.RPS, load.BytesOutRq), outKB)
		memDef := MemDeficitFrac(truth.Granted.MemMB, truth.Required.MemMB)
		h.VMRT.Add(VMRTFeatures(load, truth.Granted.CPUPct, memDef, queue), sample.RT)
		// SLA target: the processing component only, measured at the host's
		// own gateway. Transport is deterministic and added at prediction
		// time (Figure 3, constraints 6.2-6.3).
		procSLA := spec.Terms.Fulfilment(sample.RT)
		h.VMSLA.Add(VMSLAFeatures(load, truth.Granted.CPUPct, memDef, queue), procSLA)

		agg := perPM[truth.Host]
		if agg == nil {
			agg = &pmAgg{}
			perPM[truth.Host] = agg
		}
		agg.guests++
		agg.sumCPU += sample.Usage.CPUPct
		agg.sumRPS += load.RPS
	}
	// Per-PM rows: the target is this tick's PM observation so features and
	// label stay time-aligned.
	for _, pm := range world.Inventory().PMs() {
		agg := perPM[pm.ID]
		if agg == nil {
			continue // off machines carry no signal
		}
		if obsPM, ok := obs.LastPM(pm.ID); ok {
			h.PMCPU.Add(PMCPUFeatures(agg.guests, agg.sumCPU, agg.sumRPS), obsPM.CPUPct)
		}
	}
}

// splitTraffic divides a monitored NIC rate (Mbps) into inbound and
// outbound KB/s using the load's byte ratio.
func splitTraffic(bwMbps float64, load model.Load) (inKB, outKB float64) {
	totalBytes := load.BytesInReq + load.BytesOutRq
	if totalBytes <= 0 {
		return 0, 0
	}
	totalKB := bwMbps * 1e6 / 8 / 1024
	inKB = totalKB * load.BytesInReq / totalBytes
	outKB = totalKB * load.BytesOutRq / totalBytes
	return inKB, outKB
}

// Clone returns a harvest whose datasets hold the same rows but share no
// slice spines with the original: the clone is safe to train from on
// another goroutine while the original keeps growing. Individual rows
// ARE shared — a recorded row is immutable (RecordTick appends fresh
// slices, tail only re-slices), so sharing them is sound and cheap.
func (h *Harvest) Clone() *Harvest {
	out := NewHarvest()
	src := h.datasets()
	dst := out.datasets()
	for i := range src {
		dst[i].X = append(dst[i].X, src[i].X...)
		dst[i].Y = append(dst[i].Y, src[i].Y...)
	}
	return out
}

// Sizes reports the dataset sizes in Table I order.
func (h *Harvest) Sizes() map[string]int {
	return map[string]int{
		"VMCPU": h.VMCPU.Len(),
		"VMMem": h.VMMem.Len(),
		"VMIn":  h.VMIn.Len(),
		"VMOut": h.VMOut.Len(),
		"PMCPU": h.PMCPU.Len(),
		"VMRT":  h.VMRT.Len(),
		"VMSLA": h.VMSLA.Len(),
	}
}
