package predict

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/rng"
)

// Bundle is the trained set of the paper's seven predictors plus their
// validation reports (the rows of Table I).
type Bundle struct {
	VMCPU ml.Regressor
	VMMem ml.Regressor
	VMIn  ml.Regressor
	VMOut ml.Regressor
	PMCPU ml.Regressor
	VMRT  ml.Regressor
	VMSLA ml.Regressor
	// Reports holds one validation row per model, in Table I order.
	Reports []ml.Report
}

// TrainConfig controls bundle training.
type TrainConfig struct {
	Seed uint64
	// TrainFrac is the training share of each dataset (paper: 0.66).
	TrainFrac float64
	// Workers bounds training parallelism (<= 0 = GOMAXPROCS).
	Workers int
	// KNNK is the SLA model's neighbour count (paper: 4).
	KNNK int
}

// DefaultTrainConfig mirrors the paper's setup.
func DefaultTrainConfig(seed uint64) TrainConfig {
	return TrainConfig{Seed: seed, TrainFrac: 0.66, KNNK: 4}
}

// Train fits all seven models in parallel and validates each on its
// held-out split.
func Train(h *Harvest, cfg TrainConfig) (*Bundle, error) {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.66
	}
	if cfg.KNNK <= 0 {
		cfg.KNNK = 4
	}
	type job struct {
		name   string
		method string
		unit   string
		data   *ml.Dataset
		train  func(*ml.Dataset) (ml.Regressor, error)
	}
	jobs := []job{
		{"VM CPU", "M5P (M=4)", "%CPU", h.VMCPU, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(4))
		}},
		{"VM MEM", "Linear Reg.", "MB", h.VMMem, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainLinear(d, 0)
		}},
		{"VM IN", "M5P (M=2)", "KB", h.VMIn, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(2))
		}},
		{"VM OUT", "M5P (M=2)", "KB", h.VMOut, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(2))
		}},
		{"PM CPU", "M5P (M=4)", "%CPU", h.PMCPU, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(4))
		}},
		{"VM RT", "M5P (M=4)", "s", h.VMRT, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(4))
		}},
		{"VM SLA", fmt.Sprintf("K-NN (K=%d)", cfg.KNNK), "", h.VMSLA, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainKNN(d, ml.DefaultKNNConfig(cfg.KNNK))
		}},
	}
	type result struct {
		reg    ml.Regressor
		report ml.Report
		err    error
	}
	results := par.MapIdx(jobs, cfg.Workers, func(i int, j job) result {
		if j.data.Len() < 10 {
			return result{err: fmt.Errorf("predict: %s has only %d rows", j.name, j.data.Len())}
		}
		stream := rng.NewNamed(cfg.Seed, "predict/split/"+j.name)
		train, test := j.data.Split(cfg.TrainFrac, stream)
		reg, err := j.train(train)
		if err != nil {
			return result{err: fmt.Errorf("predict: training %s: %w", j.name, err)}
		}
		rep := ml.Evaluate(reg, test)
		rep.Name = j.name
		rep.Method = j.method
		rep.Unit = j.unit
		rep.NTrain = train.Len()
		return result{reg: reg, report: rep}
	})
	b := &Bundle{}
	for i, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		b.Reports = append(b.Reports, r.report)
		switch i {
		case 0:
			b.VMCPU = r.reg
		case 1:
			b.VMMem = r.reg
		case 2:
			b.VMIn = r.reg
		case 3:
			b.VMOut = r.reg
		case 4:
			b.PMCPU = r.reg
		case 5:
			b.VMRT = r.reg
		case 6:
			b.VMSLA = r.reg
		}
	}
	return b, nil
}

// Scratch carries one goroutine's reusable inference buffers (the feature
// row and the ML-level scratch) through repeated bundle predictions. The
// zero value is ready; a Scratch must not be shared between goroutines.
type Scratch struct {
	feat []float64
	buf  ml.Buf
}

// PredictVMResources anticipates the resources a VM will need to serve the
// given load — the replacement for reading stale monitors (Section IV-B).
func (b *Bundle) PredictVMResources(load model.Load, queueLen float64) model.Resources {
	var s Scratch
	return b.PredictVMResourcesBuf(&s, load, queueLen)
}

// PredictVMResourcesBuf is PredictVMResources over caller scratch:
// allocation-free once s has warmed up, bit-identical results.
func (b *Bundle) PredictVMResourcesBuf(s *Scratch, load model.Load, queueLen float64) model.Resources {
	s.feat = VMCPUFeaturesInto(s.feat, load, queueLen)
	cpu := ml.PredictBuffered(b.VMCPU, s.feat, &s.buf)
	s.feat = VMMemFeaturesInto(s.feat, load)
	mem := ml.PredictBuffered(b.VMMem, s.feat, &s.buf)
	s.feat = VMNetFeaturesInto(s.feat, load.RPS, load.BytesInReq)
	inKB := ml.PredictBuffered(b.VMIn, s.feat, &s.buf)
	s.feat = VMNetFeaturesInto(s.feat, load.RPS, load.BytesOutRq)
	outKB := ml.PredictBuffered(b.VMOut, s.feat, &s.buf)
	bw := (inKB + outKB) * 1024 * 8 / 1e6 // KB/s -> Mbps
	r := model.Resources{CPUPct: cpu, MemMB: mem, BWMbps: bw}
	return r.Max(model.Resources{}) // clamp regression undershoot
}

// PredictVMCPUBuf predicts the raw "Predict VM CPU" model over caller
// scratch, unclamped — callers bound the result to their grant.
func (b *Bundle) PredictVMCPUBuf(s *Scratch, load model.Load, queueLen float64) float64 {
	s.feat = VMCPUFeaturesInto(s.feat, load, queueLen)
	return ml.PredictBuffered(b.VMCPU, s.feat, &s.buf)
}

// PredictPMCPU anticipates a host's total CPU (including virtualisation
// overhead) for a tentative guest population. The prediction is floored at
// the plain guest sum: a host can never burn less than its guests, so any
// regression undershoot on off-manifold queries is physically impossible
// and clamped away.
func (b *Bundle) PredictPMCPU(nGuests int, sumVMCPUPct, sumRPS float64) float64 {
	var s Scratch
	return b.PredictPMCPUBuf(&s, nGuests, sumVMCPUPct, sumRPS)
}

// PredictPMCPUBuf is PredictPMCPU over caller scratch.
func (b *Bundle) PredictPMCPUBuf(s *Scratch, nGuests int, sumVMCPUPct, sumRPS float64) float64 {
	s.feat = PMCPUFeaturesInto(s.feat, nGuests, sumVMCPUPct, sumRPS)
	v := ml.PredictBuffered(b.PMCPU, s.feat, &s.buf)
	if v < sumVMCPUPct {
		v = sumVMCPUPct
	}
	if v < 0 {
		return 0
	}
	return v
}

// PredictRT anticipates the processing response time of a VM under a
// tentative CPU grant.
func (b *Bundle) PredictRT(load model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) float64 {
	var s Scratch
	return b.PredictRTBuf(&s, load, grantedCPUPct, memDeficitFrac, queueLen)
}

// PredictRTBuf is PredictRT over caller scratch.
func (b *Bundle) PredictRTBuf(s *Scratch, load model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) float64 {
	s.feat = VMRTFeaturesInto(s.feat, load, grantedCPUPct, memDeficitFrac, queueLen)
	v := ml.PredictBuffered(b.VMRT, s.feat, &s.buf)
	if v < 0 {
		return 0
	}
	return v
}

// PredictSLA anticipates the SLA fulfilment of a VM under a tentative
// grant and client latency, clamped to [0, 1]. The k-NN supplies the
// processing SLA; the transport latency is composed in analytically
// (Figure 3, constraints 6.2-6.3 then 7) by shifting the *predicted
// processing response time* through the contract curve:
//
//	SLA = slaProc * F(rtProc + latency) / F(rtProc)
//
// so a fast service absorbs a small hop for free (rt stays under RT0)
// while a strained one is hurt in proportion.
func (b *Bundle) PredictSLA(terms model.SLATerms, load model.Load, grantedCPUPct, memDeficitFrac, queueLen, latencySec float64) float64 {
	var s Scratch
	return b.PredictSLABuf(&s, terms, load, grantedCPUPct, memDeficitFrac, queueLen, latencySec)
}

// PredictSLABuf is PredictSLA over caller scratch. It is the
// one-query composition of PredictSLAProcBuf and ComposeSLA, with the RT
// prediction skipped when the latency shift cannot change the answer
// (zero latency or zero processing SLA).
func (b *Bundle) PredictSLABuf(s *Scratch, terms model.SLATerms, load model.Load, grantedCPUPct, memDeficitFrac, queueLen, latencySec float64) float64 {
	s.feat = VMSLAFeaturesInto(s.feat, load, grantedCPUPct, memDeficitFrac, queueLen)
	v := ml.PredictBuffered(b.VMSLA, s.feat, &s.buf)
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if latencySec <= 0 || v == 0 {
		return v
	}
	rtProc := b.PredictRTBuf(s, load, grantedCPUPct, memDeficitFrac, queueLen)
	return ComposeSLA(terms, v, rtProc, latencySec)
}

// PredictSLAProcBuf predicts the latency-independent processing stage of
// the SLA model: the k-NN processing SLA clamped to [0, 1] plus the
// predicted processing response time the latency composition needs.
// rtProc is 0 whenever slaProc is 0 (ComposeSLA short-circuits there, so
// the RT model is never consulted — matching PredictSLABuf's laziness).
// ComposeSLA(terms, slaProc, rtProc, lat) then equals
// PredictSLABuf(..., lat) bit for bit: this split is what lets a
// scheduling-round table fill run the expensive models once per VM and
// derive every candidate DC's SLA analytically.
func (b *Bundle) PredictSLAProcBuf(s *Scratch, load model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) (slaProc, rtProc float64) {
	s.feat = VMSLAFeaturesInto(s.feat, load, grantedCPUPct, memDeficitFrac, queueLen)
	v := ml.PredictBuffered(b.VMSLA, s.feat, &s.buf)
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if v == 0 {
		return 0, 0
	}
	return v, b.PredictRTBuf(s, load, grantedCPUPct, memDeficitFrac, queueLen)
}

// PredictSLAProcBatchBuf is PredictSLAProcBuf over n prepared feature
// rows, stored row-major in rows (len(rows) == n*SLAFeatureDims; build
// them with VMSLAFeaturesAppend). It fills slaProc[:n] and rtProc[:n].
// The SLA and RT models share the row layout, so each row is standardized
// and queried as-is by both; per-row results are bit-identical to
// PredictSLAProcBuf. The k-NN runs through its batch path — one shared
// scratch, one traversal stack — which is where a (VM, DC) table fill's
// query volume gets amortized.
func (b *Bundle) PredictSLAProcBatchBuf(s *Scratch, rows []float64, n int, slaProc, rtProc []float64) {
	if n <= 0 {
		return
	}
	ml.PredictBatchBuffered(b.VMSLA, rows, n, slaProc, &s.buf)
	d := len(rows) / n
	for i := 0; i < n; i++ {
		v := slaProc[i]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		slaProc[i] = v
		if v == 0 {
			rtProc[i] = 0
			continue
		}
		rt := ml.PredictBuffered(b.VMRT, rows[i*d:(i+1)*d], &s.buf)
		if rt < 0 {
			rt = 0
		}
		rtProc[i] = rt
	}
}

// ComposeSLA folds client latency into a processing-stage prediction —
// the analytic tail of PredictSLA (Figure 3, constraints 6.2-6.3 then 7):
// the predicted processing response time is shifted through the contract
// curve and the processing SLA scaled by the fulfilment ratio. It must
// stay bit-identical to the tail of PredictSLABuf; in particular the
// ratio is computed before the multiply, matching the original v *= s/b.
func ComposeSLA(terms model.SLATerms, slaProc, rtProc, latencySec float64) float64 {
	if latencySec <= 0 || slaProc == 0 {
		return slaProc
	}
	base := terms.Fulfilment(rtProc)
	if base <= 1e-9 {
		return 0
	}
	shifted := terms.Fulfilment(rtProc + latencySec)
	v := slaProc * (shifted / base)
	if v > 1 {
		v = 1
	}
	return v
}
