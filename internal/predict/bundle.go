package predict

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/rng"
)

// Bundle is the trained set of the paper's seven predictors plus their
// validation reports (the rows of Table I).
type Bundle struct {
	VMCPU ml.Regressor
	VMMem ml.Regressor
	VMIn  ml.Regressor
	VMOut ml.Regressor
	PMCPU ml.Regressor
	VMRT  ml.Regressor
	VMSLA ml.Regressor
	// Reports holds one validation row per model, in Table I order.
	Reports []ml.Report
}

// TrainConfig controls bundle training.
type TrainConfig struct {
	Seed uint64
	// TrainFrac is the training share of each dataset (paper: 0.66).
	TrainFrac float64
	// Workers bounds training parallelism (<= 0 = GOMAXPROCS).
	Workers int
	// KNNK is the SLA model's neighbour count (paper: 4).
	KNNK int
}

// DefaultTrainConfig mirrors the paper's setup.
func DefaultTrainConfig(seed uint64) TrainConfig {
	return TrainConfig{Seed: seed, TrainFrac: 0.66, KNNK: 4}
}

// Train fits all seven models in parallel and validates each on its
// held-out split.
func Train(h *Harvest, cfg TrainConfig) (*Bundle, error) {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.66
	}
	if cfg.KNNK <= 0 {
		cfg.KNNK = 4
	}
	type job struct {
		name   string
		method string
		unit   string
		data   *ml.Dataset
		train  func(*ml.Dataset) (ml.Regressor, error)
	}
	jobs := []job{
		{"VM CPU", "M5P (M=4)", "%CPU", h.VMCPU, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(4))
		}},
		{"VM MEM", "Linear Reg.", "MB", h.VMMem, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainLinear(d, 0)
		}},
		{"VM IN", "M5P (M=2)", "KB", h.VMIn, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(2))
		}},
		{"VM OUT", "M5P (M=2)", "KB", h.VMOut, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(2))
		}},
		{"PM CPU", "M5P (M=4)", "%CPU", h.PMCPU, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(4))
		}},
		{"VM RT", "M5P (M=4)", "s", h.VMRT, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainM5P(d, ml.DefaultM5PConfig(4))
		}},
		{"VM SLA", fmt.Sprintf("K-NN (K=%d)", cfg.KNNK), "", h.VMSLA, func(d *ml.Dataset) (ml.Regressor, error) {
			return ml.TrainKNN(d, ml.DefaultKNNConfig(cfg.KNNK))
		}},
	}
	type result struct {
		reg    ml.Regressor
		report ml.Report
		err    error
	}
	results := par.MapIdx(jobs, cfg.Workers, func(i int, j job) result {
		if j.data.Len() < 10 {
			return result{err: fmt.Errorf("predict: %s has only %d rows", j.name, j.data.Len())}
		}
		stream := rng.NewNamed(cfg.Seed, "predict/split/"+j.name)
		train, test := j.data.Split(cfg.TrainFrac, stream)
		reg, err := j.train(train)
		if err != nil {
			return result{err: fmt.Errorf("predict: training %s: %w", j.name, err)}
		}
		rep := ml.Evaluate(reg, test)
		rep.Name = j.name
		rep.Method = j.method
		rep.Unit = j.unit
		rep.NTrain = train.Len()
		return result{reg: reg, report: rep}
	})
	b := &Bundle{}
	for i, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		b.Reports = append(b.Reports, r.report)
		switch i {
		case 0:
			b.VMCPU = r.reg
		case 1:
			b.VMMem = r.reg
		case 2:
			b.VMIn = r.reg
		case 3:
			b.VMOut = r.reg
		case 4:
			b.PMCPU = r.reg
		case 5:
			b.VMRT = r.reg
		case 6:
			b.VMSLA = r.reg
		}
	}
	return b, nil
}

// PredictVMResources anticipates the resources a VM will need to serve the
// given load — the replacement for reading stale monitors (Section IV-B).
func (b *Bundle) PredictVMResources(load model.Load, queueLen float64) model.Resources {
	cpu := b.VMCPU.Predict(VMCPUFeatures(load, queueLen))
	mem := b.VMMem.Predict(VMMemFeatures(load))
	inKB := b.VMIn.Predict(VMNetFeatures(load.RPS, load.BytesInReq))
	outKB := b.VMOut.Predict(VMNetFeatures(load.RPS, load.BytesOutRq))
	bw := (inKB + outKB) * 1024 * 8 / 1e6 // KB/s -> Mbps
	r := model.Resources{CPUPct: cpu, MemMB: mem, BWMbps: bw}
	return r.Max(model.Resources{}) // clamp regression undershoot
}

// PredictPMCPU anticipates a host's total CPU (including virtualisation
// overhead) for a tentative guest population. The prediction is floored at
// the plain guest sum: a host can never burn less than its guests, so any
// regression undershoot on off-manifold queries is physically impossible
// and clamped away.
func (b *Bundle) PredictPMCPU(nGuests int, sumVMCPUPct, sumRPS float64) float64 {
	v := b.PMCPU.Predict(PMCPUFeatures(nGuests, sumVMCPUPct, sumRPS))
	if v < sumVMCPUPct {
		v = sumVMCPUPct
	}
	if v < 0 {
		return 0
	}
	return v
}

// PredictRT anticipates the processing response time of a VM under a
// tentative CPU grant.
func (b *Bundle) PredictRT(load model.Load, grantedCPUPct, memDeficitFrac, queueLen float64) float64 {
	v := b.VMRT.Predict(VMRTFeatures(load, grantedCPUPct, memDeficitFrac, queueLen))
	if v < 0 {
		return 0
	}
	return v
}

// PredictSLA anticipates the SLA fulfilment of a VM under a tentative
// grant and client latency, clamped to [0, 1]. The k-NN supplies the
// processing SLA; the transport latency is composed in analytically
// (Figure 3, constraints 6.2-6.3 then 7) by shifting the *predicted
// processing response time* through the contract curve:
//
//	SLA = slaProc * F(rtProc + latency) / F(rtProc)
//
// so a fast service absorbs a small hop for free (rt stays under RT0)
// while a strained one is hurt in proportion.
func (b *Bundle) PredictSLA(terms model.SLATerms, load model.Load, grantedCPUPct, memDeficitFrac, queueLen, latencySec float64) float64 {
	v := b.VMSLA.Predict(VMSLAFeatures(load, grantedCPUPct, memDeficitFrac, queueLen))
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if latencySec <= 0 || v == 0 {
		return v
	}
	rtProc := b.PredictRT(load, grantedCPUPct, memDeficitFrac, queueLen)
	base := terms.Fulfilment(rtProc)
	if base <= 1e-9 {
		return 0
	}
	shifted := terms.Fulfilment(rtProc + latencySec)
	v *= shifted / base
	if v > 1 {
		v = 1
	}
	return v
}
