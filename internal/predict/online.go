package predict

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ml"
	"repro/internal/sim"
)

// Online implements the paper's future-work item 4: "the use of on-line
// learning methods, able to retrain continuously on recent data, to make
// the system react quickly to changes in either application behavior,
// hardware or middleware changes, or workload characteristics."
//
// It keeps a sliding window of recent monitored observations and
// periodically refits the whole bundle *in place*, so every decision maker
// holding the same *Bundle pointer picks up the new models at the next
// round. Observe/MaybeRetrain and reads of o.Bundle must come from the
// single management-loop goroutine; concurrent readers (serve-mode query
// handlers, background scorers) must go through Current instead, which
// hands out an immutable snapshot that a retrain atomically replaces
// rather than mutates.
type Online struct {
	// Bundle is the live model set being kept fresh. Its fields are
	// swapped in place on retrain, so it is owner-goroutine-only state.
	Bundle *Bundle
	// Window is the sliding observation store.
	Window *Harvest
	// MaxRows bounds each dataset; older rows fall off the front.
	MaxRows int
	// RetrainEvery is the refit period in ticks (0 disables).
	RetrainEvery int
	// Train configures the refits.
	Train TrainConfig

	// cur is the published read-only snapshot: a *Bundle whose fields are
	// never written after the Store, safe to use from any goroutine while
	// a retrain runs. Individual models are shared with o.Bundle — that is
	// sound because a fitted ml.Regressor is immutable at inference time.
	cur atomic.Pointer[Bundle]

	retrains        int
	lastRetrainTick int
	lastRetrainWall time.Duration
}

// NewOnline wraps a bundle with continuous retraining. The bundle is
// DEEP-COPIED so the caller's original models stay frozen (handy for
// with/without comparisons); read the live models through o.Bundle.
func NewOnline(b *Bundle, cfg TrainConfig, maxRows, retrainEvery int) (*Online, error) {
	clone, err := CloneBundle(b)
	if err != nil {
		return nil, err
	}
	if maxRows <= 0 {
		maxRows = 4000
	}
	if retrainEvery <= 0 {
		retrainEvery = 60
	}
	o := &Online{
		Bundle:          clone,
		Window:          NewHarvest(),
		MaxRows:         maxRows,
		RetrainEvery:    retrainEvery,
		Train:           cfg,
		lastRetrainTick: -1,
	}
	// Publish a snapshot that is a distinct struct from o.Bundle: the
	// in-place field swap on retrain must never touch a struct a reader
	// may be traversing.
	snap := *clone
	o.cur.Store(&snap)
	return o, nil
}

// Current returns the latest immutable bundle snapshot. Unlike o.Bundle,
// it is safe to call from any goroutine at any time — including while the
// owner goroutine is mid-retrain — and the returned bundle's fields never
// change. Hold the pointer for the duration of one decision (a scheduling
// round, an HTTP request) so the decision sees one consistent model set.
func (o *Online) Current() *Bundle { return o.cur.Load() }

// Retrains returns how many refits have happened.
func (o *Online) Retrains() int { return o.retrains }

// DatasetRows is one dataset's current sliding-window occupancy.
type DatasetRows struct {
	Name string
	Rows int
}

// OnlineStats is a point-in-time snapshot of the online learner's
// freshness — what a churn run reports so operators can tell whether the
// models have kept up with the fleet they are predicting for.
type OnlineStats struct {
	// Retrains counts completed refits.
	Retrains int
	// LastRetrainTick is the tick of the most recent refit (-1 if none).
	LastRetrainTick int
	// LastRetrainWall is the wall-clock duration of the most recent refit.
	LastRetrainWall time.Duration
	// WindowRows lists each dataset's rows currently in the sliding
	// window, in the harvest's canonical dataset order.
	WindowRows []DatasetRows
}

// Stats snapshots the learner's freshness counters.
func (o *Online) Stats() OnlineStats {
	names := [...]string{"VM CPU", "VM MEM", "VM IN", "VM OUT", "PM CPU", "VM RT", "VM SLA"}
	s := OnlineStats{
		Retrains:        o.retrains,
		LastRetrainTick: o.lastRetrainTick,
		LastRetrainWall: o.lastRetrainWall,
		WindowRows:      make([]DatasetRows, 0, len(names)),
	}
	for i, d := range o.Window.datasets() {
		s.WindowRows = append(s.WindowRows, DatasetRows{Name: names[i], Rows: d.Len()})
	}
	return s
}

// Observe folds the current monitored tick into the sliding window.
func (o *Online) Observe(world *sim.World) {
	o.Window.RecordTick(world)
	for _, d := range o.Window.datasets() {
		tail(d, o.MaxRows)
	}
}

// MaybeRetrain refits the bundle when the tick hits the retrain period and
// the window holds enough data. It reports whether a refit happened.
func (o *Online) MaybeRetrain(tick int) (bool, error) {
	if o.RetrainEvery <= 0 || tick == 0 || tick%o.RetrainEvery != 0 {
		return false, nil
	}
	for _, d := range o.Window.datasets() {
		if d.Len() < 50 {
			return false, nil // not enough fresh evidence yet
		}
	}
	start := time.Now()
	fresh, err := Train(o.Window, o.Train)
	if err != nil {
		return false, fmt.Errorf("predict: online retrain at tick %d: %w", tick, err)
	}
	o.lastRetrainWall = time.Since(start)
	o.lastRetrainTick = tick
	// Publish the fresh bundle for concurrent readers first — fresh is
	// complete and never mutated after this point, so Current callers flip
	// from the old snapshot to the new one atomically.
	o.cur.Store(fresh)
	// Then swap models in place so existing estimators holding o.Bundle
	// (single-goroutine callers like the experiment loops) see the refit.
	o.Bundle.VMCPU = fresh.VMCPU
	o.Bundle.VMMem = fresh.VMMem
	o.Bundle.VMIn = fresh.VMIn
	o.Bundle.VMOut = fresh.VMOut
	o.Bundle.PMCPU = fresh.PMCPU
	o.Bundle.VMRT = fresh.VMRT
	o.Bundle.VMSLA = fresh.VMSLA
	o.Bundle.Reports = fresh.Reports
	o.retrains++
	return true, nil
}

// ShouldRetrain reports whether a refit is due at this tick under the
// learner's period and data floor — MaybeRetrain's precondition, exposed
// so callers that train elsewhere (a background retrainer working on a
// window snapshot) gate their kicks identically.
func (o *Online) ShouldRetrain(tick int) bool {
	if o.RetrainEvery <= 0 || tick == 0 || tick%o.RetrainEvery != 0 {
		return false
	}
	for _, d := range o.Window.datasets() {
		if d.Len() < 50 {
			return false
		}
	}
	return true
}

// Adopt installs an externally trained bundle — a background retrainer's
// result — with the same publication order as MaybeRetrain: the snapshot
// first (fresh must not be mutated after this call), then the in-place
// field swap for single-goroutine holders of o.Bundle. Call it from the
// owner goroutine only.
func (o *Online) Adopt(fresh *Bundle, tick int) {
	o.lastRetrainTick = tick
	o.cur.Store(fresh)
	o.Bundle.VMCPU = fresh.VMCPU
	o.Bundle.VMMem = fresh.VMMem
	o.Bundle.VMIn = fresh.VMIn
	o.Bundle.VMOut = fresh.VMOut
	o.Bundle.PMCPU = fresh.PMCPU
	o.Bundle.VMRT = fresh.VMRT
	o.Bundle.VMSLA = fresh.VMSLA
	o.Bundle.Reports = fresh.Reports
	o.retrains++
}

// datasets lists the harvest's datasets for uniform windowing.
func (h *Harvest) datasets() []*ml.Dataset {
	return []*ml.Dataset{h.VMCPU, h.VMMem, h.VMIn, h.VMOut, h.PMCPU, h.VMRT, h.VMSLA}
}

// tail truncates a dataset to its most recent n rows.
func tail(d *ml.Dataset, n int) {
	if d.Len() <= n {
		return
	}
	cut := d.Len() - n
	d.X = append([][]float64(nil), d.X[cut:]...)
	d.Y = append([]float64(nil), d.Y[cut:]...)
}

// CloneBundle deep-copies a bundle through its serialized form, so the
// copy's models share no state with the original.
func CloneBundle(b *Bundle) (*Bundle, error) {
	data, err := json.Marshal(b)
	if err != nil {
		return nil, err
	}
	var out Bundle
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
