package predict

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/scenario"
)

func TestTailTruncation(t *testing.T) {
	d := ml.NewDataset([]string{"x"})
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, float64(i))
	}
	tail(d, 4)
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Y[0] != 6 || d.Y[3] != 9 {
		t.Fatalf("tail kept wrong rows: %v", d.Y)
	}
	tail(d, 10) // no-op when already short
	if d.Len() != 4 {
		t.Fatal("no-op tail changed dataset")
	}
}

func TestCloneBundleIsIndependent(t *testing.T) {
	b := trainedBundle(t)
	clone, err := CloneBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	l := model.Load{RPS: 30, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01}
	if b.PredictVMResources(l, 0) != clone.PredictVMResources(l, 0) {
		t.Fatal("clone predicts differently")
	}
	// Mutating the clone must not touch the original.
	clone.VMCPU = nil
	if b.VMCPU == nil {
		t.Fatal("clone shares state with original")
	}
}

func TestOnlineObserveAndRetrain(t *testing.T) {
	base := trainedBundle(t)
	o, err := NewOnline(base, DefaultTrainConfig(5), 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Build(scenario.Spec{
		Name: "online-test", Seed: 5,
		DCs: 2, PMsPerDC: 2, VMs: 4, LoadScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := model.Placement{}
	for _, vm := range sc.VMs {
		p[vm.ID] = 0
	}
	if err := sc.World.PlaceInitial(p); err != nil {
		t.Fatal(err)
	}
	retrained := false
	for tick := 0; tick < 160; tick++ {
		sc.World.Step()
		o.Observe(sc.World)
		did, err := o.MaybeRetrain(sc.World.Tick())
		if err != nil {
			t.Fatal(err)
		}
		if did {
			retrained = true
		}
	}
	if !retrained {
		t.Fatal("never retrained in 160 ticks with period 50")
	}
	if o.Retrains() < 1 {
		t.Fatal("retrain counter not incremented")
	}
	// Window stays bounded.
	for _, d := range o.Window.datasets() {
		if d.Len() > 500 {
			t.Fatalf("window overflow: %d rows", d.Len())
		}
	}
	// The live bundle must still predict sensibly after the swap.
	l := model.Load{RPS: 30, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01}
	r := o.Bundle.PredictVMResources(l, 0)
	if !r.NonNegative() || r.CPUPct == 0 {
		t.Fatalf("retrained bundle broken: %v", r)
	}
}

func TestOnlineSkipsWhenDataThin(t *testing.T) {
	base := trainedBundle(t)
	o, err := NewOnline(base, DefaultTrainConfig(5), 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	// No observations at all: a period boundary must not retrain.
	did, err := o.MaybeRetrain(10)
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Fatal("retrained with empty window")
	}
	// Non-boundary ticks never retrain.
	if did, _ := o.MaybeRetrain(11); did {
		t.Fatal("retrained off-period")
	}
}

// TestOnlineStats pins the freshness snapshot: before any refit it
// reports zero retrains (tick -1), after a refit the tick, a non-zero
// wall time and every dataset's window occupancy.
func TestOnlineStats(t *testing.T) {
	base := trainedBundle(t)
	o, err := NewOnline(base, DefaultTrainConfig(5), 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Retrains != 0 || st.LastRetrainTick != -1 || st.LastRetrainWall != 0 {
		t.Fatalf("fresh learner reports stale stats: %+v", st)
	}
	if len(st.WindowRows) != 7 {
		t.Fatalf("want 7 datasets, got %d", len(st.WindowRows))
	}
	sc, err := scenario.Build(scenario.Spec{
		Name: "online-stats", Seed: 5,
		DCs: 2, PMsPerDC: 2, VMs: 4, LoadScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := model.Placement{}
	for _, vm := range sc.VMs {
		p[vm.ID] = 0
	}
	if err := sc.World.PlaceInitial(p); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 110; tick++ {
		sc.World.Step()
		o.Observe(sc.World)
		if _, err := o.MaybeRetrain(sc.World.Tick()); err != nil {
			t.Fatal(err)
		}
	}
	st = o.Stats()
	if st.Retrains != o.Retrains() || st.Retrains < 1 {
		t.Fatalf("retrain count mismatch: %+v vs %d", st, o.Retrains())
	}
	if st.LastRetrainTick != 100 {
		t.Fatalf("last retrain tick %d, want 100", st.LastRetrainTick)
	}
	if st.LastRetrainWall <= 0 {
		t.Fatal("retrain wall time not recorded")
	}
	names := map[string]bool{}
	for _, d := range st.WindowRows {
		names[d.Name] = true
		if d.Rows == 0 {
			t.Fatalf("dataset %s reports an empty window after 110 observed ticks", d.Name)
		}
	}
	for _, want := range []string{"VM CPU", "VM MEM", "VM IN", "VM OUT", "PM CPU", "VM RT", "VM SLA"} {
		if !names[want] {
			t.Fatalf("dataset %q missing from stats: %+v", want, st.WindowRows)
		}
	}
}
