package predict

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/scenario"
)

// TestOnlineCurrentRace pins the retrain-vs-predict concurrency contract:
// reader goroutines hammer Current() and run predictions against the
// snapshot while the owner goroutine loops Observe + MaybeRetrain.
// Run under -race this proves the published snapshot is never the struct
// being mutated in place. Readers also watch the snapshot pointer change,
// so the test fails if retrains stop publishing.
func TestOnlineCurrentRace(t *testing.T) {
	base := trainedBundle(t)
	// Short period so many retrains land inside the hammer window.
	o, err := NewOnline(base, DefaultTrainConfig(5), 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Build(scenario.Spec{
		Name: "online-race", Seed: 5,
		DCs: 2, PMsPerDC: 2, VMs: 4, LoadScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := model.Placement{}
	for _, vm := range sc.VMs {
		p[vm.ID] = 0
	}
	if err := sc.World.PlaceInitial(p); err != nil {
		t.Fatal(err)
	}
	// Warm the window past the 50-row retrain floor before racing, so the
	// owner loop below retrains on (nearly) every period boundary.
	for tick := 0; tick < 60; tick++ {
		sc.World.Step()
		o.Observe(sc.World)
	}

	stop := make(chan struct{})
	var swapsSeen, iters atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := model.Load{RPS: 30, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01}
			last := o.Current()
			for {
				select {
				case <-stop:
					return
				default:
				}
				iters.Add(1)
				b := o.Current()
				if b != last {
					swapsSeen.Add(1)
					last = b
				}
				r := b.PredictVMResources(l, 0)
				if !r.NonNegative() {
					t.Error("snapshot predicted negative resources")
					return
				}
				b.PredictSLA(model.SLATerms{RT0: 0.2, Alpha: 10},
					l, r.CPUPct, 0, 0, 5)
			}
		}()
	}

	// Keep retraining until a reader has demonstrably observed a swap:
	// on a single-P machine the reader goroutines may not be scheduled
	// until several retrains have already landed, and a reader that
	// starts late captures the then-latest snapshot as its baseline —
	// only a retrain published *after* that baseline can register as a
	// swap. Five retrains is the floor; the deadline is the flake guard.
	retrains := 0
	deadline := time.Now().Add(20 * time.Second)
	for tick := 0; (retrains < 5 || swapsSeen.Load() == 0) && time.Now().Before(deadline); tick++ {
		sc.World.Step()
		o.Observe(sc.World)
		did, err := o.MaybeRetrain(sc.World.Tick())
		if err != nil {
			t.Fatal(err)
		}
		if did {
			retrains++
		}
	}
	close(stop)
	wg.Wait()
	if retrains < 5 {
		t.Fatalf("only %d retrains fired while racing, want 5", retrains)
	}
	if swapsSeen.Load() == 0 {
		t.Fatalf("readers never observed a snapshot swap across %d retrains (%d reader iterations)",
			retrains, iters.Load())
	}
	// The legacy in-place contract still holds for the owner goroutine:
	// o.Bundle and the published snapshot agree after the dust settles.
	l := model.Load{RPS: 30, BytesInReq: 500, BytesOutRq: 20000, CPUTimeReq: 0.01}
	if o.Bundle.PredictVMResources(l, 0) != o.Current().PredictVMResources(l, 0) {
		t.Fatal("o.Bundle and Current() diverged after retrain")
	}
}
