package scenario

import (
	"testing"

	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/network"
)

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{DCs: 0, PMsPerDC: 1, VMs: 1},
		{DCs: 7, PMsPerDC: 1, VMs: 1},
		{DCs: 2, PMsPerDC: 1, VMs: 0},
		{DCs: 2, PMsPerDC: 0, VMs: 1},
		{DCs: 2, PMsPerDC: 1, VMs: 2, Rotating: true},
		{DCs: 2, PMsPerDC: 1, VMs: 1, Rotating: true, NoiseSD: 0.2},
		{DCs: 2, PMsPerDC: 1, VMs: 1, Rotating: true, FlashCrowd: true},
		{DCs: 2, PMsPerDC: 1, VMs: 1, Pricing: Pricing{Kind: "nonsense"}},
		{DCs: 2, PMsPerDC: 1, VMs: 1, Pricing: Pricing{Kind: "solar", Base: []float64{1}}},
		{DCs: 2, VMs: 1, PMClasses: []PMClass{{PerDC: 0, Capacity: AtomCapacity}}},
	}
	for i, spec := range bad {
		if _, err := Build(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestEveryPresetBuildsAndSteps(t *testing.T) {
	for _, name := range Names() {
		sc, err := Build(MustPreset(name, 42))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := sc.World.Step()
		if st.Tick != 0 {
			t.Fatalf("%s: first tick = %d", name, st.Tick)
		}
		if st.AvgSLA < 0 || st.AvgSLA > 1 {
			t.Fatalf("%s: AvgSLA = %v", name, st.AvgSLA)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("no-such-scenario", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestHeavyPresetsResolvableButNotEnumerated pins the heavy-preset
// contract: xlarge resolves by name (so mdcsim/sweep can address it
// explicitly) while Names() — the "run everything" list — excludes it.
func TestHeavyPresetsResolvableButNotEnumerated(t *testing.T) {
	for _, heavy := range []string{XLargeFleet, HyperscaleFleet} {
		if _, err := Preset(heavy, 1); err != nil {
			t.Fatalf("heavy preset not resolvable: %v", err)
		}
		for _, name := range Names() {
			if name == heavy {
				t.Fatalf("heavy preset %q leaked into Names()", heavy)
			}
		}
	}
	if hn := HeavyNames(); len(hn) != 2 || hn[0] != HyperscaleFleet || hn[1] != XLargeFleet {
		t.Fatalf("HeavyNames = %v", hn)
	}
}

// TestXLargeBuildsOnGlobalTopology proves the six-DC production fleet
// assembles: 402 hosts across six DCs, 1000 VMs, six client locations,
// and a steppable world.
func TestXLargeBuildsOnGlobalTopology(t *testing.T) {
	sc, err := Build(MustPreset(XLargeFleet, 42))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Topology.NumDCs(); got != 6 {
		t.Fatalf("topology has %d DCs, want 6", got)
	}
	if got := len(sc.Inventory.PMs()); got != 402 {
		t.Fatalf("fleet has %d PMs, want 402", got)
	}
	if got := len(sc.VMs); got != 1000 {
		t.Fatalf("fleet has %d VMs, want 1000", got)
	}
	if got := sc.Generator.Sources(); got != 6 {
		t.Fatalf("generator has %d sources, want 6", got)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	st := sc.World.Step()
	if st.AvgSLA < 0 || st.AvgSLA > 1 {
		t.Fatalf("AvgSLA = %v", st.AvgSLA)
	}
}

// TestGlobalTopologyExtendsPaperTopology pins the prefix property the
// 4-DC presets rely on: the first four DCs of the global topology are
// bit-identical to the paper's Table II system.
func TestGlobalTopologyExtendsPaperTopology(t *testing.T) {
	paper := network.PaperTopology()
	global := network.GlobalTopology()
	if global.NumDCs() != 6 {
		t.Fatalf("global topology has %d DCs", global.NumDCs())
	}
	for a := 0; a < paper.NumDCs(); a++ {
		if paper.Name(model.DCID(a)) != global.Name(model.DCID(a)) {
			t.Fatalf("DC %d name differs", a)
		}
		if paper.EnergyPrice(model.DCID(a)) != global.EnergyPrice(model.DCID(a)) {
			t.Fatalf("DC %d price differs", a)
		}
		for b := 0; b < paper.NumDCs(); b++ {
			if paper.LatencyDCDC(model.DCID(a), model.DCID(b)) != global.LatencyDCDC(model.DCID(a), model.DCID(b)) {
				t.Fatalf("latency [%d][%d] differs", a, b)
			}
		}
	}
}

func TestHeteroFleetShape(t *testing.T) {
	sc, err := Build(MustPreset(HeteroFleet, 7))
	if err != nil {
		t.Fatal(err)
	}
	// 2 DCs x (2 Atom + 1 big) = 6 hosts, with asymmetric capacities.
	pms := sc.Inventory.PMs()
	if len(pms) != 6 {
		t.Fatalf("hetero fleet has %d PMs", len(pms))
	}
	var big, small int
	for _, pm := range pms {
		switch pm.Capacity.CPUPct {
		case AtomCapacity.CPUPct:
			small++
		case 2 * AtomCapacity.CPUPct:
			big++
		default:
			t.Fatalf("unexpected capacity %v", pm.Capacity)
		}
	}
	if small != 4 || big != 2 {
		t.Fatalf("fleet mix = %d small, %d big", small, big)
	}
}

func TestGridSpikePricing(t *testing.T) {
	sc, err := Build(MustPreset(GridSpike, 7))
	if err != nil {
		t.Fatal(err)
	}
	base := sc.Topology.EnergyPrice(0)
	before := sc.Topology.EnergyPriceAt(0, 0)
	during := sc.Topology.EnergyPriceAt(0, 10*60)
	after := sc.Topology.EnergyPriceAt(0, 16*60)
	if before != base || after != base {
		t.Fatalf("price off-spike %v/%v, want base %v", before, after, base)
	}
	if during != 4*base {
		t.Fatalf("price during spike %v, want %v", during, 4*base)
	}
	// Other DCs stay flat through the spike.
	if got := sc.Topology.EnergyPriceAt(1, 10*60); got != sc.Topology.EnergyPrice(1) {
		t.Fatalf("spike leaked to DC 1: %v", got)
	}
}

func TestSolarPricingDips(t *testing.T) {
	sc, err := Build(MustPreset(GreenSolar, 7))
	if err != nil {
		t.Fatal(err)
	}
	base := sc.Spec.Pricing.Base
	// At some tick of the day, each DC must enjoy a deep discount.
	for dc := 0; dc < 4; dc++ {
		min := base[dc]
		for tick := 0; tick < model.TicksPerDay; tick += 10 {
			if p := sc.Topology.EnergyPriceAt(model.DCID(dc), tick); p < min {
				min = p
			}
		}
		if min > base[dc]*0.2 {
			t.Fatalf("DC %d never saw solar discount: min %v of base %v", dc, min, base[dc])
		}
	}
}

func TestHomePlacementAndPileOn(t *testing.T) {
	sc, err := Build(Spec{Name: "t", Seed: 1, DCs: 4, PMsPerDC: 1, VMs: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := sc.HomePlacement()
	for _, vm := range sc.VMs {
		if sc.Inventory.DCOf(p[vm.ID]) != vm.HomeDC {
			t.Fatalf("VM %v placed at DC %v, home %v", vm.ID, sc.Inventory.DCOf(p[vm.ID]), vm.HomeDC)
		}
	}
	pile := sc.PileOn(2)
	for _, vm := range sc.VMs {
		if pile[vm.ID] != 2 {
			t.Fatalf("PileOn missed VM %v", vm.ID)
		}
	}
}

func TestVMScaleOverride(t *testing.T) {
	spec := Spec{
		Name: "scaled", Seed: 3, DCs: 2, PMsPerDC: 1, VMs: 2,
		VMScale: map[model.VMID][]float64{
			0: {4, 4, 4, 4},
			1: {0.1, 0.1, 0.1, 0.1},
		},
	}
	sc, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Same service class would be needed for a strict comparison; instead
	// assert the scaled VM carries far more load than its tiny peer at a
	// busy hour relative to class base rates.
	heavy := sc.Generator.LoadsFor(0, 12*60).Total().RPS / sc.Generator.Class(0).BaseRPS
	light := sc.Generator.LoadsFor(1, 12*60).Total().RPS / sc.Generator.Class(1).BaseRPS
	if heavy <= light*10 {
		t.Fatalf("VMScale ineffective: heavy %v vs light %v", heavy, light)
	}
}

// TestChurnPresetsBuild checks every churn preset produces a script, a
// roster the generator can serve, and engine slot headroom.
func TestChurnPresetsBuild(t *testing.T) {
	for _, name := range []string{ChurnPoisson, ChurnDiurnal, ChurnStorm} {
		sc, err := Build(MustPreset(name, 42))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Script == nil || len(sc.Script.Arrivals) == 0 {
			t.Fatalf("%s: no churn script", name)
		}
		if sc.World.VMSlotCap() <= sc.World.NumVMs() {
			t.Fatalf("%s: no slot headroom (%d of %d)", name, sc.World.NumVMs(), sc.World.VMSlotCap())
		}
		// Arrival IDs continue above the static population, and the
		// generator serves load for them.
		first := sc.Script.Arrivals[0]
		if int(first.Spec.ID) < len(sc.VMs) {
			t.Fatalf("%s: arrival ID %v collides with the static range", name, first.Spec.ID)
		}
		lv := sc.Generator.LoadsFor(first.Spec.ID, first.ArriveTick+1)
		if lv.Total().RPS <= 0 {
			t.Fatalf("%s: generator serves no load for arrival %v", name, first.Spec.ID)
		}
	}
}

// TestChurnSpecValidation rejects churn combined with incompatible knobs.
func TestChurnSpecValidation(t *testing.T) {
	churn := MustPreset(ChurnPoisson, 1).Churn
	bad := []Spec{
		{DCs: 4, PMsPerDC: 1, VMs: 1, Rotating: true, Churn: churn},
		{DCs: 2, PMsPerDC: 1, VMs: 1, Churn: churn,
			VMScale: map[model.VMID][]float64{0: {1, 1}}},
		{DCs: 2, PMsPerDC: 1, VMs: 1, Churn: &lifecycle.ProcessSpec{Kind: "bogus"}},
	}
	for i, spec := range bad {
		if _, err := Build(spec); err == nil {
			t.Errorf("churn spec %d accepted: %+v", i, spec)
		}
	}
}

// TestPresetDeepCopiesChurn pins the preset-isolation contract for the
// churn pointer: mutating a returned spec must not corrupt the table.
func TestPresetDeepCopiesChurn(t *testing.T) {
	a := MustPreset(ChurnStorm, 1)
	a.Churn.WaveSize = 9999
	b := MustPreset(ChurnStorm, 1)
	if b.Churn.WaveSize == 9999 {
		t.Fatal("preset table shares the Churn spec with callers")
	}
}
