// Package scenario is the shared world-building layer: a declarative Spec
// describing a multi-DC fleet (DC count, PM/VM mix, workload shape, price
// profile) plus named presets, so every experiment, command and example
// constructs its world through one Build call and a new scenario is a spec
// literal, not a new file.
//
// The package sits above sim (it assembles Inventory + Topology + Workload
// into a World) and below experiments/cmd, which consume it.
package scenario

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AtomCapacity is the per-PM capacity of the paper's Atom hosts: 4 cores,
// 4 GB of RAM and a 1 Gbps NIC.
var AtomCapacity = model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 1000}

// PMClass describes one group of identical physical machines per DC; a
// spec with several classes builds a heterogeneous fleet.
type PMClass struct {
	PerDC    int
	Capacity model.Resources
	Cores    int
}

// PriceSpike is a transient electricity-price excursion at one DC — a
// grid event the scheduler should dodge by de-locating load.
type PriceSpike struct {
	DC        model.DCID
	StartTick int
	EndTick   int     // first tick after the spike
	Factor    float64 // price multiplier during the spike
}

// Pricing selects the electricity-price profile of the scenario.
type Pricing struct {
	// Kind is "" or "flat" (static Table II prices), "solar" (SolarPricing
	// dips while each DC's sun shines) or "spike" (transient excursions).
	Kind string
	// Base overrides the per-DC base prices (nil keeps Table II).
	Base []float64
	// SolarDip is the maximal price reduction at local solar noon (solar).
	SolarDip float64
	// Spikes are the excursions of a "spike" profile.
	Spikes []PriceSpike
}

// Spec declaratively describes a runnable scenario. The zero values of
// most knobs mean "paper defaults"; Build validates the rest.
type Spec struct {
	// Name labels the scenario in reports (presets fill it in).
	Name string
	Seed uint64

	// Fleet shape. DCs draws 1..4 datacenters from the paper topology;
	// PMsPerDC builds that many Atom hosts per DC unless PMClasses is set.
	DCs       int
	PMsPerDC  int
	PMClasses []PMClass
	VMs       int

	// Workload shape.
	LoadScale  float64 // multiplies every request rate (0 = 1.0)
	NoiseSD    float64 // per-tick multiplicative workload noise
	FlashCrowd bool    // inject the Figure 6 minute-70..90 crowd
	// HomeBias is the share of each VM's load originating at its home
	// location (0 = generator default of 0.6; intra-DC experiments use a
	// high bias so clients are local).
	HomeBias float64
	// AllHomesAt homes every VM in one DC instead of round-robin when
	// non-nil (the §V-C de-location setup, where a single DC carries all
	// the load).
	AllHomesAt *model.DCID
	// UniformClass assigns every VM the same service class instead of
	// cycling through the built-in mix.
	UniformClass *trace.ServiceClass
	// Rotating replaces the diurnal per-home workload with the Figure 5
	// follow-the-load shape: a single VM whose dominant client region
	// rotates around the world. Requires VMs == 1.
	Rotating bool
	// VMScale overrides the uniform LoadScale with per-(VM, source) rows
	// (the harvest runs spread VMs across load regimes this way).
	VMScale map[model.VMID][]float64

	// Pricing selects the electricity-price profile.
	Pricing Pricing

	// Churn enables the dynamic workload lifecycle: the process expands
	// at Build time into a deterministic script of VM arrivals and
	// departures (see internal/lifecycle), the workload generator learns
	// the whole roster up front, and the engine reserves slots for the
	// script's peak concurrency. nil keeps the classic fixed population.
	Churn *lifecycle.ProcessSpec

	// Faults enables the fault-injection layer: the spec expands at Build
	// time into a deterministic script of host crashes/repairs, rolling
	// maintenance drains and DC outages (see internal/lifecycle). nil
	// keeps the classic immortal fleet.
	Faults *lifecycle.FaultSpec

	// ExtraVMSlots reserves engine slots for dynamically admitted VMs on
	// top of what a churn script's peak concurrency already claims. Tests
	// and tools that drive a hand-written lifecycle script (no Churn
	// process) need this to admit anything at all.
	ExtraVMSlots int

	// TickWorkers sets the engine's per-DC parallel tick resolution width
	// (sim.Config.TickWorkers). Ticks are byte-identical at any worker
	// count; <= 1 runs serially (the allocation-free path). Heavy presets
	// set this so fleet-scale ticks use the cores they are given.
	TickWorkers int

	// Params overrides the world's ground-truth constants when non-nil.
	Params *sim.Params

	// WrapWorkload, when non-nil, wraps the built trace generator before
	// the world is assembled, letting a caller layer extra load sources on
	// top of the scripted shape (serve mode overlays per-VM load reported
	// by clients this way). The wrapper must preserve the Workload
	// determinism contract: same tick + roster in, same vectors out.
	WrapWorkload func(sim.Workload) sim.Workload
}

// Scenario bundles the pieces of a ready-to-run experiment setup.
type Scenario struct {
	Spec      Spec
	World     *sim.World
	Inventory *cluster.Inventory
	Topology  *network.Topology
	Generator *trace.Generator
	// VMs is the static population (the Inventory's VM set); scripted
	// churn arrivals are not included.
	VMs []model.VMSpec
	// Script is the generated arrival schedule of a churn scenario (nil
	// for fixed populations). Runners feed it through lifecycle.NewRunner
	// into core.ManagerConfig.Lifecycle.
	Script *lifecycle.Script
	// Faults is the generated failure/maintenance schedule (nil for
	// immortal fleets). Runners feed it through lifecycle.NewFaultRunner
	// into core.ManagerConfig.Faults.
	Faults *lifecycle.FaultScript
}

// DefaultVMSpecs builds n VM specs in the paper's style: 4 GB images,
// 256 MB memory floor, EC2-like pricing, homes spread round-robin over dcs.
func DefaultVMSpecs(n, dcs int) []model.VMSpec {
	specs := make([]model.VMSpec, n)
	for i := range specs {
		specs[i] = model.VMSpec{
			ID:          model.VMID(i),
			Name:        fmt.Sprintf("web%d", i),
			ImageSizeGB: 4,
			BaseMemMB:   256,
			MaxMemMB:    1024,
			Terms:       model.DefaultSLATerms,
			PriceEURh:   0.17,
			HomeDC:      model.DCID(i % dcs),
		}
	}
	return specs
}

// Build assembles inventory, topology, workload and world for a spec.
// Specs with up to four DCs run on the paper topology (Brisbane,
// Bangaluru, Barcelona, Boston) exactly as before; five or six DCs switch
// to the production-scale GlobalTopology, whose first four sites are
// bit-identical to the paper's.
func Build(spec Spec) (*Scenario, error) {
	if spec.DCs <= 0 || spec.DCs > 6 {
		return nil, fmt.Errorf("scenario: DCs must be 1..6, got %d", spec.DCs)
	}
	if spec.VMs <= 0 {
		return nil, fmt.Errorf("scenario: need at least one VM")
	}
	if spec.Rotating {
		if spec.VMs != 1 {
			return nil, fmt.Errorf("scenario: Rotating requires exactly one VM, got %d", spec.VMs)
		}
		// The rotating workload has its own fixed shape; reject knobs it
		// would silently ignore rather than let overrides go unnoticed.
		if spec.FlashCrowd || spec.UniformClass != nil || spec.VMScale != nil ||
			spec.NoiseSD != 0 || spec.HomeBias != 0 ||
			(spec.LoadScale != 0 && spec.LoadScale != 1) {
			return nil, fmt.Errorf("scenario: Rotating is incompatible with workload-shape overrides (LoadScale/NoiseSD/HomeBias/FlashCrowd/UniformClass/VMScale)")
		}
	}
	if spec.Churn != nil && (spec.Rotating || spec.VMScale != nil) {
		return nil, fmt.Errorf("scenario: Churn is incompatible with Rotating and VMScale")
	}
	classes := spec.PMClasses
	if len(classes) == 0 {
		if spec.PMsPerDC <= 0 {
			return nil, fmt.Errorf("scenario: need at least one PM per DC")
		}
		classes = []PMClass{{PerDC: spec.PMsPerDC, Capacity: AtomCapacity, Cores: 4}}
	}
	for _, c := range classes {
		if c.PerDC <= 0 {
			return nil, fmt.Errorf("scenario: PM class with non-positive PerDC")
		}
	}
	if spec.LoadScale <= 0 {
		spec.LoadScale = 1
	}

	top := network.PaperTopology()
	tzOffsets := trace.PaperTZOffsets()
	if spec.DCs > 4 {
		top = network.GlobalTopology()
		tzOffsets = trace.GlobalTZOffsets()
	}
	// One client location per topology DC; every downstream size (load
	// vectors, latency tables) follows the topology, so the 4-DC presets
	// are byte-identical to the paper-topology era.
	sources := top.NumDCs()
	if err := applyPricing(top, spec.Pricing, tzOffsets); err != nil {
		return nil, err
	}

	var pms []model.PMSpec
	id := 0
	for dc := 0; dc < spec.DCs; dc++ {
		for _, c := range classes {
			for k := 0; k < c.PerDC; k++ {
				pms = append(pms, model.PMSpec{
					ID: model.PMID(id), DC: model.DCID(dc),
					Capacity: c.Capacity, Cores: c.Cores,
				})
				id++
			}
		}
	}
	vms := DefaultVMSpecs(spec.VMs, spec.DCs)
	if spec.AllHomesAt != nil {
		for i := range vms {
			vms[i].HomeDC = *spec.AllHomesAt
		}
	}
	inv, err := cluster.NewInventory(pms, vms)
	if err != nil {
		return nil, err
	}

	// Churn: expand the arrival process into its deterministic script.
	// The generator learns the full roster (static + every scripted
	// arrival) up front so any VM produces load the moment it is
	// admitted; only the engine's active set decides who is asked.
	var script *lifecycle.Script
	genVMs := vms
	if spec.Churn != nil {
		script, err = lifecycle.Generate(spec.Seed, *spec.Churn, model.VMID(spec.VMs), spec.DCs)
		if err != nil {
			return nil, err
		}
		genVMs = append(append([]model.VMSpec(nil), vms...), script.VMSpecs()...)
	}

	// Faults: expand the failure/maintenance spec into its deterministic
	// script against the concrete fleet (host IDs, DC membership).
	var faults *lifecycle.FaultScript
	if spec.Faults != nil {
		faults, err = lifecycle.GenerateFaults(spec.Seed, *spec.Faults, pms, spec.DCs)
		if err != nil {
			return nil, err
		}
	}

	var cfg trace.Config
	if spec.Rotating {
		cfg = trace.RotatingConfig(spec.Seed, vms[0], sources, tzOffsets)
	} else {
		scale := spec.VMScale
		if scale == nil {
			scale = make(map[model.VMID][]float64, len(genVMs))
			for _, vm := range vms {
				row := make([]float64, sources)
				for i := range row {
					row[i] = spec.LoadScale
				}
				scale[vm.ID] = row
			}
			if script != nil {
				for i := range script.Arrivals {
					row := make([]float64, sources)
					for k := range row {
						row[k] = script.LoadScale
					}
					scale[script.Arrivals[i].Spec.ID] = row
				}
			}
		}
		cfg = trace.Config{
			Seed:      spec.Seed,
			Sources:   sources,
			VMs:       genVMs,
			TZOffsetH: tzOffsets,
			Scale:     scale,
			NoiseSD:   spec.NoiseSD,
			HomeBias:  spec.HomeBias,
		}
		if spec.UniformClass != nil {
			cfg.ClassOf = make(map[model.VMID]trace.ServiceClass, len(vms))
			for _, vm := range vms {
				cfg.ClassOf[vm.ID] = *spec.UniformClass
			}
		}
		if script != nil {
			// Arrivals always carry their scripted service class.
			if cfg.ClassOf == nil {
				cfg.ClassOf = make(map[model.VMID]trace.ServiceClass, len(script.Arrivals))
			}
			for i := range script.Arrivals {
				cfg.ClassOf[script.Arrivals[i].Spec.ID] = script.Arrivals[i].Class
			}
		}
		if spec.FlashCrowd {
			// The paper's crowd hits in minutes 70-90 and "clearly exceeds
			// the capacity of the system".
			for _, vm := range vms {
				cfg.Crowds = append(cfg.Crowds, trace.FlashCrowd{
					StartTick: 70, EndTick: 90, Magnitude: 6,
					Source: model.LocationID(int(vm.HomeDC)), VM: vm.ID,
				})
			}
		}
	}
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	var workload sim.Workload = gen
	if spec.WrapWorkload != nil {
		workload = spec.WrapWorkload(gen)
	}
	simCfg := sim.Config{
		Inventory: inv,
		Topology:  top,
		Generator: workload,
		Seed:      spec.Seed,
	}
	if script != nil {
		// Reserve slots for the script's peak concurrency, padded by the
		// admission deferral window: AdmitVM can then only fail under
		// pathological deferral pile-ups, which the controller absorbs as
		// capacity rejections.
		simCfg.ExtraVMSlots = script.SlotBound(lifecycle.DefaultMaxDeferTicks)
	}
	simCfg.ExtraVMSlots += spec.ExtraVMSlots
	simCfg.TickWorkers = spec.TickWorkers
	if spec.Params != nil {
		simCfg.Params = *spec.Params
	}
	world, err := sim.NewWorld(simCfg)
	if err != nil {
		return nil, err
	}
	return &Scenario{Spec: spec, World: world, Inventory: inv, Topology: top, Generator: gen, VMs: vms, Script: script, Faults: faults}, nil
}

// applyPricing installs the requested price schedule on the topology.
func applyPricing(top *network.Topology, p Pricing, tzOffsets []float64) error {
	base := p.Base
	if base == nil {
		base = make([]float64, top.NumDCs())
		for dc := range base {
			base[dc] = top.EnergyPrice(model.DCID(dc))
		}
	} else if len(base) != top.NumDCs() {
		return fmt.Errorf("scenario: pricing has %d base prices, topology has %d DCs",
			len(base), top.NumDCs())
	}
	switch p.Kind {
	case "", "flat":
		if p.Base != nil {
			top.SetPriceSchedule(func(dc model.DCID, tick int) float64 { return base[dc] })
		}
	case "solar":
		dip := p.SolarDip
		if dip <= 0 {
			dip = 0.95
		}
		top.SetPriceSchedule(network.SolarPricing(base, tzOffsets, dip))
	case "spike":
		spikes := p.Spikes
		top.SetPriceSchedule(func(dc model.DCID, tick int) float64 {
			price := base[dc]
			for _, s := range spikes {
				if s.DC == dc && tick >= s.StartTick && tick < s.EndTick && s.Factor > 0 {
					price *= s.Factor
				}
			}
			return price
		})
	default:
		return fmt.Errorf("scenario: unknown pricing kind %q", p.Kind)
	}
	return nil
}

// HomePlacement returns the placement that pins every VM to a PM of its
// home DC — the static baseline of Figure 7 / Table III.
func (s *Scenario) HomePlacement() model.Placement {
	p := make(model.Placement, len(s.VMs))
	for _, vm := range s.VMs {
		pms := s.Inventory.PMsOfDC(vm.HomeDC)
		if len(pms) == 0 {
			p[vm.ID] = model.NoPM
			continue
		}
		p[vm.ID] = pms[int(vm.ID)%len(pms)]
	}
	return p
}

// PileOn returns the placement that stacks every VM onto one host — the
// degenerate starting point several experiments dig themselves out of.
func (s *Scenario) PileOn(pm model.PMID) model.Placement {
	p := make(model.Placement, len(s.VMs))
	for _, vm := range s.VMs {
		p[vm.ID] = pm
	}
	return p
}
