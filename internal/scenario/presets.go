package scenario

import (
	"fmt"
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/model"
)

// Preset names. Every experiment (and cmd/mdcsim -scenario) builds its
// world from one of these specs; new studies start from a preset and
// override fields, or add a spec literal here.
const (
	// IntraDC is the Figure 4 / heuristics setup: one DC, four Atom
	// hosts, five web-services at 2.4x load with local clients.
	IntraDC = "intra-dc"
	// FollowLoad is the Figure 5 setup: one VM, four single-host DCs,
	// a client base that rotates around the world.
	FollowLoad = "follow-load"
	// FlashCrowd is the Figure 6 setup: four single-host DCs, five VMs,
	// differently scaled regions and the minute-70..90 crowd.
	FlashCrowd = "flash-crowd"
	// MultiDC is the Figure 7 / Table III setup: four single-host DCs,
	// five VMs at nominal load, globally spread clients.
	MultiDC = "multi-dc"
	// Delocation is the §V-C benefit-of-de-locating setup: all load homed
	// in DC 0 beyond its capacity, three remote DCs standing by.
	Delocation = "delocation"
	// GreenSolar is the follow-the-sun extension: solar-discounted energy
	// prices rotating with the daylight.
	GreenSolar = "green-solar"
	// OnlineShift is the online-learning setup: an intra-DC fleet that a
	// mid-run software update silently makes more CPU-expensive.
	OnlineShift = "online-shift"
	// Harvest is the predictor-training fleet: six VMs over eight hosts
	// in four DCs, load spread across regimes by the harvester.
	Harvest = "harvest"
	// Hierarchy is the two-layer-vs-flat ablation base; experiments scale
	// VMs and PMsPerDC up from here.
	Hierarchy = "hierarchy"
	// HeteroFleet is a heterogeneous fleet no paper experiment covers:
	// each DC mixes Atom hosts with one double-size host, so schedulers
	// face asymmetric bins.
	HeteroFleet = "hetero-fleet"
	// GridSpike is a grid-event scenario no paper experiment covers: the
	// multi-DC fleet under a 6-hour 4x electricity-price spike at DC 0.
	GridSpike = "price-spike"
	// XLargeFleet is the production-scale stress preset: ~1000 VMs over
	// 402 hosts in six DCs (the GlobalTopology). It is a *heavy* preset:
	// addressable by name through Preset/MustPreset (and therefore
	// `mdcsim -scenario xlarge` and explicit sweep lists) but excluded
	// from Names(), so "all"-preset sweeps and parity suites stay at
	// interactive cost.
	XLargeFleet = "xlarge"
	// HyperscaleFleet is the fleet-scale stress preset: 20000 VMs over
	// 5100 hosts in six DCs. Like xlarge it is *heavy* — resolvable by
	// name, excluded from Names() — and it is the home of the PR 8
	// machinery: candidate-pruned scheduling rounds and per-DC sharded
	// engine ticks (Spec.TickWorkers) are what make it tractable.
	HyperscaleFleet = "hyperscale"
	// ChurnPoisson is the steady-churn scenario: a multi-DC fleet whose
	// VM population turns over continuously — independent Poisson
	// sign-ups with ~3-hour exponential lifetimes riding on a small
	// static base. No paper experiment covers a changing VM set.
	ChurnPoisson = "churn-poisson"
	// ChurnDiurnal is the sign-up-ramp scenario: arrivals follow the day
	// curve (peak at 15:00 UTC), so admission pressure and workload peak
	// together.
	ChurnDiurnal = "churn-diurnal"
	// ChurnStorm is the arrival-storm scenario: waves of short-lived
	// batch VMs slam the fleet every two hours, the stress test for the
	// admission controller's deferral queue.
	ChurnStorm = "churn-storm"
	// FailSparse is the uncorrelated-failure scenario: independent host
	// crashes (exponential MTTF/MTTR) under steady Poisson churn, so
	// fault-evicted VMs compete with fresh arrivals for capacity.
	FailSparse = "fail-sparse"
	// FailAZOutage is the correlated-failure scenario: DC 0 drops out
	// whole for two hours mid-run, the degraded-mode and mass-re-home
	// stress test.
	FailAZOutage = "fail-az-outage"
	// MaintRolling is the planned-maintenance scenario: a rolling drain
	// wave over every host, each given three full scheduling rounds to be
	// migrated empty before its takedown.
	MaintRolling = "maint-rolling"
	// ServeBase is the placement-service scenario (`mdcsim serve`): a
	// quiet multi-DC fleet with no scripted churn — every VM beyond the
	// small static base arrives over the service's HTTP intake — and slot
	// headroom reserved for those dynamic admissions.
	ServeBase = "serve-base"
)

// presets maps names to spec literals. Seeds are zero: callers set them.
var presets = map[string]Spec{
	IntraDC: {
		Name: IntraDC,
		DCs:  1, PMsPerDC: 4, VMs: 5,
		LoadScale: 2.4, NoiseSD: 0.25, HomeBias: 0.97,
	},
	FollowLoad: {
		Name: FollowLoad,
		DCs:  4, PMsPerDC: 1, VMs: 1,
		Rotating: true,
	},
	FlashCrowd: {
		Name: FlashCrowd,
		DCs:  4, PMsPerDC: 1, VMs: 5,
		LoadScale: 1.8, NoiseSD: 0.25, FlashCrowd: true,
	},
	MultiDC: {
		Name: MultiDC,
		DCs:  4, PMsPerDC: 1, VMs: 5,
		LoadScale: 1.0, NoiseSD: 0.2, HomeBias: 0.5,
	},
	Delocation: {
		Name: Delocation,
		DCs:  4, PMsPerDC: 1, VMs: 5,
		LoadScale: 2.1, NoiseSD: 0.2, HomeBias: 0.97,
		AllHomesAt: dcPtr(0),
	},
	GreenSolar: {
		Name: GreenSolar,
		DCs:  4, PMsPerDC: 1, VMs: 5,
		LoadScale: 0.9, NoiseSD: 0.2, HomeBias: 0.3,
		Pricing: Pricing{
			Kind:     "solar",
			Base:     []float64{0.1314, 0.1218, 0.1513, 0.1120},
			SolarDip: 0.95,
		},
	},
	OnlineShift: {
		Name: OnlineShift,
		DCs:  1, PMsPerDC: 4, VMs: 5,
		LoadScale: 1.6, NoiseSD: 0.2, HomeBias: 0.97,
	},
	Harvest: {
		Name: Harvest,
		DCs:  4, PMsPerDC: 2, VMs: 6,
		LoadScale: 2.5, NoiseSD: 0.15,
	},
	Hierarchy: {
		Name: Hierarchy,
		DCs:  4, PMsPerDC: 2, VMs: 8,
		LoadScale: 1.4, NoiseSD: 0.2,
	},
	HeteroFleet: {
		Name: HeteroFleet,
		DCs:  2, VMs: 6,
		LoadScale: 2.0, NoiseSD: 0.2, HomeBias: 0.8,
		PMClasses: []PMClass{
			{PerDC: 2, Capacity: AtomCapacity, Cores: 4},
			{PerDC: 1, Capacity: model.Resources{CPUPct: 800, MemMB: 8192, BWMbps: 2000}, Cores: 8},
		},
	},
	GridSpike: {
		Name: GridSpike,
		DCs:  4, PMsPerDC: 1, VMs: 5,
		LoadScale: 1.0, NoiseSD: 0.2, HomeBias: 0.5,
		Pricing: Pricing{
			Kind: "spike",
			Spikes: []PriceSpike{
				{DC: 0, StartTick: 9 * 60, EndTick: 15 * 60, Factor: 4},
			},
		},
	},
	ChurnPoisson: {
		Name: ChurnPoisson,
		DCs:  4, PMsPerDC: 2, VMs: 6,
		LoadScale: 1.2, NoiseSD: 0.2, HomeBias: 0.6,
		Churn: &lifecycle.ProcessSpec{
			Kind:              lifecycle.Poisson,
			RatePerHour:       8,
			MeanLifetimeTicks: 180, // ~3 h exponential lifetimes
			MinLifetimeTicks:  20,
			LoadScale:         0.8,
		},
	},
	ChurnDiurnal: {
		Name: ChurnDiurnal,
		DCs:  4, PMsPerDC: 2, VMs: 6,
		LoadScale: 1.0, NoiseSD: 0.2, HomeBias: 0.6,
		Churn: &lifecycle.ProcessSpec{
			Kind:              lifecycle.Diurnal,
			RatePerHour:       12, // peak rate at 15:00 UTC
			MeanLifetimeTicks: 150,
			MinLifetimeTicks:  20,
			LoadScale:         0.8,
		},
	},
	ChurnStorm: {
		Name: ChurnStorm,
		DCs:  4, PMsPerDC: 2, VMs: 6,
		LoadScale: 1.3, NoiseSD: 0.2, HomeBias: 0.6,
		Churn: &lifecycle.ProcessSpec{
			// Just under two hours, deliberately off the 10-tick round
			// grid so storm VMs wait measurably for their first round.
			Kind:              lifecycle.Waves,
			WaveEvery:         115,
			WaveSize:          16,
			MeanLifetimeTicks: 100, // short-lived batch jobs
			MinLifetimeTicks:  30,
			LoadScale:         1.0,
		},
	},
	FailSparse: {
		Name: FailSparse,
		DCs:  4, PMsPerDC: 2, VMs: 6,
		LoadScale: 1.2, NoiseSD: 0.2, HomeBias: 0.6,
		Churn: &lifecycle.ProcessSpec{
			Kind:              lifecycle.Poisson,
			RatePerHour:       6,
			MeanLifetimeTicks: 180,
			MinLifetimeTicks:  20,
			LoadScale:         0.8,
		},
		Faults: &lifecycle.FaultSpec{
			// ~4 expected crashes over a 240-tick run of the 8-host fleet,
			// each down about an hour and a half.
			HostMTTFTicks: 500,
			HostMTTRTicks: 90,
		},
	},
	FailAZOutage: {
		Name: FailAZOutage,
		DCs:  4, PMsPerDC: 2, VMs: 8,
		LoadScale: 1.1, NoiseSD: 0.2, HomeBias: 0.5,
		Churn: &lifecycle.ProcessSpec{
			Kind:              lifecycle.Poisson,
			RatePerHour:       4,
			MeanLifetimeTicks: 180,
			MinLifetimeTicks:  20,
			LoadScale:         0.8,
		},
		Faults: &lifecycle.FaultSpec{
			// DC 0 (a quarter of the fleet) out for two hours starting at
			// minute 65 — deliberately off the 10-tick round grid, so the
			// evicted VMs measurably wait for the next round. A 240-tick
			// run covers both the outage and the recovery.
			Outages: []lifecycle.OutageSpec{
				{DC: 0, StartTick: 65, DurationTicks: 120},
			},
		},
	},
	MaintRolling: {
		Name: MaintRolling,
		DCs:  4, PMsPerDC: 2, VMs: 8,
		LoadScale: 1.0, NoiseSD: 0.2, HomeBias: 0.5,
		Faults: &lifecycle.FaultSpec{
			// Drain every host in turn: three full 10-tick rounds to empty
			// each before its takedown, 20 minutes offline, next host
			// starting while the previous one is still down.
			Maintenance: &lifecycle.MaintenanceSpec{
				StartTick:          30,
				EveryTicks:         25,
				DrainDeadlineTicks: 30,
				OfflineTicks:       20,
			},
		},
	},
	ServeBase: {
		Name: ServeBase,
		DCs:  4, PMsPerDC: 2, VMs: 4,
		LoadScale: 0.8, NoiseSD: 0.2, HomeBias: 0.6,
		// Headroom for HTTP-admitted VMs; the intake queue bound (serve's
		// -queue-depth) must stay under this so AdmitVM cannot run out of
		// engine slots for accepted offers.
		ExtraVMSlots: 64,
	},
}

// heavyPresets holds the presets too expensive for "run everything"
// loops: resolvable by name, never enumerated by Names().
var heavyPresets = map[string]Spec{
	XLargeFleet: {
		Name: XLargeFleet,
		DCs:  6, PMsPerDC: 67, VMs: 1000,
		LoadScale: 1.0, NoiseSD: 0.2, HomeBias: 0.6,
	},
	HyperscaleFleet: {
		Name: HyperscaleFleet,
		DCs:  6, PMsPerDC: 850, VMs: 20000,
		LoadScale: 1.0, NoiseSD: 0.2, HomeBias: 0.6,
		TickWorkers: 4,
	},
}

// Names lists the standard preset names in stable order. Heavy presets
// (see HeavyNames) are excluded: every caller of Names treats the list as
// "run all of these", which must stay interactive.
func Names() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HeavyNames lists the heavy preset names in stable order.
func HeavyNames() []string {
	out := make([]string, 0, len(heavyPresets))
	for name := range heavyPresets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Preset returns a deep copy of the named spec with the given seed, so
// callers may override any field — including slice elements — without
// corrupting the shared preset table. Both standard and heavy presets
// resolve here.
func Preset(name string, seed uint64) (Spec, error) {
	spec, ok := presets[name]
	if !ok {
		spec, ok = heavyPresets[name]
	}
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown preset %q (have %v, heavy %v)", name, Names(), HeavyNames())
	}
	spec.Seed = seed
	spec.PMClasses = append([]PMClass(nil), spec.PMClasses...)
	spec.Pricing.Base = append([]float64(nil), spec.Pricing.Base...)
	spec.Pricing.Spikes = append([]PriceSpike(nil), spec.Pricing.Spikes...)
	if spec.VMScale != nil {
		scale := make(map[model.VMID][]float64, len(spec.VMScale))
		for id, row := range spec.VMScale {
			scale[id] = append([]float64(nil), row...)
		}
		spec.VMScale = scale
	}
	if spec.AllHomesAt != nil {
		dc := *spec.AllHomesAt
		spec.AllHomesAt = &dc
	}
	if spec.UniformClass != nil {
		c := *spec.UniformClass
		spec.UniformClass = &c
	}
	if spec.Churn != nil {
		churn := *spec.Churn
		spec.Churn = &churn
	}
	if spec.Faults != nil {
		faults := *spec.Faults
		faults.Outages = append([]lifecycle.OutageSpec(nil), faults.Outages...)
		if faults.Maintenance != nil {
			m := *faults.Maintenance
			faults.Maintenance = &m
		}
		spec.Faults = &faults
	}
	return spec, nil
}

// MustPreset is Preset for compile-time-constant names; it panics on
// unknown names.
func MustPreset(name string, seed uint64) Spec {
	spec, err := Preset(name, seed)
	if err != nil {
		panic(err)
	}
	return spec
}

func dcPtr(dc model.DCID) *model.DCID { return &dc }
