package report

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Caption: "demo",
		Headers: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long", "22")
	out := tab.Render()
	if !strings.Contains(out, "demo") {
		t.Fatal("caption missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected caption+header+sep+2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[3], "alpha") || !strings.HasPrefix(lines[4], "beta-long") {
		t.Fatalf("row order wrong: %q / %q", lines[3], lines[4])
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Headers: []string{"a", "b"}}
	tab.AddRow("x,y", `say "hi"`)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestChartRender(t *testing.T) {
	c := Chart{
		Caption: "series",
		Series: []Series{
			{Name: "up", Values: []float64{0, 1, 2, 3, 4, 5}},
			{Name: "flat", Values: []float64{2, 2, 2}},
		},
		Width: 6,
	}
	out := c.Render()
	if !strings.Contains(out, "series") || !strings.Contains(out, "up") {
		t.Fatal("chart missing parts")
	}
	if !strings.Contains(out, "[0 .. 5]") {
		t.Fatalf("range annotation missing: %q", out)
	}
	// Rising series must end on the tallest block.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "█") {
		t.Fatalf("no full block in rising series: %q", lines[1])
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := Chart{Series: []Series{{Name: "none"}}}
	if out := c.Render(); !strings.Contains(out, "none") {
		t.Fatal("empty series dropped")
	}
}

func TestSparklineDownsampling(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := sparkline(vals, 10)
	if len([]rune(s)) != 10 {
		t.Fatalf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != sparkRunes[0] || runes[9] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("monotone ramp should span block range: %q", s)
	}
}

func TestDownsampleShortInput(t *testing.T) {
	in := []float64{1, 2, 3}
	out := downsample(in, 10)
	if len(out) != 3 {
		t.Fatalf("short input should pass through, got %d", len(out))
	}
}

func TestSeriesCSV(t *testing.T) {
	out := SeriesCSV([]Series{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{5}},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "tick,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,1,5" {
		t.Fatalf("row 0 = %q", lines[1])
	}
	if lines[2] != "1,2," {
		t.Fatalf("row 1 should pad short series: %q", lines[2])
	}
}

func TestSeriesCSVEmpty(t *testing.T) {
	// No series at all: just the tick header, no rows.
	if out := SeriesCSV(nil); out != "tick\n" {
		t.Fatalf("SeriesCSV(nil) = %q", out)
	}
	// Series present but all empty: header names them, still no rows.
	out := SeriesCSV([]Series{{Name: "a"}, {Name: "b"}})
	if out != "tick,a,b\n" {
		t.Fatalf("all-empty series = %q", out)
	}
}

func TestSeriesCSVNaN(t *testing.T) {
	// NaN cells must survive the round trip as literal NaN (the token
	// CSV consumers like pandas parse natively), not poison the export.
	out := SeriesCSV([]Series{{Name: "sla", Values: []float64{1, math.NaN(), 0.5}}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header+3 rows, got %q", out)
	}
	if lines[2] != "1,NaN" {
		t.Fatalf("NaN row = %q", lines[2])
	}
	if lines[1] != "0,1" || lines[3] != "2,0.5" {
		t.Fatalf("neighbour rows corrupted: %q / %q", lines[1], lines[3])
	}
}

func TestTableCSVEmpty(t *testing.T) {
	// Headers only: one header line, nothing else.
	tab := Table{Headers: []string{"a", "b"}}
	if out := tab.CSV(); out != "a,b\n" {
		t.Fatalf("row-less table = %q", out)
	}
	// Fully empty table: a single newline (no phantom cells).
	empty := Table{}
	if out := empty.CSV(); out != "\n" {
		t.Fatalf("empty table = %q", out)
	}
}

func TestTableCSVNaNCell(t *testing.T) {
	tab := Table{Headers: []string{"metric", "value"}}
	tab.AddRow("sla", fmt.Sprintf("%g", math.NaN()))
	tab.AddRow("watts", "")
	out := tab.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[1] != "sla,NaN" {
		t.Fatalf("NaN cell = %q", lines[1])
	}
	if lines[2] != "watts," {
		t.Fatalf("empty cell = %q", lines[2])
	}
}

func TestMinMaxEmpty(t *testing.T) {
	lo, hi := minMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty minMax should be zero")
	}
}
