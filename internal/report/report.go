// Package report renders experiment outputs: aligned text tables (the
// paper's tables), CSV exports, and compact ASCII charts for time series
// (the paper's figures, in terminal form).
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple rectangular table with a caption.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned monospaced text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV (values quoted when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named time series.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders a set of series as stacked ASCII sparklines with min/max
// annotations — the terminal stand-in for the paper's figures.
type Chart struct {
	Caption string
	Series  []Series
	// Width is the rendered sparkline width in characters (0 = 72).
	Width int
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Render draws each series as a downsampled sparkline.
func (c *Chart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 72
	}
	var b strings.Builder
	if c.Caption != "" {
		fmt.Fprintf(&b, "%s\n", c.Caption)
	}
	nameW := 0
	for _, s := range c.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range c.Series {
		lo, hi := minMax(s.Values)
		fmt.Fprintf(&b, "%-*s %s [%.3g .. %.3g]\n",
			nameW, s.Name, sparkline(s.Values, width), lo, hi)
	}
	return b.String()
}

// sparkline downsamples values into width buckets (bucket mean) and maps
// each to one of eight block heights scaled to the series range.
func sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	buckets := downsample(values, width)
	lo, hi := minMax(buckets)
	span := hi - lo
	out := make([]rune, len(buckets))
	for i, v := range buckets {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// downsample reduces values to at most width bucket means.
func downsample(values []float64, width int) []float64 {
	if len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// SeriesCSV renders several aligned series as CSV columns with a tick
// index column. Shorter series pad with empty cells.
func SeriesCSV(series []Series) string {
	var b strings.Builder
	b.WriteString("tick")
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%d", i)
		for _, s := range series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, ",%g", s.Values[i])
			} else {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
