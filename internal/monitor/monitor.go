// Package monitor models what the management middleware can actually see.
//
// The paper's Section IV-B motivates learning precisely because monitored
// data is imperfect: observation windows smear values, virtualization
// overhead adds noise, and the monitors themselves occasionally eat up to
// half an Atom CPU thread. This package turns the simulator's ground truth
// into that imperfect view: windowed averages with multiplicative noise and
// occasional monitor-load spikes, plus EWMA smoothing and the "resources
// used in the last 10 minutes" estimator the non-ML Best-Fit relies on.
package monitor

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// Sample is one tick's observation of one VM (or PM aggregate).
type Sample struct {
	Tick int
	// Observed resource usage.
	Usage model.Resources
	// Observed load characteristics at the gateway.
	Load model.Load
	// Observed mean response time (seconds) over the tick.
	RT float64
	// SLA fulfilment computed from gateway RTs.
	SLA float64
	// QueueLen is the gateway's pending-request queue for this VM.
	QueueLen float64
}

// NoiseConfig controls observation distortion.
type NoiseConfig struct {
	// RelSD is the multiplicative log-normal sigma applied to resource
	// observations (0.05 = ~5% relative error).
	RelSD float64
	// SpikeProb is the per-tick probability that the monitor itself spikes,
	// inflating the PM CPU observation.
	SpikeProb float64
	// SpikeCPUPct is the CPU the monitor burns during a spike (the paper:
	// "peaking up to 50% of an Atom CPU thread").
	SpikeCPUPct float64
}

// DefaultNoise matches the distortions the paper describes.
var DefaultNoise = NoiseConfig{RelSD: 0.05, SpikeProb: 0.03, SpikeCPUPct: 50}

// ring is a fixed-capacity chronological window. Once full, observations
// overwrite the oldest slot in place, so the steady-state observation
// path allocates nothing.
type ring[T any] struct {
	buf  []T
	n    int // elements stored (<= window)
	next int // slot the next push overwrites once full
}

func (r *ring[T]) push(v T, window int) {
	if r.n < window {
		r.buf = append(r.buf, v)
		r.n++
		return
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % window
}

// at returns the k-th element in chronological order, k in [0, n).
func (r *ring[T]) at(k int) T { return r.buf[(r.next+k)%r.n] }

func (r *ring[T]) last() T { return r.at(r.n - 1) }

// Observer distorts ground truth into monitored samples and keeps per-VM
// rolling windows.
type Observer struct {
	noise   NoiseConfig
	stream  *rng.Stream
	window  int
	history map[model.VMID]*ring[Sample]
	pmHist  map[model.PMID]*ring[model.Resources]
}

// NewObserver builds an observer with the given window length in ticks
// (the paper's Best-Fit looks at the last 10 minutes = 10 ticks).
func NewObserver(noise NoiseConfig, window int, stream *rng.Stream) *Observer {
	if window <= 0 {
		window = 10
	}
	return &Observer{
		noise:   noise,
		stream:  stream,
		window:  window,
		history: make(map[model.VMID]*ring[Sample]),
		pmHist:  make(map[model.PMID]*ring[model.Resources]),
	}
}

// Window returns the observation window length in ticks.
func (o *Observer) Window() int { return o.window }

// EnsureVM pre-creates a VM's observation ring so the first ObserveVM of
// a freshly admitted VM performs no allocation — churn happens between
// ticks, keeping the tick hot path allocation-free even right after an
// admission.
func (o *Observer) EnsureVM(vm model.VMID) {
	if o.history[vm] == nil {
		o.history[vm] = &ring[Sample]{buf: make([]Sample, 0, o.window)}
	}
}

// ForgetVM drops a VM's observation window. Retired VMs would otherwise
// accumulate history forever under workload churn; VM IDs are never
// reused, so forgetting is safe.
func (o *Observer) ForgetVM(vm model.VMID) {
	delete(o.history, vm)
}

// ObserveVM distorts one VM's true state into a monitored sample and logs
// it into the rolling window.
func (o *Observer) ObserveVM(tick int, vm model.VMID, trueUsage model.Resources, load model.Load, rt, slaLvl, queueLen float64) Sample {
	s := Sample{
		Tick:  tick,
		Usage: o.noisyResources(trueUsage),
		Load:  load,
		// RT and SLA are measured at the gateway itself ("we measure the RT
		// on the datacenter domain"), so they carry no monitor distortion.
		RT:       rt,
		SLA:      clamp01(slaLvl),
		QueueLen: queueLen,
	}
	r := o.history[vm]
	if r == nil {
		r = &ring[Sample]{buf: make([]Sample, 0, o.window)}
		o.history[vm] = r
	}
	r.push(s, o.window)
	return s
}

// ObservePM distorts one PM's true aggregate usage, optionally adding a
// monitor CPU spike, and logs it.
func (o *Observer) ObservePM(tick int, pm model.PMID, trueUsage model.Resources) model.Resources {
	obs := o.noisyResources(trueUsage)
	if o.stream != nil && o.stream.Bool(o.noise.SpikeProb) {
		obs.CPUPct += o.stream.Uniform(0.3, 1.0) * o.noise.SpikeCPUPct
	}
	r := o.pmHist[pm]
	if r == nil {
		r = &ring[model.Resources]{buf: make([]model.Resources, 0, o.window)}
		o.pmHist[pm] = r
	}
	r.push(obs, o.window)
	return obs
}

// WindowAvgVM returns the mean observed usage of a VM over the window —
// the "resources it has used in the last 10 minutes" input to plain
// Best-Fit. ok is false when no samples exist yet.
func (o *Observer) WindowAvgVM(vm model.VMID) (model.Resources, bool) {
	r := o.history[vm]
	if r == nil || r.n == 0 {
		return model.Resources{}, false
	}
	var sum model.Resources
	for k := 0; k < r.n; k++ {
		sum = sum.Add(r.at(k).Usage)
	}
	return sum.Scale(1 / float64(r.n)), true
}

// WindowMaxVM returns the element-wise max observed usage over the window,
// a more conservative sizing estimate.
func (o *Observer) WindowMaxVM(vm model.VMID) (model.Resources, bool) {
	r := o.history[vm]
	if r == nil || r.n == 0 {
		return model.Resources{}, false
	}
	mx := r.at(0).Usage
	for k := 1; k < r.n; k++ {
		mx = mx.Max(r.at(k).Usage)
	}
	return mx, true
}

// WindowAvgLoad returns the window-mean request rate and request-weighted
// per-request characteristics for a VM — the per-round gateway statistics
// a scheduler should size against rather than one noisy tick.
func (o *Observer) WindowAvgLoad(vm model.VMID) (model.Load, bool) {
	r := o.history[vm]
	if r == nil || r.n == 0 {
		return model.Load{}, false
	}
	var agg model.Load
	for k := 0; k < r.n; k++ {
		l := r.at(k).Load
		if l.RPS <= 0 {
			continue
		}
		agg.BytesInReq += l.RPS * l.BytesInReq
		agg.BytesOutRq += l.RPS * l.BytesOutRq
		agg.CPUTimeReq += l.RPS * l.CPUTimeReq
		agg.RPS += l.RPS
	}
	if agg.RPS > 0 {
		agg.BytesInReq /= agg.RPS
		agg.BytesOutRq /= agg.RPS
		agg.CPUTimeReq /= agg.RPS
	}
	agg.RPS /= float64(r.n)
	return agg, true
}

// LastVM returns the most recent sample for a VM.
func (o *Observer) LastVM(vm model.VMID) (Sample, bool) {
	r := o.history[vm]
	if r == nil || r.n == 0 {
		return Sample{}, false
	}
	return r.last(), true
}

// LastPM returns the most recent observed aggregate usage of a PM.
func (o *Observer) LastPM(pm model.PMID) (model.Resources, bool) {
	r := o.pmHist[pm]
	if r == nil || r.n == 0 {
		return model.Resources{}, false
	}
	return r.last(), true
}

// WindowAvgPM returns the mean observed aggregate usage of a PM.
func (o *Observer) WindowAvgPM(pm model.PMID) (model.Resources, bool) {
	r := o.pmHist[pm]
	if r == nil || r.n == 0 {
		return model.Resources{}, false
	}
	var sum model.Resources
	for k := 0; k < r.n; k++ {
		sum = sum.Add(r.at(k))
	}
	return sum.Scale(1 / float64(r.n)), true
}

func (o *Observer) noisyResources(r model.Resources) model.Resources {
	return model.Resources{
		CPUPct: o.noisyScalar(r.CPUPct),
		// Memory is metered exactly by the hypervisor's accounting, unlike
		// sampled CPU; distort it at a fraction of the CPU noise.
		MemMB:  o.noisyScalarSD(r.MemMB, o.noise.RelSD*0.3),
		BWMbps: o.noisyScalar(r.BWMbps),
	}
}

func (o *Observer) noisyScalar(v float64) float64 {
	return o.noisyScalarSD(v, o.noise.RelSD)
}

func (o *Observer) noisyScalarSD(v, sd float64) float64 {
	if o.stream == nil || sd <= 0 || v == 0 {
		return v
	}
	return v * o.stream.LogNormal(-sd*sd/2, sd)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EWMA is an exponentially weighted moving average, the classic reactive
// forecaster used as a lightweight load predictor.
// The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA builds an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weights recent samples more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("monitor: EWMA alpha %v outside (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Add folds a new observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current smoothed value (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }
