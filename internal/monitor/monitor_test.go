package monitor

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/rng"
)

func newObs(noise NoiseConfig) *Observer {
	return NewObserver(noise, 10, rng.New(1, 2))
}

func TestObserveVMNoiseless(t *testing.T) {
	o := NewObserver(NoiseConfig{}, 10, nil)
	u := model.Resources{CPUPct: 123, MemMB: 456, BWMbps: 7}
	s := o.ObserveVM(0, 0, u, model.Load{RPS: 10}, 0.2, 0.9, 3)
	if s.Usage != u {
		t.Fatalf("noiseless observation distorted: %v", s.Usage)
	}
	if s.RT != 0.2 || s.SLA != 0.9 || s.QueueLen != 3 {
		t.Fatalf("sample fields wrong: %+v", s)
	}
}

func TestObserveVMNoiseBounded(t *testing.T) {
	o := newObs(NoiseConfig{RelSD: 0.05})
	u := model.Resources{CPUPct: 100, MemMB: 512, BWMbps: 10}
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		s := o.ObserveVM(i, 0, u, model.Load{}, 0, 1, 0)
		sum += s.Usage.CPUPct
		if s.Usage.CPUPct < 50 || s.Usage.CPUPct > 200 {
			t.Fatalf("implausible noise: %v", s.Usage.CPUPct)
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-100) > 2 {
		t.Fatalf("noise biased: mean = %v", mean)
	}
}

func TestSLAClamped(t *testing.T) {
	o := NewObserver(NoiseConfig{}, 10, nil)
	if s := o.ObserveVM(0, 0, model.Resources{}, model.Load{}, 0, 1.7, 0); s.SLA != 1 {
		t.Fatalf("SLA not clamped high: %v", s.SLA)
	}
	if s := o.ObserveVM(1, 0, model.Resources{}, model.Load{}, 0, -0.5, 0); s.SLA != 0 {
		t.Fatalf("SLA not clamped low: %v", s.SLA)
	}
}

func TestWindowAverageAndMax(t *testing.T) {
	o := NewObserver(NoiseConfig{}, 3, nil)
	if _, ok := o.WindowAvgVM(0); ok {
		t.Fatal("empty window reported ok")
	}
	for i, cpu := range []float64{100, 200, 300, 400} {
		o.ObserveVM(i, 0, model.Resources{CPUPct: cpu}, model.Load{}, 0, 1, 0)
	}
	// Window of 3 keeps 200, 300, 400.
	avg, ok := o.WindowAvgVM(0)
	if !ok || math.Abs(avg.CPUPct-300) > 1e-9 {
		t.Fatalf("WindowAvgVM = %v, %v", avg, ok)
	}
	mx, ok := o.WindowMaxVM(0)
	if !ok || mx.CPUPct != 400 {
		t.Fatalf("WindowMaxVM = %v", mx)
	}
	last, ok := o.LastVM(0)
	if !ok || last.Usage.CPUPct != 400 || last.Tick != 3 {
		t.Fatalf("LastVM = %+v", last)
	}
}

func TestWindowMaxEmpty(t *testing.T) {
	o := NewObserver(NoiseConfig{}, 3, nil)
	if _, ok := o.WindowMaxVM(9); ok {
		t.Fatal("empty max reported ok")
	}
	if _, ok := o.LastVM(9); ok {
		t.Fatal("empty last reported ok")
	}
}

func TestObservePMSpikes(t *testing.T) {
	o := newObs(NoiseConfig{RelSD: 0, SpikeProb: 1, SpikeCPUPct: 50})
	u := model.Resources{CPUPct: 100}
	obs := o.ObservePM(0, 0, u)
	if obs.CPUPct <= 100 {
		t.Fatalf("guaranteed spike did not fire: %v", obs.CPUPct)
	}
	if obs.CPUPct > 150 {
		t.Fatalf("spike exceeds configured magnitude: %v", obs.CPUPct)
	}
	avg, ok := o.WindowAvgPM(0)
	if !ok || avg.CPUPct <= 100 {
		t.Fatalf("PM window avg = %v", avg)
	}
}

func TestObservePMNoSpike(t *testing.T) {
	o := newObs(NoiseConfig{RelSD: 0, SpikeProb: 0})
	obs := o.ObservePM(0, 0, model.Resources{CPUPct: 100})
	if obs.CPUPct != 100 {
		t.Fatalf("spike fired at probability 0: %v", obs.CPUPct)
	}
	if _, ok := o.WindowAvgPM(42); ok {
		t.Fatal("ghost PM window reported ok")
	}
}

func TestWindowDefaulting(t *testing.T) {
	o := NewObserver(NoiseConfig{}, 0, nil)
	if o.Window() != 10 {
		t.Fatalf("default window = %d, want 10", o.Window())
	}
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Fatal("accepted alpha 0")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Fatal("accepted alpha > 1")
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 {
		t.Fatal("initial value not 0")
	}
	if got := e.Add(10); got != 10 {
		t.Fatalf("first Add = %v", got)
	}
	if got := e.Add(20); math.Abs(got-15) > 1e-12 {
		t.Fatalf("second Add = %v", got)
	}
	if got := e.Add(15); math.Abs(got-15) > 1e-12 {
		t.Fatalf("third Add = %v", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e, _ := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Add(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestObserverDeterministicWithSameSeed(t *testing.T) {
	a := NewObserver(DefaultNoise, 10, rng.New(5, 5))
	b := NewObserver(DefaultNoise, 10, rng.New(5, 5))
	u := model.Resources{CPUPct: 100, MemMB: 512, BWMbps: 10}
	for i := 0; i < 50; i++ {
		sa := a.ObserveVM(i, 0, u, model.Load{}, 0.1, 1, 0)
		sb := b.ObserveVM(i, 0, u, model.Load{}, 0.1, 1, 0)
		if sa.Usage != sb.Usage {
			t.Fatal("observers with same seed diverged")
		}
	}
}
