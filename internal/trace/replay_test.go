package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestReplayRoundTripsGenerator(t *testing.T) {
	g, err := NewGenerator(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const ticks = 50
	if err := ExportCSV(&buf, g, ticks); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ticks() != ticks {
		t.Fatalf("Ticks = %d, want %d", rep.Ticks(), ticks)
	}
	for _, tick := range []int{0, 7, 49} {
		want := g.Loads(tick)
		got := rep.Loads(tick)
		for vm, wlv := range want {
			glv := got[vm]
			if glv == nil {
				t.Fatalf("tick %d vm %v missing from replay", tick, vm)
			}
			for src := range wlv {
				// Zero-RPS streams are dropped at export; others must match
				// to formatting precision.
				if wlv[src].RPS <= 0 {
					continue
				}
				if math.Abs(glv[src].RPS-wlv[src].RPS) > 1e-9 {
					t.Fatalf("tick %d vm %v src %d rps %v != %v",
						tick, vm, src, glv[src].RPS, wlv[src].RPS)
				}
				if math.Abs(glv[src].CPUTimeReq-wlv[src].CPUTimeReq) > 1e-12 {
					t.Fatalf("cpuTime mismatch at tick %d", tick)
				}
			}
		}
	}
}

func TestReplayWrapsAround(t *testing.T) {
	csv := "tick,vm,source,rps,bytesIn,bytesOut,cpuTime\n" +
		"0,0,0,10,100,200,0.01\n" +
		"1,0,0,20,100,200,0.01\n"
	rep, err := NewReplay(strings.NewReader(csv), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Loads(0)[0][0].RPS; got != 10 {
		t.Fatalf("tick 0 rps = %v", got)
	}
	if got := rep.Loads(3)[0][0].RPS; got != 20 {
		t.Fatalf("tick 3 should wrap to tick 1: rps = %v", got)
	}
	if got := rep.Loads(-1)[0][0].RPS; got != 20 {
		t.Fatalf("negative tick should wrap: rps = %v", got)
	}
}

func TestReplayValidation(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad tick":   "x,0,0,1,1,1,0.1\n",
		"bad source": "0,0,9,1,1,1,0.1\n",
		"bad value":  "0,0,0,-1,1,1,0.1\n",
		"bad vm":     "0,zz,0,1,1,1,0.1\n",
	}
	for name, csv := range cases {
		if _, err := NewReplay(strings.NewReader(csv), 2); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewReplay(strings.NewReader("0,0,0,1,1,1,0.1\n"), 0); err == nil {
		t.Error("accepted zero sources")
	}
}

func TestReplayLoadsAreCopies(t *testing.T) {
	csv := "0,0,0,10,100,200,0.01\n"
	rep, err := NewReplay(strings.NewReader(csv), 1)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Loads(0)
	a[0][0] = model.Load{RPS: 999}
	b := rep.Loads(0)
	if b[0][0].RPS != 10 {
		t.Fatal("replay returned aliased storage")
	}
}
