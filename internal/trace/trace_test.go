package trace

import (
	"math"
	"testing"

	"repro/internal/model"
)

func vmSpec(id int, home int) model.VMSpec {
	return model.VMSpec{
		ID: model.VMID(id), Name: "svc", ImageSizeGB: 4,
		BaseMemMB: 256, MaxMemMB: 1024,
		Terms: model.DefaultSLATerms, PriceEURh: 0.17,
		HomeDC: model.DCID(home),
	}
}

func baseConfig() Config {
	return Config{
		Seed:      1,
		Sources:   4,
		VMs:       []model.VMSpec{vmSpec(0, 0), vmSpec(1, 1)},
		TZOffsetH: PaperTZOffsets(),
		NoiseSD:   0.1,
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	bad := baseConfig()
	bad.Sources = 0
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("accepted zero sources")
	}
	bad = baseConfig()
	bad.VMs = nil
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("accepted zero VMs")
	}
	bad = baseConfig()
	bad.TZOffsetH = []float64{1}
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("accepted mismatched TZ offsets")
	}
	bad = baseConfig()
	bad.HomeBias = 2
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("accepted HomeBias > 1")
	}
}

func TestLoadsDeterministic(t *testing.T) {
	g1, err := NewGenerator(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(baseConfig())
	for _, tick := range []int{0, 17, 500, 1439} {
		a := g1.Loads(tick)
		b := g2.Loads(tick)
		for vm, lva := range a {
			lvb := b[vm]
			for i := range lva {
				if lva[i] != lvb[i] {
					t.Fatalf("tick %d vm %v src %d differs", tick, vm, i)
				}
			}
		}
		// Re-query must reproduce too (order independence).
		c := g1.Loads(tick)
		for vm := range a {
			for i := range a[vm] {
				if a[vm][i] != c[vm][i] {
					t.Fatal("re-query diverged")
				}
			}
		}
	}
}

func TestLoadsNonNegativeAndShaped(t *testing.T) {
	g, err := NewGenerator(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < model.TicksPerDay; tick += 30 {
		for vm, lv := range g.Loads(tick) {
			if len(lv) != 4 {
				t.Fatalf("vm %v has %d sources", vm, len(lv))
			}
			for i, l := range lv {
				if l.RPS < 0 || l.BytesInReq < 0 || l.BytesOutRq < 0 || l.CPUTimeReq < 0 {
					t.Fatalf("negative load at tick %d vm %v src %d: %+v", tick, vm, i, l)
				}
			}
		}
	}
}

func TestDiurnalPeakAndTrough(t *testing.T) {
	peak := diurnal(15, 0.15)
	trough := diurnal(3, 0.15)
	if math.Abs(peak-1) > 1e-9 {
		t.Fatalf("peak = %v", peak)
	}
	if math.Abs(trough-0.15) > 1e-9 {
		t.Fatalf("trough = %v", trough)
	}
	if diurnal(10, 0.15) <= trough || diurnal(10, 0.15) >= peak {
		t.Fatal("mid-morning should sit between trough and peak")
	}
}

func TestTimezonePhaseShift(t *testing.T) {
	// With home bias ~1/n, each source's load peaks during its own local
	// afternoon. Compare Brisbane (+10) vs Boston (-5) for one VM.
	cfg := RotatingConfig(7, vmSpec(0, 0), 4, PaperTZOffsets())
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 15:00 local in Brisbane is 05:00 UTC; in Boston it is 20:00 UTC.
	avgAt := func(utcHour float64, src int) float64 {
		sum := 0.0
		n := 0
		for d := 0; d < 3; d++ {
			tick := int(utcHour*float64(model.TicksPerHour)) + d*model.TicksPerDay
			lv := g.LoadsFor(0, tick)
			sum += lv[src].RPS
			n++
		}
		return sum / float64(n)
	}
	brsAtBrsPeak := avgAt(5, 0)
	brsAtBstPeak := avgAt(20, 0)
	if brsAtBrsPeak <= brsAtBstPeak {
		t.Fatalf("Brisbane load should peak at its local afternoon: %v vs %v",
			brsAtBrsPeak, brsAtBstPeak)
	}
	bstAtBstPeak := avgAt(20, 3)
	bstAtBrsPeak := avgAt(5, 3)
	if bstAtBstPeak <= bstAtBrsPeak {
		t.Fatalf("Boston load should peak at its local afternoon: %v vs %v",
			bstAtBstPeak, bstAtBrsPeak)
	}
}

func TestHomeBiasConcentratesLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.HomeBias = 0.9
	cfg.NoiseSD = 0
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lv := g.LoadsFor(0, 12*model.TicksPerHour)
	home := lv[0].RPS
	for i := 1; i < 4; i++ {
		if lv[i].RPS >= home {
			t.Fatalf("non-home source %d (%v rps) >= home (%v rps)", i, lv[i].RPS, home)
		}
	}
}

func TestFlashCrowdInjection(t *testing.T) {
	cfg := baseConfig()
	cfg.NoiseSD = 0
	cfg.Crowds = []FlashCrowd{{StartTick: 70, EndTick: 90, Magnitude: 8, Source: 2, VM: 0}}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quiet := g.LoadsFor(0, 60)[2].RPS
	crowd := g.LoadsFor(0, 80)[2].RPS // mid-crowd, full envelope
	after := g.LoadsFor(0, 95)[2].RPS
	if crowd < quiet*3 {
		t.Fatalf("flash crowd too weak: quiet %v vs crowd %v", quiet, crowd)
	}
	if after > quiet*1.5 {
		t.Fatalf("crowd did not subside: %v vs %v", after, quiet)
	}
	// Other VM unaffected.
	otherQuiet := g.LoadsFor(1, 60)[2].RPS
	otherCrowd := g.LoadsFor(1, 80)[2].RPS
	if otherCrowd > otherQuiet*1.5 {
		t.Fatal("crowd leaked to wrong VM")
	}
}

func TestScalePerStream(t *testing.T) {
	cfg := baseConfig()
	cfg.NoiseSD = 0
	cfg.Scale = map[model.VMID][]float64{0: {2, 1, 1, 1}}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgRef := baseConfig()
	cfgRef.NoiseSD = 0
	ref, _ := NewGenerator(cfgRef)
	tick := 12 * model.TicksPerHour
	got := g.LoadsFor(0, tick)[0].RPS
	want := 2 * ref.LoadsFor(0, tick)[0].RPS
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("scaled rps = %v, want %v", got, want)
	}
}

func TestClassAssignmentDefaultsAndOverride(t *testing.T) {
	cfg := baseConfig()
	cfg.ClassOf = map[model.VMID]ServiceClass{0: DynamicWeb}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Class(0).Name != DynamicWeb.Name {
		t.Fatal("explicit class ignored")
	}
	if g.Class(1).Name == "" {
		t.Fatal("default class missing")
	}
}

func TestClassByIndexCycles(t *testing.T) {
	if ClassByIndex(0).Name != ClassByIndex(3).Name {
		t.Fatal("ClassByIndex should cycle with period 3")
	}
	if ClassByIndex(-1).Name == "" {
		t.Fatal("negative index should still resolve")
	}
}

func TestLoadsForUnknownVM(t *testing.T) {
	g, err := NewGenerator(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	lv := g.LoadsFor(99, 0)
	if len(lv) != 4 {
		t.Fatalf("unknown VM load vector length %d", len(lv))
	}
	if !lv.Total().IsZero() {
		t.Fatal("unknown VM should have zero load")
	}
}
