package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/model"
)

// Replay serves workload recorded in CSV — the bridge for users who hold
// real gateway logs (the role the Li-BCN traces play in the paper). The
// format is one row per (tick, vm, source) stream:
//
//	tick,vm,source,rps,bytesIn,bytesOut,cpuTime
//
// Ticks beyond the recording wrap around, so a one-day trace drives runs
// of any length.
type Replay struct {
	sources int
	ticks   int
	loads   map[int]map[model.VMID]model.LoadVector
}

// NewReplay parses a CSV trace. sources is the number of client locations
// (source indices in the file must stay below it).
func NewReplay(r io.Reader, sources int) (*Replay, error) {
	if sources <= 0 {
		return nil, fmt.Errorf("trace: sources must be positive")
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 7
	rep := &Replay{sources: sources, loads: make(map[int]map[model.VMID]model.LoadVector)}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading replay: %w", err)
		}
		line++
		if line == 1 && rec[0] == "tick" {
			continue // header
		}
		tick, err := strconv.Atoi(rec[0])
		if err != nil || tick < 0 {
			return nil, fmt.Errorf("trace: bad tick %q on line %d", rec[0], line)
		}
		vmRaw, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: bad vm %q on line %d", rec[1], line)
		}
		src, err := strconv.Atoi(rec[2])
		if err != nil || src < 0 || src >= sources {
			return nil, fmt.Errorf("trace: bad source %q on line %d", rec[2], line)
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(rec[3+i], 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("trace: bad value %q on line %d", rec[3+i], line)
			}
			vals[i] = v
		}
		vm := model.VMID(vmRaw)
		byVM := rep.loads[tick]
		if byVM == nil {
			byVM = make(map[model.VMID]model.LoadVector)
			rep.loads[tick] = byVM
		}
		lv := byVM[vm]
		if lv == nil {
			lv = make(model.LoadVector, sources)
		}
		lv[src] = model.Load{RPS: vals[0], BytesInReq: vals[1], BytesOutRq: vals[2], CPUTimeReq: vals[3]}
		byVM[vm] = lv
		if tick+1 > rep.ticks {
			rep.ticks = tick + 1
		}
	}
	if rep.ticks == 0 {
		return nil, fmt.Errorf("trace: replay is empty")
	}
	return rep, nil
}

// Ticks returns the recording length.
func (r *Replay) Ticks() int { return r.ticks }

// Fill implements the sim.Workload contract; ticks wrap modulo the
// recording length. Rows are fully overwritten: recorded streams are
// copied in, everything else is zeroed. Fill performs no allocations.
func (r *Replay) Fill(tick int, vms []model.VMID, dst []model.LoadVector) {
	t := tick % r.ticks
	if t < 0 {
		t += r.ticks
	}
	byVM := r.loads[t]
	for i, id := range vms {
		row := dst[i]
		for k := range row {
			row[k] = model.Load{}
		}
		if lv, ok := byVM[id]; ok {
			copy(row, lv)
		}
	}
}

// Loads returns the recorded load vectors of one tick in a fresh map;
// ticks wrap modulo the recording length.
func (r *Replay) Loads(tick int) map[model.VMID]model.LoadVector {
	t := tick % r.ticks
	if t < 0 {
		t += r.ticks
	}
	byVM := r.loads[t]
	out := make(map[model.VMID]model.LoadVector, len(byVM))
	for vm, lv := range byVM {
		out[vm] = lv.Clone()
	}
	return out
}

// ExportCSV writes a generator's output for the given tick range in the
// replay format, so synthetic workloads can be captured, edited and
// replayed — or real logs can be converted once and reused.
func ExportCSV(w io.Writer, g *Generator, ticks int) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"tick", "vm", "source", "rps", "bytesIn", "bytesOut", "cpuTime"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for t := 0; t < ticks; t++ {
		// Rows come out in (tick, VM, source) order so exports are
		// byte-stable across runs.
		for _, vm := range g.cfg.VMs {
			lv := g.LoadsFor(vm.ID, t)
			for src, l := range lv {
				if l.RPS <= 0 {
					continue
				}
				err := cw.Write([]string{
					strconv.Itoa(t),
					strconv.Itoa(int(vm.ID)),
					strconv.Itoa(src),
					f(l.RPS), f(l.BytesInReq), f(l.BytesOutRq), f(l.CPUTimeReq),
				})
				if err != nil {
					return err
				}
			}
		}
	}
	return cw.Error()
}
