// Package trace synthesises the Li-BCN 2010-like workload the paper drives
// its experiments with. The original traces (requests to real hosted
// web-sites: file hosting, image galleries, dynamic sites) are not public,
// so the generator reproduces the statistical features the scheduler reacts
// to:
//
//   - strong diurnal request-rate curves, phase-shifted per client region's
//     timezone (the "simulating the effect of different time zones" of
//     Section V-C);
//   - per-service request mixes: heavy-tailed reply sizes for file hosting,
//     CPU-heavy requests for dynamic sites;
//   - multiplicative noise and bursts;
//   - an optional flash-crowd, as in Figure 6 where minutes 70-90 carry a
//     crowd that "clearly exceeds the capacity of the system";
//   - per-(VM, source) scaling so each of the four workloads can be scaled
//     differently, as the paper does.
package trace

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/model"
	"repro/internal/rng"
)

// ServiceClass captures the per-request characteristics of a hosted
// web-service type.
type ServiceClass struct {
	Name string
	// CPUTimeReq is the mean no-stress CPU seconds per request.
	CPUTimeReq float64
	// BytesInReq is the mean request payload in bytes.
	BytesInReq float64
	// BytesOutReq is the mean reply payload in bytes.
	BytesOutReq float64
	// OutTailAlpha shapes the Pareto tail of reply sizes (smaller = heavier).
	OutTailAlpha float64
	// BaseRPS is the reference request rate at the diurnal peak before any
	// scaling.
	BaseRPS float64
}

// The three service classes of the Li-BCN collection ("from file hosting to
// image-gallery services"), plus a dynamic application profile.
var (
	FileHosting = ServiceClass{
		Name:         "file-hosting",
		CPUTimeReq:   0.004,
		BytesInReq:   400,
		BytesOutReq:  90_000,
		OutTailAlpha: 1.3,
		BaseRPS:      28,
	}
	ImageGallery = ServiceClass{
		Name:         "image-gallery",
		CPUTimeReq:   0.009,
		BytesInReq:   500,
		BytesOutReq:  38_000,
		OutTailAlpha: 1.7,
		BaseRPS:      36,
	}
	DynamicWeb = ServiceClass{
		Name:         "dynamic-web",
		CPUTimeReq:   0.022,
		BytesInReq:   900,
		BytesOutReq:  9_000,
		OutTailAlpha: 2.2,
		BaseRPS:      42,
	}
)

// Classes lists the built-in service classes.
func Classes() []ServiceClass {
	return []ServiceClass{FileHosting, ImageGallery, DynamicWeb}
}

// ClassByIndex returns one of the built-in classes, cycling.
func ClassByIndex(i int) ServiceClass {
	cs := Classes()
	return cs[((i%len(cs))+len(cs))%len(cs)]
}

// FlashCrowd describes a load spike injected on top of the diurnal curve.
type FlashCrowd struct {
	StartTick int     // first tick of the crowd
	EndTick   int     // first tick after the crowd
	Magnitude float64 // multiplier on the affected source's request rate
	Source    model.LocationID
	VM        model.VMID
}

// Config parameterises a Generator.
type Config struct {
	Seed    uint64
	Sources int // number of client locations
	VMs     []model.VMSpec
	ClassOf map[model.VMID]ServiceClass
	// TZOffsetH[loc] shifts that location's diurnal peak, in hours.
	TZOffsetH []float64
	// Scale[vm][loc] multiplies the request rate of that stream; the paper
	// scales "each of the four workloads differently". A nil map means 1.0.
	Scale map[model.VMID][]float64
	// HomeBias is the share of a VM's load originating from its home
	// location at equal diurnal phase (the rest spreads over other sources).
	HomeBias float64
	// NoiseSD is the per-tick multiplicative log-normal noise sigma.
	NoiseSD float64
	// Crowds are optional flash-crowd injections.
	Crowds []FlashCrowd
	// DiurnalFloor is the night-to-peak ratio (0.15 means nights run at 15%
	// of the peak rate).
	DiurnalFloor float64
}

// Generator produces per-tick load vectors for every VM. It is not safe
// for concurrent use: Fill and Loads share one reseedable draw stream.
type Generator struct {
	cfg  Config
	byID map[model.VMID]*model.VMSpec
	// scratch is the reusable per-(VM, tick) stream: each fill reseeds it
	// to the state a fresh NewNamed(seed, "trace/<vm>/<tick>") would have,
	// so the draws are identical to building one stream per call without
	// the per-call allocations.
	scratch *rng.Stream
	nameBuf []byte
}

// NewGenerator validates the configuration and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Sources <= 0 {
		return nil, fmt.Errorf("trace: Sources must be positive, got %d", cfg.Sources)
	}
	if len(cfg.VMs) == 0 {
		return nil, fmt.Errorf("trace: need at least one VM")
	}
	if len(cfg.TZOffsetH) != 0 && len(cfg.TZOffsetH) != cfg.Sources {
		return nil, fmt.Errorf("trace: TZOffsetH has %d entries, want %d", len(cfg.TZOffsetH), cfg.Sources)
	}
	if cfg.HomeBias < 0 || cfg.HomeBias > 1 {
		return nil, fmt.Errorf("trace: HomeBias %v outside [0,1]", cfg.HomeBias)
	}
	if cfg.DiurnalFloor <= 0 {
		cfg.DiurnalFloor = 0.15
	}
	if cfg.HomeBias == 0 {
		cfg.HomeBias = 0.6
	}
	if cfg.ClassOf == nil {
		cfg.ClassOf = map[model.VMID]ServiceClass{}
	}
	for i, vm := range cfg.VMs {
		if _, ok := cfg.ClassOf[vm.ID]; !ok {
			cfg.ClassOf[vm.ID] = ClassByIndex(i)
		}
	}
	g := &Generator{
		cfg:     cfg,
		byID:    make(map[model.VMID]*model.VMSpec, len(cfg.VMs)),
		scratch: rng.New(0, 0),
		nameBuf: make([]byte, 0, 32),
	}
	for i := range cfg.VMs {
		g.byID[cfg.VMs[i].ID] = &cfg.VMs[i]
	}
	return g, nil
}

// Sources returns the number of client locations.
func (g *Generator) Sources() int { return g.cfg.Sources }

// Class returns the service class of a VM.
func (g *Generator) Class(vm model.VMID) ServiceClass { return g.cfg.ClassOf[vm] }

// diurnal returns the smooth day curve in [floor, 1] for a local hour.
// Peak at 15:00 local time, trough around 03:00, as in web-hosting traces.
func diurnal(localHour, floor float64) float64 {
	phase := (localHour - 15) / 24 * 2 * math.Pi
	base := (math.Cos(phase) + 1) / 2 // 1 at 15:00, 0 at 03:00
	// Sharpen the peak slightly: real traces have a flatter night.
	base = math.Pow(base, 1.3)
	return floor + (1-floor)*base
}

// Fill implements the sim.Workload contract: it writes the load vector of
// vms[i] into dst[i] for every i, overwriting every slot so rows can be
// reused across ticks. Rows shorter than Sources receive a prefix; slots
// beyond Sources are zeroed. The result is deterministic in (seed, tick)
// and independent of query order. Fill performs no per-tick allocations.
func (g *Generator) Fill(tick int, vms []model.VMID, dst []model.LoadVector) {
	for i, id := range vms {
		g.fillFor(id, tick, dst[i])
	}
}

// Loads returns the load vector of every VM at the given tick in a fresh
// map — the convenience form of Fill for exporters and tests.
func (g *Generator) Loads(tick int) map[model.VMID]model.LoadVector {
	out := make(map[model.VMID]model.LoadVector, len(g.cfg.VMs))
	for _, vm := range g.cfg.VMs {
		lv := make(model.LoadVector, g.cfg.Sources)
		g.fillFor(vm.ID, tick, lv)
		out[vm.ID] = lv
	}
	return out
}

// LoadsFor returns one VM's load vector at the given tick.
func (g *Generator) LoadsFor(id model.VMID, tick int) model.LoadVector {
	lv := make(model.LoadVector, g.cfg.Sources)
	g.fillFor(id, tick, lv)
	return lv
}

// tickStream reseeds the scratch stream to the deterministic per-(vm, tick)
// state, equivalent to rng.NewNamed(seed, fmt.Sprintf("trace/%s/%d", vm, tick))
// without the allocations.
func (g *Generator) tickStream(id model.VMID, tick int) *rng.Stream {
	b := append(g.nameBuf[:0], "trace/vm"...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(tick), 10)
	g.nameBuf = b
	g.scratch.Reseed(g.cfg.Seed, rng.NamedSeedBytes(b))
	return g.scratch
}

func (g *Generator) fillFor(id model.VMID, tick int, row model.LoadVector) {
	for i := range row {
		row[i] = model.Load{}
	}
	vm, ok := g.byID[id]
	if !ok {
		return
	}
	class := g.cfg.ClassOf[id]
	// Deterministic per-(vm, tick) stream: noise does not depend on how many
	// times or in what order ticks are queried.
	s := g.tickStream(id, tick)
	hourUTC := float64(tick) / float64(model.TicksPerHour)
	for loc := 0; loc < g.cfg.Sources; loc++ {
		tz := 0.0
		if len(g.cfg.TZOffsetH) > 0 {
			tz = g.cfg.TZOffsetH[loc]
		}
		localHour := math.Mod(hourUTC+tz+240, 24) // +240 keeps Mod positive
		day := diurnal(localHour, g.cfg.DiurnalFloor)
		share := g.sourceShare(*vm, model.LocationID(loc))
		rate := class.BaseRPS * day * share
		rate *= g.scale(id, loc)
		if g.cfg.NoiseSD > 0 {
			rate *= s.LogNormal(-g.cfg.NoiseSD*g.cfg.NoiseSD/2, g.cfg.NoiseSD)
		}
		rate += g.crowdBoost(id, model.LocationID(loc), tick, class.BaseRPS)
		if rate < 0 {
			rate = 0
		}
		// Reply sizes: mean of a bounded Pareto re-sampled per tick to give
		// the monitors realistic variation without per-request simulation.
		out := class.BytesOutReq
		if class.OutTailAlpha > 0 {
			out = 0.7*class.BytesOutReq + 0.3*s.Pareto(class.BytesOutReq*0.4, class.OutTailAlpha)
			if out > class.BytesOutReq*20 {
				out = class.BytesOutReq * 20
			}
		}
		cpuReq := class.CPUTimeReq * s.LogNormal(-0.02, 0.2)
		bytesIn := class.BytesInReq * s.LogNormal(-0.005, 0.1)
		if loc >= len(row) {
			continue // draws stay aligned even when the row is short
		}
		row[loc] = model.Load{
			RPS:        rate,
			BytesInReq: bytesIn,
			BytesOutRq: out,
			CPUTimeReq: cpuReq,
		}
	}
}

// sourceShare distributes a VM's clients: HomeBias at the home location,
// the remainder uniform across the others.
func (g *Generator) sourceShare(vm model.VMSpec, loc model.LocationID) float64 {
	n := g.cfg.Sources
	if n == 1 {
		return 1
	}
	home := model.LocationID(int(vm.HomeDC) % n)
	if loc == home {
		return g.cfg.HomeBias
	}
	return (1 - g.cfg.HomeBias) / float64(n-1)
}

func (g *Generator) scale(vm model.VMID, loc int) float64 {
	if g.cfg.Scale == nil {
		return 1
	}
	row, ok := g.cfg.Scale[vm]
	if !ok || loc >= len(row) {
		return 1
	}
	return row[loc]
}

func (g *Generator) crowdBoost(vm model.VMID, loc model.LocationID, tick int, baseRPS float64) float64 {
	for _, c := range g.cfg.Crowds {
		if c.VM != vm || c.Source != loc {
			continue
		}
		if tick < c.StartTick || tick >= c.EndTick {
			continue
		}
		// Ramp up over the first quarter, plateau, ramp down over the last.
		span := float64(c.EndTick - c.StartTick)
		pos := float64(tick-c.StartTick) / span
		env := 1.0
		if pos < 0.25 {
			env = pos / 0.25
		} else if pos > 0.75 {
			env = (1 - pos) / 0.25
		}
		return baseRPS * c.Magnitude * env
	}
	return 0
}

// RotatingConfig builds a configuration where a single VM's dominant load
// source rotates across the locations over the day — the Figure 5 scenario
// where the VM should "follow the load" around the world. Each location
// peaks during its local afternoon, and the VM's client base is spread
// evenly, so the dominant source is whichever region is awake.
func RotatingConfig(seed uint64, vm model.VMSpec, sources int, tzOffsets []float64) Config {
	return Config{
		Seed:         seed,
		Sources:      sources,
		VMs:          []model.VMSpec{vm},
		TZOffsetH:    tzOffsets,
		HomeBias:     1.0 / float64(sources), // even spread: pure rotation
		NoiseSD:      0.05,
		DiurnalFloor: 0.05,
	}
}

// PaperTZOffsets returns the approximate timezone offsets (hours from UTC)
// of the paper's four locations: Brisbane +10, Bangaluru +5.5, Barcelona +1,
// Boston -5.
func PaperTZOffsets() []float64 { return []float64{10, 5.5, 1, -5} }

// GlobalTZOffsets extends PaperTZOffsets with the two extra sites of the
// production-scale topology: Frankfurt +1 and Singapore +8. The first four
// entries match PaperTZOffsets exactly.
func GlobalTZOffsets() []float64 { return []float64{10, 5.5, 1, -5, 1, 8} }
