package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("identical seeds diverged")
		}
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(42, "workload")
	b := NewNamed(42, "monitor-noise")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("differently named streams are identical")
	}
	// Same name must reproduce.
	c := NewNamed(42, "workload")
	d := NewNamed(42, "workload")
	for i := 0; i < 64; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("same-named streams diverged")
		}
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() []float64 {
		s := New(1, 2)
		c1 := s.Split("a")
		c2 := s.Split("b")
		out := make([]float64, 0, 8)
		for i := 0; i < 4; i++ {
			out = append(out, c1.Float64(), c2.Float64())
		}
		return out
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("split streams not reproducible")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3, 4)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(5, 6)
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Norm mean = %v", mean)
	}
	if math.Abs(sd-2) > 0.1 {
		t.Fatalf("Norm sd = %v", sd)
	}
}

func TestParetoLowerBound(t *testing.T) {
	s := New(7, 8)
	for i := 0; i < 1000; i++ {
		if v := s.Pareto(3, 1.5); v < 3 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestExpPositiveMean(t *testing.T) {
	s := New(9, 10)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(4)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-4) > 0.15 {
		t.Fatalf("Exp mean = %v", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11, 12)
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13, 14)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntN(t *testing.T) {
	s := New(15, 16)
	for i := 0; i < 1000; i++ {
		if v := s.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(17, 18)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(19, 20)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v (orig %v)", xs, orig)
	}
}
