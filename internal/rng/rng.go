// Package rng provides deterministic, splittable random streams.
//
// Every stochastic component of the reproduction (workload generation,
// monitor noise, ML tie-breaking) draws from an explicit *rng.Stream so
// that experiments are reproducible bit-for-bit from a single root seed.
// Streams are split by name, so adding a new consumer never perturbs the
// draws seen by existing ones — a property plain shared math/rand sources
// do not have.
package rng

import (
	"math"
	"math/rand/v2"
)

// Stream is a deterministic source of pseudo-random values. It is NOT safe
// for concurrent use; split one stream per goroutine instead.
type Stream struct {
	r   *rand.Rand
	pcg *rand.PCG
}

// New returns a stream seeded from the two seed words.
func New(seed1, seed2 uint64) *Stream {
	pcg := rand.NewPCG(seed1, seed2)
	return &Stream{r: rand.New(pcg), pcg: pcg}
}

// Reseed resets the stream in place to the state a fresh New(seed1, seed2)
// would have. It lets hot paths that need one short-lived stream per work
// item (the trace generator draws per (VM, tick)) reuse a single Stream
// instead of allocating one per item.
func (s *Stream) Reseed(seed1, seed2 uint64) { s.pcg.Seed(seed1, seed2) }

// fnv1aOffset and fnv1aPrime are the 64-bit FNV-1a constants, inlined so
// name hashing never allocates a hash.Hash.
const (
	fnv1aOffset uint64 = 14695981039346656037
	fnv1aPrime  uint64 = 1099511628211
)

// NamedSeed hashes a stream name to a seed word with FNV-1a — the mixing
// NewNamed applies.
func NamedSeed(name string) uint64 {
	h := fnv1aOffset
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnv1aPrime
	}
	return h
}

// NamedSeedBytes is NamedSeed over a byte slice, for callers that build
// names into a reusable buffer to avoid per-call string allocation.
func NamedSeedBytes(name []byte) uint64 {
	h := fnv1aOffset
	for _, b := range name {
		h ^= uint64(b)
		h *= fnv1aPrime
	}
	return h
}

// NewNamed derives a stream from a root seed and a name, mixing the name
// into the seed with FNV-1a. Identical (seed, name) pairs always produce
// identical streams.
func NewNamed(seed uint64, name string) *Stream {
	return New(seed, NamedSeed(name))
}

// Split derives an independent child stream. The child's sequence depends
// only on the parent's seed and the given name, not on how many values the
// parent has produced, because the derivation consumes no parent draws.
func (s *Stream) Split(name string) *Stream {
	// Consume two words deterministically positioned at the time of the
	// split; callers split everything up front so ordering is stable.
	return New(s.r.Uint64(), NamedSeed(name))
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Stream) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto draw with shape alpha and minimum xm,
// the heavy-tailed distribution used for web object sizes.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomises the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
