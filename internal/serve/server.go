package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// maxBodyBytes bounds every request body — a garbage or hostile client
// cannot make the server buffer more than this per request.
const maxBodyBytes = 1 << 20

// errEngineStopped reports a control command against a loop that has
// already shut down.
var errEngineStopped = errors.New("serve: engine stopped")

// Server is the HTTP placement service: the bounded-intake front door in
// front of one engine loop.
//
//	POST /v1/offers      offer one VM          (202 queued / 429 backpressure)
//	POST /v1/telemetry   report a VM's load
//	POST /v1/faults      report an infrastructure fault
//	POST /v1/tick        advance virtual time  (replay mode only)
//	POST /v1/checkpoint  write a checkpoint
//	POST /v1/shutdown    drain and stop
//	GET  /healthz        snapshot + queue depth + calibration
//	GET  /v1/placements  per-VM placement status (?name=)
//	GET  /v1/log         placement log          (?from=N)
//	GET  /v1/calibration predicted-vs-observed SLA report
type Server struct {
	cfg  Config
	loop *loop
	mux  *http.ServeMux

	shutdownOnce sync.Once
	shutdownErr  error
}

// New builds the service (restoring from Config.Dir if asked) and starts
// its engine goroutine.
func New(cfg Config) (*Server, error) {
	l, err := newLoop(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: l.cfg, loop: l, mux: http.NewServeMux()}
	s.routes()
	l.start()
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the latest published engine snapshot.
func (s *Server) Snapshot() *Snapshot { return s.loop.snap.Load() }

// Tick advances virtual time n ticks through the engine loop — the
// programmatic form of POST /v1/tick.
func (s *Server) Tick(ctx context.Context, n int) (int, error) {
	if n <= 0 {
		n = 1
	}
	r, err := s.control(ctx, ctlMsg{kind: ctlTick, n: n, resp: make(chan ctlResp, 1)})
	if err != nil {
		return 0, err
	}
	return r.tick, r.err
}

// Checkpoint writes a checkpoint now.
func (s *Server) Checkpoint(ctx context.Context) error {
	r, err := s.control(ctx, ctlMsg{kind: ctlCheckpoint, resp: make(chan ctlResp, 1)})
	if err != nil {
		return err
	}
	return r.err
}

// Shutdown drains and stops the engine (idempotent): in-flight offers
// get their admission ruling and one final scheduling round, a last
// checkpoint is written, and the journal is closed. The HTTP listener is
// the caller's to close; handlers answer 503 for new offers meanwhile.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		r, err := s.control(ctx, ctlMsg{kind: ctlShutdown, resp: make(chan ctlResp, 1)})
		if err != nil {
			s.shutdownErr = err
			return
		}
		s.shutdownErr = r.err
	})
	return s.shutdownErr
}

// control sends one command to the engine loop under the caller's
// deadline. The loop never blocks on the (buffered) response channel, so
// a client that gives up cannot wedge the engine.
func (s *Server) control(ctx context.Context, m ctlMsg) (ctlResp, error) {
	select {
	case s.loop.ctl <- m:
	case <-s.loop.done:
		return ctlResp{}, errEngineStopped
	case <-ctx.Done():
		return ctlResp{}, ctx.Err()
	}
	select {
	case r := <-m.resp:
		return r, nil
	case <-s.loop.done:
		// Shutdown answers before closing done; a nil response here means
		// the loop died without one.
		select {
		case r := <-m.resp:
			return r, nil
		default:
			return ctlResp{}, errEngineStopped
		}
	case <-ctx.Done():
		return ctlResp{}, ctx.Err()
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/offers", s.handleOffer)
	s.mux.HandleFunc("POST /v1/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("POST /v1/faults", s.handleFault)
	s.mux.HandleFunc("POST /v1/tick", s.handleTick)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /v1/shutdown", s.handleShutdown)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/placements", s.handlePlacements)
	s.mux.HandleFunc("GET /v1/log", s.handleLog)
	s.mux.HandleFunc("GET /v1/calibration", s.handleCalibration)
	s.mux.Handle("GET /metrics", obs.Handler(s.loop.met.reg))
	if s.loop.tr != nil {
		s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	}
	if s.cfg.EnablePprof {
		// Opt-in only: profiling endpoints expose internals and cost CPU.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// handleTrace serves the tracer ring as Chrome trace-event JSON, ready
// for chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.loop.tr.WriteChromeTrace(w) //nolint:errcheck // best-effort export
}

// Wire bodies: the event payloads plus the optional client-assigned
// sequence number (0 = server stamps arrival order). Replay scripts
// always assign Seq so a tick's batch orders identically no matter how
// the HTTP requests interleave.
type offerWire struct {
	Seq int64 `json:"seq,omitempty"`
	OfferReq
}

type telemetryWire struct {
	Seq int64 `json:"seq,omitempty"`
	TelemetryReq
}

type faultWire struct {
	Seq int64 `json:"seq,omitempty"`
	FaultEventReq
}

// acceptResponse acknowledges an accepted event.
type acceptResponse struct {
	Seq    int64 `json:"seq"`
	Queued int   `json:"queued"`
	Cap    int   `json:"cap"`
}

func (s *Server) handleOffer(w http.ResponseWriter, r *http.Request) {
	var body offerWire
	if !s.decode(w, r, &body) {
		return
	}
	if s.loop.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: no new offers")
		return
	}
	s.accept(w, Event{Seq: body.Seq, Kind: KindOffer, Offer: &body.OfferReq})
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	var body telemetryWire
	if !s.decode(w, r, &body) {
		return
	}
	s.accept(w, Event{Seq: body.Seq, Kind: KindTelemetry, Telemetry: &body.TelemetryReq})
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var body faultWire
	if !s.decode(w, r, &body) {
		return
	}
	s.accept(w, Event{Seq: body.Seq, Kind: KindFault, Fault: &body.FaultEventReq})
}

// accept validates an event and offers it to the bounded intake queue.
// A full queue is the backpressure path: 429 with Retry-After, and the
// client's event is NOT accepted — it owns the retry. The send is
// non-blocking by construction, so a flood of clients can saturate the
// queue but never grow it.
func (s *Server) accept(w http.ResponseWriter, ev Event) {
	var t0 time.Time
	traced := s.loop.tr.SampleNext()
	if traced {
		t0 = time.Now()
	}
	if err := ev.Validate(s.loop.sc.Spec.DCs, s.loop.world.NumPMs()); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ev.Seq < 0 {
		writeError(w, http.StatusBadRequest, "seq must be >= 0")
		return
	}
	if ev.Seq == 0 {
		ev.Seq = s.loop.seq.Add(1)
	}
	select {
	case s.loop.events <- ev:
		s.loop.met.Accepted.Inc()
		writeJSON(w, http.StatusAccepted, acceptResponse{
			Seq:    ev.Seq,
			Queued: len(s.loop.events),
			Cap:    cap(s.loop.events),
		})
	default:
		s.loop.met.Rejected429.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "intake queue full")
	}
	if traced {
		s.loop.tr.Record("accept_"+ev.Kind, "http", tidHTTP, t0, time.Since(t0), true)
	}
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	if s.cfg.TickEvery > 0 {
		writeError(w, http.StatusConflict, "wall-clock mode: time is not client-driven")
		return
	}
	var body struct {
		N int `json:"n"`
	}
	if !s.decode(w, r, &body) {
		return
	}
	if body.N <= 0 {
		body.N = 1
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	tick, err := s.Tick(ctx, body.N)
	if err != nil {
		writeControlError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"tick": tick})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Dir == "" {
		writeError(w, http.StatusConflict, "no state directory configured")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.Checkpoint(ctx); err != nil {
		writeControlError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"checkpoint": CheckpointName})
}

func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil && !errors.Is(err, errEngineStopped) {
		writeControlError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// healthResponse is the /healthz body: service status, intake queue
// occupancy and the latest engine snapshot.
type healthResponse struct {
	Status   string `json:"status"` // "ok", "draining" or "error"
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	*Snapshot
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	status := "ok"
	switch {
	case snap.Err != "":
		status = "error"
	case snap.Draining:
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:   status,
		QueueLen: len(s.loop.events),
		QueueCap: cap(s.loop.events),
		Snapshot: snap,
	})
}

func (s *Server) handlePlacements(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	if name := r.URL.Query().Get("name"); name != "" {
		vs, ok := snap.VMs[name]
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown vm %q", name))
			return
		}
		writeJSON(w, http.StatusOK, vs)
		return
	}
	writeJSON(w, http.StatusOK, snap.VMs)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "from must be an integer")
			return
		}
		from = n
	}
	lines := s.loop.logTail(from)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, ln := range lines {
		fmt.Fprintln(w, ln)
	}
}

func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	if snap.Calibration == nil {
		writeError(w, http.StatusNotFound, "no prediction bundle configured")
		return
	}
	writeJSON(w, http.StatusOK, snap.Calibration)
}

// decode parses a bounded JSON body, answering 400 on garbage.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "malformed body: "+err.Error())
		return false
	}
	return true
}

// writeControlError maps control-path failures: deadline pressure means
// the engine was busy (503, retryable), a stopped engine is 409, and
// anything else is the engine reporting a real error (500).
func writeControlError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "engine busy: "+err.Error())
	case errors.Is(err, errEngineStopped):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hanging up is its problem
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
