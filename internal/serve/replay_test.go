package serve

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/predict"
)

// joinLog canonicalises a placement log for comparison.
func joinLog(lines []string) string { return strings.Join(lines, "\n") }

// runScript replays a script against a fresh server and returns its log.
func runScript(t *testing.T, cfg Config, rs *ReplayScript, workers int) []string {
	t.Helper()
	_, c := newTestServer(t, cfg)
	log, err := c.Replay(rs, workers)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// drive sends every step with fromTick <= Tick < toTick and executes the
// barriers for those ticks — a partial Client.Replay for restore tests.
func drive(t *testing.T, c *Client, rs *ReplayScript, fromTick, toTick, workers int) {
	t.Helper()
	next := 0
	for next < len(rs.Steps) && rs.Steps[next].Tick < fromTick {
		next++
	}
	for tick := fromTick; tick < toTick; tick++ {
		var batch []Event
		for next < len(rs.Steps) && rs.Steps[next].Tick == tick {
			batch = append(batch, rs.Steps[next].Events...)
			next++
		}
		if err := c.sendAll(batch, workers); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if _, err := c.Tick(1); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
	}
}

// TestReplayDeterministicAcrossReruns is the core replay guarantee: the
// same script against a fresh server yields a byte-identical placement
// log, run after run.
func TestReplayDeterministicAcrossReruns(t *testing.T) {
	rs := smokeScript()
	a := runScript(t, Config{Seed: 9}, rs, 1)
	b := runScript(t, Config{Seed: 9}, rs, 1)
	if joinLog(a) != joinLog(b) {
		t.Fatal("two identical runs diverged")
	}
}

// TestReplayDeterministicAcrossTickWorkers pins worker-count neutrality:
// the engine's parallel tick width must not leak into placement.
func TestReplayDeterministicAcrossTickWorkers(t *testing.T) {
	rs := smokeScript()
	ref := runScript(t, Config{Seed: 9, TickWorkers: 1}, rs, 2)
	for _, w := range []int{2, 4} {
		got := runScript(t, Config{Seed: 9, TickWorkers: w}, rs, 2)
		if joinLog(got) != joinLog(ref) {
			t.Fatalf("TickWorkers=%d diverged from TickWorkers=1", w)
		}
	}
}

// TestReplayDeterministicAcrossClientWorkers pins interleaving
// neutrality: concurrent senders racing the intake queue in any order
// produce the same run, because events carry Seq and the barrier sorts.
func TestReplayDeterministicAcrossClientWorkers(t *testing.T) {
	rs := smokeScript()
	ref := runScript(t, Config{Seed: 9}, rs, 1)
	for _, w := range []int{3, 8} {
		got := runScript(t, Config{Seed: 9}, rs, w)
		if joinLog(got) != joinLog(ref) {
			t.Fatalf("client workers=%d diverged from workers=1", w)
		}
	}
}

// TestReplayThroughCheckpointRestore is the crash-safety headline: a run
// interrupted mid-script (checkpoint, then the process "dies" without a
// graceful shutdown) restores and finishes with a placement log
// byte-identical to the uninterrupted run — even when the restored
// server uses a different TickWorkers count.
func TestReplayThroughCheckpointRestore(t *testing.T) {
	rs := smokeScript()
	full := runScript(t, Config{Seed: 9}, rs, 2)

	const cut = 18 // mid-script: after the crash fault, before the repair
	dir := t.TempDir()
	_, c1 := newTestServer(t, Config{Seed: 9, Dir: dir})
	drive(t, c1, rs, 0, cut, 2)
	if err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// No shutdown: the first server is simply abandoned, as a crash
	// would leave it. The journal was flushed at every tick barrier.

	s2, c2 := newTestServer(t, Config{Seed: 9, Dir: dir, Restore: true, TickWorkers: 4})
	if got := s2.Snapshot().Tick; got != cut {
		t.Fatalf("restored to tick %d, want %d", got, cut)
	}
	drive(t, c2, rs, cut, rs.Ticks, 2)

	log, err := c2.Log(0)
	if err != nil {
		t.Fatal(err)
	}
	if joinLog(log) != joinLog(full) {
		t.Fatal("restored run diverged from the uninterrupted run")
	}
}

// TestRestoreRefusesIncompatibleCheckpoint pins the compatibility rule:
// a journal taken under one (scenario, seed, round period) must not be
// replayed under another.
func TestRestoreRefusesIncompatibleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, Config{Seed: 9, Dir: dir})
	drive(t, c, smokeScript(), 0, 5, 1)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	if _, err := New(Config{Seed: 10, Dir: dir, Restore: true}); err == nil {
		t.Fatal("restore with a different seed should fail")
	}
	if _, err := New(Config{Seed: 9, RoundTicks: 5, Dir: dir, Restore: true}); err == nil {
		t.Fatal("restore with a different round period should fail")
	}
	if _, err := New(Config{Seed: 9, Dir: dir}); err == nil {
		t.Fatal("reusing a journal directory without Restore should fail")
	}
}

// testBundle trains one small prediction bundle for the whole package
// (training is the expensive part; every test shares it).
var (
	bundleOnce sync.Once
	bundleVal  *predict.Bundle
	bundleErr  error
)

func testBundle(t *testing.T) *predict.Bundle {
	t.Helper()
	bundleOnce.Do(func() {
		opts := predict.DefaultHarvestOpts(11)
		opts.Ticks = 700
		h, err := predict.Collect(opts)
		if err != nil {
			bundleErr = err
			return
		}
		bundleVal, bundleErr = predict.Train(h, predict.DefaultTrainConfig(12))
	})
	if bundleErr != nil {
		t.Fatal(bundleErr)
	}
	return bundleVal
}

// TestReplayDeterministicWithOnlineLearning closes the loop on the
// virtual-time learning path: with a live bundle, the ML admission gate
// and synchronous retrains enabled, replay is still byte-identical —
// and the calibration window actually fills.
func TestReplayDeterministicWithOnlineLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	cfg := Config{
		Seed:               9,
		Bundle:             testBundle(t),
		MinPredictedSLA:    0.2,
		OnlineRetrainEvery: 15,
	}
	rs := smokeScript()
	a := runScript(t, cfg, rs, 2)
	b := runScript(t, cfg, rs, 3)
	if joinLog(a) != joinLog(b) {
		t.Fatal("online-learning replay diverged across runs")
	}

	_, c := newTestServer(t, cfg)
	if _, err := c.Replay(rs, 2); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Calibration == nil || h.Calibration.Pairs == 0 {
		t.Fatal("calibration window empty despite a live bundle")
	}
	if h.Online == nil || h.Online.Retrains == 0 {
		t.Fatalf("online stats %+v: expected at least one synchronous retrain", h.Online)
	}
}
