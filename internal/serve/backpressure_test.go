package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rawPost sends one event without the client's retry loop, returning
// the status code and Retry-After header.
func rawPost(t *testing.T, base, path string, body any) (int, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestBackpressureBound pins the intake contract exactly: with a queue
// of depth 8 and no ticks, the 9th event is refused with 429 and a
// Retry-After hint; one tick drains the queue and intake reopens.
func TestBackpressureBound(t *testing.T) {
	const depth = 8
	_, c := newTestServer(t, Config{Seed: 5, QueueDepth: depth})

	for i := 0; i < depth; i++ {
		code, _ := rawPost(t, c.Base, "/v1/telemetry", telemetryWire{
			TelemetryReq: TelemetryReq{Name: fmt.Sprintf("t-%d", i), RPS: 1},
		})
		if code != http.StatusAccepted {
			t.Fatalf("event %d: got %d, want 202", i, code)
		}
	}
	code, retry := rawPost(t, c.Base, "/v1/telemetry", telemetryWire{
		TelemetryReq: TelemetryReq{Name: "overflow", RPS: 1},
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("event %d: got %d, want 429", depth, code)
	}
	if retry == "" {
		t.Fatal("429 without Retry-After")
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.QueueLen != depth || h.QueueCap != depth {
		t.Fatalf("queue %d/%d, want %d/%d", h.QueueLen, h.QueueCap, depth, depth)
	}

	if _, err := c.Tick(1); err != nil {
		t.Fatal(err)
	}
	if code, _ := rawPost(t, c.Base, "/v1/telemetry", telemetryWire{
		TelemetryReq: TelemetryReq{Name: "after-drain", RPS: 1},
	}); code != http.StatusAccepted {
		t.Fatalf("post-drain event: got %d, want 202", code)
	}
}

// TestBackpressureUnderOverload floods the service with ~10x more
// events than the queue holds, from concurrent senders, while ticks
// keep running. The assertions are the robustness claims: the queue
// never exceeds its bound, overload surfaces as 429 (not latency, not
// growth), rounds keep progressing, and every single 202 is honoured —
// accepted telemetry is applied or counted, never silently lost.
func TestBackpressureUnderOverload(t *testing.T) {
	const (
		depth   = 16
		senders = 8
		each    = 20 // 8*20 = 160 events ~ 10x the queue bound
	)
	s, c := newTestServer(t, Config{Seed: 5, QueueDepth: depth})

	var accepted, refused, maxQueue atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				code, _ := rawPost(t, c.Base, "/v1/telemetry", telemetryWire{
					TelemetryReq: TelemetryReq{Name: fmt.Sprintf("s%d-%d", w, i), RPS: 1},
				})
				switch code {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					refused.Add(1)
				default:
					t.Errorf("unexpected status %d", code)
				}
			}
		}(w)
	}

	// Tick concurrently with the flood, watching the queue bound. Ticks
	// hold until the flood has tripped at least one 429: with no drain
	// running, 160 sends against a 16-slot queue must refuse some, so
	// the overload observation cannot race the drain on a loaded
	// machine — the remaining flood then runs against live ticking.
	tickDone := make(chan struct{})
	floodDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for refused.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		for {
			if h, err := c.Health(); err == nil {
				if int64(h.QueueLen) > maxQueue.Load() {
					maxQueue.Store(int64(h.QueueLen))
				}
			}
			if _, err := c.Tick(1); err != nil {
				t.Error(err)
				return
			}
			select {
			case <-floodDone:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(floodDone)
	<-tickDone
	if _, err := c.Tick(1); err != nil { // final barrier drains stragglers
		t.Fatal(err)
	}

	if got := accepted.Load() + refused.Load(); got != senders*each {
		t.Fatalf("accounted %d of %d sends", got, senders*each)
	}
	if refused.Load() == 0 {
		t.Fatal("overload never produced a 429 — queue is not bounding")
	}
	if maxQueue.Load() > depth {
		t.Fatalf("queue observed at %d, bound is %d", maxQueue.Load(), depth)
	}

	// Every 202 was honoured: all accepted telemetry named unknown VMs,
	// so each applied event increments the dropped-telemetry counter.
	snap := s.Snapshot()
	if int64(snap.DroppedTelemetry) != accepted.Load() {
		t.Fatalf("accepted %d events but engine applied %d — events lost after 202",
			accepted.Load(), snap.DroppedTelemetry)
	}
	if snap.Tick == 0 {
		t.Fatal("no ticks progressed during the flood")
	}
}
