package serve

import (
	"fmt"
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/trace"
)

// Event is one externally supplied input to the placement service: a VM
// offer, a telemetry report or a fault notification. Events are the only
// way the outside world mutates the engine — everything else is a read —
// which is what makes the service replayable: the run's state is a pure
// function of (scenario seed, ordered event stream).
//
// Seq is the event's position in the canonical order. Replay clients
// assign it explicitly (so a tick's batch sorts the same way no matter
// how the HTTP requests interleave); live clients may omit it and the
// server stamps arrival order instead.
type Event struct {
	Seq       int64          `json:"seq"`
	Kind      string         `json:"kind"`
	Offer     *OfferReq      `json:"offer,omitempty"`
	Telemetry *TelemetryReq  `json:"telemetry,omitempty"`
	Fault     *FaultEventReq `json:"fault,omitempty"`
}

// Event kinds.
const (
	KindOffer     = "offer"
	KindTelemetry = "telemetry"
	KindFault     = "fault"
)

// OfferReq asks the service to admit one VM. Names are the client-facing
// identity: the service assigns the numeric VM ID deterministically at
// the tick barrier, so concurrent clients cannot race IDs.
type OfferReq struct {
	// Name uniquely identifies the VM to its owner; placement queries use
	// it. Duplicate names are rejected at apply time.
	Name string `json:"name"`
	// Class selects the service class ("file-hosting", "image-gallery",
	// "dynamic-web"; empty = dynamic-web).
	Class string `json:"class,omitempty"`
	// HomeDC homes the VM (and its client load) in one datacenter.
	HomeDC int `json:"home_dc"`
	// LifetimeTicks retires the VM that many ticks after admission
	// (0 = stays until shut down).
	LifetimeTicks int `json:"lifetime_ticks,omitempty"`
	// RPS is the offered request rate the admission controller sizes
	// against (0 = the class's base rate).
	RPS float64 `json:"rps,omitempty"`
	// PriceEURh prices the VM-hour (0 = the paper's 0.17).
	PriceEURh float64 `json:"price_eur_h,omitempty"`
}

// TelemetryReq updates the client-reported load of a served VM: from the
// next tick on, the VM's gateway sees this request stream instead of the
// one reported before. Unknown names are counted and dropped — telemetry
// is advisory, never an error that could wedge a client's pipeline.
type TelemetryReq struct {
	Name string  `json:"name"`
	RPS  float64 `json:"rps"`
	// BytesInReq/BytesOutReq/CPUTimeReq refine the per-request shape
	// (0 = keep the VM's class profile).
	BytesInReq  float64 `json:"bytes_in_req,omitempty"`
	BytesOutReq float64 `json:"bytes_out_req,omitempty"`
	CPUTimeReq  float64 `json:"cpu_time_req,omitempty"`
}

// FaultEventReq reports an infrastructure fault for the engine to apply
// at the next tick: a host crash or repair, a maintenance drain, or a
// whole-DC outage transition.
type FaultEventReq struct {
	// Kind is "crash", "repair", "drain", "takedown", "outage-start" or
	// "outage-end".
	Kind string `json:"kind"`
	PM   int    `json:"pm,omitempty"`
	DC   int    `json:"dc,omitempty"`
}

// faultKinds maps wire names to lifecycle fault kinds.
var faultKinds = map[string]lifecycle.FaultKind{
	"crash":        lifecycle.FaultCrash,
	"repair":       lifecycle.FaultRepair,
	"drain":        lifecycle.FaultDrainStart,
	"takedown":     lifecycle.FaultTakedown,
	"outage-start": lifecycle.FaultOutageStart,
	"outage-end":   lifecycle.FaultOutageEnd,
}

// classByName resolves a service-class wire name (empty = dynamic-web).
func classByName(name string) (trace.ServiceClass, error) {
	if name == "" {
		return trace.DynamicWeb, nil
	}
	for _, c := range trace.Classes() {
		if c.Name == name {
			return c, nil
		}
	}
	return trace.ServiceClass{}, fmt.Errorf("unknown service class %q", name)
}

// Validate rejects malformed events before they are accepted into the
// intake queue, so the journal only ever records applicable events.
func (e *Event) Validate(dcs, pms int) error {
	switch e.Kind {
	case KindOffer:
		o := e.Offer
		if o == nil {
			return fmt.Errorf("offer event without offer body")
		}
		if o.Name == "" {
			return fmt.Errorf("offer needs a name")
		}
		if o.HomeDC < 0 || o.HomeDC >= dcs {
			return fmt.Errorf("offer home_dc %d out of range [0,%d)", o.HomeDC, dcs)
		}
		if o.LifetimeTicks < 0 {
			return fmt.Errorf("offer lifetime_ticks must be >= 0")
		}
		if o.RPS < 0 {
			return fmt.Errorf("offer rps must be >= 0")
		}
		if _, err := classByName(o.Class); err != nil {
			return err
		}
	case KindTelemetry:
		t := e.Telemetry
		if t == nil {
			return fmt.Errorf("telemetry event without telemetry body")
		}
		if t.Name == "" {
			return fmt.Errorf("telemetry needs a name")
		}
		if t.RPS < 0 {
			return fmt.Errorf("telemetry rps must be >= 0")
		}
	case KindFault:
		f := e.Fault
		if f == nil {
			return fmt.Errorf("fault event without fault body")
		}
		kind, ok := faultKinds[f.Kind]
		if !ok {
			return fmt.Errorf("unknown fault kind %q", f.Kind)
		}
		switch kind {
		case lifecycle.FaultOutageStart, lifecycle.FaultOutageEnd:
			if f.DC < 0 || f.DC >= dcs {
				return fmt.Errorf("fault dc %d out of range [0,%d)", f.DC, dcs)
			}
		default:
			if f.PM < 0 || f.PM >= pms {
				return fmt.Errorf("fault pm %d out of range [0,%d)", f.PM, pms)
			}
		}
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	return nil
}

// arrival expands an accepted offer into the lifecycle arrival pushed at
// the tick barrier. The VM ID is assigned there, not here.
func (o *OfferReq) arrival(id model.VMID, tick int) lifecycle.Arrival {
	class, _ := classByName(o.Class) // validated at accept time
	price := o.PriceEURh
	if price <= 0 {
		price = 0.17
	}
	rps := o.RPS
	if rps <= 0 {
		rps = class.BaseRPS
	}
	return lifecycle.Arrival{
		Spec: model.VMSpec{
			ID:          id,
			Name:        o.Name,
			ImageSizeGB: 4,
			BaseMemMB:   256,
			MaxMemMB:    1024,
			Terms:       model.DefaultSLATerms,
			PriceEURh:   price,
			HomeDC:      model.DCID(o.HomeDC),
		},
		Class:         class,
		ArriveTick:    tick,
		LifetimeTicks: o.LifetimeTicks,
		Offered: model.Load{
			RPS:        rps,
			BytesInReq: class.BytesInReq,
			BytesOutRq: class.BytesOutReq,
			CPUTimeReq: class.CPUTimeReq,
		},
	}
}

// load is the telemetry report as a gateway load, with zero per-request
// fields backfilled from the VM's class profile.
func (t *TelemetryReq) load(class trace.ServiceClass) model.Load {
	l := model.Load{
		RPS:        t.RPS,
		BytesInReq: t.BytesInReq,
		BytesOutRq: t.BytesOutReq,
		CPUTimeReq: t.CPUTimeReq,
	}
	if l.BytesInReq <= 0 {
		l.BytesInReq = class.BytesInReq
	}
	if l.BytesOutRq <= 0 {
		l.BytesOutRq = class.BytesOutReq
	}
	if l.CPUTimeReq <= 0 {
		l.CPUTimeReq = class.CPUTimeReq
	}
	return l
}

// sortEvents orders a tick's intake batch canonically: by Seq, ties (two
// live clients racing the same server-stamped instant cannot happen, but
// a malformed replay script could) broken by kind then name so the order
// is still total. This sort is THE determinism barrier — after it, the
// batch is applied serially by the single engine goroutine.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Seq != evs[j].Seq {
			return evs[i].Seq < evs[j].Seq
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return eventName(&evs[i]) < eventName(&evs[j])
	})
}

// eventName is the tie-break identity of an event.
func eventName(e *Event) string {
	switch e.Kind {
	case KindOffer:
		return e.Offer.Name
	case KindTelemetry:
		return e.Telemetry.Name
	case KindFault:
		return fmt.Sprintf("%s/%d/%d", e.Fault.Kind, e.Fault.PM, e.Fault.DC)
	}
	return ""
}
