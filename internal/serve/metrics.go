package serve

import (
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// serveMetrics is every sink the placement service feeds: the service's
// own loop/journal/retrain families plus the engine, scheduler and
// lifecycle families wired through the same registry. The loop goroutine
// owns all recording except Rejected429 (HTTP handlers, atomic) and the
// GaugeFuncs (scrape-time reads of values that are already race-safe).
type serveMetrics struct {
	reg *obs.Registry

	Ticks         *obs.Counter
	EventsApplied *obs.Counter
	Accepted      *obs.Counter
	Rejected429   *obs.Counter
	Checkpoints   *obs.Counter

	RetrainKicked  *obs.Counter
	RetrainAdopted *obs.Counter
	RetrainFailed  *obs.Counter

	TickSeconds  *obs.Histogram
	FsyncSeconds *obs.Histogram

	JournalEntries *obs.Gauge
	JournalBytes   *obs.Gauge
	LastCheckpoint *obs.Gauge

	Engine *sim.EngineMetrics
	Sched  *sched.Metrics
	Life   *lifecycle.Metrics
}

// newServeMetrics registers the full service metric surface on one
// registry, including the process runtime gauges.
func newServeMetrics(r *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		reg: r,
		Ticks: r.Counter("mdcsim_serve_ticks_total",
			"Tick barriers executed (live and replayed)."),
		EventsApplied: r.Counter("mdcsim_serve_events_applied_total",
			"Accepted events folded into the engine at tick barriers."),
		Accepted: r.Counter("mdcsim_serve_events_accepted_total",
			"Events accepted into the intake queue (202)."),
		Rejected429: r.Counter("mdcsim_serve_rejected_429_total",
			"Events refused with 429 because the intake queue was full."),
		Checkpoints: r.Counter("mdcsim_serve_checkpoints_total",
			"Checkpoints written."),
		RetrainKicked: r.Counter("mdcsim_serve_retrain_kicked_total",
			"Background retrain cycles started."),
		RetrainAdopted: r.Counter("mdcsim_serve_retrain_adopted_total",
			"Retrained model bundles adopted at tick barriers."),
		RetrainFailed: r.Counter("mdcsim_serve_retrain_failed_total",
			"Retrain cycles that failed (previous models kept)."),
		TickSeconds: r.Histogram("mdcsim_serve_tick_seconds",
			"Whole tick-barrier wall latency: drain, journal, fsync, execute.",
			nil, obs.WallClock()),
		FsyncSeconds: r.Histogram("mdcsim_serve_wal_fsync_seconds",
			"WAL durability-barrier (Journal.Flush) wall latency.",
			nil, obs.WallClock()),
		JournalEntries: r.Gauge("mdcsim_serve_journal_entries",
			"Entries in the write-ahead journal."),
		JournalBytes: r.Gauge("mdcsim_serve_journal_bytes",
			"Bytes in the write-ahead journal."),
		LastCheckpoint: r.Gauge("mdcsim_serve_last_checkpoint_tick",
			"Tick certified by the latest checkpoint (-1 before any)."),
		Engine: sim.NewEngineMetrics(r),
		Sched:  sched.NewSchedMetrics(r),
		Life:   lifecycle.NewMetrics(r),
	}
	obs.RegisterRuntime(r)
	return m
}

// syncJournal refreshes the journal gauges after a flush or checkpoint.
func (m *serveMetrics) syncJournal(j *Journal) {
	if m == nil || j == nil {
		return
	}
	m.JournalEntries.Set(float64(j.Entries()))
	m.JournalBytes.Set(float64(j.Bytes()))
}
