package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/predict"
)

// pollWait spins until the retrainer hands back a result (cycles finish
// on a background goroutine).
func pollWait(t *testing.T, r *Retrainer) *retrainResult {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if res := r.Poll(); res != nil {
			return res
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("retrain cycle never finished")
	return nil
}

func testBudget() RetrainBudget {
	return RetrainBudget{
		Timeout:    time.Second,
		MaxRetries: 2,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
	}
}

// TestRetrainerRetriesWithBackoff injects a trainer that fails twice
// before succeeding and checks the whole budget mechanism: attempt
// counting, exponential backoff between failures, and a clean success.
func TestRetrainerRetriesWithBackoff(t *testing.T) {
	r := NewRetrainer(testBudget())
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }

	want := &predict.Bundle{}
	calls := 0
	ok := r.Kick(7, func(context.Context) (*predict.Bundle, error) {
		calls++
		if calls < 3 {
			return nil, errors.New("transient")
		}
		return want, nil
	})
	if !ok {
		t.Fatal("first Kick refused")
	}
	res := pollWait(t, r)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.bundle != want || res.tick != 7 {
		t.Fatalf("result bundle=%p tick=%d, want %p/7", res.bundle, res.tick, want)
	}
	if calls != 3 {
		t.Fatalf("trainer called %d times, want 3", calls)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff sleeps %v, want [10ms 20ms]", slept)
	}
	st := r.Stats()
	if st.Cycles != 1 || st.Attempts != 3 || st.Successes != 1 || st.GiveUps != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRetrainerGivesUpAfterBudget pins the terminal path: a trainer
// that never succeeds exhausts MaxRetries+1 attempts, the cycle ends
// with an error, and the retrainer is ready for the next kick.
func TestRetrainerGivesUpAfterBudget(t *testing.T) {
	r := NewRetrainer(testBudget())
	r.sleep = func(time.Duration) {}

	calls := 0
	r.Kick(1, func(context.Context) (*predict.Bundle, error) {
		calls++
		return nil, errors.New("hopeless")
	})
	res := pollWait(t, r)
	if res.err == nil {
		t.Fatal("give-up cycle returned no error")
	}
	if calls != 3 { // MaxRetries=2 -> 3 attempts
		t.Fatalf("trainer called %d times, want 3", calls)
	}
	if st := r.Stats(); st.GiveUps != 1 || st.Successes != 0 {
		t.Fatalf("stats %+v", st)
	}

	// The latch is clear: the next cycle can start and recover.
	if !r.Kick(2, func(context.Context) (*predict.Bundle, error) {
		return &predict.Bundle{}, nil
	}) {
		t.Fatal("Kick refused after a give-up was polled")
	}
	if res := pollWait(t, r); res.err != nil {
		t.Fatalf("recovery cycle failed: %v", res.err)
	}
}

// TestRetrainerSingleFlight pins the at-most-one-cycle rule: a kick
// while one is in flight is a no-op, and the serving path is never
// blocked waiting for it.
func TestRetrainerSingleFlight(t *testing.T) {
	r := NewRetrainer(testBudget())
	release := make(chan struct{})
	r.Kick(1, func(context.Context) (*predict.Bundle, error) {
		<-release
		return &predict.Bundle{}, nil
	})
	if r.Kick(2, func(context.Context) (*predict.Bundle, error) {
		t.Error("second trainer ran during the first cycle")
		return nil, nil
	}) {
		t.Fatal("Kick started a second in-flight cycle")
	}
	if res := r.Poll(); res != nil {
		t.Fatal("Poll returned a result before the cycle finished")
	}
	close(release)
	pollWait(t, r)
}

// TestRetrainerAttemptTimeout pins the per-attempt deadline: a trainer
// that hangs is abandoned at Timeout and the cycle proceeds to retry.
func TestRetrainerAttemptTimeout(t *testing.T) {
	b := testBudget()
	b.Timeout = 10 * time.Millisecond
	b.MaxRetries = 1
	r := NewRetrainer(b)
	r.sleep = func(time.Duration) {}

	// Atomic: the abandoned first attempt's goroutine has no
	// happens-before edge to the retry attempt that overlaps it.
	var calls atomic.Int64
	r.Kick(1, func(ctx context.Context) (*predict.Bundle, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // hang the first attempt past its deadline
			return nil, ctx.Err()
		}
		return &predict.Bundle{}, nil
	})
	res := pollWait(t, r)
	if res.err != nil {
		t.Fatalf("cycle failed despite a good retry: %v", res.err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("trainer called %d times, want timeout then success", got)
	}
}
