package serve

import (
	"math"
	"testing"
)

// TestCalibrationWindow pins the sliding-window mechanics: pairs
// accumulate to the window size, then evict oldest-first while the
// lifetime total keeps counting.
func TestCalibrationWindow(t *testing.T) {
	c := NewCalibration(3)
	if r := c.Report(); r.Pairs != 0 || r.MAPE != 0 || r.PearsonR != 0 {
		t.Fatalf("empty report %+v", r)
	}
	for i := 0; i < 5; i++ {
		c.Record(float64(i), float64(i))
	}
	r := c.Report()
	if r.Pairs != 3 || r.Total != 5 {
		t.Fatalf("pairs=%d total=%d, want 3/5", r.Pairs, r.Total)
	}
	// Perfect predictions: zero error, perfect correlation.
	if r.MAPE != 0 {
		t.Fatalf("MAPE %v for perfect predictions", r.MAPE)
	}
	if math.Abs(r.PearsonR-1) > 1e-12 {
		t.Fatalf("PearsonR %v for perfect predictions", r.PearsonR)
	}
}

// TestCalibrationMAPEFloor pins the near-zero-denominator guard: an
// observed SLA of 0 is measured against the 0.05 floor instead of
// dividing by zero.
func TestCalibrationMAPEFloor(t *testing.T) {
	c := NewCalibration(4)
	c.Record(0.5, 0)
	r := c.Report()
	want := 0.5 / minMAPEDenom
	if math.Abs(r.MAPE-want) > 1e-12 {
		t.Fatalf("MAPE %v, want %v (floored denominator)", r.MAPE, want)
	}
	if math.IsInf(r.MAPE, 0) || math.IsNaN(r.MAPE) {
		t.Fatalf("MAPE diverged: %v", r.MAPE)
	}
}

// TestCalibrationAnticorrelated sanity-checks the correlation sign: a
// predictor that moves against reality reports negative r.
func TestCalibrationAnticorrelated(t *testing.T) {
	c := NewCalibration(8)
	for i := 0; i < 8; i++ {
		c.Record(float64(i)/8, 1-float64(i)/8)
	}
	if r := c.Report(); r.PearsonR >= 0 {
		t.Fatalf("PearsonR %v for anticorrelated pairs, want < 0", r.PearsonR)
	}
}
