package serve

import (
	"math"

	"repro/internal/stats"
)

// minMAPEDenom floors the MAPE denominator: observed SLA sits in [0, 1]
// and regularly touches 0 under overload, where a literal percentage
// error diverges. Errors against near-zero observations are measured
// against this floor instead.
const minMAPEDenom = 0.05

// Calibration is the accountability window of the SLA predictor: every
// tick the engine loop records, per served VM, the model's predicted
// fulfilment next to the fulfilment the simulated gateway then measured.
// Report summarises the last N pairs as MAPE and Pearson correlation —
// the same two numbers the paper's Table I uses to argue the models are
// trustworthy, now computed continuously against live traffic.
//
// Owned by the engine-loop goroutine; queries read it through the
// published snapshot, never directly.
type Calibration struct {
	window int
	pred   []float64
	obs    []float64
	next   int // ring cursor
	full   bool
	total  int // lifetime pairs recorded
}

// NewCalibration builds a sliding window of n pairs (n <= 0 = 512).
func NewCalibration(n int) *Calibration {
	if n <= 0 {
		n = 512
	}
	return &Calibration{
		window: n,
		pred:   make([]float64, 0, n),
		obs:    make([]float64, 0, n),
	}
}

// Record appends one predicted/observed fulfilment pair, evicting the
// oldest once the window is full.
func (c *Calibration) Record(pred, obs float64) {
	c.total++
	if len(c.pred) < c.window {
		c.pred = append(c.pred, pred)
		c.obs = append(c.obs, obs)
		return
	}
	c.full = true
	c.pred[c.next] = pred
	c.obs[c.next] = obs
	c.next = (c.next + 1) % c.window
}

// CalibrationReport is the point-in-time calibration summary.
type CalibrationReport struct {
	// Pairs is how many prediction/observation pairs the window holds;
	// Total counts every pair ever recorded.
	Pairs int `json:"pairs"`
	Total int `json:"total"`
	// MAPE is the mean absolute percentage error of predicted vs observed
	// SLA over the window (denominator floored at 0.05).
	MAPE float64 `json:"mape"`
	// PearsonR is the linear correlation of predicted vs observed SLA
	// (0 with fewer than two pairs or zero variance).
	PearsonR float64 `json:"pearson_r"`
}

// Report summarises the current window.
func (c *Calibration) Report() CalibrationReport {
	r := CalibrationReport{Pairs: len(c.pred), Total: c.total}
	if len(c.pred) == 0 {
		return r
	}
	var sum float64
	for i := range c.pred {
		den := math.Abs(c.obs[i])
		if den < minMAPEDenom {
			den = minMAPEDenom
		}
		sum += math.Abs(c.pred[i]-c.obs[i]) / den
	}
	r.MAPE = sum / float64(len(c.pred))
	r.PearsonR = stats.Correlation(c.pred, c.obs)
	return r
}
