package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer starts a service plus an HTTP front end and returns a
// client pointed at it. The server is shut down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &Client{Base: ts.URL}
}

// Event builders with explicit Seq — the form replay scripts use.
func offerEv(seq int64, name string, dc int) Event {
	return Event{Seq: seq, Kind: KindOffer, Offer: &OfferReq{Name: name, HomeDC: dc}}
}

func telemEv(seq int64, name string, rps float64) Event {
	return Event{Seq: seq, Kind: KindTelemetry, Telemetry: &TelemetryReq{Name: name, RPS: rps}}
}

func faultEv(seq int64, kind string, pm int) Event {
	return Event{Seq: seq, Kind: KindFault, Fault: &FaultEventReq{Kind: kind, PM: pm}}
}

// smokeScript is a small mixed-workload replay: offers landing across
// several ticks, telemetry updates, one crash and its repair.
func smokeScript() *ReplayScript {
	return &ReplayScript{
		Ticks: 35,
		Steps: []ReplayStep{
			{Tick: 0, Events: []Event{
				offerEv(1, "web-0", 0),
				offerEv(2, "web-1", 1),
				telemEv(3, "web-0", 12),
			}},
			{Tick: 5, Events: []Event{
				offerEv(4, "api-0", 2),
				telemEv(5, "web-1", 30),
			}},
			{Tick: 12, Events: []Event{
				faultEv(6, "crash", 0),
				telemEv(7, "web-0", 45),
			}},
			{Tick: 20, Events: []Event{
				faultEv(8, "repair", 0),
				offerEv(9, "batch-0", 3),
			}},
		},
	}
}

// TestServeSmoke drives the full HTTP surface end to end in virtual
// time: offers are admitted and placed, telemetry lands, a crash is
// survived, the log grows one line per tick, and shutdown drains clean.
func TestServeSmoke(t *testing.T) {
	s, c := newTestServer(t, Config{Seed: 7})

	log, err := c.Replay(smokeScript(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 35 {
		t.Fatalf("expected 35 log lines (one per tick), got %d", len(log))
	}
	for i, ln := range log {
		if !strings.HasPrefix(ln, "t=") {
			t.Fatalf("log line %d malformed: %q", i, ln)
		}
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q, want ok", h.Status)
	}
	if h.Tick != 35 {
		t.Fatalf("health tick %d, want 35", h.Tick)
	}
	if h.Churn.Offered != 4 || h.Churn.Admitted != 4 {
		t.Fatalf("churn offered=%d admitted=%d, want 4/4", h.Churn.Offered, h.Churn.Admitted)
	}
	if h.Faults.Crashes != 1 {
		t.Fatalf("crashes %d, want 1", h.Faults.Crashes)
	}

	// Every offered VM must have reached "placed" by now (rounds at 10,
	// 20, 30 cover all arrivals).
	for _, name := range []string{"web-0", "web-1", "api-0", "batch-0"} {
		vs, ok := h.VMs[name]
		if !ok {
			t.Fatalf("vm %q missing from snapshot", name)
		}
		if vs.Status != StatusPlaced {
			t.Fatalf("vm %q status %q, want placed", name, vs.Status)
		}
		if vs.Host < 0 || vs.DC < 0 {
			t.Fatalf("vm %q placed but host=%d dc=%d", name, vs.Host, vs.DC)
		}
	}

	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); !snap.Draining {
		t.Fatal("snapshot not draining after shutdown")
	}
}

// TestServeValidation exercises the front door's reject paths: garbage
// bodies, unknown fields of the domain, and out-of-range references are
// 400s that never reach the intake queue.
func TestServeValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Seed: 1})

	cases := []struct {
		path string
		body string
	}{
		{"/v1/offers", `{"name":""}`},
		{"/v1/offers", `{"name":"x","home_dc":99}`},
		{"/v1/offers", `{"name":"x","home_dc":0,"class":"nope"}`},
		{"/v1/offers", `{"name":"x","home_dc":0,"rps":-1}`},
		{"/v1/offers", `{"name":"x","home_dc":0,"seq":-4}`},
		{"/v1/offers", `not json at all`},
		{"/v1/telemetry", `{"name":"","rps":1}`},
		{"/v1/telemetry", `{"name":"x","rps":-2}`},
		{"/v1/faults", `{"kind":"meteor"}`},
		{"/v1/faults", `{"kind":"crash","pm":1000}`},
		{"/v1/faults", `{"kind":"outage-start","dc":-1}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(c.Base+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s: got %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}

	// Nothing above may have been accepted.
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.QueueLen != 0 {
		t.Fatalf("queue holds %d events after pure-garbage traffic", h.QueueLen)
	}

	// Unknown VM lookups are 404, not empty bodies.
	resp, err := http.Get(c.Base + "/v1/placements?name=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("placements?name=ghost: got %d, want 404", resp.StatusCode)
	}
}

// TestServeWallClockMode checks the wall-clock service: ticks happen on
// their own, POST /v1/tick is refused (409), and shutdown still drains.
func TestServeWallClockMode(t *testing.T) {
	s, c := newTestServer(t, Config{Seed: 3, TickEvery: 2 * time.Millisecond})

	if err := c.Send(offerEv(0, "wall-0", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tick(1); err == nil {
		t.Fatal("POST /v1/tick should be rejected in wall-clock mode")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.Health()
		if err != nil {
			t.Fatal(err)
		}
		if vs, ok := h.VMs["wall-0"]; ok && vs.Status == StatusPlaced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wall-0 never placed under the wall-clock ticker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if st := s.Snapshot(); st.PendingAdmits != 0 {
		t.Fatalf("pending admits %d after drain", st.PendingAdmits)
	}
}

// TestServeDrainingRefusesOffers pins the drain contract: once shutdown
// starts, new offers get 503, while queries keep answering.
func TestServeDrainingRefusesOffers(t *testing.T) {
	_, c := newTestServer(t, Config{Seed: 2})
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	err := c.Send(offerEv(0, "late", 0))
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("offer after shutdown: got %v, want draining rejection", err)
	}
	if _, err := c.Health(); err != nil {
		t.Fatalf("health after shutdown: %v", err)
	}
}
