package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// A replay script drives the service through real HTTP in virtual time:
// each step's events are sent (possibly by many concurrent workers, in
// any interleaving), acknowledged, and then one POST /v1/tick executes
// the barrier. Because every event carries a client-assigned Seq and the
// barrier sorts the batch canonically, the resulting placement log is
// byte-identical across reruns, worker counts and server restarts — the
// property the replay tests pin down.

// ReplayStep is one tick's worth of scripted events.
type ReplayStep struct {
	// Tick is the virtual tick the events precede (events of step t are
	// applied at the barrier that executes tick t).
	Tick   int     `json:"tick"`
	Events []Event `json:"events"`
}

// ReplayScript is a full scripted run.
type ReplayScript struct {
	// Ticks is how many ticks to execute in total (must cover every
	// step's Tick).
	Ticks int          `json:"ticks"`
	Steps []ReplayStep `json:"steps"`
}

// Validate checks the script's internal consistency: steps ordered by
// tick, within range, and every event carrying an explicit Seq.
func (rs *ReplayScript) Validate() error {
	if rs.Ticks <= 0 {
		return fmt.Errorf("serve: replay script needs ticks > 0")
	}
	last := -1
	for i, st := range rs.Steps {
		if st.Tick < 0 || st.Tick >= rs.Ticks {
			return fmt.Errorf("serve: step %d at tick %d outside [0,%d)", i, st.Tick, rs.Ticks)
		}
		if st.Tick < last {
			return fmt.Errorf("serve: step %d at tick %d out of order", i, st.Tick)
		}
		last = st.Tick
		for j := range st.Events {
			if st.Events[j].Seq <= 0 {
				return fmt.Errorf("serve: step %d event %d: replay events must carry seq > 0", i, j)
			}
		}
	}
	return nil
}

// LoadReplayScript reads a JSON replay script from disk.
func LoadReplayScript(path string) (*ReplayScript, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs ReplayScript
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("serve: parsing replay script %s: %w", path, err)
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	return &rs, nil
}

// Client is a minimal HTTP client for the service, with the 429 retry
// loop every well-behaved caller needs: backpressure is the server
// telling the client to own the retry, and this client does.
type Client struct {
	Base string
	HTTP *http.Client
	// MaxRetries bounds 429 retries per send (0 = 50).
	MaxRetries int
	// RetryDelay is the pause between 429 retries (0 = 10ms).
	RetryDelay time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends one JSON POST and decodes the response when out is non-nil.
func (c *Client) post(path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, fmt.Errorf("serve: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(raw)))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// Send delivers one event, retrying on 429 backpressure with a bounded
// pause-and-retry loop. Any other failure is returned as-is.
func (c *Client) Send(ev Event) error {
	path, body := eventWire(ev)
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 50
	}
	delay := c.RetryDelay
	if delay <= 0 {
		delay = 10 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		code, err := c.post(path, body, nil)
		if code != http.StatusTooManyRequests {
			return err
		}
		if attempt >= retries {
			return fmt.Errorf("serve: still backpressured after %d retries: %w", retries, err)
		}
		time.Sleep(delay)
	}
}

// eventWire maps an event to its endpoint and wire body.
func eventWire(ev Event) (string, any) {
	switch ev.Kind {
	case KindOffer:
		return "/v1/offers", offerWire{Seq: ev.Seq, OfferReq: *ev.Offer}
	case KindTelemetry:
		return "/v1/telemetry", telemetryWire{Seq: ev.Seq, TelemetryReq: *ev.Telemetry}
	default:
		return "/v1/faults", faultWire{Seq: ev.Seq, FaultEventReq: *ev.Fault}
	}
}

// Tick advances virtual time n ticks.
func (c *Client) Tick(n int) (int, error) {
	var out struct {
		Tick int `json:"tick"`
	}
	if _, err := c.post("/v1/tick", map[string]int{"n": n}, &out); err != nil {
		return 0, err
	}
	return out.Tick, nil
}

// Checkpoint asks the service to write a checkpoint now.
func (c *Client) Checkpoint() error {
	_, err := c.post("/v1/checkpoint", struct{}{}, nil)
	return err
}

// Shutdown drains and stops the service.
func (c *Client) Shutdown() error {
	_, err := c.post("/v1/shutdown", struct{}{}, nil)
	return err
}

// Health fetches /healthz.
func (c *Client) Health() (*healthResponse, error) {
	resp, err := c.httpClient().Get(c.Base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Log fetches the placement log from line from.
func (c *Client) Log(from int) ([]string, error) {
	resp, err := c.httpClient().Get(fmt.Sprintf("%s/v1/log?from=%d", c.Base, from))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out, sc.Err()
}

// Replay drives a script against the service: each step's events are
// sent by `workers` concurrent senders (proving order-independence),
// then the tick barrier executes. Returns the final placement log.
func (c *Client) Replay(rs *ReplayScript, workers int) ([]string, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	next := 0
	for t := 0; t < rs.Ticks; t++ {
		var batch []Event
		for next < len(rs.Steps) && rs.Steps[next].Tick == t {
			batch = append(batch, rs.Steps[next].Events...)
			next++
		}
		if err := c.sendAll(batch, workers); err != nil {
			return nil, fmt.Errorf("serve: replay tick %d: %w", t, err)
		}
		if _, err := c.Tick(1); err != nil {
			return nil, fmt.Errorf("serve: replay tick %d: %w", t, err)
		}
	}
	return c.Log(0)
}

// sendAll fans a batch across workers and waits for every ACK. Events
// are distributed round-robin; because the server sorts each tick's
// batch by Seq, the assignment (and any interleaving) is irrelevant to
// the outcome — that is the point of the exercise.
func (c *Client) sendAll(batch []Event, workers int) error {
	if len(batch) == 0 {
		return nil
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(batch); i += workers {
				if err := c.Send(batch[i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
