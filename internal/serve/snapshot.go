package serve

import (
	"fmt"

	"repro/internal/lifecycle"
	"repro/internal/predict"
)

// VMStatus is one served VM's externally visible placement state.
type VMStatus struct {
	Name string `json:"name"`
	ID   int    `json:"id"`
	// Status walks pending → admitted → placed (→ departed), or ends at
	// rejected / duplicate.
	Status string `json:"status"`
	// Host/DC locate the VM while placed (-1 otherwise).
	Host int `json:"host"`
	DC   int `json:"dc"`
	// AdmitTick is when admission granted the VM (-1 before/never).
	AdmitTick int `json:"admit_tick"`
	// Deferrals counts admission deferrals so far.
	Deferrals int `json:"deferrals"`
}

// VM status values.
const (
	StatusPending   = "pending"
	StatusAdmitted  = "admitted"
	StatusPlaced    = "placed"
	StatusRejected  = "rejected"
	StatusDeparted  = "departed"
	StatusDuplicate = "duplicate"
)

// Snapshot is the read side of the single-writer split: the engine loop
// publishes a fresh immutable Snapshot after every tick, and every query
// handler reads the latest one — no handler ever touches engine state.
type Snapshot struct {
	Tick        int  `json:"tick"`
	Rounds      int  `json:"rounds"`
	ActiveVMs   int  `json:"active_vms"`
	UnplacedVMs int  `json:"unplaced_vms"`
	Degraded    bool `json:"degraded"`
	Draining    bool `json:"draining"`

	// Admission backlog: the ledgered admitted-but-unplaced VMs, the
	// fault-evicted VMs awaiting re-home, and the deferral queue.
	PendingAdmits   int `json:"pending_admits"`
	PendingRehomes  int `json:"pending_rehomes"`
	PendingDeferred int `json:"pending_deferred"`

	// Intake pathologies, counted not errored.
	DroppedTelemetry int `json:"dropped_telemetry"`
	DuplicateOffers  int `json:"duplicate_offers"`

	Churn  lifecycle.Stats      `json:"churn"`
	Faults lifecycle.FaultStats `json:"faults"`

	AvgSLA     float64 `json:"avg_sla"`
	RevenueEUR float64 `json:"revenue_eur"`
	EnergyEUR  float64 `json:"energy_eur"`
	PenaltyEUR float64 `json:"penalty_eur"`
	ProfitEUR  float64 `json:"profit_eur"`

	// Placement-log position, for replay clients verifying determinism.
	LogLines  int    `json:"log_lines"`
	LogDigest string `json:"log_digest"`

	// Durability position: write-ahead journal size and the tick the
	// latest checkpoint certified (-1 before any; zeros with no Dir).
	JournalEntries int   `json:"journal_entries"`
	JournalBytes   int64 `json:"journal_bytes"`
	LastCheckpoint int   `json:"last_checkpoint_tick"`

	VMs map[string]VMStatus `json:"vms"`

	Online      *predict.OnlineStats `json:"online,omitempty"`
	Retrain     *RetrainStats        `json:"retrain,omitempty"`
	Calibration *CalibrationReport   `json:"calibration,omitempty"`

	// Err reports a fatal engine error; the service stops ticking.
	Err string `json:"err,omitempty"`
}

// digestString renders a journal/log digest for the wire.
func digestString(d uint64) string { return fmt.Sprintf("%016x", d) }
