package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// scrape fetches and parses the server's /metrics exposition.
func scrape(t *testing.T, base string) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("wrong content type %q", ct)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	out := make(map[string]*obs.Family, len(fams))
	for i := range fams {
		out[fams[i].Name] = &fams[i]
	}
	return out
}

func famValue(t *testing.T, fams map[string]*obs.Family, name string) float64 {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("metric %s missing from exposition", name)
	}
	v, ok := f.Value()
	if !ok {
		t.Fatalf("metric %s is not a single-value family", name)
	}
	return v
}

// TestServeMetricsEndpoint runs the instrumented service end to end in
// virtual time with a journal: every subsystem family must show up on
// /metrics with values consistent with the work actually done, and
// /healthz must report the journal's size and the certified checkpoint.
func TestServeMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, Config{Seed: 11, Dir: dir, TraceSample: 1})

	for i := 0; i < 3; i++ {
		if err := c.Send(offerEv(int64(i+1), fmt.Sprintf("vm-%d", i), i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Tick(12); err != nil { // crosses at least one round barrier
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	fams := scrape(t, c.Base)
	if got := famValue(t, fams, "mdcsim_serve_ticks_total"); got != 12 {
		t.Fatalf("serve ticks = %v, want 12", got)
	}
	if got := famValue(t, fams, "mdcsim_engine_ticks_total"); got != 12 {
		t.Fatalf("engine ticks = %v, want 12", got)
	}
	if got := famValue(t, fams, "mdcsim_serve_events_accepted_total"); got != 3 {
		t.Fatalf("accepted = %v, want 3", got)
	}
	if got := famValue(t, fams, "mdcsim_serve_events_applied_total"); got != 3 {
		t.Fatalf("applied = %v, want 3", got)
	}
	if famValue(t, fams, "mdcsim_sched_rounds_total") < 1 {
		t.Fatal("no scheduling round recorded")
	}
	if famValue(t, fams, "mdcsim_lifecycle_offered_total") != 3 {
		t.Fatal("lifecycle offers not counted")
	}
	if famValue(t, fams, "mdcsim_serve_journal_entries") <= 0 ||
		famValue(t, fams, "mdcsim_serve_journal_bytes") <= 0 {
		t.Fatal("journal gauges not populated")
	}
	if got := famValue(t, fams, "mdcsim_serve_last_checkpoint_tick"); got != 12 {
		t.Fatalf("last checkpoint tick = %v, want 12", got)
	}
	if famValue(t, fams, "mdcsim_runtime_goroutines") <= 0 {
		t.Fatal("runtime gauges missing")
	}
	if f, ok := fams["mdcsim_serve_tick_seconds"]; !ok {
		t.Fatal("tick latency histogram missing")
	} else if count, _, ok := f.Histogram(); !ok || count != 12 {
		t.Fatalf("tick latency count = %d, want 12", count)
	}
	if f, ok := fams["mdcsim_serve_wal_fsync_seconds"]; !ok {
		t.Fatal("fsync latency histogram missing")
	} else if count, _, ok := f.Histogram(); !ok || count == 0 {
		t.Fatal("fsync latency never observed")
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.JournalEntries <= 0 || h.JournalBytes <= 0 {
		t.Fatalf("healthz journal position empty: %d entries, %d bytes", h.JournalEntries, h.JournalBytes)
	}
	if h.LastCheckpoint != 12 {
		t.Fatalf("healthz last checkpoint = %d, want 12", h.LastCheckpoint)
	}

	// The trace endpoint serves valid Chrome trace JSON holding the tick,
	// fsync and scheduler-phase spans.
	resp, err := http.Get(c.Base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range events {
		if name, ok := e["name"].(string); ok {
			seen[name] = true
		}
	}
	for _, want := range []string{"tick", "wal_fsync", "round_fill", "round_score", "round_reduce"} {
		if !seen[want] {
			t.Fatalf("trace missing %q spans (saw %v)", want, seen)
		}
	}

	// Drain; the shutdown checkpoint advances the certified tick.
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap.LastCheckpoint < 12 {
		t.Fatalf("shutdown checkpoint at tick %d, want >= 12", snap.LastCheckpoint)
	}
}

// TestServeMetrics429Counter pins the backpressure counter: overflowing
// a depth-2 queue by one shows up as exactly one 429 on /metrics.
func TestServeMetrics429Counter(t *testing.T) {
	_, c := newTestServer(t, Config{Seed: 3, QueueDepth: 2})
	for i := 0; i < 3; i++ {
		rawPost(t, c.Base, "/v1/telemetry", telemetryWire{
			TelemetryReq: TelemetryReq{Name: fmt.Sprintf("t-%d", i), RPS: 1},
		})
	}
	fams := scrape(t, c.Base)
	if got := famValue(t, fams, "mdcsim_serve_rejected_429_total"); got != 1 {
		t.Fatalf("429 counter = %v, want 1", got)
	}
	if got := famValue(t, fams, "mdcsim_serve_events_accepted_total"); got != 2 {
		t.Fatalf("accepted counter = %v, want 2", got)
	}
	if got := famValue(t, fams, "mdcsim_serve_queue_depth"); got != 2 {
		t.Fatalf("queue depth gauge = %v, want 2", got)
	}
}

// TestServeTraceFile: with TracePath set, shutdown writes a loadable
// Chrome trace file.
func TestServeTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	s, c := newTestServer(t, Config{Seed: 9, TraceSample: 1, TracePath: path})
	if _, err := c.Tick(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace file holds no spans")
	}
}

// TestServeMetricsInstrumentationPreservesDeterminism replays the smoke
// script twice — instrumentation and tracing fully on — and requires
// byte-identical placement logs: recording can never perturb placement.
func TestServeMetricsInstrumentationPreservesDeterminism(t *testing.T) {
	run := func() []string {
		_, c := newTestServer(t, Config{Seed: 21, TraceSample: 2})
		lines, err := c.Replay(smokeScript(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Shutdown(); err != nil {
			t.Fatal(err)
		}
		return lines
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d diverges:\n%s\n%s", i, a[i], b[i])
		}
	}
}
