package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The service's crash safety is event sourcing: the journal is a
// write-ahead log of every accepted external event plus every executed
// tick barrier, and the engine state is a pure function of (scenario
// spec, journal). Nothing else is persisted — a restore rebuilds the
// scenario and replays the journal through the exact apply path the live
// server used, which is also what makes restored runs bit-identical.
//
// Durability rule: a tick's batch is appended and flushed BEFORE it is
// applied ("apply only what is durable"), so a crash can lose accepted-
// but-unapplied events only while they still sit in the intake queue —
// never an event the engine acted on.

// JournalName and CheckpointName are the fixed file names inside a
// service's state directory.
const (
	JournalName    = "journal.jsonl"
	CheckpointName = "checkpoint.json"
)

// entry is one journal line: an accepted event, or a tick barrier.
// Events between two tick entries belong to the LATER tick — they were
// accepted after the earlier tick executed — and are recorded in their
// canonical (sorted) apply order.
type entry struct {
	Kind  string `json:"k"` // "ev" or "tick"
	Tick  int    `json:"t,omitempty"`
	Event *Event `json:"e,omitempty"`
}

// Journal appends entries to the WAL and keeps a running FNV-1a digest
// of every byte written, so a checkpoint can certify the prefix it
// covers and a restore can verify it replayed the same history.
type Journal struct {
	f       *os.File
	w       *bufio.Writer
	digest  uint64
	entries int
	bytes   int64
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit constants (hash/fnv does not
// export a resumable state, and the digest must be recomputable from a
// plain read of the file).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvAdd(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// OpenJournal opens (creating or appending) the journal in dir. When the
// file already holds entries, prior holds them (the restore path) and
// the digest resumes over the existing bytes.
//
// Crash hygiene: a torn final line (the process died mid-write) and any
// trailing event entries past the last tick barrier (flushed, but their
// tick never executed) are truncated away, not replayed — by the
// durability rule those events were still in the intake path, which is
// exactly the loss window the 202 contract grants. Keeping them would
// corrupt the canonical order of the next live tick's batch.
func OpenJournal(dir string) (*Journal, []entry, error) {
	path := filepath.Join(dir, JournalName)
	prior, digest, validLen, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validLen {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("serve: truncating journal tail: %w", err)
		}
	}
	return &Journal{f: f, w: bufio.NewWriter(f), digest: digest, entries: len(prior), bytes: validLen}, prior, nil
}

// readJournal loads the valid prefix of an existing journal (absent =
// empty): every entry up to and including the last tick barrier. It
// returns the entries, the digest over their bytes, and the prefix's
// exact byte length (for truncation). A malformed line followed by more
// lines is real corruption and errors out; only a torn tail is forgiven.
func readJournal(path string) ([]entry, uint64, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fnvOffset, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	var out []entry
	var offset, validLen int64
	digest, validDigest := fnvOffset, fnvOffset
	valid := 0
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		nl := -1
		for i, c := range data {
			if c == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // torn tail: no newline, the write never completed
		}
		line := data[:nl+1]
		var e entry
		if err := json.Unmarshal(line[:nl], &e); err != nil {
			if int64(len(line)) == int64(len(data)) {
				break // torn tail: malformed final line
			}
			return nil, 0, 0, fmt.Errorf("serve: corrupt journal line %d: %w", lineNo, err)
		}
		offset += int64(len(line))
		digest = fnvAdd(digest, line)
		out = append(out, e)
		if e.Kind == "tick" {
			valid = len(out)
			validLen = offset
			validDigest = digest
		}
		data = data[nl+1:]
	}
	return out[:valid], validDigest, validLen, nil
}

// Append writes one entry (buffered; call Flush before acting on it).
func (j *Journal) Append(e entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	j.digest = fnvAdd(j.digest, line)
	j.entries++
	j.bytes += int64(len(line))
	return nil
}

// Flush pushes buffered entries to the OS — the durability barrier the
// engine loop crosses before applying a batch.
func (j *Journal) Flush() error { return j.w.Flush() }

// Digest returns the running FNV-1a digest over all bytes written.
func (j *Journal) Digest() uint64 { return j.digest }

// Entries returns how many entries the journal holds.
func (j *Journal) Entries() int { return j.entries }

// Bytes returns the journal's byte length (valid prefix plus appends).
func (j *Journal) Bytes() int64 { return j.bytes }

// Close flushes and closes the file.
func (j *Journal) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Checkpoint is the periodic snapshot's metadata: which configuration
// the journal belongs to and how far it certifiably reached. The journal
// is the state; the checkpoint exists to refuse incompatible restores
// (compatibility rule: Scenario, Seed and RoundTicks must match, because
// any of them changes the placement history — TickWorkers is recorded
// for information but deliberately NOT checked, since engine ticks are
// byte-identical at any worker count) and to verify the replayed prefix
// digest.
type Checkpoint struct {
	Scenario    string `json:"scenario"`
	Seed        uint64 `json:"seed"`
	RoundTicks  int    `json:"round_ticks"`
	TickWorkers int    `json:"tick_workers"`

	// Tick is the next tick the engine would execute; Entries/Digest
	// certify the journal prefix producing that state; LogLines/LogDigest
	// pin the placement log the replay must regenerate.
	Tick      int    `json:"tick"`
	Entries   int    `json:"entries"`
	Digest    uint64 `json:"digest"`
	LogLines  int    `json:"log_lines"`
	LogDigest uint64 `json:"log_digest"`
}

// WriteCheckpoint atomically replaces the checkpoint file in dir.
func WriteCheckpoint(dir string, cp Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, CheckpointName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, CheckpointName))
}

// ReadCheckpoint loads the checkpoint from dir; ok is false when none
// exists (a fresh directory).
func ReadCheckpoint(dir string) (Checkpoint, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointName))
	if os.IsNotExist(err) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, false, fmt.Errorf("serve: corrupt checkpoint: %w", err)
	}
	return cp, true, nil
}

// Compatible checks the restore compatibility rule against a running
// configuration, returning a descriptive error on the first mismatch.
func (cp Checkpoint) Compatible(scenario string, seed uint64, roundTicks int) error {
	if cp.Scenario != scenario {
		return fmt.Errorf("serve: checkpoint is for scenario %q, server runs %q", cp.Scenario, scenario)
	}
	if cp.Seed != seed {
		return fmt.Errorf("serve: checkpoint seed %d != server seed %d", cp.Seed, seed)
	}
	if cp.RoundTicks != roundTicks {
		return fmt.Errorf("serve: checkpoint round period %d != server %d", cp.RoundTicks, roundTicks)
	}
	return nil
}
