// Package serve turns the simulated multi-DC manager into a long-running
// placement service: an HTTP front door accepts VM offers, telemetry and
// fault reports, a single engine goroutine folds them into scheduling
// rounds, and every accepted event is journaled so a crashed service
// restores bit-identically.
//
// Concurrency model — the single-writer rule: exactly one goroutine (the
// loop) owns the engine, the lifecycle runner, the online learner and
// every other piece of mutable simulation state. HTTP handlers never
// touch any of it; they communicate through two bounded channels (events
// for data, ctl for commands) and read the immutable Snapshot the loop
// publishes after every tick. Backpressure is structural: the events
// channel's capacity IS the intake memory bound, and a full channel
// turns into an HTTP 429 at the front door, never into unbounded growth.
package serve

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config assembles a placement service.
type Config struct {
	// Scenario names the preset fleet to serve on (default ServeBase).
	Scenario string
	Seed     uint64
	// QueueDepth bounds the intake queue; a full queue answers 429
	// (default 64). Events stay in the queue until the next tick barrier.
	QueueDepth int
	// RoundTicks is the scheduling period (default 10, the paper's value).
	RoundTicks int
	// RatePerTick/Burst put a token-bucket rate limiter in front of the
	// admission gates (0 = unlimited).
	RatePerTick float64
	Burst       float64
	// TickWorkers sets the engine's parallel tick width (ticks are
	// byte-identical at any count).
	TickWorkers int
	// TickEvery drives ticks from the wall clock; 0 means virtual time —
	// the replay mode, where POST /v1/tick is the only clock and every
	// run is bit-reproducible.
	TickEvery time.Duration
	// Dir is the state directory for the journal and checkpoints
	// ("" = no persistence).
	Dir string
	// Restore replays an existing journal in Dir before serving.
	Restore bool
	// CheckpointEvery writes a checkpoint every n ticks (0 = only on
	// demand and at shutdown).
	CheckpointEvery int
	// Bundle supplies the learned predictors for admission and
	// calibration (nil = capacity gate only, no calibration).
	Bundle *predict.Bundle
	// MinPredictedSLA enables the predicted-SLA admission gate.
	MinPredictedSLA float64
	// OnlineRetrainEvery enables online learning with that refit period in
	// ticks (0 = frozen models). Requires Bundle.
	OnlineRetrainEvery int
	// RetrainBudget bounds background refits (wall-clock mode only; in
	// virtual time refits run synchronously at tick barriers so runs stay
	// deterministic).
	RetrainBudget RetrainBudget
	// CalibWindow sizes the predicted-vs-observed SLA window (0 = 512).
	CalibWindow int
	// RequestTimeout bounds every control-plane request (tick, checkpoint,
	// shutdown) waiting on the engine loop (0 = 30s): a busy engine turns
	// into a timely 503, never a hung client.
	RequestTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default — profiling endpoints are opt-in).
	EnablePprof bool
	// TraceSample enables phase tracing: one tick in every TraceSample
	// is traced (0 = tracing off). Spans are served at GET /debug/trace
	// and, when TracePath is set, written there as Chrome trace-event
	// JSON at shutdown.
	TraceSample int
	TracePath   string
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// withDefaults fills the config's zero values.
func (c Config) withDefaults() Config {
	if c.Scenario == "" {
		c.Scenario = scenario.ServeBase
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RoundTicks <= 0 {
		c.RoundTicks = 10
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// vmState is the loop's bookkeeping for one served VM.
type vmState struct {
	name      string
	id        model.VMID
	status    string
	admitTick int
	deferrals int
	host      model.PMID
	dc        model.DCID
	home      model.DCID
	class     trace.ServiceClass
	lastLoad  model.Load
	hasLoad   bool
}

// decision is one admission verdict of the current tick, in resolve
// order, for the placement log.
type decision struct {
	name    string
	verdict string
}

// ctl commands.
type ctlKind int

const (
	ctlTick ctlKind = iota
	ctlCheckpoint
	ctlShutdown
)

// ctlMsg is one control command. resp must be buffered (cap 1) so the
// loop can answer and move on even if the requester's context died.
type ctlMsg struct {
	kind ctlKind
	n    int
	resp chan ctlResp
}

type ctlResp struct {
	tick int
	err  error
}

// loop is the engine-owning goroutine's state. Only run() and the
// functions it calls may touch the non-atomic fields after Start.
type loop struct {
	cfg           Config
	deterministic bool // virtual time: ticks only via ctl, retrains sync

	sc      *scenario.Scenario
	world   *sim.World
	mgr     *core.Manager
	runner  *lifecycle.Runner
	faults  *lifecycle.FaultRunner
	overlay *Overlay
	online  *predict.Online
	bundle  *predict.Bundle // admission/calibration models (nil = none)
	calib   *Calibration
	retr    *Retrainer // wall-clock mode only
	journal *Journal
	bf      *sched.BestFit // the manager's scheduler, kept for round-phase spans
	met     *serveMetrics
	tr      *obs.Tracer // nil = tracing off

	events chan Event
	ctl    chan ctlMsg
	done   chan struct{}

	snap     atomic.Pointer[Snapshot]
	draining atomic.Bool
	seq      atomic.Int64 // server-side stamp for clients that omit Seq

	// Owner-goroutine state.
	vms        map[string]*vmState
	byID       map[model.VMID]*vmState
	nextID     int
	decisions  []decision
	batch      []Event
	prevRounds int
	dropTelem  int
	dupOffers  int
	restoring  bool
	fatalErr   error

	sinceCheckpoint    int
	lastCheckpointTick int
	logDigest          uint64
	econ               tickEcon // last tick's economics, kept so off-tick republish keeps them

	// lines is the placement log; the loop appends, /v1/log reads.
	linesMu sync.Mutex
	lines   []string

	calScratch predict.Scratch
}

// newLoop builds the whole service stack (scenario, manager, learner,
// journal) and, when restoring, replays the journal through the same
// apply path live ticks use. It does not start the goroutine.
func newLoop(cfg Config) (*loop, error) {
	cfg = cfg.withDefaults()
	if cfg.OnlineRetrainEvery > 0 && cfg.Bundle == nil {
		return nil, fmt.Errorf("serve: OnlineRetrainEvery requires Bundle")
	}
	spec, err := scenario.Preset(cfg.Scenario, cfg.Seed)
	if err != nil {
		return nil, err
	}
	spec.TickWorkers = cfg.TickWorkers

	l := &loop{
		cfg:                cfg,
		deterministic:      cfg.TickEvery <= 0,
		events:             make(chan Event, cfg.QueueDepth),
		ctl:                make(chan ctlMsg),
		done:               make(chan struct{}),
		vms:                make(map[string]*vmState),
		byID:               make(map[model.VMID]*vmState),
		nextID:             spec.VMs,
		lastCheckpointTick: -1,
		logDigest:          fnvOffset,
	}
	reg := obs.NewRegistry()
	l.met = newServeMetrics(reg)
	l.met.LastCheckpoint.Set(-1)
	reg.GaugeFunc("mdcsim_serve_queue_depth",
		"Events waiting in the bounded intake queue.",
		func() float64 { return float64(len(l.events)) })
	reg.GaugeFunc("mdcsim_serve_queue_cap",
		"Intake queue capacity — the service's intake memory bound.",
		func() float64 { return float64(cap(l.events)) })
	if cfg.TraceSample > 0 {
		l.tr = obs.NewTracer(0, cfg.TraceSample)
	}
	spec.WrapWorkload = func(base sim.Workload) sim.Workload {
		sources := spec.DCs
		if g, ok := base.(*trace.Generator); ok {
			sources = g.Sources()
		}
		l.overlay = NewOverlay(base, sources)
		return l.overlay
	}
	sc, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	l.sc = sc
	l.world = sc.World

	if cfg.OnlineRetrainEvery > 0 {
		l.online, err = predict.NewOnline(cfg.Bundle, predict.DefaultTrainConfig(cfg.Seed), 0, cfg.OnlineRetrainEvery)
		if err != nil {
			return nil, err
		}
		l.bundle = l.online.Bundle
		if !l.deterministic {
			l.retr = NewRetrainer(cfg.RetrainBudget)
		}
	} else {
		l.bundle = cfg.Bundle
	}
	l.calib = NewCalibration(cfg.CalibWindow)

	pol := core.AdmissionPolicy{
		Bundle:          l.bundle,
		MinPredictedSLA: cfg.MinPredictedSLA,
	}
	if cfg.RatePerTick > 0 {
		pol.Rate = &core.RateLimit{RatePerTick: cfg.RatePerTick, Burst: cfg.Burst}
	}
	script := sc.Script
	if script == nil {
		script = &lifecycle.Script{}
	}
	l.runner = lifecycle.NewRunner(script)
	l.runner.OnResolve = l.onResolve
	l.faults = lifecycle.NewFaultRunner(sc.Faults)

	l.world.SetMetrics(l.met.Engine)
	cost := sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
	l.bf = sched.NewBestFit(cost, sched.NewOverbooked())
	l.bf.SetMetrics(l.met.Sched)
	l.mgr, err = core.NewManager(core.ManagerConfig{
		World:      sc.World,
		Scheduler:  l.bf,
		RoundTicks: cfg.RoundTicks,
		Lifecycle:  l.runner,
		Admission:  pol,
		Faults:     l.faults,
	})
	if err != nil {
		return nil, err
	}
	if err := l.world.PlaceInitial(sc.HomePlacement()); err != nil {
		return nil, err
	}

	if cfg.Dir != "" {
		journal, prior, err := OpenJournal(cfg.Dir)
		if err != nil {
			return nil, err
		}
		l.journal = journal
		if len(prior) > 0 && !cfg.Restore {
			journal.Close()
			return nil, fmt.Errorf("serve: %s already holds a journal (%d entries); pass Restore to resume it", cfg.Dir, len(prior))
		}
		if cfg.Restore {
			if err := l.restore(prior); err != nil {
				journal.Close()
				return nil, err
			}
		}
		l.met.syncJournal(l.journal)
	} else if cfg.Restore {
		return nil, fmt.Errorf("serve: Restore requires Dir")
	}

	l.publish()
	return l, nil
}

// start launches the engine goroutine.
func (l *loop) start() { go l.run() }

// run is the engine goroutine: control commands always, wall-clock ticks
// when configured. Events are deliberately NOT selected on — they wait in
// the bounded queue until a tick barrier drains them, which is what makes
// the queue a real memory bound and the apply order canonical.
func (l *loop) run() {
	defer close(l.done)
	var tickC <-chan time.Time
	if l.cfg.TickEvery > 0 {
		tk := time.NewTicker(l.cfg.TickEvery)
		defer tk.Stop()
		tickC = tk.C
	}
	for {
		select {
		case m := <-l.ctl:
			switch m.kind {
			case ctlTick:
				var err error
				for i := 0; i < m.n && err == nil; i++ {
					err = l.tickOnce()
				}
				m.resp <- ctlResp{tick: l.world.Tick(), err: err}
			case ctlCheckpoint:
				m.resp <- ctlResp{tick: l.world.Tick(), err: l.checkpointNow()}
			case ctlShutdown:
				err := l.drainAndStop()
				m.resp <- ctlResp{tick: l.world.Tick(), err: err}
				return
			}
		case <-tickC:
			if err := l.tickOnce(); err != nil {
				l.cfg.Logf("serve: engine stopped: %v", err)
				tickC = nil // keep answering control; stop the clock
			}
		}
	}
}

// tickOnce is the tick barrier: drain the intake queue, sort the batch
// into canonical order, journal it durably, then execute. The drain takes
// len(events) — events racing in after the snapshot wait for the next
// barrier, so concurrent senders can never stretch a batch unboundedly.
func (l *loop) tickOnce() error {
	if l.fatalErr != nil {
		return l.fatalErr
	}
	t0 := time.Now()
	l.tr.SampleTick(l.world.Tick())
	n := len(l.events)
	l.batch = l.batch[:0]
	for i := 0; i < n; i++ {
		l.batch = append(l.batch, <-l.events)
	}
	sortEvents(l.batch)
	if l.journal != nil {
		for i := range l.batch {
			if err := l.journal.Append(entry{Kind: "ev", Event: &l.batch[i]}); err != nil {
				return l.fatal(err)
			}
		}
		if err := l.journal.Append(entry{Kind: "tick", Tick: l.world.Tick()}); err != nil {
			return l.fatal(err)
		}
		// Durability barrier: apply only what is journaled.
		f0 := time.Now()
		if err := l.journal.Flush(); err != nil {
			return l.fatal(err)
		}
		fdur := time.Since(f0)
		l.met.FsyncSeconds.Observe(fdur.Seconds())
		l.tr.Record("wal_fsync", "journal", tidJournal, f0, fdur, false)
		l.met.syncJournal(l.journal)
	}
	if err := l.execTick(l.batch); err != nil {
		return l.fatal(err)
	}
	dur := time.Since(t0)
	l.met.TickSeconds.Observe(dur.Seconds())
	l.tr.Record("tick", "engine", tidEngine, t0, dur, false)
	return nil
}

// Trace timeline rows: one logical "thread" per subsystem so the Chrome
// trace viewer stacks engine ticks, journal fsyncs, scheduler phases and
// HTTP intake on separate tracks.
const (
	tidEngine  = 1
	tidJournal = 2
	tidSched   = 3
	tidHTTP    = 4
)

// execTick executes one tick over an already-canonical batch. It is the
// single code path shared by live ticks and journal restore — which is
// the whole crash-safety argument: a restored run re-executes the exact
// function the live run executed.
func (l *loop) execTick(batch []Event) error {
	t := l.world.Tick()
	l.decisions = l.decisions[:0]
	for i := range batch {
		l.applyEvent(t, &batch[i])
	}
	st, err := l.mgr.Step()
	if err != nil {
		return err
	}
	l.met.Ticks.Inc()
	l.met.EventsApplied.Add(uint64(len(batch)))
	l.met.Life.Observe(l.runner.Stats(), l.faults.Stats())
	if l.tr != nil && l.mgr.Rounds() > l.prevRounds {
		// A scheduling round ran inside mgr.Step; synthesize its phase
		// spans backwards from now out of the RoundStats nanoseconds.
		end := time.Now()
		rs := l.bf.LastRoundStats()
		for _, p := range [...]struct {
			name string
			ns   int64
		}{{"round_reduce", rs.ReduceNS}, {"round_score", rs.ScoreNS}, {"round_fill", rs.FillNS}} {
			d := time.Duration(p.ns)
			end = end.Add(-d)
			l.tr.Record(p.name, "sched", tidSched, end, d, false)
		}
	}
	if err := l.observe(t); err != nil {
		return err
	}
	l.refreshVMs()
	l.appendLog(t, &st)
	l.publishTick(&st)
	l.sinceCheckpoint++
	if l.journal != nil && l.cfg.CheckpointEvery > 0 && l.sinceCheckpoint >= l.cfg.CheckpointEvery {
		if err := l.checkpointNow(); err != nil {
			return err
		}
	}
	return nil
}

// applyEvent folds one accepted event into the engine's input state.
// Events were validated at the front door; pathologies that only show up
// at apply time (duplicate names, telemetry for the departed) are counted
// and skipped, never errors — the journal must replay cleanly.
func (l *loop) applyEvent(tick int, e *Event) {
	switch e.Kind {
	case KindOffer:
		o := e.Offer
		if _, exists := l.vms[o.Name]; exists {
			l.dupOffers++
			return
		}
		id := model.VMID(l.nextID)
		l.nextID++
		class, _ := classByName(o.Class)
		vs := &vmState{
			name:      o.Name,
			id:        id,
			status:    StatusPending,
			admitTick: -1,
			host:      model.NoPM,
			dc:        -1,
			home:      model.DCID(o.HomeDC),
			class:     class,
		}
		l.vms[o.Name] = vs
		l.byID[id] = vs
		l.runner.Push(o.arrival(id, tick))
	case KindTelemetry:
		vs, ok := l.vms[e.Telemetry.Name]
		if !ok || vs.status == StatusRejected || vs.status == StatusDeparted {
			l.dropTelem++
			return
		}
		vs.lastLoad = e.Telemetry.load(vs.class)
		vs.hasLoad = true
		if l.overlay.Registered(vs.id) {
			l.overlay.SetLoad(vs.id, model.LocationID(vs.home), vs.lastLoad)
		}
	case KindFault:
		f := e.Fault
		l.faults.Push(lifecycle.FaultEvent{
			Tick: tick,
			Kind: faultKinds[f.Kind],
			PM:   model.PMID(f.PM),
			DC:   model.DCID(f.DC),
		})
	}
}

// onResolve is the lifecycle runner's admission hook: it keeps per-VM
// status current and registers admitted VMs' client load with the
// workload overlay. It runs on the loop goroutine, inside mgr.Step.
func (l *loop) onResolve(tick int, a *lifecycle.Arrival, d lifecycle.Decision) {
	vs := l.byID[a.Spec.ID]
	if vs == nil {
		return // a scripted arrival, not one of ours
	}
	switch d {
	case lifecycle.Admit:
		vs.status = StatusAdmitted
		vs.admitTick = tick
		load := a.Offered
		if vs.hasLoad {
			load = vs.lastLoad
		}
		l.overlay.Register(vs.id, model.LocationID(vs.home), load)
		l.decisions = append(l.decisions, decision{vs.name, "admit"})
	case lifecycle.Defer:
		vs.deferrals++
		l.decisions = append(l.decisions, decision{vs.name, "defer"})
	case lifecycle.Reject:
		vs.status = StatusRejected
		l.decisions = append(l.decisions, decision{vs.name, "reject"})
	}
}

// observe runs the tick's learning duties: fold the fresh observations
// into the online window, retrain per mode, and record SLA calibration
// pairs. In virtual time (and during restore) retrains are synchronous so
// the run stays a pure function of the event stream; in wall-clock mode
// the retrainer works on a window snapshot in the background under the
// retry/backoff budget, and the loop adopts results at tick barriers.
func (l *loop) observe(tick int) error {
	if l.online != nil {
		l.online.Observe(l.world)
		if l.deterministic || l.restoring {
			did, err := l.online.MaybeRetrain(tick)
			if err != nil {
				return err
			}
			if did {
				l.met.RetrainKicked.Inc()
				l.met.RetrainAdopted.Inc()
			}
		} else {
			if res := l.retr.Poll(); res != nil {
				if res.err != nil {
					l.met.RetrainFailed.Inc()
					l.cfg.Logf("serve: retrain cycle failed, keeping previous models: %v", res.err)
				} else {
					l.met.RetrainAdopted.Inc()
					l.online.Adopt(res.bundle, tick)
				}
			}
			if l.online.ShouldRetrain(tick) {
				l.met.RetrainKicked.Inc()
				// Clone on THIS goroutine: the training data snapshot must
				// not race the window Observe keeps growing.
				win := l.online.Window.Clone()
				train := l.online.Train
				l.retr.Kick(tick, func(context.Context) (*predict.Bundle, error) {
					return predict.Train(win, train)
				})
			}
		}
	}
	l.recordCalibration()
	return nil
}

// recordCalibration logs one predicted-vs-observed SLA pair per placed
// VM: what the current models would have predicted for the load the
// gateway actually saw, against the fulfilment the gateway measured. Both
// sides are the processing component (transport is deterministic and
// would only flatter the correlation).
func (l *loop) recordCalibration() {
	if l.bundle == nil {
		return
	}
	b := l.bundle
	if l.online != nil {
		b = l.online.Current()
	}
	obs := l.world.Observer()
	for i := 0; i < l.world.NumVMs(); i++ {
		if !l.world.ActiveVM(i) {
			continue
		}
		spec := l.world.VMSpecAt(i)
		truth, ok := l.world.VMTruthAt(spec.ID)
		if !ok || truth.Host == model.NoPM || truth.Migrating {
			continue
		}
		sample, ok := obs.LastVM(spec.ID)
		if !ok {
			continue
		}
		memDef := predict.MemDeficitFrac(truth.Granted.MemMB, truth.Required.MemMB)
		pred, _ := b.PredictSLAProcBuf(&l.calScratch, sample.Load, truth.Granted.CPUPct, memDef, sample.QueueLen)
		l.calib.Record(pred, spec.Terms.Fulfilment(sample.RT))
	}
}

// refreshVMs reconciles per-VM status with the engine after the tick:
// placements, fault evictions (back to admitted, awaiting re-home) and
// departures. Map iteration order is irrelevant here — every entry is
// updated independently from engine state.
func (l *loop) refreshVMs() {
	st := l.world.State()
	for _, vs := range l.byID {
		switch vs.status {
		case StatusAdmitted, StatusPlaced:
		default:
			continue
		}
		if _, live := l.world.LookupVM(vs.id); !live {
			vs.status = StatusDeparted
			vs.host, vs.dc = model.NoPM, -1
			l.overlay.Remove(vs.id)
			continue
		}
		host := st.HostOf(vs.id)
		if host == model.NoPM {
			vs.status = StatusAdmitted
			vs.host, vs.dc = model.NoPM, -1
			continue
		}
		vs.status = StatusPlaced
		vs.host = host
		if j, ok := l.world.PMIndex(host); ok {
			vs.dc = l.world.PMSpecAt(j).DC
		}
	}
}

// appendLog emits the tick's deterministic placement-log line. The log is
// the replay oracle: two runs are "the same run" exactly when their logs
// are byte-identical, so everything on the line must be a pure function
// of the event stream — admission decisions in resolve order, and on
// round ticks the full placement sorted by VM ID.
func (l *loop) appendLog(tick int, st *sim.TickStats) {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d act=%d unp=%d rounds=%d deg=%t sla=%.6f profit=%.6f",
		tick, l.world.NumActiveVMs(), st.UnplacedVMs, l.mgr.Rounds(), l.mgr.Degraded(),
		st.AvgSLA, st.ProfitEUR)
	if len(l.decisions) > 0 {
		b.WriteString(" dec=[")
		for i, d := range l.decisions {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(d.name)
			b.WriteByte(':')
			b.WriteString(d.verdict)
		}
		b.WriteByte(']')
	}
	if l.mgr.Rounds() > l.prevRounds {
		l.prevRounds = l.mgr.Rounds()
		ids := make([]int, 0, len(st.Placement))
		for id := range st.Placement {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		b.WriteString(" place=[")
		for i, id := range ids {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:%d", id, int(st.Placement[model.VMID(id)]))
		}
		b.WriteByte(']')
	}
	line := b.String()
	l.linesMu.Lock()
	l.lines = append(l.lines, line)
	l.linesMu.Unlock()
	l.logDigest = fnvAdd(fnvAdd(l.logDigest, []byte(line)), []byte{'\n'})
}

// logTail returns the log lines from index from (for /v1/log).
func (l *loop) logTail(from int) []string {
	l.linesMu.Lock()
	defer l.linesMu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(l.lines) {
		return nil
	}
	out := make([]string, len(l.lines)-from)
	copy(out, l.lines[from:])
	return out
}

func (l *loop) logLen() int {
	l.linesMu.Lock()
	defer l.linesMu.Unlock()
	return len(l.lines)
}

// tickEcon is the TickStats-derived slice of the snapshot, retained so
// snapshots published between ticks (checkpoint, drain) keep reporting
// the latest tick's economics instead of zeros.
type tickEcon struct {
	unplaced                                 int
	avgSLA, revenue, energy, penalty, profit float64
}

// publishTick publishes the post-tick snapshot.
func (l *loop) publishTick(st *sim.TickStats) {
	l.econ = tickEcon{
		unplaced: st.UnplacedVMs,
		avgSLA:   st.AvgSLA,
		revenue:  st.RevenueEUR,
		energy:   st.EnergyEUR,
		penalty:  st.PenaltyEUR,
		profit:   st.ProfitEUR,
	}
	l.publish()
}

// publish publishes a snapshot outside a tick (startup, fatal error).
func (l *loop) publish() { l.snap.Store(l.baseSnapshot()) }

// baseSnapshot assembles the snapshot fields that do not come from
// TickStats. The returned value is immutable once stored.
func (l *loop) baseSnapshot() *Snapshot {
	s := &Snapshot{
		Tick:             l.world.Tick(),
		Rounds:           l.mgr.Rounds(),
		ActiveVMs:        l.world.NumActiveVMs(),
		Degraded:         l.mgr.Degraded(),
		Draining:         l.draining.Load(),
		PendingAdmits:    l.mgr.PendingAdmits(),
		PendingRehomes:   l.mgr.PendingRehomes(),
		PendingDeferred:  l.runner.PendingDeferred() + l.runner.PendingPushed(),
		DroppedTelemetry: l.dropTelem,
		DuplicateOffers:  l.dupOffers,
		Churn:            l.runner.Stats(),
		Faults:           l.faults.Stats(),
		LogLines:         l.logLen(),
		LogDigest:        digestString(l.logDigest),
		LastCheckpoint:   l.lastCheckpointTick,
		VMs:              make(map[string]VMStatus, len(l.vms)),
	}
	if l.journal != nil {
		s.JournalEntries = l.journal.Entries()
		s.JournalBytes = l.journal.Bytes()
	}
	s.UnplacedVMs = l.econ.unplaced
	s.AvgSLA = l.econ.avgSLA
	s.RevenueEUR = l.econ.revenue
	s.EnergyEUR = l.econ.energy
	s.PenaltyEUR = l.econ.penalty
	s.ProfitEUR = l.econ.profit
	for name, vs := range l.vms {
		s.VMs[name] = VMStatus{
			Name:      name,
			ID:        int(vs.id),
			Status:    vs.status,
			Host:      int(vs.host),
			DC:        int(vs.dc),
			AdmitTick: vs.admitTick,
			Deferrals: vs.deferrals,
		}
	}
	if l.online != nil {
		os := l.online.Stats()
		s.Online = &os
	}
	if l.retr != nil {
		rs := l.retr.Stats()
		s.Retrain = &rs
	}
	if l.bundle != nil {
		cr := l.calib.Report()
		s.Calibration = &cr
	}
	if l.fatalErr != nil {
		s.Err = l.fatalErr.Error()
	}
	return s
}

// fatal latches the first engine error: the service stops ticking but
// keeps answering queries (with Err set) and control commands, so an
// operator can still inspect and shut it down cleanly.
func (l *loop) fatal(err error) error {
	if l.fatalErr == nil {
		l.fatalErr = err
		l.publish()
	}
	return err
}

// checkpointNow writes a checkpoint certifying the current journal
// prefix and placement-log position.
func (l *loop) checkpointNow() error {
	if l.journal == nil {
		return fmt.Errorf("serve: no state directory configured")
	}
	if err := l.journal.Flush(); err != nil {
		return l.fatal(err)
	}
	cp := Checkpoint{
		Scenario:    l.cfg.Scenario,
		Seed:        l.cfg.Seed,
		RoundTicks:  l.cfg.RoundTicks,
		TickWorkers: l.cfg.TickWorkers,
		Tick:        l.world.Tick(),
		Entries:     l.journal.Entries(),
		Digest:      l.journal.Digest(),
		LogLines:    l.logLen(),
		LogDigest:   l.logDigest,
	}
	if err := WriteCheckpoint(l.cfg.Dir, cp); err != nil {
		return l.fatal(err)
	}
	l.sinceCheckpoint = 0
	l.lastCheckpointTick = cp.Tick
	l.met.Checkpoints.Inc()
	l.met.LastCheckpoint.Set(float64(cp.Tick))
	l.met.syncJournal(l.journal)
	l.publish() // health checks see the new certified tick immediately
	return nil
}

// drainAndStop is graceful shutdown: refuse new offers (the draining
// flag), then keep ticking until the intake queue, the pushed/deferred
// offer queues and the admitted-but-unplaced ledger are all empty — every
// accepted offer gets its admission ruling and placed VMs their final
// round — bounded by the deferral deadline plus two round periods, so a
// wedged fleet cannot hold shutdown hostage. Ends with a final checkpoint
// and journal close.
func (l *loop) drainAndStop() error {
	l.draining.Store(true)
	l.publish() // make the flag visible to health checks immediately
	maxTicks := lifecycle.DefaultMaxDeferTicks + 2*l.cfg.RoundTicks + 2
	for i := 0; i < maxTicks; i++ {
		if l.fatalErr != nil {
			break
		}
		if len(l.events) == 0 && l.runner.PendingPushed() == 0 &&
			l.runner.PendingDeferred() == 0 && l.mgr.PendingAdmits() == 0 {
			break
		}
		if err := l.tickOnce(); err != nil {
			break
		}
	}
	var err error
	if l.journal != nil {
		if l.fatalErr == nil {
			err = l.checkpointNow()
		}
		if cerr := l.journal.Close(); err == nil {
			err = cerr
		}
	}
	if l.tr != nil && l.cfg.TracePath != "" {
		if terr := writeTraceFile(l.cfg.TracePath, l.tr); terr != nil {
			l.cfg.Logf("serve: writing trace file: %v", terr)
			if err == nil {
				err = terr
			}
		}
	}
	l.publish()
	return err
}

// writeTraceFile dumps the tracer's ring as Chrome trace-event JSON.
func writeTraceFile(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// restore replays a journal through execTick — the exact live code path.
// The checkpoint, when present, gates compatibility (scenario, seed,
// round period; deliberately not TickWorkers) and cross-checks the
// replayed placement log against the digest the crashed run certified.
func (l *loop) restore(prior []entry) error {
	cp, hasCP, err := ReadCheckpoint(l.cfg.Dir)
	if err != nil {
		return err
	}
	if hasCP {
		if err := cp.Compatible(l.cfg.Scenario, l.cfg.Seed, l.cfg.RoundTicks); err != nil {
			return err
		}
		l.lastCheckpointTick = cp.Tick
		l.met.LastCheckpoint.Set(float64(cp.Tick))
	}
	l.restoring = true
	defer func() { l.restoring = false }()
	var batch []Event
	for i := range prior {
		en := &prior[i]
		switch en.Kind {
		case "ev":
			if en.Event == nil {
				return fmt.Errorf("serve: journal entry %d: ev without event", i+1)
			}
			if en.Event.Seq > l.seq.Load() {
				l.seq.Store(en.Event.Seq)
			}
			batch = append(batch, *en.Event)
		case "tick":
			if en.Tick != l.world.Tick() {
				return fmt.Errorf("serve: journal entry %d: tick %d but world is at %d", i+1, en.Tick, l.world.Tick())
			}
			// The journal already holds the canonical order; no re-sort, no
			// re-journal — execTick consumes the batch as recorded.
			if err := l.execTick(batch); err != nil {
				return fmt.Errorf("serve: replaying journal tick %d: %w", en.Tick, err)
			}
			batch = batch[:0]
		default:
			return fmt.Errorf("serve: journal entry %d: unknown kind %q", i+1, en.Kind)
		}
	}
	if hasCP {
		if len(l.lines) < cp.LogLines {
			return fmt.Errorf("serve: restored log has %d lines, checkpoint certified %d", len(l.lines), cp.LogLines)
		}
		d := fnvOffset
		for _, ln := range l.lines[:cp.LogLines] {
			d = fnvAdd(fnvAdd(d, []byte(ln)), []byte{'\n'})
		}
		if d != cp.LogDigest {
			return fmt.Errorf("serve: restored placement log diverges from checkpoint (digest %016x != %016x)", d, cp.LogDigest)
		}
	}
	l.cfg.Logf("serve: restored %d journal entries to tick %d", len(prior), l.world.Tick())
	return nil
}
