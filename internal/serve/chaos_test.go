package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChaos is the everything-at-once robustness drill: concurrent
// offer spam (with deliberate duplicates), telemetry floods, fault
// injections, garbage requests, oversized bodies and clients that hang
// up mid-request, all against a small queue while ticks keep running.
// The service must neither deadlock nor lose work: the queue stays
// bounded, the drain completes, and every offer that got a 202 ends in
// a terminal state. Run under -race in CI.
func TestChaos(t *testing.T) {
	const (
		spammers  = 4
		offersPer = 8
	)
	s, c := newTestServer(t, Config{Seed: 13, QueueDepth: 16})

	var (
		wg       sync.WaitGroup
		accepted sync.Map // offer name -> true, recorded on 202
	)

	// Offer spammers: unique names, each sent twice (the second is a
	// deliberate duplicate the engine must count, not choke on).
	for w := 0; w < spammers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < offersPer; i++ {
				name := fmt.Sprintf("chaos-%d-%d", w, i)
				for rep := 0; rep < 2; rep++ {
					if err := c.Send(offerEv(0, name, w%4)); err == nil {
						accepted.Store(name, true)
					}
				}
			}
		}(w)
	}

	// Telemetry flood, mostly for VMs that do not exist.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			c.Send(telemEv(0, fmt.Sprintf("chaos-0-%d", i%10), float64(i))) //nolint:errcheck
		}
	}()

	// Fault injector: crash and repair hosts while placements happen.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			c.Send(faultEv(0, "crash", i%4))  //nolint:errcheck
			c.Send(faultEv(0, "repair", i%4)) //nolint:errcheck
		}
	}()

	// Garbage clients: wrong paths, wrong methods, broken JSON, a body
	// past the 1 MiB bound — all must bounce without side effects.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			http.Get(c.Base + "/v1/nope")                                                                     //nolint:errcheck
			http.Post(c.Base+"/healthz", "application/json", strings.NewReader("{}"))                         //nolint:errcheck
			http.Post(c.Base+"/v1/offers", "application/json", strings.NewReader("{{{{"))                     //nolint:errcheck
			http.Post(c.Base+"/v1/offers", "application/json", bytes.NewReader(make([]byte, maxBodyBytes+1))) //nolint:errcheck
		}
	}()

	// Disconnectors: requests whose clients give up almost immediately.
	// A dead requester must never wedge the engine loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/tick", strings.NewReader(`{"n":1}`))
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
			cancel()
		}
	}()

	// Readers: health and log polling throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if h, err := c.Health(); err == nil && h.QueueLen > h.QueueCap {
				t.Errorf("queue %d over cap %d", h.QueueLen, h.QueueCap)
			}
			c.Log(0) //nolint:errcheck
		}
	}()

	// The clock: keep ticking until every agitator is done.
	doneAgitating := make(chan struct{})
	go func() { wg.Wait(); close(doneAgitating) }()
	for ticking := true; ticking; {
		select {
		case <-doneAgitating:
			ticking = false
		default:
			if _, err := c.Tick(1); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Graceful drain: every accepted offer gets its ruling.
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	if snap.Err != "" {
		t.Fatalf("engine died during chaos: %s", snap.Err)
	}
	if snap.PendingAdmits != 0 || snap.PendingDeferred != 0 {
		t.Fatalf("drain left pending work: admits=%d deferred=%d",
			snap.PendingAdmits, snap.PendingDeferred)
	}
	if snap.DuplicateOffers == 0 {
		t.Fatal("duplicate offers were sent but none counted")
	}

	// Zero lost accepted offers: each 202'd name has a terminal status.
	accepted.Range(func(k, _ any) bool {
		name := k.(string)
		vs, ok := snap.VMs[name]
		if !ok {
			t.Errorf("offer %q was 202-accepted but has no status", name)
			return true
		}
		switch vs.Status {
		case StatusPlaced, StatusRejected, StatusDeparted:
		default:
			t.Errorf("offer %q ended in non-terminal status %q", name, vs.Status)
		}
		return true
	})
}
