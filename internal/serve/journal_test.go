package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// writeJournalFile seeds a journal directory with raw content.
func writeJournalFile(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, JournalName)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const journalTwoTicks = `{"k":"ev","e":{"seq":1,"kind":"offer","offer":{"name":"a","home_dc":0}}}
{"k":"tick"}
{"k":"ev","e":{"seq":2,"kind":"telemetry","telemetry":{"name":"a","rps":5}}}
{"k":"tick","t":1}
`

// TestJournalRoundTrip pins the append/reopen cycle: entries written
// through Append come back verbatim with a matching digest.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, prior, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal has %d entries", len(prior))
	}
	evs := []Event{offerEv(1, "a", 0), telemEv(2, "a", 5)}
	for i := range evs {
		if err := j.Append(entry{Kind: "ev", Event: &evs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(entry{Kind: "tick", Tick: 0}); err != nil {
		t.Fatal(err)
	}
	wantDigest := j.Digest()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, prior, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(prior) != 3 {
		t.Fatalf("reopened journal has %d entries, want 3", len(prior))
	}
	if prior[0].Event.Offer.Name != "a" || prior[1].Event.Telemetry.RPS != 5 {
		t.Fatalf("entries did not round-trip: %+v", prior)
	}
	if j2.Digest() != wantDigest {
		t.Fatalf("digest %016x after reopen, want %016x", j2.Digest(), wantDigest)
	}
}

// TestJournalTornTailTruncated pins crash hygiene case 1: a final line
// the dying process never finished is dropped and physically truncated,
// so the next run appends from a clean boundary.
func TestJournalTornTailTruncated(t *testing.T) {
	for _, torn := range []string{
		`{"k":"ev","e":{"seq":9,"ki`, // no newline, cut mid-JSON
		"{\"k\":\"ev\",broken}\n",    // newline landed, JSON did not
	} {
		dir := t.TempDir()
		path := writeJournalFile(t, dir, journalTwoTicks+torn)
		j, prior, err := OpenJournal(dir)
		if err != nil {
			t.Fatalf("torn tail %q: %v", torn, err)
		}
		j.Close()
		if len(prior) != 4 {
			t.Fatalf("torn tail %q: %d entries, want 4", torn, len(prior))
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != journalTwoTicks {
			t.Fatalf("torn tail %q not truncated away; file holds %q", torn, data)
		}
	}
}

// TestJournalTrailingEventsTruncated pins crash hygiene case 2: events
// flushed after the last tick barrier never executed — they are still
// "in the intake queue" per the 202 contract — so a restore drops them
// rather than corrupt the next tick's canonical batch.
func TestJournalTrailingEventsTruncated(t *testing.T) {
	dir := t.TempDir()
	trailing := `{"k":"ev","e":{"seq":3,"kind":"offer","offer":{"name":"b","home_dc":1}}}` + "\n"
	path := writeJournalFile(t, dir, journalTwoTicks+trailing)
	j, prior, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(prior) != 4 {
		t.Fatalf("%d entries, want 4 (trailing event dropped)", len(prior))
	}
	if prior[len(prior)-1].Kind != "tick" {
		t.Fatal("journal prefix does not end at a tick barrier")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != journalTwoTicks {
		t.Fatalf("trailing event not truncated; file holds %q", data)
	}
}

// TestJournalRejectsMidFileCorruption distinguishes a torn tail from
// real corruption: a malformed line with valid lines after it means the
// file is damaged, and pretending otherwise would replay wrong history.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	writeJournalFile(t, dir, `{"k":"ev",corrupt}`+"\n"+journalTwoTicks)
	if _, _, err := OpenJournal(dir); err == nil {
		t.Fatal("mid-file corruption accepted as a torn tail")
	}
}

// TestCheckpointRoundTripAndCompatibility covers the checkpoint file:
// atomic write, read-back, and the compatibility rule (TickWorkers is
// recorded but deliberately not part of the rule).
func TestCheckpointRoundTripAndCompatibility(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	cp := Checkpoint{
		Scenario: "serve-base", Seed: 9, RoundTicks: 10, TickWorkers: 4,
		Tick: 18, Entries: 40, Digest: 123, LogLines: 18, LogDigest: 456,
	}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	if got != cp {
		t.Fatalf("checkpoint round-trip: got %+v want %+v", got, cp)
	}

	if err := got.Compatible("serve-base", 9, 10); err != nil {
		t.Fatalf("compatible config refused: %v", err)
	}
	if err := got.Compatible("other", 9, 10); err == nil {
		t.Fatal("scenario mismatch accepted")
	}
	if err := got.Compatible("serve-base", 8, 10); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if err := got.Compatible("serve-base", 9, 5); err == nil {
		t.Fatal("round-period mismatch accepted")
	}
}
