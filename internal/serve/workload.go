package serve

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// Overlay is the serve-mode workload source: it wraps the scenario's
// trace generator and overrides the load of dynamically admitted VMs
// with their client-reported streams. The base generator returns zero
// rows for VM IDs it was not built with, so the overlay is the only
// thing standing between an HTTP-admitted VM and serving nothing.
//
// Ownership: the engine-loop goroutine writes (Register/SetLoad/Remove,
// always between ticks) and the engine reads during Step on the same
// goroutine — per-DC tick workers only read, matching the generator's
// own contract. The overlay is deterministic by construction: the rows
// it serves are a pure function of the applied event stream.
type Overlay struct {
	base    sim.Workload
	sources int
	rows    map[model.VMID]model.LoadVector
}

// NewOverlay wraps a base workload for a topology with the given number
// of client locations.
func NewOverlay(base sim.Workload, sources int) *Overlay {
	return &Overlay{
		base:    base,
		sources: sources,
		rows:    make(map[model.VMID]model.LoadVector),
	}
}

// Register installs a VM's initial reported load, homed entirely at one
// client location (dynamic VMs have no scripted per-source split; their
// clients sit where the offer said they do).
func (ov *Overlay) Register(id model.VMID, home model.LocationID, l model.Load) {
	row := make(model.LoadVector, ov.sources)
	if int(home) >= 0 && int(home) < ov.sources {
		row[home] = l
	}
	ov.rows[id] = row
}

// SetLoad replaces a registered VM's reported load in place; unknown IDs
// are ignored (the VM was never registered, or already removed).
func (ov *Overlay) SetLoad(id model.VMID, home model.LocationID, l model.Load) {
	row, ok := ov.rows[id]
	if !ok {
		return
	}
	for i := range row {
		row[i] = model.Load{}
	}
	if int(home) >= 0 && int(home) < ov.sources {
		row[home] = l
	}
}

// Remove forgets a departed VM's row.
func (ov *Overlay) Remove(id model.VMID) { delete(ov.rows, id) }

// Registered reports whether a VM has an overlay row.
func (ov *Overlay) Registered(id model.VMID) bool {
	_, ok := ov.rows[id]
	return ok
}

// Fill implements sim.Workload: the base shape for scripted VMs, the
// overlay row for registered dynamic VMs. Rows are copied out, never
// aliased, so the engine's buffers cannot corrupt overlay state.
func (ov *Overlay) Fill(tick int, vms []model.VMID, dst []model.LoadVector) {
	ov.base.Fill(tick, vms, dst)
	for i, id := range vms {
		if row, ok := ov.rows[id]; ok {
			copy(dst[i], row)
		}
	}
}
