package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/predict"
)

// RetrainBudget bounds how hard the background retrainer tries before a
// refit cycle is declared failed: each attempt gets Timeout, failures
// back off exponentially from Backoff up to MaxBackoff, and after
// MaxRetries retries (MaxRetries+1 attempts) the cycle gives up — the
// serving path keeps the previous bundle, it is never blocked on a
// refit. The zero value gets defaults from DefaultRetrainBudget.
type RetrainBudget struct {
	Timeout    time.Duration
	MaxRetries int
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// DefaultRetrainBudget is the production default: 30s per attempt, three
// retries, 250ms initial backoff capped at 5s.
func DefaultRetrainBudget() RetrainBudget {
	return RetrainBudget{
		Timeout:    30 * time.Second,
		MaxRetries: 3,
		Backoff:    250 * time.Millisecond,
		MaxBackoff: 5 * time.Second,
	}
}

func (b RetrainBudget) withDefaults() RetrainBudget {
	d := DefaultRetrainBudget()
	if b.Timeout <= 0 {
		b.Timeout = d.Timeout
	}
	if b.MaxRetries < 0 {
		b.MaxRetries = 0
	}
	if b.Backoff <= 0 {
		b.Backoff = d.Backoff
	}
	if b.MaxBackoff < b.Backoff {
		b.MaxBackoff = b.Backoff
	}
	return b
}

// RetrainStats counts the retrainer's lifetime outcomes. Attempts counts
// individual training calls; Cycles/Successes/GiveUps count whole kick
// cycles.
type RetrainStats struct {
	Cycles    int64 `json:"cycles"`
	Attempts  int64 `json:"attempts"`
	Successes int64 `json:"successes"`
	GiveUps   int64 `json:"give_ups"`
}

// retrainResult is one finished cycle.
type retrainResult struct {
	bundle *predict.Bundle
	tick   int
	err    error
}

// Retrainer runs model refits off the engine loop under a retry/backoff
// budget. The contract with the loop: Kick starts at most one cycle at a
// time (a kick while one is in flight is a no-op), Poll hands back the
// finished bundle exactly once, and the loop decides when to adopt it
// (round boundaries), so the serving models never change mid-decision.
//
// In deterministic replay mode the retrainer is not used at all —
// retrains run synchronously at tick boundaries — because a background
// goroutine's completion time is wall-clock state that would leak into
// placement decisions.
type Retrainer struct {
	budget  RetrainBudget
	sleep   func(time.Duration) // test seam
	results chan retrainResult

	inflight  atomic.Bool
	cycles    atomic.Int64
	attempts  atomic.Int64
	successes atomic.Int64
	giveUps   atomic.Int64
}

// NewRetrainer builds a retrainer with the given budget.
func NewRetrainer(budget RetrainBudget) *Retrainer {
	return &Retrainer{
		budget:  budget.withDefaults(),
		sleep:   time.Sleep,
		results: make(chan retrainResult, 1),
	}
}

// Kick starts a refit cycle for the given tick unless one is already in
// flight or an unclaimed result is waiting; reports whether it started.
// train must be self-contained — the caller snapshots its data (e.g.
// Harvest.Clone) on the owning goroutine BEFORE Kick, because train runs
// on a background goroutine.
func (r *Retrainer) Kick(tick int, train func(ctx context.Context) (*predict.Bundle, error)) bool {
	if !r.inflight.CompareAndSwap(false, true) {
		return false
	}
	r.cycles.Add(1)
	go r.run(tick, train)
	return true
}

// run executes one cycle: attempts with per-attempt timeout, exponential
// backoff between failures, a terminal give-up after the budget.
func (r *Retrainer) run(tick int, train func(ctx context.Context) (*predict.Bundle, error)) {
	backoff := r.budget.Backoff
	var lastErr error
	for attempt := 0; attempt <= r.budget.MaxRetries; attempt++ {
		if attempt > 0 {
			r.sleep(backoff)
			backoff *= 2
			if backoff > r.budget.MaxBackoff {
				backoff = r.budget.MaxBackoff
			}
		}
		r.attempts.Add(1)
		b, err := r.attempt(train)
		if err == nil {
			r.successes.Add(1)
			r.results <- retrainResult{bundle: b, tick: tick}
			return
		}
		lastErr = err
	}
	r.giveUps.Add(1)
	r.results <- retrainResult{tick: tick, err: fmt.Errorf("serve: retrain gave up after %d attempts: %w", r.budget.MaxRetries+1, lastErr)}
}

// attempt runs one training call under the per-attempt timeout. The
// training function may not honour ctx (predict.Train is oblivious); the
// attempt is then abandoned at the deadline while the call finishes on
// its goroutine — its result is discarded.
func (r *Retrainer) attempt(train func(ctx context.Context) (*predict.Bundle, error)) (*predict.Bundle, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.budget.Timeout)
	defer cancel()
	type out struct {
		b   *predict.Bundle
		err error
	}
	done := make(chan out, 1)
	go func() {
		b, err := train(ctx)
		done <- out{b, err}
	}()
	select {
	case o := <-done:
		return o.b, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: retrain attempt timed out after %s", r.budget.Timeout)
	}
}

// Poll returns a finished cycle's result if one is ready, clearing the
// in-flight latch so the next Kick can start. Returns nil when no cycle
// has finished.
func (r *Retrainer) Poll() *retrainResult {
	select {
	case res := <-r.results:
		r.inflight.Store(false)
		return &res
	default:
		return nil
	}
}

// Stats snapshots the lifetime counters (safe from any goroutine).
func (r *Retrainer) Stats() RetrainStats {
	return RetrainStats{
		Cycles:    r.cycles.Load(),
		Attempts:  r.attempts.Load(),
		Successes: r.successes.Load(),
		GiveUps:   r.giveUps.Load(),
	}
}
