// Package stats implements the descriptive statistics used to validate the
// learned models (Table I of the paper: correlation, mean absolute error,
// error standard deviation, value ranges) and to summarise experiment
// series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the extrema of xs. It returns (0, 0) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys, the headline quality figure of Table I. It returns 0 when either
// series is constant or the lengths differ.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// ErrStdDev returns the standard deviation of the signed errors
// pred[i]-truth[i], the "Err-StDev" column of Table I.
func ErrStdDev(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	errs := make([]float64, len(pred))
	for i := range pred {
		errs[i] = pred[i] - truth[i]
	}
	return StdDev(errs)
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates count, mean and variance in one pass with constant
// memory. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations folded in.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation seen (0 if none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation seen (0 if none).
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into w (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	mn, mx := w.min, w.max
	if o.min < mn {
		mn = o.min
	}
	if o.max > mx {
		mx = o.max
	}
	*w = Welford{n: n, mean: mean, m2: m2, min: mn, max: mx}
}

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		w.n, w.Mean(), w.StdDev(), w.min, w.max)
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the share of observations landing in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
