package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Fatalf("StdDev = %v", sd)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty-input statistics should be zero")
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); !almostEq(c, 1, 1e-12) {
		t.Fatalf("Correlation = %v, want 1", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEq(c, -1, 1e-12) {
		t.Fatalf("Correlation = %v, want -1", c)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if c := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); c != 0 {
		t.Fatalf("constant series correlation = %v", c)
	}
	if c := Correlation([]float64{1, 2}, []float64{1}); c != 0 {
		t.Fatalf("mismatched length correlation = %v", c)
	}
}

func TestCorrelationBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		// Keep magnitudes bounded: the estimator itself squares values, so
		// inputs near MaxFloat64 overflow to +Inf, which is out of scope.
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			xs[i] = math.Mod(x, 1e6)
			ys[i] = xs[i]*0.5 + float64(i%3)
		}
		c := Correlation(xs, ys)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMAEAndErrStdDev(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 1}
	if m := MAE(pred, truth); !almostEq(m, 1, 1e-12) {
		t.Fatalf("MAE = %v", m)
	}
	// errors: -1, 0, 2; mean 1/3; var = ((-4/3)^2+(1/3)^2+(5/3)^2)/3 = 14/9
	if sd := ErrStdDev(pred, truth); !almostEq(sd, math.Sqrt(14.0/9.0), 1e-12) {
		t.Fatalf("ErrStdDev = %v", sd)
	}
}

func TestRMSE(t *testing.T) {
	pred := []float64{0, 0}
	truth := []float64{3, 4}
	if r := RMSE(pred, truth); !almostEq(r, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v", r)
	}
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("MinMax(nil) = %v, %v", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); !almostEq(got, tc.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, 2.5, 3.5, -4, 10, 0.25}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("Mean = %v, want %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-12) {
		t.Fatalf("Variance = %v, want %v", w.Variance(), Variance(xs))
	}
	if w.Min() != -4 || w.Max() != 10 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	clean := func(xs []float64) []float64 {
		out := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitudes: Welford squares deviations, so values near
			// MaxFloat64 overflow in any formulation.
			out = append(out, math.Mod(x, 1e6))
		}
		return out
	}
	f := func(ra, rb []float64) bool {
		a, b := clean(ra), clean(rb)
		var all Welford
		for _, x := range a {
			all.Add(x)
		}
		for _, x := range b {
			all.Add(x)
		}
		var wa, wb Welford
		for _, x := range a {
			wa.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
		}
		wa.Merge(wb)
		if wa.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almostEq(wa.Mean(), all.Mean(), 1e-9*scale) &&
			almostEq(wa.Variance(), all.Variance(), 1e-6*math.Max(1, all.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	// bins: [0,2): -1,0,1.9 -> 3 ; [2,4): 2 ; [4,6): 5 ; [8,10): 9.99,10,42 -> 3
	want := []int{3, 1, 1, 0, 3}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if !almostEq(h.Fraction(0), 3.0/8.0, 1e-12) {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid bounds and bins get repaired
	h.Add(5)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram unusable")
	}
}

func TestSum(t *testing.T) {
	if Sum([]float64{1, 2, 3.5}) != 6.5 {
		t.Fatal("Sum wrong")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) wrong")
	}
}
