package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// ParallelBestFit builds the ML Best-Fit with concurrent candidate
// evaluation — the configuration large-fleet runs use so the decision
// round rides all cores. Placements are bit-identical to the serial
// scheduler (asserted by TestParallelMatchesSerialHeteroFleet and the
// sched parity suite).
func ParallelBestFit(cost sched.CostModel, est sched.Estimator) *sched.BestFit {
	bf := sched.NewBestFit(cost, est)
	bf.Parallel = true
	bf.Workers = par.DefaultWorkers()
	return bf
}

// Heuristics re-measures the claim inherited from the authors' prior work
// ("Best-Fit performs better among greedy classical ad-hoc and
// heuristics"): the profit-driven Ordered Best-Fit against First-Fit,
// Worst-Fit and Round-Robin on the intra-DC consolidation scenario.
func Heuristics(seed uint64) (*Result, error) {
	spec := scenario.MustPreset(scenario.IntraDC, seed)
	ticks := model.TicksPerDay
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	initial := func(sc *scenario.Scenario) model.Placement { return sc.PileOn(0) }
	policies := []struct {
		name string
		mk   func(*scenario.Scenario) (sched.Scheduler, error)
	}{
		{"RoundRobin", func(*scenario.Scenario) (sched.Scheduler, error) {
			return sched.RoundRobin{}, nil
		}},
		{"FirstFit", func(*scenario.Scenario) (sched.Scheduler, error) {
			return &sched.FirstFit{Est: sched.NewML(bundle)}, nil
		}},
		{"WorstFit", func(*scenario.Scenario) (sched.Scheduler, error) {
			return &sched.WorstFit{Est: sched.NewML(bundle)}, nil
		}},
		{"BestFit+ML", func(sc *scenario.Scenario) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewML(bundle)), nil
		}},
		{"BestFit+ML-par", func(sc *scenario.Scenario) (sched.Scheduler, error) {
			return ParallelBestFit(CostModel(sc), sched.NewML(bundle)), nil
		}},
	}
	res := &Result{Name: "Heuristics", Metrics: map[string]float64{}}
	var runs []*PolicyRun
	for _, pol := range policies {
		run, err := RunPolicy(spec, pol.mk, initial, ticks)
		if err != nil {
			return nil, fmt.Errorf("heuristics %s: %w", pol.name, err)
		}
		run.Policy = pol.name
		runs = append(runs, run)
		res.Metrics["profit:"+pol.name] = run.AvgEuroH
		res.Metrics["sla:"+pol.name] = run.AvgSLA
		res.Metrics["watts:"+pol.name] = run.AvgWatts
	}
	res.Tables = append(res.Tables, summaryTable(
		"Classical heuristics vs profit-driven Best-Fit (intra-DC, 24 h)", runs))
	var chart report.Chart
	chart.Caption = "SLA over 24 h per heuristic"
	for _, r := range runs {
		chart.Series = append(chart.Series, report.Series{Name: r.Policy, Values: r.SLASeries})
	}
	res.Charts = append(res.Charts, chart)
	res.Notes = append(res.Notes,
		"Round-Robin and Worst-Fit spread blindly (high energy), First-Fit packs blindly; only the profit objective balances both")
	return res, nil
}
