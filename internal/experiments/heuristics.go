package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// Heuristics re-measures the claim inherited from the authors' prior work
// ("Best-Fit performs better among greedy classical ad-hoc and
// heuristics"): the profit-driven Ordered Best-Fit against First-Fit,
// Worst-Fit and Round-Robin on the intra-DC consolidation scenario. Each
// policy is one sweep cell over the intra-dc preset.
func Heuristics(seed uint64) (*Result, error) {
	spec := scenario.MustPreset(scenario.IntraDC, seed)
	ticks := model.TicksPerDay
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	initial := func(sc *scenario.Scenario) model.Placement { return sc.PileOn(0) }
	policies := []sweep.Policy{
		{Name: "RoundRobin", Initial: initial,
			Make: func(*scenario.Scenario, *predict.Bundle) (sched.Scheduler, error) {
				return sched.RoundRobin{}, nil
			}},
		{Name: "FirstFit", Initial: initial, NeedsBundle: true,
			Make: func(_ *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
				return &sched.FirstFit{Est: sched.NewML(b)}, nil
			}},
		{Name: "WorstFit", Initial: initial, NeedsBundle: true,
			Make: func(_ *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
				return &sched.WorstFit{Est: sched.NewML(b)}, nil
			}},
		{Name: "BestFit+ML", Initial: initial, NeedsBundle: true,
			Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
				return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
			}},
		{Name: "BestFit+ML-par", Initial: initial, NeedsBundle: true,
			Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
				return ParallelBestFit(CostModel(sc), sched.NewML(b)), nil
			}},
	}
	res := &Result{Name: "Heuristics", Metrics: map[string]float64{}}
	var runs []*PolicyRun
	for _, pol := range policies {
		run, err := sweep.RunSpec(spec, pol, bundle, ticks)
		if err != nil {
			return nil, fmt.Errorf("heuristics %s: %w", pol.Name, err)
		}
		runs = append(runs, run)
		res.Metrics["profit:"+pol.Name] = run.AvgEuroH
		res.Metrics["sla:"+pol.Name] = run.AvgSLA
		res.Metrics["watts:"+pol.Name] = run.AvgWatts
	}
	res.Tables = append(res.Tables, summaryTable(
		"Classical heuristics vs profit-driven Best-Fit (intra-DC, 24 h)", runs))
	var chart report.Chart
	chart.Caption = "SLA over 24 h per heuristic"
	for _, r := range runs {
		chart.Series = append(chart.Series, report.Series{Name: r.Policy, Values: r.SLASeries})
	}
	res.Charts = append(res.Charts, chart)
	res.Notes = append(res.Notes,
		"Round-Robin and Worst-Fit spread blindly (high energy), First-Fit packs blindly; only the profit objective balances both")
	return res, nil
}
