package experiments

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// SchedulerScaling reproduces the Section IV-C scalability claim: exact
// solvers blow up combinatorially (the paper reports GUROBI taking minutes
// to place 10 jobs on 40 hosts), while Ordered Best-Fit stays proportional
// to VMs x PMs. The experiment times both on growing instances; the
// exhaustive solver gets a wall-clock budget so the table always finishes.
func SchedulerScaling(seed uint64) (*Result, error) {
	sizes := []struct{ vms, hosts int }{
		{2, 2}, {3, 3}, {4, 4}, {5, 4}, {6, 4}, {7, 5}, {8, 6},
	}
	res := &Result{Name: "SchedulerScaling", Metrics: map[string]float64{}}
	t := report.Table{
		Caption: "§IV-C — Best-Fit vs exact solver scaling",
		Headers: []string{"VMs", "hosts", "best-fit", "B&B", "B&B nodes", "exhaustive", "exh nodes", "exh/bf"},
	}
	for _, size := range sizes {
		p, err := syntheticProblem(seed, size.vms, size.hosts)
		if err != nil {
			return nil, err
		}
		cost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, HorizonHours)
		est := sched.NewObserved()

		bf := sched.NewBestFit(cost, est)
		start := time.Now()
		if _, err := bf.Schedule(p); err != nil {
			return nil, err
		}
		bfDur := time.Since(start)

		bnb := &sched.Exhaustive{Cost: cost, Est: est, Prune: true, Budget: 3 * time.Second}
		start = time.Now()
		if _, err := bnb.Schedule(p); err != nil {
			return nil, err
		}
		bnbDur := time.Since(start)
		bnbNodes := bnb.Nodes()

		ex := &sched.Exhaustive{Cost: cost, Est: est, Budget: 3 * time.Second}
		start = time.Now()
		if _, err := ex.Schedule(p); err != nil {
			return nil, err
		}
		exDur := time.Since(start)

		speedup := float64(exDur) / float64(bfDur)
		t.AddRow(
			fmt.Sprintf("%d", size.vms),
			fmt.Sprintf("%d", size.hosts),
			bfDur.Round(time.Microsecond).String(),
			bnbDur.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", bnbNodes),
			exDur.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", ex.Nodes()),
			fmt.Sprintf("%.0fx", speedup),
		)
		key := fmt.Sprintf("%dx%d", size.vms, size.hosts)
		res.Metrics["bfNs:"+key] = float64(bfDur.Nanoseconds())
		res.Metrics["bnbNodes:"+key] = float64(bnbNodes)
		res.Metrics["exNs:"+key] = float64(exDur.Nanoseconds())
		res.Metrics["nodes:"+key] = float64(ex.Nodes())
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"exhaustive node counts grow as hosts^VMs while Best-Fit stays at VMs x hosts evaluations — the reason the paper adopts the heuristic; branch-and-bound helps but stays exponential in the worst case")
	return res, nil
}

// syntheticProblem builds a deterministic scheduling problem with mixed
// demands for the scaling measurements.
func syntheticProblem(seed uint64, vms, hosts int) (*sched.Problem, error) {
	sc, err := scenario.Build(scenario.Spec{
		Name: "scaling", Seed: seed,
		DCs: 4, PMsPerDC: (hosts + 3) / 4, VMs: vms,
		LoadScale: 1.5,
	})
	if err != nil {
		return nil, err
	}
	p := &sched.Problem{}
	for i, vm := range sc.VMs {
		lv := sc.Generator.LoadsFor(vm.ID, 12*model.TicksPerHour)
		info := sched.VMInfo{
			Spec:      vm,
			Load:      lv,
			Total:     lv.Total(),
			Current:   model.NoPM,
			CurrentDC: -1,
		}
		// Give the observed estimator plausible sizing data.
		info.Observed = model.Resources{
			CPUPct: 40 + float64(i%4)*60,
			MemMB:  256 + float64(i%3)*200,
			BWMbps: 5 + float64(i%5)*4,
		}
		info.HasObserved = true
		p.VMs = append(p.VMs, info)
	}
	for _, pm := range sc.Inventory.PMs() {
		if len(p.Hosts) == hosts {
			break
		}
		p.Hosts = append(p.Hosts, sched.HostInfo{Spec: pm})
	}
	return p, nil
}
