package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// OnlineLearning implements and evaluates the paper's future-work item 4:
// mid-run, a middleware update silently changes the fleet's ground truth —
// VMs suddenly need twice the memory per request and the hypervisor
// overhead grows. Nothing in the gateway-visible request mix changes, so
// frozen models keep predicting the old requirements and under-provision;
// the online bundle retrains on recent monitored data and adapts. The
// metric is SLA in the post-shift window.
func OnlineLearning(seed uint64) (*Result, error) {
	base, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	const (
		ticks     = model.TicksPerDay
		shiftTick = 6 * model.TicksPerHour
	)
	// The update makes every request 2.2x as expensive on the CPU while the
	// gateway-visible request mix (rates, bytes, nominal per-request cost)
	// stays identical — the change is invisible until usage is observed.
	shifted := sim.DefaultParams()
	shifted.CPUCostFactor = 2.2

	run := func(online bool) (*PolicyRun, *predict.Online, error) {
		sc, err := scenario.Build(scenario.MustPreset(scenario.OnlineShift, seed))
		if err != nil {
			return nil, nil, err
		}
		world := sc.World
		// Each run gets a private copy so runs cannot contaminate each other.
		var updater *predict.Online
		var bundle *predict.Bundle
		if online {
			updater, err = predict.NewOnline(base, predict.DefaultTrainConfig(seed), 4000, 120)
			if err != nil {
				return nil, nil, err
			}
			bundle = updater.Bundle
		} else {
			bundle, err = predict.CloneBundle(base)
			if err != nil {
				return nil, nil, err
			}
		}
		mgr, err := core.NewManager(core.ManagerConfig{
			World:      world,
			Scheduler:  sched.NewBestFit(CostModel(sc), sched.NewML(bundle)),
			RoundTicks: RoundTicks,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := world.PlaceInitial(sc.PileOn(0)); err != nil {
			return nil, nil, err
		}
		pr := &PolicyRun{Ticks: ticks, MinSLA: 1}
		if online {
			pr.Policy = "online-retrain"
		} else {
			pr.Policy = "frozen-models"
		}
		err = mgr.Run(ticks, func(st sim.TickStats) {
			if st.Tick == shiftTick {
				world.SetParams(shifted)
			}
			pr.SLASeries = append(pr.SLASeries, st.AvgSLA)
			pr.WattsSeries = append(pr.WattsSeries, st.FacilityWatts)
			if st.AvgSLA < pr.MinSLA {
				pr.MinSLA = st.AvgSLA
			}
			pr.Migrations += st.Migrations
			if updater != nil {
				updater.Observe(world)
				if _, err := updater.MaybeRetrain(st.Tick); err != nil {
					panic(err) // surfaced by the recover below
				}
			}
		})
		if err != nil {
			return nil, nil, err
		}
		pr.AvgSLA = sliceMean(pr.SLASeries)
		return pr, updater, nil
	}

	frozen, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("online frozen: %w", err)
	}
	adaptive, updater, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("online adaptive: %w", err)
	}

	// Score the post-shift steady state (skip one hour of transient).
	lo := shiftTick + model.TicksPerHour
	frozenPost := sliceMean(frozen.SLASeries[lo:])
	adaptivePost := sliceMean(adaptive.SLASeries[lo:])
	prePhase := sliceMean(frozen.SLASeries[:shiftTick])

	res := &Result{Name: "OnlineLearning", Metrics: map[string]float64{
		"slaPre":          prePhase,
		"slaPost:frozen":  frozenPost,
		"slaPost:online":  adaptivePost,
		"retrains":        float64(updater.Retrains()),
		"recoveredPoints": adaptivePost - frozenPost,
	}}
	t := report.Table{
		Caption: fmt.Sprintf("Online learning — software update at tick %d makes requests 2.2x as CPU-expensive", shiftTick),
		Headers: []string{"policy", "SLA before shift", "SLA after shift", "migrations"},
	}
	t.AddRow("frozen-models", fmt.Sprintf("%.4f", prePhase), fmt.Sprintf("%.4f", frozenPost), fmt.Sprintf("%d", frozen.Migrations))
	t.AddRow("online-retrain", fmt.Sprintf("%.4f", sliceMean(adaptive.SLASeries[:shiftTick])), fmt.Sprintf("%.4f", adaptivePost), fmt.Sprintf("%d", adaptive.Migrations))
	res.Tables = append(res.Tables, t)
	res.Charts = append(res.Charts, report.Chart{
		Caption: "SLA across the software update (vertical event at 1/4 of the axis)",
		Series: []report.Series{
			{Name: "frozen", Values: frozen.SLASeries},
			{Name: "online", Values: adaptive.SLASeries},
		},
	})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"after the update the frozen models under-provision (SLA %.3f); %d online refits recover %.3f SLA points (to %.3f)",
		frozenPost, updater.Retrains(), adaptivePost-frozenPost, adaptivePost))
	return res, nil
}
