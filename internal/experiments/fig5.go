package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Figure5 reproduces the "follow the load" sanity check of Section V-C:
// one VM, four single-host DCs, the driving function reduced to
// latency-weighted SLA (no energy, no resource competition). The VM's
// clients are spread across the world, each region peaking in its local
// afternoon, so the dominant load source rotates — and the placement must
// rotate with it.
func Figure5(seed uint64) (*Result, error) {
	sc, err := scenario.Build(scenario.MustPreset(scenario.FollowLoad, seed))
	if err != nil {
		return nil, err
	}
	cost := CostModel(sc)
	cost.LatencyOnly = true
	s := sched.NewBestFit(cost, sched.NewObserved())
	// Latency-only profits differ by fractions of a cent between adjacent
	// DCs; the default hysteresis would freeze the tour.
	s.MinGainEUR = 0.0003
	mgr, err := newManager(sc, s)
	if err != nil {
		return nil, err
	}
	if err := sc.World.PlaceInitial(model.Placement{0: 0}); err != nil {
		return nil, err
	}

	ticks := 2 * model.TicksPerDay
	var placementSeries, dominantSeries []float64
	colocated, moves, prevDC := 0, 0, model.DCID(0)
	err = mgr.Run(ticks, func(st sim.TickStats) {
		dc := sc.World.State().DCOfVM(0)
		truth, _ := sc.World.VMTruthAt(0)
		dom, _ := truth.Load.DominantSource()
		placementSeries = append(placementSeries, float64(dc))
		dominantSeries = append(dominantSeries, float64(dom))
		if int(dc) == int(dom) {
			colocated++
		}
		if dc != prevDC {
			moves++
			prevDC = dc
		}
	})
	if err != nil {
		return nil, err
	}
	frac := float64(colocated) / float64(ticks)
	res := &Result{Name: "Figure5", Metrics: map[string]float64{
		"colocatedFrac": frac,
		"moves":         float64(moves),
	}}
	res.Charts = append(res.Charts, report.Chart{
		Caption: "Figure 5 — VM placement (DC index) vs dominant load source over 48 h",
		Series: []report.Series{
			{Name: "hosting DC", Values: placementSeries},
			{Name: "dominant src", Values: dominantSeries},
		},
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("VM colocated with its dominant load source %.0f%% of ticks, %d inter-DC moves in 48 h", frac*100, moves))
	return res, nil
}
