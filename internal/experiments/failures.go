package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// Failures measures how placement policies survive injected faults — the
// robustness axis the paper's immortal-fleet evaluation never exercises.
// Every setup replays the *identical* scripted faults of the
// fail-az-outage preset (DC 0, a quarter of the fleet, out cold for two
// hours mid-run) plus the maint-rolling drain wave as a second table, so
// differences are pure policy, not luck:
//
//   - BF-OB and BF+ML re-home evicted VMs through the normal round; the
//     re-home queue bypasses admission (those VMs were already accepted)
//     but its reserved capacity gates fresh churn arrivals;
//   - the /shed variants additionally retire dynamic VMs still homeless
//     after 30 degraded ticks instead of deferring forever.
//
// The interesting numbers are availability (served VM-time fraction),
// re-home latency (how many ticks an evicted VM waits for the next
// round), and forced evictions during drains (zero when the deadline
// allows a full round).
func Failures(seed uint64) (*Result, error) {
	ticks := 4 * 60 // covers outage start, degraded window and recovery
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}

	type setup struct {
		name      string
		admission *core.AdmissionPolicy
		degraded  *core.DegradedPolicy
		pol       sweep.Policy
	}
	mkOB := sweep.Policy{
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewOverbooked()), nil
		},
	}
	mkML := sweep.Policy{
		NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
		},
	}
	setups := []setup{
		{name: "BF-OB", pol: mkOB,
			admission: &core.AdmissionPolicy{}},
		{name: "BF-OB/shed", pol: mkOB,
			admission: &core.AdmissionPolicy{},
			degraded:  &core.DegradedPolicy{ShedAfterTicks: 30}},
		{name: "BF+ML", pol: mkML,
			admission: &core.AdmissionPolicy{Bundle: bundle}},
		{name: "BF+ML/shed", pol: mkML,
			admission: &core.AdmissionPolicy{Bundle: bundle},
			degraded:  &core.DegradedPolicy{ShedAfterTicks: 30}},
	}

	res := &Result{Name: "Fault injection: availability under identical injected faults",
		Metrics: map[string]float64{}}

	runTable := func(preset, caption string) (report.Table, []report.Series, error) {
		t := report.Table{
			Caption: caption,
			Headers: []string{"policy", "avail", "interrupts", "rehomed",
				"t→rehome", "max", "forced-evict", "shed", "degraded-ticks",
				"avg SLA", "profit €/h"},
		}
		var series []report.Series
		spec := scenario.MustPreset(preset, seed)
		for _, su := range setups {
			su.pol.Name = su.name
			run, err := sweep.RunSpecOpts(spec, su.pol, bundle, ticks, sweep.RunOpts{
				DefaultInitial: true,
				Admission:      su.admission,
				Degraded:       su.degraded,
			})
			if err != nil {
				return t, nil, fmt.Errorf("failures %s/%s: %w", preset, su.name, err)
			}
			t.AddRow(su.name,
				fmt.Sprintf("%.4f", run.Availability),
				fmt.Sprintf("%d", run.Interruptions),
				fmt.Sprintf("%d", run.RehomedVMs),
				fmt.Sprintf("%.1f", run.MeanRehomeTicks),
				fmt.Sprintf("%d", run.MaxRehomeTicks),
				fmt.Sprintf("%d", run.ForcedEvictions),
				fmt.Sprintf("%d", run.ShedVMs),
				fmt.Sprintf("%d", run.DegradedTicks),
				fmt.Sprintf("%.4f", run.AvgSLA),
				fmt.Sprintf("%.4f", run.AvgEuroH))
			key := preset + "/" + su.name
			res.Metrics["availability:"+key] = run.Availability
			res.Metrics["interruptions:"+key] = float64(run.Interruptions)
			res.Metrics["rehomed:"+key] = float64(run.RehomedVMs)
			res.Metrics["rehomeTicks:"+key] = run.MeanRehomeTicks
			res.Metrics["maxRehomeTicks:"+key] = float64(run.MaxRehomeTicks)
			res.Metrics["forcedEvictions:"+key] = float64(run.ForcedEvictions)
			res.Metrics["shed:"+key] = float64(run.ShedVMs)
			res.Metrics["sla:"+key] = run.AvgSLA
			series = append(series, report.Series{Name: su.name, Values: run.SLASeries})
		}
		return t, series, nil
	}

	outageT, outageS, err := runTable(scenario.FailAZOutage,
		"fail-az-outage: DC 0 out ticks 65-185, identical script per policy")
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, outageT)
	res.Charts = append(res.Charts, report.Chart{
		Caption: "fleet SLA through the DC-0 outage (ticks 65-185)",
		Series:  outageS,
	})

	maintT, _, err := runTable(scenario.MaintRolling,
		"maint-rolling: every host drained in turn, 30-tick deadline (3 rounds)")
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, maintT)

	res.Notes = append(res.Notes,
		"every policy replays the same scripted faults (seeded per-host streams): differences are policy, not luck",
		"re-homed VMs bypass admission — they were already accepted — and their reserved requirements gate fresh arrivals until they land",
		"the rolling drain gives each host three full rounds, so forced evictions should be zero for any policy that can migrate")
	return res, nil
}
