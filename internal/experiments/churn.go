package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// Churn measures placement policies and admission control under workload
// churn — the axis the paper's fixed-population evaluation never
// exercises. The churn-storm scenario slams the fleet with waves of
// short-lived batch VMs every two hours; each run pairs a scheduler with
// an admission controller:
//
//   - admit-all: every arrival enters, the scheduler absorbs the storm;
//   - capacity / tight-cap: the commitment gate defers arrivals while the
//     fleet's committed requirements exceed the ceiling, rejecting them
//     past the deferral deadline (tight-cap lowers the ceiling to 40%);
//   - capacity+SLA: the ML gate additionally rejects arrivals whose
//     predicted fulfilment is hopeless even at a full grant.
//
// The interesting trade-off is revenue (admitting more VMs) against the
// SLA of everyone already inside — an admission controller earns its keep
// when the storm would otherwise drown the fleet.
func Churn(seed uint64) (*Result, error) {
	spec := scenario.MustPreset(scenario.ChurnStorm, seed)
	ticks := 8 * 60 // four storms
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}

	type setup struct {
		name      string
		admission *core.AdmissionPolicy
		pol       sweep.Policy
	}
	mkOB := sweep.Policy{
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewOverbooked()), nil
		},
	}
	mkML := sweep.Policy{
		NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
		},
	}
	setups := []setup{
		{name: "BF-OB/admit-all", pol: mkOB,
			admission: &core.AdmissionPolicy{Disabled: true}},
		{name: "BF-OB/capacity", pol: mkOB,
			admission: &core.AdmissionPolicy{}},
		{name: "BF-OB/tight-cap", pol: mkOB,
			admission: &core.AdmissionPolicy{TargetUtil: 0.4}},
		{name: "BF+ML/capacity", pol: mkML,
			admission: &core.AdmissionPolicy{Bundle: bundle}},
		{name: "BF+ML/cap+SLA", pol: mkML,
			admission: &core.AdmissionPolicy{Bundle: bundle, MinPredictedSLA: 0.6}},
	}

	res := &Result{Name: "Workload churn: admission control under arrival storms",
		Metrics: map[string]float64{}}
	t := report.Table{
		Caption: "churn-storm, 8 h, storms of batch VMs every 2 h",
		Headers: []string{"policy", "avg SLA", "min SLA", "profit €/h",
			"offered", "admitted", "rejected", "departed", "t→place", "migrations"},
	}
	var slaSeries []report.Series
	for _, su := range setups {
		su.pol.Name = su.name
		run, err := sweep.RunSpecOpts(spec, su.pol, bundle, ticks, sweep.RunOpts{
			DefaultInitial: true,
			Admission:      su.admission,
		})
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", su.name, err)
		}
		t.AddRow(su.name,
			fmt.Sprintf("%.4f", run.AvgSLA),
			fmt.Sprintf("%.4f", run.MinSLA),
			fmt.Sprintf("%.4f", run.AvgEuroH),
			fmt.Sprintf("%d", run.OfferedVMs),
			fmt.Sprintf("%d", run.AdmittedVMs),
			fmt.Sprintf("%d", run.RejectedVMs),
			fmt.Sprintf("%d", run.DepartedVMs),
			fmt.Sprintf("%.1f", run.MeanPlaceTicks),
			fmt.Sprintf("%d", run.Migrations))
		res.Metrics["sla:"+su.name] = run.AvgSLA
		res.Metrics["profit:"+su.name] = run.AvgEuroH
		res.Metrics["offered:"+su.name] = float64(run.OfferedVMs)
		res.Metrics["admitted:"+su.name] = float64(run.AdmittedVMs)
		res.Metrics["rejected:"+su.name] = float64(run.RejectedVMs)
		res.Metrics["admitRate:"+su.name] = run.AdmissionRate
		res.Metrics["placeTicks:"+su.name] = run.MeanPlaceTicks
		slaSeries = append(slaSeries, report.Series{Name: su.name, Values: run.SLASeries})
	}
	res.Tables = append(res.Tables, t)
	res.Charts = append(res.Charts, report.Chart{
		Caption: "fleet SLA through the arrival storms",
		Series:  slaSeries,
	})
	res.Notes = append(res.Notes,
		"lifetimes count from admission; every run sees the identical scripted storm (seeded event queue)",
		"admit-all keeps every storm VM, trading incumbent SLA for storm revenue; the gates shed load once committed requirements pass the ceiling")
	return res, nil
}
