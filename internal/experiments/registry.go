package experiments

import (
	"fmt"
	"sort"
)

// Runner is an experiment entry point.
type Runner func(seed uint64) (*Result, error)

// registry maps experiment names to runners.
var registry = map[string]Runner{
	"table1":     TableI,
	"fig4":       Figure4,
	"fig5":       Figure5,
	"delocation": Delocation,
	"fig6":       Figure6,
	"fig7":       Figure7TableIII,
	"table3":     Figure7TableIII,
	"fig8":       Figure8,
	"scaling":    SchedulerScaling,
	"green":      GreenEnergy,
	"heuristics": Heuristics,
	"online":     OnlineLearning,
	"hierarchy":  Hierarchy,
	"churn":      Churn,
	"failures":   Failures,
}

// Names lists the registered experiments in stable order.
func Names() []string {
	seen := map[string]bool{}
	var out []string
	for name := range registry {
		if name == "table3" { // alias
			continue
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, seed uint64) (*Result, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(seed)
}
