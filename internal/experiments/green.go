package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// GreenEnergy implements the paper's future-work item ("the green energy
// into the scheme, not only to reduce energy costs but also environmental
// impact"): each DC's electricity price collapses while its local sun
// shines (on-site solar displacing grid power), and the scheduler is free
// to chase the cheap watts. The expected behaviour is the 'follow the
// sun/wind' policy of Section III-A, emerging purely from the energy term
// of the profit function. Both variants are sweep cells over the
// green-solar preset; the sunlit counter rides the cell-runner's OnTick
// hook.
func GreenEnergy(seed uint64) (*Result, error) {
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	ticks := 2 * model.TicksPerDay
	spec := scenario.MustPreset(scenario.GreenSolar, seed)
	base := spec.Pricing.Base
	home := func(sc *scenario.Scenario) model.Placement { return sc.HomePlacement() }

	run := func(dynamic bool) (*PolicyRun, float64, error) {
		pol := sweep.Policy{Name: "static", Initial: home,
			Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
				return &sched.Fixed{P: sc.HomePlacement()}, nil
			}}
		if dynamic {
			pol = sweep.Policy{Name: "follow-the-sun", Initial: home, NeedsBundle: true,
				Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
					return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
				}}
		}
		// Count ticks where vm0's host enjoys solar-discounted power.
		sunlit := 0
		pr, err := sweep.RunSpecOpts(spec, pol, bundle, ticks, sweep.RunOpts{
			OnTick: func(sc *scenario.Scenario, st sim.TickStats) {
				if dc := sc.World.State().DCOfVM(0); dc >= 0 &&
					sc.Topology.EnergyPriceAt(dc, st.Tick) < base[dc]*0.7 {
					sunlit++
				}
			},
		})
		if err != nil {
			return nil, 0, err
		}
		return pr, float64(sunlit) / float64(ticks), nil
	}

	static, staticSunlit, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("green static: %w", err)
	}
	dynamic, dynamicSunlit, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("green dynamic: %w", err)
	}

	res := &Result{Name: "GreenEnergy", Metrics: map[string]float64{
		"energyEUR:static":   static.EnergyEUR,
		"energyEUR:dynamic":  dynamic.EnergyEUR,
		"sla:static":         static.AvgSLA,
		"sla:dynamic":        dynamic.AvgSLA,
		"sunlitFrac:static":  staticSunlit,
		"sunlitFrac:dynamic": dynamicSunlit,
	}}
	t := report.Table{
		Caption: "Green energy extension — follow-the-sun scheduling over 48 h",
		Headers: []string{"policy", "avg SLA", "energy €", "€ saved", "vm0 on solar power"},
	}
	for _, rs := range []struct {
		r      *PolicyRun
		sunlit float64
	}{{static, staticSunlit}, {dynamic, dynamicSunlit}} {
		t.AddRow(rs.r.Policy,
			fmt.Sprintf("%.4f", rs.r.AvgSLA),
			fmt.Sprintf("%.4f", rs.r.EnergyEUR),
			fmt.Sprintf("%.4f", static.EnergyEUR-rs.r.EnergyEUR),
			fmt.Sprintf("%.0f%%", rs.sunlit*100),
		)
	}
	res.Tables = append(res.Tables, t)
	res.Charts = append(res.Charts, report.Chart{
		Caption: "vm0 hosting DC, static vs follow-the-sun (DC index over 48 h)",
		Series: []report.Series{
			{Name: "static", Values: static.DCSeries},
			{Name: "dynamic", Values: dynamic.DCSeries},
		},
	})
	cut := 0.0
	if static.EnergyEUR > 0 {
		cut = 1 - dynamic.EnergyEUR/static.EnergyEUR
	}
	res.Metrics["energyCut"] = cut
	res.Notes = append(res.Notes, fmt.Sprintf(
		"the profit objective alone produces a follow-the-sun tour: energy cost falls %.0f%% and vm0 runs on solar-discounted power %.0f%% of the time (static: %.0f%%)",
		cut*100, dynamicSunlit*100, staticSunlit*100))
	return res, nil
}
