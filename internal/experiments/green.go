package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// GreenEnergy implements the paper's future-work item ("the green energy
// into the scheme, not only to reduce energy costs but also environmental
// impact"): each DC's electricity price collapses while its local sun
// shines (on-site solar displacing grid power), and the scheduler is free
// to chase the cheap watts. The expected behaviour is the 'follow the
// sun/wind' policy of Section III-A, emerging purely from the energy term
// of the profit function.
func GreenEnergy(seed uint64) (*Result, error) {
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	ticks := 2 * model.TicksPerDay
	spec := scenario.MustPreset(scenario.GreenSolar, seed)
	base := spec.Pricing.Base

	run := func(dynamic bool) (*PolicyRun, error) {
		sc, err := scenario.Build(spec)
		if err != nil {
			return nil, err
		}
		var s sched.Scheduler
		if dynamic {
			s = sched.NewBestFit(CostModel(sc), sched.NewML(bundle))
		} else {
			s = &sched.Fixed{P: sc.HomePlacement()}
		}
		mgr, err := newManager(sc, s)
		if err != nil {
			return nil, err
		}
		if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
			return nil, err
		}
		pr := &PolicyRun{Ticks: ticks, MinSLA: 1}
		if dynamic {
			pr.Policy = "follow-the-sun"
		} else {
			pr.Policy = "static"
		}
		var sumSLA, sumW float64
		sunlit := 0
		err = mgr.Run(ticks, func(st sim.TickStats) {
			sumSLA += st.AvgSLA
			sumW += st.FacilityWatts
			if st.AvgSLA < pr.MinSLA {
				pr.MinSLA = st.AvgSLA
			}
			pr.Migrations += st.Migrations
			pr.SLASeries = append(pr.SLASeries, st.AvgSLA)
			pr.WattsSeries = append(pr.WattsSeries, st.FacilityWatts)
			dc := sc.World.State().DCOfVM(0)
			pr.DCSeries = append(pr.DCSeries, float64(dc))
			// Count ticks where vm0's host enjoys solar-discounted power.
			if dc >= 0 && sc.Topology.EnergyPriceAt(dc, st.Tick) < base[dc]*0.7 {
				sunlit++
			}
		})
		if err != nil {
			return nil, err
		}
		ledger := sc.World.Ledger()
		pr.AvgSLA = sumSLA / float64(ticks)
		pr.AvgWatts = sumW / float64(ticks)
		pr.AvgEuroH = ledger.AvgProfitPerHour(sim.TickHours)
		pr.RevenueEUR = ledger.Revenue()
		pr.EnergyEUR = ledger.EnergyCost()
		pr.PenaltyEUR = ledger.Penalties()
		// Stash the sunlit fraction in MinSLA-adjacent metric via notes; the
		// caller reads it from the metrics map below.
		pr.sunlitFrac = float64(sunlit) / float64(ticks)
		return pr, nil
	}

	static, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("green static: %w", err)
	}
	dynamic, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("green dynamic: %w", err)
	}

	res := &Result{Name: "GreenEnergy", Metrics: map[string]float64{
		"energyEUR:static":   static.EnergyEUR,
		"energyEUR:dynamic":  dynamic.EnergyEUR,
		"sla:static":         static.AvgSLA,
		"sla:dynamic":        dynamic.AvgSLA,
		"sunlitFrac:static":  static.sunlitFrac,
		"sunlitFrac:dynamic": dynamic.sunlitFrac,
	}}
	t := report.Table{
		Caption: "Green energy extension — follow-the-sun scheduling over 48 h",
		Headers: []string{"policy", "avg SLA", "energy €", "€ saved", "vm0 on solar power"},
	}
	for _, r := range []*PolicyRun{static, dynamic} {
		t.AddRow(r.Policy,
			fmt.Sprintf("%.4f", r.AvgSLA),
			fmt.Sprintf("%.4f", r.EnergyEUR),
			fmt.Sprintf("%.4f", static.EnergyEUR-r.EnergyEUR),
			fmt.Sprintf("%.0f%%", r.sunlitFrac*100),
		)
	}
	res.Tables = append(res.Tables, t)
	res.Charts = append(res.Charts, report.Chart{
		Caption: "vm0 hosting DC, static vs follow-the-sun (DC index over 48 h)",
		Series: []report.Series{
			{Name: "static", Values: static.DCSeries},
			{Name: "dynamic", Values: dynamic.DCSeries},
		},
	})
	cut := 0.0
	if static.EnergyEUR > 0 {
		cut = 1 - dynamic.EnergyEUR/static.EnergyEUR
	}
	res.Metrics["energyCut"] = cut
	res.Notes = append(res.Notes, fmt.Sprintf(
		"the profit objective alone produces a follow-the-sun tour: energy cost falls %.0f%% and vm0 runs on solar-discounted power %.0f%% of the time (static: %.0f%%)",
		cut*100, dynamic.sunlitFrac*100, static.sunlitFrac*100))
	return res, nil
}
