package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// Figure4 reproduces the intra-DC comparison of Section V-B: plain
// Best-Fit (sized by the last-10-minutes monitored usage), Best-Fit with
// 2x overbooking (BF-OB), and the ML-enhanced Best-Fit, all managing four
// Atom PMs hosting five VMs for 24 hours with a scheduling round every 10
// minutes. The paper's claim: the ML variant (de-)consolidates to track
// the load, trading energy for SLA whenever revenue pays for it. Each
// policy is one sweep cell over the intra-dc preset.
func Figure4(seed uint64) (*Result, error) {
	spec := scenario.MustPreset(scenario.IntraDC, seed)
	ticks := model.TicksPerDay
	// Everything starts piled on the first host; the policies must dig
	// themselves out.
	initial := func(sc *scenario.Scenario) model.Placement { return sc.PileOn(0) }
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	policies := []sweep.Policy{
		{Name: "BF", Initial: initial,
			Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
				return sched.NewBestFit(CostModel(sc), sched.NewObserved()), nil
			}},
		{Name: "BF-OB", Initial: initial,
			Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
				return sched.NewBestFit(CostModel(sc), sched.NewOverbooked()), nil
			}},
		{Name: "BF+ML", Initial: initial, NeedsBundle: true,
			Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
				return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
			}},
	}
	res := &Result{Name: "Figure4", Metrics: map[string]float64{}}
	var runs []*PolicyRun
	var slaChart, pmChart report.Chart
	slaChart.Caption = "Figure 4 (SLA over 24 h, per policy)"
	pmChart.Caption = "Figure 4 (active PMs over 24 h, per policy)"
	for _, pol := range policies {
		run, err := sweep.RunSpec(spec, pol, bundle, ticks)
		if err != nil {
			return nil, fmt.Errorf("figure4 %s: %w", pol.Name, err)
		}
		runs = append(runs, run)
		slaChart.Series = append(slaChart.Series, report.Series{Name: pol.Name, Values: run.SLASeries})
		pmChart.Series = append(pmChart.Series, report.Series{Name: pol.Name, Values: run.ActiveSer})
		res.Metrics["sla:"+pol.Name] = run.AvgSLA
		res.Metrics["watts:"+pol.Name] = run.AvgWatts
		res.Metrics["profit:"+pol.Name] = run.AvgEuroH
		res.Metrics["pms:"+pol.Name] = run.AvgActive
		res.Notes = append(res.Notes, ledgerNote(run))
	}
	res.Tables = append(res.Tables, summaryTable("Figure 4 — intra-DC scheduling results and factors", runs))
	res.Charts = append(res.Charts, slaChart, pmChart)
	return res, nil
}
