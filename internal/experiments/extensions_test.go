package experiments

import "testing"

// Shape tests for the future-work extensions.

func TestGreenEnergyShape(t *testing.T) {
	res, err := GreenEnergy(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Following the sun must cut energy cost meaningfully...
	if res.Metrics["energyCut"] < 0.2 {
		t.Errorf("energy cut = %.0f%%, want >= 20%%", res.Metrics["energyCut"]*100)
	}
	// ...and put vm0 on discounted power more often than the static pin.
	if res.Metrics["sunlitFrac:dynamic"] <= res.Metrics["sunlitFrac:static"] {
		t.Errorf("dynamic sunlit %.2f not above static %.2f",
			res.Metrics["sunlitFrac:dynamic"], res.Metrics["sunlitFrac:static"])
	}
	// SLA must not collapse while chasing watts.
	if res.Metrics["sla:dynamic"] < res.Metrics["sla:static"]-0.05 {
		t.Errorf("follow-the-sun sacrificed SLA: %.3f vs %.3f",
			res.Metrics["sla:dynamic"], res.Metrics["sla:static"])
	}
}

func TestOnlineLearningShape(t *testing.T) {
	res, err := OnlineLearning(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Before the update both run healthy.
	if res.Metrics["slaPre"] < 0.9 {
		t.Errorf("pre-shift SLA = %.3f", res.Metrics["slaPre"])
	}
	// The frozen models must visibly suffer after the silent update...
	if res.Metrics["slaPost:frozen"] >= res.Metrics["slaPre"]-0.02 {
		t.Errorf("software update did not hurt frozen models: %.3f -> %.3f",
			res.Metrics["slaPre"], res.Metrics["slaPost:frozen"])
	}
	// ...and online retraining must claw a real share back.
	if res.Metrics["recoveredPoints"] < 0.02 {
		t.Errorf("online retraining recovered only %.3f SLA points", res.Metrics["recoveredPoints"])
	}
	if res.Metrics["retrains"] < 2 {
		t.Errorf("retrains = %v", res.Metrics["retrains"])
	}
}

func TestHeuristicsShape(t *testing.T) {
	res, err := Heuristics(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// The prior-work claim: profit-driven Best-Fit earns the most.
	best := res.Metrics["profit:BestFit+ML"]
	for _, other := range []string{"RoundRobin", "FirstFit", "WorstFit"} {
		if res.Metrics["profit:"+other] > best+1e-9 {
			t.Errorf("%s profit %.4f beats BestFit+ML %.4f",
				other, res.Metrics["profit:"+other], best)
		}
	}
	// Spreading policies must burn clearly more energy than Best-Fit.
	if res.Metrics["watts:RoundRobin"] < res.Metrics["watts:BestFit+ML"]*1.3 {
		t.Errorf("RoundRobin watts %.1f not clearly above BestFit %.1f",
			res.Metrics["watts:RoundRobin"], res.Metrics["watts:BestFit+ML"])
	}
}

func TestHierarchyShape(t *testing.T) {
	res, err := Hierarchy(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest size the two-layer round must be meaningfully faster
	// while matching the flat outcome. (The ladder was extended past the
	// old 48-VM top: with the flat ML inference stack a 48-VM round is
	// sub-millisecond, where fixed decomposition overheads drown the
	// structural signal.)
	if res.Metrics["hierMs:192"] >= res.Metrics["flatMs:192"]*0.8 {
		t.Errorf("two-layer %.2fms not faster than flat %.2fms",
			res.Metrics["hierMs:192"], res.Metrics["flatMs:192"])
	}
	if res.Metrics["hierSLA:192"] < res.Metrics["flatSLA:192"]-0.02 {
		t.Errorf("two-layer SLA %.4f fell below flat %.4f",
			res.Metrics["hierSLA:192"], res.Metrics["flatSLA:192"])
	}
}

func TestChurnShape(t *testing.T) {
	res, err := Churn(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Charts) == 0 {
		t.Fatal("churn experiment rendered nothing")
	}
	// Every setup faces the identical scripted storm.
	offered := res.Metrics["offered:BF-OB/admit-all"]
	if offered == 0 {
		t.Fatal("no VMs were offered")
	}
	for _, su := range []string{"BF-OB/capacity", "BF-OB/tight-cap", "BF+ML/capacity", "BF+ML/cap+SLA"} {
		if res.Metrics["offered:"+su] != offered {
			t.Errorf("%s saw %v offers, admit-all saw %v — the script is not shared",
				su, res.Metrics["offered:"+su], offered)
		}
	}
	// admit-all admits everything; the SLA gate must actually shed load
	// and buy fleet SLA with the shed revenue.
	if res.Metrics["admitRate:BF-OB/admit-all"] != 1 {
		t.Errorf("admit-all rate %v, want 1", res.Metrics["admitRate:BF-OB/admit-all"])
	}
	if res.Metrics["rejected:BF+ML/cap+SLA"] == 0 {
		t.Error("the SLA gate rejected nothing under the storm")
	}
	if res.Metrics["sla:BF+ML/cap+SLA"] <= res.Metrics["sla:BF-OB/admit-all"] {
		t.Errorf("gated SLA %.4f not above admit-all %.4f",
			res.Metrics["sla:BF+ML/cap+SLA"], res.Metrics["sla:BF-OB/admit-all"])
	}
}
