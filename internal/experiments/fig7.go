package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// PaperTableIII holds the published Table III values (per 5 VMs).
var PaperTableIII = map[string]struct {
	EuroH float64
	Watts float64
	SLA   float64
}{
	"static":  {0.745, 175.9, 0.921},
	"dynamic": {0.757, 102.0, 0.930},
}

// Figure7TableIII reproduces the static-vs-dynamic comparison of Section
// V-C (Figure 7 and Table III): the same four-DC five-VM system run once
// with VMs pinned to their customer-selected DCs (traffic redirected, no
// migration) and once with full inter-DC scheduling. The paper's claim:
// dynamic keeps SLA slightly better while cutting energy ~42% (175.9 W ->
// 102.0 W) by consolidating across datacenters. Both variants are sweep
// cells over the multi-dc preset.
func Figure7TableIII(seed uint64) (*Result, error) {
	spec := scenario.MustPreset(scenario.MultiDC, seed)
	ticks := model.TicksPerDay
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	home := func(sc *scenario.Scenario) model.Placement { return sc.HomePlacement() }

	static, err := sweep.RunSpec(spec, sweep.Policy{
		Name: "Static-Global", Initial: home,
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			return &sched.Fixed{P: sc.HomePlacement()}, nil
		},
	}, bundle, ticks)
	if err != nil {
		return nil, fmt.Errorf("figure7 static: %w", err)
	}

	dynamic, err := sweep.RunSpec(spec, sweep.Policy{
		Name: "Dynamic", Initial: home, NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
		},
	}, bundle, ticks)
	if err != nil {
		return nil, fmt.Errorf("figure7 dynamic: %w", err)
	}

	res := &Result{Name: "Figure7TableIII", Metrics: map[string]float64{
		"euroH:static":  avgRevenueEuroH(static),
		"euroH:dynamic": avgRevenueEuroH(dynamic),
		"watts:static":  static.AvgWatts,
		"watts:dynamic": dynamic.AvgWatts,
		"sla:static":    static.AvgSLA,
		"sla:dynamic":   dynamic.AvgSLA,
	}}
	t := report.Table{
		Caption: "Table III — comparative results for the multi-DC per 5 VMs",
		Headers: []string{"policy", "avg €/h", "(paper)", "avg W", "(paper)", "avg SLA", "(paper)"},
	}
	for _, r := range []*PolicyRun{static, dynamic} {
		key := "static"
		if r == dynamic {
			key = "dynamic"
		}
		p := PaperTableIII[key]
		t.AddRow(r.Policy,
			fmt.Sprintf("%.3f", avgRevenueEuroH(r)), fmt.Sprintf("%.3f", p.EuroH),
			fmt.Sprintf("%.1f", r.AvgWatts), fmt.Sprintf("%.1f", p.Watts),
			fmt.Sprintf("%.3f", r.AvgSLA), fmt.Sprintf("%.3f", p.SLA),
		)
	}
	res.Tables = append(res.Tables, t)
	res.Tables = append(res.Tables, summaryTable("Figure 7 — static vs dynamic detail", []*PolicyRun{static, dynamic}))
	res.Charts = append(res.Charts, report.Chart{
		Caption: "Figure 7 — facility watts, static vs dynamic",
		Series: []report.Series{
			{Name: "static W", Values: static.WattsSeries},
			{Name: "dynamic W", Values: dynamic.WattsSeries},
		},
	}, report.Chart{
		Caption: "Figure 7 — SLA, static vs dynamic",
		Series: []report.Series{
			{Name: "static SLA", Values: static.SLASeries},
			{Name: "dynamic SLA", Values: dynamic.SLASeries},
		},
	})
	saving := 1 - dynamic.AvgWatts/static.AvgWatts
	res.Metrics["energySaving"] = saving
	res.Notes = append(res.Notes,
		fmt.Sprintf("dynamic cuts energy %.0f%% while holding SLA (%.3f vs %.3f); paper reports 42%%",
			saving*100, dynamic.AvgSLA, static.AvgSLA),
		ledgerNote(static), ledgerNote(dynamic))
	return res, nil
}

// avgRevenueEuroH returns gross revenue per hour (the paper's €/h column
// counts customer income per 5 VMs).
func avgRevenueEuroH(r *PolicyRun) float64 {
	hours := float64(r.Ticks) / 60
	if hours == 0 {
		return 0
	}
	return r.RevenueEUR / hours
}
