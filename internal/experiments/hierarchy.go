package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Hierarchy measures the paper's structural contribution directly: the
// two-layer decomposition ("each DC only provides to the global scheduler
// a set of available physical machines and a set of VM's that may benefit
// if scheduled somewhere else") against a flat global Best-Fit that
// considers every VM on every host, at growing fleet sizes. The narrow
// interface should cut decision latency while keeping outcome quality.
func Hierarchy(seed uint64) (*Result, error) {
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	// The ladder tops out well past the old 48-VM ceiling: since the flat
	// ML inference stack (PR 4) a 48-VM flat round is sub-millisecond and
	// the decomposition's fixed overheads (sub-problem assembly, per-DC
	// fan-out) drown the signal there. The structural advantage is a
	// scaling claim, so it is asserted at the largest size.
	sizes := []struct{ vms, pmsPerDC int }{
		{8, 2}, {16, 4}, {48, 12}, {96, 24}, {192, 48},
	}
	res := &Result{Name: "Hierarchy", Metrics: map[string]float64{}}
	t := report.Table{
		Caption: "Two-layer vs flat scheduling (4 DCs, 6 h managed run)",
		Headers: []string{"VMs", "hosts", "flat ms/round", "hier ms/round", "flat SLA", "hier SLA", "flat W", "hier W"},
	}
	for _, size := range sizes {
		flat, err := runHierarchyPolicy(seed, size.vms, size.pmsPerDC, bundle, false)
		if err != nil {
			return nil, fmt.Errorf("hierarchy flat %dx%d: %w", size.vms, size.pmsPerDC, err)
		}
		hier, err := runHierarchyPolicy(seed, size.vms, size.pmsPerDC, bundle, true)
		if err != nil {
			return nil, fmt.Errorf("hierarchy two-layer %dx%d: %w", size.vms, size.pmsPerDC, err)
		}
		hosts := size.pmsPerDC * 4
		t.AddRow(
			fmt.Sprintf("%d", size.vms),
			fmt.Sprintf("%d", hosts),
			fmt.Sprintf("%.3f", flat.msPerRound),
			fmt.Sprintf("%.3f", hier.msPerRound),
			fmt.Sprintf("%.4f", flat.avgSLA),
			fmt.Sprintf("%.4f", hier.avgSLA),
			fmt.Sprintf("%.0f", flat.avgWatts),
			fmt.Sprintf("%.0f", hier.avgWatts),
		)
		key := fmt.Sprintf("%d", size.vms)
		res.Metrics["flatMs:"+key] = flat.msPerRound
		res.Metrics["hierMs:"+key] = hier.msPerRound
		res.Metrics["flatSLA:"+key] = flat.avgSLA
		res.Metrics["hierSLA:"+key] = hier.avgSLA
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"the two-layer scheduler solves per-DC problems in parallel and exports only struggling VMs plus one candidate host per DC, so its global round stays small while the flat round grows as VMs x hosts")
	return res, nil
}

type hierarchyRun struct {
	avgSLA     float64
	avgWatts   float64
	msPerRound float64
}

func runHierarchyPolicy(seed uint64, vms, pmsPerDC int, bundle *predict.Bundle, twoLayer bool) (*hierarchyRun, error) {
	spec := scenario.MustPreset(scenario.Hierarchy, seed)
	spec.VMs = vms
	spec.PMsPerDC = pmsPerDC
	sc, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	est := sched.NewML(bundle)
	cost := CostModel(sc)
	var s sched.Scheduler
	if twoLayer {
		s = core.NewHierarchical(sc.Inventory, cost, est)
	} else {
		s = sched.NewBestFit(cost, est)
	}
	timed := &timedScheduler{inner: s}
	mgr, err := core.NewManager(core.ManagerConfig{
		World: sc.World, Scheduler: timed, RoundTicks: RoundTicks,
	})
	if err != nil {
		return nil, err
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		return nil, err
	}
	const ticks = 360 // 6 hours
	var sumSLA, sumW float64
	if err := mgr.Run(ticks, func(st sim.TickStats) {
		sumSLA += st.AvgSLA
		sumW += st.FacilityWatts
	}); err != nil {
		return nil, err
	}
	out := &hierarchyRun{
		avgSLA:   sumSLA / ticks,
		avgWatts: sumW / ticks,
	}
	if timed.rounds > 0 {
		out.msPerRound = float64(timed.total.Milliseconds()) / float64(timed.rounds)
		if out.msPerRound == 0 {
			out.msPerRound = float64(timed.total.Microseconds()) / 1000 / float64(timed.rounds)
		}
	}
	return out, nil
}

// timedScheduler wraps a scheduler and accumulates decision wall-time.
type timedScheduler struct {
	inner  sched.Scheduler
	total  time.Duration
	rounds int
}

func (t *timedScheduler) Name() string { return t.inner.Name() }

func (t *timedScheduler) Schedule(p *sched.Problem) (model.Placement, error) {
	start := time.Now()
	defer func() {
		t.total += time.Since(start)
		t.rounds++
	}()
	return t.inner.Schedule(p)
}
