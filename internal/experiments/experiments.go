// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V). Each experiment is a pure function of a seed,
// returning tables and series shaped like the paper's outputs; the bench
// harness at the repository root regenerates them all.
//
// Index (see DESIGN.md for the full mapping):
//
//	TableI            — learning quality of the seven predictors
//	Figure4           — intra-DC: BF vs BF-OB vs BF+ML over 24 h
//	Figure5           — follow-the-load placement of a single VM
//	Delocation        — §V-C fixed DC vs de-location benefit
//	Figure6           — full inter-DC scheduling with flash crowd
//	Figure7TableIII   — static vs dynamic multi-DC comparison
//	Figure8           — SLA vs energy vs load trade-off surface
//	SchedulerScaling  — Best-Fit vs exhaustive solver blow-up (§IV-C)
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Result is the uniform output of one experiment.
type Result struct {
	Name   string
	Tables []report.Table
	Charts []report.Chart
	Notes  []string
	// Metrics exposes headline numbers for tests and benches.
	Metrics map[string]float64
}

// Render returns the whole result as printable text.
func (r *Result) Render() string {
	out := fmt.Sprintf("== %s ==\n", r.Name)
	for i := range r.Tables {
		out += r.Tables[i].Render() + "\n"
	}
	for i := range r.Charts {
		out += r.Charts[i].Render() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// bundleCache memoises trained predictor bundles per seed: several
// experiments share the same models, and training is the expensive step.
var bundleCache sync.Map // uint64 -> *predict.Bundle

// TrainedBundle returns the predictor bundle for a seed, training it on
// first use.
func TrainedBundle(seed uint64) (*predict.Bundle, error) {
	if v, ok := bundleCache.Load(seed); ok {
		return v.(*predict.Bundle), nil
	}
	h, err := predict.Collect(predict.DefaultHarvestOpts(seed))
	if err != nil {
		return nil, err
	}
	b, err := predict.Train(h, predict.DefaultTrainConfig(seed))
	if err != nil {
		return nil, err
	}
	actual, _ := bundleCache.LoadOrStore(seed, b)
	return actual.(*predict.Bundle), nil
}

// RoundTicks is the scheduling period used across experiments (10 min).
const RoundTicks = 10

// HorizonHours is the profit horizon of one scheduling round.
const HorizonHours = float64(RoundTicks) / 60

// PolicyRun summarises one (scenario, scheduler) execution.
type PolicyRun struct {
	Policy      string
	Ticks       int
	AvgSLA      float64
	MinSLA      float64
	AvgWatts    float64
	AvgEuroH    float64 // profit per hour
	RevenueEUR  float64
	EnergyEUR   float64
	PenaltyEUR  float64
	Migrations  int
	AvgActive   float64
	SLASeries   []float64
	WattsSeries []float64
	ActiveSer   []float64
	DCSeries    []float64 // hosting DC of VM 0 (for placement plots)
	// sunlitFrac is used by the green-energy extension: the share of ticks
	// vm0 spent on renewable-discounted power.
	sunlitFrac float64
}

// RunPolicy executes a scheduler-managed run on a fresh scenario built
// from the spec.
func RunPolicy(spec scenario.Spec, mkSched func(*scenario.Scenario) (sched.Scheduler, error),
	initial func(*scenario.Scenario) model.Placement, ticks int) (*PolicyRun, error) {
	sc, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	s, err := mkSched(sc)
	if err != nil {
		return nil, err
	}
	if initial != nil {
		if err := sc.World.PlaceInitial(initial(sc)); err != nil {
			return nil, err
		}
	}
	run := &PolicyRun{Policy: s.Name(), Ticks: ticks, MinSLA: 1}
	mgr, err := newManager(sc, s)
	if err != nil {
		return nil, err
	}
	var sumSLA, sumWatts, sumActive float64
	err = mgr.Run(ticks, func(st sim.TickStats) {
		sumSLA += st.AvgSLA
		sumWatts += st.FacilityWatts
		sumActive += float64(st.ActivePMs)
		if st.AvgSLA < run.MinSLA {
			run.MinSLA = st.AvgSLA
		}
		run.Migrations += st.Migrations
		run.SLASeries = append(run.SLASeries, st.AvgSLA)
		run.WattsSeries = append(run.WattsSeries, st.FacilityWatts)
		run.ActiveSer = append(run.ActiveSer, float64(st.ActivePMs))
		run.DCSeries = append(run.DCSeries, float64(sc.World.State().DCOfVM(0)))
	})
	if err != nil {
		return nil, err
	}
	n := float64(ticks)
	run.AvgSLA = sumSLA / n
	run.AvgWatts = sumWatts / n
	run.AvgActive = sumActive / n
	ledger := sc.World.Ledger()
	run.AvgEuroH = ledger.AvgProfitPerHour(sim.TickHours)
	run.RevenueEUR = ledger.Revenue()
	run.EnergyEUR = ledger.EnergyCost()
	run.PenaltyEUR = ledger.Penalties()
	return run, nil
}

// newManager wires the standard management loop around a scheduler.
func newManager(sc *scenario.Scenario, s sched.Scheduler) (*core.Manager, error) {
	return core.NewManager(core.ManagerConfig{
		World: sc.World, Scheduler: s, RoundTicks: RoundTicks,
	})
}

// CostModel builds the standard Figure 3 objective for a scenario.
func CostModel(sc *scenario.Scenario) sched.CostModel {
	return sched.NewCostModel(sc.Topology, power.Atom{}, HorizonHours)
}

// summaryTable renders PolicyRuns side by side.
func summaryTable(caption string, runs []*PolicyRun) report.Table {
	t := report.Table{
		Caption: caption,
		Headers: []string{"policy", "avg SLA", "min SLA", "avg W", "profit €/h", "migrations", "avg PMs on"},
	}
	for _, r := range runs {
		t.AddRow(r.Policy,
			fmt.Sprintf("%.4f", r.AvgSLA),
			fmt.Sprintf("%.4f", r.MinSLA),
			fmt.Sprintf("%.1f", r.AvgWatts),
			fmt.Sprintf("%.4f", r.AvgEuroH),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%.2f", r.AvgActive),
		)
	}
	return t
}

// ledgerNote formats the money components of a run.
func ledgerNote(r *PolicyRun) string {
	return fmt.Sprintf("%s: revenue %.3f€, energy %.3f€, penalties %.3f€ over %d ticks",
		r.Policy, r.RevenueEUR, r.EnergyEUR, r.PenaltyEUR, r.Ticks)
}
