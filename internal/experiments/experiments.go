// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V). Each experiment is a pure function of a seed,
// returning tables and series shaped like the paper's outputs; the bench
// harness at the repository root regenerates them all. Experiments run
// through the shared sweep cell-runner (internal/sweep), so one experiment
// run and one sweep cell are the same code path.
//
// Index (see DESIGN.md for the full mapping):
//
//	TableI            — learning quality of the seven predictors
//	Figure4           — intra-DC: BF vs BF-OB vs BF+ML over 24 h
//	Figure5           — follow-the-load placement of a single VM
//	Delocation        — §V-C fixed DC vs de-location benefit
//	Figure6           — full inter-DC scheduling with flash crowd
//	Figure7TableIII   — static vs dynamic multi-DC comparison
//	Figure8           — SLA vs energy vs load trade-off surface
//	SchedulerScaling  — Best-Fit vs exhaustive solver blow-up (§IV-C)
//	Churn             — admission control under workload churn (beyond the paper)
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// Result is the uniform output of one experiment.
type Result struct {
	Name   string
	Tables []report.Table
	Charts []report.Chart
	Notes  []string
	// Metrics exposes headline numbers for tests and benches.
	Metrics map[string]float64
}

// Render returns the whole result as printable text.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Render())
		b.WriteByte('\n')
	}
	for i := range r.Charts {
		b.WriteString(r.Charts[i].Render())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TrainedBundle returns the predictor bundle for a seed, training it on
// first use (delegating to the sweep-level per-seed cache).
func TrainedBundle(seed uint64) (*predict.Bundle, error) {
	return sweep.TrainedBundle(seed)
}

// RoundTicks is the scheduling period used across experiments (10 min).
const RoundTicks = sweep.DefaultRoundTicks

// HorizonHours is the profit horizon of one scheduling round.
const HorizonHours = sweep.HorizonHours

// PolicyRun summarises one (scenario, scheduler) execution; it is the
// sweep cell result.
type PolicyRun = sweep.PolicyRun

// RunPolicy executes a scheduler-managed run on a fresh scenario built
// from the spec, through the sweep cell-runner. A nil initial leaves the
// VMs unplaced until the first scheduling round, matching each figure's
// hand-picked starting state.
func RunPolicy(spec scenario.Spec, mkSched func(*scenario.Scenario) (sched.Scheduler, error),
	initial func(*scenario.Scenario) model.Placement, ticks int) (*PolicyRun, error) {
	pol := sweep.Policy{
		Make: func(sc *scenario.Scenario, _ *predict.Bundle) (sched.Scheduler, error) {
			return mkSched(sc)
		},
		Initial: initial,
	}
	return sweep.RunSpecOpts(spec, pol, nil, ticks, sweep.RunOpts{})
}

// newManager wires the standard management loop around a scheduler (for
// the experiments that drive the loop tick by tick themselves).
func newManager(sc *scenario.Scenario, s sched.Scheduler) (*core.Manager, error) {
	return core.NewManager(core.ManagerConfig{
		World: sc.World, Scheduler: s, RoundTicks: RoundTicks,
	})
}

// CostModel builds the standard Figure 3 objective for a scenario.
func CostModel(sc *scenario.Scenario) sched.CostModel {
	return sweep.CostModel(sc)
}

// ParallelBestFit builds the ML Best-Fit with concurrent candidate
// evaluation (see sweep.ParallelBestFit).
func ParallelBestFit(cost sched.CostModel, est sched.Estimator) *sched.BestFit {
	return sweep.ParallelBestFit(cost, est)
}

// summaryTable renders PolicyRuns side by side.
func summaryTable(caption string, runs []*PolicyRun) report.Table {
	t := report.Table{
		Caption: caption,
		Headers: []string{"policy", "avg SLA", "min SLA", "avg W", "profit €/h", "migrations", "avg PMs on"},
	}
	for _, r := range runs {
		t.AddRow(r.Policy,
			fmt.Sprintf("%.4f", r.AvgSLA),
			fmt.Sprintf("%.4f", r.MinSLA),
			fmt.Sprintf("%.1f", r.AvgWatts),
			fmt.Sprintf("%.4f", r.AvgEuroH),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%.2f", r.AvgActive),
		)
	}
	return t
}

// ledgerNote formats the money components of a run.
func ledgerNote(r *PolicyRun) string {
	return fmt.Sprintf("%s: revenue %.3f€, energy %.3f€, penalties %.3f€ over %d ticks",
		r.Policy, r.RevenueEUR, r.EnergyEUR, r.PenaltyEUR, r.Ticks)
}
