package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/queueing"
	"repro/internal/report"
)

// Figure8 reproduces the SLA-vs-energy-vs-load characteristic surface of
// Section V-C: for each load level (requests per second), sweeping the CPU
// granted to a VM traces out how much energy must be spent to reach a
// desired QoS. The paper uses this plot to let operators pick an SLA
// target under an energy budget.
//
// The sweep runs directly on the queueing and power substrates — the same
// functions the simulator integrates — evaluated in parallel across the
// grid.
func Figure8(seed uint64) (*Result, error) {
	loads := []float64{10, 20, 40, 60, 80, 120}
	grants := make([]float64, 0, 80)
	for g := 5.0; g <= 400; g += 5 {
		grants = append(grants, g)
	}
	const cpuTimeReq = 0.012 // s per request: mid-weight service
	terms := model.DefaultSLATerms

	type idx struct{ i, j int }
	var grid []idx
	for i := range loads {
		for j := range grants {
			grid = append(grid, idx{i, j})
		}
	}
	cells := par.Map(grid, 0, func(g idx) sweepCell {
		load, grant := loads[g.i], grants[g.j]
		rt := queueing.ResponseTime(
			queueing.Demand{RPS: load, CPUTimeReq: cpuTimeReq},
			queueing.Grant{CPUPct: grant},
		)
		lvl := terms.Fulfilment(rt)
		// Energy: the host share attributable to this grant level, cooling
		// included (a host running this VM alone at this CPU level).
		watts := power.FacilityWatts(power.Atom{}, grant)
		return sweepCell{load, grant, lvl, watts}
	})

	res := &Result{Name: "Figure8", Metrics: map[string]float64{}}
	// The paper's reading of the plot: "how much energy needs to be used to
	// achieve a desired level of QoS" per load level. Render exactly that:
	// rows are SLA targets, columns are load levels, cells are the minimum
	// facility watts that reach the target.
	targets := []float64{0.50, 0.80, 0.90, 0.95, 0.99, 0.999}
	t := report.Table{
		Caption: "Figure 8 — facility watts needed per QoS target and load level",
		Headers: []string{"SLA target"},
	}
	for _, l := range loads {
		t.Headers = append(t.Headers, fmt.Sprintf("%.0f rps", l))
	}
	for _, target := range targets {
		row := []string{fmt.Sprintf("%.3f", target)}
		for _, l := range loads {
			w := wattsForSLA(cells, l, target)
			if w >= 999 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.1f W", w))
			}
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)

	// The characteristic curves themselves, one per load level.
	chart := report.Chart{Caption: "Figure 8 — SLA vs granted CPU (columns 5%..400%), per load"}
	for _, l := range loads {
		var vals []float64
		for _, g := range grants {
			for _, c := range cells {
				if c.load == l && c.grant == g {
					vals = append(vals, c.slaLvl)
					break
				}
			}
		}
		chart.Series = append(chart.Series, report.Series{
			Name: fmt.Sprintf("%.0f rps", l), Values: vals,
		})
	}
	res.Charts = append(res.Charts, chart)

	for _, l := range loads {
		res.Metrics[fmt.Sprintf("wattsForSLA95@%.0frps", l)] = wattsForSLA(cells, l, 0.95)
	}
	res.Notes = append(res.Notes,
		"higher load shifts the SLA/energy curve right: reaching the same QoS costs more energy, the paper's management trade-off")
	_ = seed // the sweep is deterministic; seed kept for interface symmetry
	return res, nil
}

// sweepCell is one point of the Figure 8 grid.
type sweepCell struct {
	load, grant, slaLvl, watts float64
}

// wattsForSLA returns the smallest facility watts achieving the SLA target
// at the given load (sentinel 999 when unreachable at any grant).
func wattsForSLA(cells []sweepCell, load, target float64) float64 {
	best := 999.0
	for _, c := range cells {
		if c.load == load && c.slaLvl >= target && c.watts < best {
			best = c.watts
		}
	}
	return best
}
