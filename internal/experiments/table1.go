package experiments

import (
	"fmt"

	"repro/internal/report"
)

// PaperTableI holds the paper's published Table I values for side-by-side
// comparison in the rendered output.
var PaperTableI = map[string]struct {
	Method string
	Corr   float64
}{
	"VM CPU": {"M5P (M=4)", 0.854},
	"VM MEM": {"Linear Reg.", 0.994},
	"VM IN":  {"M5P (M=2)", 0.804},
	"VM OUT": {"M5P (M=2)", 0.777},
	"PM CPU": {"M5P (M=4)", 0.909},
	"VM RT":  {"M5P (M=4)", 0.865},
	"VM SLA": {"K-NN (K=4)", 0.985},
}

// TableI reproduces the paper's Table I: per-predictor learning method,
// correlation, mean absolute error, error standard deviation, train/val
// sizes and target ranges, measured on data harvested from the simulated
// fleet with a 66/34 split.
func TableI(seed uint64) (*Result, error) {
	b, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	t := report.Table{
		Caption: "Table I — learning details for each predicted element",
		Headers: []string{"element", "method", "corr", "corr(paper)", "MAE", "err-sd", "train/val", "range"},
	}
	res := &Result{Name: "TableI", Metrics: map[string]float64{}}
	for _, rep := range b.Reports {
		paper := PaperTableI[rep.Name]
		t.AddRow(
			rep.Name,
			rep.Method,
			fmt.Sprintf("%.3f", rep.Correlation),
			fmt.Sprintf("%.3f", paper.Corr),
			fmt.Sprintf("%.3f%s", rep.MAE, rep.Unit),
			fmt.Sprintf("%.3f%s", rep.ErrStdDev, rep.Unit),
			fmt.Sprintf("%d/%d", rep.NTrain, rep.NTest),
			fmt.Sprintf("[%.3g, %.3g]", rep.RangeLo, rep.RangeHi),
		)
		res.Metrics["corr:"+rep.Name] = rep.Correlation
		res.Metrics["mae:"+rep.Name] = rep.MAE
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"targets are harvested from the simulated fleet's monitors, so absolute errors differ from the paper; the method/quality ordering is the reproduced claim")
	return res, nil
}
