package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the *shape* claims of the paper, not exact
// numbers: who wins, in which direction, and by roughly what kind of
// margin. They use the default seed so the expensive predictor bundle is
// trained once and shared.
const testSeed = 42

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry too small: %v", names)
	}
	if _, err := Run("definitely-not-an-experiment", testSeed); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, name := range names {
		if strings.TrimSpace(name) == "" {
			t.Fatal("empty experiment name")
		}
	}
}

func TestTableIShape(t *testing.T) {
	res, err := TableI(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 7 {
		t.Fatalf("Table I should have 7 rows")
	}
	// Paper-ordering claims that must survive: MEM is the best-predicted
	// element; every correlation is strong.
	mem := res.Metrics["corr:VM MEM"]
	for name, v := range res.Metrics {
		if !strings.HasPrefix(name, "corr:") {
			continue
		}
		if v < 0.7 {
			t.Errorf("%s = %.3f, want >= 0.7", name, v)
		}
		if v > mem+1e-9 && name != "corr:VM MEM" {
			// MEM should be at or near the top (allow CPU/IN to tie).
			if v-mem > 0.02 {
				t.Errorf("%s (%.3f) clearly above MEM (%.3f)", name, v, mem)
			}
		}
	}
	if rendered := res.Render(); !strings.Contains(rendered, "Table I") {
		t.Fatal("render missing caption")
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	slaBF := res.Metrics["sla:BF"]
	slaOB := res.Metrics["sla:BF-OB"]
	slaML := res.Metrics["sla:BF+ML"]
	wattsOB := res.Metrics["watts:BF-OB"]
	wattsML := res.Metrics["watts:BF+ML"]
	pmsBF := res.Metrics["pms:BF"]
	pmsML := res.Metrics["pms:BF+ML"]

	// Plain BF under-provisions and pays in SLA (the vicious circle).
	if slaBF >= slaML-0.05 {
		t.Errorf("BF SLA (%.3f) should be clearly below BF+ML (%.3f)", slaBF, slaML)
	}
	// ML reaches overbooking-grade SLA...
	if slaML < slaOB-0.03 {
		t.Errorf("BF+ML SLA (%.3f) should approach BF-OB (%.3f)", slaML, slaOB)
	}
	// ...while burning meaningfully less energy.
	if wattsML >= wattsOB*0.9 {
		t.Errorf("BF+ML watts (%.1f) should undercut BF-OB (%.1f)", wattsML, wattsOB)
	}
	// The ML policy deconsolidates: more PMs than frozen BF.
	if pmsML <= pmsBF {
		t.Errorf("BF+ML PMs (%.2f) should exceed plain BF (%.2f)", pmsML, pmsBF)
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["colocatedFrac"] < 0.6 {
		t.Errorf("VM colocated only %.0f%% of the time", res.Metrics["colocatedFrac"]*100)
	}
	moves := res.Metrics["moves"]
	// Follow-the-sun over 48 h: a handful of moves, not thrash, not frozen.
	if moves < 3 || moves > 24 {
		t.Errorf("moves = %v, want a daily rotation", moves)
	}
}

func TestDelocationShape(t *testing.T) {
	res, err := Delocation(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["slaDynamic"] <= res.Metrics["slaStatic"] {
		t.Errorf("de-location should raise SLA: %.4f -> %.4f",
			res.Metrics["slaStatic"], res.Metrics["slaDynamic"])
	}
	if res.Metrics["benefitPerVMd"] <= 0 {
		t.Errorf("de-location benefit = %.3f €/VM/day, want positive", res.Metrics["benefitPerVMd"])
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["avgSLA"] < 0.8 {
		t.Errorf("managed inter-DC SLA = %.3f", res.Metrics["avgSLA"])
	}
	// The flash crowd must hurt: it exceeds system capacity by design.
	if res.Metrics["slaCrowd"] >= res.Metrics["slaCalm"] {
		t.Errorf("flash crowd did not depress SLA: crowd %.3f vs calm %.3f",
			res.Metrics["slaCrowd"], res.Metrics["slaCalm"])
	}
	if res.Metrics["migrations"] <= 0 {
		t.Error("full inter-DC run never migrated")
	}
}

func TestFigure7TableIIIShape(t *testing.T) {
	res, err := Figure7TableIII(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Table III's three claims: dynamic earns at least as much, burns much
	// less, and holds SLA.
	if res.Metrics["watts:dynamic"] >= res.Metrics["watts:static"]*0.85 {
		t.Errorf("dynamic watts %.1f not clearly below static %.1f",
			res.Metrics["watts:dynamic"], res.Metrics["watts:static"])
	}
	if res.Metrics["sla:dynamic"] < res.Metrics["sla:static"]-0.01 {
		t.Errorf("dynamic SLA %.3f fell below static %.3f",
			res.Metrics["sla:dynamic"], res.Metrics["sla:static"])
	}
	if res.Metrics["energySaving"] < 0.15 {
		t.Errorf("energy saving = %.0f%%, want >= 15%%", res.Metrics["energySaving"]*100)
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// The characteristic function: more load needs more watts for SLA 0.95.
	prev := -1.0
	for _, l := range []string{"10", "20", "40", "60", "80", "120"} {
		w := res.Metrics["wattsForSLA95@"+l+"rps"]
		if w >= 999 {
			t.Fatalf("SLA 0.95 unreachable at %s rps", l)
		}
		if w < prev {
			t.Errorf("watts for SLA .95 decreased with load at %s rps: %v < %v", l, w, prev)
		}
		prev = w
	}
}

func TestSchedulerScalingShape(t *testing.T) {
	res, err := SchedulerScaling(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive nodes must grow explosively with instance size while
	// Best-Fit stays in the microsecond range.
	small := res.Metrics["nodes:4x4"]
	big := res.Metrics["nodes:8x6"]
	if big < small*100 {
		t.Errorf("exhaustive blow-up missing: %v -> %v nodes", small, big)
	}
	if res.Metrics["bfNs:8x6"] > 5e6 {
		t.Errorf("best-fit took %.0f ns on the largest instance", res.Metrics["bfNs:8x6"])
	}
	// Branch-and-bound prunes: fewer nodes than raw enumeration.
	if res.Metrics["bnbNodes:8x6"] >= res.Metrics["nodes:8x6"] {
		t.Error("B&B did not prune")
	}
}

func TestRunAllRegisteredExperiments(t *testing.T) {
	for _, name := range Names() {
		res, err := Run(name, testSeed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Name == "" {
			t.Fatalf("%s produced unnamed result", name)
		}
		if len(res.Tables) == 0 && len(res.Charts) == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}
