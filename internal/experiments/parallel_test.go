package experiments

import (
	"testing"

	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// TestParallelMatchesSerialHeteroFleet runs the same managed hetero-fleet
// scenario under the serial and the parallel Best-Fit and demands the runs
// be indistinguishable to the last bit: parallel candidate evaluation is a
// throughput knob, never a decision change — even with asymmetric bins
// where scoring ties are most likely.
func TestParallelMatchesSerialHeteroFleet(t *testing.T) {
	bundle, err := TrainedBundle(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.MustPreset(scenario.HeteroFleet, testSeed)
	initial := func(sc *scenario.Scenario) model.Placement { return sc.HomePlacement() }
	const ticks = 3 * 60 // 18 scheduling rounds

	serial, err := RunPolicy(spec, func(sc *scenario.Scenario) (sched.Scheduler, error) {
		return sched.NewBestFit(CostModel(sc), sched.NewML(bundle)), nil
	}, initial, ticks)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunPolicy(spec, func(sc *scenario.Scenario) (sched.Scheduler, error) {
		return ParallelBestFit(CostModel(sc), sched.NewML(bundle)), nil
	}, initial, ticks)
	if err != nil {
		t.Fatal(err)
	}

	if serial.AvgSLA != parallel.AvgSLA ||
		serial.AvgWatts != parallel.AvgWatts ||
		serial.AvgEuroH != parallel.AvgEuroH ||
		serial.Migrations != parallel.Migrations {
		t.Fatalf("parallel run diverged from serial:\nserial   sla=%v watts=%v eur=%v mig=%d\nparallel sla=%v watts=%v eur=%v mig=%d",
			serial.AvgSLA, serial.AvgWatts, serial.AvgEuroH, serial.Migrations,
			parallel.AvgSLA, parallel.AvgWatts, parallel.AvgEuroH, parallel.Migrations)
	}
	for i := range serial.SLASeries {
		if serial.SLASeries[i] != parallel.SLASeries[i] {
			t.Fatalf("tick %d: SLA %v != %v", i, serial.SLASeries[i], parallel.SLASeries[i])
		}
	}
}
