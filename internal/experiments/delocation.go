package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// Delocation reproduces the Section V-C "benefit of de-locating load"
// check: a single datacenter receives all the load; in the static variant
// its VMs are pinned there even when it overloads, in the dynamic variant
// the scheduler may temporarily de-locate VMs to remote DCs (paying the
// latency and migration overheads). The paper measures SLA rising from
// 0.8115 to 0.8871 per VM, worth ~0.348 EUR/VM/day.
func Delocation(seed uint64) (*Result, error) {
	// Five VMs all homed in DC 0, load scaled beyond what its single host
	// can serve at peak; three remote DCs with a host each stand by.
	spec := scenario.MustPreset(scenario.Delocation, seed)
	ticks := model.TicksPerDay
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	// Both variants start with everything in the home DC (DC 0's host).
	pile := func(sc *scenario.Scenario) model.Placement { return sc.PileOn(0) }
	static, err := RunPolicy(spec, func(sc *scenario.Scenario) (sched.Scheduler, error) {
		return &sched.Fixed{P: pile(sc)}, nil
	}, pile, ticks)
	if err != nil {
		return nil, fmt.Errorf("delocation static: %w", err)
	}
	dynamic, err := RunPolicy(spec, func(sc *scenario.Scenario) (sched.Scheduler, error) {
		return sched.NewBestFit(CostModel(sc), sched.NewML(bundle)), nil
	}, pile, ticks)
	if err != nil {
		return nil, fmt.Errorf("delocation dynamic: %w", err)
	}
	static.Policy = "fixed-DC"
	dynamic.Policy = "de-locating"

	perVMPerDay := (dynamic.AvgEuroH - static.AvgEuroH) * 24 / 5
	res := &Result{Name: "Delocation", Metrics: map[string]float64{
		"slaStatic":     static.AvgSLA,
		"slaDynamic":    dynamic.AvgSLA,
		"benefitPerVMd": perVMPerDay,
	}}
	res.Tables = append(res.Tables, summaryTable(
		"§V-C — benefit of de-locating load (paper: SLA 0.8115 -> 0.8871, +0.348 €/VM/day)",
		[]*PolicyRun{static, dynamic}))
	res.Notes = append(res.Notes,
		fmt.Sprintf("SLA %.4f -> %.4f, net benefit %.3f €/VM/day",
			static.AvgSLA, dynamic.AvgSLA, perVMPerDay),
		ledgerNote(static), ledgerNote(dynamic))
	return res, nil
}
