package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// Figure6 reproduces the full inter-DC scheduling run of Section V-C: four
// DCs with one available host each, five VMs, every factor active (SLA
// revenue, energy prices, migration penalties, client latencies), the
// workloads scaled differently per region and a flash crowd in minutes
// 70-90 that "clearly exceeds the capacity of the system". The run is one
// sweep cell over the flash-crowd preset.
func Figure6(seed uint64) (*Result, error) {
	spec := scenario.MustPreset(scenario.FlashCrowd, seed)
	ticks := model.TicksPerDay
	bundle, err := TrainedBundle(seed)
	if err != nil {
		return nil, err
	}
	pol := sweep.Policy{
		Name: "inter-DC BF+ML", NeedsBundle: true,
		Make: func(sc *scenario.Scenario, b *predict.Bundle) (sched.Scheduler, error) {
			return sched.NewBestFit(CostModel(sc), sched.NewML(b)), nil
		},
		Initial: func(sc *scenario.Scenario) model.Placement { return sc.HomePlacement() },
	}
	run, err := sweep.RunSpec(spec, pol, bundle, ticks)
	if err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}

	res := &Result{Name: "Figure6", Metrics: map[string]float64{
		"avgSLA":     run.AvgSLA,
		"minSLA":     run.MinSLA,
		"avgWatts":   run.AvgWatts,
		"migrations": float64(run.Migrations),
		"profitEURh": run.AvgEuroH,
	}}
	res.Tables = append(res.Tables, summaryTable("Figure 6 — full inter-DC scheduling", []*PolicyRun{run}))
	res.Charts = append(res.Charts, report.Chart{
		Caption: "Figure 6 — SLA / facility watts / active PMs over 24 h (flash crowd min 70-90)",
		Series: []report.Series{
			{Name: "SLA", Values: run.SLASeries},
			{Name: "watts", Values: run.WattsSeries},
			{Name: "PMs on", Values: run.ActiveSer},
			{Name: "vm0 DC", Values: run.DCSeries},
		},
	})
	// Quantify the paper's three observations.
	crowd := sliceMean(run.SLASeries[70:90])
	calm := sliceMean(run.SLASeries[200:400])
	res.Metrics["slaCrowd"] = crowd
	res.Metrics["slaCalm"] = calm
	res.Notes = append(res.Notes,
		fmt.Sprintf("flash-crowd SLA %.3f vs calm-period SLA %.3f (the crowd exceeds capacity by design)", crowd, calm),
		ledgerNote(run))
	return res, nil
}

func sliceMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
