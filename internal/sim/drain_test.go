package sim_test

import (
	"testing"

	"repro/internal/model"
)

func TestDrainPMKeepsGuestsServing(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0, 1: 0}); err != nil {
		t.Fatal(err)
	}
	sc.World.Step()
	if err := sc.World.DrainPM(0); err != nil {
		t.Fatal(err)
	}
	if !sc.World.IsDraining(0) {
		t.Fatal("PM not marked draining")
	}
	// Draining is not failure: guests stay put and keep serving.
	if got := sc.World.State().HostOf(0); got != 0 {
		t.Fatalf("guest evicted by drain: host %v", got)
	}
	st := sc.World.Step()
	if st.AvgSLA <= 0 {
		t.Fatalf("guests on draining host stopped serving: SLA %v", st.AvgSLA)
	}
	if st.DrainingPMs != 1 || st.FailedPMs != 0 {
		t.Fatalf("tick summary counters %+v", st)
	}
}

func TestDrainPMRejectsNewPlacements(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0, 1: 1}); err != nil {
		t.Fatal(err)
	}
	sc.World.Step()
	if err := sc.World.DrainPM(1); err != nil {
		t.Fatal(err)
	}
	// Migrating a new VM onto the draining host is rejected...
	if err := sc.World.ApplySchedule(model.Placement{0: 1}); err == nil {
		t.Fatal("placement onto draining host accepted")
	}
	// ...but the incumbent may stay put while the drain migrates it out.
	if err := sc.World.ApplySchedule(model.Placement{1: 1}); err != nil {
		t.Fatalf("incumbent keep-in-place rejected: %v", err)
	}
	// Moving the incumbent out is the whole point.
	if err := sc.World.ApplySchedule(model.Placement{1: 0}); err != nil {
		t.Fatalf("drain-out migration rejected: %v", err)
	}
}

func TestRecoverPMClearsDrain(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 2})
	sc.World.DrainPM(1)
	if got := sc.World.DrainingPMs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DrainingPMs = %v", got)
	}
	if err := sc.World.RecoverPM(1); err != nil {
		t.Fatal(err)
	}
	if sc.World.IsDraining(1) || sc.World.NumDrainingPMs() != 0 {
		t.Fatal("recovery did not clear drain")
	}
	if err := sc.World.ApplySchedule(model.Placement{0: 1}); err != nil {
		t.Fatalf("recovered host rejected: %v", err)
	}
}

func TestCrashSupersedesDrain(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	sc.World.Step()
	if err := sc.World.DrainPM(0); err != nil {
		t.Fatal(err)
	}
	// A crash during the drain evicts the guests the drain was keeping.
	if err := sc.World.FailPM(0); err != nil {
		t.Fatal(err)
	}
	if sc.World.IsDraining(0) {
		t.Fatal("crashed host still marked draining")
	}
	if !sc.World.IsFailed(0) {
		t.Fatal("crashed host not marked failed")
	}
	if got := sc.World.State().HostOf(0); got != model.NoPM {
		t.Fatalf("guest survived crash of draining host: %v", got)
	}
	if sc.World.NumFailedPMs() != 1 || sc.World.NumDrainingPMs() != 0 {
		t.Fatalf("counters failed=%d draining=%d, want 1/0",
			sc.World.NumFailedPMs(), sc.World.NumDrainingPMs())
	}
	// Recovery clears the failure in one step; there is no residual drain.
	if err := sc.World.RecoverPM(0); err != nil {
		t.Fatal(err)
	}
	if err := sc.World.ApplySchedule(model.Placement{0: 0}); err != nil {
		t.Fatalf("recovered host rejected: %v", err)
	}
}

func TestDrainUnknownAndIdempotent(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 1})
	if err := sc.World.DrainPM(99); err == nil {
		t.Fatal("accepted unknown PM")
	}
	if err := sc.World.DrainPM(0); err != nil {
		t.Fatal(err)
	}
	if err := sc.World.DrainPM(0); err != nil {
		t.Fatalf("double drain errored: %v", err)
	}
	if sc.World.NumDrainingPMs() != 1 {
		t.Fatalf("double drain double-counted: %d", sc.World.NumDrainingPMs())
	}
	// Draining a failed host is a no-op, not a state change.
	sc.World.RecoverPM(0)
	sc.World.FailPM(0)
	if err := sc.World.DrainPM(0); err != nil {
		t.Fatalf("drain of failed host errored: %v", err)
	}
	if sc.World.IsDraining(0) {
		t.Fatal("failed host marked draining")
	}
}

// TestEngineStepAllocFreeWithFaults extends the tick allocation gate to a
// fleet carrying fault state: a failed host, a draining host and evicted
// (unplaced) VMs add counters to the tick summary, never allocations.
func TestEngineStepAllocFreeWithFaults(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 6, PMsPerDC: 2, DCs: 3, Seed: 99})
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	eng := sc.World.Engine
	if err := eng.FailPM(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.DrainPM(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ { // warmup: observer rings reach capacity
		eng.Step()
	}
	avg := testing.AllocsPerRun(100, func() { eng.Step() })
	if avg != 0 {
		t.Fatalf("faulted Engine.Step allocates %.1f times per tick, want 0", avg)
	}
}

func TestUnplacedVMsCounted(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0, 1: 0}); err != nil {
		t.Fatal(err)
	}
	if st := sc.World.Step(); st.UnplacedVMs != 0 {
		t.Fatalf("placed VMs counted homeless: %+v", st)
	}
	if err := sc.World.FailPM(0); err != nil {
		t.Fatal(err)
	}
	st := sc.World.Step()
	if st.UnplacedVMs != 2 {
		t.Fatalf("UnplacedVMs %d, want 2 after eviction", st.UnplacedVMs)
	}
	if st.FailedPMs != 1 {
		t.Fatalf("FailedPMs %d, want 1", st.FailedPMs)
	}
}
