package sim_test

import (
	"testing"

	"repro/internal/model"
)

func TestFailPMEvictsGuests(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0, 1: 0}); err != nil {
		t.Fatal(err)
	}
	sc.World.Step()
	if err := sc.World.FailPM(0); err != nil {
		t.Fatal(err)
	}
	if !sc.World.IsFailed(0) {
		t.Fatal("PM not marked failed")
	}
	if got := sc.World.State().HostOf(0); got != model.NoPM {
		t.Fatalf("guest still placed on failed host: %v", got)
	}
	st := sc.World.Step()
	if st.ActivePMs != 0 || st.FacilityWatts != 0 {
		t.Fatalf("failed host still drawing power: %+v", st)
	}
	if st.AvgSLA != 0 {
		t.Fatalf("evicted VMs still serving: SLA %v", st.AvgSLA)
	}
}

func TestFailPMUnknownAndIdempotent(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 1})
	if err := sc.World.FailPM(99); err == nil {
		t.Fatal("accepted unknown PM")
	}
	if err := sc.World.FailPM(0); err != nil {
		t.Fatal(err)
	}
	if err := sc.World.FailPM(0); err != nil {
		t.Fatalf("double fail errored: %v", err)
	}
	if err := sc.World.RecoverPM(99); err == nil {
		t.Fatal("recovered unknown PM")
	}
}

func TestApplyScheduleRejectsFailedTargets(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 2})
	if err := sc.World.FailPM(1); err != nil {
		t.Fatal(err)
	}
	if err := sc.World.ApplySchedule(model.Placement{0: 1}); err == nil {
		t.Fatal("placement onto failed host accepted")
	}
	if err := sc.World.ApplySchedule(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverPMRestoresCandidacy(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 2})
	sc.World.FailPM(1)
	if got := sc.World.FailedPMs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FailedPMs = %v", got)
	}
	sc.World.RecoverPM(1)
	if len(sc.World.FailedPMs()) != 0 {
		t.Fatal("recovery did not clear failure")
	}
	if err := sc.World.ApplySchedule(model.Placement{0: 1}); err != nil {
		t.Fatalf("recovered host rejected: %v", err)
	}
}

func TestFailureCancelsInFlightMigration(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	sc.World.Step()
	if err := sc.World.ApplySchedule(model.Placement{0: 1}); err != nil {
		t.Fatal(err)
	}
	// The VM is mid-migration to host 1; host 1 dies.
	if err := sc.World.FailPM(1); err != nil {
		t.Fatal(err)
	}
	st := sc.World.Step()
	truth, _ := sc.World.VMTruthAt(0)
	if truth.Migrating {
		t.Fatal("migration survived target failure")
	}
	if st.AvgSLA != 0 {
		t.Fatalf("unplaced VM serving after target died: %v", st.AvgSLA)
	}
}
